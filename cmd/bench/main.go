// Command bench runs a fixed, reproducible ingest+restore workload
// through a local engine and emits a JSON benchmark document
// (BENCH_ingest.json by default) with throughput and per-stage latency
// percentiles — the perf-trajectory artifact ci.sh smokes and humans
// diff across commits.
//
// The workload is the synthetic disk-image backup generator (seeded, so
// two runs over the same flags ingest identical bytes). Every file is
// timed individually; the per-stage histograms (chunking, index lookup,
// hook probe, manifest load, container I/O) come straight off the
// process-wide metrics registry the engine hot paths record into.
//
//	bench -out BENCH_ingest.json
//	bench -algo si-mhd -machines 4 -days 3 -snapshot $((8<<20))
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"mhdedup/dedup"
	"mhdedup/internal/metrics"
)

func main() {
	var o benchOptions
	flag.StringVar(&o.out, "out", "BENCH_ingest.json", "output JSON path (- for stdout)")
	flag.StringVar(&o.algo, "algo", "mhd", "engine: mhd or si-mhd")
	flag.IntVar(&o.ecs, "ecs", 4096, "expected chunk size in bytes")
	flag.IntVar(&o.sd, "sd", 64, "sample distance (hashes)")
	flag.IntVar(&o.cache, "cache", 64, "manifest cache capacity")
	flag.IntVar(&o.machines, "machines", 4, "workload machines")
	flag.IntVar(&o.days, "days", 3, "workload days")
	flag.Int64Var(&o.snapshot, "snapshot", 4<<20, "workload snapshot bytes per machine")
	flag.IntVar(&o.edits, "edits", 20, "workload edits per day")
	flag.Int64Var(&o.editSize, "edit-bytes", 24<<10, "workload mean edit size")
	flag.Int64Var(&o.seed, "seed", 1, "workload RNG seed")
	flag.BoolVar(&o.noRestore, "no-restore", false, "skip the restore pass")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

type benchOptions struct {
	out       string
	algo      string
	ecs       int
	sd        int
	cache     int
	machines  int
	days      int
	snapshot  int64
	edits     int
	editSize  int64
	seed      int64
	noRestore bool
}

// benchConfig is the reproducibility record: everything needed to re-run
// the exact same workload.
type benchConfig struct {
	Algo          string `json:"algo"`
	ECS           int    `json:"ecs"`
	SD            int    `json:"sd"`
	Machines      int    `json:"machines"`
	Days          int    `json:"days"`
	SnapshotBytes int64  `json:"snapshot_bytes"`
	EditsPerDay   int    `json:"edits_per_day"`
	EditBytes     int64  `json:"edit_bytes"`
	Seed          int64  `json:"seed"`
}

// phaseResult is one timed phase: wall-clock throughput plus the
// per-file latency distribution.
type phaseResult struct {
	Files     int                 `json:"files"`
	Bytes     int64               `json:"bytes"`
	Seconds   float64             `json:"seconds"`
	MBPerS    float64             `json:"mb_per_s"`
	PerFileMS metrics.DurationsMS `json:"per_file_ms"`
}

// benchDoc is the emitted document. The stage histograms carry the
// paper-relevant split: is time going into chunking+hashing, into
// metadata (lookup/hook/manifest), or into container I/O?
type benchDoc struct {
	Bench     string                         `json:"bench"`
	Generated string                         `json:"generated"`
	Config    benchConfig                    `json:"config"`
	Ingest    phaseResult                    `json:"ingest"`
	Restore   *phaseResult                   `json:"restore,omitempty"`
	Stages    map[string]metrics.DurationsMS `json:"stage_latency_ms"`
	Engine    struct {
		RealDER       float64 `json:"real_der"`
		DataOnlyDER   float64 `json:"data_only_der"`
		MetaDataRatio float64 `json:"metadata_ratio"`
		DiskAccesses  int64   `json:"disk_accesses"`
	} `json:"engine"`
}

func run(o benchOptions) error {
	algo := dedup.Algorithm(o.algo)
	eng, err := dedup.New(algo, dedup.Options{
		ECS:            o.ecs,
		SD:             o.sd,
		CacheManifests: o.cache,
	})
	if err != nil {
		return err
	}
	cfg := dedup.DefaultWorkloadConfig()
	cfg.Machines = o.machines
	cfg.Days = o.days
	cfg.SnapshotBytes = o.snapshot
	cfg.EditsPerDay = o.edits
	cfg.EditBytes = o.editSize
	cfg.Seed = o.seed
	w, err := dedup.NewWorkload(cfg)
	if err != nil {
		return err
	}

	hPut := metrics.GetHistogram("bench.put_file_ns")
	hRestore := metrics.GetHistogram("bench.restore_file_ns")

	// Ingest phase: serial, in stream order, each file timed.
	var doc benchDoc
	doc.Bench = "ingest"
	doc.Generated = time.Now().UTC().Format(time.RFC3339)
	doc.Config = benchConfig{
		Algo: o.algo, ECS: o.ecs, SD: o.sd,
		Machines: o.machines, Days: o.days, SnapshotBytes: o.snapshot,
		EditsPerDay: o.edits, EditBytes: o.editSize, Seed: o.seed,
	}
	ingestStart := time.Now()
	var inBytes int64
	files := 0
	for _, f := range w.Files() {
		r, err := w.Open(f.Name)
		if err != nil {
			return err
		}
		putStart := time.Now()
		if err := eng.PutFile(f.Name, r); err != nil {
			return fmt.Errorf("ingest %s: %w", f.Name, err)
		}
		hPut.ObserveSince(putStart)
		files++
	}
	if err := eng.Finish(); err != nil {
		return err
	}
	ingestSecs := time.Since(ingestStart).Seconds()
	rep := eng.Report()
	inBytes = rep.InputBytes
	doc.Ingest = phaseResult{
		Files:     files,
		Bytes:     inBytes,
		Seconds:   ingestSecs,
		MBPerS:    mbPerS(inBytes, ingestSecs),
		PerFileMS: hPut.Snapshot().ToMS(),
	}
	doc.Engine.RealDER = rep.RealDER()
	doc.Engine.DataOnlyDER = rep.DataOnlyDER()
	doc.Engine.MetaDataRatio = rep.MetaDataRatio()
	doc.Engine.DiskAccesses = rep.Disk.Accesses()

	// Restore phase: every file rebuilt and discarded (byte counting only;
	// correctness is the test suite's job, throughput is ours).
	if !o.noRestore {
		restoreStart := time.Now()
		var outBytes int64
		n := 0
		for _, f := range w.Files() {
			var cw countingWriter
			rs := time.Now()
			if err := eng.Restore(f.Name, &cw); err != nil {
				return fmt.Errorf("restore %s: %w", f.Name, err)
			}
			hRestore.ObserveSince(rs)
			outBytes += cw.n
			n++
		}
		restoreSecs := time.Since(restoreStart).Seconds()
		doc.Restore = &phaseResult{
			Files:     n,
			Bytes:     outBytes,
			Seconds:   restoreSecs,
			MBPerS:    mbPerS(outBytes, restoreSecs),
			PerFileMS: hRestore.Snapshot().ToMS(),
		}
	}

	// Per-stage latency off the process-wide registry (the engine hot
	// paths recorded into these during the phases above).
	doc.Stages = map[string]metrics.DurationsMS{}
	for _, name := range []string{
		"core.chunk_ns", "core.lookup_ns", "core.hook_probe_ns",
		"core.manifest_load_ns", "store.container_write_ns", "store.container_read_ns",
	} {
		doc.Stages[name] = metrics.GetHistogram(name).Snapshot().ToMS()
	}

	var out io.Writer = os.Stdout
	if o.out != "-" {
		f, err := os.Create(o.out)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench: ingest %.1f MB/s (p50 %.2f ms, p99 %.2f ms per file), real DER %.3f -> %s\n",
		doc.Ingest.MBPerS, doc.Ingest.PerFileMS.P50MS, doc.Ingest.PerFileMS.P99MS,
		doc.Engine.RealDER, o.out)
	return nil
}

func mbPerS(bytes int64, secs float64) float64 {
	if secs <= 0 {
		return 0
	}
	return float64(bytes) / (1 << 20) / secs
}

// countingWriter discards restored bytes, counting them.
type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}
