// Command bench runs a fixed, reproducible ingest+restore workload
// through a local engine and emits a JSON benchmark document
// (BENCH_ingest.json by default) with throughput and per-stage latency
// percentiles — the perf-trajectory artifact ci.sh smokes and humans
// diff across commits.
//
// The workload is the synthetic disk-image backup generator (seeded, so
// two runs over the same flags ingest identical bytes). Every file is
// timed individually; the per-stage histograms (chunking, index lookup,
// hook probe, manifest load, container I/O) come straight off the
// process-wide metrics registry the engine hot paths record into.
//
//	bench -out BENCH_ingest.json
//	bench -algo si-mhd -machines 4 -days 3 -snapshot $((8<<20))
package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"time"

	"mhdedup/dedup"
	"mhdedup/internal/chunker"
	"mhdedup/internal/hashutil"
	"mhdedup/internal/metrics"
	"mhdedup/internal/simdisk"
	"mhdedup/internal/store"
)

func main() {
	var o benchOptions
	flag.StringVar(&o.out, "out", "BENCH_ingest.json", "output JSON path (- for stdout)")
	flag.StringVar(&o.algo, "algo", "mhd", "engine: mhd or si-mhd")
	flag.IntVar(&o.ecs, "ecs", 4096, "expected chunk size in bytes")
	flag.IntVar(&o.sd, "sd", 64, "sample distance (hashes)")
	flag.IntVar(&o.cache, "cache", 64, "manifest cache capacity")
	flag.IntVar(&o.machines, "machines", 4, "workload machines")
	flag.IntVar(&o.days, "days", 3, "workload days")
	flag.Int64Var(&o.snapshot, "snapshot", 4<<20, "workload snapshot bytes per machine")
	flag.IntVar(&o.edits, "edits", 20, "workload edits per day")
	flag.Int64Var(&o.editSize, "edit-bytes", 24<<10, "workload mean edit size")
	flag.Int64Var(&o.seed, "seed", 1, "workload RNG seed")
	flag.BoolVar(&o.noRestore, "no-restore", false, "skip the restore pass")
	flag.BoolVar(&o.noWAL, "no-wal", false, "skip the WAL-enabled ingest stage")
	flag.BoolVar(&o.noCluster, "no-cluster", false, "skip the sharded-cluster ingest stage")
	flag.IntVar(&o.clusterShards, "cluster-shards", 3, "shard count for the cluster stage")
	flag.StringVar(&o.restoreOut, "restore-out", "BENCH_restore.json", "restore-stage JSON path (- for stdout, empty to skip)")
	flag.IntVar(&o.restoreWorkers, "restore-workers", 8, "parallel restore worker count for the restore stage")
	flag.Int64Var(&o.restoreWindow, "restore-window", 8<<20, "restore reorder-buffer budget in bytes")
	flag.DurationVar(&o.readDelay, "read-delay", 150*time.Microsecond, "simulated per-read device latency during the restore stage")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

type benchOptions struct {
	out       string
	algo      string
	ecs       int
	sd        int
	cache     int
	machines  int
	days      int
	snapshot  int64
	edits     int
	editSize  int64
	seed      int64
	noRestore bool
	noWAL     bool

	noCluster     bool
	clusterShards int

	restoreOut     string
	restoreWorkers int
	restoreWindow  int64
	readDelay      time.Duration
}

// benchConfig is the reproducibility record: everything needed to re-run
// the exact same workload.
type benchConfig struct {
	Algo          string `json:"algo"`
	ECS           int    `json:"ecs"`
	SD            int    `json:"sd"`
	Machines      int    `json:"machines"`
	Days          int    `json:"days"`
	SnapshotBytes int64  `json:"snapshot_bytes"`
	EditsPerDay   int    `json:"edits_per_day"`
	EditBytes     int64  `json:"edit_bytes"`
	Seed          int64  `json:"seed"`
}

// phaseResult is one timed phase: wall-clock throughput plus the
// per-file latency distribution.
type phaseResult struct {
	Files     int                 `json:"files"`
	Bytes     int64               `json:"bytes"`
	Seconds   float64             `json:"seconds"`
	MBPerS    float64             `json:"mb_per_s"`
	PerFileMS metrics.DurationsMS `json:"per_file_ms"`
}

// benchDoc is the emitted document. The stage histograms carry the
// paper-relevant split: is time going into chunking+hashing, into
// metadata (lookup/hook/manifest), or into container I/O?
type benchDoc struct {
	Bench     string                         `json:"bench"`
	Generated string                         `json:"generated"`
	Config    benchConfig                    `json:"config"`
	Chunking  *chunkingDoc                   `json:"chunking,omitempty"`
	Ingest    phaseResult                    `json:"ingest"`
	Restore   *phaseResult                   `json:"restore,omitempty"`
	WAL       *walDoc                        `json:"wal,omitempty"`
	Cluster   *clusterDoc                    `json:"cluster,omitempty"`
	Stages    map[string]metrics.DurationsMS `json:"stage_latency_ms"`
	Engine    struct {
		RealDER       float64 `json:"real_der"`
		DataOnlyDER   float64 `json:"data_only_der"`
		MetaDataRatio float64 `json:"metadata_ratio"`
		DiskAccesses  int64   `json:"disk_accesses"`
	} `json:"engine"`
}

// chunkFamilyDoc is one chunker family's reference-vs-fast comparison.
// cuts_identical is the differential gate: both implementations must emit
// the exact same cut sequence over the workload bytes, or the bench aborts
// (mirroring the restore stage's hash_match gate).
type chunkFamilyDoc struct {
	Chunks        int     `json:"chunks"`
	CutsIdentical bool    `json:"cuts_identical"`
	RefMBPerS     float64 `json:"reference_mb_per_s"`
	FastMBPerS    float64 `json:"chunk_mb_per_s"`
	Speedup       float64 `json:"speedup"`
}

// chunkingDoc is the chunking-stage artifact inside BENCH_ingest.json: the
// block-processed fast paths measured against their per-byte reference
// scans over real workload bytes.
type chunkingDoc struct {
	Bytes int64          `json:"bytes"`
	ECS   int            `json:"ecs"`
	Rabin chunkFamilyDoc `json:"rabin"`
	Gear  chunkFamilyDoc `json:"gear"`
}

// runChunkingStage chunks the first workload file with the reference and
// block-processed implementation of each chunker family, measuring MB/s and
// hard-failing if the cut sequences differ.
func runChunkingStage(w *dedup.Workload, ecs int) (*chunkingDoc, error) {
	files := w.Files()
	if len(files) == 0 {
		return nil, nil
	}
	r, err := w.Open(files[0].Name)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, r); err != nil {
		return nil, err
	}
	data := buf.Bytes()
	if len(data) == 0 {
		return nil, nil
	}
	p := chunker.Params{ECS: ecs}

	// Repeat passes over the buffer until enough bytes are scanned for the
	// timing to be stable; the first pass's cut sequence is the comparison
	// record (later passes are identical by determinism).
	measure := func(mk func(io.Reader) (chunker.Chunker, error)) ([]int, float64, error) {
		passes := int((64 << 20) / len(data))
		if passes < 1 {
			passes = 1
		}
		if passes > 64 {
			passes = 64
		}
		var cuts []int
		start := time.Now()
		for pass := 0; pass < passes; pass++ {
			c, err := mk(bytes.NewReader(data))
			if err != nil {
				return nil, 0, err
			}
			for {
				ch, err := c.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					return nil, 0, err
				}
				if pass == 0 {
					cuts = append(cuts, len(ch.Data))
				}
			}
		}
		secs := time.Since(start).Seconds()
		return cuts, mbPerS(int64(len(data))*int64(passes), secs), nil
	}

	family := func(name string, mkRef, mkFast func(io.Reader) (chunker.Chunker, error)) (chunkFamilyDoc, error) {
		refCuts, refMBs, err := measure(mkRef)
		if err != nil {
			return chunkFamilyDoc{}, fmt.Errorf("%s reference: %w", name, err)
		}
		fastCuts, fastMBs, err := measure(mkFast)
		if err != nil {
			return chunkFamilyDoc{}, fmt.Errorf("%s fast: %w", name, err)
		}
		identical := len(refCuts) == len(fastCuts)
		if identical {
			for i := range refCuts {
				if refCuts[i] != fastCuts[i] {
					identical = false
					break
				}
			}
		}
		if !identical {
			return chunkFamilyDoc{}, fmt.Errorf("chunking stage: %s fast path cut sequence diverges from reference (%d vs %d chunks) — refusing to emit bench numbers", name, len(fastCuts), len(refCuts))
		}
		return chunkFamilyDoc{
			Chunks:        len(refCuts),
			CutsIdentical: true,
			RefMBPerS:     refMBs,
			FastMBPerS:    fastMBs,
			Speedup:       fastMBs / refMBs,
		}, nil
	}

	doc := &chunkingDoc{Bytes: int64(len(data)), ECS: ecs}
	doc.Rabin, err = family("rabin",
		func(r io.Reader) (chunker.Chunker, error) { return chunker.NewRabin(r, p) },
		func(r io.Reader) (chunker.Chunker, error) { return chunker.NewFastRabin(r, p) })
	if err != nil {
		return nil, err
	}
	doc.Gear, err = family("gear",
		func(r io.Reader) (chunker.Chunker, error) { return chunker.NewFastCDC(r, p) },
		func(r io.Reader) (chunker.Chunker, error) { return chunker.NewFastGear(r, p) })
	if err != nil {
		return nil, err
	}
	return doc, nil
}

// walDoc is the durability-stage artifact inside BENCH_ingest.json: the
// same workload ingested again through a write-ahead-logged store with a
// group commit per file (the barrier a server acks through), so the
// throughput gate covers log-enabled ingest. The stage doubles as a
// correctness gate: the store is reopened without compaction — forcing a
// full log replay — and every file is restored and hashed against the
// bytes that went in.
type walDoc struct {
	Files   int     `json:"files"`
	Bytes   int64   `json:"bytes"`
	Seconds float64 `json:"seconds"`
	// WALMBPerS vs BaselineMBPerS is the cost of durability: the same
	// serial ingest with and without a group-committed fsync per file.
	WALMBPerS      float64 `json:"wal_mb_per_s"`
	BaselineMBPerS float64 `json:"baseline_mb_per_s"`
	OverheadRatio  float64 `json:"overhead_ratio"`

	GroupCommits    int64 `json:"group_commits"`
	LogRecords      int64 `json:"log_records"`
	LogBytes        int64 `json:"log_bytes"`
	ReplayedRecords int64 `json:"replayed_records"`

	CommitLatencyMS metrics.DurationsMS `json:"commit_latency_ms"`

	IngestSHA1  string `json:"ingest_sha1"`
	RestoreSHA1 string `json:"restore_sha1"`
	HashMatch   bool   `json:"hash_match"`
}

// runWALStage ingests the workload through a durable store (Put + Commit
// per file), closes it WITHOUT compacting, reopens it so the mount comes
// entirely from generation + log replay, and hash-checks every restored
// file. A hash mismatch or an empty replay is a hard error.
func runWALStage(o benchOptions, baselineMBPerS float64) (*walDoc, error) {
	dir, err := os.MkdirTemp("", "bench-wal-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	algo := dedup.Algorithm(o.algo)
	opts := dedup.Options{ECS: o.ecs, SD: o.sd, CacheManifests: o.cache}
	// Background maintenance off: the stage measures the synchronous
	// ingest+commit path, not a compaction schedule.
	dopt := dedup.DurabilityOptions{FlushInterval: -1}
	eng, dur, _, err := dedup.ResumeDurable(algo, opts, dir, dopt)
	if err != nil {
		return nil, err
	}
	w, err := dedup.NewWorkload(workloadConfig(o))
	if err != nil {
		return nil, err
	}

	hCommit := metrics.GetHistogram("bench.wal_commit_ns")
	ingestHash := hashutil.NewHasher()
	doc := &walDoc{BaselineMBPerS: baselineMBPerS}

	start := time.Now()
	for _, f := range w.Files() {
		r, err := w.Open(f.Name)
		if err != nil {
			return nil, err
		}
		ingestHash.Write([]byte(f.Name))
		if err := eng.PutFile(f.Name, io.TeeReader(r, ingestHash)); err != nil {
			return nil, fmt.Errorf("wal ingest %s: %w", f.Name, err)
		}
		t0 := time.Now()
		if err := dur.Commit(); err != nil {
			return nil, fmt.Errorf("wal commit after %s: %w", f.Name, err)
		}
		hCommit.ObserveSince(t0)
		doc.Files++
	}
	if err := eng.Finish(); err != nil {
		return nil, err
	}
	if err := dur.Commit(); err != nil {
		return nil, err
	}
	doc.Seconds = time.Since(start).Seconds()
	doc.Bytes = eng.Report().InputBytes
	doc.WALMBPerS = mbPerS(doc.Bytes, doc.Seconds)
	if baselineMBPerS > 0 {
		doc.OverheadRatio = doc.WALMBPerS / baselineMBPerS
	}
	st := dur.WAL().Stats()
	doc.GroupCommits = st.Syncs
	doc.LogRecords = st.DurableRecords
	doc.LogBytes = st.DurableBytes
	doc.CommitLatencyMS = hCommit.Snapshot().ToMS()
	// Close without Compact: the log stays on disk and the reopen below
	// must rebuild the entire store state by replaying it.
	if err := dur.Close(); err != nil {
		return nil, err
	}

	eng2, dur2, rep, err := dedup.ResumeDurable(algo, opts, dir, dopt)
	if err != nil {
		return nil, fmt.Errorf("wal reopen: %w", err)
	}
	defer dur2.Close()
	doc.ReplayedRecords = rep.Records
	if rep.Records == 0 {
		return nil, fmt.Errorf("wal stage: reopen replayed no records — the ingest never reached the log")
	}
	restoreHash := hashutil.NewHasher()
	for _, f := range w.Files() {
		restoreHash.Write([]byte(f.Name))
		if err := eng2.Restore(f.Name, restoreHash); err != nil {
			return nil, fmt.Errorf("wal restore %s after replay: %w", f.Name, err)
		}
	}
	doc.IngestSHA1 = ingestHash.Sum().Hex()
	doc.RestoreSHA1 = restoreHash.Sum().Hex()
	doc.HashMatch = doc.IngestSHA1 == doc.RestoreSHA1
	if !doc.HashMatch {
		return nil, fmt.Errorf("wal stage: restored hash %s != ingested %s after log replay",
			doc.RestoreSHA1, doc.IngestSHA1)
	}
	return doc, nil
}

func workloadConfig(o benchOptions) dedup.WorkloadConfig {
	cfg := dedup.DefaultWorkloadConfig()
	cfg.Machines = o.machines
	cfg.Days = o.days
	cfg.SnapshotBytes = o.snapshot
	cfg.EditsPerDay = o.edits
	cfg.EditBytes = o.editSize
	cfg.Seed = o.seed
	return cfg
}

func run(o benchOptions) error {
	algo := dedup.Algorithm(o.algo)
	eng, err := dedup.New(algo, dedup.Options{
		ECS:            o.ecs,
		SD:             o.sd,
		CacheManifests: o.cache,
	})
	if err != nil {
		return err
	}
	w, err := dedup.NewWorkload(workloadConfig(o))
	if err != nil {
		return err
	}

	hPut := metrics.GetHistogram("bench.put_file_ns")
	hRestore := metrics.GetHistogram("bench.restore_file_ns")

	// Ingest phase: serial, in stream order, each file timed.
	var doc benchDoc
	doc.Bench = "ingest"
	doc.Generated = time.Now().UTC().Format(time.RFC3339)
	doc.Config = benchConfig{
		Algo: o.algo, ECS: o.ecs, SD: o.sd,
		Machines: o.machines, Days: o.days, SnapshotBytes: o.snapshot,
		EditsPerDay: o.edits, EditBytes: o.editSize, Seed: o.seed,
	}
	// Chunking stage: reference vs block-processed scan over workload
	// bytes, with cut-for-cut identity as a hard gate.
	chunking, err := runChunkingStage(w, o.ecs)
	if err != nil {
		return err
	}
	doc.Chunking = chunking
	if chunking != nil {
		fmt.Fprintf(os.Stderr, "bench: chunking rabin %.0f -> %.0f MB/s (%.2fx), gear %.0f -> %.0f MB/s (%.2fx), cuts identical\n",
			chunking.Rabin.RefMBPerS, chunking.Rabin.FastMBPerS, chunking.Rabin.Speedup,
			chunking.Gear.RefMBPerS, chunking.Gear.FastMBPerS, chunking.Gear.Speedup)
	}

	ingestStart := time.Now()
	var inBytes int64
	files := 0
	for _, f := range w.Files() {
		r, err := w.Open(f.Name)
		if err != nil {
			return err
		}
		putStart := time.Now()
		if err := eng.PutFile(f.Name, r); err != nil {
			return fmt.Errorf("ingest %s: %w", f.Name, err)
		}
		hPut.ObserveSince(putStart)
		files++
	}
	if err := eng.Finish(); err != nil {
		return err
	}
	ingestSecs := time.Since(ingestStart).Seconds()
	rep := eng.Report()
	inBytes = rep.InputBytes
	doc.Ingest = phaseResult{
		Files:     files,
		Bytes:     inBytes,
		Seconds:   ingestSecs,
		MBPerS:    mbPerS(inBytes, ingestSecs),
		PerFileMS: hPut.Snapshot().ToMS(),
	}
	doc.Engine.RealDER = rep.RealDER()
	doc.Engine.DataOnlyDER = rep.DataOnlyDER()
	doc.Engine.MetaDataRatio = rep.MetaDataRatio()
	doc.Engine.DiskAccesses = rep.Disk.Accesses()

	// Restore phase: every file rebuilt and discarded (byte counting only;
	// correctness is the test suite's job, throughput is ours).
	if !o.noRestore {
		restoreStart := time.Now()
		var outBytes int64
		n := 0
		for _, f := range w.Files() {
			var cw countingWriter
			rs := time.Now()
			if err := eng.Restore(f.Name, &cw); err != nil {
				return fmt.Errorf("restore %s: %w", f.Name, err)
			}
			hRestore.ObserveSince(rs)
			outBytes += cw.n
			n++
		}
		restoreSecs := time.Since(restoreStart).Seconds()
		doc.Restore = &phaseResult{
			Files:     n,
			Bytes:     outBytes,
			Seconds:   restoreSecs,
			MBPerS:    mbPerS(outBytes, restoreSecs),
			PerFileMS: hRestore.Snapshot().ToMS(),
		}
	}

	// WAL stage: the same workload ingested through a write-ahead-logged
	// store with a group commit per file, replay-mounted and hash-gated.
	if !o.noWAL {
		walStage, err := runWALStage(o, doc.Ingest.MBPerS)
		if err != nil {
			return err
		}
		doc.WAL = walStage
		fmt.Fprintf(os.Stderr, "bench: wal ingest %.1f MB/s (%.2fx of baseline), %d group commits, %d records replayed, hash match %v\n",
			walStage.WALMBPerS, walStage.OverheadRatio, walStage.GroupCommits,
			walStage.ReplayedRecords, walStage.HashMatch)
	}

	// Cluster stage: the same workload through a sharded deployment
	// (gateway + N dedupd shards over loopback), hash-gated round trip.
	if !o.noCluster {
		clusterStage, err := runClusterStage(o, doc.Ingest.MBPerS)
		if err != nil {
			return err
		}
		doc.Cluster = clusterStage
		fmt.Fprintf(os.Stderr, "bench: cluster ingest %.1f MB/s over %d shards (%.2fx of baseline), balance %.2fx, %d/%d chunks peer-routed, hash match %v\n",
			clusterStage.ClusterMBPerS, clusterStage.Shards, clusterStage.OverheadRatio,
			clusterStage.BalanceRatio, clusterStage.ChunksPeerRouted,
			clusterStage.ChunksPeerRouted+clusterStage.ChunksFromClient, clusterStage.HashMatch)
		if clusterStage.ReplicationFactor > 0 {
			fmt.Fprintf(os.Stderr, "bench: replication R=%d ingest %.1f MB/s (%.2fx of R=1), %d files rebalanced, failover restore ok=%v\n",
				clusterStage.ReplicationFactor, clusterStage.ReplicationMBPerS,
				clusterStage.ReplicationOverheadRatio, clusterStage.RebalancedFiles,
				clusterStage.FailoverRestoreOK)
		}
	}

	// Per-stage latency off the process-wide registry (the engine hot
	// paths recorded into these during the phases above).
	doc.Stages = map[string]metrics.DurationsMS{}
	for _, name := range []string{
		"core.chunk_ns", "core.lookup_ns", "core.hook_probe_ns",
		"core.manifest_load_ns", "store.container_write_ns", "store.container_read_ns",
	} {
		doc.Stages[name] = metrics.GetHistogram(name).Snapshot().ToMS()
	}

	var out io.Writer = os.Stdout
	if o.out != "-" {
		f, err := os.Create(o.out)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench: ingest %.1f MB/s (p50 %.2f ms, p99 %.2f ms per file), real DER %.3f -> %s\n",
		doc.Ingest.MBPerS, doc.Ingest.PerFileMS.P50MS, doc.Ingest.PerFileMS.P99MS,
		doc.Engine.RealDER, o.out)

	if o.restoreOut != "" {
		if err := runRestoreStage(o, eng, doc.Config); err != nil {
			return err
		}
	}
	return nil
}

// restoreDoc is the restore-stage artifact (BENCH_restore.json): the
// same store restored twice — once through the serial reference path,
// once through the batched parallel pipeline — with a hard equality
// gate on the combined output hashes. A simulated per-read device
// latency (-read-delay) is applied during both passes so the parallel
// speedup reflects overlapped I/O waits, the regime the pipeline
// exists for, rather than pure-RAM memcpy contention.
type restoreDoc struct {
	Bench       string      `json:"bench"`
	Generated   string      `json:"generated"`
	Config      benchConfig `json:"config"`
	ReadDelayUS float64     `json:"read_delay_us"`
	Workers     int         `json:"workers"`
	WindowBytes int64       `json:"window_bytes"`

	Serial   phaseResult `json:"serial"`
	Parallel phaseResult `json:"parallel"`
	Speedup  float64     `json:"speedup"`

	// Plan shape from the parallel pass: refs in, coalesced reads out.
	Refs          int     `json:"refs"`
	Reads         int     `json:"reads"`
	CoalesceRatio float64 `json:"coalesce_ratio"`

	// Per-read container latency through the pipeline (includes the
	// simulated device delay).
	ReadLatencyMS metrics.DurationsMS `json:"read_latency_ms"`

	SerialSHA1   string `json:"serial_sha1"`
	ParallelSHA1 string `json:"parallel_sha1"`
	HashMatch    bool   `json:"hash_match"`

	Ranged *rangedDoc `json:"ranged,omitempty"`
}

// rangedDoc is the ranged-restore artifact inside BENCH_restore.json: a
// fixed set of byte ranges is restored from the flat-manifest store, the
// store's recipes are then rewritten as recipe trees (ConvertToRecipeTrees,
// in sorted name order so sibling snapshots share subtrees), and the same
// ranges are restored again through the tree seek path. The two output
// streams must hash identically (ranged_hash_match — the differential gate
// ci.sh greps), and the tree pass reports how many recipe chunks each seek
// read (O(log n) in the ref count) next to the flat pass, which decodes
// the whole manifest per seek.
type rangedDoc struct {
	Files  int `json:"files"`
	Ranges int `json:"ranges"`

	// Seek latency per ranged restore: whole-manifest decode (flat) vs
	// root-to-leaf recipe walk (tree). Both passes run under the same
	// simulated device read delay as the rest of the restore stage.
	FlatSeekMS   metrics.DurationsMS `json:"flat_seek_ms"`
	RangedSeekMS metrics.DurationsMS `json:"ranged_seek_ms"`

	// RecipeReadsPerSeek is the tree pass's average recipe chunks read per
	// ranged restore — the O(log n) quantity (a flat seek always decodes
	// every ref of the file).
	RecipeReadsPerSeek float64 `json:"recipe_reads_per_seek"`
	RefsPerFile        float64 `json:"refs_per_file"`

	// Recipe-tree storage accounting from converting the workload store:
	// how many of the serialized recipe bytes were new chunks vs shared
	// with an earlier snapshot's tree. (This workload's engines coalesce
	// contiguous refs aggressively, so its manifests are tiny — the
	// snapshot-pair fields below measure sharing at real ref counts.)
	TreeFiles      int   `json:"tree_files"`
	TreeDepthMax   int   `json:"tree_depth_max"`
	RecipeBytes    int64 `json:"recipe_bytes"`
	NewRecipeBytes int64 `json:"new_recipe_bytes"`

	// Snapshot-pair measurement: two synthetic manifests of
	// SnapshotPairRefs refs differing in SnapshotPairEdits dispersed edits
	// (a near-identical second snapshot of a large fragmented image),
	// written as recipe trees into the same store. RecipeTreeDedupRatio is
	// the second tree's serialized-leaf-bytes over its NEW leaf bytes
	// (>1 means subtree sharing); NewLeafFraction is its inverse view, and
	// the bench hard-fails if it reaches 20% — the acceptance gate.
	SnapshotPairRefs     int     `json:"snapshot_pair_refs"`
	SnapshotPairEdits    int     `json:"snapshot_pair_edits"`
	SecondLeafBytes      int64   `json:"second_snapshot_leaf_bytes"`
	SecondNewLeafBytes   int64   `json:"second_snapshot_new_leaf_bytes"`
	NewLeafFraction      float64 `json:"second_snapshot_new_leaf_fraction"`
	RecipeTreeDedupRatio float64 `json:"recipe_tree_dedup_ratio"`

	FlatSHA1   string `json:"flat_sha1"`
	RangedSHA1 string `json:"ranged_sha1"`
	HashMatch  bool   `json:"ranged_hash_match"`
}

// seekRange is one deterministic probe range of a file.
type seekRange struct {
	name        string
	off, length int64
}

// rangesFor returns the probe ranges for one file: the first bytes, an
// unaligned interior slice, an open-ended tail, and a past-EOF offset
// (which must succeed with zero bytes — the clamp semantics).
func rangesFor(name string, size int64) []seekRange {
	return []seekRange{
		{name, 0, 64 << 10},
		{name, size/2 + 17, 128 << 10},
		{name, size - size/8, -1},
		{name, size + 4096, 64},
	}
}

// runSnapshotPair writes two synthetic near-identical snapshot manifests
// as recipe trees into one fresh store and records how many of the second
// tree's serialized leaf bytes were new chunks. The manifests model a
// large fragmented image — many non-coalescible refs — where the first
// and second snapshot differ only in a few dispersed re-written regions,
// which is exactly the regime recipe-tree sharing exists for. Everything
// is seeded, so the emitted numbers are reproducible.
func runSnapshotPair(doc *rangedDoc) error {
	const nrefs, nedits = 20000, 20
	rng := rand.New(rand.NewSource(9))
	refs := make([]store.FileRef, nrefs)
	for i := range refs {
		var c hashutil.Sum
		binary.BigEndian.PutUint64(c[:8], uint64(i/16))
		refs[i] = store.FileRef{
			Container: c,
			// A gap before every ref keeps Append from coalescing them.
			Start: int64(i%16)*65536 + int64(rng.Intn(4096)) + 1,
			Size:  int64(512 + rng.Intn(8192)),
		}
	}
	second := make([]store.FileRef, nrefs)
	copy(second, refs)
	for k := 0; k < nedits; k++ {
		i := (k*977 + 13) % nrefs
		var c hashutil.Sum
		binary.BigEndian.PutUint64(c[:8], uint64(1<<40+k))
		second[i] = store.FileRef{Container: c, Start: int64(rng.Intn(1<<20)) + 1, Size: int64(512 + rng.Intn(8192))}
	}

	st := store.New(simdisk.New(), store.FormatMHD)
	write := func(name string, rs []store.FileRef) (store.RecipeTreeStats, error) {
		fm := &store.FileManifest{File: name, Refs: rs}
		return st.WriteFileManifestTree(fm)
	}
	if _, err := write("pair/snap1", refs); err != nil {
		return fmt.Errorf("snapshot pair: %w", err)
	}
	ts, err := write("pair/snap2", second)
	if err != nil {
		return fmt.Errorf("snapshot pair: %w", err)
	}
	doc.SnapshotPairRefs = nrefs
	doc.SnapshotPairEdits = nedits
	doc.SecondLeafBytes = ts.LeafBytes
	doc.SecondNewLeafBytes = ts.NewLeafBytes
	if ts.LeafBytes > 0 {
		doc.NewLeafFraction = float64(ts.NewLeafBytes) / float64(ts.LeafBytes)
	}
	if ts.NewLeafBytes > 0 {
		doc.RecipeTreeDedupRatio = float64(ts.LeafBytes) / float64(ts.NewLeafBytes)
	}
	if doc.NewLeafFraction >= 0.20 {
		return fmt.Errorf("snapshot pair: second snapshot stored %.0f%% of its leaf bytes as new chunks (want <20%%)",
			doc.NewLeafFraction*100)
	}
	return nil
}

// runRangedStage runs the flat pass, converts the store to recipe trees,
// runs the tree pass over the identical ranges, and hard-fails on any
// output divergence.
func runRangedStage(st *store.Store, names []string, ropts store.RestoreOptions) (*rangedDoc, error) {
	doc := &rangedDoc{Files: len(names)}

	var probes []seekRange
	var totalRefs int64
	for _, name := range names {
		fm, err := st.ReadFileManifest(name)
		if err != nil {
			return nil, fmt.Errorf("ranged stage: read manifest %s: %w", name, err)
		}
		totalRefs += int64(len(fm.Refs))
		if fm.TotalBytes() == 0 {
			continue
		}
		probes = append(probes, rangesFor(name, fm.TotalBytes())...)
	}
	doc.Ranges = len(probes)
	if len(names) > 0 {
		doc.RefsPerFile = float64(totalRefs) / float64(len(names))
	}

	hFlat := metrics.GetHistogram("bench.ranged_flat_ns")
	hTree := metrics.GetHistogram("bench.ranged_tree_ns")

	seekAll := func(h *metrics.Histogram, sink *hashutil.Hasher) (int64, error) {
		var recipeReads int64
		for _, p := range probes {
			fmt.Fprintf(sink, "%s:%d:%d\n", p.name, p.off, p.length)
			t0 := time.Now()
			stats, err := st.RestoreRange(p.name, p.off, p.length, sink, ropts)
			if err != nil {
				return 0, fmt.Errorf("ranged restore %s [%d,+%d): %w", p.name, p.off, p.length, err)
			}
			h.ObserveSince(t0)
			recipeReads += int64(stats.RecipeReads)
		}
		return recipeReads, nil
	}

	// Flat pass: every seek decodes the file's whole manifest.
	flatHash := hashutil.NewHasher()
	if _, err := seekAll(hFlat, flatHash); err != nil {
		return nil, err
	}

	// Convert every flat manifest to a recipe tree, accounting for the
	// serialized recipe bytes that were shared with trees written before.
	converted, err := st.ConvertToRecipeTrees(func(name string, ts store.RecipeTreeStats) {
		doc.TreeFiles++
		if ts.Depth > doc.TreeDepthMax {
			doc.TreeDepthMax = ts.Depth
		}
		doc.RecipeBytes += ts.LeafBytes + ts.NodeBytes
		doc.NewRecipeBytes += ts.NewBytes()
	})
	if err != nil {
		return nil, fmt.Errorf("ranged stage: convert to recipe trees: %w", err)
	}
	if converted == 0 {
		return nil, fmt.Errorf("ranged stage: no flat manifests converted to trees")
	}

	// Snapshot-pair sharing at realistic ref counts.
	if err := runSnapshotPair(doc); err != nil {
		return nil, err
	}

	// Tree pass: identical probes through the recipe-tree seek path.
	treeHash := hashutil.NewHasher()
	recipeReads, err := seekAll(hTree, treeHash)
	if err != nil {
		return nil, err
	}
	if len(probes) > 0 {
		doc.RecipeReadsPerSeek = float64(recipeReads) / float64(len(probes))
	}

	doc.FlatSeekMS = hFlat.Snapshot().ToMS()
	doc.RangedSeekMS = hTree.Snapshot().ToMS()
	doc.FlatSHA1 = flatHash.Sum().Hex()
	doc.RangedSHA1 = treeHash.Sum().Hex()
	doc.HashMatch = doc.FlatSHA1 == doc.RangedSHA1
	if !doc.HashMatch {
		return nil, fmt.Errorf("ranged stage: tree-seek output hash %s != flat %s", doc.RangedSHA1, doc.FlatSHA1)
	}
	return doc, nil
}

// runRestoreStage restores every ingested file twice — serial reference
// path, then the batched parallel pipeline — hashes both output streams
// (file name + content, in sorted name order) and emits the comparison
// document. A hash mismatch is a hard error: the bench doubles as a
// differential correctness gate that ci.sh greps for.
func runRestoreStage(o benchOptions, eng dedup.Engine, cfg benchConfig) error {
	disk := eng.Disk()
	format, ok := store.DetectFormat(disk)
	if !ok {
		format = store.FormatMHD
	}
	st := store.New(disk, format)
	names := disk.Names(simdisk.FileManifest)
	sort.Strings(names)
	if len(names) == 0 {
		return fmt.Errorf("restore stage: store has no file manifests")
	}

	// Simulated device latency per container read, for both passes, so
	// serial-vs-parallel compares like against like. Cleared afterwards.
	disk.SetReadDelay(o.readDelay)
	defer disk.SetReadDelay(0)

	hSerial := metrics.GetHistogram("bench.restore_serial_ns")
	hParallel := metrics.GetHistogram("bench.restore_parallel_ns")

	// Serial reference pass.
	serialHash := hashutil.NewHasher()
	var serialBytes int64
	serialStart := time.Now()
	for _, name := range names {
		serialHash.Write([]byte(name))
		var cw countingWriter
		t0 := time.Now()
		if err := st.RestoreFile(name, io.MultiWriter(serialHash, &cw)); err != nil {
			return fmt.Errorf("serial restore %s: %w", name, err)
		}
		hSerial.ObserveSince(t0)
		serialBytes += cw.n
	}
	serialSecs := time.Since(serialStart).Seconds()

	// Parallel pipeline pass.
	ropts := store.RestoreOptions{Workers: o.restoreWorkers, WindowBytes: o.restoreWindow}
	parallelHash := hashutil.NewHasher()
	var parallelBytes int64
	var refs, reads int
	parallelStart := time.Now()
	for _, name := range names {
		parallelHash.Write([]byte(name))
		var cw countingWriter
		t0 := time.Now()
		stats, err := st.RestoreFileStats(name, io.MultiWriter(parallelHash, &cw), ropts)
		if err != nil {
			return fmt.Errorf("parallel restore %s: %w", name, err)
		}
		hParallel.ObserveSince(t0)
		parallelBytes += cw.n
		refs += stats.Refs
		reads += stats.Reads
	}
	parallelSecs := time.Since(parallelStart).Seconds()

	var doc restoreDoc
	doc.Bench = "restore"
	doc.Generated = time.Now().UTC().Format(time.RFC3339)
	doc.Config = cfg
	doc.ReadDelayUS = float64(o.readDelay.Nanoseconds()) / 1e3
	doc.Workers = o.restoreWorkers
	doc.WindowBytes = o.restoreWindow
	doc.Serial = phaseResult{
		Files:     len(names),
		Bytes:     serialBytes,
		Seconds:   serialSecs,
		MBPerS:    mbPerS(serialBytes, serialSecs),
		PerFileMS: hSerial.Snapshot().ToMS(),
	}
	doc.Parallel = phaseResult{
		Files:     len(names),
		Bytes:     parallelBytes,
		Seconds:   parallelSecs,
		MBPerS:    mbPerS(parallelBytes, parallelSecs),
		PerFileMS: hParallel.Snapshot().ToMS(),
	}
	if parallelSecs > 0 {
		doc.Speedup = serialSecs / parallelSecs
	}
	doc.Refs = refs
	doc.Reads = reads
	if reads > 0 {
		doc.CoalesceRatio = float64(refs) / float64(reads)
	}
	doc.ReadLatencyMS = metrics.GetHistogram("store.restore_read_ns").Snapshot().ToMS()
	doc.SerialSHA1 = serialHash.Sum().Hex()
	doc.ParallelSHA1 = parallelHash.Sum().Hex()
	doc.HashMatch = doc.SerialSHA1 == doc.ParallelSHA1

	// Ranged stage: flat seeks, tree conversion, tree seeks, hash gate.
	ranged, err := runRangedStage(st, names, ropts)
	if err != nil {
		return err
	}
	doc.Ranged = ranged

	var out io.Writer = os.Stdout
	if o.restoreOut != "-" {
		f, err := os.Create(o.restoreOut)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench: restore serial %.1f MB/s, workers=%d %.1f MB/s (%.2fx), coalesce %.2fx, hash match %v -> %s\n",
		doc.Serial.MBPerS, doc.Workers, doc.Parallel.MBPerS, doc.Speedup,
		doc.CoalesceRatio, doc.HashMatch, o.restoreOut)
	if doc.Ranged != nil {
		fmt.Fprintf(os.Stderr, "bench: ranged seeks p50 %.2f ms (flat %.2f ms), %.1f recipe reads/seek over %.0f refs/file, pair recipe dedup %.1fx (%.0f%% new leaf bytes), hash match %v\n",
			doc.Ranged.RangedSeekMS.P50MS, doc.Ranged.FlatSeekMS.P50MS,
			doc.Ranged.RecipeReadsPerSeek, doc.Ranged.RefsPerFile,
			doc.Ranged.RecipeTreeDedupRatio, doc.Ranged.NewLeafFraction*100, doc.Ranged.HashMatch)
	}
	if !doc.HashMatch {
		return fmt.Errorf("restore stage: parallel output hash %s != serial %s",
			doc.ParallelSHA1, doc.SerialSHA1)
	}
	return nil
}

func mbPerS(bytes int64, secs float64) float64 {
	if secs <= 0 {
		return 0
	}
	return float64(bytes) / (1 << 20) / secs
}

// countingWriter discards restored bytes, counting them.
type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}
