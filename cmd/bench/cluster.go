package main

// The cluster stage: the same seeded workload pushed through a real
// sharded deployment — N in-process dedupd shards behind a dedup-gw
// gateway, all over loopback TCP — so the perf-trajectory artifact
// covers the full wire + routing + fan-out path, not just the local
// engine. The stage is also a differential correctness gate: every file
// is restored back through the gateway and the combined stream hash must
// equal the ingested one.

import (
	"fmt"
	"io"
	"net"
	"os"
	"time"

	"mhdedup/dedup"
	"mhdedup/internal/client"
	"mhdedup/internal/cluster"
	"mhdedup/internal/core"
	"mhdedup/internal/events"
	"mhdedup/internal/exp"
	"mhdedup/internal/hashutil"
	"mhdedup/internal/metrics"
	"mhdedup/internal/server"
)

// shardBalance is one shard's share of the routed workload.
type shardBalance struct {
	ID    string `json:"id"`
	Files int64  `json:"files"`
	Bytes int64  `json:"bytes"`
}

// clusterDoc is the cluster-stage artifact inside BENCH_ingest.json.
type clusterDoc struct {
	Shards  int     `json:"shards"`
	Files   int     `json:"files"`
	Bytes   int64   `json:"bytes"`
	Seconds float64 `json:"seconds"`
	// ClusterMBPerS vs BaselineMBPerS is the cost of distribution: the
	// same serial ingest through gateway + wire + shard fan-out instead
	// of direct engine calls.
	ClusterMBPerS  float64 `json:"cluster_mb_per_s"`
	BaselineMBPerS float64 `json:"baseline_mb_per_s"`
	OverheadRatio  float64 `json:"overhead_ratio"`

	// Balance holds per-shard routed files/bytes; BalanceRatio is
	// max/min shard bytes (1.0 = perfectly even).
	Balance      []shardBalance `json:"shard_balance"`
	BalanceRatio float64        `json:"balance_ratio"`

	// Chunk routing split over the run, off the gateway counters.
	ChunksFromClient int64 `json:"chunks_from_client"`
	ChunksPeerRouted int64 `json:"chunks_peer_routed"`

	IngestSHA1  string `json:"ingest_sha1"`
	RestoreSHA1 string `json:"restore_sha1"`
	HashMatch   bool   `json:"hash_match"`

	// Replication sub-stage: the same workload pushed through a fresh
	// cluster at R=2, then one shard rebalanced away and a DIFFERENT
	// shard hard-killed before a full verified restore — the durability
	// claim, priced. ReplicationOverheadRatio is R=2 throughput over R=1
	// (the cost of writing everything twice); FailoverRestoreOK is the
	// gate that every file restored bit-identical with a shard dead.
	ReplicationFactor        int     `json:"replication_factor,omitempty"`
	ReplicationMBPerS        float64 `json:"replication_mb_per_s,omitempty"`
	ReplicationOverheadRatio float64 `json:"replication_overhead_ratio,omitempty"`
	RebalancedFiles          int     `json:"rebalanced_files"`
	FailoverRestoreOK        bool    `json:"failover_restore_ok"`
}

// benchCluster is one in-process shard fleet + gateway on loopback.
type benchCluster struct {
	shards  []cluster.Shard
	servers []*server.Server
	gw      *cluster.Gateway
	reg     *metrics.Registry
	cfg     client.Config
}

func (bc *benchCluster) close() {
	bc.gw.Close()
	for _, s := range bc.servers {
		s.Close()
	}
}

// startBenchCluster builds o.clusterShards dedupd shards behind a
// gateway with the given replication factor.
func startBenchCluster(o benchOptions, evlog *events.Log, replication int) (*benchCluster, error) {
	algo := o.algo
	if algo == "" {
		algo = exp.AlgoMHD
	}
	bc := &benchCluster{reg: metrics.NewRegistry()}
	fail := func(err error) (*benchCluster, error) {
		for _, s := range bc.servers {
			s.Close()
		}
		return nil, err
	}
	for i := 0; i < o.clusterShards; i++ {
		p := exp.DefaultParams(algo, o.ecs, o.sd, 64<<20)
		eng, err := exp.Build(p)
		if err != nil {
			return fail(err)
		}
		srv, err := server.New(server.Config{
			Engine:   eng.(*core.Dedup),
			Registry: metrics.NewRegistry(),
			Events:   evlog,
		})
		if err != nil {
			return fail(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fail(err)
		}
		go srv.Serve(ln)
		bc.servers = append(bc.servers, srv)
		bc.shards = append(bc.shards, cluster.Shard{ID: fmt.Sprintf("s%d", i), Addr: ln.Addr().String()})
	}
	gw, err := cluster.NewGateway(cluster.GatewayConfig{
		Shards:      bc.shards,
		Replication: replication,
		Registry:    bc.reg,
		Events:      evlog,
	})
	if err != nil {
		return fail(err)
	}
	gwLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	go gw.Serve(gwLn)
	bc.gw = gw
	bc.cfg = client.Config{
		Addr:    gwLn.Addr().String(),
		Options: bc.servers[0].Options(),
	}
	return bc, nil
}

// ingestWorkload pushes the seeded workload through the gateway with the
// ordinary client, returning files, bytes, seconds and the stream hash.
func (bc *benchCluster) ingestWorkload(o benchOptions) (files int, bytes int64, seconds float64, sum hashutil.Sum, err error) {
	w, err := dedup.NewWorkload(workloadConfig(o))
	if err != nil {
		return 0, 0, 0, sum, err
	}
	ingestHash := hashutil.NewHasher()
	ing, err := client.Connect(bc.cfg)
	if err != nil {
		return 0, 0, 0, sum, fmt.Errorf("cluster stage connect: %w", err)
	}
	start := time.Now()
	for _, f := range w.Files() {
		r, err := w.Open(f.Name)
		if err != nil {
			return 0, 0, 0, sum, err
		}
		ingestHash.Write([]byte(f.Name))
		if err := ing.PutFile(f.Name, io.TeeReader(r, ingestHash)); err != nil {
			return 0, 0, 0, sum, fmt.Errorf("cluster ingest %s: %w", f.Name, err)
		}
		files++
	}
	if err := ing.Close(); err != nil {
		return 0, 0, 0, sum, err
	}
	return files, ing.Stats().InputBytes, time.Since(start).Seconds(), ingestHash.Sum(), nil
}

// restoreWorkload restores every workload file back through the gateway
// (server-side verification on) and returns the combined stream hash.
func (bc *benchCluster) restoreWorkload(o benchOptions) (hashutil.Sum, error) {
	var sum hashutil.Sum
	w, err := dedup.NewWorkload(workloadConfig(o))
	if err != nil {
		return sum, err
	}
	restoreHash := hashutil.NewHasher()
	for _, f := range w.Files() {
		restoreHash.Write([]byte(f.Name))
		if _, err := client.Restore(bc.cfg, f.Name, true, restoreHash); err != nil {
			return sum, fmt.Errorf("cluster restore %s: %w", f.Name, err)
		}
	}
	return restoreHash.Sum(), nil
}

// runClusterStage stands up o.clusterShards dedupd shards and a gateway
// on loopback, ingests the workload through the gateway with the
// ordinary client, restores everything back through it, and hash-gates
// the round trip.
func runClusterStage(o benchOptions, baselineMBPerS float64) (*clusterDoc, error) {
	evlog := events.New(events.Options{Level: events.LevelError, Out: os.Stderr})
	bc, err := startBenchCluster(o, evlog, 1)
	if err != nil {
		return nil, err
	}
	defer bc.close()

	doc := &clusterDoc{Shards: o.clusterShards, BaselineMBPerS: baselineMBPerS}
	files, bytes, seconds, ingestSum, err := bc.ingestWorkload(o)
	if err != nil {
		return nil, err
	}
	doc.Files, doc.Bytes, doc.Seconds = files, bytes, seconds
	doc.ClusterMBPerS = mbPerS(doc.Bytes, doc.Seconds)
	if baselineMBPerS > 0 {
		doc.OverheadRatio = doc.ClusterMBPerS / baselineMBPerS
	}

	// Restore everything back through the gateway in ingest stream order;
	// the name+content hashing mirrors the WAL stage's gate.
	names, err := client.List(bc.cfg)
	if err != nil {
		return nil, err
	}
	if len(names) != doc.Files {
		return nil, fmt.Errorf("cluster stage: listed %d files, ingested %d", len(names), doc.Files)
	}
	restoreSum, err := bc.restoreWorkload(o)
	if err != nil {
		return nil, err
	}
	doc.IngestSHA1 = ingestSum.Hex()
	doc.RestoreSHA1 = restoreSum.Hex()
	doc.HashMatch = doc.IngestSHA1 == doc.RestoreSHA1
	if !doc.HashMatch {
		return nil, fmt.Errorf("cluster stage: restored hash %s != ingested %s through the gateway",
			doc.RestoreSHA1, doc.IngestSHA1)
	}

	stats := bc.gw.ShardStats()
	var minB, maxB int64
	for _, sh := range bc.shards {
		fb := stats[sh.ID]
		doc.Balance = append(doc.Balance, shardBalance{ID: sh.ID, Files: fb[0], Bytes: fb[1]})
		if minB == 0 || fb[1] < minB {
			minB = fb[1]
		}
		if fb[1] > maxB {
			maxB = fb[1]
		}
	}
	if minB > 0 {
		doc.BalanceRatio = float64(maxB) / float64(minB)
	}
	doc.ChunksFromClient = bc.reg.Counter("gateway.chunks.from_client").Load()
	doc.ChunksPeerRouted = bc.reg.Counter("gateway.chunks.peer_routed").Load()

	if o.clusterShards >= 3 {
		if err := runReplicationSubStage(o, evlog, doc, ingestSum); err != nil {
			return nil, err
		}
	}
	return doc, nil
}

// runReplicationSubStage prices the durability claim: the same workload
// at R=2 (timed against the R=1 run), one shard rebalanced away, a
// DIFFERENT shard hard-killed, and a full verified restore through what
// is left. Needs at least 3 shards so a live replica survives both.
func runReplicationSubStage(o benchOptions, evlog *events.Log, doc *clusterDoc, want hashutil.Sum) error {
	bc, err := startBenchCluster(o, evlog, 2)
	if err != nil {
		return err
	}
	defer bc.close()

	_, bytes, seconds, ingestSum, err := bc.ingestWorkload(o)
	if err != nil {
		return fmt.Errorf("replication sub-stage: %w", err)
	}
	if ingestSum != want {
		return fmt.Errorf("replication sub-stage: workload stream diverged between runs")
	}
	doc.ReplicationFactor = 2
	doc.ReplicationMBPerS = mbPerS(bytes, seconds)
	if doc.ClusterMBPerS > 0 {
		doc.ReplicationOverheadRatio = doc.ReplicationMBPerS / doc.ClusterMBPerS
	}

	rep, err := bc.gw.RebalanceShard(bc.shards[0].ID)
	if err != nil {
		return fmt.Errorf("replication sub-stage rebalance: %w (report %+v)", err, rep)
	}
	if rep.Dropped != rep.Files {
		return fmt.Errorf("replication sub-stage: rebalance emptied %d of %d files", rep.Dropped, rep.Files)
	}
	doc.RebalancedFiles = rep.Files

	// Kill a shard that now holds replicas; every restore must fail over.
	bc.servers[1].Close()
	restoreSum, err := bc.restoreWorkload(o)
	if err != nil {
		return fmt.Errorf("replication sub-stage: restore with a dead shard: %w", err)
	}
	doc.FailoverRestoreOK = restoreSum == want
	if !doc.FailoverRestoreOK {
		return fmt.Errorf("replication sub-stage: failover restore hash %s != ingested %s",
			restoreSum.Hex(), want.Hex())
	}
	return nil
}
