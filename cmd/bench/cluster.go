package main

// The cluster stage: the same seeded workload pushed through a real
// sharded deployment — N in-process dedupd shards behind a dedup-gw
// gateway, all over loopback TCP — so the perf-trajectory artifact
// covers the full wire + routing + fan-out path, not just the local
// engine. The stage is also a differential correctness gate: every file
// is restored back through the gateway and the combined stream hash must
// equal the ingested one.

import (
	"fmt"
	"io"
	"net"
	"os"
	"time"

	"mhdedup/dedup"
	"mhdedup/internal/client"
	"mhdedup/internal/cluster"
	"mhdedup/internal/core"
	"mhdedup/internal/events"
	"mhdedup/internal/exp"
	"mhdedup/internal/hashutil"
	"mhdedup/internal/metrics"
	"mhdedup/internal/server"
)

// shardBalance is one shard's share of the routed workload.
type shardBalance struct {
	ID    string `json:"id"`
	Files int64  `json:"files"`
	Bytes int64  `json:"bytes"`
}

// clusterDoc is the cluster-stage artifact inside BENCH_ingest.json.
type clusterDoc struct {
	Shards  int     `json:"shards"`
	Files   int     `json:"files"`
	Bytes   int64   `json:"bytes"`
	Seconds float64 `json:"seconds"`
	// ClusterMBPerS vs BaselineMBPerS is the cost of distribution: the
	// same serial ingest through gateway + wire + shard fan-out instead
	// of direct engine calls.
	ClusterMBPerS  float64 `json:"cluster_mb_per_s"`
	BaselineMBPerS float64 `json:"baseline_mb_per_s"`
	OverheadRatio  float64 `json:"overhead_ratio"`

	// Balance holds per-shard routed files/bytes; BalanceRatio is
	// max/min shard bytes (1.0 = perfectly even).
	Balance      []shardBalance `json:"shard_balance"`
	BalanceRatio float64        `json:"balance_ratio"`

	// Chunk routing split over the run, off the gateway counters.
	ChunksFromClient int64 `json:"chunks_from_client"`
	ChunksPeerRouted int64 `json:"chunks_peer_routed"`

	IngestSHA1  string `json:"ingest_sha1"`
	RestoreSHA1 string `json:"restore_sha1"`
	HashMatch   bool   `json:"hash_match"`
}

// runClusterStage stands up o.clusterShards dedupd shards and a gateway
// on loopback, ingests the workload through the gateway with the
// ordinary client, restores everything back through it, and hash-gates
// the round trip.
func runClusterStage(o benchOptions, baselineMBPerS float64) (*clusterDoc, error) {
	algo := o.algo
	if algo == "" {
		algo = exp.AlgoMHD
	}
	evlog := events.New(events.Options{Level: events.LevelError, Out: os.Stderr})

	var shards []cluster.Shard
	var servers []*server.Server
	var listeners []net.Listener
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	for i := 0; i < o.clusterShards; i++ {
		p := exp.DefaultParams(algo, o.ecs, o.sd, 64<<20)
		eng, err := exp.Build(p)
		if err != nil {
			return nil, err
		}
		srv, err := server.New(server.Config{
			Engine:   eng.(*core.Dedup),
			Registry: metrics.NewRegistry(),
			Events:   evlog,
		})
		if err != nil {
			return nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		go srv.Serve(ln)
		servers = append(servers, srv)
		listeners = append(listeners, ln)
		shards = append(shards, cluster.Shard{ID: fmt.Sprintf("s%d", i), Addr: ln.Addr().String()})
	}
	reg := metrics.NewRegistry()
	gw, err := cluster.NewGateway(cluster.GatewayConfig{
		Shards:   shards,
		Registry: reg,
		Events:   evlog,
	})
	if err != nil {
		return nil, err
	}
	gwLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go gw.Serve(gwLn)
	defer gw.Close()

	cfg := client.Config{
		Addr:    gwLn.Addr().String(),
		Options: servers[0].Options(),
	}
	w, err := dedup.NewWorkload(workloadConfig(o))
	if err != nil {
		return nil, err
	}

	doc := &clusterDoc{Shards: o.clusterShards, BaselineMBPerS: baselineMBPerS}
	ingestHash := hashutil.NewHasher()
	ing, err := client.Connect(cfg)
	if err != nil {
		return nil, fmt.Errorf("cluster stage connect: %w", err)
	}
	start := time.Now()
	for _, f := range w.Files() {
		r, err := w.Open(f.Name)
		if err != nil {
			return nil, err
		}
		ingestHash.Write([]byte(f.Name))
		if err := ing.PutFile(f.Name, io.TeeReader(r, ingestHash)); err != nil {
			return nil, fmt.Errorf("cluster ingest %s: %w", f.Name, err)
		}
		doc.Files++
	}
	if err := ing.Close(); err != nil {
		return nil, err
	}
	doc.Seconds = time.Since(start).Seconds()
	doc.Bytes = ing.Stats().InputBytes
	doc.ClusterMBPerS = mbPerS(doc.Bytes, doc.Seconds)
	if baselineMBPerS > 0 {
		doc.OverheadRatio = doc.ClusterMBPerS / baselineMBPerS
	}

	// Restore everything back through the gateway in ingest stream order;
	// the name+content hashing mirrors the WAL stage's gate.
	names, err := client.List(cfg)
	if err != nil {
		return nil, err
	}
	if len(names) != doc.Files {
		return nil, fmt.Errorf("cluster stage: listed %d files, ingested %d", len(names), doc.Files)
	}
	restoreHash := hashutil.NewHasher()
	for _, f := range w.Files() {
		restoreHash.Write([]byte(f.Name))
		if _, err := client.Restore(cfg, f.Name, true, restoreHash); err != nil {
			return nil, fmt.Errorf("cluster restore %s: %w", f.Name, err)
		}
	}
	doc.IngestSHA1 = ingestHash.Sum().Hex()
	doc.RestoreSHA1 = restoreHash.Sum().Hex()
	doc.HashMatch = doc.IngestSHA1 == doc.RestoreSHA1
	if !doc.HashMatch {
		return nil, fmt.Errorf("cluster stage: restored hash %s != ingested %s through the gateway",
			doc.RestoreSHA1, doc.IngestSHA1)
	}

	stats := gw.ShardStats()
	var minB, maxB int64
	for _, sh := range shards {
		fb := stats[sh.ID]
		doc.Balance = append(doc.Balance, shardBalance{ID: sh.ID, Files: fb[0], Bytes: fb[1]})
		if minB == 0 || fb[1] < minB {
			minB = fb[1]
		}
		if fb[1] > maxB {
			maxB = fb[1]
		}
	}
	if minB > 0 {
		doc.BalanceRatio = float64(maxB) / float64(minB)
	}
	doc.ChunksFromClient = reg.Counter("gateway.chunks.from_client").Load()
	doc.ChunksPeerRouted = reg.Counter("gateway.chunks.peer_routed").Load()
	for _, ln := range listeners {
		ln.Close()
	}
	return doc, nil
}
