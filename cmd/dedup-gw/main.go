// Command dedup-gw is the cluster gateway: clients speak the ordinary
// internal/wire protocol to it as if it were a single dedupd, and the
// gateway partitions the work across a fleet of unmodified dedupd shards
// with a consistent-hash ring. Files are homed whole on the ring owner
// of their (tenant-namespaced) name; chunk hashes are consistent-hash
// routed during the offer→need negotiation, so a chunk any tenant has
// pushed through the cluster is served shard→shard instead of crossing a
// client link twice. Tenancy — authentication, namespace isolation and
// logical-byte quotas — lives entirely at the gateway.
//
// Examples:
//
//	dedup-gw -addr :7450 -shards s0=10.0.0.1:7444,s1=10.0.0.2:7444
//	dedup-gw -addr :7450 -shards s0=:7444,s1=:7445 -tenants tenants.json -metrics-addr :7451
//
// The -tenants file is a JSON object mapping tenant name to
// {"secret": "...", "quota_bytes": N} (quota 0 = unlimited); without it
// the gateway runs open (any tenant, no quota).
//
// -metrics-addr serves /metrics.json (gateway counters, per-shard
// routing balance, tenant usage), /healthz, /events.json and the
// standard pprof profiles, plus the admin verbs:
//
//	POST /drain-shard?id=<shard>      remove a shard from the write ring:
//	                                  new files route to the survivors while
//	                                  everything already stored on it stays
//	                                  restorable
//	POST /rebalance-shard?id=<shard>  drain the shard AND migrate every file
//	                                  it holds to the files' new write-ring
//	                                  owners, emptying it for decommission
//	POST /repair-scan                 re-replicate every under-replicated
//	                                  file onto its missing write-ring owners
//	GET  /replication                 report how many files sit on all of
//	                                  their owners (the invariant check)
//
// -replication N stores each file on the N distinct write-ring successor
// owners of its name: with N>=2 any single shard can die without losing
// an acked file (restores fail over to a surviving replica, and
// /repair-scan restores the factor afterwards).
//
// On SIGINT/SIGTERM the gateway drains: it stops accepting, refuses new
// sessions retryably, and waits (bounded by -drain-timeout) for in-flight
// sessions. A second signal forces exit.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"mhdedup/internal/cluster"
	"mhdedup/internal/events"
	"mhdedup/internal/metrics"
)

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":7450", "listen address")
	flag.StringVar(&o.metricsAddr, "metrics-addr", "", "serve /metrics.json, /healthz and /drain-shard on this address (off when empty)")
	flag.StringVar(&o.shards, "shards", "", "cluster membership as id=addr,id=addr,... (required)")
	flag.IntVar(&o.vnodes, "vnodes", cluster.DefaultVNodes, "virtual nodes per shard on the hash ring")
	flag.IntVar(&o.replication, "replication", 1, "distinct shards holding each file (>=2 survives a single shard death)")
	flag.StringVar(&o.tenantsFile, "tenants", "", "JSON tenant table: {\"name\": {\"secret\": \"...\", \"quota_bytes\": N}, ...} (empty = open gateway)")
	flag.IntVar(&o.maxSessions, "max-sessions", 64, "maximum concurrent client ingest sessions")
	flag.IntVar(&o.window, "window", 8, "per-session in-flight command window (must not exceed the shards' window)")
	flag.DurationVar(&o.idleTimeout, "idle-timeout", 2*time.Minute, "close connections idle longer than this")
	flag.DurationVar(&o.resumeTimeout, "resume-timeout", 90*time.Second, "keep detached client sessions resumable this long (keep below the shards' resume timeout)")
	flag.DurationVar(&o.drainTimeout, "drain-timeout", time.Minute, "bound on graceful drain before forcing shutdown")
	flag.StringVar(&o.logLevel, "log-level", "info", "event log level: debug, info, warn or error")
	flag.DurationVar(&o.slowOp, "slow-op", 100*time.Millisecond, "emit a warn slow_op event for operations at or above this duration (negative disables)")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "dedup-gw:", err)
		os.Exit(1)
	}
}

type options struct {
	addr          string
	metricsAddr   string
	shards        string
	vnodes        int
	replication   int
	tenantsFile   string
	maxSessions   int
	window        int
	idleTimeout   time.Duration
	resumeTimeout time.Duration
	drainTimeout  time.Duration
	logLevel      string
	slowOp        time.Duration
}

// parseShards turns "s0=host:7444,s1=host:7445" into ring membership.
func parseShards(spec string) ([]cluster.Shard, error) {
	if spec == "" {
		return nil, fmt.Errorf("-shards is required (id=addr,id=addr,...)")
	}
	var out []cluster.Shard
	for _, part := range strings.Split(spec, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("bad shard spec %q (want id=addr)", part)
		}
		out = append(out, cluster.Shard{ID: id, Addr: addr})
	}
	return out, nil
}

func loadTenants(path string) (map[string]cluster.TenantAuth, error) {
	if path == "" {
		return nil, nil
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var table map[string]cluster.TenantAuth
	if err := json.Unmarshal(raw, &table); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return table, nil
}

func run(o options) error {
	logger := log.New(os.Stderr, "dedup-gw: ", log.LstdFlags)
	level, err := events.ParseLevel(o.logLevel)
	if err != nil {
		return err
	}
	evlog := events.New(events.Options{
		Level:           level,
		Out:             os.Stderr,
		SlowOpThreshold: o.slowOp,
	})
	shards, err := parseShards(o.shards)
	if err != nil {
		return err
	}
	tenants, err := loadTenants(o.tenantsFile)
	if err != nil {
		return err
	}
	gw, err := cluster.NewGateway(cluster.GatewayConfig{
		Shards:        shards,
		VNodes:        o.vnodes,
		Replication:   o.replication,
		Tenants:       tenants,
		MaxSessions:   o.maxSessions,
		Window:        o.window,
		IdleTimeout:   o.idleTimeout,
		ResumeTimeout: o.resumeTimeout,
		Events:        evlog,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	ids := make([]string, len(shards))
	for i, s := range shards {
		ids[i] = s.ID
	}
	logger.Printf("listening on %s, routing %d shards (%s), replication %d, %d tenants, max sessions %d, window %d",
		ln.Addr(), len(shards), strings.Join(ids, " "), gw.Replication(), len(tenants), o.maxSessions, o.window)

	var draining atomic.Bool
	var msrv *http.Server
	if o.metricsAddr != "" {
		msrv = metricsServer(o.metricsAddr, gw, evlog, &draining, logger)
		go func() {
			if err := msrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Printf("metrics server: %v", err)
			}
		}()
		logger.Printf("debug endpoints on http://%s: /metrics.json /healthz /events.json /drain-shard /debug/pprof/", o.metricsAddr)
	}

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- gw.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-sigCtx.Done():
	}
	stop() // second signal kills the process
	draining.Store(true)
	logger.Printf("draining (timeout %v)...", o.drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	if err := gw.Drain(drainCtx); err != nil {
		logger.Printf("drain incomplete: %v (sessions aborted)", err)
	}
	<-serveErr
	if msrv != nil {
		msrv.Close()
	}
	balance := gw.ShardStats()
	for _, id := range ids {
		logger.Printf("shard %s: %d files, %d logical bytes homed", id, balance[id][0], balance[id][1])
	}
	logger.Printf("shut down")
	return nil
}

// metricsServer is the gateway's debug/admin endpoint set.
func metricsServer(addr string, gw *cluster.Gateway, evlog *events.Log,
	draining *atomic.Bool, logger *log.Logger) *http.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		export := metrics.Default.ExportAll()
		type shardLine struct {
			ID    string `json:"id"`
			Files int64  `json:"files"`
			Bytes int64  `json:"bytes"`
		}
		stats := gw.ShardStats()
		shardDoc := make([]shardLine, 0, len(stats))
		for id, fb := range stats {
			shardDoc = append(shardDoc, shardLine{ID: id, Files: fb[0], Bytes: fb[1]})
		}
		sort.Slice(shardDoc, func(a, b int) bool { return shardDoc[a].ID < shardDoc[b].ID })
		doc := struct {
			Counters   map[string]int64                     `json:"counters"`
			Gauges     map[string]int64                     `json:"gauges,omitempty"`
			Histograms map[string]metrics.HistogramSnapshot `json:"histograms,omitempty"`
			Sessions   int                                  `json:"sessions"`
			Shards     []shardLine                          `json:"shards"`
			Tenants    map[string]int64                     `json:"tenant_used_bytes"`
		}{
			Counters:   export.Counters,
			Gauges:     export.Gauges,
			Histograms: export.Histograms,
			Sessions:   gw.SessionCount(),
			Shards:     shardDoc,
			Tenants:    gw.Tenants().Usage(),
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc)
	})
	mux.HandleFunc("/events.json", func(w http.ResponseWriter, r *http.Request) {
		evs := evlog.Recent()
		type line struct {
			Time  string `json:"time"`
			Level string `json:"level"`
			Type  string `json:"type"`
			Line  string `json:"line"`
		}
		out := make([]line, len(evs))
		for i, e := range evs {
			out[i] = line{
				Time:  e.Time.Format(time.RFC3339Nano),
				Level: e.Level.String(),
				Type:  e.Type,
				Line:  e.String(),
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Events []line `json:"events"`
		}{Events: out})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	// POST /drain-shard?id=s1 — the online rebalance verb: remove a shard
	// from the write ring while keeping its stored files readable.
	mux.HandleFunc("/drain-shard", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		id := r.URL.Query().Get("id")
		if id == "" {
			http.Error(w, "missing ?id=", http.StatusBadRequest)
			return
		}
		if err := gw.DrainShard(id); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		logger.Printf("shard %s removed from the write ring", id)
		fmt.Fprintf(w, "shard %s draining\n", id)
	})
	// POST /rebalance-shard?id=s1 — drain and EMPTY the shard: every file
	// it holds is migrated to the file's new write-ring owners and only
	// then dropped, leaving the shard safe to decommission.
	mux.HandleFunc("/rebalance-shard", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		id := r.URL.Query().Get("id")
		if id == "" {
			http.Error(w, "missing ?id=", http.StatusBadRequest)
			return
		}
		rep, err := gw.RebalanceShard(id)
		if err != nil {
			logger.Printf("rebalance of %s failed: %v (report %+v)", id, err, rep)
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		logger.Printf("shard %s rebalanced: %d files, %d migrated, %d dropped", id, rep.Files, rep.Migrated, rep.Dropped)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(rep)
	})
	// POST /repair-scan — re-replicate under-replicated files back to the
	// configured factor (after a shard death, or after raising -replication).
	mux.HandleFunc("/repair-scan", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		rep, err := gw.RepairScan()
		if err != nil {
			logger.Printf("repair scan incomplete: %v (report %+v)", err, rep)
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		logger.Printf("repair scan: %d files, %d repaired, %d unfixable, %d skipped",
			rep.Files, rep.Repaired, rep.Unfixable, rep.Skipped)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(rep)
	})
	// GET /replication — the invariant check: which files are missing from
	// one of their write-ring owners.
	mux.HandleFunc("/replication", func(w http.ResponseWriter, r *http.Request) {
		rep := gw.CheckReplication()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(rep)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return &http.Server{Addr: addr, Handler: mux}
}
