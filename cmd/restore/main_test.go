package main

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"mhdedup/dedup"
)

func buildStore(t *testing.T) (string, map[string][]byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	files := map[string][]byte{}
	eng, err := dedup.New(dedup.MHD, dedup.Options{ECS: 512, SD: 4, BloomBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"m0/a", "m0/b"} {
		data := make([]byte, 120_000)
		rng.Read(data)
		files[name] = data
		if err := eng.PutFile(name, bytes.NewReader(data)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Finish(); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "store")
	if err := dedup.SaveStore(eng, dir); err != nil {
		t.Fatal(err)
	}
	return dir, files
}

func TestRestoreSingleFile(t *testing.T) {
	storeDir, files := buildStore(t)
	out := filepath.Join(t.TempDir(), "a.out")
	if err := run(storeDir, false, "m0/a", false, out); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, files["m0/a"]) {
		t.Error("restored file differs")
	}
}

func TestRestoreAll(t *testing.T) {
	storeDir, files := buildStore(t)
	outDir := t.TempDir()
	if err := run(storeDir, false, "", true, outDir); err != nil {
		t.Fatal(err)
	}
	for name, want := range files {
		got, err := os.ReadFile(filepath.Join(outDir, filepath.FromSlash(name)))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s differs", name)
		}
	}
}

func TestRestoreList(t *testing.T) {
	storeDir, _ := buildStore(t)
	if err := run(storeDir, true, "", false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreErrors(t *testing.T) {
	storeDir, _ := buildStore(t)
	cases := []struct {
		store, file string
		list, all   bool
		out         string
	}{
		{"", "", true, false, ""},                                          // no store
		{storeDir, "", false, false, ""},                                   // no mode
		{storeDir, "x", false, false, ""},                                  // -file without -out
		{storeDir, "", false, true, ""},                                    // -all without -out
		{storeDir, "ghost", false, false, filepath.Join(t.TempDir(), "g")}, // unknown file
	}
	for i, c := range cases {
		if err := run(c.store, c.list, c.file, c.all, c.out); err == nil {
			t.Errorf("case %d should have failed", i)
		}
	}
}

func TestDeleteAndGC(t *testing.T) {
	storeDir, files := buildStore(t)
	if err := run2(storeDir, false, "", false, "", false, "m0/a", true); err != nil {
		t.Fatal(err)
	}
	// Reopen: m0/a gone, m0/b intact and restorable.
	st, err := dedup.OpenStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	names := st.Files()
	if len(names) != 1 || names[0] != "m0/b" {
		t.Fatalf("Files after delete = %v", names)
	}
	var got bytes.Buffer
	if err := st.Restore("m0/b", &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), files["m0/b"]) {
		t.Error("survivor corrupted by GC")
	}
	if problems := st.Check(); len(problems) != 0 {
		t.Errorf("store inconsistent after GC: %v", problems)
	}
}

func TestCheckFlag(t *testing.T) {
	storeDir, _ := buildStore(t)
	if err := run2(storeDir, false, "", false, "", true, "", false); err != nil {
		t.Fatal(err)
	}
}
