package main

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"mhdedup/dedup"
	"mhdedup/internal/simdisk"
)

func buildStore(t *testing.T) (string, map[string][]byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	files := map[string][]byte{}
	eng, err := dedup.New(dedup.MHD, dedup.Options{ECS: 512, SD: 4, BloomBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"m0/a", "m0/b"} {
		data := make([]byte, 120_000)
		rng.Read(data)
		files[name] = data
		if err := eng.PutFile(name, bytes.NewReader(data)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Finish(); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "store")
	if err := dedup.SaveStore(eng, dir); err != nil {
		t.Fatal(err)
	}
	return dir, files
}

// corruptOneContainer flips a bit in one stored Data container of the store
// directory and saves the damage back, returning the container's name.
func corruptOneContainer(t *testing.T, storeDir string) string {
	t.Helper()
	// Corrupt via the public surface: load, flip one stored bit, save.
	disk, err := simdisk.LoadDir(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	names := disk.Names(simdisk.Data)
	if len(names) == 0 {
		t.Fatal("store has no containers")
	}
	sort.Strings(names)
	fd := simdisk.NewFaultDisk(disk, simdisk.FaultPlan{Seed: 9})
	if err := fd.FlipStoredBit(simdisk.Data, names[0], 37); err != nil {
		t.Fatal(err)
	}
	if err := disk.SaveDir(storeDir); err != nil {
		t.Fatal(err)
	}
	return names[0]
}

func TestRestoreSingleFile(t *testing.T) {
	storeDir, files := buildStore(t)
	out := filepath.Join(t.TempDir(), "a.out")
	if err := run(restoreOptions{storeDir: storeDir, file: "m0/a", out: out}, io.Discard); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, files["m0/a"]) {
		t.Error("restored file differs")
	}
	if _, err := os.Stat(out + ".tmp"); !os.IsNotExist(err) {
		t.Error("temp file left behind after successful restore")
	}
}

func TestRestoreAll(t *testing.T) {
	storeDir, files := buildStore(t)
	outDir := t.TempDir()
	if err := run(restoreOptions{storeDir: storeDir, all: true, out: outDir, verify: true}, io.Discard); err != nil {
		t.Fatal(err)
	}
	for name, want := range files {
		got, err := os.ReadFile(filepath.Join(outDir, filepath.FromSlash(name)))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s differs", name)
		}
	}
}

func TestRestoreList(t *testing.T) {
	storeDir, _ := buildStore(t)
	if err := run(restoreOptions{storeDir: storeDir, list: true}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreErrors(t *testing.T) {
	storeDir, _ := buildStore(t)
	cases := []restoreOptions{
		{list: true},                    // no store
		{storeDir: storeDir},            // no mode
		{storeDir: storeDir, file: "x"}, // -file without -out
		{storeDir: storeDir, all: true}, // -all without -out
		{storeDir: storeDir, file: "ghost", out: filepath.Join(t.TempDir(), "g")}, // unknown file
	}
	for i, o := range cases {
		if err := run(o, io.Discard); err == nil {
			t.Errorf("case %d should have failed", i)
		}
	}
}

func TestRestoreFailureLeavesNoPartialOutput(t *testing.T) {
	storeDir, _ := buildStore(t)
	corruptOneContainer(t, storeDir)
	outDir := t.TempDir()
	var buf bytes.Buffer
	err := run(restoreOptions{storeDir: storeDir, all: true, out: outDir, verify: true}, &buf)
	if err == nil {
		t.Fatal("verified restore of a corrupt store should exit non-zero")
	}
	if !strings.Contains(buf.String(), "FAILED") {
		t.Errorf("per-file summary missing FAILED line:\n%s", buf.String())
	}
	// No final-named output of a failed file, truncated or otherwise, and
	// no temp debris.
	entries, err := os.ReadDir(filepath.Join(outDir, "m0"))
	if err != nil && !os.IsNotExist(err) {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
	// Every file that was written must be byte-complete: a verified restore
	// never renames a partial file into place. (Completeness is attested by
	// the summary: files reported "restored" exist, failed ones do not.)
	out := buf.String()
	for _, e := range entries {
		if !strings.Contains(out, "restored m0/"+e.Name()) {
			t.Errorf("file %s exists but was not reported restored", e.Name())
		}
	}
}

func TestScrubFlagQuarantinesAndSaves(t *testing.T) {
	storeDir, _ := buildStore(t)
	bad := corruptOneContainer(t, storeDir)
	var buf bytes.Buffer
	if err := run(restoreOptions{storeDir: storeDir, scrub: true}, &buf); err != nil {
		t.Fatalf("scrub: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "quarantined data/"+bad) {
		t.Errorf("scrub output does not report the quarantined container:\n%s", buf.String())
	}
	if _, err := os.Stat(filepath.Join(storeDir, "quarantine", "data-"+bad)); err != nil {
		t.Errorf("quarantined bytes not preserved: %v", err)
	}
	// The scrubbed store was saved back: a fresh scrub is clean.
	buf.Reset()
	if err := run(restoreOptions{storeDir: storeDir, scrub: true}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "store is clean") {
		t.Errorf("second scrub not clean:\n%s", buf.String())
	}
}

func TestDeleteAndGC(t *testing.T) {
	storeDir, files := buildStore(t)
	if err := run(restoreOptions{storeDir: storeDir, del: "m0/a", gc: true}, io.Discard); err != nil {
		t.Fatal(err)
	}
	// Reopen: m0/a gone, m0/b intact and restorable.
	st, err := dedup.OpenStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	names := st.Files()
	if len(names) != 1 || names[0] != "m0/b" {
		t.Fatalf("Files after delete = %v", names)
	}
	var got bytes.Buffer
	if err := st.Restore("m0/b", &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), files["m0/b"]) {
		t.Error("survivor corrupted by GC")
	}
	if problems := st.Check(); len(problems) != 0 {
		t.Errorf("store inconsistent after GC: %v", problems)
	}
}

func TestCheckFlag(t *testing.T) {
	storeDir, _ := buildStore(t)
	if err := run(restoreOptions{storeDir: storeDir, check: true}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

// TestRestoreWorkersMatchesSerial is the CLI-level differential check:
// -workers 8 (with a reorder window small enough to make the pipeline
// constantly recycle buffers) must write byte-identical output to the
// legacy serial path (-workers 0), for single-file and -all restores,
// plain and verified.
func TestRestoreWorkersMatchesSerial(t *testing.T) {
	storeDir, files := buildStore(t)
	for _, verify := range []bool{false, true} {
		serialDir, parallelDir := t.TempDir(), t.TempDir()
		if err := run(restoreOptions{storeDir: storeDir, all: true, out: serialDir, verify: verify, workers: 0}, io.Discard); err != nil {
			t.Fatal(err)
		}
		if err := run(restoreOptions{storeDir: storeDir, all: true, out: parallelDir, verify: verify,
			workers: 8, window: 4 << 10}, io.Discard); err != nil {
			t.Fatal(err)
		}
		for name := range files {
			rel := filepath.FromSlash(name)
			serial, err := os.ReadFile(filepath.Join(serialDir, rel))
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := os.ReadFile(filepath.Join(parallelDir, rel))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(serial, parallel) {
				t.Errorf("verify=%v: %s differs between -workers 0 and -workers 8", verify, name)
			}
			if !bytes.Equal(serial, files[name]) {
				t.Errorf("verify=%v: %s differs from original", verify, name)
			}
		}
	}
	out := filepath.Join(t.TempDir(), "one.out")
	if err := run(restoreOptions{storeDir: storeDir, file: "m0/a", out: out, workers: 8, window: 1}, io.Discard); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, files["m0/a"]) {
		t.Error("-workers 8 single-file restore differs from original")
	}
}

func TestRestoreRejectsNegativeWorkers(t *testing.T) {
	storeDir, _ := buildStore(t)
	err := run(restoreOptions{storeDir: storeDir, list: true, workers: -1}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-workers") {
		t.Fatalf("negative -workers accepted: %v", err)
	}
}

// TestRestoreListAndAllDeterministic pins the reporting order: -list
// output and the per-file lines of -all must be sorted and identical
// across runs, so diffs of restore logs (and the differential harness
// built on them) never churn on map iteration order.
func TestRestoreListAndAllDeterministic(t *testing.T) {
	storeDir, _ := buildStore(t)
	var prev string
	for i := 0; i < 3; i++ {
		var buf bytes.Buffer
		if err := run(restoreOptions{storeDir: storeDir, list: true}, &buf); err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
		if !sort.StringsAreSorted(lines) {
			t.Fatalf("-list output not sorted: %q", lines)
		}
		if i > 0 && buf.String() != prev {
			t.Fatalf("-list output changed between runs:\n%s\nvs\n%s", prev, buf.String())
		}
		prev = buf.String()
	}
	prev = ""
	for i := 0; i < 3; i++ {
		var buf bytes.Buffer
		if err := run(restoreOptions{storeDir: storeDir, all: true, out: t.TempDir(), workers: 2}, &buf); err != nil {
			t.Fatal(err)
		}
		if i > 0 && buf.String() != prev {
			t.Fatalf("-all report changed between runs:\n%s\nvs\n%s", prev, buf.String())
		}
		prev = buf.String()
	}
}

func TestRestoreRangedCLI(t *testing.T) {
	storeDir, files := buildStore(t)
	want := files["m0/a"]

	// An interior window, a tail clamped past EOF, and an offset with the
	// default to-EOF length.
	for _, tc := range []struct {
		offset, length int64
		lo, hi         int64
	}{
		{4096, 10_000, 4096, 14_096},
		{int64(len(want)) - 100, 5000, int64(len(want)) - 100, int64(len(want))},
		{77, -1, 77, int64(len(want))},
	} {
		for _, verify := range []bool{false, true} {
			out := filepath.Join(t.TempDir(), "slice.out")
			opts := restoreOptions{storeDir: storeDir, file: "m0/a", out: out,
				offset: tc.offset, length: tc.length, verify: verify}
			var buf bytes.Buffer
			if err := run(opts, &buf); err != nil {
				t.Fatalf("ranged run(offset=%d length=%d verify=%v): %v", tc.offset, tc.length, verify, err)
			}
			got, err := os.ReadFile(out)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want[tc.lo:tc.hi]) {
				t.Errorf("offset=%d length=%d verify=%v: got %d bytes, want [%d:%d)",
					tc.offset, tc.length, verify, len(got), tc.lo, tc.hi)
			}
			if !strings.Contains(buf.String(), "range [") {
				t.Errorf("summary missing range line: %q", buf.String())
			}
		}
	}

	// -offset/-length without -file is refused.
	err := run(restoreOptions{storeDir: storeDir, all: true, out: t.TempDir(), offset: 5}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "require -file") {
		t.Fatalf("ranged -all: %v", err)
	}
}
