// Command restore rebuilds files from a deduplicated store previously
// saved with `dedup -save <dir>` (or dedup.SaveStore).
//
// Examples:
//
//	restore -store /tmp/store -list
//	restore -store /tmp/store -file m00/d01 -out /tmp/m00-d01.img
//	restore -store /tmp/store -all -out /tmp/restored/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mhdedup/dedup"
)

func main() {
	var (
		storeDir = flag.String("store", "", "directory written by dedup -save (required)")
		list     = flag.Bool("list", false, "list restorable files")
		file     = flag.String("file", "", "file to restore")
		all      = flag.Bool("all", false, "restore every file")
		out      = flag.String("out", "", "output file (-file) or directory (-all)")
		check    = flag.Bool("check", false, "run a consistency check of the store (fsck)")
		del      = flag.String("delete", "", "delete a file's recipe from the store")
		gc       = flag.Bool("gc", false, "reclaim unreferenced containers after deletions")
	)
	flag.Parse()
	if err := run2(*storeDir, *list, *file, *all, *out, *check, *del, *gc); err != nil {
		fmt.Fprintln(os.Stderr, "restore:", err)
		os.Exit(1)
	}
}

func run2(storeDir string, list bool, file string, all bool, out string, check bool, del string, gc bool) error {
	if del != "" || gc {
		if storeDir == "" {
			return fmt.Errorf("-store is required")
		}
		st, err := dedup.OpenStore(storeDir)
		if err != nil {
			return err
		}
		if del != "" {
			if err := st.Delete(del); err != nil {
				return err
			}
			fmt.Printf("deleted %s\n", del)
		}
		if gc {
			stats, err := st.Sweep()
			if err != nil {
				return err
			}
			fmt.Printf("gc: reclaimed %d containers (%d bytes), %d manifests, %d hooks\n",
				stats.ContainersDeleted, stats.BytesReclaimed, stats.ManifestsDeleted, stats.HooksDeleted)
		}
		// Persist the post-GC store back to the directory.
		if err := saveBack(st, storeDir); err != nil {
			return err
		}
		return nil
	}
	if check {
		if storeDir == "" {
			return fmt.Errorf("-store is required")
		}
		st, err := dedup.OpenStore(storeDir)
		if err != nil {
			return err
		}
		problems := st.Check()
		if len(problems) == 0 {
			fmt.Println("store is consistent")
			if list || file != "" || all {
				return run(storeDir, list, file, all, out)
			}
			return nil
		}
		for _, p := range problems {
			fmt.Println("PROBLEM:", p)
		}
		return fmt.Errorf("%d problems found", len(problems))
	}
	return run(storeDir, list, file, all, out)
}

func run(storeDir string, list bool, file string, all bool, out string) error {
	if storeDir == "" {
		return fmt.Errorf("-store is required")
	}
	st, err := dedup.OpenStore(storeDir)
	if err != nil {
		return err
	}
	switch {
	case list:
		for _, name := range st.Files() {
			fmt.Println(name)
		}
		return nil
	case all:
		if out == "" {
			return fmt.Errorf("-all requires -out directory")
		}
		for _, name := range st.Files() {
			path := filepath.Join(out, filepath.FromSlash(strings.ReplaceAll(name, ":", "_")))
			if err := restoreTo(st, name, path); err != nil {
				return err
			}
			fmt.Printf("restored %s\n", name)
		}
		return nil
	case file != "":
		if out == "" {
			return fmt.Errorf("-file requires -out path")
		}
		if err := restoreTo(st, file, out); err != nil {
			return err
		}
		fmt.Printf("restored %s to %s\n", file, out)
		return nil
	default:
		return fmt.Errorf("one of -list, -file or -all is required")
	}
}

// saveBack rewrites the store directory to reflect deletions and sweeps.
func saveBack(st *dedup.Store, dir string) error {
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	return st.Save(dir)
}

func restoreTo(st *dedup.Store, name, path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := st.Restore(name, f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
