// Command restore rebuilds files from a deduplicated store previously
// saved with `dedup -save <dir>` (or dedup.SaveStore).
//
// Examples:
//
//	restore -store /tmp/store -list
//	restore -store /tmp/store -file m00/d01 -out /tmp/m00-d01.img
//	restore -store /tmp/store -all -out /tmp/restored/
//	restore -store /tmp/store -all -out /tmp/restored/ -verify
//	restore -store /tmp/store -scrub
//	restore -store /tmp/store -file m00/d01 -offset 1048576 -length 4096 -out /tmp/slice.bin
//	restore -remote localhost:7444 -list
//	restore -remote localhost:7444 -file m00/d01 -out /tmp/m00-d01.img -verify
//
// -remote host:port restores from a running dedupd server instead of a
// local store directory: -list, -file and -all work the same; with
// -verify the server rebuilds through its verifying path and the client
// additionally checks the received stream against the server's declared
// whole-file hash. Maintenance operations (-check, -scrub, -delete, -gc)
// are local-only.
//
// Opening a store runs crash recovery first: if a previous save was
// interrupted, its partial generation is rolled back and the last
// consistent one is mounted. With -verify every chunk is re-hashed against
// the content address its manifest vouches for before a byte is written,
// so corrupt stores fail loudly instead of producing corrupt output. Output
// files are written atomically (to <name>.tmp, renamed into place on
// success), so an interrupted or failed restore never leaves a truncated
// file that looks complete. -scrub verifies the whole store, quarantines
// objects with persistent damage under <store>/quarantine/, and saves the
// cleaned store back.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mhdedup/dedup"
	"mhdedup/internal/client"
	"mhdedup/internal/events"
)

func main() {
	var o restoreOptions
	flag.StringVar(&o.storeDir, "store", "", "directory written by dedup -save (required)")
	flag.BoolVar(&o.list, "list", false, "list restorable files")
	flag.StringVar(&o.file, "file", "", "file to restore")
	flag.BoolVar(&o.all, "all", false, "restore every file")
	flag.StringVar(&o.out, "out", "", "output file (-file) or directory (-all)")
	flag.BoolVar(&o.check, "check", false, "run a consistency check of the store (fsck)")
	flag.BoolVar(&o.verify, "verify", false, "re-hash every chunk against its content address while restoring")
	flag.BoolVar(&o.scrub, "scrub", false, "verify the whole store and quarantine corrupt objects")
	flag.StringVar(&o.del, "delete", "", "delete a file's recipe from the store")
	flag.BoolVar(&o.gc, "gc", false, "reclaim unreferenced containers after deletions")
	flag.Int64Var(&o.offset, "offset", 0, "with -file: restore starting at this byte offset")
	flag.Int64Var(&o.length, "length", -1, "with -file: restore this many bytes (<= 0 means to end of file; ranges past EOF are clamped)")
	flag.StringVar(&o.remote, "remote", "", "restore from a dedupd server at host:port instead of -store")
	flag.StringVar(&o.tenant, "tenant", "", "tenant name for a multi-tenant server or gateway")
	flag.StringVar(&o.secret, "secret", "", "tenant secret (with -tenant)")
	flag.IntVar(&o.workers, "workers", 4, "concurrent container reads per restore through the batched pipeline (0 = legacy serial path)")
	flag.Int64Var(&o.window, "window", 8<<20, "restore reorder-buffer budget in bytes")
	flag.StringVar(&o.logLevel, "log-level", "warn", "structured event log level on stderr: debug, info, warn or error")
	flag.Parse()
	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "restore:", err)
		os.Exit(1)
	}
}

// restoreOptions carries every flag; one struct so tests can name the
// fields they care about.
type restoreOptions struct {
	storeDir string
	list     bool
	file     string
	all      bool
	out      string
	check    bool
	verify   bool
	scrub    bool
	del      string
	gc       bool
	offset   int64
	length   int64
	remote   string
	tenant   string
	secret   string
	workers  int
	window   int64
	logLevel string
}

// ranged reports whether the user asked for a byte range. Offset 0 with a
// non-positive length — the zero value and the flag defaults — means the
// whole file and takes the ordinary path; the library layer's "length 0 =
// zero bytes" precision is not reachable from this CLI.
func (o restoreOptions) ranged() bool { return o.offset != 0 || o.length > 0 }

func run(o restoreOptions, w io.Writer) error {
	if o.remote != "" {
		return runRemote(o, w)
	}
	if o.storeDir == "" {
		return fmt.Errorf("-store or -remote is required")
	}
	if o.workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", o.workers)
	}
	st, err := dedup.OpenStore(o.storeDir)
	if err != nil {
		return err
	}
	// -workers >= 1 routes restores through the batched parallel pipeline;
	// 0 keeps the serial per-ref reference path. Output bytes are
	// identical either way (differentially tested).
	st.SetRestoreOptions(dedup.RestoreOptions{Workers: o.workers, WindowBytes: o.window})

	if o.scrub {
		if err := runScrub(st, o.storeDir, w); err != nil {
			return err
		}
		if !o.list && o.file == "" && !o.all {
			return nil
		}
	}
	if o.del != "" || o.gc {
		if o.del != "" {
			if err := st.Delete(o.del); err != nil {
				return err
			}
			fmt.Fprintf(w, "deleted %s\n", o.del)
		}
		if o.gc {
			stats, err := st.Sweep()
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "gc: reclaimed %d containers (%d bytes), %d manifests, %d hooks\n",
				stats.ContainersDeleted, stats.BytesReclaimed, stats.ManifestsDeleted, stats.HooksDeleted)
		}
		// Persist the post-GC store: SaveDir commits a new generation
		// atomically, so a crash here loses nothing.
		return st.Save(o.storeDir)
	}
	if o.check {
		problems := st.Check()
		if len(problems) == 0 {
			fmt.Fprintln(w, "store is consistent")
		} else {
			for _, p := range problems {
				fmt.Fprintln(w, "PROBLEM:", p)
			}
			return fmt.Errorf("%d problems found", len(problems))
		}
		if !o.list && o.file == "" && !o.all {
			return nil
		}
	}

	restore := st.Restore
	if o.verify {
		restore = st.VerifyRestore
	}
	if o.ranged() {
		if o.file == "" {
			return fmt.Errorf("-offset/-length require -file")
		}
		restore = func(name string, dst io.Writer) error {
			rr := st.RestoreRange
			if o.verify {
				rr = st.VerifyRestoreRange
			}
			stats, err := rr(name, o.offset, o.length, dst)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "range [%d, %d): %d bytes, %d recipe reads\n",
				stats.Offset, stats.Offset+stats.Length, stats.Length, stats.RecipeReads)
			return nil
		}
	}
	switch {
	case o.list:
		for _, name := range st.Files() {
			fmt.Fprintln(w, name)
		}
		return nil
	case o.all:
		if o.out == "" {
			return fmt.Errorf("-all requires -out directory")
		}
		// Restore every file, continuing past per-file failures: one bad
		// container must not hold the rest of the archive hostage. Each
		// outcome is reported; any failure makes the run exit non-zero.
		var ok, failed int
		for _, name := range st.Files() {
			path := filepath.Join(o.out, filepath.FromSlash(strings.ReplaceAll(name, ":", "_")))
			if err := restoreTo(restore, name, path); err != nil {
				fmt.Fprintf(w, "FAILED   %s: %v\n", name, err)
				failed++
				continue
			}
			fmt.Fprintf(w, "restored %s\n", name)
			ok++
		}
		fmt.Fprintf(w, "%d restored, %d failed\n", ok, failed)
		if failed > 0 {
			return fmt.Errorf("%d of %d files failed to restore", failed, ok+failed)
		}
		return nil
	case o.file != "":
		if o.out == "" {
			return fmt.Errorf("-file requires -out path")
		}
		if err := restoreTo(restore, o.file, o.out); err != nil {
			return err
		}
		fmt.Fprintf(w, "restored %s to %s\n", o.file, o.out)
		return nil
	default:
		return fmt.Errorf("one of -list, -file, -all, -check, -scrub, -delete or -gc is required")
	}
}

// runRemote serves -list, -file and -all from a dedupd server over the
// wire protocol. The received stream is always checked against the
// server's declared size and whole-file hash; -verify additionally makes
// the server rebuild through its verifying store path.
func runRemote(o restoreOptions, w io.Writer) error {
	if o.check || o.scrub || o.del != "" || o.gc {
		return fmt.Errorf("-check, -scrub, -delete and -gc operate on a local -store, not -remote")
	}
	level, err := events.ParseLevel(o.logLevel)
	if err != nil {
		return err
	}
	cfg := client.Config{
		Addr:   o.remote,
		Tenant: o.tenant,
		Secret: o.secret,
		Events: events.New(events.Options{Level: level, Out: os.Stderr}),
	}
	restore := func(name string, dst io.Writer) error {
		_, err := client.Restore(cfg, name, o.verify, dst)
		return err
	}
	if o.ranged() {
		if o.file == "" {
			return fmt.Errorf("-offset/-length require -file")
		}
		restore = func(name string, dst io.Writer) error {
			res, err := client.RestoreRange(cfg, name, o.verify, o.offset, o.length, dst)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "range from %d: %d bytes\n", o.offset, res.Bytes)
			return nil
		}
	}
	// The server happens to sort its List response, but a third-party
	// dedupd need not: sort client-side too, so -list output and the
	// -all iteration order (and therefore its summary and any
	// differential comparison over it) are deterministic regardless of
	// what the wire delivered.
	listSorted := func() ([]string, error) {
		names, err := client.List(cfg)
		if err != nil {
			return nil, err
		}
		sort.Strings(names)
		return names, nil
	}
	switch {
	case o.list:
		names, err := listSorted()
		if err != nil {
			return err
		}
		for _, name := range names {
			fmt.Fprintln(w, name)
		}
		return nil
	case o.all:
		if o.out == "" {
			return fmt.Errorf("-all requires -out directory")
		}
		names, err := listSorted()
		if err != nil {
			return err
		}
		var ok, failed int
		for _, name := range names {
			path := filepath.Join(o.out, filepath.FromSlash(strings.ReplaceAll(name, ":", "_")))
			if err := restoreTo(restore, name, path); err != nil {
				fmt.Fprintf(w, "FAILED   %s: %v\n", name, err)
				failed++
				continue
			}
			fmt.Fprintf(w, "restored %s\n", name)
			ok++
		}
		fmt.Fprintf(w, "%d restored, %d failed\n", ok, failed)
		if failed > 0 {
			return fmt.Errorf("%d of %d files failed to restore", failed, ok+failed)
		}
		return nil
	case o.file != "":
		if o.out == "" {
			return fmt.Errorf("-file requires -out path")
		}
		if err := restoreTo(restore, o.file, o.out); err != nil {
			return err
		}
		fmt.Fprintf(w, "restored %s to %s\n", o.file, o.out)
		return nil
	default:
		return fmt.Errorf("one of -list, -file or -all is required with -remote")
	}
}

// runScrub verifies every container of the store, quarantines persistently
// damaged objects, reports, and persists the scrubbed store.
func runScrub(st *dedup.Store, dir string, w io.Writer) error {
	rep, err := st.Scrub(dedup.VerifyOpts{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "scrub: %d containers checked, %d entries verified\n",
		rep.ContainersChecked, rep.EntriesVerified)
	for _, m := range rep.Corrupt {
		fmt.Fprintln(w, "CORRUPT:", m.String())
	}
	for _, name := range rep.Unreadable {
		fmt.Fprintf(w, "UNREADABLE: container %s\n", name)
	}
	for _, name := range rep.BadManifests {
		fmt.Fprintf(w, "BAD MANIFEST: %s\n", name)
	}
	for _, q := range rep.Quarantined {
		fmt.Fprintf(w, "quarantined %s\n", q)
	}
	for _, f := range rep.AffectedFiles {
		fmt.Fprintf(w, "file lost data: %s\n", f)
	}
	if rep.OK() {
		fmt.Fprintln(w, "scrub: store is clean")
		return nil
	}
	if err := st.Save(dir); err != nil {
		return err
	}
	fmt.Fprintf(w, "scrub: quarantined %d objects into %s\n",
		len(rep.Quarantined), filepath.Join(dir, "quarantine"))
	return nil
}

// restoreTo writes one restored file atomically: the bytes go to
// <path>.tmp, which is fsynced and renamed into place only after the
// restore completed. On any error the temp file is removed, so a failed or
// interrupted restore never leaves a truncated file under the final name.
func restoreTo(restore func(string, io.Writer) error, name, path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	cleanup := func() {
		f.Close()
		os.Remove(tmp)
	}
	if err := restore(name, f); err != nil {
		cleanup()
		return err
	}
	if err := f.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
