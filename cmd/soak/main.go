// Command soak is the cluster churn harness: it stands up an in-process
// dedup cluster (N dedupd shards + one dedup-gw gateway, all over real
// loopback TCP) and hammers it with concurrent simulated clients — a
// tenant mix running ingest, restore-and-verify, list, session churn and
// injected connection deaths — while draining one shard mid-run. Every
// restored byte is compared against independently tracked expected
// content; the run FAILS on any corruption, any unexpected error, or a
// final heap footprint above the bound.
//
// With -replication N each file is stored on N distinct shards, and
// -kill-shard hard-kills one shard halfway through (then drains it from
// the write ring and repairs afterwards): every file acked before or
// after the kill must still verify bit-identical — the N>=2 durability
// claim, gated under full churn.
//
//	soak -duration 2m -shards 3 -clients 6
//	soak -short            # the ~30s CI preset
//	soak -short -replication 2 -kill-shard
//
// Exit status 0 means: zero corruption, all verifications passed, heap
// within budget.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"log"
	"math/rand"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mhdedup/internal/client"
	"mhdedup/internal/cluster"
	"mhdedup/internal/core"
	"mhdedup/internal/events"
	"mhdedup/internal/exp"
	"mhdedup/internal/metrics"
	"mhdedup/internal/server"
	"mhdedup/internal/wire"
)

func main() {
	var o options
	flag.BoolVar(&o.short, "short", false, "CI preset: ~30s, 3 shards, 4 clients, small files")
	flag.DurationVar(&o.duration, "duration", 2*time.Minute, "churn phase length")
	flag.IntVar(&o.shards, "shards", 3, "number of dedupd shards")
	flag.IntVar(&o.replication, "replication", 1, "distinct shards holding each file")
	flag.BoolVar(&o.killShard, "kill-shard", false, "hard-kill one shard mid-run (requires -replication >= 2); all acked files must still verify")
	flag.IntVar(&o.clients, "clients", 6, "concurrent simulated clients")
	flag.IntVar(&o.fileSize, "file-size", 1<<20, "base file size in bytes")
	flag.IntVar(&o.filesPerClient, "files-per-client", 6, "distinct file names each client cycles through")
	flag.Int64Var(&o.seed, "seed", 1, "root RNG seed (runs are deterministic per seed, modulo scheduling)")
	flag.IntVar(&o.killPercent, "kill-percent", 25, "percent of ingest sessions that get an injected connection death")
	flag.IntVar(&o.maxHeapMB, "max-heap-mb", 1024, "fail if post-GC HeapAlloc exceeds this after the run")
	flag.StringVar(&o.logLevel, "log-level", "warn", "cluster event log level: debug, info, warn or error")
	flag.Parse()
	if o.short {
		o.duration = 25 * time.Second
		o.shards = 3
		o.clients = 4
		o.fileSize = 256 << 10
		o.filesPerClient = 4
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "soak: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("soak: PASS")
}

type options struct {
	short          bool
	duration       time.Duration
	shards         int
	replication    int
	killShard      bool
	clients        int
	fileSize       int
	filesPerClient int
	seed           int64
	killPercent    int
	maxHeapMB      int
	logLevel       string
}

// tally is the shared op ledger.
type tally struct {
	ingests     atomic.Int64
	restores    atomic.Int64
	lists       atomic.Int64
	reconnects  atomic.Int64
	kills       atomic.Int64
	quotaSheds  atomic.Int64
	putRejects  atomic.Int64
	corruptions atomic.Int64
}

func run(o options) error {
	logger := log.New(os.Stderr, "soak: ", log.LstdFlags)
	level, err := events.ParseLevel(o.logLevel)
	if err != nil {
		return err
	}
	evlog := events.New(events.Options{Level: level, Out: os.Stderr})
	if o.killShard {
		if o.replication < 2 {
			return fmt.Errorf("-kill-shard needs -replication >= 2: at R=1 a dead shard IS data loss")
		}
		if o.shards-1 < o.replication {
			return fmt.Errorf("-kill-shard with %d shards leaves %d for replication %d",
				o.shards, o.shards-1, o.replication)
		}
	}

	// --- Stand up the cluster: N shards, one gateway. -------------------
	var shards []cluster.Shard
	var servers []*server.Server
	for i := 0; i < o.shards; i++ {
		p := exp.DefaultParams(exp.AlgoMHD, 4096, 64, 64<<20)
		p.IngestWorkers = 4
		eng, err := exp.Build(p)
		if err != nil {
			return err
		}
		// Abandoned sessions (quota sheds, injected deaths the client gave
		// up on) park resumable slots until ResumeTimeout, so a churn run
		// needs headroom plus a short expiry to keep slots cycling.
		srv, err := server.New(server.Config{
			Engine:        eng.(*core.Dedup),
			MaxSessions:   o.clients * 8,
			ResumeTimeout: 15 * time.Second,
			Registry:      metrics.NewRegistry(),
			Events:        evlog,
		})
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		go srv.Serve(ln)
		defer srv.Close()
		servers = append(servers, srv)
		shards = append(shards, cluster.Shard{ID: fmt.Sprintf("s%d", i), Addr: ln.Addr().String()})
	}
	options := servers[0].Options()

	// Tenant mix: every client gets its own authenticated tenant; the
	// last one is quota-capped so the shed path runs under churn too.
	tenants := make(map[string]cluster.TenantAuth, o.clients)
	for i := 0; i < o.clients; i++ {
		tenants[fmt.Sprintf("t%d", i)] = cluster.TenantAuth{Secret: fmt.Sprintf("secret-%d", i)}
	}
	capped := fmt.Sprintf("t%d", o.clients-1)
	tenants[capped] = cluster.TenantAuth{
		Secret:     fmt.Sprintf("secret-%d", o.clients-1),
		QuotaBytes: int64(o.fileSize) * int64(o.filesPerClient) * 2,
	}

	gw, err := cluster.NewGateway(cluster.GatewayConfig{
		Shards:        shards,
		Replication:   o.replication,
		Tenants:       tenants,
		MaxSessions:   o.clients * 6,
		ResumeTimeout: 10 * time.Second,
		Events:        evlog,
	})
	if err != nil {
		return err
	}
	gwLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go gw.Serve(gwLn)
	defer gw.Close()
	gwAddr := gwLn.Addr().String()
	logger.Printf("cluster up: %d shards, gateway on %s, %d clients for %v",
		o.shards, gwAddr, o.clients, o.duration)

	// --- Churn. ---------------------------------------------------------
	var tl tally
	var shardDown atomic.Bool
	deadline := time.Now().Add(o.duration)
	var wg sync.WaitGroup
	errCh := make(chan error, o.clients)
	for i := 0; i < o.clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := &soakClient{
				id:        id,
				tenant:    fmt.Sprintf("t%d", id),
				secret:    fmt.Sprintf("secret-%d", id),
				capped:    fmt.Sprintf("t%d", id) == capped,
				gwAddr:    gwAddr,
				options:   options,
				o:         o,
				tl:        &tl,
				shardDown: &shardDown,
				rng:       rand.New(rand.NewSource(o.seed + int64(id)*7919)),
				version:   make(map[string]int),
				latest:    make(map[string][]byte),
				expect:    make(map[string][]byte),
			}
			if err := c.churn(deadline); err != nil {
				errCh <- fmt.Errorf("client %d: %w", id, err)
			}
		}(i)
	}

	// Halfway through: kill one shard outright (when asked) and drain it —
	// placement must reroute under load, and with replication >= 2 the
	// kill must have zero effect on any acked file.
	drainTimer := time.AfterFunc(o.duration/2, func() {
		victim := shards[0].ID
		if o.killShard {
			shardDown.Store(true)
			servers[0].Close()
			logger.Printf("KILLED shard %s mid-run", victim)
		}
		if err := gw.DrainShard(victim); err != nil {
			errCh <- fmt.Errorf("drain: %w", err)
			return
		}
		logger.Printf("drained shard %s mid-run", victim)
	})
	defer drainTimer.Stop()

	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
	}

	// --- Post-kill repair: restore the replication factor, then require
	// it. A file acked at R>=2 survived the kill on R-1 shards; repair
	// must bring every one back to all of its write-ring owners.
	if o.killShard {
		rep, err := gw.RepairScan()
		if err != nil {
			return fmt.Errorf("repair scan after shard kill: %w (report %+v)", err, rep)
		}
		logger.Printf("repair after shard kill: %d files seen, %d copies re-replicated", rep.Files, rep.Repaired)
		if chk := gw.CheckReplication(); len(chk.Under) > 0 {
			return fmt.Errorf("%d/%d files under-replicated after repair", len(chk.Under), chk.Files)
		}
	}

	// --- Final full verification pass. ----------------------------------
	// Every client re-lists and re-restores everything it believes it
	// stored, through fresh fault-free connections.
	finalErrs := 0
	verified := 0
	for _, c := range allClients {
		names, err := client.List(c.cleanConfig())
		if err != nil {
			return fmt.Errorf("final list for %s: %w", c.tenant, err)
		}
		have := make(map[string]bool, len(names))
		for _, n := range names {
			have[n] = true
		}
		for name, want := range c.expect {
			if !have[name] {
				logger.Printf("CORRUPTION: tenant %s file %s missing from listing", c.tenant, name)
				finalErrs++
				continue
			}
			var out bytes.Buffer
			if _, err := client.Restore(c.cleanConfig(), name, true, &out); err != nil {
				logger.Printf("CORRUPTION: tenant %s restore %s: %v", c.tenant, name, err)
				finalErrs++
				continue
			}
			if !bytes.Equal(out.Bytes(), want) {
				logger.Printf("CORRUPTION: tenant %s file %s: restored bytes differ", c.tenant, name)
				finalErrs++
				continue
			}
			verified++
		}
	}
	tl.corruptions.Add(int64(finalErrs))

	peerRouted := metrics.Default.Counter("gateway.chunks.peer_routed").Load()
	fromClient := metrics.Default.Counter("gateway.chunks.from_client").Load()
	logger.Printf("churn done: %d ingests, %d restores, %d lists, %d kills, %d reconnects, %d quota sheds, %d put rejects",
		tl.ingests.Load(), tl.restores.Load(), tl.lists.Load(),
		tl.kills.Load(), tl.reconnects.Load(), tl.quotaSheds.Load(), tl.putRejects.Load())
	logger.Printf("verified %d files bit-identical; chunk routing: %d peer-routed, %d from clients",
		verified, peerRouted, fromClient)

	if n := tl.corruptions.Load(); n > 0 {
		return fmt.Errorf("%d corruption(s) detected", n)
	}
	if tl.ingests.Load() == 0 || tl.restores.Load() == 0 || tl.kills.Load() == 0 {
		return fmt.Errorf("churn proved nothing: ingests=%d restores=%d kills=%d",
			tl.ingests.Load(), tl.restores.Load(), tl.kills.Load())
	}

	// --- Heap bound. -----------------------------------------------------
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	heapMB := int(ms.HeapAlloc >> 20)
	logger.Printf("post-GC heap: %d MiB (bound %d MiB)", heapMB, o.maxHeapMB)
	if heapMB > o.maxHeapMB {
		return fmt.Errorf("heap %d MiB exceeds the %d MiB bound", heapMB, o.maxHeapMB)
	}
	return nil
}

// allClients collects every soakClient for the final verification pass.
var (
	allClients   []*soakClient
	allClientsMu sync.Mutex
)

// soakClient is one simulated tenant workload.
type soakClient struct {
	id        int
	tenant    string
	secret    string
	capped    bool
	gwAddr    string
	options   wire.EngineOptions
	o         options
	tl        *tally
	shardDown *atomic.Bool
	rng       *rand.Rand
	version   map[string]int    // logical slot → last stored generation
	latest    map[string][]byte // logical slot → newest acked content
	expect    map[string][]byte // stored name → acked content (bounded)
	order     []string          // expect keys, oldest first, for eviction
}

// remember records an acked (name, content) pair for later verification,
// evicting the oldest remembered generation beyond the retention bound so
// a long soak's memory stays flat.
func (c *soakClient) remember(name string, data []byte) {
	c.expect[name] = data
	c.order = append(c.order, name)
	for len(c.order) > c.o.filesPerClient*3 {
		delete(c.expect, c.order[0])
		c.order = c.order[1:]
	}
}

func (c *soakClient) cleanConfig() client.Config {
	return client.Config{
		Addr:          c.gwAddr,
		Options:       c.options,
		Tenant:        c.tenant,
		Secret:        c.secret,
		RetryAttempts: 10,
		RetryDelay:    20 * time.Millisecond,
	}
}

// faultyConfig returns a config whose first connection dies after a
// random byte budget — the client is expected to resume through it.
func (c *soakClient) faultyConfig() client.Config {
	cfg := c.cleanConfig()
	budget := 16<<10 + c.rng.Intn(c.o.fileSize/2)
	var once sync.Once
	cfg.Dial = func(a string) (net.Conn, error) {
		nc, err := net.Dial("tcp", a)
		if err != nil {
			return nil, err
		}
		injected := false
		once.Do(func() { injected = true })
		if injected {
			c.tl.kills.Add(1)
			return &killConn{Conn: nc, budget: budget}, nil
		}
		return nc, nil
	}
	return cfg
}

func (c *soakClient) churn(deadline time.Time) error {
	allClientsMu.Lock()
	allClients = append(allClients, c)
	allClientsMu.Unlock()
	for time.Now().Before(deadline) {
		switch c.rng.Intn(10) {
		case 0, 1, 2, 3, 4: // ingest burst (new files and rewrites)
			if err := c.ingestBurst(); err != nil {
				return err
			}
		case 5, 6, 7, 8: // restore-and-verify a random known file
			if err := c.verifyRandom(); err != nil {
				return err
			}
		default: // list
			names, err := client.List(c.cleanConfig())
			if err != nil {
				return fmt.Errorf("list: %w", err)
			}
			c.tl.lists.Add(1)
			for name := range c.expect {
				found := false
				for _, n := range names {
					if n == name {
						found = true
						break
					}
				}
				if !found {
					c.tl.corruptions.Add(1)
					return fmt.Errorf("file %s vanished from listing", name)
				}
			}
		}
	}
	return nil
}

// ingestBurst opens one session (sometimes doomed to die mid-flight) and
// pushes 1–3 file versions through it. Content is only recorded as
// expected once its PutFile returned successfully.
func (c *soakClient) ingestBurst() error {
	cfg := c.cleanConfig()
	if c.rng.Intn(100) < c.o.killPercent {
		cfg = c.faultyConfig()
	}
	cfg.SurfaceShed = c.capped
	ing, err := client.Connect(cfg)
	if err != nil {
		if c.shardDown.Load() {
			c.tl.putRejects.Add(1)
			return nil
		}
		return fmt.Errorf("connect: %w", err)
	}
	// A shed or injected-death session can fail Close; every file the
	// harness records as expected was individually acked before that, so
	// Close failures are not correctness events.
	defer ing.Close()
	n := 1 + c.rng.Intn(3)
	for i := 0; i < n; i++ {
		// Backup names are immutable: each generation of a logical slot is
		// stored under a fresh versioned name, like real backup runs.
		slot := fmt.Sprintf("c%d-f%d", c.id, c.rng.Intn(c.o.filesPerClient))
		var data []byte
		if prev, ok := c.latest[slot]; ok && c.rng.Intn(3) > 0 {
			data = mutate(prev, c.rng.Int63(), 8, 4096) // incremental generation
		} else {
			data = genData(c.contentSeed(slot), c.o.fileSize)
		}
		name := fmt.Sprintf("%s.v%d", slot, c.version[slot]+1)
		err := ing.PutFile(name, bytes.NewReader(data))
		var shed *client.ShedError
		if errors.As(err, &shed) {
			// Over quota: expected for the capped tenant. Honor the
			// server's backoff hint instead of hammering the gateway.
			c.tl.quotaSheds.Add(1)
			if shed.RetryAfter > 0 {
				time.Sleep(shed.RetryAfter)
			}
			return nil
		}
		if err != nil {
			if c.shardDown.Load() {
				// A shard was just killed: sessions that placed commands on
				// the corpse (or began a file before the drain landed) fail
				// their puts loudly. The file was never acked so it is never
				// expected — rejection, not corruption. The next burst gets
				// fresh placement over the survivors.
				c.tl.putRejects.Add(1)
				return nil
			}
			return fmt.Errorf("put %s: %w", name, err)
		}
		c.version[slot]++
		c.latest[slot] = data
		c.remember(name, data)
		c.tl.ingests.Add(1)
	}
	st := ing.Stats()
	c.tl.reconnects.Add(int64(st.Reconnects))
	return nil
}

func (c *soakClient) verifyRandom() error {
	if len(c.expect) == 0 {
		return nil
	}
	names := make([]string, 0, len(c.expect))
	for n := range c.expect {
		names = append(names, n)
	}
	name := names[c.rng.Intn(len(names))]
	var out bytes.Buffer
	if _, err := client.Restore(c.cleanConfig(), name, true, &out); err != nil {
		c.tl.corruptions.Add(1)
		return fmt.Errorf("restore %s: %w", name, err)
	}
	if !bytes.Equal(out.Bytes(), c.expect[name]) {
		c.tl.corruptions.Add(1)
		return fmt.Errorf("restore %s: bytes differ from last acked content", name)
	}
	c.tl.restores.Add(1)
	return nil
}

func (c *soakClient) contentSeed(name string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%s/%d", c.tenant, name, c.o.seed)
	return int64(h.Sum64())
}

// killConn kills the connection after `budget` written bytes.
type killConn struct {
	net.Conn
	mu     sync.Mutex
	budget int
}

var errInjected = errors.New("injected connection death")

func (c *killConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.budget <= 0 {
		c.Conn.Close()
		return 0, errInjected
	}
	if len(p) > c.budget {
		n, _ := c.Conn.Write(p[:c.budget])
		c.budget = 0
		c.Conn.Close()
		return n, errInjected
	}
	c.budget -= len(p)
	return c.Conn.Write(p)
}

func genData(seed int64, n int) []byte {
	buf := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(buf)
	return buf
}

func mutate(data []byte, seed int64, edits, editSize int) []byte {
	out := append([]byte(nil), data...)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < edits; i++ {
		if len(out) <= editSize {
			break
		}
		off := rng.Intn(len(out) - editSize)
		rng.Read(out[off : off+editSize])
	}
	return out
}
