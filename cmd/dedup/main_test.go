package main

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func writeTestFiles(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	base := make([]byte, 200_000)
	rng.Read(base)
	files := map[string][]byte{
		"img/a.img": base,
		"img/b.img": append([]byte(nil), base...),
	}
	for name, data := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return files
}

func TestRunOnDirectoryWithVerifyAndSave(t *testing.T) {
	dir := t.TempDir()
	writeTestFiles(t, dir)
	storeDir := filepath.Join(t.TempDir(), "store")
	err := run("mhd", 512, 4, 8, false, dir, false,
		0, 0, 0, 0, 0, 0, true /* verify */, storeDir, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(storeDir, "chunks")); err != nil {
		t.Errorf("store not saved: %v", err)
	}
}

func TestRunResumeAppends(t *testing.T) {
	dir1 := t.TempDir()
	writeTestFiles(t, dir1)
	storeDir := filepath.Join(t.TempDir(), "store")
	if err := run("mhd", 512, 4, 8, false, dir1, false,
		0, 0, 0, 0, 0, 0, false, storeDir, ""); err != nil {
		t.Fatal(err)
	}
	// Second session: new directory with different names, resumed store.
	dir2 := t.TempDir()
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, 100_000)
	rng.Read(data)
	if err := os.WriteFile(filepath.Join(dir2, "c.img"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("mhd", 512, 4, 8, false, dir2, false,
		0, 0, 0, 0, 0, 0, true, storeDir, storeDir); err != nil {
		t.Fatal(err)
	}
}

func TestRunWorkloadAllAlgorithms(t *testing.T) {
	for _, a := range []string{"mhd", "si-mhd", "cdc", "bimodal", "subchunk", "sparse", "fbc", "fingerdiff", "extremebinning"} {
		if err := run(a, 1024, 4, 8, false, "", true,
			1, 2, 1<<20, 6, 8<<10, 1, true, "", ""); err != nil {
			t.Errorf("%s: %v", a, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("mhd", 512, 4, 8, false, "", false,
		0, 0, 0, 0, 0, 0, false, "", ""); err == nil {
		t.Error("missing input source accepted")
	}
	if err := run("nope", 512, 4, 8, false, "", true,
		1, 1, 1<<20, 1, 1024, 1, false, "", ""); err == nil {
		t.Error("unknown algorithm accepted")
	}
}
