package main

import (
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"mhdedup/internal/simdisk"
)

func writeTestFiles(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	base := make([]byte, 200_000)
	rng.Read(base)
	files := map[string][]byte{
		"img/a.img": base,
		"img/b.img": append([]byte(nil), base...),
	}
	for name, data := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return files
}

// baseOptions returns the small-scale settings the CLI tests share.
func baseOptions() runOptions {
	return runOptions{
		algo:     "mhd",
		ecs:      512,
		sd:       4,
		cache:    8,
		parallel: 1,
	}
}

func TestRunOnDirectoryWithVerifyAndSave(t *testing.T) {
	dir := t.TempDir()
	writeTestFiles(t, dir)
	storeDir := filepath.Join(t.TempDir(), "store")
	o := baseOptions()
	o.dir = dir
	o.verify = true
	o.save = storeDir
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(storeDir, "MANIFEST.json")); err != nil {
		t.Errorf("store not saved (commit marker missing): %v", err)
	}
	if _, err := os.Stat(filepath.Join(storeDir, "gen-000001", "chunks")); err != nil {
		t.Errorf("store not saved: %v", err)
	}
}

func TestRunResumeAppends(t *testing.T) {
	dir1 := t.TempDir()
	writeTestFiles(t, dir1)
	storeDir := filepath.Join(t.TempDir(), "store")
	o := baseOptions()
	o.dir = dir1
	o.save = storeDir
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	// Second session: new directory with different names, resumed store.
	dir2 := t.TempDir()
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, 100_000)
	rng.Read(data)
	if err := os.WriteFile(filepath.Join(dir2, "c.img"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	o2 := baseOptions()
	o2.dir = dir2
	o2.verify = true
	o2.save = storeDir
	o2.resume = storeDir
	if err := run(o2); err != nil {
		t.Fatal(err)
	}
}

func TestRunWorkloadAllAlgorithms(t *testing.T) {
	for _, a := range []string{"mhd", "si-mhd", "cdc", "bimodal", "subchunk", "sparse", "fbc", "fingerdiff", "extremebinning"} {
		o := runOptions{
			algo: a, ecs: 1024, sd: 4, cache: 8, parallel: 1,
			workload: true, machines: 1, days: 2, snapshot: 1 << 20,
			edits: 6, editSize: 8 << 10, seed: 1, verify: true,
		}
		if err := run(o); err != nil {
			t.Errorf("%s: %v", a, err)
		}
	}
}

func TestRunWorkloadParallel(t *testing.T) {
	for _, a := range []string{"mhd", "si-mhd"} {
		o := runOptions{
			algo: a, ecs: 1024, sd: 4, cache: 8, parallel: 4,
			workload: true, machines: 4, days: 2, snapshot: 1 << 20,
			edits: 6, editSize: 8 << 10, seed: 1, verify: true,
		}
		if err := run(o); err != nil {
			t.Errorf("%s parallel: %v", a, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	o := baseOptions()
	if err := run(o); err == nil {
		t.Error("missing input source accepted")
	}
	o = baseOptions()
	o.algo = "nope"
	o.workload = true
	o.machines, o.days, o.snapshot, o.edits, o.editSize, o.seed = 1, 1, 1<<20, 1, 1024, 1
	if err := run(o); err == nil {
		t.Error("unknown algorithm accepted")
	}
	// Concurrent ingest on a single-stream engine must be rejected.
	o = baseOptions()
	o.algo = "cdc"
	o.parallel = 4
	o.workload = true
	o.machines, o.days, o.snapshot, o.edits, o.editSize, o.seed = 2, 1, 1<<20, 1, 1024, 1
	if err := run(o); err == nil {
		t.Error("parallel ingest on cdc accepted")
	}
	o = baseOptions()
	o.parallel = 0
	o.workload = true
	if err := run(o); err == nil {
		t.Error("-parallel 0 accepted")
	}
}

func TestRunScrubMode(t *testing.T) {
	dir := t.TempDir()
	writeTestFiles(t, dir)
	storeDir := filepath.Join(t.TempDir(), "store")
	o := baseOptions()
	o.dir = dir
	o.save = storeDir
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	// A clean store scrubs clean.
	if err := run(runOptions{scrub: storeDir}); err != nil {
		t.Fatalf("scrub of clean store: %v", err)
	}
	// Corrupt one stored chunk file on disk; scrub must notice, quarantine,
	// and exit non-zero.
	disk, err := simdisk.LoadDir(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	names := disk.Names(simdisk.Data)
	sort.Strings(names)
	fd := simdisk.NewFaultDisk(disk, simdisk.FaultPlan{Seed: 3})
	if err := fd.FlipStoredBit(simdisk.Data, names[0], 123); err != nil {
		t.Fatal(err)
	}
	if err := disk.SaveDir(storeDir); err != nil {
		t.Fatal(err)
	}
	if err := run(runOptions{scrub: storeDir}); err == nil {
		t.Fatal("scrub of corrupt store should exit non-zero")
	}
	if _, err := os.Stat(filepath.Join(storeDir, "quarantine", "data-"+names[0])); err != nil {
		t.Errorf("quarantined object not preserved: %v", err)
	}
	// The quarantining was persisted: a second scrub is clean.
	if err := run(runOptions{scrub: storeDir}); err != nil {
		t.Fatalf("second scrub: %v", err)
	}
}
