// Command dedup runs one deduplication engine over an input — either a
// directory of real files or a synthetic disk-image backup workload — and
// prints the paper's metrics for the run.
//
// Examples:
//
//	dedup -algo mhd -ecs 4096 -sd 64 -dir /path/to/files
//	dedup -algo subchunk -workload -machines 4 -days 5 -snapshot 4194304
//	dedup -algo mhd -workload -verify
package main

import (
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"

	"mhdedup/dedup"
)

func main() {
	var (
		algoName = flag.String("algo", "mhd", "algorithm: mhd, cdc, bimodal, subchunk, sparse")
		ecs      = flag.Int("ecs", 4096, "expected chunk size in bytes")
		sd       = flag.Int("sd", 64, "sample distance (hashes)")
		cache    = flag.Int("cache", 64, "manifest cache capacity")
		noBloom  = flag.Bool("no-bloom", false, "disable the bloom filter")
		dir      = flag.String("dir", "", "deduplicate the files under this directory")
		workload = flag.Bool("workload", false, "deduplicate a synthetic backup workload instead of -dir")
		machines = flag.Int("machines", 4, "workload: number of machines")
		days     = flag.Int("days", 5, "workload: days of backups")
		snapshot = flag.Int64("snapshot", 4<<20, "workload: snapshot size in bytes")
		edits    = flag.Int("edits", 20, "workload: edits per day")
		editSize = flag.Int64("edit-bytes", 24<<10, "workload: mean edit size")
		seed     = flag.Int64("seed", 1, "workload: RNG seed")
		verify   = flag.Bool("verify", false, "restore every file and verify it matches the input")
		save     = flag.String("save", "", "persist the deduplicated store to this directory after Finish")
		resume   = flag.String("resume", "", "resume from a store directory previously written with -save")
	)
	flag.Parse()
	if err := run(*algoName, *ecs, *sd, *cache, *noBloom, *dir, *workload,
		*machines, *days, *snapshot, *edits, *editSize, *seed, *verify, *save, *resume); err != nil {
		fmt.Fprintln(os.Stderr, "dedup:", err)
		os.Exit(1)
	}
}

func run(algoName string, ecs, sd, cache int, noBloom bool, dir string, workload bool,
	machines, days int, snapshot int64, edits int, editSize, seed int64, verify bool, save, resume string) error {
	opts := dedup.Options{
		ECS:            ecs,
		SD:             sd,
		CacheManifests: cache,
		DisableBloom:   noBloom,
	}
	var eng dedup.Engine
	var err error
	if resume != "" {
		eng, err = dedup.Resume(dedup.Algorithm(algoName), opts, resume)
	} else {
		eng, err = dedup.New(dedup.Algorithm(algoName), opts)
	}
	if err != nil {
		return err
	}

	type input struct {
		name string
		open func() (io.Reader, error)
	}
	var inputs []input
	var verifySource func(name string) (io.Reader, error)

	switch {
	case workload:
		cfg := dedup.DefaultWorkloadConfig()
		cfg.Machines = machines
		cfg.Days = days
		cfg.SnapshotBytes = snapshot
		cfg.EditsPerDay = edits
		cfg.EditBytes = editSize
		cfg.Seed = seed
		w, err := dedup.NewWorkload(cfg)
		if err != nil {
			return err
		}
		for _, f := range w.Files() {
			name := f.Name
			inputs = append(inputs, input{name: name, open: func() (io.Reader, error) { return w.Open(name) }})
		}
		verifySource = w.Open
	case dir != "":
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return err
			}
			rel, err := filepath.Rel(dir, path)
			if err != nil {
				return err
			}
			inputs = append(inputs, input{name: rel, open: func() (io.Reader, error) {
				f, err := os.Open(path)
				return f, err
			}})
			return nil
		})
		if err != nil {
			return err
		}
		sort.Slice(inputs, func(i, j int) bool { return inputs[i].name < inputs[j].name })
		verifySource = func(name string) (io.Reader, error) {
			return os.Open(filepath.Join(dir, name))
		}
	default:
		return fmt.Errorf("either -dir or -workload is required")
	}

	for _, in := range inputs {
		r, err := in.open()
		if err != nil {
			return err
		}
		err = eng.PutFile(in.name, r)
		if c, ok := r.(io.Closer); ok {
			c.Close()
		}
		if err != nil {
			return fmt.Errorf("ingest %s: %w", in.name, err)
		}
	}
	if err := eng.Finish(); err != nil {
		return err
	}

	rep := eng.Report()
	fmt.Printf("algorithm      %s (ECS=%d SD=%d)\n", algoName, ecs, sd)
	fmt.Printf("files          %d (%d stored)\n", rep.FilesTotal, rep.Files)
	fmt.Printf("input          %d bytes\n", rep.InputBytes)
	fmt.Printf("stored data    %d bytes\n", rep.StoredDataBytes)
	fmt.Printf("metadata       %d bytes (hooks %d, manifests %d, file manifests %d, inodes %d x 256)\n",
		rep.MetadataBytes, rep.HookBytes, rep.ManifestBytes, rep.FileManifestBytes, rep.InodeCount())
	fmt.Printf("data-only DER  %.4f\n", rep.DataOnlyDER())
	fmt.Printf("real DER       %.4f\n", rep.RealDER())
	fmt.Printf("MetaDataRatio  %.4f%%\n", rep.MetaDataRatio()*100)
	fmt.Printf("DAD            %.0f bytes (L=%d slices)\n", rep.DAD(), rep.DupSlices)
	fmt.Printf("disk accesses  %d (manifest loads %d, HHR %d)\n",
		rep.Disk.Accesses(), rep.ManifestLoads, rep.HHRDiskAccesses)
	fmt.Printf("throughput     %.3f (copy-time / dedup-time, modeled)\n",
		rep.ThroughputRatio(dedup.DefaultCostModel()))
	fmt.Printf("peak RAM       %d bytes\n", rep.RAMBytes)

	if verify {
		for _, in := range inputs {
			src, err := verifySource(in.name)
			if err != nil {
				return err
			}
			want, err := io.ReadAll(src)
			if c, ok := src.(io.Closer); ok {
				c.Close()
			}
			if err != nil {
				return err
			}
			var got countingVerifier
			got.want = want
			if err := eng.Restore(in.name, &got); err != nil {
				return fmt.Errorf("restore %s: %w", in.name, err)
			}
			if got.failed || got.n != len(want) {
				return fmt.Errorf("verify %s: restored bytes differ from input", in.name)
			}
		}
		fmt.Printf("verify         OK (%d files restored byte-identically)\n", len(inputs))
	}
	if save != "" {
		if err := dedup.SaveStore(eng, save); err != nil {
			return err
		}
		fmt.Printf("store          saved to %s\n", save)
	}
	return nil
}

// countingVerifier compares written bytes against want without buffering a
// second copy.
type countingVerifier struct {
	want   []byte
	n      int
	failed bool
}

func (v *countingVerifier) Write(p []byte) (int, error) {
	if v.n+len(p) > len(v.want) {
		v.failed = true
	} else {
		for i, b := range p {
			if v.want[v.n+i] != b {
				v.failed = true
				break
			}
		}
	}
	v.n += len(p)
	return len(p), nil
}
