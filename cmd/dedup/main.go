// Command dedup runs one deduplication engine over an input — either a
// directory of real files or a synthetic disk-image backup workload — and
// prints the paper's metrics for the run.
//
// Examples:
//
//	dedup -algo mhd -ecs 4096 -sd 64 -dir /path/to/files
//	dedup -algo subchunk -workload -machines 4 -days 5 -snapshot 4194304
//	dedup -algo mhd -workload -verify
//	dedup -algo mhd -workload -machines 8 -parallel 4
//
// -parallel N (MHD and SI-MHD only) ingests up to N backup streams
// concurrently: in workload mode each machine's day-ordered snapshots form
// one stream, in directory mode each file is its own stream. -parallel 1
// (the default) is fully sequential and bit-identical to the serial engine.
//
// -remote host:port backs up over the network to a dedupd server instead
// of a local engine: files are chunked locally, chunk hashes are offered
// to the server, and only the chunk bytes the server has not seen cross
// the wire. -algo/-ecs/-sd must match the server's engine (the handshake
// refuses mismatches). -verify then restores every file back from the
// server and compares byte-for-byte.
//
//	dedup -remote localhost:7444 -dir /path/to/files -verify
package main

import (
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"

	"mhdedup/dedup"
	"mhdedup/internal/client"
	"mhdedup/internal/events"
	"mhdedup/internal/wire"
)

func main() {
	var o runOptions
	flag.StringVar(&o.algo, "algo", "mhd", "algorithm: mhd, si-mhd, cdc, bimodal, subchunk, sparse, fbc, fingerdiff, extremebinning")
	flag.IntVar(&o.ecs, "ecs", 4096, "expected chunk size in bytes")
	flag.IntVar(&o.sd, "sd", 64, "sample distance (hashes)")
	flag.IntVar(&o.cache, "cache", 64, "manifest cache capacity")
	flag.BoolVar(&o.noBloom, "no-bloom", false, "disable the bloom filter")
	flag.IntVar(&o.parallel, "parallel", 1, "ingest up to N backup streams concurrently (mhd/si-mhd only; 1 = serial)")
	flag.StringVar(&o.dir, "dir", "", "deduplicate the files under this directory")
	flag.BoolVar(&o.workload, "workload", false, "deduplicate a synthetic backup workload instead of -dir")
	flag.IntVar(&o.machines, "machines", 4, "workload: number of machines")
	flag.IntVar(&o.days, "days", 5, "workload: days of backups")
	flag.Int64Var(&o.snapshot, "snapshot", 4<<20, "workload: snapshot size in bytes")
	flag.IntVar(&o.edits, "edits", 20, "workload: edits per day")
	flag.Int64Var(&o.editSize, "edit-bytes", 24<<10, "workload: mean edit size")
	flag.Int64Var(&o.seed, "seed", 1, "workload: RNG seed")
	flag.BoolVar(&o.verify, "verify", false, "restore every file and verify it matches the input")
	flag.StringVar(&o.save, "save", "", "persist the deduplicated store to this directory after Finish")
	flag.StringVar(&o.resume, "resume", "", "resume from a store directory previously written with -save")
	flag.StringVar(&o.scrub, "scrub", "", "verify a saved store, quarantine corrupt objects, and exit (no ingest)")
	flag.StringVar(&o.remote, "remote", "", "back up to a dedupd server at host:port instead of a local engine")
	flag.StringVar(&o.tenant, "tenant", "", "tenant name for a multi-tenant server or gateway")
	flag.StringVar(&o.secret, "secret", "", "tenant secret (with -tenant)")
	flag.StringVar(&o.logLevel, "log-level", "warn", "structured event log level on stderr: debug, info, warn or error")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "dedup:", err)
		os.Exit(1)
	}
}

// runOptions carries every flag; one struct so tests can name the fields
// they care about instead of threading fifteen positional arguments.
type runOptions struct {
	algo     string
	ecs      int
	sd       int
	cache    int
	noBloom  bool
	parallel int
	dir      string
	workload bool
	machines int
	days     int
	snapshot int64
	edits    int
	editSize int64
	seed     int64
	verify   bool
	save     string
	resume   string
	scrub    string
	remote   string
	tenant   string
	secret   string
	logLevel string
}

// runScrub is the maintenance path: run crash recovery on a saved store,
// verify every container against the content addresses its manifests vouch
// for, quarantine persistently damaged objects under <dir>/quarantine/, and
// persist the cleaned store. Exits non-zero when corruption was found, so
// scripted backups notice.
func runScrub(dir string) error {
	rec, err := dedup.RecoverStore(dir)
	if err != nil {
		return err
	}
	if len(rec.RolledBack) > 0 || rec.RepairedMarker {
		fmt.Printf("recovery       rolled back %v (marker repaired: %v), mounted generation %d\n",
			rec.RolledBack, rec.RepairedMarker, rec.Generation)
	}
	st, err := dedup.OpenStore(dir)
	if err != nil {
		return err
	}
	rep, err := st.Scrub(dedup.VerifyOpts{})
	if err != nil {
		return err
	}
	fmt.Printf("scrub          %d containers checked, %d entries verified\n",
		rep.ContainersChecked, rep.EntriesVerified)
	for _, m := range rep.Corrupt {
		fmt.Println("CORRUPT:", m.String())
	}
	for _, name := range rep.Unreadable {
		fmt.Println("UNREADABLE: container", name)
	}
	for _, name := range rep.BadManifests {
		fmt.Println("BAD MANIFEST:", name)
	}
	for _, f := range rep.AffectedFiles {
		fmt.Println("file lost data:", f)
	}
	if rep.OK() {
		fmt.Println("scrub          store is clean")
		return nil
	}
	if err := st.Save(dir); err != nil {
		return err
	}
	return fmt.Errorf("scrub quarantined %d objects into %s; %d files lost data",
		len(rep.Quarantined), filepath.Join(dir, "quarantine"), len(rep.AffectedFiles))
}

func run(o runOptions) error {
	if o.scrub != "" {
		return runScrub(o.scrub)
	}
	if o.remote != "" {
		return runRemote(o)
	}
	if o.parallel < 1 {
		return fmt.Errorf("-parallel must be at least 1, got %d", o.parallel)
	}
	opts := dedup.Options{
		ECS:            o.ecs,
		SD:             o.sd,
		CacheManifests: o.cache,
		DisableBloom:   o.noBloom,
		IngestWorkers:  o.parallel,
	}
	var eng dedup.Engine
	var err error
	if o.resume != "" {
		eng, err = dedup.Resume(dedup.Algorithm(o.algo), opts, o.resume)
	} else {
		eng, err = dedup.New(dedup.Algorithm(o.algo), opts)
	}
	if err != nil {
		return err
	}

	streams, verifySource, err := buildStreams(o)
	if err != nil {
		return err
	}

	if err := dedup.IngestParallel(eng, o.parallel, streams); err != nil {
		return err
	}
	if err := eng.Finish(); err != nil {
		return err
	}

	rep := eng.Report()
	fmt.Printf("algorithm      %s (ECS=%d SD=%d parallel=%d)\n", o.algo, o.ecs, o.sd, o.parallel)
	fmt.Printf("files          %d (%d stored)\n", rep.FilesTotal, rep.Files)
	fmt.Printf("input          %d bytes\n", rep.InputBytes)
	fmt.Printf("stored data    %d bytes\n", rep.StoredDataBytes)
	fmt.Printf("metadata       %d bytes (hooks %d, manifests %d, file manifests %d, inodes %d x 256)\n",
		rep.MetadataBytes, rep.HookBytes, rep.ManifestBytes, rep.FileManifestBytes, rep.InodeCount())
	fmt.Printf("data-only DER  %.4f\n", rep.DataOnlyDER())
	fmt.Printf("real DER       %.4f\n", rep.RealDER())
	fmt.Printf("MetaDataRatio  %.4f%%\n", rep.MetaDataRatio()*100)
	fmt.Printf("DAD            %.0f bytes (L=%d slices)\n", rep.DAD(), rep.DupSlices)
	fmt.Printf("disk accesses  %d (manifest loads %d, HHR %d)\n",
		rep.Disk.Accesses(), rep.ManifestLoads, rep.HHRDiskAccesses)
	fmt.Printf("throughput     %.3f (copy-time / dedup-time, modeled)\n",
		rep.ThroughputRatio(dedup.DefaultCostModel()))
	fmt.Printf("peak RAM       %d bytes\n", rep.RAMBytes)

	if o.verify {
		var n int
		for _, st := range streams {
			for _, it := range st.Items {
				src, err := verifySource(it.Name)
				if err != nil {
					return err
				}
				want, err := io.ReadAll(src)
				if c, ok := src.(io.Closer); ok {
					c.Close()
				}
				if err != nil {
					return err
				}
				var got countingVerifier
				got.want = want
				if err := eng.Restore(it.Name, &got); err != nil {
					return fmt.Errorf("restore %s: %w", it.Name, err)
				}
				if got.failed || got.n != len(want) {
					return fmt.Errorf("verify %s: restored bytes differ from input", it.Name)
				}
				n++
			}
		}
		fmt.Printf("verify         OK (%d files restored byte-identically)\n", n)
	}
	if o.save != "" {
		if err := dedup.SaveStore(eng, o.save); err != nil {
			return err
		}
		fmt.Printf("store          saved to %s\n", o.save)
	}
	return nil
}

// runRemote is the network backup path: chunk locally, negotiate by
// hash, ship only unseen chunk bytes to the dedupd server at o.remote.
func runRemote(o runOptions) error {
	streams, verifySource, err := buildStreams(o)
	if err != nil {
		return err
	}
	level, err := events.ParseLevel(o.logLevel)
	if err != nil {
		return err
	}
	cfg := client.Config{
		Addr:   o.remote,
		Tenant: o.tenant,
		Secret: o.secret,
		Options: wire.EngineOptions{
			Algorithm: o.algo,
			ECS:       uint32(o.ecs),
			SD:        uint32(o.sd),
		},
		Events: events.New(events.Options{Level: level, Out: os.Stderr}),
	}
	ing, err := client.Connect(cfg)
	if err != nil {
		return err
	}
	for _, st := range streams {
		for _, it := range st.Items {
			r, err := it.Open()
			if err != nil {
				ing.Close()
				return err
			}
			putErr := ing.PutFile(it.Name, r)
			r.Close()
			if putErr != nil {
				ing.Close()
				return fmt.Errorf("put %s: %w", it.Name, putErr)
			}
		}
	}
	if err := ing.Close(); err != nil {
		return err
	}
	stats := ing.Stats()
	fmt.Printf("remote         %s (%s ECS=%d SD=%d)\n", o.remote, o.algo, o.ecs, o.sd)
	fmt.Printf("files sent     %d\n", stats.FilesSent)
	fmt.Printf("input          %d bytes\n", stats.InputBytes)
	fmt.Printf("chunks         %d offered, %d sent (%d bytes)\n",
		stats.ChunksOffered, stats.ChunksSent, stats.ChunkBytesSent)
	fmt.Printf("wire           %d bytes out, %d bytes in\n", stats.WireBytesOut, stats.WireBytesIn)
	if stats.InputBytes > 0 {
		fmt.Printf("wire ratio     %.2f%% of raw input crossed the wire\n",
			float64(stats.WireBytesOut)*100/float64(stats.InputBytes))
	}
	if stats.Reconnects > 0 {
		fmt.Printf("reconnects     %d (session resumed)\n", stats.Reconnects)
	}

	if o.verify {
		var n int
		for _, st := range streams {
			for _, it := range st.Items {
				src, err := verifySource(it.Name)
				if err != nil {
					return err
				}
				want, err := io.ReadAll(src)
				if c, ok := src.(io.Closer); ok {
					c.Close()
				}
				if err != nil {
					return err
				}
				var got countingVerifier
				got.want = want
				if _, err := client.Restore(cfg, it.Name, true, &got); err != nil {
					return fmt.Errorf("remote restore %s: %w", it.Name, err)
				}
				if got.failed || got.n != len(want) {
					return fmt.Errorf("verify %s: restored bytes differ from input", it.Name)
				}
				n++
			}
		}
		fmt.Printf("verify         OK (%d files restored byte-identically from the server)\n", n)
	}
	return nil
}

// buildStreams maps the input source onto ingest streams. Workload mode
// groups each machine's day-ordered snapshots into one stream (the natural
// backup-stream boundary: order matters within a machine's history, not
// across machines). Directory mode makes each file its own stream, sorted
// by name — independent files have no cross-file ordering requirement.
func buildStreams(o runOptions) ([]dedup.IngestStream, func(string) (io.Reader, error), error) {
	switch {
	case o.workload:
		cfg := dedup.DefaultWorkloadConfig()
		cfg.Machines = o.machines
		cfg.Days = o.days
		cfg.SnapshotBytes = o.snapshot
		cfg.EditsPerDay = o.edits
		cfg.EditBytes = o.editSize
		cfg.Seed = o.seed
		w, err := dedup.NewWorkload(cfg)
		if err != nil {
			return nil, nil, err
		}
		byMachine := make(map[int]*dedup.IngestStream)
		var order []int
		for _, f := range w.Files() {
			name := f.Name
			st, ok := byMachine[f.Machine]
			if !ok {
				st = &dedup.IngestStream{Name: fmt.Sprintf("machine-%d", f.Machine)}
				byMachine[f.Machine] = st
				order = append(order, f.Machine)
			}
			st.Items = append(st.Items, dedup.IngestItem{
				Name: name,
				Open: func() (io.ReadCloser, error) {
					r, err := w.Open(name)
					if err != nil {
						return nil, err
					}
					return io.NopCloser(r), nil
				},
			})
		}
		streams := make([]dedup.IngestStream, 0, len(order))
		for _, m := range order {
			streams = append(streams, *byMachine[m])
		}
		return streams, w.Open, nil
	case o.dir != "":
		var streams []dedup.IngestStream
		err := filepath.WalkDir(o.dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return err
			}
			rel, err := filepath.Rel(o.dir, path)
			if err != nil {
				return err
			}
			streams = append(streams, dedup.IngestStream{
				Name: rel,
				Items: []dedup.IngestItem{{
					Name: rel,
					Open: func() (io.ReadCloser, error) { return os.Open(path) },
				}},
			})
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		sort.Slice(streams, func(i, j int) bool { return streams[i].Name < streams[j].Name })
		verifySource := func(name string) (io.Reader, error) {
			return os.Open(filepath.Join(o.dir, name))
		}
		return streams, verifySource, nil
	default:
		return nil, nil, fmt.Errorf("either -dir or -workload is required")
	}
}

// countingVerifier compares written bytes against want without buffering a
// second copy.
type countingVerifier struct {
	want   []byte
	n      int
	failed bool
}

func (v *countingVerifier) Write(p []byte) (int, error) {
	if v.n+len(p) > len(v.want) {
		v.failed = true
	} else {
		for i, b := range p {
			if v.want[v.n+i] != b {
				v.failed = true
				break
			}
		}
	}
	v.n += len(p)
	return len(p), nil
}
