// Command genworkload materializes a synthetic disk-image backup workload
// to a directory, or summarizes it without writing anything.
//
// The generated dataset reproduces the duplication structure of the paper's
// trace (14 PCs, two weeks of daily images, shared OS content, localized
// daily edits with recurring change sites) at a configurable scale; see
// internal/trace for the model.
//
// Examples:
//
//	genworkload -out /tmp/ws -machines 4 -days 5 -snapshot 4194304
//	genworkload -dry -machines 14 -days 14
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"mhdedup/dedup"
)

func main() {
	var (
		out      = flag.String("out", "", "output directory (required unless -dry)")
		dry      = flag.Bool("dry", false, "print the dataset summary without writing files")
		machines = flag.Int("machines", 14, "number of machines")
		days     = flag.Int("days", 14, "days of backups")
		snapshot = flag.Int64("snapshot", 8<<20, "snapshot size in bytes")
		shared   = flag.Float64("shared", 0.6, "fraction of each image drawn from the shared OS pool")
		edits    = flag.Int("edits", 40, "edits per day")
		editSize = flag.Int64("edit-bytes", 48<<10, "mean edit size")
		hotspots = flag.Float64("hotspots", 0.5, "fraction of edits recurring at fixed sites")
		maxFile  = flag.Int64("max-file", 0, "split snapshots into files of at most this many bytes (0 = off)")
		seed     = flag.Int64("seed", 1, "RNG seed")
		stats    = flag.Int("stats", 0, "estimate the dataset's duplication structure at this chunk size (0 = off)")
	)
	flag.Parse()
	if err := run(*out, *dry, *machines, *days, *snapshot, *shared, *edits, *editSize, *hotspots, *maxFile, *seed, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "genworkload:", err)
		os.Exit(1)
	}
}

func run(out string, dry bool, machines, days int, snapshot int64, shared float64,
	edits int, editSize int64, hotspots float64, maxFile, seed int64, stats int) error {
	cfg := dedup.DefaultWorkloadConfig()
	cfg.Machines = machines
	cfg.Days = days
	cfg.SnapshotBytes = snapshot
	cfg.SharedFraction = shared
	cfg.EditsPerDay = edits
	cfg.EditBytes = editSize
	cfg.HotspotFraction = hotspots
	cfg.MaxFileBytes = maxFile
	cfg.Seed = seed

	w, err := dedup.NewWorkload(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("files: %d, total: %d bytes (%.1f MiB)\n",
		len(w.Files()), w.TotalBytes(), float64(w.TotalBytes())/(1<<20))
	if stats > 0 {
		c, err := w.Characterize(stats)
		if err != nil {
			return err
		}
		fmt.Printf("duplication structure (exact dedup at ECS=%d):\n", stats)
		fmt.Printf("  data-only DER:   %.3f (max any chunk-based scheme can reach)\n", c.DataOnlyDER())
		fmt.Printf("  duplicate bytes: %d in %d slices\n", c.DupBytes, c.DupSlices)
		fmt.Printf("  DAD:             %.0f bytes/slice\n", c.DAD())
	}
	if dry {
		for _, f := range w.Files() {
			fmt.Printf("  %-16s %10d bytes (machine %d, day %d)\n", f.Name, f.Size, f.Machine, f.Day)
		}
		return nil
	}
	if out == "" {
		return fmt.Errorf("-out is required (or use -dry)")
	}
	return w.EachFile(func(info dedup.WorkloadFile, r io.Reader) error {
		path := filepath.Join(out, filepath.FromSlash(info.Name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if _, err := io.Copy(f, r); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	})
}
