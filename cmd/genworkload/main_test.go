package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestGenWorkloadWritesFiles(t *testing.T) {
	out := t.TempDir()
	if err := run(out, false, 2, 2, 1<<20, 0.6, 6, 8<<10, 0.5, 0, 1, 0); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"m00/d00", "m00/d01", "m01/d00", "m01/d01"} {
		info, err := os.Stat(filepath.Join(out, filepath.FromSlash(name)))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if info.Size() < 1<<19 {
			t.Errorf("%s implausibly small: %d bytes", name, info.Size())
		}
	}
}

func TestGenWorkloadDryAndStats(t *testing.T) {
	if err := run("", true, 1, 2, 1<<20, 0.6, 6, 8<<10, 0.5, 0, 1, 4096); err != nil {
		t.Fatal(err)
	}
}

func TestGenWorkloadErrors(t *testing.T) {
	if err := run("", false, 2, 2, 1<<20, 0.6, 6, 8<<10, 0.5, 0, 1, 0); err == nil {
		t.Error("missing -out accepted")
	}
	if err := run("", true, 0, 2, 1<<20, 0.6, 6, 8<<10, 0.5, 0, 1, 0); err == nil {
		t.Error("invalid machine count accepted")
	}
}
