package main

import "testing"

// Only the cheap failure paths are tested here; the full experiment suite
// is exercised by internal/exp's tests and the root benchmarks.
func TestRunValidation(t *testing.T) {
	if err := run("warp", "all", 2048, ""); err == nil {
		t.Error("unknown scale accepted")
	}
	if err := run("quick", "not-an-experiment", 2048, ""); err == nil {
		t.Error("unknown experiment selector accepted")
	}
}
