// Command experiments regenerates every figure and table of the paper's
// evaluation section (§V) on a synthetic workload, printing each as a text
// table. The default "quick" scale finishes in about a minute; "standard"
// is the full 14-machine × 14-day reproduction (several minutes).
//
// Examples:
//
//	experiments                        # all experiments, quick scale
//	experiments -scale standard        # full reproduction
//	experiments -only fig7,fig10      # a subset
//	experiments -ecs 2048              # ECS used for the tables/summary
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mhdedup/internal/exp"
)

func main() {
	var (
		scaleName = flag.String("scale", "quick", `workload scale: "quick" or "standard"`)
		only      = flag.String("only", "all", "comma-separated subset: fig7,fig8,fig9,fig10,table1,table2,table3,table4,table5,ablation,recipes,summary")
		ecs       = flag.Int("ecs", 2048, "ECS for table1/table2/ablation/summary")
		csvPath   = flag.String("csv", "", "also export every computed run as CSV to this file")
	)
	flag.Parse()
	if err := run(*scaleName, *only, *ecs, *csvPath); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(scaleName, only string, ecs int, csvPath string) error {
	var scale exp.Scale
	switch scaleName {
	case "quick":
		scale = exp.QuickScale()
	case "standard":
		scale = exp.StandardScale()
	default:
		return fmt.Errorf("unknown scale %q", scaleName)
	}
	suite, err := exp.NewSuite(scale)
	if err != nil {
		return err
	}
	fmt.Printf("# Paper experiment reproduction — scale=%s, input=%.1f MiB, SD=%d (stand-in for the paper's 1000)\n\n",
		scale.Name, float64(suite.DS.TotalBytes())/(1<<20), scale.SD)

	want := map[string]bool{}
	for _, name := range strings.Split(only, ",") {
		want[strings.TrimSpace(name)] = true
	}
	sel := func(name string) bool { return want["all"] || want[name] }

	type experiment struct {
		name string
		fn   func() (string, error)
	}
	experiments := []experiment{
		{"fig7", func() (string, error) { s, _, err := suite.Fig7(); return s, err }},
		{"fig8", func() (string, error) { s, _, err := suite.Fig8(); return s, err }},
		{"fig9", func() (string, error) { s, _, err := suite.Fig9(); return s, err }},
		{"fig10", func() (string, error) { s, _, err := suite.Fig10(); return s, err }},
		{"table1", func() (string, error) { return suite.Table1(ecs) }},
		{"table2", func() (string, error) { return suite.Table2(ecs) }},
		{"table3", suite.Table3},
		{"table4", suite.Table4},
		{"table5", suite.Table5},
		{"ablation", func() (string, error) { return suite.Ablations(ecs) }},
		{"recipes", func() (string, error) { return suite.RecipeCompression(ecs) }},
		{"summary", func() (string, error) { return suite.Summary(ecs) }},
	}
	ran := 0
	for _, e := range experiments {
		if !sel(e.name) {
			continue
		}
		text, err := e.fn()
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Println(text)
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matched %q", only)
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		if err := exp.WriteCSV(f, suite.Records()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("# %d run records exported to %s\n", len(suite.Records()), csvPath)
	}
	return nil
}
