// Command dedupd is the network deduplication server: one shared MHD (or
// SI-MHD) engine behind the internal/wire protocol. Clients chunk
// locally, offer hashes, and send only the chunk bytes the server asks
// for; the server reassembles each file's exact byte stream and ingests
// it through a per-connection engine session, so the resulting store is
// bit-identical to a local run over the same inputs.
//
// Examples:
//
//	dedupd -addr :7444 -store /var/lib/dedupd
//	dedupd -addr :7444 -algo si-mhd -ecs 8192 -metrics-addr :7445
//
// On SIGINT/SIGTERM the server drains: it stops accepting connections,
// refuses new sessions with a retryable error, lets in-flight sessions
// finish (bounded by -drain-timeout), finalizes the engine and — when
// -store is set — persists the deduplicated store with the crash-safe
// generation commit, then exits. A second signal forces immediate exit.
//
// -metrics-addr serves the debug endpoint set: /metrics.json (operational
// counters, occupancy gauges, latency histogram snapshots and engine
// statistics), /healthz ("ok", or 503 "draining" during shutdown),
// /events.json (the recent structured event ring) and the standard
// net/http/pprof profiles under /debug/pprof/.
//
// -log-level (debug|info|warn|error) and -slow-op (duration; operations
// at or above it emit warn-level slow_op events) control the structured
// event log written to stderr.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"mhdedup/dedup"
	"mhdedup/internal/core"
	"mhdedup/internal/events"
	"mhdedup/internal/metrics"
	"mhdedup/internal/server"
)

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":7444", "listen address")
	flag.StringVar(&o.metricsAddr, "metrics-addr", "", "serve /metrics.json and /healthz on this address (off when empty)")
	flag.StringVar(&o.storeDir, "store", "", "store directory: resumed from on start (if it exists), saved to on drain")
	flag.StringVar(&o.algo, "algo", "mhd", "engine: mhd or si-mhd")
	flag.IntVar(&o.ecs, "ecs", 4096, "expected chunk size in bytes")
	flag.IntVar(&o.sd, "sd", 64, "sample distance (hashes)")
	flag.IntVar(&o.cache, "cache", 64, "manifest cache capacity")
	flag.BoolVar(&o.noBloom, "no-bloom", false, "disable the engine bloom filter")
	flag.BoolVar(&o.recipeTrees, "recipe-trees", false, "store file recipes as deduplicated recipe trees (64-bit offsets, O(log n) ranged restore)")
	flag.IntVar(&o.maxSessions, "max-sessions", 16, "maximum concurrent ingest sessions")
	flag.IntVar(&o.window, "window", 8, "per-session in-flight command window")
	flag.Int64Var(&o.chunkCache, "chunk-cache-bytes", 256<<20, "wire chunk byte cache budget (0 disables)")
	flag.IntVar(&o.restoreWorkers, "restore-workers", 4, "concurrent container reads per restore stream (1 = synchronous pipeline)")
	flag.Int64Var(&o.restoreWindow, "restore-window-bytes", 8<<20, "restore reorder-buffer budget in bytes")
	flag.DurationVar(&o.idleTimeout, "idle-timeout", 2*time.Minute, "close connections idle longer than this")
	flag.DurationVar(&o.resumeTimeout, "resume-timeout", 2*time.Minute, "keep detached sessions resumable this long")
	flag.DurationVar(&o.drainTimeout, "drain-timeout", time.Minute, "bound on graceful drain before forcing shutdown")
	flag.StringVar(&o.logLevel, "log-level", "info", "event log level: debug, info, warn or error")
	flag.DurationVar(&o.slowOp, "slow-op", 100*time.Millisecond, "emit a warn slow_op event for operations at or above this duration (negative disables)")
	flag.BoolVar(&o.noWAL, "no-wal", false, "disable the write-ahead log; persist only at drain (legacy behavior)")
	flag.DurationVar(&o.checkpointInterval, "checkpoint-interval", 30*time.Second, "fold the write-ahead log into a fresh generation at least this often (negative disables age-triggered compaction)")
	flag.DurationVar(&o.logFlushInterval, "log-flush-interval", 200*time.Millisecond, "background group-commit cadence for the write-ahead log")
	flag.Int64Var(&o.compactLogBytes, "compact-log-bytes", 64<<20, "fold the log into a fresh generation once it exceeds this many bytes (negative disables)")
	flag.Int64Var(&o.shedLogBytes, "shed-log-bytes", 0, "shed new work once the durable log exceeds this many bytes (0 = 8x compact-log-bytes, negative disables)")
	flag.Int64Var(&o.shedPendingBytes, "shed-pending-bytes", 32<<20, "shed new work once un-fsynced log bytes exceed this (negative disables)")
	flag.DurationVar(&o.scrubInterval, "scrub-interval", 0, "verify every stored file from a consistent snapshot this often (0 disables)")
	flag.DurationVar(&o.maintenanceP99, "maintenance-p99", 50*time.Millisecond, "back background compaction/scrub off while the interval ingest p99 exceeds this (0 disables pacing)")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "dedupd:", err)
		os.Exit(1)
	}
}

type options struct {
	addr           string
	metricsAddr    string
	storeDir       string
	algo           string
	ecs            int
	sd             int
	cache          int
	noBloom        bool
	recipeTrees    bool
	maxSessions    int
	window         int
	chunkCache     int64
	restoreWorkers int
	restoreWindow  int64
	idleTimeout    time.Duration
	resumeTimeout  time.Duration
	drainTimeout   time.Duration
	logLevel       string
	slowOp         time.Duration

	noWAL              bool
	checkpointInterval time.Duration
	logFlushInterval   time.Duration
	compactLogBytes    int64
	shedLogBytes       int64
	shedPendingBytes   int64
	scrubInterval      time.Duration
	maintenanceP99     time.Duration
}

func run(o options) error {
	logger := log.New(os.Stderr, "dedupd: ", log.LstdFlags)
	level, err := events.ParseLevel(o.logLevel)
	if err != nil {
		return err
	}
	evlog := events.New(events.Options{
		Level:           level,
		Out:             os.Stderr,
		SlowOpThreshold: o.slowOp,
	})

	eng, dur, resumed, err := buildEngine(o, evlog)
	if err != nil {
		return err
	}
	cfg := server.Config{
		Engine:             eng,
		MaxSessions:        o.maxSessions,
		Window:             o.window,
		IdleTimeout:        o.idleTimeout,
		ResumeTimeout:      o.resumeTimeout,
		ChunkCacheBytes:    o.chunkCache,
		RestoreWorkers:     o.restoreWorkers,
		RestoreWindowBytes: o.restoreWindow,
		Events:             evlog,
	}
	if dur != nil {
		// Assigned conditionally: a typed-nil *Durability inside the
		// interface would defeat the server's nil check.
		cfg.Durability = dur
	}
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	opts := srv.Options()
	logger.Printf("listening on %s (%s ECS=%d SD=%d, resumed=%v, max sessions %d, window %d)",
		ln.Addr(), opts.Algorithm, opts.ECS, opts.SD, resumed, o.maxSessions, o.window)
	if dur != nil {
		dur.Start()
		logger.Printf("write-ahead log on (checkpoint %v, flush %v, compact at %d MiB)",
			o.checkpointInterval, o.logFlushInterval, o.compactLogBytes>>20)
	}

	var draining atomic.Bool
	var msrv *http.Server
	if o.metricsAddr != "" {
		msrv = metricsServer(o.metricsAddr, srv, eng, evlog, &draining)
		go func() {
			if err := msrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Printf("metrics server: %v", err)
			}
		}()
		logger.Printf("debug endpoints on http://%s: /metrics.json /healthz /events.json /debug/pprof/", o.metricsAddr)
	}

	// Serve until the first SIGINT/SIGTERM, then drain; a second signal
	// aborts the drain.
	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-sigCtx.Done():
	}
	stop() // restore default signal behavior: second signal kills the process
	draining.Store(true)
	logger.Printf("draining (timeout %v)...", o.drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		logger.Printf("drain incomplete: %v (sessions aborted)", err)
	}
	<-serveErr
	if msrv != nil {
		msrv.Close()
	}

	if err := eng.Finish(); err != nil {
		return fmt.Errorf("finish: %w", err)
	}
	switch {
	case dur != nil:
		// The log already holds everything; fold it so the directory
		// restarts from a bare generation, then stop the machinery.
		if err := dur.Compact(); err != nil {
			return fmt.Errorf("final compaction: %w", err)
		}
		if err := dur.Close(); err != nil {
			return fmt.Errorf("close log: %w", err)
		}
		logger.Printf("store compacted to %s", o.storeDir)
	case o.storeDir != "":
		if err := dedup.SaveStore(eng, o.storeDir); err != nil {
			return fmt.Errorf("save store: %w", err)
		}
		logger.Printf("store saved to %s", o.storeDir)
	}
	rep := eng.Report()
	logger.Printf("shut down: %d files, %d input bytes, real DER %.4f",
		rep.Files, rep.InputBytes, rep.RealDER())
	return nil
}

// buildEngine constructs (or resumes) the shared engine. Only MHD and
// SI-MHD are session-capable, so those are the only algorithms served.
// With a store directory and the WAL enabled (the default) the engine is
// mounted through dedup.ResumeDurable, so every mutation is journaled and
// the returned Durability handle drives checkpoints and admission control.
func buildEngine(o options, evlog *events.Log) (*core.Dedup, *dedup.Durability, bool, error) {
	algo := dedup.Algorithm(o.algo)
	if algo != dedup.MHD && algo != dedup.SIMHD {
		return nil, nil, false, fmt.Errorf("algorithm %q is not servable (need %s or %s)", o.algo, dedup.MHD, dedup.SIMHD)
	}
	opts := dedup.Options{
		ECS:            o.ecs,
		SD:             o.sd,
		CacheManifests: o.cache,
		DisableBloom:   o.noBloom,
		IngestWorkers:  o.maxSessions,
		RecipeTrees:    o.recipeTrees,
	}
	resumed := false
	if o.storeDir != "" {
		if _, err := os.Stat(o.storeDir); err == nil {
			resumed = true
		}
	}
	if o.storeDir != "" && !o.noWAL {
		dopt := dedup.DurabilityOptions{
			FlushInterval:    o.logFlushInterval,
			CompactLogBytes:  o.compactLogBytes,
			CompactInterval:  o.checkpointInterval,
			ShedPendingBytes: o.shedPendingBytes,
			ShedLogBytes:     o.shedLogBytes,
			ScrubInterval:    o.scrubInterval,
			Events:           evlog,
		}
		if o.maintenanceP99 > 0 {
			// Same name server.New resolves, so maintenance paces itself
			// by the live ingest apply latency.
			dopt.PaceHistogram = metrics.Default.Histogram("server.apply_ns")
			dopt.P99Budget = o.maintenanceP99
		}
		eng, dur, rep, err := dedup.ResumeDurable(algo, opts, o.storeDir, dopt)
		if err != nil {
			return nil, nil, false, fmt.Errorf("open durable store %s: %w", o.storeDir, err)
		}
		if rep.Records > 0 || rep.Truncated {
			evlog.Info("wal.replayed",
				events.F("records", rep.Records),
				events.F("bytes", rep.Bytes),
				events.F("segments", rep.Segments),
				events.F("torn_tail", rep.Truncated))
		}
		return eng.(*core.Dedup), dur, resumed, nil
	}
	if resumed {
		eng, err := dedup.Resume(algo, opts, o.storeDir)
		if err != nil {
			return nil, nil, false, fmt.Errorf("resume %s: %w", o.storeDir, err)
		}
		return eng.(*core.Dedup), nil, true, nil
	}
	eng, err := dedup.New(algo, opts)
	if err != nil {
		return nil, nil, false, err
	}
	return eng.(*core.Dedup), nil, false, nil
}

// metricsServer exposes the debug endpoint set over HTTP: /metrics.json
// (counters + gauges + latency histogram snapshots + engine statistics),
// /healthz (drain-aware), /events.json (the structured event ring) and
// the standard pprof profiles under /debug/pprof/.
func metricsServer(addr string, srv *server.Server, eng *core.Dedup, evlog *events.Log, draining *atomic.Bool) *http.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		cacheBytes, cacheEntries := srv.CacheStats()
		export := metrics.Default.ExportAll()
		doc := struct {
			Counters     map[string]int64                     `json:"counters"`
			Gauges       map[string]int64                     `json:"gauges,omitempty"`
			Histograms   map[string]metrics.HistogramSnapshot `json:"histograms,omitempty"`
			Sessions     int                                  `json:"sessions"`
			CacheBytes   int64                                `json:"chunk_cache_bytes"`
			CacheEntries int                                  `json:"chunk_cache_entries"`
			Engine       metrics.Stats                        `json:"engine"`
		}{
			Counters:     export.Counters,
			Gauges:       export.Gauges,
			Histograms:   export.Histograms,
			Sessions:     srv.SessionCount(),
			CacheBytes:   cacheBytes,
			CacheEntries: cacheEntries,
			Engine:       eng.Stats(),
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc)
	})
	mux.HandleFunc("/events.json", func(w http.ResponseWriter, r *http.Request) {
		evs := evlog.Recent()
		type line struct {
			Time  string `json:"time"`
			Level string `json:"level"`
			Type  string `json:"type"`
			Line  string `json:"line"`
		}
		out := make([]line, len(evs))
		for i, e := range evs {
			out[i] = line{
				Time:  e.Time.Format(time.RFC3339Nano),
				Level: e.Level.String(),
				Type:  e.Type,
				Line:  e.String(),
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Events []line `json:"events"`
		}{Events: out})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	// The standard pprof profile set; an explicit wire-up because the
	// server runs its own mux, not http.DefaultServeMux.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return &http.Server{Addr: addr, Handler: mux}
}
