package dedup_test

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"os"

	"mhdedup/dedup"
)

// Example demonstrates the basic ingest → report → restore cycle.
func Example() {
	gen1 := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(gen1)
	gen2 := append([]byte(nil), gen1...) // tomorrow's identical backup

	eng, err := dedup.New(dedup.MHD, dedup.Options{ECS: 4096, SD: 16})
	if err != nil {
		log.Fatal(err)
	}
	eng.PutFile("monday.img", bytes.NewReader(gen1))
	eng.PutFile("tuesday.img", bytes.NewReader(gen2))
	eng.Finish()

	rep := eng.Report()
	fmt.Printf("data-only DER: %.1f\n", rep.DataOnlyDER())
	fmt.Printf("duplicate slices: %d\n", rep.DupSlices)

	var out bytes.Buffer
	eng.Restore("tuesday.img", &out)
	fmt.Printf("restored: %v\n", bytes.Equal(out.Bytes(), gen2))
	// Output:
	// data-only DER: 2.0
	// duplicate slices: 1
	// restored: true
}

// ExampleNew_ablations shows how to switch off individual MHD mechanisms
// for measurement.
func ExampleNew_ablations() {
	eng, err := dedup.New(dedup.MHD, dedup.Options{
		ECS:                4096,
		SD:                 16,
		DisableByteCompare: true, // no HHR byte-level boundary search
		DisableEdgeHash:    true, // no repeat-reload guard
	})
	if err != nil {
		log.Fatal(err)
	}
	data := make([]byte, 256<<10)
	rand.New(rand.NewSource(2)).Read(data)
	eng.PutFile("img", bytes.NewReader(data))
	eng.Finish()
	fmt.Println(eng.Report().HHROps)
	// Output: 0
}

// ExampleNewWorkload builds a synthetic disk-image backup stream with the
// duplication structure of the paper's trace.
func ExampleNewWorkload() {
	cfg := dedup.DefaultWorkloadConfig()
	cfg.Machines = 2
	cfg.Days = 3
	cfg.SnapshotBytes = 1 << 20
	cfg.EditsPerDay = 8
	cfg.EditBytes = 8 << 10
	w, err := dedup.NewWorkload(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d backup files\n", len(w.Files()))
	fmt.Println(w.Files()[0].Name)
	// Output:
	// 6 backup files
	// m00/d00
}

// ExampleSaveStore persists a deduplicated store and reopens it for
// restore-only access.
func ExampleSaveStore() {
	dir, _ := os.MkdirTemp("", "dedup-example-*")
	defer os.RemoveAll(dir)

	data := make([]byte, 128<<10)
	rand.New(rand.NewSource(3)).Read(data)
	eng, _ := dedup.New(dedup.MHD, dedup.Options{ECS: 4096, SD: 4})
	eng.PutFile("vm.img", bytes.NewReader(data))
	eng.Finish()
	if err := dedup.SaveStore(eng, dir); err != nil {
		log.Fatal(err)
	}

	st, err := dedup.OpenStore(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(st.Files())
	var out bytes.Buffer
	st.Restore("vm.img", &out)
	fmt.Println(bytes.Equal(out.Bytes(), data))
	// Output:
	// [vm.img]
	// true
}
