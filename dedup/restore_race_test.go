package dedup

import (
	"bytes"
	"sync"
	"testing"
)

// TestParallelRestoreRacesMutators extends the Store locking contract to
// the batched pipeline: many concurrent parallel restores (plain and
// verifying, each internally running 4 reader goroutines over a tiny
// reorder window) race against Delete, Sweep and Scrub on one shared
// Store. Under -race this doubles as the pipeline's data-race gate; at the
// byte level every restore must either reproduce the original exactly or
// fail cleanly — never hand back a torn stream.
func TestParallelRestoreRacesMutators(t *testing.T) {
	st, want := buildConcurrentStore(t)
	// Small window + several workers: maximal internal concurrency and
	// constant admission/emission churn while the mutators run.
	st.SetRestoreOptions(RestoreOptions{Workers: 4, WindowBytes: 8 << 10})

	var wg sync.WaitGroup
	start := make(chan struct{})

	restoreLoop := func(name string, verify bool) {
		defer wg.Done()
		<-start
		for i := 0; i < 6; i++ {
			var got bytes.Buffer
			var err error
			if verify {
				err = st.VerifyRestore(name, &got)
			} else {
				err = st.Restore(name, &got)
			}
			deletable := name == "img-4" || name == "img-5"
			switch {
			case err == nil:
				if !bytes.Equal(got.Bytes(), want[name]) {
					t.Errorf("%s: pipelined restore returned wrong bytes (iteration %d)", name, i)
					return
				}
			case deletable:
				// Deleted while racing: a clean error is correct.
			default:
				t.Errorf("%s: pipelined restore failed: %v", name, err)
				return
			}
		}
	}
	for _, name := range []string{"img-0", "img-1", "img-2", "img-3", "img-4", "img-5"} {
		wg.Add(2)
		go restoreLoop(name, false)
		go restoreLoop(name, true)
	}
	wg.Add(1)
	go func() { // mutators race along: delete two files, sweep, scrub
		defer wg.Done()
		<-start
		for _, name := range []string{"img-4", "img-5"} {
			if err := st.Delete(name); err != nil {
				t.Errorf("delete %s: %v", name, err)
				return
			}
		}
		if _, err := st.Sweep(); err != nil {
			t.Errorf("sweep: %v", err)
			return
		}
		if rep, err := st.Scrub(VerifyOpts{}); err != nil {
			t.Errorf("scrub: %v", err)
		} else if !rep.OK() {
			t.Errorf("scrub of an undamaged store found problems: %+v", rep)
		}
	}()
	close(start)
	wg.Wait()

	// Post-race: survivors restore perfectly through the pipeline.
	for _, name := range []string{"img-0", "img-1", "img-2", "img-3"} {
		var got bytes.Buffer
		if err := st.VerifyRestore(name, &got); err != nil {
			t.Fatalf("%s after race: %v", name, err)
		}
		if !bytes.Equal(got.Bytes(), want[name]) {
			t.Fatalf("%s after race: bytes differ", name)
		}
	}
	for _, name := range []string{"img-4", "img-5"} {
		if err := st.Restore(name, &bytes.Buffer{}); err == nil {
			t.Fatalf("%s restored after deletion", name)
		}
	}
}
