package dedup

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// buildConcurrentStore ingests several near-duplicate files and returns
// the opened store plus the expected plaintexts.
func buildConcurrentStore(t *testing.T) (*Store, map[string][]byte) {
	t.Helper()
	eng, err := New(MHD, Options{ECS: 512, SD: 4, BloomBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	base := randBytes(41, 150_000)
	want := make(map[string][]byte)
	for i := 0; i < 6; i++ {
		data := append([]byte(nil), base...)
		copy(data[i*20_000:], randBytes(int64(42+i), 4_000))
		name := fmt.Sprintf("img-%d", i)
		want[name] = data
		if err := eng.PutFile(name, bytes.NewReader(data)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Finish(); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := SaveStore(eng, dir); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st, want
}

// TestStoreConcurrentRestoreVsDeleteSweep pins the Store locking
// contract: Restore/VerifyRestore/Files racing against Delete and Sweep
// on one shared Store must be race-clean, and every restore must either
// produce exactly the original bytes or fail cleanly (the file was
// deleted) — never a torn or corrupt stream.
func TestStoreConcurrentRestoreVsDeleteSweep(t *testing.T) {
	st, want := buildConcurrentStore(t)

	// img-4 and img-5 get deleted mid-flight; the rest must survive
	// every interleaving.
	var wg sync.WaitGroup
	start := make(chan struct{})

	restoreLoop := func(name string, verify bool) {
		defer wg.Done()
		<-start
		for i := 0; i < 8; i++ {
			var got bytes.Buffer
			var err error
			if verify {
				err = st.VerifyRestore(name, &got)
			} else {
				err = st.Restore(name, &got)
			}
			deletable := name == "img-4" || name == "img-5"
			switch {
			case err == nil:
				if !bytes.Equal(got.Bytes(), want[name]) {
					t.Errorf("%s: restored bytes differ (iteration %d)", name, i)
					return
				}
			case deletable:
				// Deleted while we raced: a clean error is the correct
				// outcome; a partial success is not checked here because
				// got may hold a prefix — the contract is that err != nil
				// was reported.
			default:
				t.Errorf("%s: restore failed: %v", name, err)
				return
			}
		}
	}
	for _, name := range []string{"img-0", "img-1", "img-2", "img-3", "img-4", "img-5"} {
		wg.Add(2)
		go restoreLoop(name, false)
		go restoreLoop(name, true)
	}
	wg.Add(1)
	go func() { // listing races along
		defer wg.Done()
		<-start
		for i := 0; i < 20; i++ {
			if n := len(st.Files()); n < 4 {
				t.Errorf("Files() = %d entries, want >= 4", n)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // the mutator: delete two files, then sweep
		defer wg.Done()
		<-start
		for _, name := range []string{"img-4", "img-5"} {
			if err := st.Delete(name); err != nil {
				t.Errorf("delete %s: %v", name, err)
				return
			}
		}
		if _, err := st.Sweep(); err != nil {
			t.Errorf("sweep: %v", err)
		}
	}()
	close(start)
	wg.Wait()

	// Post-race invariants: survivors restore perfectly (verified), the
	// deleted files are gone, and the store checks consistent.
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("img-%d", i)
		var got bytes.Buffer
		if err := st.VerifyRestore(name, &got); err != nil {
			t.Fatalf("post-race verify restore %s: %v", name, err)
		}
		if !bytes.Equal(got.Bytes(), want[name]) {
			t.Fatalf("post-race %s differs", name)
		}
	}
	for _, name := range st.Files() {
		if name == "img-4" || name == "img-5" {
			t.Fatalf("%s still listed after delete", name)
		}
	}
	if problems := st.Check(); len(problems) != 0 {
		t.Fatalf("store inconsistent after concurrent delete/sweep: %v", problems)
	}
}

// TestStoreConcurrentVerifyRestores exercises the shared verification
// index from many goroutines at once (it is serialized internally).
func TestStoreConcurrentVerifyRestores(t *testing.T) {
	st, want := buildConcurrentStore(t)
	var wg sync.WaitGroup
	for name, data := range want {
		wg.Add(1)
		go func(name string, data []byte) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				var got bytes.Buffer
				if err := st.VerifyRestore(name, &got); err != nil {
					t.Errorf("%s: %v", name, err)
					return
				}
				if !bytes.Equal(got.Bytes(), data) {
					t.Errorf("%s: bytes differ", name)
					return
				}
			}
		}(name, data)
	}
	wg.Wait()
}

// TestStoreConcurrentSaveVsRestore races Save (a mutation-class
// operation: it walks the whole object set) against restores.
func TestStoreConcurrentSaveVsRestore(t *testing.T) {
	st, want := buildConcurrentStore(t)
	dir := t.TempDir()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if err := st.Save(dir); err != nil {
				t.Errorf("save: %v", err)
				return
			}
		}
	}()
	for name, data := range want {
		wg.Add(1)
		go func(name string, data []byte) {
			defer wg.Done()
			var got bytes.Buffer
			if err := st.Restore(name, &got); err != nil {
				t.Errorf("%s: %v", name, err)
				return
			}
			if !bytes.Equal(got.Bytes(), data) {
				t.Errorf("%s: bytes differ", name)
			}
		}(name, data)
	}
	wg.Wait()
	// The saved copy must itself be a consistent, restorable store.
	reopened, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := reopened.VerifyRestore("img-0", &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want["img-0"]) {
		t.Fatal("saved-copy restore differs")
	}
}
