// Package dedup is the public API of mhdedup: a deduplication library
// reproducing "Hysteresis Re-chunking Based Metadata Harnessing
// Deduplication of Disk Images" (Zhou & Wen, ICPP 2013).
//
// Nine engines are provided behind one interface: MHD (the paper's
// contribution — sampling and hash merging, bi-directional match extension
// and hysteresis re-chunking) and its SI-MHD variant; the paper's four
// comparison baselines (plain CDC, Bimodal, SubChunk, SparseIndexing); and
// the related-work schemes its survey discusses (FBC, Fingerdiff, Extreme
// Binning). All write to a simulated disk that accounts inodes, metadata
// bytes and disk accesses exactly as the paper's analysis does, so the
// trade-offs the paper charts can be measured for any workload.
//
// Typical use:
//
//	eng, err := dedup.New(dedup.MHD, dedup.Options{ECS: 4096, SD: 64})
//	...
//	eng.PutFile("backup-2026-07-05.img", reader)
//	eng.Finish()
//	rep := eng.Report()
//	fmt.Println(rep.RealDER(), rep.MetaDataRatio())
//	eng.Restore("backup-2026-07-05.img", writer)
package dedup

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"mhdedup/internal/algo"
	"mhdedup/internal/baseline"
	"mhdedup/internal/core"
	"mhdedup/internal/exp"
	"mhdedup/internal/metrics"
	"mhdedup/internal/simdisk"
	"mhdedup/internal/store"
	"mhdedup/internal/trace"
)

// Algorithm selects a deduplication engine.
type Algorithm string

// The five engines.
const (
	// MHD is the paper's metadata harnessing deduplication (BF-MHD).
	MHD Algorithm = exp.AlgoMHD
	// CDC is plain LBFS-style content-defined-chunking deduplication with
	// a full per-chunk index.
	CDC Algorithm = exp.AlgoCDC
	// Bimodal re-chunks non-duplicate big chunks at transition points
	// (Kruus et al., FAST'10).
	Bimodal Algorithm = exp.AlgoBimodal
	// SubChunk re-chunks every non-duplicate big chunk and coalesces the
	// survivors into containers (Romanski et al., SYSTOR'11).
	SubChunk Algorithm = exp.AlgoSubChunk
	// SparseIndexing deduplicates segments against champion manifests
	// found through a sampled in-RAM index (Lillibridge et al., FAST'09).
	SparseIndexing Algorithm = exp.AlgoSparse
	// SIMHD is MHD with its hooks held in a sparse in-RAM index instead of
	// on-disk hook objects — the SI-MHD variant §V of the paper mentions.
	SIMHD Algorithm = exp.AlgoSIMHD
	// FBC re-chunks big chunks that contain frequently recurring content,
	// using a count-min frequency sketch (Lu et al., MASCOTS'10).
	FBC Algorithm = exp.AlgoFBC
	// Fingerdiff coalesces contiguous non-duplicate chunks on disk while a
	// full in-RAM database indexes every chunk (Bobbarjung et al., 2006).
	Fingerdiff Algorithm = exp.AlgoFingerdiff
	// ExtremeBinning deduplicates each file against a single bin chosen by
	// its representative (minimum-hash) chunk (Bhagwat et al., 2009).
	ExtremeBinning Algorithm = exp.AlgoExtremeBinning
)

// Algorithms lists every available engine.
func Algorithms() []Algorithm {
	out := make([]Algorithm, len(exp.AllAlgorithms))
	for i, a := range exp.AllAlgorithms {
		out[i] = Algorithm(a)
	}
	return out
}

// Engine is a deduplication engine: feed input files in stream order, call
// Finish once, then read the Report and Restore files at will. Engines are
// not safe for concurrent use.
type Engine = algo.Deduplicator

// Report carries a run's statistics and derived metrics (DER,
// MetaDataRatio, DAD, ThroughputRatio, per-category metadata breakdown).
type Report = metrics.Report

// CostModel converts simulated-disk access counts into time for the
// ThroughputRatio metric.
type CostModel = simdisk.CostModel

// DefaultCostModel returns the 2013-era HDD + software SHA-1 calibration
// used in the paper reproduction.
func DefaultCostModel() CostModel { return simdisk.Default2013() }

// Options configures an engine. Zero fields take paper-faithful defaults.
type Options struct {
	// ECS is the expected (small) chunk size in bytes; default 4096.
	ECS int
	// SD is MHD's sample distance, the big/small chunk ratio of Bimodal
	// and SubChunk, and SparseIndexing's hook sampling rate; default 64.
	// CDC ignores it.
	SD int
	// BloomBytes sizes the bloom filter; zero auto-sizes it from
	// ExpectedInputBytes (or 1 MiB when that is unknown).
	BloomBytes int
	// ExpectedInputBytes, when known, drives bloom auto-sizing.
	ExpectedInputBytes int64
	// CacheManifests bounds the in-RAM manifest locality cache; default 64.
	CacheManifests int
	// DisableBloom turns the bloom filter off (every fresh hash then costs
	// an on-disk hook query, as in Table II's no-bloom rows).
	DisableBloom bool
	// DisableByteCompare and DisableEdgeHash switch off the corresponding
	// MHD mechanisms (ablations; other engines ignore them).
	DisableByteCompare bool
	DisableEdgeHash    bool
	// SHMPerSlice selects MHD's alternative merging strategy: flush the
	// hysteresis buffer at every duplicate-slice end so each non-duplicate
	// slice owns at least one Hook.
	SHMPerSlice bool
	// TTTD selects the two-thresholds-two-divisors chunker for MHD.
	TTTD bool
	// FastCDC selects the gear-hash chunker for MHD (faster scanning,
	// tighter size distribution; mutually exclusive with TTTD).
	FastCDC bool
	// ReferenceChunker selects the per-byte reference chunker scan instead
	// of the block-processed fast path. Cut points are bit-identical either
	// way (pinned by the conformance harness); this is a throughput knob
	// for differential benchmarking. MHD/SI-MHD only.
	ReferenceChunker bool
	// HashWorkers > 0 enables MHD's per-stream chunk/hash pipeline (ordered
	// fan-out SHA-1; bit-identical results). Other engines ignore it.
	HashWorkers int
	// IngestWorkers caps how many backup streams IngestParallel deduplicates
	// concurrently on an MHD/SI-MHD engine. 0 or 1 is fully sequential and
	// bit-identical to calling PutFile in a loop. Engines other than MHD and
	// SIMHD reject values above 1 at construction (their state is
	// single-stream).
	IngestWorkers int
	// RecipeTrees stores file recipes as deduplicated recipe trees: the
	// ref stream is content-defined into content-addressed recipe chunks
	// with a Merkle-style root, so near-identical snapshots share recipe
	// subtrees and ranged restore seeks in O(log n) recipe reads. Trees
	// carry full 64-bit offsets; the flat format refuses refs past 4 GiB.
	RecipeTrees bool
}

// New returns an engine for the given algorithm.
func New(a Algorithm, opt Options) (Engine, error) {
	if opt.ECS == 0 {
		opt.ECS = 4096
	}
	if opt.SD == 0 {
		opt.SD = 64
	}
	if opt.CacheManifests == 0 {
		opt.CacheManifests = 64
	}
	p := exp.Params{
		Algo:               string(a),
		ECS:                opt.ECS,
		SD:                 opt.SD,
		BloomBytes:         opt.BloomBytes,
		ExpectedInputBytes: opt.ExpectedInputBytes,
		CacheManifests:     opt.CacheManifests,
		UseBloom:           !opt.DisableBloom,
		ByteCompare:        !opt.DisableByteCompare,
		EdgeHash:           !opt.DisableEdgeHash,
		SHMPerSlice:        opt.SHMPerSlice,
		TTTD:               opt.TTTD,
		FastCDC:            opt.FastCDC,
		ReferenceChunker:   opt.ReferenceChunker,
		HashWorkers:        opt.HashWorkers,
		IngestWorkers:      opt.IngestWorkers,
		RecipeTrees:        opt.RecipeTrees,
	}
	eng, err := exp.Build(p)
	if err != nil {
		return nil, fmt.Errorf("dedup: %w", err)
	}
	return eng, nil
}

// IngestItem is one input file of an ingest stream: the Restore key and an
// opener returning its contents.
type IngestItem = core.Item

// IngestStream is an ordered sequence of input files sharing backup-stream
// locality (one machine's disk-image history). Files within a stream are
// always ingested in order; different streams may run concurrently.
type IngestStream = core.Stream

// StreamIngester is implemented by engines that accept multiple concurrent
// backup streams (MHD and SIMHD).
type StreamIngester interface {
	IngestStreams(workers int, streams []IngestStream) error
}

// ContextStreamIngester is implemented by engines whose parallel ingest
// honors context cancellation (MHD and SIMHD): cancelling ctx aborts
// every in-flight file promptly and returns ctx.Err(). The engine stays
// usable — cancelled files simply never ingested.
type ContextStreamIngester interface {
	IngestStreamsContext(ctx context.Context, workers int, streams []IngestStream) error
}

// ContextIngester is implemented by engines that can abort a single
// in-flight PutFile when ctx is cancelled.
type ContextIngester interface {
	PutFileContext(ctx context.Context, name string, r io.Reader) error
}

// IngestParallel deduplicates the given streams with up to workers
// concurrent sessions on eng. workers ≤ 1 ingests sequentially in stream
// order — bit-identical to a serial PutFile loop. Engines that do not
// support concurrent ingest (everything except MHD and SIMHD) return an
// error when workers > 1 and fall back to the sequential loop otherwise.
func IngestParallel(eng Engine, workers int, streams []IngestStream) error {
	return IngestParallelContext(context.Background(), eng, workers, streams)
}

// IngestParallelContext is IngestParallel with cancellation: when ctx is
// cancelled, in-flight ingests abort at the next chunk boundary and the
// call returns ctx.Err(). This is what lets a network server kill a
// session's ingest the moment its client is gone for good. Engines
// without context support are cancelled between files.
func IngestParallelContext(ctx context.Context, eng Engine, workers int, streams []IngestStream) error {
	if si, ok := eng.(ContextStreamIngester); ok {
		return si.IngestStreamsContext(ctx, workers, streams)
	}
	if si, ok := eng.(StreamIngester); ok {
		if err := ctx.Err(); err != nil {
			return err
		}
		return si.IngestStreams(workers, streams)
	}
	if workers > 1 {
		return fmt.Errorf("dedup: engine %T does not support concurrent ingest", eng)
	}
	for _, st := range streams {
		for _, it := range st.Items {
			if err := ctx.Err(); err != nil {
				return err
			}
			r, err := it.Open()
			if err != nil {
				return err
			}
			var putErr error
			if ci, ok := eng.(ContextIngester); ok {
				putErr = ci.PutFileContext(ctx, it.Name, r)
			} else {
				putErr = eng.PutFile(it.Name, r)
			}
			r.Close()
			if putErr != nil {
				return putErr
			}
		}
	}
	return nil
}

// Workload re-exports the synthetic disk-image backup generator so library
// users can produce realistic test streams.
type Workload = trace.Dataset

// WorkloadConfig configures a synthetic workload.
type WorkloadConfig = trace.Config

// WorkloadFile describes one file of a workload.
type WorkloadFile = trace.FileInfo

// DefaultWorkloadConfig returns the 14-machine × 14-day configuration whose
// duplication statistics match the paper's trace.
func DefaultWorkloadConfig() WorkloadConfig { return trace.Default() }

// NewWorkload builds a synthetic disk-image backup workload.
func NewWorkload(cfg WorkloadConfig) (*Workload, error) { return trace.New(cfg) }

// SaveStore materializes an engine's deduplicated store to a directory
// (one file per chunk/hook/manifest object). A store saved after Finish
// can be reopened later with OpenStore and restored from without the
// original engine.
func SaveStore(eng Engine, dir string) error {
	return eng.Disk().SaveDir(dir)
}

// Store is a handle to a saved deduplicated store: it can list, verify and
// restore the ingested files, scrub out corruption, and garbage-collect.
//
// A Store is safe for concurrent use. The locking contract: reads
// (Files, Restore, VerifyRestore, Check) may run concurrently with each
// other; mutations (Delete, Sweep, Scrub, Save) are exclusive — they
// wait for in-flight reads to finish and block new ones, so a Restore
// never observes a half-swept object set and a Sweep never reclaims a
// container out from under a reader. VerifyRestore additionally
// serializes against other VerifyRestore calls (the verification index
// memoizes container verdicts and is single-threaded by design).
type Store struct {
	// mu is the object-set lock: read operations take RLock, mutating
	// operations take Lock. Lock order is always mu before verMu.
	mu  sync.RWMutex
	st  *store.Store
	dir string

	// ropts selects the restore engine: the zero value keeps the serial
	// per-ref reference path; Workers ≥ 1 routes Restore/VerifyRestore
	// through the batched pipeline (see SetRestoreOptions).
	ropts RestoreOptions

	// verMu guards ver and serializes whole VerifyRestore calls —
	// store.Verifier is not safe for concurrent use.
	verMu sync.Mutex
	// ver is the cached verification index (manifest claims and container
	// verdicts). Building it decodes every manifest, so it is shared across
	// VerifyRestore calls — `restore -all -verify` costs one index, not one
	// per file — and dropped whenever the object set mutates.
	ver *store.Verifier
}

// RecoverReport describes what crash recovery found and repaired in a store
// directory: the generation mounted, partial saves rolled back, and whether
// the commit marker had to be rewritten.
type RecoverReport = simdisk.RecoverReport

// RecoverStore repairs the debris of an interrupted SaveStore/Save in dir:
// partially written generations are rolled back and the commit marker is
// rewritten if it was torn, leaving exactly the last consistent generation.
// It is idempotent and a no-op on clean, legacy, or empty directories.
// OpenStore and Resume call it automatically.
func RecoverStore(dir string) (RecoverReport, error) {
	return simdisk.Recover(dir)
}

// OpenStore opens a directory written by SaveStore, running crash recovery
// first: if the last save was interrupted, its partial state is rolled back
// and the previous consistent generation is mounted.
func OpenStore(dir string) (*Store, error) {
	// Recovery is best-effort here (the directory may be read-only);
	// LoadDir performs the same generation selection read-only and is the
	// authority on whether the store is mountable.
	simdisk.Recover(dir)
	disk, err := simdisk.LoadDir(dir)
	if err != nil {
		return nil, err
	}
	// A durable server run leaves acknowledged work in the write-ahead
	// log until compaction folds it; replay its surviving prefix so those
	// ingests are restorable here too.
	if _, err := simdisk.ReplayWAL(dir, disk); err != nil {
		return nil, err
	}
	// Restore follows FileManifests and raw chunk ranges only, but
	// verification and scrubbing must decode every manifest, so the format
	// is sniffed up front (an ambiguous store still mounts; its manifests
	// are then reported by Scrub/Check rather than trusted blindly).
	format, _ := store.DetectFormat(disk)
	return &Store{st: store.New(disk, format), dir: dir}, nil
}

// Files lists the restorable file names, sorted.
func (s *Store) Files() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := s.st.Disk().Names(simdisk.FileManifest)
	sort.Strings(names)
	return names
}

// RestoreOptions tunes the batched restore pipeline: Workers concurrent
// container readers feeding an in-order emitter through a reorder buffer
// bounded by WindowBytes, with adjacent/overlapping recipe ranges
// coalesced (bridging container gaps up to CoalesceGap) into minimal
// reads. The zero value selects the serial per-ref reference path;
// Workers of 1 runs the planned/coalesced pipeline synchronously;
// Workers > 1 reads in parallel. Output is bit-identical in every mode.
type RestoreOptions = store.RestoreOptions

// SetRestoreOptions selects the restore engine used by Restore and
// VerifyRestore. It is safe to call between restores; in-flight restores
// finish with the options they started with.
func (s *Store) SetRestoreOptions(o RestoreOptions) {
	s.mu.Lock()
	s.ropts = o
	s.mu.Unlock()
}

// Restore rebuilds one file into w. Concurrent Restores are fine;
// mutations (Delete, Sweep, Scrub) wait until in-flight restores finish.
// With SetRestoreOptions{Workers ≥ 1} the batched pipeline is used; the
// bytes written are identical either way.
func (s *Store) Restore(name string, w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.ropts.Workers >= 1 {
		return s.st.RestoreFileOpts(name, w, s.ropts)
	}
	return s.st.RestoreFile(name, w)
}

// RangeStats reports what a ranged restore did: the bytes written, the
// recipe chunks read to find them (the O(log n) seek cost when the file's
// recipe is a tree), and the resolved [Offset, Offset+Length) window.
type RangeStats = store.RangeStats

// RestoreRange rebuilds the byte range [offset, offset+length) of one
// file into w. A negative length means "to end of file"; a range past EOF
// is clamped (an offset at or past EOF succeeds and writes nothing). When
// the file's recipe is stored as a recipe tree (Options.RecipeTrees), the
// seek reads O(log n) recipe chunks instead of the whole manifest.
func (s *Store) RestoreRange(name string, offset, length int64, w io.Writer) (RangeStats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.st.RestoreRange(name, offset, length, w, s.ropts)
}

// VerifyRestoreRange is RestoreRange with VerifyRestore's end-to-end
// chunk verification: every range served to w is re-hashed against the
// content address its manifest vouches for before it is written.
func (s *Store) VerifyRestoreRange(name string, offset, length int64, w io.Writer) (RangeStats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.verMu.Lock()
	defer s.verMu.Unlock()
	if s.ver == nil {
		s.ver = store.NewVerifier(s.st, store.VerifyOpts{})
	}
	return s.ver.RestoreRange(name, offset, length, w, s.ropts)
}

// RecipeTreeStats summarizes one file's recipe tree: depth, node/leaf
// counts and how many of its serialized bytes were new (not shared with
// an earlier snapshot's tree).
type RecipeTreeStats = store.RecipeTreeStats

// ConvertRecipeTrees rewrites every flat FileManifest in the store as a
// recipe tree, in sorted name order (so sibling snapshots converted in
// sequence share subtrees). Already-converted and empty files are left
// alone. It returns how many files were rewritten; perFile, when non-nil,
// observes each conversion.
func (s *Store) ConvertRecipeTrees(perFile func(name string, st RecipeTreeStats)) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.invalidateVerifier()
	return s.st.ConvertToRecipeTrees(perFile)
}

// Check runs an offline consistency check of the store (the system's
// fsck): every manifest must decode and tile real chunk data, every hook
// must point at a real manifest, every file must be restorable. It returns
// one line per problem found; nil means the store is consistent.
func (s *Store) Check() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	format, ok := store.DetectFormat(s.st.Disk())
	if !ok {
		return []string{"store: cannot determine manifest format (corrupt manifests?)"}
	}
	return store.Check(s.st.Disk(), format).Problems
}

// VerifyOpts tunes verified restore and scrub: MaxRetries bounds how many
// times a failed read or hash mismatch is retried before the damage is
// declared persistent (transient faults heal on retry; latent media
// corruption does not).
type VerifyOpts = store.VerifyOpts

// ScrubReport summarizes a Scrub: what was checked, what was corrupt, what
// was quarantined, and which files lost data.
type ScrubReport = store.ScrubReport

// VerifyRestore rebuilds one file into w with end-to-end verification:
// every chunk range the file references is re-hashed against the content
// address its manifest vouches for, and the bytes written to w are served
// from the very read that hashed clean — never from a separate, unchecked
// re-read. Transient read faults are retried; persistent mismatches fail
// the restore with an error naming the corrupt container, so w never
// silently receives corrupt data. The verification index is built on
// first use and shared across calls (see Scrub/Delete/Sweep for when it
// is rebuilt).
func (s *Store) VerifyRestore(name string, w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.verMu.Lock()
	defer s.verMu.Unlock()
	if s.ver == nil {
		s.ver = store.NewVerifier(s.st, store.VerifyOpts{})
	}
	if s.ropts.Workers >= 1 {
		return s.ver.RestoreFileOpts(name, w, s.ropts)
	}
	return s.ver.RestoreFile(name, w)
}

// invalidateVerifier drops the cached verification index; the next
// VerifyRestore rebuilds it over the mutated object set. Callers hold
// s.mu exclusively (lock order mu → verMu).
func (s *Store) invalidateVerifier() {
	s.verMu.Lock()
	s.ver = nil
	s.verMu.Unlock()
}

// Scrub re-hashes every chunk of every container against the content
// addresses its manifests vouch for, with bounded retry to separate
// transient faults from latent corruption. Objects with persistent damage
// (corrupt or unreadable containers, undecodable manifests) are removed
// from the store and their bytes preserved under dir/quarantine/ for
// forensics; the report lists exactly what was quarantined and which files
// are affected. The in-RAM store is mutated immediately; call Save to
// persist the scrubbed state.
func (s *Store) Scrub(opts VerifyOpts) (ScrubReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.invalidateVerifier()
	quarantine := func(cat simdisk.Category, name string, data []byte) error {
		if s.dir == "" {
			return nil
		}
		qdir := filepath.Join(s.dir, "quarantine")
		if err := os.MkdirAll(qdir, 0o755); err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(qdir, cat.String()+"-"+simdisk.EncodeName(name)), data, 0o644)
	}
	return s.st.Scrub(opts, quarantine)
}

// Resume reopens a store directory written by SaveStore and returns an
// engine that deduplicates new files against everything already stored.
// The in-RAM detection state is rebuilt from the on-disk hooks, so Resume
// is supported for the algorithms whose detection state lives on disk:
// MHD, SIMHD and CDC. Statistics start fresh — the Report covers the new
// session's ingest only; restore covers all files ever stored.
//
// If the directory carries a write-ahead log from a durable server run
// (see ResumeDurable), its surviving records are replayed on top of the
// loaded generation, so nothing a durable run acknowledged is lost. The
// resumed engine itself is NOT durable — new work persists at the next
// SaveStore, which also supersedes and clears the old log.
func Resume(a Algorithm, opt Options, dir string) (Engine, error) {
	// As in OpenStore: roll back any interrupted save first, so the session
	// resumes from the last consistent generation, never a hybrid.
	simdisk.Recover(dir)
	disk, err := simdisk.LoadDir(dir)
	if err != nil {
		return nil, err
	}
	if _, err := simdisk.ReplayWAL(dir, disk); err != nil {
		return nil, err
	}
	return resumeOnDisk(a, opt, disk)
}

// resumeOnDisk rebuilds an engine's detection state over an already-mounted
// disk (shared by Resume and ResumeDurable).
func resumeOnDisk(a Algorithm, opt Options, disk *simdisk.Disk) (Engine, error) {
	if opt.ECS == 0 {
		opt.ECS = 4096
	}
	if opt.SD == 0 {
		opt.SD = 64
	}
	if opt.CacheManifests == 0 {
		opt.CacheManifests = 64
	}
	bloomBytes := opt.BloomBytes
	if bloomBytes == 0 {
		bloomBytes = 1 << 20
	}
	switch a {
	case MHD, SIMHD:
		cfg := core.DefaultConfig()
		cfg.ECS = opt.ECS
		cfg.SD = opt.SD
		cfg.BloomBytes = bloomBytes
		cfg.CacheManifests = opt.CacheManifests
		cfg.UseBloom = !opt.DisableBloom
		cfg.ByteCompare = !opt.DisableByteCompare
		cfg.EdgeHash = !opt.DisableEdgeHash
		cfg.SHMPerSlice = opt.SHMPerSlice
		cfg.TTTD = opt.TTTD
		cfg.FastCDC = opt.FastCDC
		cfg.ReferenceChunker = opt.ReferenceChunker
		cfg.HashWorkers = opt.HashWorkers
		cfg.IngestWorkers = opt.IngestWorkers
		cfg.SparseIndex = a == SIMHD
		cfg.RecipeTrees = opt.RecipeTrees
		return core.Resume(cfg, disk)
	case CDC:
		cfg := baseline.DefaultCDCConfig()
		cfg.ECS = opt.ECS
		cfg.BloomBytes = bloomBytes
		cfg.CacheManifests = opt.CacheManifests
		cfg.UseBloom = !opt.DisableBloom
		cfg.RecipeTrees = opt.RecipeTrees
		return baseline.ResumeCDC(cfg, disk)
	default:
		return nil, fmt.Errorf("dedup: resume is not supported for %q (its detection state is not reconstructible from disk)", a)
	}
}

// Durability is a handle to a store directory's continuous-durability
// machinery (see ResumeDurable): Commit group-commits the write-ahead log
// (the acknowledgement barrier a server acks through), Compact folds the
// log into a fresh generation, Overloaded answers admission control, and
// Start runs background flushing, compaction and online scrubbing paced
// by an ingest-latency budget.
type Durability = store.Durable

// DurabilityOptions tunes a Durability; see store.DurableOptions.
type DurabilityOptions = store.DurableOptions

// WALReplayReport describes what log replay applied and discarded while
// opening a durable store.
type WALReplayReport = simdisk.WALReplayReport

// ResumeDurable opens (or creates) dir as a continuously-durable store and
// returns an engine over it plus the Durability handle. Unlike Resume, the
// mounted disk carries a write-ahead log: every object mutation the engine
// performs is journaled, Commit makes everything so far crash-durable in
// one group-committed fsync, and a later ResumeDurable (or Resume, or
// OpenStore) replays whatever the log holds on top of the newest committed
// generation — so a crash loses at most the records after the last Commit,
// never an acknowledged one. Supported for the Resume-capable algorithms
// (MHD, SIMHD, CDC); dir may be empty or absent (a fresh store).
func ResumeDurable(a Algorithm, opt Options, dir string, dopt DurabilityOptions) (Engine, *Durability, WALReplayReport, error) {
	dur, rep, err := store.OpenDurable(dir, dopt)
	if err != nil {
		return nil, nil, rep, err
	}
	eng, err := resumeOnDisk(a, opt, dur.Disk())
	if err != nil {
		dur.Close()
		return nil, nil, rep, err
	}
	return eng, dur, rep, nil
}

// GCStats reports what a Sweep reclaimed.
type GCStats = store.GCStats

// Delete removes a file's recipe from the store. Shared chunk data remains
// until Sweep shows nothing references it.
func (s *Store) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.invalidateVerifier()
	return s.st.DeleteFile(name)
}

// Sweep reclaims every container no remaining file references, with its
// manifests and dangling hooks — the store's garbage collector.
func (s *Store) Sweep() (GCStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.invalidateVerifier()
	return s.st.Sweep()
}

// Save materializes the store's current state (after deletions/sweeps) to
// a directory, as SaveStore does for a live engine.
func (s *Store) Save(dir string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.Disk().SaveDir(dir)
}
