package dedup

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
)

func randBytes(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func TestAllEnginesThroughFacade(t *testing.T) {
	base := randBytes(1, 200_000)
	edited := append([]byte(nil), base...)
	copy(edited[80_000:], randBytes(2, 5_000))

	for _, a := range Algorithms() {
		t.Run(string(a), func(t *testing.T) {
			eng, err := New(a, Options{ECS: 512, SD: 4, BloomBytes: 1 << 16})
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.PutFile("a", bytes.NewReader(base)); err != nil {
				t.Fatal(err)
			}
			if err := eng.PutFile("b", bytes.NewReader(edited)); err != nil {
				t.Fatal(err)
			}
			if err := eng.Finish(); err != nil {
				t.Fatal(err)
			}
			rep := eng.Report()
			if rep.InputBytes != int64(len(base)+len(edited)) {
				t.Errorf("input bytes = %d", rep.InputBytes)
			}
			if rep.DupBytes == 0 {
				t.Error("no duplicates found in a near-duplicate pair")
			}
			for name, want := range map[string][]byte{"a": base, "b": edited} {
				var got bytes.Buffer
				if err := eng.Restore(name, &got); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got.Bytes(), want) {
					t.Errorf("restore of %s differs", name)
				}
			}
			if ratio := rep.ThroughputRatio(DefaultCostModel()); ratio <= 0 {
				t.Errorf("throughput ratio = %v", ratio)
			}
		})
	}
}

func TestDefaultsApplied(t *testing.T) {
	eng, err := New(MHD, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.PutFile("x", bytes.NewReader(randBytes(3, 100_000))); err != nil {
		t.Fatal(err)
	}
	if err := eng.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	if _, err := New(Algorithm("quantum"), Options{}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestWorkloadFacade(t *testing.T) {
	cfg := DefaultWorkloadConfig()
	cfg.Machines = 2
	cfg.Days = 2
	cfg.SnapshotBytes = 1 << 20
	cfg.EditsPerDay = 8
	cfg.EditBytes = 8 << 10
	w, err := NewWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(MHD, Options{ECS: 1024, SD: 8, ExpectedInputBytes: w.TotalBytes()})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.EachFile(func(info WorkloadFile, r io.Reader) error {
		return eng.PutFile(info.Name, r)
	}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Finish(); err != nil {
		t.Fatal(err)
	}
	if eng.Report().DataOnlyDER() < 1.5 {
		t.Errorf("backup workload DER = %.2f", eng.Report().DataOnlyDER())
	}
}

func TestAblationOptions(t *testing.T) {
	opts := Options{ECS: 512, SD: 4, BloomBytes: 1 << 16,
		DisableBloom: true, DisableByteCompare: true, DisableEdgeHash: true}
	eng, err := New(MHD, opts)
	if err != nil {
		t.Fatal(err)
	}
	content := randBytes(4, 150_000)
	eng.PutFile("a", bytes.NewReader(content))
	eng.PutFile("b", bytes.NewReader(content))
	if err := eng.Finish(); err != nil {
		t.Fatal(err)
	}
	if eng.Report().HHROps != 0 {
		t.Error("byte-compare disabled but HHR ran")
	}
	var got bytes.Buffer
	if err := eng.Restore("b", &got); err != nil || !bytes.Equal(got.Bytes(), content) {
		t.Error("restore failed under ablation options")
	}
}

func TestSaveAndOpenStore(t *testing.T) {
	content := map[string][]byte{
		"img/a": randBytes(10, 150_000),
		"img/b": randBytes(11, 80_000),
	}
	content["img/c"] = append([]byte(nil), content["img/a"]...) // duplicate
	eng, err := New(MHD, Options{ECS: 512, SD: 4, BloomBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"img/a", "img/b", "img/c"} {
		if err := eng.PutFile(name, bytes.NewReader(content[name])); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Finish(); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := SaveStore(eng, dir); err != nil {
		t.Fatal(err)
	}

	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	files := st.Files()
	if len(files) != 3 || files[0] != "img/a" || files[2] != "img/c" {
		t.Fatalf("Files() = %v", files)
	}
	for name, want := range content {
		var got bytes.Buffer
		if err := st.Restore(name, &got); err != nil {
			t.Fatalf("Restore(%s) from reopened store: %v", name, err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Errorf("%s differs after save/open cycle", name)
		}
	}
	if err := st.Restore("ghost", io.Discard); err == nil {
		t.Error("restore of unknown file from store succeeded")
	}
}

func TestResumeDeduplicatesAgainstSavedStore(t *testing.T) {
	base := randBytes(20, 200_000)
	opts := Options{ECS: 512, SD: 4, BloomBytes: 1 << 16}

	for _, a := range []Algorithm{MHD, SIMHD, CDC} {
		t.Run(string(a), func(t *testing.T) {
			// Session 1: ingest the base image and save.
			eng1, err := New(a, opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := eng1.PutFile("gen1", bytes.NewReader(base)); err != nil {
				t.Fatal(err)
			}
			if err := eng1.Finish(); err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			if err := SaveStore(eng1, dir); err != nil {
				t.Fatal(err)
			}

			// Session 2: resume and ingest a near-duplicate.
			eng2, err := Resume(a, opts, dir)
			if err != nil {
				t.Fatal(err)
			}
			gen2 := append([]byte(nil), base...)
			copy(gen2[90_000:], randBytes(21, 4_000))
			if err := eng2.PutFile("gen2", bytes.NewReader(gen2)); err != nil {
				t.Fatal(err)
			}
			if err := eng2.Finish(); err != nil {
				t.Fatal(err)
			}
			rep := eng2.Report()
			if rep.DupBytes < int64(len(base))/2 {
				t.Errorf("resumed %s found only %d dup bytes of %d: detection state not rebuilt",
					a, rep.DupBytes, len(base))
			}
			// Both generations restore from the resumed engine.
			for name, want := range map[string][]byte{"gen1": base, "gen2": gen2} {
				var got bytes.Buffer
				if err := eng2.Restore(name, &got); err != nil {
					t.Fatalf("restore %s: %v", name, err)
				}
				if !bytes.Equal(got.Bytes(), want) {
					t.Errorf("%s differs after resume", name)
				}
			}
		})
	}
}

func TestResumeUnsupportedAlgorithms(t *testing.T) {
	dir := t.TempDir()
	for _, a := range []Algorithm{SubChunk, SparseIndexing, Bimodal, FBC} {
		if _, err := Resume(a, Options{}, dir); err == nil {
			t.Errorf("Resume(%s) should be rejected", a)
		}
	}
}

func TestStoreCheck(t *testing.T) {
	eng, _ := New(MHD, Options{ECS: 512, SD: 4, BloomBytes: 1 << 16})
	eng.PutFile("a", bytes.NewReader(randBytes(30, 100_000)))
	eng.Finish()
	dir := t.TempDir()
	if err := SaveStore(eng, dir); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if problems := st.Check(); len(problems) != 0 {
		t.Errorf("clean store reported problems: %v", problems)
	}
}
