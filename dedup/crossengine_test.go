package dedup

import (
	"bytes"
	"io"
	"testing"
)

// TestCrossEngineWorkload is the capstone correctness test: every engine
// ingests the same multi-machine backup workload and must (a) restore
// every snapshot byte-identically, (b) satisfy the accounting identities,
// and (c) find a sane amount of duplication. It is the single test that
// exercises all nine engines through the public API on realistic input.
func TestCrossEngineWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-engine workload is slow")
	}
	cfg := DefaultWorkloadConfig()
	cfg.Machines = 3
	cfg.Days = 3
	cfg.SnapshotBytes = 1 << 20
	cfg.EditsPerDay = 8
	cfg.EditBytes = 8 << 10
	w, err := NewWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, a := range Algorithms() {
		t.Run(string(a), func(t *testing.T) {
			eng, err := New(a, Options{
				ECS:                1024,
				SD:                 8,
				ExpectedInputBytes: w.TotalBytes(),
				CacheManifests:     8,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := w.EachFile(func(info WorkloadFile, r io.Reader) error {
				return eng.PutFile(info.Name, r)
			}); err != nil {
				t.Fatal(err)
			}
			if err := eng.Finish(); err != nil {
				t.Fatal(err)
			}
			rep := eng.Report()
			if rep.InputBytes != w.TotalBytes() {
				t.Errorf("input accounting: %d != %d", rep.InputBytes, w.TotalBytes())
			}
			if rep.StoredDataBytes+rep.DupBytes != rep.InputBytes {
				t.Error("stored + dup != input")
			}
			if rep.DupChunks+rep.NonDupChunks != rep.ChunksIn {
				t.Error("D + N != chunks")
			}
			if der := rep.DataOnlyDER(); der < 1.3 {
				t.Errorf("data-only DER = %.2f — engine found almost no duplication", der)
			}
			if rep.RealDER() > rep.DataOnlyDER() {
				t.Error("real DER cannot exceed data-only DER")
			}
			// Full byte-identical restore of every snapshot.
			if err := w.EachFile(func(info WorkloadFile, rd io.Reader) error {
				want, err := io.ReadAll(rd)
				if err != nil {
					return err
				}
				var got bytes.Buffer
				if err := eng.Restore(info.Name, &got); err != nil {
					t.Fatalf("restore %s: %v", info.Name, err)
				}
				if !bytes.Equal(got.Bytes(), want) {
					t.Fatalf("%s corrupted (restored %d bytes, want %d)", info.Name, got.Len(), len(want))
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			// And the persisted store passes fsck.
			dir := t.TempDir()
			if err := SaveStore(eng, dir); err != nil {
				t.Fatal(err)
			}
			st, err := OpenStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			if problems := st.Check(); len(problems) != 0 {
				t.Errorf("fsck found problems: %v", problems[:min(3, len(problems))])
			}
		})
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
