package dedup

import (
	"bytes"
	"fmt"
	"testing"
)

// TestRecipeTreeMatrixEqualsFlat is the tentpole's differential gate at the
// public API: for every algorithm, the same workload ingested twice — once
// with flat recipes, once with recipe trees — must restore bit-identical
// bytes, whole-file and ranged, across seeds and a save/open round-trip.
// The ranged probes hit offset 0, an interior window, a tail running past
// EOF (clamped), and an offset at EOF (zero bytes).
func TestRecipeTreeMatrixEqualsFlat(t *testing.T) {
	algos := []Algorithm{MHD, SIMHD, CDC, Bimodal, SubChunk, SparseIndexing, FBC, Fingerdiff, ExtremeBinning}
	for _, algo := range algos {
		algo := algo
		t.Run(string(algo), func(t *testing.T) {
			t.Parallel()
			for _, seed := range []int64{1, 7} {
				files := matrixWorkload(seed)
				build := func(trees bool) *Store {
					t.Helper()
					eng, err := New(algo, Options{ECS: 1024, SD: 8, BloomBytes: 1 << 16, RecipeTrees: trees})
					if err != nil {
						t.Fatal(err)
					}
					for day := 1; day <= 3; day++ {
						name := fmt.Sprintf("img/day%d", day)
						if err := eng.PutFile(name, bytes.NewReader(files[name])); err != nil {
							t.Fatal(err)
						}
					}
					if err := eng.Finish(); err != nil {
						t.Fatal(err)
					}
					dir := t.TempDir()
					if err := SaveStore(eng, dir); err != nil {
						t.Fatal(err)
					}
					st, err := OpenStore(dir)
					if err != nil {
						t.Fatal(err)
					}
					return st
				}
				flat, tree := build(false), build(true)

				for _, name := range flat.Files() {
					want := files[name]
					var a, b bytes.Buffer
					if err := flat.Restore(name, &a); err != nil {
						t.Fatalf("seed %d: flat restore %s: %v", seed, name, err)
					}
					if err := tree.Restore(name, &b); err != nil {
						t.Fatalf("seed %d: tree restore %s: %v", seed, name, err)
					}
					if !bytes.Equal(a.Bytes(), want) {
						t.Fatalf("seed %d: flat restore of %s diverges from ingested bytes", seed, name)
					}
					if !bytes.Equal(b.Bytes(), want) {
						t.Fatalf("seed %d: tree restore of %s diverges from ingested bytes", seed, name)
					}

					total := int64(len(want))
					probes := []struct{ off, length int64 }{
						{0, 1 << 12},
						{total / 3, 20_000},
						{total - 1_000, 50_000}, // clamps at EOF
						{total, 16},             // zero bytes
						{0, -1},                 // to EOF
					}
					for _, p := range probes {
						var fr, tr, tv bytes.Buffer
						if _, err := flat.RestoreRange(name, p.off, p.length, &fr); err != nil {
							t.Fatalf("seed %d: flat RestoreRange(%s, %d, %d): %v", seed, name, p.off, p.length, err)
						}
						if _, err := tree.RestoreRange(name, p.off, p.length, &tr); err != nil {
							t.Fatalf("seed %d: tree RestoreRange(%s, %d, %d): %v", seed, name, p.off, p.length, err)
						}
						if _, err := tree.VerifyRestoreRange(name, p.off, p.length, &tv); err != nil {
							t.Fatalf("seed %d: tree VerifyRestoreRange(%s, %d, %d): %v", seed, name, p.off, p.length, err)
						}
						lo, hi := p.off, total
						if lo > total {
							lo = total
						}
						if p.length >= 0 && p.off+p.length < total {
							hi = p.off + p.length
						}
						if hi < lo {
							hi = lo
						}
						if !bytes.Equal(fr.Bytes(), want[lo:hi]) {
							t.Fatalf("seed %d: flat range (%s, %d, %d) wrong bytes", seed, name, p.off, p.length)
						}
						if !bytes.Equal(tr.Bytes(), fr.Bytes()) {
							t.Fatalf("seed %d: tree range (%s, %d, %d) diverges from flat", seed, name, p.off, p.length)
						}
						if !bytes.Equal(tv.Bytes(), fr.Bytes()) {
							t.Fatalf("seed %d: verified tree range (%s, %d, %d) diverges from flat", seed, name, p.off, p.length)
						}
					}
				}
			}
		})
	}
}
