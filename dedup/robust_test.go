package dedup

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"mhdedup/internal/simdisk"
)

// buildSavedStore ingests a small disk-image-like workload (three backups
// sharing most of their content) with MHD and saves it, returning the store
// directory and the expected content of every file.
func buildSavedStore(t *testing.T) (string, map[string][]byte) {
	t.Helper()
	base := randBytes(50, 180_000)
	gen2 := append([]byte(nil), base...)
	copy(gen2[60_000:], randBytes(51, 4_000))
	gen3 := append([]byte(nil), gen2...)
	copy(gen3[120_000:], randBytes(52, 4_000))
	files := map[string][]byte{
		"m0/day1.img": base,
		"m0/day2.img": gen2,
		"m0/day3.img": gen3,
	}

	eng, err := New(MHD, Options{ECS: 512, SD: 4, BloomBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"m0/day1.img", "m0/day2.img", "m0/day3.img"} {
		if err := eng.PutFile(name, bytes.NewReader(files[name])); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Finish(); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := SaveStore(eng, dir); err != nil {
		t.Fatal(err)
	}
	return dir, files
}

// TestVerifiedRestoreAndScrubUnderBitFlips is the acceptance criterion of
// the fault-injection work: corrupt a percentage of the stored containers
// with random persistent bit flips, then demand that
//
//   - VerifyRestore never hands back corrupt bytes: every file either
//     restores byte-identical to its original or fails with an error —
//     100% detection, zero silent corruption;
//   - Scrub quarantines exactly the corrupted objects (no survivors, no
//     collateral), preserving their bytes under quarantine/;
//   - after the scrub, unaffected files still restore and affected files
//     keep failing loudly.
func TestVerifiedRestoreAndScrubUnderBitFlips(t *testing.T) {
	for _, rate := range []float64{0.01, 0.05, 0.20} {
		rate := rate
		t.Run(fmt.Sprintf("rate-%g", rate), func(t *testing.T) {
			dir, files := buildSavedStore(t)
			s, err := OpenStore(dir)
			if err != nil {
				t.Fatal(err)
			}

			// Inject persistent single-bit flips into a deterministic subset
			// of the Data containers. Retry seeds until at least one object
			// is hit so the low-rate case still tests something.
			var corrupted []string
			for seed := int64(1); len(corrupted) == 0; seed++ {
				fd := simdisk.NewFaultDisk(s.st.Disk(), simdisk.FaultPlan{Seed: seed})
				corrupted = fd.CorruptStored(simdisk.Data, rate)
				if seed > 1000 {
					t.Fatal("no container corrupted after 1000 seeds")
				}
			}
			isCorrupt := make(map[string]bool, len(corrupted))
			for _, name := range corrupted {
				isCorrupt[name] = true
			}

			detected := 0
			for name, want := range files {
				var buf bytes.Buffer
				err := s.VerifyRestore(name, &buf)
				if err != nil {
					detected++
					continue
				}
				if !bytes.Equal(buf.Bytes(), want) {
					t.Fatalf("%s: VerifyRestore returned corrupt bytes without an error", name)
				}
			}
			if detected == 0 {
				// Every file restored clean: only possible if the flipped
				// ranges are unreferenced by any file, which this workload's
				// full-coverage recipes rule out.
				t.Fatalf("corrupted %d containers, yet no restore failed", len(corrupted))
			}

			rep, err := s.Scrub(VerifyOpts{})
			if err != nil {
				t.Fatal(err)
			}
			if rep.OK() {
				t.Fatal("scrub of a corrupted store reported OK")
			}
			got := make(map[string]bool, len(rep.Quarantined))
			for _, q := range rep.Quarantined {
				got[q] = true
			}
			for _, name := range corrupted {
				if !got["data/"+name] {
					t.Errorf("corrupted container %s not quarantined", name[:8])
				}
			}
			if len(rep.Quarantined) != len(corrupted) {
				t.Errorf("quarantined %d objects, corrupted %d: %v vs %v",
					len(rep.Quarantined), len(corrupted), rep.Quarantined, corrupted)
			}
			// The quarantine preserved the evidence on disk.
			for _, name := range corrupted {
				p := filepath.Join(dir, "quarantine", "data-"+simdisk.EncodeName(name))
				if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
					t.Errorf("quarantined bytes for %s missing: %v", name[:8], err)
				}
			}

			// Post-scrub: affected files fail loudly, unaffected restore.
			affected := make(map[string]bool, len(rep.AffectedFiles))
			for _, f := range rep.AffectedFiles {
				affected[f] = true
			}
			for name, want := range files {
				var buf bytes.Buffer
				err := s.VerifyRestore(name, &buf)
				if affected[name] {
					if err == nil {
						t.Errorf("%s references quarantined data but restored silently", name)
					}
					continue
				}
				if err != nil {
					t.Errorf("unaffected file %s failed post-scrub: %v", name, err)
				} else if !bytes.Equal(buf.Bytes(), want) {
					t.Errorf("unaffected file %s restored wrong bytes", name)
				}
			}

			// A second scrub finds a clean (if diminished) store.
			rep2, err := s.Scrub(VerifyOpts{})
			if err != nil {
				t.Fatal(err)
			}
			if !rep2.OK() || len(rep2.Quarantined) != 0 {
				t.Errorf("second scrub not clean: %+v", rep2)
			}
		})
	}
}

// TestScrubCleanAcrossAllEngines: a healthy store produced by every engine
// passes a verified scrub untouched — the verifier's manifest-claim index
// understands each format's recipes.
func TestScrubCleanAcrossAllEngines(t *testing.T) {
	base := randBytes(60, 120_000)
	edited := append([]byte(nil), base...)
	copy(edited[40_000:], randBytes(61, 3_000))
	for _, a := range Algorithms() {
		a := a
		t.Run(string(a), func(t *testing.T) {
			eng, err := New(a, Options{ECS: 512, SD: 4, BloomBytes: 1 << 16})
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.PutFile("d1", bytes.NewReader(base)); err != nil {
				t.Fatal(err)
			}
			if err := eng.PutFile("d2", bytes.NewReader(edited)); err != nil {
				t.Fatal(err)
			}
			if err := eng.Finish(); err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			if err := SaveStore(eng, dir); err != nil {
				t.Fatal(err)
			}
			s, err := OpenStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := s.Scrub(VerifyOpts{})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK() || len(rep.Quarantined) != 0 {
				t.Fatalf("clean store scrub = %+v", rep)
			}
			for _, name := range []string{"d1", "d2"} {
				var buf bytes.Buffer
				if err := s.VerifyRestore(name, &buf); err != nil {
					t.Fatalf("verified restore %s: %v", name, err)
				}
			}
		})
	}
}

// TestVerifyRestoreSharesOneVerifier: the verification index (which
// decodes every manifest in the store) is built once and shared across
// VerifyRestore calls — `restore -all -verify` is O(store + files), not
// O(files × store) — and is rebuilt only after a mutation (Delete, Sweep,
// Scrub) invalidates it.
func TestVerifyRestoreSharesOneVerifier(t *testing.T) {
	dir, files := buildSavedStore(t)
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := s.Files()
	if len(names) != len(files) {
		t.Fatalf("Files() = %v", names)
	}

	manifestReads := 0
	s.st.Disk().SetFailureHook(func(op simdisk.Op, cat simdisk.Category, _ string) error {
		if op == simdisk.OpRead && cat == simdisk.Manifest {
			manifestReads++
		}
		return nil
	})
	defer s.st.Disk().SetFailureHook(nil)

	var buf bytes.Buffer
	if err := s.VerifyRestore(names[0], &buf); err != nil {
		t.Fatal(err)
	}
	afterFirst := manifestReads
	if afterFirst == 0 {
		t.Fatal("building the verifier read no manifests; the counter hook is off target")
	}
	for _, name := range names[1:] {
		buf.Reset()
		if err := s.VerifyRestore(name, &buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), files[name]) {
			t.Fatalf("%s restored wrong bytes", name)
		}
	}
	if manifestReads != afterFirst {
		t.Fatalf("later VerifyRestores re-read manifests (%d -> %d): verifier not shared",
			afterFirst, manifestReads)
	}

	// A mutation invalidates the index: the next VerifyRestore rebuilds it.
	if err := s.Delete(names[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sweep(); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := s.VerifyRestore(names[1], &buf); err != nil {
		t.Fatalf("restore after Delete+Sweep: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), files[names[1]]) {
		t.Fatalf("%s restored wrong bytes after sweep", names[1])
	}
	if manifestReads == afterFirst {
		t.Fatal("VerifyRestore after Delete/Sweep served a stale verifier (no manifest re-reads)")
	}
	if err := s.VerifyRestore(names[0], &bytes.Buffer{}); err == nil {
		t.Fatal("deleted file still restores")
	}
}

// TestOpenStoreRecoversInterruptedSave crashes a SaveStore mid-flight at
// the public API level and checks that OpenStore transparently mounts the
// previous consistent generation, Check passes, and the first generation's
// files restore byte-identical.
func TestOpenStoreRecoversInterruptedSave(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	content := randBytes(71, 150_000)
	eng, err := New(MHD, Options{ECS: 512, SD: 4, BloomBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.PutFile("img", bytes.NewReader(content)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Finish(); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := SaveStore(eng, dir); err != nil {
		t.Fatal(err)
	}

	// Grow the live engine, then kill the second save at a random point.
	eng2, err := Resume(MHD, Options{ECS: 512, SD: 4, BloomBytes: 1 << 16}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.PutFile("img2", bytes.NewReader(randBytes(72, 90_000))); err != nil {
		t.Fatal(err)
	}
	if err := eng2.Finish(); err != nil {
		t.Fatal(err)
	}
	var point int
	killAt := 1 + rng.Intn(20)
	eng2.Disk().SetSaveHook(func(string, []byte) ([]byte, error) {
		point++
		if point == killAt {
			return nil, simdisk.ErrKilled
		}
		return nil, nil
	})
	err = SaveStore(eng2, dir)
	eng2.Disk().SetSaveHook(nil)
	if !errors.Is(err, simdisk.ErrKilled) {
		t.Fatalf("killed save error = %v", err)
	}

	rep, err := RecoverStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Generation == 0 {
		t.Fatalf("recover mounted no generation: %+v", rep)
	}
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if problems := s.Check(); len(problems) != 0 {
		t.Fatalf("recovered store inconsistent: %v", problems)
	}
	var buf bytes.Buffer
	if err := s.VerifyRestore("img", &buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), content) {
		t.Fatal("recovered store restored wrong bytes for the committed file")
	}

	// A clean save commits the new state; the new file becomes durable.
	if err := SaveStore(eng2, dir); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.VerifyRestore("img2", &bytes.Buffer{}); err != nil {
		t.Fatalf("post-recovery save lost the new file: %v", err)
	}
}
