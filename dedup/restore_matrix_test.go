package dedup

import (
	"bytes"
	"fmt"
	"testing"
)

// matrixWorkload synthesizes one machine's backup generations: a base
// image plus per-generation localized edits, the self-similar stream every
// algorithm's dedup path exercises hardest.
func matrixWorkload(seed int64) map[string][]byte {
	base := randBytes(seed, 140_000)
	files := map[string][]byte{"img/day1": base}
	prev := base
	for day := 2; day <= 3; day++ {
		gen := append([]byte(nil), prev...)
		for i := 0; i < 4; i++ {
			off := (int(seed)*13_337 + day*31_013 + i*29_989) % (len(gen) - 3_000)
			copy(gen[off:], randBytes(seed*100+int64(day*10+i), 3_000))
		}
		files[fmt.Sprintf("img/day%d", day)] = gen
		prev = gen
	}
	return files
}

// TestRestoreMatrixParallelEqualsSerial is the PR's differential
// acceptance gate at the public API: for every servable format — the two
// paper algorithms and the three baselines, which lay out containers and
// recipes differently — every file restored through the batched parallel
// pipeline must be bit-identical to the serial reference path, across
// worker counts, reorder windows small enough to force constant
// backpressure, a save/open round-trip, and an explicit crash-recovery
// pass. The verifying restore path is held to the same standard.
func TestRestoreMatrixParallelEqualsSerial(t *testing.T) {
	algos := []Algorithm{MHD, SIMHD, CDC, Bimodal, SubChunk}
	for _, algo := range algos {
		algo := algo
		t.Run(string(algo), func(t *testing.T) {
			t.Parallel()
			for _, seed := range []int64{1, 7} {
				files := matrixWorkload(seed)
				eng, err := New(algo, Options{ECS: 1024, SD: 8, BloomBytes: 1 << 16})
				if err != nil {
					t.Fatal(err)
				}
				for day := 1; day <= 3; day++ {
					name := fmt.Sprintf("img/day%d", day)
					if err := eng.PutFile(name, bytes.NewReader(files[name])); err != nil {
						t.Fatal(err)
					}
				}
				if err := eng.Finish(); err != nil {
					t.Fatal(err)
				}
				dir := t.TempDir()
				if err := SaveStore(eng, dir); err != nil {
					t.Fatal(err)
				}

				checkStore := func(label string) {
					st, err := OpenStore(dir)
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					// Serial reference bytes first (zero RestoreOptions =
					// the legacy per-ref walk), per file, both paths.
					serial := map[string][]byte{}
					serialVerified := map[string][]byte{}
					for _, name := range st.Files() {
						var plain, verified bytes.Buffer
						if err := st.Restore(name, &plain); err != nil {
							t.Fatalf("%s: serial restore %s: %v", label, name, err)
						}
						if err := st.VerifyRestore(name, &verified); err != nil {
							t.Fatalf("%s: serial verified restore %s: %v", label, name, err)
						}
						want := files[name]
						if !bytes.Equal(plain.Bytes(), want) || !bytes.Equal(verified.Bytes(), want) {
							t.Fatalf("%s: serial restore of %s diverges from ingested bytes", label, name)
						}
						serial[name] = plain.Bytes()
						serialVerified[name] = verified.Bytes()
					}
					for _, workers := range []int{1, 2, 8} {
						for _, window := range []int64{1 << 10, 0} { // tiny (forces reordering pressure) and default
							st.SetRestoreOptions(RestoreOptions{Workers: workers, WindowBytes: window})
							for _, name := range st.Files() {
								var plain, verified bytes.Buffer
								if err := st.Restore(name, &plain); err != nil {
									t.Fatalf("%s workers=%d window=%d: restore %s: %v", label, workers, window, name, err)
								}
								if !bytes.Equal(plain.Bytes(), serial[name]) {
									t.Fatalf("%s workers=%d window=%d: %s diverges from serial", label, workers, window, name)
								}
								if err := st.VerifyRestore(name, &verified); err != nil {
									t.Fatalf("%s workers=%d window=%d: verified restore %s: %v", label, workers, window, name, err)
								}
								if !bytes.Equal(verified.Bytes(), serialVerified[name]) {
									t.Fatalf("%s workers=%d window=%d: verified %s diverges from serial", label, workers, window, name)
								}
							}
						}
					}
				}

				checkStore(fmt.Sprintf("seed %d", seed))
				// Crash-recovery round-trip: RecoverStore mounts the last
				// consistent generation; the matrix must hold on the
				// recovered store too.
				if _, err := RecoverStore(dir); err != nil {
					t.Fatal(err)
				}
				checkStore(fmt.Sprintf("seed %d post-recover", seed))
			}
		})
	}
}
