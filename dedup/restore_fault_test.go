package dedup

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"mhdedup/internal/simdisk"
)

// TestParallelVerifiedRestoreTransientFlips points the parallel verifying
// pipeline at a device whose reads flip a bit 30% of the time (the stored
// object stays intact, so re-reads can heal). The property is the same
// never-silently-wrong contract the serial path honors, now with 8
// concurrent readers racing over the faulty device: every restore either
// returns bytes identical to the original or fails with an error.
func TestParallelVerifiedRestoreTransientFlips(t *testing.T) {
	dir, files := buildSavedStore(t)
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.SetRestoreOptions(RestoreOptions{Workers: 8, WindowBytes: 32 << 10})

	var mu sync.Mutex
	rng := rand.New(rand.NewSource(99))
	s.st.Disk().SetReadTransform(func(cat simdisk.Category, name string, data []byte) []byte {
		if cat != simdisk.Data || len(data) == 0 {
			return data
		}
		mu.Lock()
		flip := rng.Float64() < 0.3
		bit := rng.Intn(len(data) * 8)
		mu.Unlock()
		if !flip {
			return data
		}
		mutated := append([]byte(nil), data...)
		mutated[bit/8] ^= 1 << (bit % 8)
		return mutated
	})
	defer s.st.Disk().SetReadTransform(nil)

	healed, failed := 0, 0
	for round := 0; round < 10; round++ {
		for name, want := range files {
			var buf bytes.Buffer
			err := s.VerifyRestore(name, &buf)
			if err != nil {
				failed++
				continue
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("round %d: %s restored silently wrong under transient flips", round, name)
			}
			healed++
		}
	}
	if healed == 0 {
		t.Fatal("bounded-retry verification never healed a transient flip (suspicious: is the transform firing?)")
	}
	t.Logf("transient flips: %d restores healed, %d failed loudly, 0 silently wrong", healed, failed)
}

// TestParallelVerifiedRestorePersistentDamage flips bits in (and truncates)
// stored containers — damage no retry can heal — and demands the parallel
// verifying pipeline turn every affected restore into an error while files
// whose refs miss the damage still restore byte-identically.
func TestParallelVerifiedRestorePersistentDamage(t *testing.T) {
	for _, workers := range []int{2, 8} {
		dir, files := buildSavedStore(t)
		s, err := OpenStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		s.SetRestoreOptions(RestoreOptions{Workers: workers, WindowBytes: 16 << 10})

		fd := simdisk.NewFaultDisk(s.st.Disk(), simdisk.FaultPlan{Seed: int64(workers)})
		names := s.st.Disk().Names(simdisk.Data)
		if len(names) < 2 {
			t.Fatalf("workload produced only %d containers", len(names))
		}
		// Persistent single-bit flip in one container, truncation of another.
		if err := fd.FlipStoredBit(simdisk.Data, names[0], 12345); err != nil {
			t.Fatal(err)
		}
		if err := fd.TruncateStored(simdisk.Data, names[1], 100); err != nil {
			t.Fatal(err)
		}

		detected := 0
		for name, want := range files {
			var buf bytes.Buffer
			err := s.VerifyRestore(name, &buf)
			if err != nil {
				detected++
				continue
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("workers %d: %s restored silently wrong over persistent damage", workers, name)
			}
		}
		if detected == 0 {
			t.Fatalf("workers %d: two containers damaged, yet every verified restore claimed success", workers)
		}
		t.Logf("workers %d: %d/%d restores refused over persistent damage", workers, detected, len(files))
	}
}
