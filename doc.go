// Package mhdedup is a from-scratch reproduction of "Hysteresis
// Re-chunking Based Metadata Harnessing Deduplication of Disk Images"
// (Zhou & Wen, ICPP 2013).
//
// The public API lives in the dedup subpackage; the per-figure benchmark
// harness lives in bench_test.go at this root. See README.md for the tour
// and EXPERIMENTS.md for the paper-vs-measured record.
package mhdedup
