// Backup rotation: a fleet of machines is backed up daily for two weeks;
// watch the cumulative deduplication ratio climb as generations accumulate,
// and see how little metadata MHD spends doing it.
//
//	go run ./examples/backuprotation
package main

import (
	"fmt"
	"io"
	"log"

	"mhdedup/dedup"
)

func main() {
	cfg := dedup.DefaultWorkloadConfig()
	cfg.Machines = 3
	cfg.Days = 14
	cfg.SnapshotBytes = 4 << 20
	cfg.EditsPerDay = 24
	cfg.EditBytes = 24 << 10
	w, err := dedup.NewWorkload(cfg)
	if err != nil {
		log.Fatal(err)
	}

	eng, err := dedup.New(dedup.MHD, dedup.Options{
		ECS:                4096,
		SD:                 32,
		ExpectedInputBytes: w.TotalBytes(),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("day  input(MiB)  stored(MiB)  meta(KiB)  data-DER  real-DER")
	lastDay := -1
	printDay := func(day int) {
		rep := eng.Report()
		fmt.Printf("%3d  %10.1f  %11.1f  %9.1f  %8.2f  %8.2f\n",
			day,
			float64(rep.InputBytes)/(1<<20),
			float64(rep.StoredDataBytes)/(1<<20),
			float64(rep.MetadataBytes)/1024,
			rep.DataOnlyDER(), rep.RealDER())
	}
	// Ingest day by day across the fleet (day-major order here, so each
	// printed row is "the fleet finished day N").
	byDay := map[int][]dedup.WorkloadFile{}
	for _, f := range w.Files() {
		byDay[f.Day] = append(byDay[f.Day], f)
	}
	for day := 0; day < cfg.Days; day++ {
		for _, f := range byDay[day] {
			r, err := w.Open(f.Name)
			if err != nil {
				log.Fatal(err)
			}
			if err := eng.PutFile(f.Name, r); err != nil {
				log.Fatal(err)
			}
		}
		printDay(day)
		lastDay = day
	}
	if err := eng.Finish(); err != nil {
		log.Fatal(err)
	}

	rep := eng.Report()
	fmt.Printf("\nAfter %d days: %d backups occupy %.1f MiB instead of %.1f MiB (%.1fx saved).\n",
		lastDay+1, rep.FilesTotal,
		float64(rep.StoredDataBytes+rep.MetadataBytes)/(1<<20),
		float64(rep.InputBytes)/(1<<20),
		rep.RealDER())
	fmt.Printf("Metadata overhead: %.3f%% of the input (%d hooks, %d manifests).\n",
		rep.MetaDataRatio()*100, rep.InodesHook, rep.InodesManifest)

	// Spot-check a restore from the middle of the rotation.
	name := "m01/d07"
	r, err := w.Open(name)
	if err != nil {
		log.Fatal(err)
	}
	want, _ := io.ReadAll(r)
	n := &lengthVerifier{want: want}
	if err := eng.Restore(name, n); err != nil || n.bad || n.n != len(want) {
		log.Fatalf("restore of %s failed", name)
	}
	fmt.Printf("Restore spot-check: %s rebuilt byte-identically (%d bytes).\n", name, n.n)
}

type lengthVerifier struct {
	want []byte
	n    int
	bad  bool
}

func (v *lengthVerifier) Write(p []byte) (int, error) {
	for i, b := range p {
		if v.n+i >= len(v.want) || v.want[v.n+i] != b {
			v.bad = true
			break
		}
	}
	v.n += len(p)
	return len(p), nil
}
