// Compare algorithms: run MHD and all four baselines over the same backup
// workload and print the trade-off each one makes — the living version of
// the paper's Fig 7/8 story.
//
//	go run ./examples/comparealgos
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"text/tabwriter"

	"mhdedup/dedup"
)

func main() {
	cfg := dedup.DefaultWorkloadConfig()
	cfg.Machines = 4
	cfg.Days = 5
	cfg.SnapshotBytes = 2 << 20
	cfg.EditsPerDay = 16
	cfg.EditBytes = 16 << 10
	w, err := dedup.NewWorkload(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d backups, %.1f MiB\n\n", len(w.Files()), float64(w.TotalBytes())/(1<<20))

	model := dedup.DefaultCostModel()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\tdata DER\treal DER\tmetadata%\tinodes\tdisk accesses\tthroughput")
	for _, a := range dedup.Algorithms() {
		eng, err := dedup.New(a, dedup.Options{
			ECS:                1024,
			SD:                 32,
			ExpectedInputBytes: w.TotalBytes(),
			CacheManifests:     8,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := w.EachFile(func(info dedup.WorkloadFile, r io.Reader) error {
			return eng.PutFile(info.Name, r)
		}); err != nil {
			log.Fatal(err)
		}
		if err := eng.Finish(); err != nil {
			log.Fatal(err)
		}
		rep := eng.Report()
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.4f%%\t%d\t%d\t%.3f\n",
			a, rep.DataOnlyDER(), rep.RealDER(), rep.MetaDataRatio()*100,
			rep.InodeCount(), rep.Disk.Accesses(), rep.ThroughputRatio(model))
	}
	tw.Flush()
	fmt.Println("\nReading the table: every algorithm trades duplicate detection against")
	fmt.Println("metadata and I/O. MHD's hysteresis re-chunking spends metadata only where")
	fmt.Println("duplication was actually found, which is why its real DER (the ratio that")
	fmt.Println("counts metadata against the savings) comes out on top.")
}
