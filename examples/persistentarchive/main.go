// Persistent archive: the full lifecycle a backup tool needs — ingest and
// save a store in one session, resume it in another to append new
// generations (deduplicating against everything already stored), and
// restore from the reopened store.
//
//	go run ./examples/persistentarchive
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"mhdedup/dedup"
)

func main() {
	dir, err := os.MkdirTemp("", "mhdedup-archive-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	storeDir := filepath.Join(dir, "store")

	// A 2 MiB "disk image" and tomorrow's lightly edited version.
	gen1 := make([]byte, 2<<20)
	rand.New(rand.NewSource(7)).Read(gen1)
	gen2 := append([]byte(nil), gen1...)
	rand.New(rand.NewSource(8)).Read(gen2[1<<20 : 1<<20+30_000])

	opts := dedup.Options{ECS: 4096, SD: 16}

	// ---- Session 1: ingest generation 1, save the store, exit. ----
	eng, err := dedup.New(dedup.MHD, opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.PutFile("monday.img", bytes.NewReader(gen1)); err != nil {
		log.Fatal(err)
	}
	if err := eng.Finish(); err != nil {
		log.Fatal(err)
	}
	if err := dedup.SaveStore(eng, storeDir); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session 1: stored %d bytes, saved store to disk\n", eng.Report().StoredDataBytes)

	// ---- Session 2 (a new process, conceptually): resume and append. ----
	eng2, err := dedup.Resume(dedup.MHD, opts, storeDir)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng2.PutFile("tuesday.img", bytes.NewReader(gen2)); err != nil {
		log.Fatal(err)
	}
	if err := eng2.Finish(); err != nil {
		log.Fatal(err)
	}
	rep := eng2.Report()
	fmt.Printf("session 2: tuesday.img deduplicated %d of %d bytes against monday's store (%.1f%%)\n",
		rep.DupBytes, rep.InputBytes, 100*float64(rep.DupBytes)/float64(rep.InputBytes))
	if err := dedup.SaveStore(eng2, storeDir); err != nil {
		log.Fatal(err)
	}

	// ---- Session 3: restore-only access through the store handle. ----
	st, err := dedup.OpenStore(storeDir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archive contains: %v\n", st.Files())
	for name, want := range map[string][]byte{"monday.img": gen1, "tuesday.img": gen2} {
		var got bytes.Buffer
		if err := st.Restore(name, &got); err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			log.Fatalf("%s corrupted", name)
		}
	}
	fmt.Println("both generations restored byte-identically from the reopened archive")
}
