// Restore and verify: the archival-integrity workflow. Ingest a fleet's
// backups, then prove every single one can be rebuilt bit-for-bit from the
// deduplicated store by comparing SHA-1 digests of input and restore.
//
//	go run ./examples/restoreverify
package main

import (
	"crypto/sha1"
	"fmt"
	"hash"
	"io"
	"log"

	"mhdedup/dedup"
)

func main() {
	cfg := dedup.DefaultWorkloadConfig()
	cfg.Machines = 3
	cfg.Days = 4
	cfg.SnapshotBytes = 2 << 20
	cfg.EditsPerDay = 12
	cfg.EditBytes = 16 << 10
	w, err := dedup.NewWorkload(cfg)
	if err != nil {
		log.Fatal(err)
	}

	eng, err := dedup.New(dedup.MHD, dedup.Options{
		ECS:                4096,
		SD:                 16,
		ExpectedInputBytes: w.TotalBytes(),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Ingest, recording each file's digest on the way through (the stream
	// is hashed as it is consumed — no second pass over the input).
	digests := map[string][sha1.Size]byte{}
	err = w.EachFile(func(info dedup.WorkloadFile, r io.Reader) error {
		h := sha1.New()
		if err := eng.PutFile(info.Name, io.TeeReader(r, h)); err != nil {
			return err
		}
		var sum [sha1.Size]byte
		copy(sum[:], h.Sum(nil))
		digests[info.Name] = sum
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Finish(); err != nil {
		log.Fatal(err)
	}
	rep := eng.Report()
	fmt.Printf("ingested %d backups (%.1f MiB) into %.1f MiB of store\n",
		rep.FilesTotal, float64(rep.InputBytes)/(1<<20),
		float64(rep.StoredDataBytes+rep.MetadataBytes)/(1<<20))

	// Restore every file and compare digests.
	ok := 0
	for _, f := range w.Files() {
		h := sha1.New()
		if err := eng.Restore(f.Name, writerOnly{h}); err != nil {
			log.Fatalf("restore %s: %v", f.Name, err)
		}
		var sum [sha1.Size]byte
		copy(sum[:], h.Sum(nil))
		if sum != digests[f.Name] {
			log.Fatalf("INTEGRITY FAILURE: %s restores to a different digest", f.Name)
		}
		ok++
	}
	fmt.Printf("verified %d/%d restores byte-identical (SHA-1)\n", ok, len(w.Files()))
}

// writerOnly hides a hash.Hash's other methods so Restore sees a plain
// io.Writer.
type writerOnly struct{ hash.Hash }
