// Quickstart: deduplicate two nearly identical byte streams with MHD and
// restore them.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"mhdedup/dedup"
)

func main() {
	// Two 1 MiB "backups": the second is the first with a 20 KiB edit in
	// the middle — the bread-and-butter case for deduplication.
	gen1 := make([]byte, 1<<20)
	rand.New(rand.NewSource(42)).Read(gen1)
	gen2 := append([]byte(nil), gen1...)
	rand.New(rand.NewSource(43)).Read(gen2[500_000 : 500_000+20_000])

	eng, err := dedup.New(dedup.MHD, dedup.Options{
		ECS: 4096, // expected chunk size
		SD:  16,   // sample distance: 1 hook per 16 chunks, rest merged
	})
	if err != nil {
		log.Fatal(err)
	}

	for name, data := range map[string][]byte{"backup-day1": gen1, "backup-day2": gen2} {
		if err := eng.PutFile(name, bytes.NewReader(data)); err != nil {
			log.Fatal(err)
		}
	}
	if err := eng.Finish(); err != nil {
		log.Fatal(err)
	}

	rep := eng.Report()
	fmt.Printf("ingested:       %d bytes in %d files\n", rep.InputBytes, rep.FilesTotal)
	fmt.Printf("stored:         %d bytes of data + %d bytes of metadata\n", rep.StoredDataBytes, rep.MetadataBytes)
	fmt.Printf("data-only DER:  %.2f\n", rep.DataOnlyDER())
	fmt.Printf("real DER:       %.2f (metadata counted against the savings)\n", rep.RealDER())
	fmt.Printf("duplicate data: %d bytes in %d slices\n", rep.DupBytes, rep.DupSlices)

	// Restore and verify.
	var out bytes.Buffer
	if err := eng.Restore("backup-day2", &out); err != nil {
		log.Fatal(err)
	}
	if bytes.Equal(out.Bytes(), gen2) {
		fmt.Println("restore:        backup-day2 rebuilt byte-identically")
	} else {
		log.Fatal("restore mismatch")
	}
}
