module mhdedup

go 1.22
