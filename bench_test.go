package mhdedup

// The benchmark harness: one testing.B entry per table and figure of the
// paper's evaluation section. Each benchmark iteration regenerates the
// experiment from scratch on the quick-scale synthetic workload and attaches
// the headline quantities via b.ReportMetric, so `go test -bench=.` both
// times the harness and reprints the reproduced results. Run
// `go run ./cmd/experiments -scale standard` for the full-scale tables.

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"mhdedup/internal/chunker"
	"mhdedup/internal/core"
	"mhdedup/internal/exp"
	"mhdedup/internal/trace"
)

// newSuite builds a fresh quick-scale suite (no cross-iteration caching, so
// timings reflect real work).
func newSuite(b *testing.B) *exp.Suite {
	b.Helper()
	s, err := exp.NewSuite(exp.QuickScale())
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkFig7Metadata regenerates Fig 7(a)–(d): per-category metadata
// versus ECS for MHD, Bimodal, SubChunk and SparseIndexing.
func BenchmarkFig7Metadata(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(b)
		_, recs, err := s.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range recs {
			if r.Algo == exp.AlgoMHD && r.ECS == 2048 {
				b.ReportMetric(r.Report.MetaDataRatio()*100, "mhd-meta-%")
				b.ReportMetric(r.Report.InodesPerMB(), "mhd-inodes/MB")
			}
		}
	}
}

// BenchmarkFig8Tradeoff regenerates Fig 8(a)–(d): DER versus MetaDataRatio
// and ThroughputRatio trade-off curves.
func BenchmarkFig8Tradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(b)
		_, recs, err := s.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		var bestReal float64
		for _, r := range recs {
			if r.Algo == exp.AlgoMHD && r.Report.RealDER() > bestReal {
				bestReal = r.Report.RealDER()
			}
		}
		b.ReportMetric(bestReal, "mhd-best-realDER")
	}
}

// BenchmarkFig9SD regenerates Fig 9(a)–(b): BF-MHD's real-DER trade-offs at
// the three SD values.
func BenchmarkFig9SD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(b)
		_, recs, err := s.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range recs {
			if r.SD == s.Scale.SDSweep[len(s.Scale.SDSweep)-1] && r.ECS == 1024 {
				b.ReportMetric(r.Report.RealDER(), "smallest-SD-realDER")
			}
		}
	}
}

// BenchmarkFig10Dataset regenerates Fig 10(a)–(b): DAD versus ECS and HHR
// cost versus the number of duplicate slices.
func BenchmarkFig10Dataset(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(b)
		_, recs, err := s.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		last := recs[len(recs)-1].Report
		b.ReportMetric(last.DAD()/1024, "DAD-KiB")
		if last.DupSlices > 0 {
			b.ReportMetric(float64(last.HHRDiskAccesses)/float64(last.DupSlices), "HHR/L")
		}
	}
}

// BenchmarkTable1Model regenerates Table I: metadata-size model versus
// measurement.
func BenchmarkTable1Model(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(b)
		if _, err := s.Table1(2048); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Model regenerates Table II: disk-access model versus
// measurement.
func BenchmarkTable2Model(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(b)
		if _, err := s.Table2(2048); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3SparseRAM regenerates Table III: sparse-index RAM versus
// ECS.
func BenchmarkTable3SparseRAM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(b)
		if _, err := s.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4MHDBytes regenerates Table IV: Hook+Manifest bytes over
// the SD × ECS grid.
func BenchmarkTable4MHDBytes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(b)
		if _, err := s.Table4(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5ManifestLoads regenerates Table V: manifest-loading disk
// accesses over the SD × ECS grid.
func BenchmarkTable5ManifestLoads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(b)
		if _, err := s.Table5(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMHD measures the design-choice ablations called out in
// DESIGN.md (bloom filter, HHR byte comparison, EdgeHash guard).
func BenchmarkAblationMHD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(b)
		if _, err := s.Ablations(2048); err != nil {
			b.Fatal(err)
		}
	}
}

// benchIngest measures single-engine ingest throughput over one workload
// pass (the CPU-side cost a deployment would feel).
func benchIngest(b *testing.B, algoName string) {
	cfg := trace.Default()
	cfg.Machines = 2
	cfg.Days = 3
	cfg.SnapshotBytes = 2 << 20
	cfg.EditsPerDay = 16
	cfg.EditBytes = 16 << 10
	ds, err := trace.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(ds.TotalBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := exp.Build(exp.DefaultParams(algoName, 4096, 16, ds.TotalBytes()))
		if err != nil {
			b.Fatal(err)
		}
		if err := ds.EachFile(func(info trace.FileInfo, r io.Reader) error {
			return d.PutFile(info.Name, r)
		}); err != nil {
			b.Fatal(err)
		}
		if err := d.Finish(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchParallelIngest measures multi-stream ingest throughput at a given
// worker count: an 8-machine workload, one ordered stream per machine, fed
// through IngestStreams on a shared MHD engine. workers=1 is the serial
// baseline (bit-identical to a PutFile loop); higher counts scale with the
// machine's spare cores — on a single-CPU host the lines coincide and the
// benchmark degenerates into a scheduler-overhead measurement.
func benchParallelIngest(b *testing.B, workers int) {
	cfg := trace.Default()
	cfg.Machines = 8
	cfg.Days = 2
	cfg.SnapshotBytes = 1 << 20
	cfg.EditsPerDay = 8
	cfg.EditBytes = 8 << 10
	ds, err := trace.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	// One ordered stream per machine.
	streamsOf := func() []core.Stream {
		byMachine := map[int]int{}
		var streams []core.Stream
		for _, f := range ds.Files() {
			name := f.Name
			idx, ok := byMachine[f.Machine]
			if !ok {
				idx = len(streams)
				byMachine[f.Machine] = idx
				streams = append(streams, core.Stream{Name: fmt.Sprintf("m%d", f.Machine)})
			}
			streams[idx].Items = append(streams[idx].Items, core.Item{
				Name: name,
				Open: func() (io.ReadCloser, error) {
					r, err := ds.Open(name)
					if err != nil {
						return nil, err
					}
					return io.NopCloser(r), nil
				},
			})
		}
		return streams
	}
	b.SetBytes(ds.TotalBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ccfg := core.DefaultConfig()
		ccfg.ECS = 4096
		ccfg.SD = 16
		ccfg.BloomBytes = 1 << 18
		ccfg.IngestWorkers = workers
		d, err := core.New(ccfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := d.IngestStreams(workers, streamsOf()); err != nil {
			b.Fatal(err)
		}
		if err := d.Finish(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParallelIngest1(b *testing.B) { benchParallelIngest(b, 1) }
func BenchmarkParallelIngest2(b *testing.B) { benchParallelIngest(b, 2) }
func BenchmarkParallelIngest4(b *testing.B) { benchParallelIngest(b, 4) }
func BenchmarkParallelIngest8(b *testing.B) { benchParallelIngest(b, 8) }

func BenchmarkIngestMHD(b *testing.B)      { benchIngest(b, exp.AlgoMHD) }
func BenchmarkIngestCDC(b *testing.B)      { benchIngest(b, exp.AlgoCDC) }
func BenchmarkIngestBimodal(b *testing.B)  { benchIngest(b, exp.AlgoBimodal) }
func BenchmarkIngestSubChunk(b *testing.B) { benchIngest(b, exp.AlgoSubChunk) }
func BenchmarkIngestSparse(b *testing.B)   { benchIngest(b, exp.AlgoSparse) }

// BenchmarkRestoreMHD measures restore throughput.
func BenchmarkRestoreMHD(b *testing.B) {
	cfg := trace.Default()
	cfg.Machines = 2
	cfg.Days = 2
	cfg.SnapshotBytes = 2 << 20
	cfg.EditsPerDay = 16
	cfg.EditBytes = 16 << 10
	ds, err := trace.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	d, err := exp.Build(exp.DefaultParams(exp.AlgoMHD, 4096, 16, ds.TotalBytes()))
	if err != nil {
		b.Fatal(err)
	}
	if err := ds.EachFile(func(info trace.FileInfo, r io.Reader) error {
		return d.PutFile(info.Name, r)
	}); err != nil {
		b.Fatal(err)
	}
	if err := d.Finish(); err != nil {
		b.Fatal(err)
	}
	files := ds.Files()
	b.SetBytes(ds.TotalBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range files {
			if err := d.Restore(f.Name, io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkChunkers measures the per-byte reference chunker scans against
// their block-processed fast paths (bit-identical cut sequences, pinned by
// the conformance harness in internal/chunker) over synthetic snapshot
// bytes. MB/s is the headline; the fast paths are the system-wide default.
func BenchmarkChunkers(b *testing.B) {
	cfg := trace.Default()
	cfg.Machines = 1
	cfg.Days = 1
	cfg.SnapshotBytes = 8 << 20
	ds, err := trace.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var data []byte
	if err := ds.EachFile(func(info trace.FileInfo, r io.Reader) error {
		buf, err := io.ReadAll(r)
		data = append(data, buf...)
		return err
	}); err != nil {
		b.Fatal(err)
	}
	p := chunker.Params{ECS: 4096}
	for _, impl := range []struct {
		name string
		mk   func(r io.Reader, p chunker.Params) (chunker.Chunker, error)
	}{
		{"RabinReference", func(r io.Reader, p chunker.Params) (chunker.Chunker, error) { return chunker.NewRabin(r, p) }},
		{"RabinFast", func(r io.Reader, p chunker.Params) (chunker.Chunker, error) { return chunker.NewFastRabin(r, p) }},
		{"GearReference", func(r io.Reader, p chunker.Params) (chunker.Chunker, error) { return chunker.NewFastCDC(r, p) }},
		{"GearFast", func(r io.Reader, p chunker.Params) (chunker.Chunker, error) { return chunker.NewFastGear(r, p) }},
	} {
		b.Run(impl.name, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				c, err := impl.mk(bytes.NewReader(data), p)
				if err != nil {
					b.Fatal(err)
				}
				for {
					if _, err := c.Next(); err != nil {
						if err == io.EOF {
							break
						}
						b.Fatal(err)
					}
				}
			}
		})
	}
}
