package hashutil

import (
	"bytes"
	"crypto/sha1"
	"testing"
	"testing/quick"
)

func TestSumBytesMatchesStdlib(t *testing.T) {
	inputs := [][]byte{
		nil,
		{},
		[]byte("a"),
		[]byte("hello, dedup"),
		bytes.Repeat([]byte{0xAB}, 4096),
	}
	for _, in := range inputs {
		want := Sum(sha1.Sum(in))
		if got := SumBytes(in); got != want {
			t.Errorf("SumBytes(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestSumStringMatchesSumBytes(t *testing.T) {
	for _, s := range []string{"", "x", "content-defined chunking"} {
		if SumString(s) != SumBytes([]byte(s)) {
			t.Errorf("SumString(%q) != SumBytes of same content", s)
		}
	}
}

func TestSumRegionsEqualsConcatenation(t *testing.T) {
	f := func(a, b, c []byte) bool {
		concat := append(append(append([]byte{}, a...), b...), c...)
		return SumRegions(a, b, c) == SumBytes(concat)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSumRegionsEmpty(t *testing.T) {
	if SumRegions() != SumBytes(nil) {
		t.Error("SumRegions() should equal hash of empty input")
	}
}

func TestHexRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		s := SumBytes(data)
		back, err := ParseHex(s.Hex())
		return err == nil && back == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseHexRejectsBadInput(t *testing.T) {
	cases := []string{
		"",
		"abcd",
		"zz00000000000000000000000000000000000000",   // non-hex
		"0000000000000000000000000000000000000000ff", // too long
	}
	for _, c := range cases {
		if _, err := ParseHex(c); err == nil {
			t.Errorf("ParseHex(%q) succeeded, want error", c)
		}
	}
}

func TestShortAndString(t *testing.T) {
	s := SumBytes([]byte("abc"))
	if len(s.Short()) != 8 {
		t.Errorf("Short() length = %d, want 8", len(s.Short()))
	}
	if s.String() != s.Short() {
		t.Error("String() should equal Short()")
	}
	if len(s.Hex()) != 40 {
		t.Errorf("Hex() length = %d, want 40", len(s.Hex()))
	}
}

func TestIsZero(t *testing.T) {
	var z Sum
	if !z.IsZero() {
		t.Error("zero Sum should report IsZero")
	}
	if SumBytes(nil).IsZero() {
		t.Error("hash of empty input should not be the zero Sum")
	}
}

func TestHasherIncremental(t *testing.T) {
	h := NewHasher()
	h.Write([]byte("hello, "))
	h.Write([]byte("world"))
	if h.Sum() != SumBytes([]byte("hello, world")) {
		t.Error("incremental hash differs from one-shot hash")
	}
	// Sum must not reset: writing more should extend the same stream.
	h.Write([]byte("!"))
	if h.Sum() != SumBytes([]byte("hello, world!")) {
		t.Error("Hasher.Sum must not reset the running state")
	}
	h.Reset()
	h.Write([]byte("fresh"))
	if h.Sum() != SumBytes([]byte("fresh")) {
		t.Error("Reset did not clear the Hasher")
	}
}

func TestSumsAreMapKeys(t *testing.T) {
	m := map[Sum]int{}
	a := SumBytes([]byte("a"))
	b := SumBytes([]byte("b"))
	m[a] = 1
	m[b] = 2
	if m[a] != 1 || m[b] != 2 {
		t.Error("Sum map keys misbehave")
	}
	if m[SumBytes([]byte("a"))] != 1 {
		t.Error("recomputed Sum should index the same map entry")
	}
}

func BenchmarkSumBytes8K(b *testing.B) {
	data := bytes.Repeat([]byte{0x5A}, 8192)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		SumBytes(data)
	}
}
