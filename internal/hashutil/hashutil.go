// Package hashutil provides the content hash type used throughout the
// deduplication system.
//
// The paper (and virtually every 2013-era deduplication system) identifies
// chunks by their SHA-1 digest; a Sum is therefore a 20-byte value. The
// package wraps crypto/sha1 with a comparable array type so Sums can be used
// directly as map keys, and provides the helpers the rest of the system
// relies on: one-shot hashing, incremental hashing across several byte
// regions, and stable textual forms.
package hashutil

import (
	"crypto/sha1"
	"encoding/hex"
	"fmt"
)

// Size is the byte length of a Sum (SHA-1 digest size).
const Size = sha1.Size

// Sum is a 20-byte SHA-1 content hash. The zero value is the hash of no
// particular content and is never produced by SumBytes; it can be used as a
// sentinel.
type Sum [Size]byte

// SumBytes returns the SHA-1 digest of b.
func SumBytes(b []byte) Sum {
	return Sum(sha1.Sum(b))
}

// SumString returns the SHA-1 digest of s without copying it to a []byte
// first beyond what the hash requires.
func SumString(s string) Sum {
	h := sha1.New()
	h.Write([]byte(s))
	var out Sum
	h.Sum(out[:0])
	return out
}

// SumRegions returns the SHA-1 digest of the concatenation of the given byte
// slices, without materializing the concatenation. It is used by SHM and by
// match extension, both of which hash runs of buffered chunks.
func SumRegions(regions ...[]byte) Sum {
	h := sha1.New()
	for _, r := range regions {
		h.Write(r)
	}
	var out Sum
	h.Sum(out[:0])
	return out
}

// Hex returns the lowercase hexadecimal form of s (40 characters).
func (s Sum) Hex() string {
	return hex.EncodeToString(s[:])
}

// Short returns the first 8 hex characters of s, for logs and test output.
func (s Sum) Short() string {
	return hex.EncodeToString(s[:4])
}

// String implements fmt.Stringer; it is the same as Short so that large
// structures containing Sums print compactly.
func (s Sum) String() string {
	return s.Short()
}

// IsZero reports whether s is the zero Sum.
func (s Sum) IsZero() bool {
	return s == Sum{}
}

// ParseHex parses a 40-character hexadecimal string into a Sum.
func ParseHex(text string) (Sum, error) {
	var s Sum
	if len(text) != Size*2 {
		return s, fmt.Errorf("hashutil: hex sum must be %d characters, got %d", Size*2, len(text))
	}
	b, err := hex.DecodeString(text)
	if err != nil {
		return s, fmt.Errorf("hashutil: invalid hex sum: %w", err)
	}
	copy(s[:], b)
	return s, nil
}

// Hasher accumulates bytes and produces a Sum. It exists so callers can hash
// streaming data (e.g. whole restored files in round-trip tests) without
// buffering.
type Hasher struct {
	inner interface {
		Write(p []byte) (int, error)
		Sum(b []byte) []byte
		Reset()
	}
}

// NewHasher returns a ready-to-use Hasher.
func NewHasher() *Hasher {
	return &Hasher{inner: sha1.New()}
}

// Write adds p to the running hash. It never fails.
func (h *Hasher) Write(p []byte) (int, error) {
	return h.inner.Write(p)
}

// Sum returns the digest of everything written so far. The Hasher may keep
// being written to afterwards; Sum does not reset it.
func (h *Hasher) Sum() Sum {
	var out Sum
	h.inner.Sum(out[:0])
	return out
}

// Reset returns the Hasher to its initial state.
func (h *Hasher) Reset() {
	h.inner.Reset()
}
