package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of log2 buckets a Histogram keeps. Bucket 0
// holds values ≤ 0 (and 0 itself never occurs for latencies, but guards
// clock weirdness); bucket b ≥ 1 holds values in [2^(b-1), 2^b). 48
// buckets cover up to 2^47 ns ≈ 39 hours — more than any op this system
// performs.
const histBuckets = 48

// Histogram is a lock-free, log2-bucketed latency/size histogram built
// for hot paths: Observe is four atomic adds (count, sum, max, bucket)
// with no allocation and no locking, so N ingest sessions can hammer the
// same histogram concurrently and a Snapshot taken at any moment is
// consistent enough for reporting (each field individually exact).
//
// The log2 bucketing trades resolution for cost: a reported percentile is
// the upper bound of the bucket the rank falls in (clamped to the true
// max), i.e. accurate to within 2×. That is exactly the fidelity needed
// to tell "index lookup: 400ns" from "index lookup: 400µs — something is
// reading disk", which is the question this layer exists to answer.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketOf maps a value to its bucket index: 0 for v ≤ 0, otherwise
// bits.Len64(v) clamped to the last bucket — so bucket b covers
// [2^(b-1), 2^b).
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// bucketUpper returns the largest value bucket b can hold (the upper
// bound reported for percentiles that land in b).
func bucketUpper(b int) int64 {
	if b <= 0 {
		return 0
	}
	if b >= 63 {
		return int64(^uint64(0) >> 1)
	}
	return int64(1)<<uint(b) - 1
}

// Observe records one value (for latency histograms: nanoseconds).
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	MaxInt64(&h.max, v)
	h.buckets[bucketOf(v)].Add(1)
}

// ObserveSince records the elapsed time since start in nanoseconds and
// returns it, so call sites can feed the same measurement to a slow-op
// check without reading the clock twice.
func (h *Histogram) ObserveSince(start time.Time) time.Duration {
	d := time.Since(start)
	h.Observe(int64(d))
	return d
}

// HistogramSnapshot is a consistent-enough point-in-time view of a
// Histogram, JSON-ready for /metrics.json and BENCH_*.json.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	Max   int64   `json:"max"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
}

// Snapshot loads every bucket once and derives p50/p90/p99 from the
// cumulative bucket counts. Percentiles are bucket upper bounds clamped
// to the observed max; an empty histogram snapshots to all zeros.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	if s.Count == 0 {
		return s
	}
	s.Mean = float64(s.Sum) / float64(s.Count)
	var counts [histBuckets]int64
	var total int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	// Ranks are computed against the bucket total, not s.Count: under
	// concurrent Observes the two can momentarily disagree, and the
	// bucket total is the one the cumulative walk must be consistent
	// with.
	if total == 0 {
		return s
	}
	q := func(p float64) int64 {
		rank := int64(p * float64(total))
		if rank < 1 {
			rank = 1
		}
		var cum int64
		for i := 0; i < histBuckets; i++ {
			cum += counts[i]
			if cum >= rank {
				u := bucketUpper(i)
				if u > s.Max {
					u = s.Max
				}
				return u
			}
		}
		return s.Max
	}
	s.P50 = q(0.50)
	s.P90 = q(0.90)
	s.P99 = q(0.99)
	return s
}

// BucketCounts returns the cumulative per-bucket counts (bucket b ≥ 1
// holds values in [2^(b-1), 2^b)). Two successive calls bracket an
// interval: DeltaP99 over their difference yields the p99 of just the
// observations in between — the signal the maintenance scheduler paces
// itself by, where the lifetime P99 of Snapshot would be too sluggish to
// notice a fresh latency regression.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, histBuckets)
	for i := range out {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// DeltaP99 returns the p99 upper bound of the observations recorded
// between two cumulative bucket snapshots (prev taken before cur), and
// the number of those observations. A nil/short prev is treated as all
// zeros (the interval since the histogram's birth). Zero observations
// return (0, 0).
func DeltaP99(cur, prev []int64) (p99 int64, n int64) {
	var delta [histBuckets]int64
	var total int64
	for i := 0; i < histBuckets && i < len(cur); i++ {
		d := cur[i]
		if i < len(prev) {
			d -= prev[i]
		}
		if d < 0 {
			d = 0 // racing Observe between loads; clamp, never go negative
		}
		delta[i] = d
		total += d
	}
	if total == 0 {
		return 0, 0
	}
	rank := int64(0.99 * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += delta[i]
		if cum >= rank {
			return bucketUpper(i), total
		}
	}
	return bucketUpper(histBuckets - 1), total
}

// DurationsMS converts a nanosecond-valued snapshot to milliseconds with
// fractional precision — the human-facing rendering used by bench output.
type DurationsMS struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// ToMS renders a nanosecond snapshot in milliseconds.
func (s HistogramSnapshot) ToMS() DurationsMS {
	const ms = float64(time.Millisecond)
	return DurationsMS{
		Count:  s.Count,
		MeanMS: s.Mean / ms,
		P50MS:  float64(s.P50) / ms,
		P90MS:  float64(s.P90) / ms,
		P99MS:  float64(s.P99) / ms,
		MaxMS:  float64(s.Max) / ms,
	}
}
