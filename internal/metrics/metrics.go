// Package metrics defines the statistics every deduplicator collects and
// the derived quantities the paper's evaluation reports: data-only and real
// Duplication Elimination Ratio (DER), MetaDataRatio, ThroughputRatio, and
// Duplication Aggregation Degree (DAD), plus the per-category metadata
// breakdown of Fig 7.
package metrics

import (
	"fmt"
	"strings"

	"mhdedup/internal/simdisk"
)

// Stats is the raw counter set a deduplication run produces. The paper's
// symbols map as: Files=F, NonDupChunks=N, DupChunks=D, DupSlices=L.
type Stats struct {
	// InputBytes is the total size of the input stream.
	InputBytes int64
	// FilesTotal counts all input files; Files counts those that were not
	// complete duplicates (the paper's F — each costs a DiskChunk and a
	// Manifest).
	FilesTotal int64
	Files      int64
	// ChunksIn counts small chunks produced from the input (N + D at ECS
	// granularity).
	ChunksIn int64
	// DupChunks (D) and NonDupChunks (N) classify ChunksIn by whether the
	// chunk's bytes were eliminated.
	DupChunks    int64
	NonDupChunks int64
	// DupBytes is the number of input bytes eliminated as duplicates.
	DupBytes int64
	// DupSlices (L) counts maximal runs of consecutive duplicate data.
	DupSlices int64
	// StoredDataBytes is the payload written to DiskChunks.
	StoredDataBytes int64
	// ChunkedBytes is the input volume scanned by the rolling fingerprint;
	// HashedBytes the volume digested by SHA-1 (match extension re-hashes
	// buffered bytes, so this can exceed ChunkedBytes).
	ChunkedBytes int64
	HashedBytes  int64
	// RAMBytes is the resident memory charged to the algorithm: bloom
	// filter or sparse index plus the manifest cache.
	RAMBytes int64
	// HHROps counts hysteresis re-chunking operations; HHRDiskAccesses the
	// extra disk accesses they caused (chunk reloads + manifest
	// write-backs) — Fig 10(b).
	HHROps          int64
	HHRDiskAccesses int64
	// ManifestLoads counts manifest reads from disk (Table V).
	ManifestLoads int64
	// BigChunkQueries counts duplicate queries made at big-chunk
	// granularity (Bimodal and SubChunk only).
	BigChunkQueries int64
}

// Report combines a run's Stats with the storage-side accounting captured
// from the simulated disk.
type Report struct {
	Stats
	Disk simdisk.Counters

	// Inode counts by category (Fig 7(a) is their sum normalized by input
	// size).
	InodesData, InodesHook, InodesManifest, InodesFileManifest int64
	// Byte footprints by category.
	HookBytes, ManifestBytes, FileManifestBytes int64
	// MetadataBytes is hooks + manifests + file manifests + 256 B per
	// inode — the numerator of MetaDataRatio and the overhead charged
	// against the real DER.
	MetadataBytes int64
}

// BuildReport snapshots disk-side accounting into a Report.
func BuildReport(s Stats, d *simdisk.Disk) Report {
	return Report{
		Stats:              s,
		Disk:               d.Counters(),
		InodesData:         d.ObjectCount(simdisk.Data),
		InodesHook:         d.ObjectCount(simdisk.Hook),
		InodesManifest:     d.ObjectCount(simdisk.Manifest),
		InodesFileManifest: d.ObjectCount(simdisk.FileManifest),
		HookBytes:          d.BytesStored(simdisk.Hook),
		ManifestBytes:      d.BytesStored(simdisk.Manifest),
		FileManifestBytes:  d.BytesStored(simdisk.FileManifest),
		MetadataBytes:      d.MetadataBytes(),
	}
}

// InodeCount returns the total number of stored objects.
func (r Report) InodeCount() int64 {
	return r.InodesData + r.InodesHook + r.InodesManifest + r.InodesFileManifest
}

// InodesPerMB returns inodes per MiB of input — Fig 7(a)'s y-axis.
func (r Report) InodesPerMB() float64 {
	if r.InputBytes == 0 {
		return 0
	}
	return float64(r.InodeCount()) / (float64(r.InputBytes) / (1 << 20))
}

// DataOnlyDER is input size over stored data size, ignoring metadata.
func (r Report) DataOnlyDER() float64 {
	if r.StoredDataBytes == 0 {
		return 0
	}
	return float64(r.InputBytes) / float64(r.StoredDataBytes)
}

// RealDER is input size over everything the file system stores — data plus
// all metadata. This is the metric MHD optimizes.
func (r Report) RealDER() float64 {
	out := r.StoredDataBytes + r.MetadataBytes
	if out == 0 {
		return 0
	}
	return float64(r.InputBytes) / float64(out)
}

// MetaDataRatio is total metadata over input size (reported as % in Fig 7
// and Fig 8).
func (r Report) MetaDataRatio() float64 {
	if r.InputBytes == 0 {
		return 0
	}
	return float64(r.MetadataBytes) / float64(r.InputBytes)
}

// ManifestMetaRatio is the Fig 7(b) quantity: manifest + hook bytes over
// input size.
func (r Report) ManifestMetaRatio() float64 {
	if r.InputBytes == 0 {
		return 0
	}
	return float64(r.ManifestBytes+r.HookBytes) / float64(r.InputBytes)
}

// FileManifestMetaRatio is the Fig 7(c) quantity.
func (r Report) FileManifestMetaRatio() float64 {
	if r.InputBytes == 0 {
		return 0
	}
	return float64(r.FileManifestBytes) / float64(r.InputBytes)
}

// DAD is the Duplication Aggregation Degree: duplicate bytes per duplicate
// slice. Larger means duplication is more concentrated (Fig 10(a)).
func (r Report) DAD() float64 {
	if r.DupSlices == 0 {
		return 0
	}
	return float64(r.DupBytes) / float64(r.DupSlices)
}

// ThroughputRatio evaluates the paper's throughput metric under the given
// cost model: plain-copy time over deduplication time.
func (r Report) ThroughputRatio(m simdisk.CostModel) float64 {
	return m.ThroughputRatio(r.InputBytes, r.ChunkedBytes, r.HashedBytes, r.Disk)
}

// String renders the headline numbers for logs and CLI output.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "input=%s stored=%s meta=%s", fmtBytes(r.InputBytes), fmtBytes(r.StoredDataBytes), fmtBytes(r.MetadataBytes))
	fmt.Fprintf(&b, " dataDER=%.3f realDER=%.3f metaRatio=%.4f%%", r.DataOnlyDER(), r.RealDER(), r.MetaDataRatio()*100)
	fmt.Fprintf(&b, " N=%d D=%d L=%d F=%d DAD=%.0fB", r.NonDupChunks, r.DupChunks, r.DupSlices, r.Files, r.DAD())
	return b.String()
}

func fmtBytes(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%dB", n)
	}
	div, exp := int64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%ciB", float64(n)/float64(div), "KMGTPE"[exp])
}
