package metrics

import "sync/atomic"

// Atomic is the concurrency-safe counterpart of Stats: one atomic.Int64 per
// hot counter, updated in place by N concurrent ingest sessions and
// snapshotted into a plain Stats for reporting.
//
// Every Stats field is a pure sum (bytes, chunk counts, slice counts), so
// per-session accounting folds into the global totals with plain atomic
// adds and the result is exact — independent of interleaving — which is
// what lets the concurrency stress test assert that an 8-session run and a
// serial run agree on InputBytes, ChunksIn and StoredDataBytes. A
// single-session run performs the same adds in the same order as the old
// non-atomic fields did, so serial results are bit-identical.
type Atomic struct {
	InputBytes      atomic.Int64
	FilesTotal      atomic.Int64
	Files           atomic.Int64
	ChunksIn        atomic.Int64
	DupChunks       atomic.Int64
	NonDupChunks    atomic.Int64
	DupBytes        atomic.Int64
	DupSlices       atomic.Int64
	StoredDataBytes atomic.Int64
	ChunkedBytes    atomic.Int64
	HashedBytes     atomic.Int64
	RAMBytes        atomic.Int64
	HHROps          atomic.Int64
	HHRDiskAccesses atomic.Int64
	ManifestLoads   atomic.Int64
	BigChunkQueries atomic.Int64
}

// Snapshot returns a plain Stats with the current counter values. Taken
// while sessions are still running it is a consistent-enough progress view
// (each field individually exact); taken after all sessions finished it is
// the exact run total.
func (a *Atomic) Snapshot() Stats {
	return Stats{
		InputBytes:      a.InputBytes.Load(),
		FilesTotal:      a.FilesTotal.Load(),
		Files:           a.Files.Load(),
		ChunksIn:        a.ChunksIn.Load(),
		DupChunks:       a.DupChunks.Load(),
		NonDupChunks:    a.NonDupChunks.Load(),
		DupBytes:        a.DupBytes.Load(),
		DupSlices:       a.DupSlices.Load(),
		StoredDataBytes: a.StoredDataBytes.Load(),
		ChunkedBytes:    a.ChunkedBytes.Load(),
		HashedBytes:     a.HashedBytes.Load(),
		RAMBytes:        a.RAMBytes.Load(),
		HHROps:          a.HHROps.Load(),
		HHRDiskAccesses: a.HHRDiskAccesses.Load(),
		ManifestLoads:   a.ManifestLoads.Load(),
		BigChunkQueries: a.BigChunkQueries.Load(),
	}
}

// MaxInt64 atomically raises *v to x if x is greater (a compare-and-swap
// max, used for peak-RAM tracking under concurrency).
func MaxInt64(v *atomic.Int64, x int64) {
	for {
		cur := v.Load()
		if x <= cur || v.CompareAndSwap(cur, x) {
			return
		}
	}
}
