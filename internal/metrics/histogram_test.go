package metrics

import (
	"sync"
	"testing"
	"time"
)

// TestBucketBoundaries pins the log2 bucket layout: bucket 0 holds v ≤ 0
// and bucket b ≥ 1 holds [2^(b-1), 2^b), with the last bucket absorbing
// everything larger.
func TestBucketBoundaries(t *testing.T) {
	for _, tc := range []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4},
		{1023, 10}, {1024, 11},
		{1 << 46, 47},
		{1 << 47, histBuckets - 1}, // clamped
		{1 << 60, histBuckets - 1}, // clamped
	} {
		if got := bucketOf(tc.v); got != tc.want {
			t.Errorf("bucketOf(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
	// Every positive value must fall inside its bucket's bound, and (for
	// unclamped buckets) miss the previous bucket's bound — the "within
	// 2×" percentile accuracy contract.
	for _, v := range []int64{1, 2, 3, 5, 100, 4096, 1 << 20, 1 << 40} {
		b := bucketOf(v)
		if u := bucketUpper(b); u < v {
			t.Errorf("bucketUpper(bucketOf(%d)) = %d < value", v, u)
		}
		if b > 1 {
			if u := bucketUpper(b - 1); u >= v {
				t.Errorf("value %d also fits bucket %d (upper %d); bucketing too coarse", v, b-1, u)
			}
		}
	}
	if u := bucketUpper(0); u != 0 {
		t.Errorf("bucketUpper(0) = %d, want 0", u)
	}
	if u := bucketUpper(63); u <= 0 {
		t.Errorf("bucketUpper(63) = %d, want positive (no overflow)", u)
	}
}

// TestHistogramSnapshot checks exact fields (count, sum, mean, max) and
// the 2×-accurate percentile contract on a known distribution.
func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s != (HistogramSnapshot{}) {
		t.Fatalf("empty histogram snapshot = %+v, want zeros", s)
	}
	// 90 fast observations, 10 slow ones: p50/p90 land in the fast
	// bucket, p99 in the slow one.
	for i := 0; i < 90; i++ {
		h.Observe(100)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1_000_000)
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Sum != 90*100+10*1_000_000 || s.Max != 1_000_000 {
		t.Fatalf("count=%d sum=%d max=%d", s.Count, s.Sum, s.Max)
	}
	if want := float64(s.Sum) / 100; s.Mean != want {
		t.Fatalf("mean = %v, want %v", s.Mean, want)
	}
	// p50 and p90 must report the fast cohort within 2×, p99 the slow one.
	if s.P50 < 100 || s.P50 >= 200 {
		t.Errorf("p50 = %d, want in [100, 200)", s.P50)
	}
	if s.P90 < 100 || s.P90 >= 200 {
		t.Errorf("p90 = %d, want in [100, 200)", s.P90)
	}
	if s.P99 != 1_000_000 {
		// The slow bucket's upper bound clamps to the observed max.
		t.Errorf("p99 = %d, want clamped to max 1000000", s.P99)
	}
	if s.P50 > s.P90 || s.P90 > s.P99 || s.P99 > s.Max {
		t.Errorf("percentiles not monotone: %d %d %d max %d", s.P50, s.P90, s.P99, s.Max)
	}

	ms := s.ToMS()
	if ms.Count != 100 || ms.P99MS != 1.0 || ms.MaxMS != 1.0 {
		t.Errorf("ToMS = %+v, want p99/max of 1ms", ms)
	}
}

// TestObserveSince records exactly one elapsed measurement and returns it.
func TestObserveSince(t *testing.T) {
	var h Histogram
	start := time.Now()
	time.Sleep(time.Millisecond)
	d := h.ObserveSince(start)
	if d < time.Millisecond {
		t.Fatalf("returned elapsed %v, want ≥ 1ms", d)
	}
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != int64(d) {
		t.Fatalf("snapshot count=%d sum=%d, want 1 observation of %d", s.Count, s.Sum, int64(d))
	}
}

// TestHistogramConcurrent hammers one histogram from many writers while a
// reader snapshots continuously: run under -race this is the lock-free
// claim's proof, and every mid-flight snapshot must still be internally
// sane (monotone percentiles bounded by max).
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const writers = 8
	const perWriter = 20000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(int64(1 + (i^w)%100000))
			}
		}(w)
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			if s.P50 > s.P90 || s.P90 > s.P99 || s.P99 > s.Max {
				t.Errorf("mid-flight snapshot not monotone: %+v", s)
				return
			}
			if s.Count < 0 || s.Count > writers*perWriter {
				t.Errorf("mid-flight count %d out of range", s.Count)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-readerDone
	s := h.Snapshot()
	if s.Count != writers*perWriter {
		t.Fatalf("final count = %d, want %d", s.Count, writers*perWriter)
	}
}

// TestRegistryHistogramsAndGauges covers the registry plumbing the debug
// endpoint exports: named histogram identity, gauge sampling, and the
// ExportAll document.
func TestRegistryHistogramsAndGauges(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("op_ns")
	h2 := r.Histogram("op_ns")
	if h1 != h2 {
		t.Fatal("Histogram(name) must return the same histogram per name")
	}
	h1.Observe(42)
	val := int64(7)
	r.SetGauge("occupancy", func() int64 { return val })
	r.Counter("hits").Add(3)

	ex := r.ExportAll()
	if ex.Counters["hits"] != 3 {
		t.Errorf("exported counter = %d, want 3", ex.Counters["hits"])
	}
	if ex.Gauges["occupancy"] != 7 {
		t.Errorf("exported gauge = %d, want 7", ex.Gauges["occupancy"])
	}
	hs, ok := ex.Histograms["op_ns"]
	if !ok || hs.Count != 1 {
		t.Errorf("exported histogram = %+v ok=%v, want count 1", hs, ok)
	}
	val = 9
	if ex2 := r.ExportAll(); ex2.Gauges["occupancy"] != 9 {
		t.Errorf("gauge must re-sample on export, got %d", ex2.Gauges["occupancy"])
	}
	if GetHistogram("default_registry_hist") != GetHistogram("default_registry_hist") {
		t.Error("package-level GetHistogram must be stable per name")
	}
}
