package metrics

import (
	"encoding/json"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a named-instrument registry for operational (service-side)
// metrics: counters (sessions, frames, bytes on the wire, cache hits),
// histograms (per-stage latencies), and gauges (instantaneous occupancy
// read through a callback). Instruments are created on first use, updated
// with lock-free atomic operations, and exported as one consistent-enough
// JSON snapshot (each instrument individually exact). The deduplication
// statistics proper stay in Stats/Atomic — the registry is for the
// serving layer around the engine.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*atomic.Int64
	histograms map[string]*Histogram
	gauges     map[string]func() int64
}

// NewRegistry returns an empty registry (tests use private ones; servers
// usually share Default).
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*atomic.Int64),
		histograms: make(map[string]*Histogram),
		gauges:     make(map[string]func() int64),
	}
}

// Default is the process-wide registry Snapshot() exports.
var Default = NewRegistry()

// Counter returns the named counter, creating it at zero on first use.
// The returned pointer is stable: hot paths should hold it instead of
// re-resolving the name.
func (r *Registry) Counter(name string) *atomic.Int64 {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = new(atomic.Int64)
	r.counters[name] = c
	return c
}

// Histogram returns the named histogram, creating it on first use. The
// returned pointer is stable: hot paths should hold it instead of
// re-resolving the name. By convention latency histograms carry a `_ns`
// suffix and record nanoseconds.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	h = new(Histogram)
	r.histograms[name] = h
	return h
}

// SetGauge registers (or replaces) a gauge: a callback sampled at
// snapshot time for instantaneous values that are owned elsewhere —
// cache occupancy, live session counts, store object totals. The
// callback must be safe to call from any goroutine.
func (r *Registry) SetGauge(name string, fn func() int64) {
	r.mu.Lock()
	r.gauges[name] = fn
	r.mu.Unlock()
}

// Histograms snapshots every registered histogram.
func (r *Registry) Histograms() map[string]HistogramSnapshot {
	r.mu.RLock()
	hs := make(map[string]*Histogram, len(r.histograms))
	for name, h := range r.histograms {
		hs[name] = h
	}
	r.mu.RUnlock()
	out := make(map[string]HistogramSnapshot, len(hs))
	for name, h := range hs {
		out[name] = h.Snapshot()
	}
	return out
}

// Gauges samples every registered gauge.
func (r *Registry) Gauges() map[string]int64 {
	r.mu.RLock()
	fns := make(map[string]func() int64, len(r.gauges))
	for name, fn := range r.gauges {
		fns[name] = fn
	}
	r.mu.RUnlock()
	out := make(map[string]int64, len(fns))
	for name, fn := range fns {
		out[name] = fn()
	}
	return out
}

// Export is the full JSON-ready metrics document: counters, gauge
// samples, and histogram snapshots — what dedupd serves at
// /metrics.json.
type Export struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// ExportAll snapshots every instrument of the registry.
func (r *Registry) ExportAll() Export {
	return Export{
		Counters:   r.Snapshot(),
		Gauges:     r.Gauges(),
		Histograms: r.Histograms(),
	}
}

// Snapshot returns the current value of every counter.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Load()
	}
	return out
}

// Names returns the registered counter names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// MarshalJSON renders the registry as a flat JSON object of counter
// values, so a *Registry can be embedded directly in a metrics document.
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}

// Counter returns a counter of the Default registry.
func Counter(name string) *atomic.Int64 { return Default.Counter(name) }

// GetHistogram returns a histogram of the Default registry — the
// package-level hot-path instrumentation hook used by core, store and
// client (servers with private registries use Registry.Histogram).
func GetHistogram(name string) *Histogram { return Default.Histogram(name) }

// Snapshot returns the Default registry's current counter values — the
// JSON-ready operational metrics snapshot served by dedupd's
// /metrics.json endpoint.
func Snapshot() map[string]int64 { return Default.Snapshot() }
