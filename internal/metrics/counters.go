package metrics

import (
	"encoding/json"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a named-counter registry for operational (service-side)
// metrics: sessions, frames, bytes on the wire, cache hits. Counters are
// created on first use, updated with lock-free atomic adds, and exported
// as one consistent-enough JSON snapshot (each counter individually
// exact). The deduplication statistics proper stay in Stats/Atomic — the
// registry is for the serving layer around the engine.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*atomic.Int64
}

// NewRegistry returns an empty registry (tests use private ones; servers
// usually share Default).
func NewRegistry() *Registry {
	return &Registry{counters: make(map[string]*atomic.Int64)}
}

// Default is the process-wide registry Snapshot() exports.
var Default = NewRegistry()

// Counter returns the named counter, creating it at zero on first use.
// The returned pointer is stable: hot paths should hold it instead of
// re-resolving the name.
func (r *Registry) Counter(name string) *atomic.Int64 {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = new(atomic.Int64)
	r.counters[name] = c
	return c
}

// Snapshot returns the current value of every counter.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Load()
	}
	return out
}

// Names returns the registered counter names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// MarshalJSON renders the registry as a flat JSON object of counter
// values, so a *Registry can be embedded directly in a metrics document.
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}

// Counter returns a counter of the Default registry.
func Counter(name string) *atomic.Int64 { return Default.Counter(name) }

// Snapshot returns the Default registry's current counter values — the
// JSON-ready operational metrics snapshot served by dedupd's
// /metrics.json endpoint.
func Snapshot() map[string]int64 { return Default.Snapshot() }
