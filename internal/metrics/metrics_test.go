package metrics

import (
	"strings"
	"testing"

	"mhdedup/internal/simdisk"
)

func sampleReport() Report {
	d := simdisk.New()
	d.Create(simdisk.Data, "c1", make([]byte, 25<<20))
	d.Create(simdisk.Hook, "h1", make([]byte, 20))
	d.Create(simdisk.Manifest, "m1", make([]byte, 74))
	d.Create(simdisk.FileManifest, "f1", make([]byte, 28))
	s := Stats{
		InputBytes:      100 << 20,
		FilesTotal:      10,
		Files:           8,
		ChunksIn:        100_000,
		DupChunks:       75_000,
		NonDupChunks:    25_000,
		DupBytes:        75 << 20,
		DupSlices:       300,
		StoredDataBytes: 25 << 20,
		ChunkedBytes:    100 << 20,
		HashedBytes:     110 << 20,
	}
	return BuildReport(s, d)
}

func TestDERAndRatios(t *testing.T) {
	r := sampleReport()
	if got := r.DataOnlyDER(); got != 4.0 {
		t.Errorf("DataOnlyDER = %v, want 4", got)
	}
	real := r.RealDER()
	if real <= 0 || real >= 4.0 {
		t.Errorf("RealDER = %v, want in (0,4)", real)
	}
	meta := r.MetaDataRatio()
	wantMeta := float64(20+74+28+4*simdisk.InodeBytes) / float64(100<<20)
	if meta != wantMeta {
		t.Errorf("MetaDataRatio = %v, want %v", meta, wantMeta)
	}
	if r.ManifestMetaRatio() != float64(74+20)/float64(100<<20) {
		t.Errorf("ManifestMetaRatio = %v", r.ManifestMetaRatio())
	}
	if r.FileManifestMetaRatio() != float64(28)/float64(100<<20) {
		t.Errorf("FileManifestMetaRatio = %v", r.FileManifestMetaRatio())
	}
}

func TestDAD(t *testing.T) {
	r := sampleReport()
	want := float64(75<<20) / 300
	if r.DAD() != want {
		t.Errorf("DAD = %v, want %v", r.DAD(), want)
	}
	r.DupSlices = 0
	if r.DAD() != 0 {
		t.Error("DAD with zero slices should be 0")
	}
}

func TestInodeAccounting(t *testing.T) {
	r := sampleReport()
	if r.InodeCount() != 4 {
		t.Errorf("InodeCount = %d, want 4", r.InodeCount())
	}
	if got := r.InodesPerMB(); got != 4.0/100.0 {
		t.Errorf("InodesPerMB = %v, want 0.04", got)
	}
}

func TestZeroValueSafety(t *testing.T) {
	var r Report
	if r.DataOnlyDER() != 0 || r.RealDER() != 0 || r.MetaDataRatio() != 0 ||
		r.DAD() != 0 || r.InodesPerMB() != 0 || r.ManifestMetaRatio() != 0 ||
		r.FileManifestMetaRatio() != 0 {
		t.Error("zero Report must not divide by zero")
	}
}

func TestThroughputRatioBand(t *testing.T) {
	r := sampleReport()
	ratio := r.ThroughputRatio(simdisk.Default2013())
	if ratio <= 0 || ratio >= 1.5 {
		t.Errorf("ThroughputRatio = %v, want a positive sub-copy value", ratio)
	}
	// More metadata I/O must not increase the ratio.
	slow := r
	slow.Disk.Reads[simdisk.Manifest] += 100_000
	if slow.ThroughputRatio(simdisk.Default2013()) >= ratio {
		t.Error("extra manifest loads should reduce throughput ratio")
	}
}

func TestStringIncludesHeadlines(t *testing.T) {
	s := sampleReport().String()
	for _, want := range []string{"dataDER=4.000", "realDER=", "L=300", "F=8"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestFmtBytes(t *testing.T) {
	cases := map[int64]string{
		512:     "512B",
		2048:    "2.0KiB",
		3 << 20: "3.0MiB",
		5 << 30: "5.0GiB",
	}
	for in, want := range cases {
		if got := fmtBytes(in); got != want {
			t.Errorf("fmtBytes(%d) = %q, want %q", in, got, want)
		}
	}
}
