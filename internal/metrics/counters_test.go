package metrics

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestRegistryCounterAndSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Counter("b").Add(7)
	r.Counter("a").Add(1)
	snap := r.Snapshot()
	if snap["a"] != 4 || snap["b"] != 7 {
		t.Fatalf("snapshot = %v", snap)
	}
	if names := r.Names(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
}

func TestRegistryCounterPointerStable(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("Counter not stable across calls")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("hot").Add(1)
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Snapshot()["hot"]; got != 8000 {
		t.Fatalf("hot = %d, want 8000", got)
	}
}

func TestRegistryJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("wire.bytes_in").Add(123)
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]int64
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got["wire.bytes_in"] != 123 {
		t.Fatalf("json = %s", raw)
	}
}

func TestDefaultRegistryHelpers(t *testing.T) {
	Counter("test.default.counter").Add(5)
	if Snapshot()["test.default.counter"] < 5 {
		t.Fatalf("default snapshot = %v", Snapshot())
	}
}

func TestStatsJSONRoundTrip(t *testing.T) {
	// Stats must stay JSON-serializable: /metrics.json embeds a snapshot.
	s := Stats{InputBytes: 10, DupChunks: 3}
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var got Stats
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatalf("round trip: %+v != %+v", got, s)
	}
}
