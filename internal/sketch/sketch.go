// Package sketch implements a count-min sketch — the sublinear frequency
// estimator behind the FBC (frequency-based chunking) baseline. FBC needs
// "frequency information of chunks estimated from data that have been
// previously processed" (the paper's §II summary of Lu et al.); a count-min
// sketch provides an always-overestimating count in constant space and
// time, which is exactly the shape FBC's re-chunking decision needs: a
// chunk whose estimate is below the threshold is certainly infrequent.
package sketch

import (
	"encoding/binary"
	"fmt"

	"mhdedup/internal/hashutil"
)

// CountMin is a count-min sketch over hashutil.Sum keys. The zero value is
// not usable; construct with New.
type CountMin struct {
	rows  int
	width uint64
	cells []uint32
	adds  uint64
}

// New returns a sketch with the given number of rows (hash functions) and
// counters per row. Standard sizing: width = ⌈e/ε⌉ for additive error
// ε·N, rows = ⌈ln(1/δ)⌉ for confidence 1−δ.
func New(rows, width int) (*CountMin, error) {
	if rows <= 0 || rows > 16 {
		return nil, fmt.Errorf("sketch: rows must be in [1,16], got %d", rows)
	}
	if width <= 0 {
		return nil, fmt.Errorf("sketch: width must be positive, got %d", width)
	}
	return &CountMin{
		rows:  rows,
		width: uint64(width),
		cells: make([]uint32, rows*width),
	}, nil
}

// positions derives the per-row cell indices from the key via double
// hashing on two words of the (already uniform) content hash.
func (c *CountMin) position(row int, key hashutil.Sum) int {
	h1 := binary.LittleEndian.Uint64(key[0:8])
	h2 := binary.LittleEndian.Uint64(key[8:16]) | 1 // odd stride
	return row*int(c.width) + int((h1+uint64(row)*h2)%c.width)
}

// Add increments the count for key.
func (c *CountMin) Add(key hashutil.Sum) {
	for r := 0; r < c.rows; r++ {
		p := c.position(r, key)
		if c.cells[p] != ^uint32(0) { // saturate, never wrap
			c.cells[p]++
		}
	}
	c.adds++
}

// Estimate returns the estimated count for key. The estimate never
// underestimates the true count.
func (c *CountMin) Estimate(key hashutil.Sum) uint32 {
	min := ^uint32(0)
	for r := 0; r < c.rows; r++ {
		if v := c.cells[c.position(r, key)]; v < min {
			min = v
		}
	}
	return min
}

// Adds returns the total number of Add calls.
func (c *CountMin) Adds() uint64 { return c.adds }

// SizeBytes returns the sketch's memory footprint.
func (c *CountMin) SizeBytes() int64 {
	return int64(len(c.cells)) * 4
}

// Reset clears all counters.
func (c *CountMin) Reset() {
	for i := range c.cells {
		c.cells[i] = 0
	}
	c.adds = 0
}
