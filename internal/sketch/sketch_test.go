package sketch

import (
	"encoding/binary"
	"testing"
	"testing/quick"

	"mhdedup/internal/hashutil"
)

func keyOf(i uint64) hashutil.Sum {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], i)
	return hashutil.SumBytes(b[:])
}

func TestNeverUnderestimates(t *testing.T) {
	c, err := New(4, 1024)
	if err != nil {
		t.Fatal(err)
	}
	truth := map[uint64]uint32{}
	for i := uint64(0); i < 5000; i++ {
		k := i % 200 // 200 keys, 25 adds each
		c.Add(keyOf(k))
		truth[k]++
	}
	for k, want := range truth {
		if got := c.Estimate(keyOf(k)); got < want {
			t.Fatalf("key %d: estimate %d < true count %d", k, got, want)
		}
	}
}

func TestEstimateAccuracyAtLowLoad(t *testing.T) {
	c, _ := New(4, 1<<14)
	for i := uint64(0); i < 1000; i++ {
		c.Add(keyOf(i))
	}
	// With load far below width, estimates should be nearly exact.
	exact := 0
	for i := uint64(0); i < 1000; i++ {
		if c.Estimate(keyOf(i)) == 1 {
			exact++
		}
	}
	if exact < 950 {
		t.Errorf("only %d/1000 exact estimates at trivial load", exact)
	}
	if got := c.Estimate(keyOf(99999)); got > 2 {
		t.Errorf("absent key estimated at %d", got)
	}
}

func TestFrequentKeysStandOut(t *testing.T) {
	c, _ := New(4, 4096)
	hot := keyOf(7)
	for i := 0; i < 500; i++ {
		c.Add(hot)
	}
	for i := uint64(100); i < 1100; i++ {
		c.Add(keyOf(i))
	}
	if got := c.Estimate(hot); got < 500 {
		t.Errorf("hot key estimate %d < 500", got)
	}
	cold := 0
	for i := uint64(100); i < 200; i++ {
		if c.Estimate(keyOf(i)) < 10 {
			cold++
		}
	}
	if cold < 90 {
		t.Errorf("only %d/100 cold keys estimated cold", cold)
	}
}

func TestMonotoneProperty(t *testing.T) {
	c, _ := New(3, 512)
	f := func(data []byte) bool {
		k := hashutil.SumBytes(data)
		before := c.Estimate(k)
		c.Add(k)
		return c.Estimate(k) >= before+1 || c.Estimate(k) == ^uint32(0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResetAndAccounting(t *testing.T) {
	c, _ := New(2, 64)
	c.Add(keyOf(1))
	c.Add(keyOf(1))
	if c.Adds() != 2 {
		t.Errorf("Adds = %d", c.Adds())
	}
	if c.SizeBytes() != 2*64*4 {
		t.Errorf("SizeBytes = %d", c.SizeBytes())
	}
	c.Reset()
	if c.Estimate(keyOf(1)) != 0 || c.Adds() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestValidation(t *testing.T) {
	for _, bad := range [][2]int{{0, 10}, {17, 10}, {4, 0}, {-1, 5}, {4, -2}} {
		if _, err := New(bad[0], bad[1]); err == nil {
			t.Errorf("New(%d,%d) accepted", bad[0], bad[1])
		}
	}
}
