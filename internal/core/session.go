package core

import (
	"context"
	"fmt"
	"io"
	"sync"
)

// Session is one ingest stream's handle on a shared Dedup. Deduplication of
// a single backup stream is inherently ordered — the hysteresis buffer,
// match extension and HHR all depend on seeing the stream's chunks in order
// — so a Session's PutFile calls must not overlap. But sessions are
// independent of each other: N Sessions may run PutFile concurrently on the
// same Dedup, each carrying only per-file private state (fileState) and
// funneling every shared access through the engine's striped indexes,
// per-manifest locks, atomic bloom filter and locked disk.
//
// A Session holds no state between files (fileState lives for one PutFile),
// so it is merely an ordering token: one Session ≡ one stream.
type Session struct {
	d *Dedup
}

// NewSession returns a session for one concurrent ingest stream. Sessions
// are cheap; create one per stream.
func (d *Dedup) NewSession() *Session {
	return &Session{d: d}
}

// PutFile deduplicates one input file on this session's stream. Files of
// one session must be fed in backup-stream order and must not overlap;
// PutFile calls on different sessions of the same Dedup may run
// concurrently.
func (s *Session) PutFile(name string, r io.Reader) error {
	return s.d.putFile(context.Background(), name, r)
}

// PutFileContext is PutFile with cancellation: the ingest aborts between
// chunks as soon as ctx is done and returns ctx.Err(). A server holding
// one session per network connection cancels the context when the
// connection dies, so an abandoned upload stops consuming the engine
// instead of running to stream end. The partially ingested file writes no
// FileManifest, so it is not restorable; chunk data already flushed for it
// remains until a sweep, exactly as for any other mid-file error.
//
// Cancellation is checked per chunk, so a reader blocked in Read defers
// it; callers that own the reader (a net.Conn, an io.Pipe) should also
// close it on cancel to unblock immediately.
func (s *Session) PutFileContext(ctx context.Context, name string, r io.Reader) error {
	return s.d.putFile(ctx, name, r)
}

// Item is one input file of a stream: a name (the Restore key, unique
// across the whole Dedup) and an opener returning its contents. The opener
// runs on the worker goroutine that ingests the stream, so ingest I/O
// overlaps across streams.
type Item struct {
	Name string
	Open func() (io.ReadCloser, error)
}

// Stream is an ordered sequence of input files sharing backup-stream
// locality — one machine's disk-image history, one tape rotation. Items are
// always ingested in order within a stream; different streams may be
// ingested concurrently.
type Stream struct {
	Name  string
	Items []Item
}

// IngestStreams deduplicates the given streams using up to workers
// concurrent sessions.
//
// workers ≤ 1 ingests the streams sequentially, in slice order, on the
// calling goroutine — exactly the loop a serial caller would write around
// PutFile, so the result is bit-identical to the serial engine (the
// determinism regression test pins this).
//
// workers > 1 starts min(workers, len(streams)) goroutines, each owning one
// Session; streams are handed out in slice order from a channel, so a free
// worker always takes the earliest unstarted stream. The first error stops
// the hand-out, remaining workers finish their current file and exit, and
// that first error is returned. Aggregate totals (input bytes, chunk
// counts, stored bytes) are independent of the interleaving when streams
// share no content; see the concurrency stress test.
func (d *Dedup) IngestStreams(workers int, streams []Stream) error {
	return d.IngestStreamsContext(context.Background(), workers, streams)
}

// IngestStreamsContext is IngestStreams with cancellation: once ctx is
// done no further file is started, in-flight PutFiles abort at their next
// chunk, and the first error returned is ctx.Err() (unless a worker
// failed first). This is the path a network server uses to abort a
// client's ingest when its connection dies.
func (d *Dedup) IngestStreamsContext(ctx context.Context, workers int, streams []Stream) error {
	if workers <= 1 || len(streams) <= 1 {
		s := d.NewSession()
		for _, st := range streams {
			if err := ingestStream(ctx, s, st); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > len(streams) {
		workers = len(streams)
	}
	feed := make(chan Stream)
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		failed   = make(chan struct{})
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			close(failed)
		})
	}
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := d.NewSession()
			for st := range feed {
				if err := ingestStream(ctx, s, st); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	// Feed streams in order; stop early once any worker failed or the
	// context was cancelled.
feeding:
	for _, st := range streams {
		select {
		case feed <- st:
		case <-failed:
			break feeding
		case <-ctx.Done():
			fail(ctx.Err())
			break feeding
		}
	}
	close(feed)
	wg.Wait()
	return firstErr
}

// ingestStream runs one stream's items, in order, through one session.
func ingestStream(ctx context.Context, s *Session, st Stream) error {
	for _, it := range st.Items {
		if err := ctx.Err(); err != nil {
			return err
		}
		r, err := it.Open()
		if err != nil {
			return fmt.Errorf("core: open %q (stream %q): %w", it.Name, st.Name, err)
		}
		putErr := s.PutFileContext(ctx, it.Name, r)
		closeErr := r.Close()
		if putErr != nil {
			return putErr
		}
		if closeErr != nil {
			return fmt.Errorf("core: close %q (stream %q): %w", it.Name, st.Name, closeErr)
		}
	}
	return nil
}
