package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"runtime"
	"testing"

	"mhdedup/internal/chunker"
)

// TestPipelineParityWithSynchronous is the pipeline's master test: with any
// worker count, every statistic and every restored byte must be identical
// to the synchronous path.
func TestPipelineParityWithSynchronous(t *testing.T) {
	base := randBytes(201, 400_000)
	files := map[string][]byte{"a": base}
	order := []string{"a"}
	for i := int64(1); i <= 3; i++ {
		e := append([]byte(nil), base...)
		copy(e[90_000*i:], randBytes(700+i, 7_000))
		name := fmt.Sprintf("p%d", i)
		files[name] = e
		order = append(order, name)
	}

	sync := ingest(t, testConfig(), files, order)
	for _, workers := range []int{1, 2, 4, 16} {
		cfg := testConfig()
		cfg.HashWorkers = workers
		par := ingest(t, cfg, files, order)
		checkRestore(t, par, files)
		if par.Stats() != sync.Stats() {
			t.Errorf("workers=%d: stats differ from synchronous run\nsync: %+v\npar:  %+v",
				workers, sync.Stats(), par.Stats())
		}
		if par.Report().MetadataBytes != sync.Report().MetadataBytes {
			t.Errorf("workers=%d: metadata differs", workers)
		}
	}
}

func TestPipelineErrorPropagation(t *testing.T) {
	cfg := testConfig()
	cfg.HashWorkers = 4
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("stream died")
	err = d.PutFile("x", io.MultiReader(
		bytes.NewReader(randBytes(203, 100_000)),
		&failingReader{err: boom},
	))
	if !errors.Is(err, boom) {
		t.Errorf("pipeline error = %v, want the reader's error", err)
	}
	// The engine must remain usable for subsequent files.
	if err := d.PutFile("y", bytes.NewReader(randBytes(204, 50_000))); err != nil {
		t.Fatalf("engine unusable after failed file: %v", err)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
}

// failingReader yields an error immediately.
type failingReader struct{ err error }

func (r *failingReader) Read([]byte) (int, error) { return 0, r.err }

// endlessChunker produces chunks forever — a stand-in for an input stream
// much longer than the pipeline's read-ahead.
type endlessChunker struct{ n int }

func (c *endlessChunker) Next() (chunker.Chunk, error) {
	c.n++
	return chunker.Chunk{Data: randBytes(int64(c.n), 4096)}, nil
}

// TestPipelineStopMidStreamNoGoroutineLeak abandons a pipeline with chunks
// still queued, workers mid-hash and the reader blocked on read-ahead —
// stop() must unwind all of them. The goroutine count is the leak oracle.
func TestPipelineStopMidStreamNoGoroutineLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		p := newChunkPipeline(&endlessChunker{}, 4)
		// Consume a few chunks so slots, workers and the reader are all in
		// flight, then walk away mid-stream.
		for j := 0; j < 5; j++ {
			if item := p.next(); item.err != nil {
				t.Fatalf("next: %v", item.err)
			}
		}
		p.stop()
	}
	waitForGoroutines(t, baseline)
}

// TestPipelineStopAfterExhaustion: stop() after the stream drained to its
// terminal error must be a clean no-op (this is the normal PutFile path —
// the deferred stop always runs).
func TestPipelineStopAfterExhaustion(t *testing.T) {
	baseline := runtime.NumGoroutine()
	var chunks []chunker.Chunk
	for i := 0; i < 8; i++ {
		chunks = append(chunks, chunker.Chunk{Data: randBytes(int64(300+i), 2048)})
	}
	p := newChunkPipeline(&sliceChunker{chunks: chunks}, 4)
	var got int
	for {
		item := p.next()
		if item.err == io.EOF || item.err == errPipelineClosed {
			break
		}
		if item.err != nil {
			t.Fatalf("next: %v", item.err)
		}
		got++
	}
	if got != len(chunks) {
		t.Errorf("drained %d chunks, want %d", got, len(chunks))
	}
	p.stop()
	waitForGoroutines(t, baseline)
}

// TestPutFileAbortReleasesPipeline: a PutFile that dies mid-stream (reader
// error) must tear its pipeline down via the deferred stop — no goroutine
// may outlive the call.
func TestPutFileAbortReleasesPipeline(t *testing.T) {
	cfg := testConfig()
	cfg.HashWorkers = 4
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()
	boom := errors.New("stream died")
	for i := 0; i < 5; i++ {
		err := d.PutFile(fmt.Sprintf("x%d", i), io.MultiReader(
			bytes.NewReader(randBytes(int64(500+i), 200_000)),
			&failingReader{err: boom},
		))
		if !errors.Is(err, boom) {
			t.Fatalf("PutFile error = %v, want %v", err, boom)
		}
	}
	waitForGoroutines(t, baseline)
}

func TestPipelineEmptyAndTinyFiles(t *testing.T) {
	cfg := testConfig()
	cfg.HashWorkers = 8
	files := map[string][]byte{"empty": {}, "tiny": []byte("abc"), "tiny2": []byte("abc")}
	d := ingest(t, cfg, files, []string{"empty", "tiny", "tiny2"})
	checkRestore(t, d, files)
}

func TestPipelineWorkerCountValidation(t *testing.T) {
	cfg := testConfig()
	cfg.HashWorkers = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative HashWorkers accepted")
	}
}

func BenchmarkIngestSynchronous(b *testing.B) { benchIngestWorkers(b, 0) }
func BenchmarkIngestPipeline4(b *testing.B)   { benchIngestWorkers(b, 4) }

func benchIngestWorkers(b *testing.B, workers int) {
	data := randBytes(1, 8<<20)
	cfg := DefaultConfig()
	cfg.ECS = 4096
	cfg.SD = 16
	cfg.HashWorkers = workers
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := d.PutFile("f", bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
		if err := d.Finish(); err != nil {
			b.Fatal(err)
		}
	}
}
