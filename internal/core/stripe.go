package core

import (
	"encoding/binary"
	"sync"

	"mhdedup/internal/hashutil"
)

// Striped locking for the shared hash→location indexes.
//
// The concurrent ingest engine shares two hash-keyed maps across sessions:
// the flat cache index (entry hash → name of the cached manifest holding
// it, Fig 4's "cache of Manifests, each organized as a hash table"
// flattened) and, in SI-MHD mode, the sparse hook index (hook hash →
// manifest name). A single mutex over either map would serialize every
// chunk of every stream on one lock; instead the key space is sharded into
// numStripes independent maps, each behind its own RWMutex, selected by the
// low bits of the (uniformly distributed) SHA-1 key. Two sessions contend
// only when they touch the same stripe at the same instant — expected
// 1/numStripes of the time — and the common lookup path takes a read lock,
// so concurrent readers of one stripe do not block each other at all.
//
// The same stripe locks double as the hook-publication locks: finishFile
// holds the key's stripe write lock across its check-then-create of an
// on-disk hook (or sparse-index insert), making duplicate-hook suppression
// atomic when two sessions finish files containing identical content.

// numStripes is the shard count of every striped structure. 64 stripes keep
// the expected contention probability under 2% for 8 sessions while costing
// only 64 small maps; it must be a power of two so stripe selection is a
// mask.
const numStripes = 64

// stripeOf maps a hash to its stripe: the low bits of the little-endian
// word formed by the hash's first 8 bytes (SHA-1 output is uniform, so any
// fixed bit window balances; the low bits match how the bloom filter
// derives its probe words). The mapping is pure and stable — the same hash
// always lands on the same stripe, which is what makes the per-stripe lock
// a lock over "all operations concerning this hash".
func stripeOf(h hashutil.Sum) int {
	return int(binary.LittleEndian.Uint64(h[:8]) & (numStripes - 1))
}

// stripedIndex is a hash→hash map sharded over numStripes lock-guarded
// maps. Used for the cache index (entry hash → manifest name) and the
// sparse hook index (hook hash → manifest name).
type stripedIndex struct {
	shards [numStripes]indexShard
}

type indexShard struct {
	mu sync.RWMutex
	m  map[hashutil.Sum]hashutil.Sum
}

// newStripedIndex returns an empty index.
func newStripedIndex() *stripedIndex {
	idx := &stripedIndex{}
	for i := range idx.shards {
		idx.shards[i].m = make(map[hashutil.Sum]hashutil.Sum)
	}
	return idx
}

// get returns the value for key, if present.
func (s *stripedIndex) get(key hashutil.Sum) (hashutil.Sum, bool) {
	sh := &s.shards[stripeOf(key)]
	sh.mu.RLock()
	v, ok := sh.m[key]
	sh.mu.RUnlock()
	return v, ok
}

// put sets key→val unconditionally.
func (s *stripedIndex) put(key, val hashutil.Sum) {
	sh := &s.shards[stripeOf(key)]
	sh.mu.Lock()
	sh.m[key] = val
	sh.mu.Unlock()
}

// putIfAbsent sets key→val only if key has no value yet, and reports
// whether it inserted. This is the atomic first-writer-wins insert the
// sparse index needs (the paper keeps the first manifest a hook pointed
// at).
func (s *stripedIndex) putIfAbsent(key, val hashutil.Sum) bool {
	sh := &s.shards[stripeOf(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.m[key]; dup {
		return false
	}
	sh.m[key] = val
	return true
}

// deleteIf removes key only while it still maps to val (so a stale-entry
// cleanup cannot erase a mapping another session just refreshed).
func (s *stripedIndex) deleteIf(key, val hashutil.Sum) {
	sh := &s.shards[stripeOf(key)]
	sh.mu.Lock()
	if cur, ok := sh.m[key]; ok && cur == val {
		delete(sh.m, key)
	}
	sh.mu.Unlock()
}

// del removes key unconditionally.
func (s *stripedIndex) del(key hashutil.Sum) {
	sh := &s.shards[stripeOf(key)]
	sh.mu.Lock()
	delete(sh.m, key)
	sh.mu.Unlock()
}

// len returns the total entry count across stripes (each stripe read under
// its lock; the sum is a consistent-enough RAM estimate, exact when no
// writer is active).
func (s *stripedIndex) len() int {
	var n int
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// publishLocks are the per-hash-stripe mutexes serializing hook
// publication (check-then-create of on-disk hooks and bloom insertion) so
// two sessions finishing files with identical hooks cannot double-create.
type publishLocks struct {
	mu [numStripes]sync.Mutex
}

// lock acquires the publication lock for h's stripe and returns the unlock
// function.
func (p *publishLocks) lock(h hashutil.Sum) func() {
	mu := &p.mu[stripeOf(h)]
	mu.Lock()
	return mu.Unlock
}
