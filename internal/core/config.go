// Package core implements MHD — the paper's Metadata Harnessing
// Deduplication algorithm (§III): content-defined chunking with Sampling
// and Hash Merging (SHM), duplicate detection through an in-memory bloom
// filter, on-disk Hooks and an LRU cache of Manifests, Bi-Directional Match
// Extension (BME/FME) around every hit, and Hysteresis Hash Re-chunking
// (HHR) that splits a merged chunk only when it straddles duplicate and
// non-duplicate data.
package core

import (
	"fmt"

	"mhdedup/internal/chunker"
	"mhdedup/internal/rabin"
)

// Config parameterizes an MHD (BF-MHD) deduplicator.
type Config struct {
	// ECS is the expected (small) chunk size in bytes — the paper sweeps
	// 512..8192.
	ECS int
	// SD is the Sample Distance in hashes: every SD-th non-duplicate chunk
	// becomes a Hook, the SD−1 in between merge into one hash.
	SD int
	// BloomBytes sizes the in-memory bloom filter (the paper used 100 MB
	// for its 1 TB trace; scale with the workload).
	BloomBytes int
	// BloomHashes is the filter's probe count.
	BloomHashes int
	// CacheManifests is the LRU manifest cache capacity.
	CacheManifests int
	// ByteCompare enables HHR's byte-level boundary search inside merged
	// chunks (on in the paper; exposed for the ablation bench).
	ByteCompare bool
	// EdgeHash enables the EdgeHash guard that stops a duplicate slice
	// from triggering the same HHR reload twice (on in the paper; exposed
	// for the ablation bench).
	EdgeHash bool
	// UseBloom enables the bloom filter; disabled, every fresh hash costs
	// a disk hook query (Table II's "without bloom filter" rows).
	UseBloom bool
	// SparseIndex selects the SI-MHD variant §V mentions: hooks live in an
	// in-RAM index mapping hook hash → manifest (as in SparseIndexing)
	// instead of as on-disk hook objects behind a bloom filter. Duplicate
	// hook detection then costs no disk access at all, at the price of RAM
	// proportional to N/SD. UseBloom is ignored in this mode.
	SparseIndex bool
	// SHMPerSlice selects the alternative SHM strategy §III mentions:
	// the hysteresis buffer is flushed whenever a duplicate slice ends, so
	// every non-duplicate data slice of the input stream owns at least one
	// Hook. The default (false) is the paper's implementation: flush half
	// the buffer when it fills.
	SHMPerSlice bool
	// TTTD selects the two-thresholds-two-divisors chunker instead of the
	// basic Rabin chunker (both are content-defined; TTTD keeps even
	// max-forced cuts content-defined).
	TTTD bool
	// FastCDC selects the gear-hash chunker (Xia et al., ATC'16) — a
	// post-paper extension roughly 2× faster than Rabin scanning with a
	// tighter chunk-size distribution.
	FastCDC bool
	// HashWorkers > 0 enables the parallel ingest pipeline: chunking and
	// SHA-1 run on up to HashWorkers goroutines ahead of the (inherently
	// sequential) dedup stage, with chunks delivered in input order. The
	// result is bit-identical to the synchronous path. Zero keeps ingest
	// fully synchronous. The pipeline pays off only with spare cores —
	// on a single-CPU machine its hand-off overhead makes ingest slower,
	// so leave it off there (see BenchmarkIngestPipeline4).
	HashWorkers int
	// ReferenceChunker selects the per-byte reference chunker scan instead
	// of the block-processed fast path. Both produce bit-identical cut
	// sequences (pinned by the chunker conformance harness), so this knob
	// changes throughput only; it exists for differential benchmarking.
	ReferenceChunker bool
	// IngestWorkers caps how many backup streams IngestStreams deduplicates
	// concurrently. 0 or 1 runs streams sequentially in order — bit-identical
	// to feeding PutFile from a single loop; N > 1 runs up to N sessions in
	// parallel, each owning one stream's ordered files while sharing the
	// striped indexes, bloom filter, manifest cache and disk. Totals (input
	// bytes, chunk counts, stored bytes) are exact regardless of N; RAM peaks
	// and disk-access interleavings may differ run to run when N > 1.
	IngestWorkers int
	// Poly optionally overrides the Rabin polynomial.
	Poly rabin.Poly
	// RecipeTrees stores file recipes as deduplicated recipe trees (the
	// ref stream content-defined into content-addressed chunks with a
	// Merkle-style root) instead of flat FileManifest objects. Trees give
	// O(log n) ranged restore and cross-snapshot recipe dedup, and carry
	// full 64-bit offsets; the flat format refuses refs past 4 GiB.
	RecipeTrees bool
}

// DefaultConfig returns the paper-faithful configuration at library scale.
func DefaultConfig() Config {
	return Config{
		ECS:            4096,
		SD:             64,
		BloomBytes:     1 << 20,
		BloomHashes:    5,
		CacheManifests: 64,
		ByteCompare:    true,
		EdgeHash:       true,
		UseBloom:       true,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.ECS <= 0 {
		return fmt.Errorf("core: ECS must be positive, got %d", c.ECS)
	}
	if c.SD < 2 {
		return fmt.Errorf("core: SD must be at least 2, got %d", c.SD)
	}
	if c.UseBloom && c.BloomBytes <= 0 {
		return fmt.Errorf("core: BloomBytes must be positive, got %d", c.BloomBytes)
	}
	if c.UseBloom && (c.BloomHashes <= 0 || c.BloomHashes > 32) {
		return fmt.Errorf("core: BloomHashes must be in [1,32], got %d", c.BloomHashes)
	}
	if c.CacheManifests <= 0 {
		return fmt.Errorf("core: CacheManifests must be positive, got %d", c.CacheManifests)
	}
	if c.HashWorkers < 0 {
		return fmt.Errorf("core: HashWorkers must be non-negative, got %d", c.HashWorkers)
	}
	if c.IngestWorkers < 0 {
		return fmt.Errorf("core: IngestWorkers must be non-negative, got %d", c.IngestWorkers)
	}
	if c.TTTD && c.FastCDC {
		return fmt.Errorf("core: TTTD and FastCDC are mutually exclusive")
	}
	return nil
}

// chunkerParams maps the configuration onto chunker parameters.
func (c Config) chunkerParams() chunker.Params {
	return chunker.Params{ECS: c.ECS, Poly: c.Poly, Reference: c.ReferenceChunker}
}
