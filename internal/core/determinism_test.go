package core

import (
	"bytes"
	"fmt"
	"io"
	"reflect"
	"testing"

	"mhdedup/internal/metrics"
	"mhdedup/internal/simdisk"
	"mhdedup/internal/trace"
)

// diskSnapshot reads every stored object into a map keyed by
// "category/name". Taken after Report (reads bump disk counters).
func diskSnapshot(t *testing.T, d *Dedup) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, cat := range []simdisk.Category{
		simdisk.Data, simdisk.Hook, simdisk.Manifest, simdisk.FileManifest,
	} {
		for _, name := range d.Disk().Names(cat) {
			data, err := d.Disk().Read(cat, name)
			if err != nil {
				t.Fatalf("read %v/%s: %v", cat, name, err)
			}
			out[fmt.Sprintf("%v/%s", cat, name)] = data
		}
	}
	return out
}

// runVariant ingests the dataset with the given config and feeding strategy
// and returns its Report and full disk contents.
func runVariant(t *testing.T, cfg Config, ds *trace.Dataset, feed func(*Dedup) error) (metrics.Report, map[string][]byte) {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := feed(d); err != nil {
		t.Fatal(err)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	rep := d.Report()
	return rep, diskSnapshot(t, d)
}

// compareSnapshots asserts two disk states are byte-identical.
func compareSnapshots(t *testing.T, label string, want, got map[string][]byte) {
	t.Helper()
	if len(want) != len(got) {
		t.Errorf("%s: object count %d, baseline %d", label, len(got), len(want))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("%s: object %s missing", label, name)
			continue
		}
		if !bytes.Equal(w, g) {
			t.Errorf("%s: object %s differs (%d vs %d bytes)", label, name, len(g), len(w))
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("%s: extra object %s", label, name)
		}
	}
}

// TestSingleStreamDeterminism is the serial-parity regression test: a
// one-worker IngestStreams run and a HashWorkers-pipelined run must both
// produce a store byte-identical to the plain PutFile loop and an
// identical metrics.Report. This pins the tentpole invariant that
// `-parallel 1` IS the serial engine, not merely an equivalent of it.
func TestSingleStreamDeterminism(t *testing.T) {
	cfg := trace.Default()
	cfg.Machines = 3
	cfg.Days = 3
	cfg.SnapshotBytes = 256 << 10
	cfg.EditsPerDay = 6
	cfg.EditBytes = 8 << 10
	ds, err := trace.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	serialFeed := func(d *Dedup) error {
		return ds.EachFile(func(info trace.FileInfo, r io.Reader) error {
			return d.PutFile(info.Name, r)
		})
	}
	// IngestStreams with one worker must walk the same files in the same
	// order: machine streams are fed in slice order, day by day — exactly
	// the EachFile order (machine-major, day-minor).
	streamFeed := func(d *Dedup) error {
		return d.IngestStreams(1, machineStreams(ds))
	}

	for _, mode := range []struct {
		name   string
		sparse bool
	}{{"bf-mhd", false}, {"si-mhd", true}} {
		t.Run(mode.name, func(t *testing.T) {
			ecfg := stressConfig(mode.sparse)
			ecfg.CacheManifests = 2 // force evictions; they must replay identically

			wantRep, wantDisk := runVariant(t, ecfg, ds, serialFeed)

			gotRep, gotDisk := runVariant(t, ecfg, ds, streamFeed)
			if !reflect.DeepEqual(gotRep, wantRep) {
				t.Errorf("IngestStreams(1) report differs:\n got %+v\nwant %+v", gotRep, wantRep)
			}
			compareSnapshots(t, "IngestStreams(1)", wantDisk, gotDisk)

			// The hash pipeline changes only WHO computes the SHA-1s, not
			// any observable result.
			pcfg := ecfg
			pcfg.HashWorkers = 2
			pipeRep, pipeDisk := runVariant(t, pcfg, ds, serialFeed)
			if !reflect.DeepEqual(pipeRep, wantRep) {
				t.Errorf("HashWorkers=2 report differs:\n got %+v\nwant %+v", pipeRep, wantRep)
			}
			compareSnapshots(t, "HashWorkers=2", wantDisk, pipeDisk)

			// Both together: one ingest worker over the pipelined chunker.
			bcfg := ecfg
			bcfg.HashWorkers = 2
			bothRep, bothDisk := runVariant(t, bcfg, ds, streamFeed)
			if !reflect.DeepEqual(bothRep, wantRep) {
				t.Errorf("IngestStreams(1)+HashWorkers report differs:\n got %+v\nwant %+v", bothRep, wantRep)
			}
			compareSnapshots(t, "IngestStreams(1)+HashWorkers", wantDisk, bothDisk)
		})
	}
}
