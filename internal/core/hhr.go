package core

import (
	"bytes"

	"mhdedup/internal/hashutil"
	"mhdedup/internal/store"
)

// Hysteresis Hash Re-chunking (§III, Fig 6). When match extension stops at
// a merged manifest entry — a single hash covering what were several chunks
// — the duplicate/non-duplicate boundary may lie *inside* that entry. The
// merged chunk's bytes are reloaded from disk and byte-compared against the
// buffered (BME) or prefetched (FME) chunks: the matched region is
// deduplicated, and the entry is spliced into at most three new entries —
// the unmatched remainder (still merged, so a later slice can split it
// again), an EdgeHash over the boundary block (a plain entry that stops the
// same duplicate slice from triggering an identical reload next time), and
// the now-shared region.
//
// Only KindMerged entries are ever reloaded: hooks must survive verbatim
// (they are on-disk index entry points) and plain entries are already at
// final granularity — that restriction is the hysteresis that bounds HHR's
// disk cost (Fig 10(b)).

// minInt64 avoids importing a dependency for two-value min on int64.
func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// hhrSplit performs the splice shared by both directions: entry i of m
// becomes [remainder r | edge b | shared s] in the given byte order
// (backward: remainder first; forward: shared first). Offsets are assigned
// from e.Start across the pieces in order. Returns the new entries.
func (d *Dedup) hhrSplit(m *store.Manifest, i int, old []byte, sizes [3]int64, kinds [3]store.EntryKind) ([]store.Entry, error) {
	e := m.Entries[i]
	var pieces []store.Entry
	off := e.Start
	var consumed int64
	for p := 0; p < 3; p++ {
		n := sizes[p]
		if n <= 0 {
			continue
		}
		pieces = append(pieces, store.Entry{
			Hash:  hashutil.SumBytes(old[consumed : consumed+n]),
			Start: off,
			Size:  n,
			Kind:  kinds[p],
		})
		off += n
		consumed += n
	}
	d.stats.HashedBytes.Add(consumed)
	wasClean := !m.Dirty()
	if err := m.Splice(i, pieces...); err != nil {
		return nil, err
	}
	d.indexEntries(m, pieces)
	d.stats.HHROps.Add(1)
	if wasClean {
		// The write-back this dirtying forces (at eviction or Finish) is
		// charged to HHR, per the paper's "at most three disk accesses per
		// duplicate slice" accounting.
		d.stats.HHRDiskAccesses.Add(1)
	}
	return pieces, nil
}

// hhrBackward handles a BME mismatch at entry i. It reloads the merged
// chunk, byte-compares its suffix against the tail of the pending buffer
// (whole chunks only — the buffer's chunk boundaries are the paper's
// comparison grid, cf. Chunk N3 in Fig 6), consumes the matched tail as
// duplicates and splices the entry. It returns how many extra entries the
// splice inserted before the hit index.
func (d *Dedup) hhrBackward(f *fileState, m *store.Manifest, i int) (shift int, err error) {
	e := m.Entries[i]
	if !d.cfg.ByteCompare || e.Kind != store.KindMerged {
		return 0, nil
	}
	old, err := d.st.ReadDiskChunkRange(m.ContainerOf(e), e.Start, e.Size)
	if err != nil {
		return 0, err
	}
	d.stats.HHRDiskAccesses.Add(1)

	// Longest suffix of whole pending chunks matching old's suffix.
	var s int64
	k := len(f.pending)
	for k > 0 {
		c := f.pending[k-1].data
		n := int64(len(c))
		if s+n > e.Size || !bytes.Equal(c, old[e.Size-s-n:e.Size-s]) {
			break
		}
		s += n
		k--
	}
	var b int64
	if d.cfg.EdgeHash && s < e.Size && k > 0 {
		// Boundary block sized like the first mismatching buffered chunk
		// (the paper's "EdgeHash ... with the same size of Chunk N3").
		b = minInt64(int64(len(f.pending[k-1].data)), e.Size-s)
	}
	if s == 0 && b == 0 {
		return 0, nil
	}
	if s > 0 {
		// Consume the matched tail as duplicates of old's suffix region.
		container := m.ContainerOf(e)
		off := e.Start + (e.Size - s)
		for _, pc := range f.pending[k:] {
			d.resolveDup(f, pc, container, off)
			off += int64(len(pc.data))
		}
		f.pending = f.pending[:k]
	}
	r := e.Size - s - b
	pieces, err := d.hhrSplit(m, i, old,
		[3]int64{r, b, s},
		[3]store.EntryKind{store.KindMerged, store.KindPlain, store.KindPlain})
	if err != nil {
		return 0, err
	}
	return len(pieces) - 1, nil
}

// hhrForward handles an FME mismatch at entry i: reload, byte-compare old's
// prefix against the prefetched chunks, consume the matched prefix as
// duplicates, splice [shared s | edge b | remainder r]. Returns how many
// prefetched chunks were consumed.
func (d *Dedup) hhrForward(f *fileState, m *store.Manifest, i int, pre []pchunk) (consumed int, err error) {
	e := m.Entries[i]
	if !d.cfg.ByteCompare || e.Kind != store.KindMerged {
		return 0, nil
	}
	old, err := d.st.ReadDiskChunkRange(m.ContainerOf(e), e.Start, e.Size)
	if err != nil {
		return 0, err
	}
	d.stats.HHRDiskAccesses.Add(1)

	var s int64
	k := 0
	for k < len(pre) {
		c := pre[k].data
		n := int64(len(c))
		if s+n > e.Size || !bytes.Equal(c, old[s:s+n]) {
			break
		}
		s += n
		k++
	}
	var b int64
	if d.cfg.EdgeHash && s < e.Size && k < len(pre) {
		b = minInt64(int64(len(pre[k].data)), e.Size-s)
	}
	if s == 0 && b == 0 {
		return 0, nil
	}
	if s > 0 {
		container := m.ContainerOf(e)
		off := e.Start
		for _, pc := range pre[:k] {
			d.resolveDup(f, pc, container, off)
			off += int64(len(pc.data))
		}
	}
	r := e.Size - s - b
	if _, err := d.hhrSplit(m, i, old,
		[3]int64{s, b, r},
		[3]store.EntryKind{store.KindPlain, store.KindPlain, store.KindMerged}); err != nil {
		return 0, err
	}
	return k, nil
}
