package core

import (
	"bytes"
	"io"
	"testing"

	"mhdedup/internal/chunker"
	"mhdedup/internal/hashutil"
	"mhdedup/internal/store"
)

// extFixture stores `content` as one DiskChunk described by a manifest with
// the given entry layout (sizes tiling the content; kinds aligned), giving
// BME/FME a controlled manifest to extend over.
func extFixture(t *testing.T, cfg Config, content []byte, sizes []int64, kinds []store.EntryKind) (*Dedup, *store.Manifest) {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	name := d.st.NextName()
	if err := d.st.WriteDiskChunk(name, content); err != nil {
		t.Fatal(err)
	}
	m := store.NewManifest(name, store.FormatMHD)
	var off int64
	for i, sz := range sizes {
		m.Append(store.Entry{
			Hash:  hashutil.SumBytes(content[off : off+sz]),
			Start: off,
			Size:  sz,
			Kind:  kinds[i],
		})
		off += sz
	}
	if off != int64(len(content)) {
		t.Fatalf("fixture sizes tile %d of %d bytes", off, len(content))
	}
	if err := d.st.CreateManifest(m); err != nil {
		t.Fatal(err)
	}
	return d, m
}

func TestBMEConsumesAlignedTail(t *testing.T) {
	// Manifest: [1024 hook][3072 merged][1024 hook]. Pending holds chunks
	// exactly covering the merged region (1024-byte chunks); the hit is on
	// the final hook. BME must consume the whole merged region by rehash,
	// then the leading hook, with no HHR.
	content := randBytes(950, 5120)
	cfg := testConfig()
	d, m := extFixture(t, cfg, content,
		[]int64{1024, 3072, 1024},
		[]store.EntryKind{store.KindHook, store.KindMerged, store.KindHook})

	pending := mkPending(content[:4096], 1024) // 4 chunks: hook + merged region
	f := &fileState{name: "f", chunkName: d.st.NextName(), pending: pending}
	for i := range f.pending {
		f.pending[i].slot = i
		f.slots = append(f.slots, slotState{size: 1024})
	}
	shift, err := d.bme(f, m, 2) // hit at the trailing hook
	if err != nil {
		t.Fatal(err)
	}
	if shift != 0 {
		t.Errorf("aligned BME should not splice (shift=%d)", shift)
	}
	if len(f.pending) != 0 {
		t.Errorf("pending = %d, want 0 (everything matched)", len(f.pending))
	}
	if d.stats.HHROps.Load() != 0 {
		t.Error("aligned match must not trigger HHR")
	}
	for i := 0; i < 4; i++ {
		if !f.slots[i].dup {
			t.Errorf("slot %d not marked duplicate", i)
		}
	}
	// Refs point into the old chunk at the right offsets.
	if f.slots[0].ref.Start != 0 || f.slots[1].ref.Start != 1024 {
		t.Error("BME refs misplaced")
	}
}

func TestBMEStopsAtMismatchWithoutPending(t *testing.T) {
	content := randBytes(951, 2048)
	cfg := testConfig()
	d, m := extFixture(t, cfg, content,
		[]int64{1024, 1024},
		[]store.EntryKind{store.KindMerged, store.KindHook})
	f := &fileState{name: "f"}
	shift, err := d.bme(f, m, 1)
	if err != nil || shift != 0 {
		t.Errorf("empty pending: shift=%d err=%v", shift, err)
	}
	if d.stats.HHRDiskAccesses.Load() != 0 {
		t.Error("empty pending must not reload anything")
	}
}

// drainPipe pulls every chunk from a chunker for FME fixtures.
type sliceChunker struct {
	chunks []chunker.Chunk
	i      int
}

func (s *sliceChunker) Next() (chunker.Chunk, error) {
	if s.i >= len(s.chunks) {
		return chunker.Chunk{}, io.EOF
	}
	c := s.chunks[s.i]
	s.i++
	return c, nil
}

func TestFMEExtendsForwardAcrossEntries(t *testing.T) {
	// Manifest: [hook 1024][merged 2048][hook 1024]. The incoming stream
	// matches everything after the hit on the first hook; FME must resolve
	// all of it as duplicates with zero HHR.
	content := randBytes(952, 4096)
	cfg := testConfig()
	d, m := extFixture(t, cfg, content,
		[]int64{1024, 2048, 1024},
		[]store.EntryKind{store.KindHook, store.KindMerged, store.KindHook})

	// Stream chunks: 1024-byte pieces of the content after the first hook.
	var chunks []chunker.Chunk
	for off := 1024; off < 4096; off += 1024 {
		chunks = append(chunks, chunker.Chunk{Data: content[off : off+1024]})
	}
	src := &sliceChunker{chunks: chunks}
	f := &fileState{name: "f", chunkName: d.st.NextName()}
	f.manifest = store.NewManifest(f.chunkName, store.FormatMHD)

	if err := d.fme(f, src, m, 0); err != nil {
		t.Fatal(err)
	}
	if d.stats.HHROps.Load() != 0 {
		t.Error("fully matching forward extension must not trigger HHR")
	}
	if len(f.replay) != 0 {
		t.Errorf("replay = %d chunks, want 0", len(f.replay))
	}
	if len(f.slots) != 3 {
		t.Fatalf("slots = %d, want 3", len(f.slots))
	}
	for i, s := range f.slots {
		if !s.resolved || !s.dup {
			t.Errorf("slot %d not resolved as dup", i)
		}
	}
}

func TestFMEPushesUnmatchedChunksToReplay(t *testing.T) {
	content := randBytes(953, 2048)
	cfg := testConfig()
	d, m := extFixture(t, cfg, content,
		[]int64{1024, 1024},
		[]store.EntryKind{store.KindHook, store.KindHook})

	// Stream: one chunk that does NOT match entry 1.
	foreign := randBytes(954, 1024)
	src := &sliceChunker{chunks: []chunker.Chunk{{Data: foreign}}}
	f := &fileState{name: "f", chunkName: d.st.NextName()}
	f.manifest = store.NewManifest(f.chunkName, store.FormatMHD)

	if err := d.fme(f, src, m, 0); err != nil {
		t.Fatal(err)
	}
	if len(f.replay) != 1 || !bytes.Equal(f.replay[0].data, foreign) {
		t.Fatalf("unmatched prefetch not replayed: %d items", len(f.replay))
	}
	if f.slots[0].resolved {
		t.Error("unmatched chunk must stay unresolved for normal processing")
	}
}

func TestExtendMatchFullPath(t *testing.T) {
	// End-to-end extendMatch: pending tail matches backwards, stream
	// matches forwards, the hit chunk resolves in place.
	content := randBytes(955, 3072)
	cfg := testConfig()
	d, m := extFixture(t, cfg, content,
		[]int64{1024, 1024, 1024},
		[]store.EntryKind{store.KindHook, store.KindHook, store.KindHook})

	f := &fileState{name: "f", chunkName: d.st.NextName()}
	f.manifest = store.NewManifest(f.chunkName, store.FormatMHD)
	// Pending: the chunk before the hit.
	pc0 := pchunk{data: content[:1024], hash: hashutil.SumBytes(content[:1024]), slot: 0}
	f.slots = append(f.slots, slotState{size: 1024})
	f.pending = []pchunk{pc0}
	// Hit chunk: entry 1.
	hit := pchunk{data: content[1024:2048], hash: hashutil.SumBytes(content[1024:2048]), slot: 1}
	f.slots = append(f.slots, slotState{size: 1024})
	// Stream continues with entry 2's bytes.
	src := &sliceChunker{chunks: []chunker.Chunk{{Data: content[2048:]}}}

	if err := d.extendMatch(f, src, m, 1, hit); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !f.slots[i].resolved || !f.slots[i].dup {
			t.Fatalf("slot %d unresolved after extendMatch", i)
		}
	}
	if f.slots[0].ref.Start != 0 || f.slots[1].ref.Start != 1024 || f.slots[2].ref.Start != 2048 {
		t.Error("extendMatch refs misplaced")
	}
}
