package core

import (
	"runtime"
	"sync"

	"mhdedup/internal/chunker"
	"mhdedup/internal/hashutil"
)

// The parallel ingest pipeline. Deduplication itself is an ordered,
// stateful process (the hysteresis buffer, match extension and HHR all
// depend on stream order), but chunk hashing is embarrassingly parallel
// and dominates the CPU cost of ingest. With HashWorkers > 0, PutFile
// overlaps Rabin scanning and SHA-1 with the dedup stage:
//
//	chunker goroutine ──► SHA-1 worker pool ──► in-order delivery ──► dedup
//
// Order is preserved with the classic ordered fan-out idiom: the reader
// assigns each chunk a one-buffered result slot and queues the slots in
// input order; workers fill slots as they finish; the consumer drains the
// queue in order. Results — chunk classification, metadata, statistics —
// are bit-identical to the synchronous path, which tests verify.

// hashedChunk is one pipeline item: a chunk with its digest, or a terminal
// error from the chunker.
type hashedChunk struct {
	data []byte
	hash hashutil.Sum
	err  error
}

// chunkPipeline produces hashed chunks of one input stream in order.
type chunkPipeline struct {
	queue chan chan hashedChunk
	done  chan struct{}
	wg    sync.WaitGroup
}

// newChunkPipeline starts the pipeline over ch with the given worker count.
func newChunkPipeline(ch chunker.Chunker, workers int) *chunkPipeline {
	if workers > runtime.NumCPU() {
		workers = runtime.NumCPU()
	}
	if workers < 1 {
		workers = 1
	}
	p := &chunkPipeline{
		// Queue depth bounds read-ahead: enough to keep workers busy
		// without buffering unbounded chunk data.
		queue: make(chan chan hashedChunk, workers*4),
		done:  make(chan struct{}),
	}
	work := make(chan struct {
		data []byte
		slot chan hashedChunk
	}, workers*4)

	// Reader: pulls chunks in order, queues one slot per chunk.
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer close(p.queue)
		defer close(work)
		for {
			c, err := ch.Next()
			if err != nil {
				slot := make(chan hashedChunk, 1)
				slot <- hashedChunk{err: err}
				select {
				case p.queue <- slot:
				case <-p.done:
				}
				return
			}
			slot := make(chan hashedChunk, 1)
			select {
			case p.queue <- slot:
			case <-p.done:
				return
			}
			select {
			case work <- struct {
				data []byte
				slot chan hashedChunk
			}{c.Data, slot}:
			case <-p.done:
				return
			}
		}
	}()

	// Workers: hash out of order, deliver into the per-chunk slot.
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for item := range work {
				item.slot <- hashedChunk{data: item.data, hash: hashutil.SumBytes(item.data)}
			}
		}()
	}
	return p
}

// next returns the next hashed chunk in input order.
func (p *chunkPipeline) next() hashedChunk {
	slot, ok := <-p.queue
	if !ok {
		return hashedChunk{err: errPipelineClosed}
	}
	return <-slot
}

// stop tears the pipeline down (safe after normal exhaustion too).
func (p *chunkPipeline) stop() {
	close(p.done)
	// Drain remaining slots so workers blocked on slot sends can finish.
	for slot := range p.queue {
		select {
		case <-slot:
		default:
		}
	}
	p.wg.Wait()
}

// errPipelineClosed signals the queue closed without a terminal item; it is
// mapped to io.EOF by the caller (the chunker's own error always arrives
// first in normal operation).
var errPipelineClosed = pipelineClosedError{}

type pipelineClosedError struct{}

func (pipelineClosedError) Error() string { return "core: chunk pipeline closed" }
