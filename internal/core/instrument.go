package core

import "mhdedup/internal/metrics"

// Hot-path latency histograms, resolved once against the process-wide
// metrics.Default registry (stable pointers — see metrics.GetHistogram).
// The engine records into Default rather than a plumbed-through registry
// on purpose: every embedder (dedupd, the CLIs, bench) shares one
// engine-latency view, and the per-observation cost is four atomic adds,
// cheap enough to leave on unconditionally.
//
// All values are nanoseconds.
var (
	// hChunkNS is the time to acquire the next hashed chunk — the
	// chunker boundary scan plus SHA-1, or the pipeline hand-off wait
	// when HashWorkers > 0.
	hChunkNS = metrics.GetHistogram("core.chunk_ns")
	// hLookupNS is one flat cache-index lookup (hash → cached manifest).
	hLookupNS = metrics.GetHistogram("core.lookup_ns")
	// hHookProbeNS is one duplicate-detection probe on the miss path:
	// sparse-index get (SI-MHD) or bloom + on-disk hook existence check
	// plus hook read (MHD).
	hHookProbeNS = metrics.GetHistogram("core.hook_probe_ns")
	// hManifestLoadNS is one manifest fetched from disk into the cache
	// (cache hits are not recorded — they cost a map lookup).
	hManifestLoadNS = metrics.GetHistogram("core.manifest_load_ns")
)
