package core

import (
	"mhdedup/internal/chunker"
	"mhdedup/internal/hashutil"
	"mhdedup/internal/store"
)

// extendMatch handles a confirmed duplicate hit (Fig 4 → Fig 6): the
// HitChunk itself is resolved against the manifest entry, then the match is
// extended backwards over the hysteresis buffer (BME) and forwards over
// prefetched chunks (FME), re-chunking merged entries that straddle the
// duplicate/non-duplicate boundary (HHR).
func (d *Dedup) extendMatch(f *fileState, ch chunker.Chunker, m *store.Manifest, hitIdx int, hit pchunk) error {
	e := m.Entries[hitIdx]
	d.resolveDup(f, hit, m.ContainerOf(e), e.Start)
	// A backward HHR splice replaces one entry before the hit with several,
	// shifting the hit's index; bme reports the shift.
	shift, err := d.bme(f, m, hitIdx)
	if err != nil {
		return err
	}
	if d.cfg.SHMPerSlice && len(f.pending) > 0 {
		// Alternative SHM strategy (§III): the surviving buffered chunks
		// form a complete non-duplicate slice — flush it now so the slice
		// owns at least one Hook.
		if err := d.flushPending(f, len(f.pending)); err != nil {
			return err
		}
	}
	return d.fme(f, ch, m, hitIdx+shift)
}

// hashRun digests the concatenated bytes of a run of chunks.
func hashRun(run []pchunk) hashutil.Sum {
	h := hashutil.NewHasher()
	for _, pc := range run {
		h.Write(pc.data)
	}
	return h.Sum()
}

// bme is Backward Match Extension: walk manifest entries before the hit,
// re-hash the tail of the pending buffer at each entry's recorded
// granularity and compare (the "new hash values calculated for the buffered
// chunk bytes before the HitChunk" of §III). The walk stops at the first
// mismatch, where HHR takes over if the mismatched entry is a merged chunk
// covering the duplicate/non-duplicate edge.
func (d *Dedup) bme(f *fileState, m *store.Manifest, hitIdx int) (shift int, err error) {
	for i := hitIdx - 1; i >= 0 && len(f.pending) > 0; i-- {
		e := m.Entries[i]
		// Gather pending chunks from the tail whose sizes sum to e.Size.
		j := len(f.pending)
		var sum int64
		for j > 0 && sum < e.Size {
			j--
			sum += int64(len(f.pending[j].data))
		}
		if sum == e.Size {
			d.stats.HashedBytes.Add(sum)
			if hashRun(f.pending[j:]) == e.Hash {
				d.consumeTailAsDup(f, j, m, e)
				continue
			}
		}
		// Mismatch: the duplicate/non-duplicate edge lies at or inside e.
		return d.hhrBackward(f, m, i)
	}
	return 0, nil
}

// consumeTailAsDup resolves pending[j:] as duplicates of entry e's region
// and removes them from the buffer.
func (d *Dedup) consumeTailAsDup(f *fileState, j int, m *store.Manifest, e store.Entry) {
	container := m.ContainerOf(e)
	off := e.Start
	for _, pc := range f.pending[j:] {
		d.resolveDup(f, pc, container, off)
		off += int64(len(pc.data))
	}
	f.pending = f.pending[:j]
}

// fme is Forward Match Extension: prefetch chunks past the hit and compare
// them, at manifest granularity, with the entries after the HitHash.
// Prefetched chunks that do not extend the duplicate region go back on the
// replay queue and re-enter the normal deduplication flow (§III).
func (d *Dedup) fme(f *fileState, ch chunker.Chunker, m *store.Manifest, hitIdx int) error {
	var pre []pchunk
	defer func() {
		// Unconsumed prefetches precede whatever was already queued.
		if len(pre) > 0 {
			f.replay = append(append([]pchunk{}, pre...), f.replay...)
		}
	}()
	for i := hitIdx + 1; i < len(m.Entries); i++ {
		e := m.Entries[i]
		var total int64
		for _, pc := range pre {
			total += int64(len(pc.data))
		}
		for total < e.Size {
			pc, ok, err := d.nextChunk(f, ch)
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			pre = append(pre, pc)
			total += int64(len(pc.data))
		}
		// Take the prefix of pre summing exactly to e.Size.
		k := 0
		var sum int64
		for k < len(pre) && sum < e.Size {
			sum += int64(len(pre[k].data))
			k++
		}
		if sum == e.Size {
			d.stats.HashedBytes.Add(sum)
			if hashRun(pre[:k]) == e.Hash {
				container := m.ContainerOf(e)
				off := e.Start
				for _, pc := range pre[:k] {
					d.resolveDup(f, pc, container, off)
					off += int64(len(pc.data))
				}
				pre = pre[k:]
				continue
			}
		}
		// Mismatch: forward HHR may recover a duplicate prefix inside e.
		consumed, err := d.hhrForward(f, m, i, pre)
		if err != nil {
			return err
		}
		pre = pre[consumed:]
		return nil
	}
	return nil
}
