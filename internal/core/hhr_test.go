package core

import (
	"bytes"
	"testing"

	"mhdedup/internal/hashutil"
	"mhdedup/internal/store"
)

// hhrFixture builds a Dedup whose disk holds one DiskChunk of given bytes
// with a single-entry manifest covering it as one merged region — the
// minimal stage on which to exercise the HHR split paths directly.
func hhrFixture(t *testing.T, cfg Config, content []byte) (*Dedup, *store.Manifest) {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	name := d.st.NextName()
	if err := d.st.WriteDiskChunk(name, content); err != nil {
		t.Fatal(err)
	}
	m := store.NewManifest(name, store.FormatMHD)
	m.Append(store.Entry{
		Hash:  hashutil.SumBytes(content),
		Start: 0,
		Size:  int64(len(content)),
		Kind:  store.KindMerged,
	})
	if err := d.st.CreateManifest(m); err != nil {
		t.Fatal(err)
	}
	return d, m
}

func mkPending(data []byte, chunkSize int) []pchunk {
	var out []pchunk
	for off := 0; off < len(data); off += chunkSize {
		end := off + chunkSize
		if end > len(data) {
			end = len(data)
		}
		out = append(out, pchunk{data: data[off:end], hash: hashutil.SumBytes(data[off:end])})
	}
	return out
}

func TestHHRBackwardSplitsAtByteBoundary(t *testing.T) {
	cfg := testConfig()
	old := randBytes(901, 4096) // one merged 4 KiB region
	d, m := hhrFixture(t, cfg, old)

	// Pending buffer: 2 mismatching chunks followed by 2 chunks matching
	// old's suffix (the Fig 6 shape: N3 then duplicate 4,5).
	suffix := old[2048:]
	pending := append(mkPending(randBytes(902, 2048), 1024), mkPending(suffix, 1024)...)
	f := &fileState{name: "f", chunkName: d.st.NextName(), pending: pending}
	f.manifest = store.NewManifest(f.chunkName, store.FormatMHD)
	for _, pc := range pending {
		f.slots = append(f.slots, slotState{size: int64(len(pc.data))})
	}
	for i := range f.pending {
		f.pending[i].slot = i
	}

	shift, err := d.hhrBackward(f, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if shift != 2 { // [remainder merged][edge plain][shared plain] = 3 entries, +2
		t.Errorf("shift = %d, want 2", shift)
	}
	if len(m.Entries) != 3 {
		t.Fatalf("entries = %d, want 3", len(m.Entries))
	}
	r, b, s := m.Entries[0], m.Entries[1], m.Entries[2]
	if r.Kind != store.KindMerged || b.Kind != store.KindPlain || s.Kind != store.KindPlain {
		t.Errorf("kinds = %v/%v/%v, want merged/plain/plain", r.Kind, b.Kind, s.Kind)
	}
	if s.Size != 2048 {
		t.Errorf("shared region size = %d, want 2048", s.Size)
	}
	if b.Size != 1024 { // sized like the first mismatching pending chunk
		t.Errorf("edge size = %d, want 1024", b.Size)
	}
	if r.Start != 0 || b.Start != r.Size || s.Start != r.Size+b.Size {
		t.Error("split pieces do not tile the original region")
	}
	if s.Hash != hashutil.SumBytes(old[2048:]) {
		t.Error("shared-region hash mismatch")
	}
	// The two matching pending chunks were consumed as duplicates.
	if len(f.pending) != 2 {
		t.Errorf("pending = %d chunks, want 2", len(f.pending))
	}
	if !f.slots[2].resolved || !f.slots[2].dup || !f.slots[3].dup {
		t.Error("matched chunks not resolved as duplicates")
	}
	if f.slots[2].ref.Start != 2048 {
		t.Errorf("dup ref start = %d, want 2048", f.slots[2].ref.Start)
	}
	if !m.Dirty() {
		t.Error("HHR must dirty the manifest")
	}
	if d.stats.HHROps.Load() != 1 {
		t.Errorf("HHROps = %d, want 1", d.stats.HHROps.Load())
	}
}

func TestHHRForwardSplitsPrefix(t *testing.T) {
	cfg := testConfig()
	old := randBytes(903, 4096)
	d, m := hhrFixture(t, cfg, old)

	// Prefetched chunks: 2 matching old's prefix, then a mismatch.
	pre := append(mkPending(old[:2048], 1024), mkPending(randBytes(904, 1024), 1024)...)
	f := &fileState{name: "f", chunkName: d.st.NextName()}
	f.manifest = store.NewManifest(f.chunkName, store.FormatMHD)
	for i := range pre {
		pre[i].slot = i
		f.slots = append(f.slots, slotState{size: int64(len(pre[i].data))})
	}

	consumed, err := d.hhrForward(f, m, 0, pre)
	if err != nil {
		t.Fatal(err)
	}
	if consumed != 2 {
		t.Errorf("consumed = %d, want 2", consumed)
	}
	if len(m.Entries) != 3 {
		t.Fatalf("entries = %d, want 3", len(m.Entries))
	}
	s, b, r := m.Entries[0], m.Entries[1], m.Entries[2]
	if s.Kind != store.KindPlain || s.Size != 2048 || s.Start != 0 {
		t.Errorf("shared prefix entry wrong: %+v", s)
	}
	if b.Kind != store.KindPlain || b.Size != 1024 {
		t.Errorf("edge entry wrong: %+v", b)
	}
	if r.Kind != store.KindMerged || r.Size != 1024 {
		t.Errorf("remainder entry wrong: %+v", r)
	}
	if !f.slots[0].dup || !f.slots[1].dup || f.slots[2].resolved {
		t.Error("slot resolution wrong after forward HHR")
	}
}

func TestHHRRefusesNonMergedEntries(t *testing.T) {
	cfg := testConfig()
	old := randBytes(905, 2048)
	d, m := hhrFixture(t, cfg, old)
	m.Entries[0].Kind = store.KindHook // hooks must never be re-chunked
	f := &fileState{name: "f", pending: mkPending(old[1024:], 1024)}
	before := d.stats.HHRDiskAccesses.Load()
	shift, err := d.hhrBackward(f, m, 0)
	if err != nil || shift != 0 {
		t.Errorf("hook entry was processed: shift=%d err=%v", shift, err)
	}
	if d.stats.HHRDiskAccesses.Load() != before {
		t.Error("hook entry caused a chunk reload")
	}
	if len(m.Entries) != 1 || m.Dirty() {
		t.Error("hook entry was modified")
	}
}

func TestHHRNoMatchNoEdgeLeavesEntryIntact(t *testing.T) {
	cfg := testConfig()
	cfg.EdgeHash = false
	old := randBytes(906, 2048)
	d, m := hhrFixture(t, cfg, old)
	// Pending shares nothing with old.
	f := &fileState{name: "f", pending: mkPending(randBytes(907, 2048), 1024)}
	shift, err := d.hhrBackward(f, m, 0)
	if err != nil || shift != 0 {
		t.Fatalf("shift=%d err=%v", shift, err)
	}
	if len(m.Entries) != 1 || m.Dirty() {
		t.Error("no-match case must leave the manifest untouched (EdgeHash off)")
	}
	// The reload itself is still charged — that is the repeat cost the
	// EdgeHash exists to stop.
	if d.stats.HHRDiskAccesses.Load() == 0 {
		t.Error("byte comparison requires a reload even when nothing matches")
	}
}

func TestHHRNoMatchWithEdgePlantsGuard(t *testing.T) {
	cfg := testConfig()
	old := randBytes(908, 2048)
	d, m := hhrFixture(t, cfg, old)
	f := &fileState{name: "f", pending: mkPending(randBytes(909, 2048), 1024)}
	shift, err := d.hhrBackward(f, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if shift != 1 || len(m.Entries) != 2 {
		t.Fatalf("expected [remainder][edge] split, got %d entries", len(m.Entries))
	}
	edge := m.Entries[1]
	if edge.Kind != store.KindPlain || edge.Size != 1024 {
		t.Errorf("edge guard wrong: %+v", edge)
	}
	// A second identical attempt stops at the plain edge without reload.
	before := d.stats.HHRDiskAccesses.Load()
	if _, err := d.hhrBackward(f, m, 1); err != nil {
		t.Fatal(err)
	}
	if d.stats.HHRDiskAccesses.Load() != before {
		t.Error("edge guard did not prevent the repeat reload")
	}
}

func TestHHRWholeEntryMatchedViaBytes(t *testing.T) {
	// Pending chunk boundaries that don't sum to the entry size force the
	// byte path even when the whole entry is duplicate.
	cfg := testConfig()
	old := randBytes(910, 3000)
	d, m := hhrFixture(t, cfg, old)
	// Chunks of 1000 bytes: 3 chunks exactly covering old.
	pending := mkPending(old, 1000)
	f := &fileState{name: "f", chunkName: d.st.NextName(), pending: pending}
	for i := range f.pending {
		f.pending[i].slot = i
		f.slots = append(f.slots, slotState{size: 1000})
	}
	if _, err := d.hhrBackward(f, m, 0); err != nil {
		t.Fatal(err)
	}
	if len(f.pending) != 0 {
		t.Errorf("whole-match left %d pending chunks", len(f.pending))
	}
	if len(m.Entries) != 1 || m.Entries[0].Kind != store.KindPlain {
		t.Errorf("whole-match should yield one plain entry, got %+v", m.Entries)
	}
	if m.Entries[0].Size != 3000 {
		t.Errorf("entry size = %d", m.Entries[0].Size)
	}
}

func TestHHRSplitPiecesRestoreConcatenation(t *testing.T) {
	// Whatever the split, the pieces must tile the region so restores that
	// reference them reproduce the original bytes.
	cfg := testConfig()
	old := randBytes(911, 8192)
	d, m := hhrFixture(t, cfg, old)
	pending := mkPending(old[5000:], 700) // unaligned suffix match
	f := &fileState{name: "f", chunkName: d.st.NextName(), pending: pending}
	for i := range f.pending {
		f.pending[i].slot = i
		f.slots = append(f.slots, slotState{size: int64(len(f.pending[i].data))})
	}
	if _, err := d.hhrBackward(f, m, 0); err != nil {
		t.Fatal(err)
	}
	var rebuilt []byte
	for _, e := range m.Entries {
		part, err := d.st.ReadDiskChunkRange(m.ContainerOf(e), e.Start, e.Size)
		if err != nil {
			t.Fatal(err)
		}
		if hashutil.SumBytes(part) != e.Hash {
			t.Error("entry hash does not match its bytes")
		}
		rebuilt = append(rebuilt, part...)
	}
	if !bytes.Equal(rebuilt, old) {
		t.Error("split pieces do not reconstruct the original region")
	}
}
