package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// ingestVariant runs the given config over a base + edited-files workload
// and returns the finished Dedup.
func ingestVariant(t *testing.T, cfg Config) *Dedup {
	t.Helper()
	base := randBytes(71, 400_000)
	files := map[string][]byte{"a": base}
	order := []string{"a"}
	for i := int64(1); i <= 3; i++ {
		e := append([]byte(nil), base...)
		copy(e[100_000*i:], randBytes(500+i, 6_000))
		name := fmt.Sprintf("v%d", i)
		files[name] = e
		order = append(order, name)
	}
	d := ingest(t, cfg, files, order)
	checkRestore(t, d, files)
	checkInvariants(t, d)
	return d
}

func TestSHMPerSliceStrategy(t *testing.T) {
	cfg := testConfig()
	buffered := ingestVariant(t, cfg)
	cfg.SHMPerSlice = true
	perSlice := ingestVariant(t, cfg)

	// Per-slice SHM guarantees at least one hook per non-duplicate slice,
	// so it produces at least as many hooks as buffer-flush SHM.
	bh := buffered.Report().InodesHook
	ph := perSlice.Report().InodesHook
	if ph < bh {
		t.Errorf("per-slice SHM produced fewer hooks (%d) than buffered SHM (%d)", ph, bh)
	}
	// And it must not lose deduplication.
	if perSlice.Stats().DupBytes < buffered.Stats().DupBytes*9/10 {
		t.Errorf("per-slice SHM lost dedup: %d vs %d dup bytes",
			perSlice.Stats().DupBytes, buffered.Stats().DupBytes)
	}
}

func TestTTTDChunkerVariant(t *testing.T) {
	cfg := testConfig()
	cfg.TTTD = true
	d := ingestVariant(t, cfg)
	if d.Stats().DupBytes == 0 {
		t.Error("TTTD-chunked MHD found no duplicates")
	}
}

func TestVariantsComposable(t *testing.T) {
	cfg := testConfig()
	cfg.TTTD = true
	cfg.SHMPerSlice = true
	cfg.UseBloom = false
	content := randBytes(73, 200_000)
	files := map[string][]byte{"a": content, "b": append([]byte(nil), content...)}
	d := ingest(t, cfg, files, []string{"a", "b"})
	checkRestore(t, d, files)
	if d.Stats().DupBytes != int64(len(content)) {
		t.Errorf("composed variants: dup bytes = %d, want %d", d.Stats().DupBytes, len(content))
	}
}

// TestRandomizedRoundTripProperty is a randomized stress test of the master
// invariant: any mix of unique, duplicate and partially-edited files must
// restore byte-identically under every feature combination.
func TestRandomizedRoundTripProperty(t *testing.T) {
	variants := []func(*Config){
		func(c *Config) {},
		func(c *Config) { c.SHMPerSlice = true },
		func(c *Config) { c.TTTD = true },
		func(c *Config) { c.SD = 2 }, // minimum legal SD
		func(c *Config) { c.CacheManifests = 1 },
	}
	for vi, mut := range variants {
		cfg := testConfig()
		mut(&cfg)
		d, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		files := map[string][]byte{}
		rng := rand.New(rand.NewSource(int64(vi) * 7919))
		var prev []byte
		for i := 0; i < 8; i++ {
			name := fmt.Sprintf("f%d-%d", vi, i)
			var content []byte
			switch {
			case i == 0 || rng.Intn(3) == 0:
				content = randBytes(int64(vi*100+i), 50_000+rng.Intn(150_000))
			case rng.Intn(2) == 0 && prev != nil:
				content = append([]byte(nil), prev...) // exact duplicate
			default: // edited copy of the previous file
				content = append([]byte(nil), prev...)
				off := rng.Intn(len(content) / 2)
				n := rng.Intn(10_000) + 100
				if off+n > len(content) {
					n = len(content) - off
				}
				copy(content[off:], randBytes(int64(i*31+vi), n))
			}
			prev = content
			files[name] = content
			if err := d.PutFile(name, bytes.NewReader(content)); err != nil {
				t.Fatalf("variant %d: PutFile(%s): %v", vi, name, err)
			}
		}
		if err := d.Finish(); err != nil {
			t.Fatal(err)
		}
		for name, want := range files {
			var got bytes.Buffer
			if err := d.Restore(name, &got); err != nil {
				t.Fatalf("variant %d: restore %s: %v", vi, name, err)
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Fatalf("variant %d: %s corrupted on restore", vi, name)
			}
		}
	}
}

func TestFastCDCVariant(t *testing.T) {
	cfg := testConfig()
	cfg.FastCDC = true
	d := ingestVariant(t, cfg)
	if d.Stats().DupBytes == 0 {
		t.Error("FastCDC-chunked MHD found no duplicates")
	}
	bad := testConfig()
	bad.TTTD = true
	bad.FastCDC = true
	if _, err := New(bad); err == nil {
		t.Error("TTTD+FastCDC accepted")
	}
}
