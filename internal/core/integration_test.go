package core

import (
	"bytes"
	"io"
	"testing"

	"mhdedup/internal/trace"
)

// datasetConfig is a small multi-machine backup workload for integration
// testing.
func datasetConfig() trace.Config {
	cfg := trace.Default()
	cfg.Machines = 3
	cfg.Days = 4
	cfg.SnapshotBytes = 1 << 20
	cfg.EditsPerDay = 8
	cfg.EditBytes = 8 << 10
	return cfg
}

// TestDatasetRoundTrip is the master integration test: ingest a synthetic
// multi-machine backup workload and verify every snapshot restores
// byte-identically, with sane dedup statistics.
func TestDatasetRoundTrip(t *testing.T) {
	ds, err := trace.New(datasetConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.ECS = 1024
	cfg.SD = 8
	cfg.BloomBytes = 1 << 18
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	err = ds.EachFile(func(info trace.FileInfo, r io.Reader) error {
		return d.PutFile(info.Name, r)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}

	s := d.Stats()
	if s.InputBytes != ds.TotalBytes() {
		t.Errorf("ingested %d bytes, dataset has %d", s.InputBytes, ds.TotalBytes())
	}
	if s.DupChunks+s.NonDupChunks != s.ChunksIn {
		t.Errorf("chunk classification does not add up: %d + %d != %d", s.DupChunks, s.NonDupChunks, s.ChunksIn)
	}
	if s.StoredDataBytes+s.DupBytes != s.InputBytes {
		t.Errorf("byte classification does not add up")
	}
	r := d.Report()
	if der := r.DataOnlyDER(); der < 2 {
		t.Errorf("data-only DER = %.2f; backup workload should exceed 2", der)
	}
	if r.MetaDataRatio() > 0.05 {
		t.Errorf("MetaDataRatio = %.4f; MHD should stay well below 5%%", r.MetaDataRatio())
	}
	if r.RealDER() >= r.DataOnlyDER() {
		t.Error("real DER must be below data-only DER (metadata costs something)")
	}
	if s.HHROps == 0 {
		t.Error("a realistic edited workload should trigger some HHR")
	}

	// Every file restores byte-identically.
	for _, f := range ds.Files() {
		rd, err := ds.Open(f.Name)
		if err != nil {
			t.Fatal(err)
		}
		want, err := io.ReadAll(rd)
		if err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		if err := d.Restore(f.Name, &got); err != nil {
			t.Fatalf("Restore(%s): %v", f.Name, err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("Restore(%s) differs from input (%d vs %d bytes)", f.Name, got.Len(), len(want))
		}
	}
	t.Logf("dataset: %s", r.String())
}

// TestSDTradeoff checks the Fig 9 direction at small scale: smaller SD
// finds at least as much duplicate data (never less).
func TestSDTradeoff(t *testing.T) {
	ds, err := trace.New(datasetConfig())
	if err != nil {
		t.Fatal(err)
	}
	stored := map[int]int64{}
	meta := map[int]int64{}
	for _, sd := range []int{4, 16, 64} {
		cfg := DefaultConfig()
		cfg.ECS = 1024
		cfg.SD = sd
		cfg.BloomBytes = 1 << 18
		d, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := ds.EachFile(func(info trace.FileInfo, r io.Reader) error {
			return d.PutFile(info.Name, r)
		}); err != nil {
			t.Fatal(err)
		}
		if err := d.Finish(); err != nil {
			t.Fatal(err)
		}
		rep := d.Report()
		stored[sd] = rep.StoredDataBytes
		meta[sd] = rep.MetadataBytes
		t.Logf("SD=%d: %s", sd, rep.String())
	}
	// Larger SD must not produce more metadata (the whole point of SHM).
	if meta[64] > meta[4] {
		t.Errorf("metadata grew with SD: SD=4 %d, SD=64 %d", meta[4], meta[64])
	}
	// Smaller SD should not store dramatically more data than larger SD.
	if stored[4] > stored[64]*3/2 {
		t.Errorf("SD=4 stored %d vs SD=64 %d — smaller SD should dedup at least comparably", stored[4], stored[64])
	}
}
