package core

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"mhdedup/internal/hashutil"
)

// sumWithLowBits builds a Sum whose first 8 little-endian bytes encode v —
// so the expected stripe is v & (numStripes-1) by construction.
func sumWithLowBits(v uint64) hashutil.Sum {
	var h hashutil.Sum
	binary.LittleEndian.PutUint64(h[:8], v)
	return h
}

// TestStripeOf is the table-driven contract of the stripe selector: known
// inputs map to known stripes, the high bytes are ignored, and the mapping
// is pure.
func TestStripeOf(t *testing.T) {
	cases := []struct {
		name string
		v    uint64
		want int
	}{
		{"zero", 0, 0},
		{"one", 1, 1},
		{"last-stripe", numStripes - 1, numStripes - 1},
		{"wraps", numStripes, 0},
		{"wraps+1", numStripes + 1, 1},
		{"high-bits-ignored", 0xFFFF_FFFF_FFFF_FFC0, 0},
		{"mixed", 0xDEAD_BEEF_0000_002A, 0x2A},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := sumWithLowBits(tc.v)
			if got := stripeOf(h); got != tc.want {
				t.Errorf("stripeOf(%#x) = %d, want %d", tc.v, got, tc.want)
			}
			// Purity: same input, same stripe, every time.
			if again := stripeOf(h); again != stripeOf(h) {
				t.Error("stripeOf is not stable")
			}
		})
	}
	// Bytes beyond the first eight must not matter.
	a := sumWithLowBits(7)
	b := a
	for i := 8; i < len(b); i++ {
		b[i] = 0xFF
	}
	if stripeOf(a) != stripeOf(b) {
		t.Error("bytes past the stripe window changed the stripe")
	}
}

// TestStripeOfCoversAllStripes: real (hashed) keys must reach every stripe
// — the selector cannot strand shards, or striping would not reduce
// contention.
func TestStripeOfCoversAllStripes(t *testing.T) {
	seen := make(map[int]bool)
	for i := 0; len(seen) < numStripes; i++ {
		if i >= 64*numStripes {
			t.Fatalf("only %d/%d stripes reached after %d hashed keys", len(seen), numStripes, i)
		}
		h := hashutil.SumBytes([]byte(fmt.Sprintf("key-%d", i)))
		s := stripeOf(h)
		if s < 0 || s >= numStripes {
			t.Fatalf("stripeOf out of range: %d", s)
		}
		seen[s] = true
	}
}

// TestStripedIndexBasics exercises get/put/putIfAbsent/deleteIf/del/len on
// keys spread across shards.
func TestStripedIndexBasics(t *testing.T) {
	idx := newStripedIndex()
	k1 := sumWithLowBits(5)
	k2 := sumWithLowBits(5 + numStripes) // same stripe as k1
	k3 := sumWithLowBits(6)              // different stripe
	v1, v2 := sumWithLowBits(100), sumWithLowBits(200)

	if _, ok := idx.get(k1); ok {
		t.Error("empty index returned a value")
	}
	idx.put(k1, v1)
	idx.put(k2, v1)
	idx.put(k3, v2)
	if got, ok := idx.get(k1); !ok || got != v1 {
		t.Errorf("get(k1) = %v,%v want %v", got, ok, v1)
	}
	if idx.len() != 3 {
		t.Errorf("len = %d, want 3", idx.len())
	}
	if idx.putIfAbsent(k1, v2) {
		t.Error("putIfAbsent overwrote an existing key")
	}
	if got, _ := idx.get(k1); got != v1 {
		t.Error("putIfAbsent changed the stored value")
	}
	if !idx.putIfAbsent(sumWithLowBits(7), v2) {
		t.Error("putIfAbsent refused a fresh key")
	}
	// deleteIf honors the value guard.
	idx.deleteIf(k1, v2) // wrong value: no-op
	if _, ok := idx.get(k1); !ok {
		t.Error("deleteIf removed a mapping with a different value")
	}
	idx.deleteIf(k1, v1)
	if _, ok := idx.get(k1); ok {
		t.Error("deleteIf left a matching mapping behind")
	}
	idx.del(k2)
	if _, ok := idx.get(k2); ok {
		t.Error("del left the key behind")
	}
}

// TestStripedIndexConcurrent hammers one index from many goroutines (run
// under -race): disjoint key ranges per goroutine plus a shared contended
// key exercising putIfAbsent's first-writer-wins guarantee.
func TestStripedIndexConcurrent(t *testing.T) {
	idx := newStripedIndex()
	shared := hashutil.SumBytes([]byte("contended"))
	const goroutines, perG = 8, 200
	winners := make([]bool, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				k := hashutil.SumBytes([]byte(fmt.Sprintf("g%d-%d", g, i)))
				v := sumWithLowBits(uint64(g*perG + i))
				idx.put(k, v)
				if got, ok := idx.get(k); !ok || got != v {
					t.Errorf("g%d: lost own write", g)
					return
				}
				_ = idx.len()
			}
			winners[g] = idx.putIfAbsent(shared, sumWithLowBits(uint64(g)))
		}(g)
	}
	wg.Wait()
	var wins int
	for _, w := range winners {
		if w {
			wins++
		}
	}
	if wins != 1 {
		t.Errorf("putIfAbsent winners = %d, want exactly 1", wins)
	}
	if got, want := idx.len(), goroutines*perG+1; got != want {
		t.Errorf("len = %d, want %d", got, want)
	}
}
