package core

import (
	"fmt"
	"testing"

	"mhdedup/internal/simdisk"
)

// siConfig returns the SI-MHD (sparse-index) variant of the test config.
func siConfig() Config {
	cfg := testConfig()
	cfg.SparseIndex = true
	return cfg
}

func TestSIMHDRoundTripAndDedup(t *testing.T) {
	base := randBytes(81, 300_000)
	files := map[string][]byte{
		"a": base,
		"b": append([]byte(nil), base...),
	}
	d := ingest(t, siConfig(), files, []string{"a", "b"})
	checkRestore(t, d, files)
	checkInvariants(t, d)
	if d.Stats().DupBytes != int64(len(base)) {
		t.Errorf("SI-MHD dup bytes = %d, want %d", d.Stats().DupBytes, len(base))
	}
}

func TestSIMHDNoHookObjectsNoHookQueries(t *testing.T) {
	base := randBytes(83, 300_000)
	edited := append([]byte(nil), base...)
	copy(edited[120_000:], randBytes(84, 8_000))
	files := map[string][]byte{"a": base, "b": edited}

	si := ingest(t, siConfig(), files, []string{"a", "b"})
	bf := ingest(t, testConfig(), files, []string{"a", "b"})

	// SI-MHD keeps hooks in RAM: no hook inodes, no hook disk queries.
	if got := si.Report().InodesHook; got != 0 {
		t.Errorf("SI-MHD created %d hook objects, want 0", got)
	}
	if q := si.Disk().Counters().ExistsQueries.Get(simdisk.Hook); q != 0 {
		t.Errorf("SI-MHD made %d hook disk queries, want 0", q)
	}
	if bf.Report().InodesHook == 0 {
		t.Error("BF-MHD should create hook objects")
	}
	// The RAM trade: SI-MHD charges the index to RAM.
	if si.Stats().RAMBytes == 0 {
		t.Error("SI-MHD RAM accounting missing")
	}
	// Same dedup power: hooks are the same sampled hashes either way.
	if si.Stats().DupBytes != bf.Stats().DupBytes {
		t.Errorf("SI-MHD found %d dup bytes, BF-MHD %d — detection should match",
			si.Stats().DupBytes, bf.Stats().DupBytes)
	}
	// Fewer total disk accesses for SI-MHD (no hook reads/writes).
	if si.Report().Disk.Accesses() >= bf.Report().Disk.Accesses() {
		t.Errorf("SI-MHD accesses %d not below BF-MHD's %d",
			si.Report().Disk.Accesses(), bf.Report().Disk.Accesses())
	}
}

func TestSIMHDManyFiles(t *testing.T) {
	cfg := siConfig()
	cfg.CacheManifests = 2
	base := randBytes(85, 200_000)
	files := map[string][]byte{}
	var order []string
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("f%d", i)
		c := append([]byte(nil), base...)
		copy(c[i*20_000:], randBytes(int64(600+i), 3_000))
		files[name] = c
		order = append(order, name)
	}
	d := ingest(t, cfg, files, order)
	checkRestore(t, d, files)
	checkInvariants(t, d)
	if d.Stats().StoredDataBytes > d.Stats().InputBytes/2 {
		t.Error("SI-MHD failed to deduplicate across files")
	}
}
