package core

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"mhdedup/internal/simdisk"
)

// cancelAfterReader cancels the context after n reads, then keeps
// serving data — so the only way PutFileContext returns early is the
// per-chunk cancellation check.
type cancelAfterReader struct {
	r      io.Reader
	n      int32
	reads  atomic.Int32
	cancel context.CancelFunc
}

func (c *cancelAfterReader) Read(p []byte) (int, error) {
	if c.reads.Add(1) == c.n {
		c.cancel()
	}
	return c.r.Read(p)
}

func testCfg() Config {
	cfg := DefaultConfig()
	cfg.ECS = 512
	cfg.SD = 4
	return cfg
}

func TestPutFileContextCancelAbortsMidFile(t *testing.T) {
	d, err := New(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(data)
	src := &cancelAfterReader{r: io.LimitReader(neverEnding{data}, 1<<30), n: 3, cancel: cancel}
	err = d.NewSession().PutFileContext(ctx, "f", src)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// The aborted file must not be restorable: no FileManifest was
	// written.
	if names := d.Disk().Names(simdisk.FileManifest); len(names) != 0 {
		t.Fatalf("aborted file left FileManifests: %v", names)
	}
	// The engine stays usable for the next file.
	if err := d.PutFile("ok", io.LimitReader(neverEnding{data}, 64<<10)); err != nil {
		t.Fatalf("engine unusable after aborted file: %v", err)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
}

// neverEnding repeats data forever.
type neverEnding struct{ data []byte }

func (n neverEnding) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = n.data[i%len(n.data)]
	}
	return len(p), nil
}

func TestPutFileContextCancelWithPipeline(t *testing.T) {
	cfg := testCfg()
	cfg.HashWorkers = 2
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	data := make([]byte, 4096)
	rand.New(rand.NewSource(2)).Read(data)
	src := &cancelAfterReader{r: io.LimitReader(neverEnding{data}, 1<<30), n: 5, cancel: cancel}
	errCh := make(chan error, 1)
	go func() { errCh <- d.NewSession().PutFileContext(ctx, "f", src) }()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled ingest did not return (pipeline leak?)")
	}
}

func TestIngestStreamsContextCancelStopsWorkers(t *testing.T) {
	d, err := New(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	data := make([]byte, 256<<10)
	rand.New(rand.NewSource(3)).Read(data)
	var opened atomic.Int32
	mk := func(name string) Stream {
		return Stream{Name: name, Items: []Item{{
			Name: name,
			Open: func() (io.ReadCloser, error) {
				if opened.Add(1) == 2 {
					cancel()
				}
				return io.NopCloser(neverEndingLimited(data, 1<<20)), nil
			},
		}}}
	}
	streams := make([]Stream, 16)
	for i := range streams {
		streams[i] = mk(string(rune('a' + i)))
	}
	err = d.IngestStreamsContext(ctx, 4, streams)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// Cancellation must stop the stream hand-out: nowhere near all 16
	// streams should have been opened.
	if n := opened.Load(); int(n) >= len(streams) {
		t.Fatalf("all %d streams opened despite cancellation", n)
	}
}

func neverEndingLimited(data []byte, limit int64) io.Reader {
	return io.LimitReader(neverEnding{data}, limit)
}

func TestIngestStreamsContextPreCancelled(t *testing.T) {
	d, err := New(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	streams := []Stream{{Name: "s", Items: []Item{{
		Name: "f",
		Open: func() (io.ReadCloser, error) {
			t.Error("Open called despite pre-cancelled context")
			return nil, io.EOF
		},
	}}}}
	if err := d.IngestStreamsContext(ctx, 1, streams); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
