package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"testing"
	"time"

	"mhdedup/internal/trace"
)

// machineStreams groups a dataset's files into one ordered Stream per
// machine — the natural backup-stream boundary: days of one machine must
// stay in order, different machines are independent.
func machineStreams(ds *trace.Dataset) []Stream {
	byMachine := map[int]*Stream{}
	var order []int
	for _, f := range ds.Files() {
		name := f.Name
		st, ok := byMachine[f.Machine]
		if !ok {
			st = &Stream{Name: fmt.Sprintf("machine-%d", f.Machine)}
			byMachine[f.Machine] = st
			order = append(order, f.Machine)
		}
		st.Items = append(st.Items, Item{
			Name: name,
			Open: func() (io.ReadCloser, error) {
				r, err := ds.Open(name)
				if err != nil {
					return nil, err
				}
				return io.NopCloser(r), nil
			},
		})
	}
	out := make([]Stream, 0, len(order))
	for _, m := range order {
		out = append(out, *byMachine[m])
	}
	return out
}

// disjointDataset is an 8-machine workload whose machines share NO content
// (SharedFraction 0): every duplicate is within one machine's history, so
// per-stream classification is independent of what other streams do and the
// aggregate totals of a concurrent run must equal the serial run exactly.
func disjointDataset(t *testing.T) *trace.Dataset {
	t.Helper()
	cfg := trace.Default()
	cfg.Machines = 8
	cfg.Days = 3
	cfg.SnapshotBytes = 256 << 10
	cfg.SharedFraction = 0
	cfg.EditsPerDay = 6
	cfg.EditBytes = 8 << 10
	ds, err := trace.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// stressConfig: large enough cache that no manifest is ever evicted, so
// cache-residency (and with it duplicate classification) cannot depend on
// cross-stream eviction timing.
func stressConfig(sparse bool) Config {
	cfg := DefaultConfig()
	cfg.ECS = 1024
	cfg.SD = 8
	cfg.BloomBytes = 1 << 18
	cfg.CacheManifests = 64
	cfg.SparseIndex = sparse
	return cfg
}

// runSerial ingests the dataset with a plain PutFile loop (the pre-
// concurrency calling convention) and returns the finished engine.
func runSerial(t *testing.T, cfg Config, ds *trace.Dataset) *Dedup {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.EachFile(func(info trace.FileInfo, r io.Reader) error {
		return d.PutFile(info.Name, r)
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestConcurrentIngestMatchesSerial is the concurrency stress test: 8
// goroutines ingest 8 disjoint machine streams into one shared engine
// (run it under -race), and every aggregate the streams cannot influence
// in each other must equal the serial run bit-for-bit.
func TestConcurrentIngestMatchesSerial(t *testing.T) {
	for _, mode := range []struct {
		name   string
		sparse bool
	}{{"bf-mhd", false}, {"si-mhd", true}} {
		t.Run(mode.name, func(t *testing.T) {
			ds := disjointDataset(t)
			cfg := stressConfig(mode.sparse)

			serial := runSerial(t, cfg, ds)
			want := serial.Stats()

			par, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := par.IngestStreams(8, machineStreams(ds)); err != nil {
				t.Fatal(err)
			}
			if err := par.Finish(); err != nil {
				t.Fatal(err)
			}
			got := par.Stats()

			// Pure-sum counters must agree exactly with the serial run.
			if got.InputBytes != want.InputBytes {
				t.Errorf("InputBytes = %d, serial %d", got.InputBytes, want.InputBytes)
			}
			if got.ChunksIn != want.ChunksIn {
				t.Errorf("ChunksIn = %d, serial %d", got.ChunksIn, want.ChunksIn)
			}
			if got.StoredDataBytes != want.StoredDataBytes {
				t.Errorf("StoredDataBytes = %d, serial %d", got.StoredDataBytes, want.StoredDataBytes)
			}
			if got.DupBytes != want.DupBytes {
				t.Errorf("DupBytes = %d, serial %d", got.DupBytes, want.DupBytes)
			}
			if got.DupChunks != want.DupChunks || got.NonDupChunks != want.NonDupChunks {
				t.Errorf("chunk classification = %d/%d, serial %d/%d",
					got.DupChunks, got.NonDupChunks, want.DupChunks, want.NonDupChunks)
			}
			if got.FilesTotal != want.FilesTotal || got.Files != want.Files {
				t.Errorf("files = %d/%d, serial %d/%d", got.FilesTotal, got.Files, want.FilesTotal, want.Files)
			}
			if got.StoredDataBytes+got.DupBytes != got.InputBytes {
				t.Error("byte classification does not add up")
			}

			// Every file must restore byte-identically from the concurrent
			// engine.
			for _, f := range ds.Files() {
				rd, err := ds.Open(f.Name)
				if err != nil {
					t.Fatal(err)
				}
				wantBytes, err := io.ReadAll(rd)
				if err != nil {
					t.Fatal(err)
				}
				var gotBytes bytes.Buffer
				if err := par.Restore(f.Name, &gotBytes); err != nil {
					t.Fatalf("Restore(%s): %v", f.Name, err)
				}
				if !bytes.Equal(gotBytes.Bytes(), wantBytes) {
					t.Fatalf("Restore(%s) differs from input", f.Name)
				}
			}
		})
	}
}

// TestConcurrentIngestSharedContent hammers the actual contention paths:
// machines share 60% of their content and the manifest cache is tiny, so
// sessions race on hook publication, manifest extension, eviction
// write-back and orphaned-splice persistence. Exact totals are not
// deterministic here; what must hold is internal consistency and — the
// property everything else exists to protect — byte-identical restore of
// every file. Run under -race.
func TestConcurrentIngestSharedContent(t *testing.T) {
	cfg := trace.Default()
	cfg.Machines = 8
	cfg.Days = 3
	cfg.SnapshotBytes = 256 << 10
	cfg.EditsPerDay = 6
	cfg.EditBytes = 8 << 10
	ds, err := trace.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []struct {
		name   string
		sparse bool
	}{{"bf-mhd", false}, {"si-mhd", true}} {
		t.Run(mode.name, func(t *testing.T) {
			ecfg := stressConfig(mode.sparse)
			ecfg.CacheManifests = 2 // force evictions mid-extension
			d, err := New(ecfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := d.IngestStreams(8, machineStreams(ds)); err != nil {
				t.Fatal(err)
			}
			if err := d.Finish(); err != nil {
				t.Fatal(err)
			}
			s := d.Stats()
			if s.InputBytes != ds.TotalBytes() {
				t.Errorf("InputBytes = %d, dataset has %d", s.InputBytes, ds.TotalBytes())
			}
			if s.DupChunks+s.NonDupChunks != s.ChunksIn {
				t.Errorf("chunk classification does not add up: %d + %d != %d",
					s.DupChunks, s.NonDupChunks, s.ChunksIn)
			}
			if s.StoredDataBytes+s.DupBytes != s.InputBytes {
				t.Error("byte classification does not add up")
			}
			for _, f := range ds.Files() {
				rd, err := ds.Open(f.Name)
				if err != nil {
					t.Fatal(err)
				}
				want, err := io.ReadAll(rd)
				if err != nil {
					t.Fatal(err)
				}
				var got bytes.Buffer
				if err := d.Restore(f.Name, &got); err != nil {
					t.Fatalf("Restore(%s): %v", f.Name, err)
				}
				if !bytes.Equal(got.Bytes(), want) {
					t.Fatalf("Restore(%s) differs from input", f.Name)
				}
			}
		})
	}
}

// TestConcurrentSessionsDirect exercises the raw Session API: 8 goroutines,
// each with its own NewSession, ingesting disjoint files simultaneously
// without the IngestStreams scheduler in between.
func TestConcurrentSessionsDirect(t *testing.T) {
	cfg := stressConfig(false)
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	files := map[string][]byte{}
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("f%d", i)
		// Each file is half unique content, half a repeat of its own first
		// half — in-stream duplication only.
		half := randBytes(int64(1000+i), 128<<10)
		files[name] = append(append([]byte(nil), half...), half...)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := d.NewSession()
			name := fmt.Sprintf("f%d", i)
			errs[i] = s.PutFile(name, bytes.NewReader(files[name]))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	checkRestore(t, d, files)
	if got, want := d.Stats().FilesTotal, int64(8); got != want {
		t.Errorf("FilesTotal = %d, want %d", got, want)
	}
}

// TestIngestStreamsErrorPropagation: the first error stops the run and is
// returned; workers drain without deadlock or goroutine leak.
func TestIngestStreamsErrorPropagation(t *testing.T) {
	cfg := stressConfig(false)
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	var streams []Stream
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("s%d", i)
		if i == 3 {
			streams = append(streams, Stream{Name: name, Items: []Item{{
				Name: name,
				Open: func() (io.ReadCloser, error) { return nil, boom },
			}}})
			continue
		}
		data := randBytes(int64(2000+i), 64<<10)
		streams = append(streams, Stream{Name: name, Items: []Item{{
			Name: name,
			Open: func() (io.ReadCloser, error) {
				return io.NopCloser(bytes.NewReader(data)), nil
			},
		}}})
	}
	before := runtime.NumGoroutine()
	if err := d.IngestStreams(4, streams); !errors.Is(err, boom) {
		t.Fatalf("IngestStreams error = %v, want %v", err, boom)
	}
	waitForGoroutines(t, before)
}

// waitForGoroutines polls until the goroutine count drops back to at most
// the baseline (with slack for runtime background goroutines).
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		runtime.Gosched()
	}
	// One last settle: give blocked goroutines a real chance to exit.
	for i := 0; i < 50; i++ {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d now, baseline %d", runtime.NumGoroutine(), baseline)
}
