package core

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"mhdedup/internal/bloom"
	"mhdedup/internal/chunker"
	"mhdedup/internal/hashutil"
	"mhdedup/internal/lru"
	"mhdedup/internal/metrics"
	"mhdedup/internal/simdisk"
	"mhdedup/internal/store"
)

// Dedup is an MHD deduplicator. Feed input files in stream order with
// PutFile, then call Finish to write back cached state; Stats/Report expose
// the paper's metrics and Restore rebuilds any ingested file.
//
// Concurrency model: deduplication of ONE backup stream is an ordered,
// stateful process (hysteresis buffer, match extension and HHR all depend
// on stream order), but nothing couples DIFFERENT streams — different
// machines' disk images, different days of a rotation — so a Dedup accepts
// N concurrent streams. Each stream is a Session (NewSession) whose
// per-file state (hysteresis buffer, BME/FME context, recipe slots) is
// private; everything shared sits behind fine-grained synchronization:
//
//   - hash→location indexes (cache index, sparse hook index): 64-way
//     striped RWMutexes keyed by low hash bits (stripe.go);
//   - bloom filter: lock-free atomic word access, bit layout unchanged;
//   - manifest LRU cache: internally locked; cache-resident manifests are
//     additionally guarded by a per-manifest mutex held across match
//     extension and eviction write-back;
//   - simulated disk and its cost counters: one mutex inside simdisk, so
//     access totals stay exact;
//   - statistics: metrics.Atomic counters.
//
// Lock order is cache → manifest → {stripe, disk}; no path acquires them
// in the reverse direction, and stripe/disk are leaves.
//
// A single-session run takes exactly the code path of the previous serial
// engine (same operations in the same order), so its manifests, metrics
// and disk counters are bit-identical to the pre-concurrency engine — the
// determinism regression test pins this.
type Dedup struct {
	cfg    Config
	disk   *simdisk.Disk
	st     *store.Store
	filter *bloom.Filter
	cache  *lru.Cache[hashutil.Sum, *store.Manifest]
	// cacheIdx maps every entry hash of every cached manifest to the
	// manifest holding it — the "cache of Manifests, each organized as a
	// hash table" of Fig 4, flattened for O(1) lookup and striped for
	// concurrency.
	cacheIdx *stripedIndex
	// sparseIdx is SI-MHD's in-RAM hook index (hook hash → manifest name);
	// nil in BF-MHD mode.
	sparseIdx *stripedIndex
	// pubLocks serialize hook publication per hash stripe, making the
	// check-then-create of hooks atomic across sessions.
	pubLocks publishLocks

	stats   metrics.Atomic
	peakRAM atomic.Int64

	errMu       sync.Mutex
	evictionErr error

	defaultSession *Session
}

// New returns a Dedup over a fresh simulated disk.
func New(cfg Config) (*Dedup, error) {
	return NewOnDisk(cfg, simdisk.New())
}

// NewOnDisk returns a Dedup writing to the given disk (shared-disk setups
// and failure-injection tests).
func NewOnDisk(cfg Config, disk *simdisk.Disk) (*Dedup, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Dedup{
		cfg:      cfg,
		disk:     disk,
		st:       store.New(disk, store.FormatMHD),
		cacheIdx: newStripedIndex(),
	}
	d.st.SetRecipeConfig(store.RecipeConfig{Trees: cfg.RecipeTrees})
	if cfg.SparseIndex {
		d.sparseIdx = newStripedIndex()
	} else if cfg.UseBloom {
		f, err := bloom.New(cfg.BloomBytes, cfg.BloomHashes)
		if err != nil {
			return nil, err
		}
		d.filter = f
	}
	cache, err := lru.New[hashutil.Sum, *store.Manifest](cfg.CacheManifests, d.onEvict)
	if err != nil {
		return nil, err
	}
	d.cache = cache
	d.defaultSession = &Session{d: d}
	return d, nil
}

// Disk exposes the simulated disk for metrics collection.
func (d *Dedup) Disk() *simdisk.Disk { return d.disk }

// Config returns the configuration.
func (d *Dedup) Config() Config { return d.cfg }

// onEvict writes a dirty manifest back to disk and drops its hashes from
// the flat cache index. Write errors are deferred to Finish (the LRU
// callback cannot fail). It runs with the cache lock held and takes the
// manifest lock, so an eviction racing a match extension in another
// session serializes on the manifest.
func (d *Dedup) onEvict(name hashutil.Sum, m *store.Manifest) {
	m.Lock()
	if err := d.st.WriteBackManifest(m); err != nil {
		d.errMu.Lock()
		if d.evictionErr == nil {
			d.evictionErr = err
		}
		d.errMu.Unlock()
	}
	hashes := make([]hashutil.Sum, len(m.Entries))
	for i, e := range m.Entries {
		hashes[i] = e.Hash
	}
	m.Unlock()
	for _, h := range hashes {
		// Only remove mappings still pointing at this manifest: a reload
		// of the same name may have re-registered them.
		d.cacheIdx.deleteIf(h, name)
	}
}

// cacheInsert registers a manifest in the LRU cache and the flat index.
// The entry hashes are collected before Put while the manifest is still
// private to this goroutine (a freshly decoded manifest becomes shared the
// instant it enters the cache).
func (d *Dedup) cacheInsert(m *store.Manifest) {
	hashes := make([]hashutil.Sum, len(m.Entries))
	for i, e := range m.Entries {
		hashes[i] = e.Hash
	}
	d.cache.Put(m.Name, m)
	for _, h := range hashes {
		d.cacheIdx.put(h, m.Name)
	}
	d.trackRAM()
}

// indexEntries refreshes the flat index after a splice added entries to m.
// Called with m's lock held (stripe locks nest inside manifest locks).
func (d *Dedup) indexEntries(m *store.Manifest, entries []store.Entry) {
	for _, e := range entries {
		d.cacheIdx.put(e.Hash, m.Name)
	}
}

// trackRAM updates the peak resident-memory estimate: bloom filter plus
// cached manifests plus the flat index.
func (d *Dedup) trackRAM() {
	var cur int64
	if d.filter != nil {
		cur = d.filter.SizeBytes()
	}
	d.cache.Each(func(_ hashutil.Sum, m *store.Manifest) {
		m.Lock()
		cur += int64(m.ByteSize())
		m.Unlock()
	})
	cur += int64(d.cacheIdx.len()) * (hashutil.Size + hashutil.Size + 8)
	if d.sparseIdx != nil {
		cur += int64(d.sparseIdx.len()) * (hashutil.Size + hashutil.Size + 16)
	}
	metrics.MaxInt64(&d.peakRAM, cur)
}

// lookupCached consults the flat cache index and returns the cached
// manifest the hash maps to. The entry index is NOT resolved here: the
// caller revalidates under the manifest lock (tryExtend), because a
// concurrent HHR splice can retire the hash between the index lookup and
// the extension.
func (d *Dedup) lookupCached(h hashutil.Sum) (*store.Manifest, bool) {
	name, ok := d.cacheIdx.get(h)
	if !ok {
		return nil, false
	}
	m, ok := d.cache.Get(name)
	if !ok {
		d.cacheIdx.deleteIf(h, name)
		return nil, false
	}
	return m, true
}

// loadManifest brings a manifest into the cache from disk (one disk
// access), unless it is already cached. Two sessions racing on the same
// name may both read it; the second Put supersedes the first object, which
// remains valid for the session still holding it (its entries reference
// immutable DiskChunk bytes).
func (d *Dedup) loadManifest(name hashutil.Sum) (*store.Manifest, error) {
	if m, ok := d.cache.Get(name); ok {
		return m, nil
	}
	start := time.Now()
	m, err := d.st.ReadManifest(name)
	if err != nil {
		return nil, err
	}
	hManifestLoadNS.ObserveSince(start)
	d.stats.ManifestLoads.Add(1)
	d.cacheInsert(m)
	return m, nil
}

// pchunk is a chunk in flight: its bytes, hash and the recipe slot it will
// resolve.
type pchunk struct {
	data []byte
	hash hashutil.Sum
	slot int
}

// slotState records the eventual fate of one input chunk, in stream order,
// so the FileManifest can be emitted in order even though classification
// happens out of order (BME resolves buffer tails before earlier chunks
// flush).
type slotState struct {
	resolved bool
	dup      bool
	size     int64
	ref      store.FileRef
}

// fileState is the per-input-file processing context: one DiskChunk, one
// Manifest, the pending (hysteresis) buffer and the recipe slots. It is
// owned by exactly one Session for the duration of one PutFile — nothing
// in it is shared, which is what makes the hysteresis machinery safe under
// concurrent streams without any locking of its own.
type fileState struct {
	name      string
	chunkName hashutil.Sum
	manifest  *store.Manifest
	data      []byte   // bytes destined for this file's DiskChunk
	pending   []pchunk // non-duplicate chunks awaiting SHM flush (≤ 2·SD)
	replay    []pchunk // chunks prefetched by FME but not consumed
	slots     []slotState
	hooks     []hashutil.Sum // hook hashes to publish at file end
	pipe      *chunkPipeline // non-nil when the parallel pipeline is on
}

// PutFile deduplicates one input file on the default session. Files of one
// stream must be fed in backup-stream order; the name must be unique and
// is the key for Restore. For concurrent multi-stream ingest create one
// Session per stream (NewSession) or use IngestStreams.
func (d *Dedup) PutFile(name string, r io.Reader) error {
	return d.defaultSession.PutFile(name, r)
}

// putFile is the per-stream ingest path shared by every session.
// Cancellation is polled once per chunk — the finest boundary at which
// the hysteresis state is consistent enough to abandon the file cleanly
// (no FileManifest is emitted, so the partial file never looks
// restorable).
func (d *Dedup) putFile(ctx context.Context, name string, r io.Reader) error {
	var ch chunker.Chunker
	var err error
	switch {
	case d.cfg.TTTD:
		ch, err = chunker.NewTTTD(r, d.cfg.chunkerParams())
	case d.cfg.FastCDC:
		ch, err = chunker.NewGear(r, d.cfg.chunkerParams())
	default:
		ch, err = chunker.NewCDC(r, d.cfg.chunkerParams())
	}
	if err != nil {
		return err
	}
	f := &fileState{name: name, chunkName: d.st.NextName()}
	f.manifest = store.NewManifest(f.chunkName, store.FormatMHD)
	if d.cfg.HashWorkers > 0 {
		f.pipe = newChunkPipeline(ch, d.cfg.HashWorkers)
		defer f.pipe.stop()
	}
	d.stats.FilesTotal.Add(1)
	done := ctx.Done()
	for {
		if done != nil {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		pc, ok, err := d.nextChunk(f, ch)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if err := d.process(f, ch, pc); err != nil {
			return err
		}
	}
	return d.finishFile(f)
}

// nextChunk yields the next chunk in stream order: FME leftovers first,
// then fresh chunks from the chunker.
func (d *Dedup) nextChunk(f *fileState, ch chunker.Chunker) (pchunk, bool, error) {
	if len(f.replay) > 0 {
		pc := f.replay[0]
		f.replay = f.replay[1:]
		return pc, true, nil
	}
	return d.pull(f, ch)
}

// pull reads one fresh chunk, hashes it and allocates its recipe slot. With
// the parallel pipeline on, the chunk arrives pre-hashed.
func (d *Dedup) pull(f *fileState, ch chunker.Chunker) (pchunk, bool, error) {
	var data []byte
	var h hashutil.Sum
	start := time.Now()
	if f.pipe != nil {
		item := f.pipe.next()
		if item.err == io.EOF || item.err == errPipelineClosed {
			return pchunk{}, false, nil
		}
		if item.err != nil {
			return pchunk{}, false, item.err
		}
		data, h = item.data, item.hash
	} else {
		c, err := ch.Next()
		if err == io.EOF {
			return pchunk{}, false, nil
		}
		if err != nil {
			return pchunk{}, false, err
		}
		data, h = c.Data, hashutil.SumBytes(c.Data)
	}
	hChunkNS.ObserveSince(start)
	d.stats.ChunksIn.Add(1)
	d.stats.InputBytes.Add(int64(len(data)))
	d.stats.ChunkedBytes.Add(int64(len(data)))
	d.stats.HashedBytes.Add(int64(len(data)))
	slot := len(f.slots)
	f.slots = append(f.slots, slotState{size: int64(len(data))})
	return pchunk{data: data, hash: h, slot: slot}, true, nil
}

// process runs one chunk through Fig 4's flow: cached-manifest hit → match
// extension; bloom + on-disk hook hit → load manifest, match extension;
// otherwise buffer as non-duplicate, flushing half the buffer via SHM when
// it fills.
func (d *Dedup) process(f *fileState, ch chunker.Chunker, pc pchunk) error {
	lkStart := time.Now()
	m, hit := d.lookupCached(pc.hash)
	hLookupNS.ObserveSince(lkStart)
	if hit {
		done, err := d.tryExtend(f, ch, m, pc)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		// The hash no longer resolves in the manifest (an HHR splice —
		// possibly by a concurrent session — retired it). Drop the stale
		// index entry and fall through to the hook paths, exactly as the
		// serial engine treated a revalidation miss.
		d.cacheIdx.deleteIf(pc.hash, m.Name)
	}
	if d.sparseIdx != nil {
		// SI-MHD: the in-RAM index answers the hook query with no disk
		// access; only the manifest load touches the disk.
		prStart := time.Now()
		target, ok := d.sparseIdx.get(pc.hash)
		hHookProbeNS.ObserveSince(prStart)
		if ok {
			m, err := d.loadManifest(target)
			if err != nil {
				return err
			}
			done, err := d.tryExtend(f, ch, m, pc)
			if err != nil {
				return err
			}
			if done {
				return nil
			}
		}
	} else {
		prStart := time.Now()
		mightExist := true
		if d.filter != nil {
			mightExist = d.filter.Test(pc.hash)
		}
		var targets []hashutil.Sum
		var err error
		if mightExist && d.st.HookExists(pc.hash) {
			targets, err = d.st.ReadHook(pc.hash)
		}
		hHookProbeNS.ObserveSince(prStart)
		if err != nil {
			return err
		}
		if len(targets) > 0 {
			m, err := d.loadManifest(targets[0])
			if err != nil {
				return err
			}
			done, err := d.tryExtend(f, ch, m, pc)
			if err != nil {
				return err
			}
			if done {
				return nil
			}
		}
	}
	f.pending = append(f.pending, pc)
	if len(f.pending) >= 2*d.cfg.SD {
		return d.flushPending(f, d.cfg.SD)
	}
	return nil
}

// tryExtend locks the (possibly shared) manifest, revalidates that the
// chunk's hash still resolves to an entry, and runs the whole match
// extension — BME, FME, HHR splices — inside that critical section. It
// reports whether the chunk was handled; false means the hash was retired
// and the caller should continue down the miss path. If extension dirtied
// a manifest that has meanwhile been evicted from the cache, the splice is
// written back here so it is never lost.
func (d *Dedup) tryExtend(f *fileState, ch chunker.Chunker, m *store.Manifest, pc pchunk) (bool, error) {
	m.Lock()
	idx, ok := m.Lookup(pc.hash)
	if !ok {
		m.Unlock()
		return false, nil
	}
	err := d.extendMatch(f, ch, m, idx, pc)
	dirty := m.Dirty()
	m.Unlock()
	if err != nil {
		return true, err
	}
	if dirty {
		if err := d.persistIfOrphaned(m); err != nil {
			return true, err
		}
	}
	return true, nil
}

// persistIfOrphaned writes a dirty manifest back to disk when it is no
// longer cache-resident. In the serial engine this never fires (a manifest
// under extension cannot be evicted mid-extension); under concurrency
// another session's cacheInsert can evict — and write back — a manifest
// while this session is still splicing it, which would strand the splice
// in an orphaned object. Once evicted, a manifest object can never re-enter
// the cache (loads decode fresh copies), so the Peek race is benign: if it
// is present it will be written back by eviction or Finish, if absent we
// write it back ourselves.
func (d *Dedup) persistIfOrphaned(m *store.Manifest) error {
	if _, cached := d.cache.Peek(m.Name); cached {
		return nil
	}
	m.Lock()
	defer m.Unlock()
	return d.st.WriteBackManifest(m)
}

// resolveDup records a chunk as duplicate data found at the given location.
func (d *Dedup) resolveDup(f *fileState, pc pchunk, container hashutil.Sum, start int64) {
	f.slots[pc.slot] = slotState{
		resolved: true,
		dup:      true,
		size:     int64(len(pc.data)),
		ref:      store.FileRef{Container: container, Start: start, Size: int64(len(pc.data))},
	}
}

// resolveOwn records a chunk as stored in this file's DiskChunk at start.
func (d *Dedup) resolveOwn(f *fileState, pc pchunk, start int64) {
	f.slots[pc.slot] = slotState{
		resolved: true,
		size:     int64(len(pc.data)),
		ref:      store.FileRef{Container: f.chunkName, Start: start, Size: int64(len(pc.data))},
	}
}

// flushPending flushes the first n pending chunks to the file's DiskChunk
// buffer, performing SHM per group of SD chunks: the group leader's hash is
// kept verbatim as a Hook entry, the up-to-SD−1 followers merge into one
// hash over their concatenated bytes.
func (d *Dedup) flushPending(f *fileState, n int) error {
	if n > len(f.pending) {
		n = len(f.pending)
	}
	for start := 0; start < n; start += d.cfg.SD {
		end := start + d.cfg.SD
		if end > n {
			end = n
		}
		d.flushGroup(f, f.pending[start:end])
	}
	f.pending = append(f.pending[:0], f.pending[n:]...)
	return nil
}

// flushGroup appends one SHM group to the file's DiskChunk buffer and
// manifest.
func (d *Dedup) flushGroup(f *fileState, group []pchunk) {
	lead := group[0]
	start := int64(len(f.data))
	f.data = append(f.data, lead.data...)
	f.manifest.Append(store.Entry{
		Hash:  lead.hash,
		Start: start,
		Size:  int64(len(lead.data)),
		Kind:  store.KindHook,
	})
	f.hooks = append(f.hooks, lead.hash)
	d.resolveOwn(f, lead, start)
	if len(group) == 1 {
		return
	}
	mergedStart := int64(len(f.data))
	h := hashutil.NewHasher()
	for _, pc := range group[1:] {
		d.resolveOwn(f, pc, int64(len(f.data)))
		f.data = append(f.data, pc.data...)
		h.Write(pc.data)
	}
	mergedSize := int64(len(f.data)) - mergedStart
	d.stats.HashedBytes.Add(mergedSize)
	f.manifest.Append(store.Entry{
		Hash:  h.Sum(),
		Start: mergedStart,
		Size:  mergedSize,
		Kind:  store.KindMerged,
	})
}

// finishFile flushes the hysteresis buffer, writes the DiskChunk, Manifest
// and Hooks (files that turned out to be complete duplicates write none of
// those), emits the FileManifest from the recipe slots, and folds the
// file's slot classification into the global duplicate statistics. Hook
// publication holds the hash's stripe lock across the check-then-create so
// two sessions finishing identical content cannot double-create a hook.
func (d *Dedup) finishFile(f *fileState) error {
	if len(f.replay) > 0 {
		return fmt.Errorf("core: %d replay chunks left at end of %q", len(f.replay), f.name)
	}
	if err := d.flushPending(f, len(f.pending)); err != nil {
		return err
	}
	if len(f.data) > 0 {
		if err := d.st.WriteDiskChunk(f.chunkName, f.data); err != nil {
			return err
		}
		if err := d.st.CreateManifest(f.manifest); err != nil {
			return err
		}
		for _, h := range f.hooks {
			if err := d.publishHook(h, f.chunkName); err != nil {
				return err
			}
		}
		d.stats.Files.Add(1)
		d.stats.StoredDataBytes.Add(int64(len(f.data)))
		// The new manifest is NOT inserted into the cache: per Fig 4,
		// manifests enter RAM only through hook-hit loading. Cross-file
		// locality therefore costs one manifest load per duplicate slice,
		// exactly as Table II charges.
	}

	fm := &store.FileManifest{File: f.name}
	prevDup := false
	for i, s := range f.slots {
		if !s.resolved {
			return fmt.Errorf("core: unresolved chunk %d in %q", i, f.name)
		}
		if err := fm.Append(s.ref); err != nil {
			return err
		}
		if s.dup {
			d.stats.DupChunks.Add(1)
			d.stats.DupBytes.Add(s.size)
			if !prevDup {
				d.stats.DupSlices.Add(1)
			}
		} else {
			d.stats.NonDupChunks.Add(1)
		}
		prevDup = s.dup
	}
	return d.st.WriteFileManifest(fm)
}

// publishHook makes hook hash h point at the finished file's chunk, in the
// mode-appropriate index: the sparse in-RAM index (SI-MHD) or an on-disk
// hook object plus the bloom filter (BF-MHD). The per-stripe publication
// lock makes the known-check and the create one atomic step.
func (d *Dedup) publishHook(h, chunkName hashutil.Sum) error {
	if d.sparseIdx != nil {
		// First writer wins, as in the serial engine: a hook keeps
		// pointing at the first manifest that published it.
		d.sparseIdx.putIfAbsent(h, chunkName)
		return nil
	}
	unlock := d.pubLocks.lock(h)
	defer unlock()
	if d.st.HookKnown(h) {
		return nil // an identical chunk was hooked by an earlier file
	}
	if err := d.st.CreateHook(h, chunkName); err != nil {
		return err
	}
	if d.filter != nil {
		d.filter.Add(h)
	}
	return nil
}

// Finish writes back all cached dirty manifests and finalizes RAM
// accounting. All sessions must have completed their PutFile calls before
// Finish. The Dedup remains usable for Restore afterwards.
func (d *Dedup) Finish() error {
	d.trackRAM()
	d.cache.Flush()
	d.stats.RAMBytes.Store(d.peakRAM.Load())
	d.errMu.Lock()
	err := d.evictionErr
	d.evictionErr = nil
	d.errMu.Unlock()
	return err
}

// Stats returns the collected raw statistics.
func (d *Dedup) Stats() metrics.Stats { return d.stats.Snapshot() }

// Report snapshots statistics plus disk-side accounting.
func (d *Dedup) Report() metrics.Report {
	s := d.stats.Snapshot()
	if s.RAMBytes == 0 {
		s.RAMBytes = d.peakRAM.Load()
	}
	return metrics.BuildReport(s, d.disk)
}

// Restore rebuilds a previously ingested file into w.
func (d *Dedup) Restore(name string, w io.Writer) error {
	return d.st.RestoreFile(name, w)
}

// Resume returns a Dedup over an existing deduplicated disk (e.g. one
// reloaded with simdisk.LoadDir): new files deduplicate against everything
// already stored. The in-RAM duplicate-detection state is rebuilt from the
// on-disk hooks — the bloom filter from the hook names (a mount-time
// directory scan), or, for SI-MHD, the sparse index from the hook payloads
// (counted disk reads, the real cost of warming that index). Statistics
// start fresh: the Report covers this session's ingest only.
func Resume(cfg Config, disk *simdisk.Disk) (*Dedup, error) {
	d, err := NewOnDisk(cfg, disk)
	if err != nil {
		return nil, err
	}
	if d.sparseIdx != nil {
		// SI-MHD keeps no hook objects on disk; its index is rebuilt by
		// scanning the manifests' hook-flagged entries (F counted reads —
		// the honest cost of warming the index at mount).
		for _, name := range disk.Names(simdisk.Manifest) {
			mName, err := hashutil.ParseHex(name)
			if err != nil {
				return nil, fmt.Errorf("core: resume: malformed manifest name %q: %w", name, err)
			}
			m, err := d.st.ReadManifest(mName)
			if err != nil {
				return nil, fmt.Errorf("core: resume: %w", err)
			}
			for _, e := range m.Entries {
				if e.Kind == store.KindHook {
					d.sparseIdx.putIfAbsent(e.Hash, mName)
				}
			}
		}
		return d, nil
	}
	for _, name := range disk.Names(simdisk.Hook) {
		h, err := hashutil.ParseHex(name)
		if err != nil {
			return nil, fmt.Errorf("core: resume: malformed hook name %q: %w", name, err)
		}
		if d.filter != nil {
			d.filter.Add(h)
		}
	}
	return d, nil
}
