package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"mhdedup/internal/hashutil"
	"mhdedup/internal/simdisk"
	"mhdedup/internal/store"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.ECS = 512
	cfg.SD = 4
	cfg.BloomBytes = 1 << 16
	cfg.CacheManifests = 8
	return cfg
}

func randBytes(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

// ingest feeds the named byte slices through a fresh Dedup and finishes it.
func ingest(t *testing.T, cfg Config, files map[string][]byte, order []string) *Dedup {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range order {
		if err := d.PutFile(name, bytes.NewReader(files[name])); err != nil {
			t.Fatalf("PutFile(%s): %v", name, err)
		}
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	return d
}

// checkRestore asserts every file restores byte-identically.
func checkRestore(t *testing.T, d *Dedup, files map[string][]byte) {
	t.Helper()
	for name, want := range files {
		var got bytes.Buffer
		if err := d.Restore(name, &got); err != nil {
			t.Fatalf("Restore(%s): %v", name, err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("Restore(%s): %d bytes != input %d bytes", name, got.Len(), len(want))
		}
	}
}

// checkInvariants asserts the accounting identities that must hold for any
// run.
func checkInvariants(t *testing.T, d *Dedup) {
	t.Helper()
	s := d.Stats()
	if s.DupChunks+s.NonDupChunks != s.ChunksIn {
		t.Errorf("D+N = %d+%d != chunks in %d", s.DupChunks, s.NonDupChunks, s.ChunksIn)
	}
	if s.StoredDataBytes+s.DupBytes != s.InputBytes {
		t.Errorf("stored %d + dup %d != input %d", s.StoredDataBytes, s.DupBytes, s.InputBytes)
	}
	if s.DupSlices > s.DupChunks {
		t.Errorf("L = %d > D = %d", s.DupSlices, s.DupChunks)
	}
	r := d.Report()
	if r.InodesManifest != s.Files {
		t.Errorf("manifests = %d, F = %d (one manifest per stored file)", r.InodesManifest, s.Files)
	}
	if r.InodesData != s.Files {
		t.Errorf("diskchunks = %d, F = %d", r.InodesData, s.Files)
	}
}

func TestSingleFileRoundTrip(t *testing.T) {
	files := map[string][]byte{"a": randBytes(1, 300_000)}
	d := ingest(t, testConfig(), files, []string{"a"})
	checkRestore(t, d, files)
	checkInvariants(t, d)
	s := d.Stats()
	if s.Files != 1 || s.FilesTotal != 1 {
		t.Errorf("F = %d / total %d, want 1/1", s.Files, s.FilesTotal)
	}
	if s.DupChunks != 0 {
		t.Errorf("unique data found %d dup chunks", s.DupChunks)
	}
	if s.StoredDataBytes != s.InputBytes {
		t.Error("unique data should store everything")
	}
}

func TestCompleteDuplicateFile(t *testing.T) {
	content := randBytes(2, 200_000)
	files := map[string][]byte{"a": content, "b": append([]byte(nil), content...)}
	d := ingest(t, testConfig(), files, []string{"a", "b"})
	checkRestore(t, d, files)
	checkInvariants(t, d)
	s := d.Stats()
	if s.Files != 1 {
		t.Errorf("F = %d, want 1: a complete duplicate file must not create a DiskChunk", s.Files)
	}
	if s.FilesTotal != 2 {
		t.Errorf("FilesTotal = %d, want 2", s.FilesTotal)
	}
	if s.StoredDataBytes != int64(len(content)) {
		t.Errorf("stored %d, want %d (content stored once)", s.StoredDataBytes, len(content))
	}
	if s.DupSlices != 1 {
		t.Errorf("L = %d, want 1 (one maximal duplicate run)", s.DupSlices)
	}
	if s.DupBytes != int64(len(content)) {
		t.Errorf("dup bytes = %d, want %d", s.DupBytes, len(content))
	}
}

func TestPartialDuplicateTriggersHHR(t *testing.T) {
	base := randBytes(3, 400_000)
	// Modify a region that is NOT aligned to chunk boundaries, in the
	// middle of what SHM will have merged.
	edited := append([]byte(nil), base...)
	copy(edited[150_011:], randBytes(4, 20_000))
	files := map[string][]byte{"a": base, "b": edited}
	d := ingest(t, testConfig(), files, []string{"a", "b"})
	checkRestore(t, d, files)
	checkInvariants(t, d)
	s := d.Stats()
	if s.HHROps == 0 {
		t.Error("a mid-merged-chunk edit must trigger HHR")
	}
	if s.HHRDiskAccesses == 0 {
		t.Error("HHR must charge disk accesses for chunk reloads")
	}
	// Most of b should deduplicate: stored data well below 2x base.
	if s.StoredDataBytes > int64(float64(len(base))*1.3) {
		t.Errorf("stored %d bytes; HHR failed to deduplicate the unchanged regions of b", s.StoredDataBytes)
	}
}

func TestByteCompareAblation(t *testing.T) {
	base := randBytes(5, 400_000)
	edited := append([]byte(nil), base...)
	copy(edited[200_123:], randBytes(6, 10_000))
	files := map[string][]byte{"a": base, "b": edited}

	withBC := ingest(t, testConfig(), files, []string{"a", "b"})
	cfg := testConfig()
	cfg.ByteCompare = false
	withoutBC := ingest(t, cfg, files, []string{"a", "b"})
	checkRestore(t, withoutBC, files)
	checkInvariants(t, withoutBC)

	if withoutBC.Stats().HHROps != 0 {
		t.Error("ByteCompare=false must disable HHR")
	}
	if withBC.Stats().StoredDataBytes >= withoutBC.Stats().StoredDataBytes {
		t.Errorf("byte comparison should store less: with %d, without %d",
			withBC.Stats().StoredDataBytes, withoutBC.Stats().StoredDataBytes)
	}
}

// findHHREditOffset probes for an edit position whose duplicate boundary
// falls inside a merged entry (HHR fires). Edits landing inside a hook
// chunk stop match extension without HHR — correct behavior, but not the
// scenario this test needs.
func findHHREditOffset(t *testing.T, base []byte) int64 {
	t.Helper()
	for off := int64(100_000); off < 160_000; off += 1_111 {
		edited := append([]byte(nil), base...)
		copy(edited[off:], randBytes(off, 5_000))
		d, err := New(testConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := d.PutFile("a", bytes.NewReader(base)); err != nil {
			t.Fatal(err)
		}
		if err := d.PutFile("b", bytes.NewReader(edited)); err != nil {
			t.Fatal(err)
		}
		if d.Stats().HHROps > 0 {
			return off
		}
	}
	t.Fatal("no probed edit offset triggered HHR")
	return 0
}

func TestEdgeHashPreventsRepeatedReloads(t *testing.T) {
	base := randBytes(7, 300_000)
	off := findHHREditOffset(t, base)
	mkEdit := func(seed int64) []byte {
		e := append([]byte(nil), base...)
		copy(e[off:], randBytes(seed, 5_000))
		return e
	}
	// Files c1..c4 share base's dup slices but have distinct edits at the
	// same position: without the EdgeHash guard, later files keep reloading
	// the same boundary region; with it, the first HHR plants a plain
	// EdgeHash entry that stops subsequent reloads.
	files := map[string][]byte{"a": base}
	order := []string{"a"}
	for i := int64(1); i <= 4; i++ {
		name := fmt.Sprintf("c%d", i)
		files[name] = mkEdit(100 + i)
		order = append(order, name)
	}
	with := ingest(t, testConfig(), files, order)
	checkRestore(t, with, files)
	checkInvariants(t, with)
	cfg := testConfig()
	cfg.EdgeHash = false
	without := ingest(t, cfg, files, order)
	checkRestore(t, without, files)
	checkInvariants(t, without)

	if with.Stats().HHROps == 0 {
		t.Fatal("probe said this offset triggers HHR but none fired")
	}
	if w, wo := with.Stats().HHRDiskAccesses, without.Stats().HHRDiskAccesses; w >= wo {
		t.Errorf("EdgeHash should reduce HHR disk accesses on repeated same-position edits: with %d, without %d", w, wo)
	}
}

func TestInsertionShiftStillDeduplicates(t *testing.T) {
	base := randBytes(9, 400_000)
	shifted := append(append(append([]byte(nil), base[:50_000]...), randBytes(10, 777)...), base[50_000:]...)
	files := map[string][]byte{"a": base, "b": shifted}
	d := ingest(t, testConfig(), files, []string{"a", "b"})
	checkRestore(t, d, files)
	checkInvariants(t, d)
	s := d.Stats()
	// CDC realigns after the insert; the bulk of b must deduplicate.
	if s.DupBytes < int64(len(base))/2 {
		t.Errorf("only %d of %d bytes deduplicated after a 777-byte insert", s.DupBytes, len(base))
	}
}

func TestManyFilesWithCacheEviction(t *testing.T) {
	cfg := testConfig()
	cfg.CacheManifests = 2 // force evictions and disk-hook rediscovery
	files := map[string][]byte{}
	var order []string
	base := randBytes(11, 150_000)
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("f%02d", i)
		content := append([]byte(nil), base...)
		// Each file gets its own small unique region.
		copy(content[i*10_000:], randBytes(int64(50+i), 4_000))
		files[name] = content
		order = append(order, name)
	}
	d := ingest(t, cfg, files, order)
	checkRestore(t, d, files)
	checkInvariants(t, d)
	if _, _, evictions := d.cache.Stats(); evictions == 0 {
		t.Error("test intended to exercise evictions but none happened")
	}
	// Deduplication must still have worked across evictions (via disk
	// hooks): total stored far less than total input.
	s := d.Stats()
	if s.StoredDataBytes > s.InputBytes/2 {
		t.Errorf("stored %d of %d input: dedup across evictions failed", s.StoredDataBytes, s.InputBytes)
	}
}

func TestSHMManifestShape(t *testing.T) {
	// A unique file's manifest must alternate Hook and Merged entries: 2
	// entries and 1 hook per SD chunks.
	cfg := testConfig()
	d, _ := New(cfg)
	content := randBytes(13, 200_000)
	if err := d.PutFile("a", bytes.NewReader(content)); err != nil {
		t.Fatal(err)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	r := d.Report()
	maxEntriesBytes := (2*(s.NonDupChunks/int64(cfg.SD)) + 2) * 37
	if r.ManifestBytes > maxEntriesBytes*2 {
		t.Errorf("manifest bytes %d exceed SHM expectation ~%d", r.ManifestBytes, maxEntriesBytes)
	}
	wantHooks := s.NonDupChunks / int64(cfg.SD)
	if r.InodesHook < wantHooks/2 || r.InodesHook > wantHooks*2 {
		t.Errorf("hooks = %d, want about N/SD = %d", r.InodesHook, wantHooks)
	}
	// Far fewer hooks than chunks — the whole point of SHM.
	if r.InodesHook*2 > s.NonDupChunks {
		t.Errorf("hooks = %d for %d chunks: SHM not sampling", r.InodesHook, s.NonDupChunks)
	}
}

func TestDeterminism(t *testing.T) {
	files := map[string][]byte{
		"a": randBytes(15, 250_000),
		"b": randBytes(16, 250_000),
	}
	files["c"] = append(append([]byte(nil), files["a"][:100_000]...), files["b"][:100_000]...)
	order := []string{"a", "b", "c"}
	d1 := ingest(t, testConfig(), files, order)
	d2 := ingest(t, testConfig(), files, order)
	if d1.Stats() != d2.Stats() {
		t.Errorf("two identical runs differ:\n%+v\n%+v", d1.Stats(), d2.Stats())
	}
}

func TestEmptyFile(t *testing.T) {
	files := map[string][]byte{"empty": {}, "a": randBytes(17, 100_000)}
	d := ingest(t, testConfig(), files, []string{"empty", "a"})
	checkRestore(t, d, files)
	s := d.Stats()
	if s.Files != 1 {
		t.Errorf("F = %d: empty file must not count as stored", s.Files)
	}
}

func TestTinyFile(t *testing.T) {
	files := map[string][]byte{"tiny": []byte("hello"), "tiny2": []byte("hello")}
	d := ingest(t, testConfig(), files, []string{"tiny", "tiny2"})
	checkRestore(t, d, files)
	s := d.Stats()
	if s.DupBytes != 5 {
		t.Errorf("dup bytes = %d, want 5 (tiny2 dedups against tiny)", s.DupBytes)
	}
}

func TestNoBloomStillCorrect(t *testing.T) {
	cfg := testConfig()
	cfg.UseBloom = false
	content := randBytes(19, 200_000)
	files := map[string][]byte{"a": content, "b": append([]byte(nil), content...)}
	d := ingest(t, cfg, files, []string{"a", "b"})
	checkRestore(t, d, files)
	checkInvariants(t, d)
	// Without a bloom filter, every fresh hash costs a disk hook query.
	misses := d.Disk().Counters().MissedLookups.Get(simdisk.Hook)
	if misses == 0 {
		t.Error("expected missed hook lookups without the bloom filter")
	}

	withBloom := ingest(t, testConfig(), files, []string{"a", "b"})
	m2 := withBloom.Disk().Counters().MissedLookups.Get(simdisk.Hook)
	if m2 >= misses {
		t.Errorf("bloom filter should eliminate most missed lookups: with %d, without %d", m2, misses)
	}
}

func TestDiskFailurePropagates(t *testing.T) {
	disk := simdisk.New()
	boom := errors.New("io error")
	d, err := NewOnDisk(testConfig(), disk)
	if err != nil {
		t.Fatal(err)
	}
	disk.SetFailureHook(func(op simdisk.Op, cat simdisk.Category, _ string) error {
		if op == simdisk.OpCreate && cat == simdisk.Data {
			return boom
		}
		return nil
	})
	err = d.PutFile("a", bytes.NewReader(randBytes(21, 100_000)))
	if !errors.Is(err, boom) {
		t.Errorf("PutFile error = %v, want injected failure", err)
	}
}

func TestEvictionWriteBackFailureSurfacesAtFinish(t *testing.T) {
	disk := simdisk.New()
	cfg := testConfig()
	cfg.CacheManifests = 1
	d, _ := NewOnDisk(cfg, disk)
	base := randBytes(23, 200_000)
	if err := d.PutFile("a", bytes.NewReader(base)); err != nil {
		t.Fatal(err)
	}
	// Make manifests unwritable, then force an HHR (dirty manifest) and an
	// eviction via a second file.
	boom := errors.New("manifest write failed")
	disk.SetFailureHook(func(op simdisk.Op, cat simdisk.Category, _ string) error {
		if op == simdisk.OpWrite && cat == simdisk.Manifest {
			return boom
		}
		return nil
	})
	edited := append([]byte(nil), base...)
	copy(edited[100_000:], randBytes(24, 5_000))
	if err := d.PutFile("b", bytes.NewReader(edited)); err != nil {
		t.Fatal(err)
	}
	if err := d.Finish(); !errors.Is(err, boom) {
		t.Errorf("Finish = %v, want deferred eviction failure", err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.ECS = 0 },
		func(c *Config) { c.SD = 1 },
		func(c *Config) { c.BloomBytes = 0 },
		func(c *Config) { c.BloomHashes = 0 },
		func(c *Config) { c.CacheManifests = 0 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	// Bloom limits don't apply when the filter is off.
	cfg := DefaultConfig()
	cfg.UseBloom = false
	cfg.BloomBytes = 0
	if _, err := New(cfg); err != nil {
		t.Errorf("bloom params should be ignored when UseBloom=false: %v", err)
	}
}

func TestStatsRAMTracked(t *testing.T) {
	files := map[string][]byte{"a": randBytes(25, 200_000)}
	d := ingest(t, testConfig(), files, []string{"a"})
	if d.Stats().RAMBytes < int64(testConfig().BloomBytes) {
		t.Errorf("RAMBytes = %d, must at least cover the bloom filter", d.Stats().RAMBytes)
	}
}

func TestRestoreUnknownFile(t *testing.T) {
	d, _ := New(testConfig())
	if err := d.Restore("ghost", &bytes.Buffer{}); err == nil {
		t.Error("restore of unknown file succeeded")
	}
}

func TestManifestEntriesNeverOverlap(t *testing.T) {
	// After arbitrary HHR splices, a manifest's entries must tile its
	// DiskChunk exactly: contiguous, non-overlapping, starting at 0.
	base := randBytes(27, 400_000)
	files := map[string][]byte{"a": base}
	order := []string{"a"}
	for i := int64(0); i < 5; i++ {
		e := append([]byte(nil), base...)
		copy(e[60_000*(i+1):], randBytes(300+i, 7_000))
		name := fmt.Sprintf("e%d", i)
		files[name] = e
		order = append(order, name)
	}
	d := ingest(t, testConfig(), files, order)
	checkRestore(t, d, files)
	// Inspect every manifest on disk: entries must tile the DiskChunk.
	checked := 0
	for _, name := range d.Disk().Names(simdisk.Manifest) {
		raw, err := d.Disk().Read(simdisk.Manifest, name)
		if err != nil {
			t.Fatal(err)
		}
		sum, err := hashutil.ParseHex(name)
		if err != nil {
			t.Fatal(err)
		}
		m, err := store.DecodeManifest(sum, store.FormatMHD, raw)
		if err != nil {
			t.Fatalf("manifest %s: %v", name[:8], err)
		}
		var off int64
		for i, e := range m.Entries {
			if e.Start != off {
				t.Errorf("manifest %s entry %d starts at %d, want %d", name[:8], i, e.Start, off)
			}
			off += e.Size
		}
		if sz, ok := d.Disk().Size(simdisk.Data, name); !ok || off != sz {
			t.Errorf("manifest %s covers %d bytes, DiskChunk has %d", name[:8], off, sz)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no manifests on disk")
	}
}
