// Package events is the structured, leveled event log shared by the
// dedup service and CLIs. It replaces the bare `Logf func(format, args)`
// plumbing with typed events — a level, a dotted event type
// ("session.attach", "slow_op"), and ordered key=value fields — rendered
// as one line per event to a writer sink and retained in a bounded ring
// so tests (and debug endpoints) can observe transitions instead of
// grepping formatted text.
//
// The log is deliberately tiny: no dependencies, no reflection-heavy
// encoding on the hot path, and every method is safe on a nil *Log (a
// no-op), so libraries can emit unconditionally and let callers opt in.
package events

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders event severities.
type Level int32

// The four levels. Debug is chatty per-operation detail, Info is
// lifecycle (session attach/detach/resume/expire, drain), Warn is
// anomalies the system absorbed (slow ops, retries), Error is failures
// surfaced to a peer or caller.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String renders a level for the line format.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO"
	case LevelWarn:
		return "WARN"
	case LevelError:
		return "ERROR"
	default:
		return fmt.Sprintf("LEVEL(%d)", int32(l))
	}
}

// ParseLevel maps a flag string to a Level (case-insensitive).
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	default:
		return LevelInfo, fmt.Errorf("events: unknown level %q (want debug, info, warn or error)", s)
	}
}

// Field is one ordered key=value pair of an event.
type Field struct {
	Key   string
	Value any
}

// F builds a Field; the one-letter name keeps emit sites readable.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Event is one structured log entry.
type Event struct {
	Time   time.Time
	Level  Level
	Type   string // dotted event type, e.g. "session.attach"
	Fields []Field
}

// Field returns the value of the named field and whether it is present.
func (e Event) Field(key string) (any, bool) {
	for _, f := range e.Fields {
		if f.Key == key {
			return f.Value, true
		}
	}
	return nil, false
}

// String renders the event in the line format the writer sink emits
// (without the timestamp, which the sink prepends).
func (e Event) String() string {
	var b strings.Builder
	b.WriteString(e.Level.String())
	b.WriteByte(' ')
	b.WriteString(e.Type)
	for _, f := range e.Fields {
		fmt.Fprintf(&b, " %s=%v", f.Key, f.Value)
	}
	return b.String()
}

// Options configures a Log. The zero value is usable: Info level,
// 100 ms slow-op threshold, a 256-event ring, and no output sink (events
// are still retained in the ring).
type Options struct {
	// Level is the minimum level emitted; events below it are dropped
	// entirely (not even ringed).
	Level Level
	// Out, when set, receives one formatted line per event.
	Out io.Writer
	// Logf, when set, receives each event through a printf-style sink —
	// the bridge for tests (t.Logf) and legacy log.Printf plumbing.
	Logf func(format string, args ...any)
	// RingSize bounds the in-memory event ring; default 256, negative
	// disables the ring.
	RingSize int
	// SlowOpThreshold is the duration at or above which SlowOp emits a
	// warn event; default 100 ms. Negative disables slow-op events.
	SlowOpThreshold time.Duration
}

// Log is a leveled, structured event log. Safe for concurrent use; all
// methods are no-ops on a nil receiver.
type Log struct {
	level atomic.Int32
	slow  atomic.Int64 // slow-op threshold, ns; <0 disabled
	logf  func(format string, args ...any)

	mu   sync.Mutex
	out  io.Writer
	ring []Event
	next int
	full bool
}

// New builds a Log from opts.
func New(opts Options) *Log {
	ringSize := opts.RingSize
	if ringSize == 0 {
		ringSize = 256
	}
	if ringSize < 0 {
		ringSize = 0
	}
	slow := opts.SlowOpThreshold
	if slow == 0 {
		slow = 100 * time.Millisecond
	}
	l := &Log{out: opts.Out, logf: opts.Logf}
	if ringSize > 0 {
		l.ring = make([]Event, ringSize)
	}
	l.level.Store(int32(opts.Level))
	l.slow.Store(int64(slow))
	return l
}

// Nop returns a log that retains nothing and writes nowhere — the
// default for library configs whose caller did not ask for events.
func Nop() *Log {
	return New(Options{Level: LevelError + 1, RingSize: -1, SlowOpThreshold: -1})
}

// SetLevel changes the minimum emitted level at runtime.
func (l *Log) SetLevel(lv Level) {
	if l == nil {
		return
	}
	l.level.Store(int32(lv))
}

// Enabled reports whether events at lv would be emitted — the guard hot
// paths use before assembling fields.
func (l *Log) Enabled(lv Level) bool {
	return l != nil && int32(lv) >= l.level.Load()
}

// SlowThreshold returns the current slow-op threshold (negative:
// disabled).
func (l *Log) SlowThreshold() time.Duration {
	if l == nil {
		return -1
	}
	return time.Duration(l.slow.Load())
}

// Emit records one event at lv.
func (l *Log) Emit(lv Level, typ string, fields ...Field) {
	if !l.Enabled(lv) {
		return
	}
	e := Event{Time: time.Now(), Level: lv, Type: typ, Fields: fields}
	line := ""
	if l.out != nil || l.logf != nil {
		line = e.String()
	}
	logf := l.logf
	l.mu.Lock()
	if len(l.ring) > 0 {
		l.ring[l.next] = e
		l.next++
		if l.next == len(l.ring) {
			l.next = 0
			l.full = true
		}
	}
	if l.out != nil {
		fmt.Fprintf(l.out, "%s %s\n", e.Time.Format(time.RFC3339Nano), line)
	}
	l.mu.Unlock()
	// The printf sink runs outside the mutex: t.Logf and log.Printf do
	// their own locking, and a slow sink must not serialize emitters.
	if logf != nil {
		logf("%s", line)
	}
}

// Debug emits a LevelDebug event.
func (l *Log) Debug(typ string, fields ...Field) { l.Emit(LevelDebug, typ, fields...) }

// Info emits a LevelInfo event.
func (l *Log) Info(typ string, fields ...Field) { l.Emit(LevelInfo, typ, fields...) }

// Warn emits a LevelWarn event.
func (l *Log) Warn(typ string, fields ...Field) { l.Emit(LevelWarn, typ, fields...) }

// Error emits a LevelError event.
func (l *Log) Error(typ string, fields ...Field) { l.Emit(LevelError, typ, fields...) }

// SlowOp emits a warn-level "slow_op" event when d is at or above the
// configured threshold: the observability primitive that makes "this
// frame took 3 s to apply" visible without tracing every frame. It
// returns whether the event fired.
func (l *Log) SlowOp(op string, d time.Duration, fields ...Field) bool {
	if l == nil {
		return false
	}
	thr := time.Duration(l.slow.Load())
	if thr < 0 || d < thr {
		return false
	}
	fs := make([]Field, 0, len(fields)+2)
	fs = append(fs, F("op", op), F("ms", float64(d)/float64(time.Millisecond)))
	fs = append(fs, fields...)
	l.Emit(LevelWarn, "slow_op", fs...)
	return true
}

// Recent returns the ring contents, oldest first — how tests assert on
// lifecycle transitions and how a debug endpoint can expose the last N
// events.
func (l *Log) Recent() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.ring) == 0 {
		return nil
	}
	var out []Event
	if l.full {
		out = make([]Event, 0, len(l.ring))
		out = append(out, l.ring[l.next:]...)
		out = append(out, l.ring[:l.next]...)
	} else {
		out = append(out, l.ring[:l.next]...)
	}
	return out
}

// Types returns the event types of Recent() in order — the compact form
// lifecycle tests assert against.
func (l *Log) Types() []string {
	evs := l.Recent()
	out := make([]string, len(evs))
	for i, e := range evs {
		out[i] = e.Type
	}
	return out
}
