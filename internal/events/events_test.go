package events

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParseLevel(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Level
		err  bool
	}{
		{"debug", LevelDebug, false},
		{"Info", LevelInfo, false},
		{"", LevelInfo, false},
		{" WARN ", LevelWarn, false},
		{"warning", LevelWarn, false},
		{"error", LevelError, false},
		{"verbose", LevelInfo, true},
	} {
		got, err := ParseLevel(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v, err=%v", tc.in, got, err, tc.want, tc.err)
		}
	}
}

func TestLevelFiltering(t *testing.T) {
	l := New(Options{Level: LevelWarn})
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	if got := l.Types(); !reflect.DeepEqual(got, []string{"w", "e"}) {
		t.Fatalf("warn-level log retained %v, want [w e]", got)
	}
	l.SetLevel(LevelDebug)
	if !l.Enabled(LevelDebug) {
		t.Fatal("SetLevel(Debug) did not take effect")
	}
	l.Debug("d2")
	if got := l.Types(); got[len(got)-1] != "d2" {
		t.Fatalf("debug event not retained after SetLevel: %v", got)
	}
}

func TestRingWraparound(t *testing.T) {
	l := New(Options{Level: LevelDebug, RingSize: 4})
	for i := 0; i < 6; i++ {
		l.Info(fmt.Sprintf("e%d", i))
	}
	if got := l.Types(); !reflect.DeepEqual(got, []string{"e2", "e3", "e4", "e5"}) {
		t.Fatalf("ring = %v, want last 4 oldest-first", got)
	}
}

func TestEventRenderingAndFields(t *testing.T) {
	e := Event{Level: LevelWarn, Type: "slow_op", Fields: []Field{F("op", "apply"), F("ms", 12.5)}}
	if got, want := e.String(), "WARN slow_op op=apply ms=12.5"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	if v, ok := e.Field("op"); !ok || v != "apply" {
		t.Fatalf("Field(op) = %v, %v", v, ok)
	}
	if _, ok := e.Field("absent"); ok {
		t.Fatal("Field(absent) reported present")
	}
}

func TestWriterAndLogfSinks(t *testing.T) {
	var buf bytes.Buffer
	var bridged []string
	l := New(Options{
		Level: LevelInfo,
		Out:   &buf,
		Logf:  func(format string, args ...any) { bridged = append(bridged, fmt.Sprintf(format, args...)) },
	})
	l.Info("session.attach", F("session", 7))
	line := buf.String()
	if !strings.Contains(line, "INFO session.attach session=7") {
		t.Fatalf("writer sink line = %q", line)
	}
	if !strings.HasSuffix(strings.TrimSpace(line), "session=7") || !strings.Contains(line, "T") {
		t.Fatalf("writer sink must prepend a timestamp: %q", line)
	}
	if len(bridged) != 1 || bridged[0] != "INFO session.attach session=7" {
		t.Fatalf("logf bridge got %v", bridged)
	}
}

func TestSlowOp(t *testing.T) {
	l := New(Options{Level: LevelInfo, SlowOpThreshold: 10 * time.Millisecond})
	if l.SlowOp("apply", 5*time.Millisecond) {
		t.Fatal("SlowOp fired below threshold")
	}
	if !l.SlowOp("apply", 20*time.Millisecond, F("seq", 3)) {
		t.Fatal("SlowOp did not fire at 2× threshold")
	}
	evs := l.Recent()
	if len(evs) != 1 || evs[0].Type != "slow_op" || evs[0].Level != LevelWarn {
		t.Fatalf("ring after SlowOp = %+v", evs)
	}
	if v, _ := evs[0].Field("op"); v != "apply" {
		t.Fatalf("slow_op op field = %v", v)
	}
	if v, _ := evs[0].Field("ms"); v != 20.0 {
		t.Fatalf("slow_op ms field = %v", v)
	}
	// Disabled threshold never fires.
	off := New(Options{SlowOpThreshold: -1})
	if off.SlowOp("apply", time.Hour) {
		t.Fatal("SlowOp fired with negative threshold")
	}
	if off.SlowThreshold() >= 0 {
		t.Fatalf("SlowThreshold = %v, want negative", off.SlowThreshold())
	}
}

// TestNilAndNopSafety: libraries emit unconditionally, so every method
// must be a no-op on a nil *Log, and Nop() must retain nothing.
func TestNilAndNopSafety(t *testing.T) {
	var l *Log
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	l.SetLevel(LevelDebug)
	if l.Enabled(LevelError) {
		t.Fatal("nil log reports enabled")
	}
	if l.SlowOp("x", time.Hour) {
		t.Fatal("nil log fired slow_op")
	}
	if l.Recent() != nil || len(l.Types()) != 0 {
		t.Fatal("nil log returned events")
	}
	n := Nop()
	n.Error("dropped")
	n.SlowOp("x", time.Hour)
	if evs := n.Recent(); len(evs) != 0 {
		t.Fatalf("Nop retained %v", evs)
	}
}

// TestConcurrentEmit exercises parallel emitters against a reader under
// -race.
func TestConcurrentEmit(t *testing.T) {
	l := New(Options{Level: LevelDebug, RingSize: 64})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.Info("tick", F("w", w), F("i", i))
				l.SlowOp("op", 200*time.Millisecond)
			}
		}(w)
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for i := 0; i < 200; i++ {
			_ = l.Recent()
			_ = l.Types()
		}
	}()
	wg.Wait()
	<-readerDone
	if evs := l.Recent(); len(evs) != 64 {
		t.Fatalf("full ring holds %d events, want 64", len(evs))
	}
}
