// Package rabin implements Rabin fingerprinting by random polynomials
// (Rabin, 1981), the rolling hash underlying content-defined chunking in
// LBFS and virtually every deduplication system since, including the paper
// reproduced by this repository.
//
// A fingerprint is the residue of the input, interpreted as a polynomial
// over GF(2), modulo a fixed irreducible polynomial P of degree < 64. The
// package provides the polynomial arithmetic (multiplication, modulo,
// irreducibility testing, random generation of irreducible polynomials) and
// a sliding-window fingerprinter with precomputed push/pop tables so the
// per-byte cost is two table lookups and two XORs.
package rabin

import (
	"errors"
	"math/rand"
)

// Poly is a polynomial over GF(2). Bit i represents the coefficient of x^i,
// so the uint64 value 0b1011 is x^3 + x + 1.
type Poly uint64

// DefaultPoly is the irreducible polynomial of degree 53 used by LBFS and
// later systems. Degree 53 keeps b·x^(8·w) products inside 64 bits for the
// window sizes used by chunkers.
const DefaultPoly Poly = 0x3DA3358B4DC173

// Deg returns the degree of p, or -1 for the zero polynomial.
func (p Poly) Deg() int {
	deg := -1
	for v := uint64(p); v != 0; v >>= 1 {
		deg++
	}
	return deg
}

// Add returns p + q over GF(2) (which is XOR, and identical to subtraction).
func (p Poly) Add(q Poly) Poly {
	return p ^ q
}

// MulMod returns (p · q) mod m over GF(2). The computation reduces as it
// goes, so it is correct even when the plain product would overflow 64
// bits.
//
// m must be non-zero; a zero modulus panics. This is a programmer-error
// invariant, not a data-dependent failure: every modulus in this package
// reaches MulMod from one of three sources, none of which can be zero —
// DefaultPoly is a non-zero constant, RandomPoly returns only irreducible
// (hence non-zero) polynomials, and NewWindow rejects any polynomial of
// degree < 9 before building its tables. Untrusted input never selects the
// modulus, so the panic can only fire on a caller bug, exactly like an
// out-of-range slice index.
func (p Poly) MulMod(q, m Poly) Poly {
	if m == 0 {
		panic("rabin: modulo by zero polynomial")
	}
	p = p.Mod(m)
	q = q.Mod(m)
	degM := m.Deg()
	var res Poly
	for q != 0 {
		if q&1 != 0 {
			res ^= p
		}
		q >>= 1
		// p = p·x mod m, keeping deg(p) < deg(m).
		p <<= 1
		if p.hasBit(degM) {
			p ^= m
		}
	}
	return res
}

// Mod returns p mod m over GF(2). A zero modulus panics; as with MulMod
// this is a programmer-error invariant (see there) — no public code path
// lets input data choose m.
func (p Poly) Mod(m Poly) Poly {
	if m == 0 {
		panic("rabin: modulo by zero polynomial")
	}
	degM := m.Deg()
	for p.Deg() >= degM {
		p ^= m << uint(p.Deg()-degM)
	}
	return p
}

// GCD returns the greatest common divisor of p and q over GF(2).
func (p Poly) GCD(q Poly) Poly {
	for q != 0 {
		p, q = q, p.Mod(q)
	}
	return p
}

func (p Poly) hasBit(i int) bool {
	return i >= 0 && i < 64 && p&(1<<uint(i)) != 0
}

// expMod returns x^(2^n) mod m, computed by repeated squaring.
func expMod(n int, m Poly) Poly {
	r := Poly(2) // the polynomial x
	for i := 0; i < n; i++ {
		r = r.MulMod(r, m)
	}
	return r
}

// Irreducible reports whether p is irreducible over GF(2), using Ben-Or's
// algorithm: p of degree d is irreducible iff gcd(x^(2^i) − x, p) = 1 for
// every 1 ≤ i ≤ d/2.
func (p Poly) Irreducible() bool {
	d := p.Deg()
	if d <= 0 {
		return false
	}
	if d == 1 {
		return true // x and x+1
	}
	if p&1 == 0 {
		return false // divisible by x
	}
	for i := 1; i <= d/2; i++ {
		// x^(2^i) − x = x^(2^i) + x over GF(2).
		q := expMod(i, p) ^ 2
		if p.GCD(q) != 1 {
			return false
		}
	}
	return true
}

// ErrNoPolynomial is returned by RandomPoly when no irreducible polynomial
// was found within the attempt budget (practically unreachable: roughly one
// in deg polynomials of a given degree is irreducible).
var ErrNoPolynomial = errors.New("rabin: no irreducible polynomial found")

// RandomPoly returns a random irreducible polynomial of degree 53 derived
// deterministically from seed. Distinct seeds almost always give distinct
// polynomials, which lets tests confirm that chunking is robust to the
// choice of polynomial.
func RandomPoly(seed int64) (Poly, error) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 1_000_000; i++ {
		// Degree exactly 53: force the top and bottom coefficients; the
		// bottom avoids divisibility by x.
		p := Poly(rng.Uint64())&((1<<53)-1) | (1 << 53) | 1
		if p.Irreducible() {
			return p, nil
		}
	}
	return 0, ErrNoPolynomial
}
