package rabin

import (
	"fmt"
	"sync"
)

// DefaultWindowSize is the sliding-window width in bytes used by the
// chunkers. 48 bytes is the LBFS value; the fingerprint then depends on the
// last 48 bytes seen, which is what makes cut points content-defined and
// immune to boundary shifting.
const DefaultWindowSize = 48

// Window is a sliding-window Rabin fingerprinter. Feed bytes with Roll; the
// current fingerprint of the most recent WindowSize bytes is Fingerprint().
// The zero value is not usable; construct with NewWindow.
type Window struct {
	poly    Poly
	size    int
	shift   uint // deg(poly) − 8: position of the top byte of the digest
	tabs    *windowTabs
	window  []byte
	pos     int
	digest  Poly
	written int
}

// windowTabs holds the byte-at-a-time reduction tables. They are a pure
// function of (poly, size), so they are built once and shared by every
// Window over the same pair — the engine constructs a chunker per file, and
// rebuilding the tables (256 × size slow polynomial reductions) per file
// used to cost about as much as scanning a megabyte.
type windowTabs struct {
	modTab [256]Poly
	outTab [256]Poly
}

type windowTabKey struct {
	poly Poly
	size int
}

var tabCache sync.Map // windowTabKey → *windowTabs

// NewWindow returns a Window over the given irreducible polynomial with the
// given window size in bytes. Size must be positive; poly must have degree
// of at least 9 so the byte-at-a-time table reduction is valid.
func NewWindow(poly Poly, size int) (*Window, error) {
	if size <= 0 {
		return nil, fmt.Errorf("rabin: window size must be positive, got %d", size)
	}
	deg := poly.Deg()
	if deg < 9 {
		return nil, fmt.Errorf("rabin: polynomial degree must be >= 9, got %d", deg)
	}
	w := &Window{
		poly:   poly,
		size:   size,
		shift:  uint(deg - 8),
		window: make([]byte, size),
	}
	key := windowTabKey{poly: poly, size: size}
	if tabs, ok := tabCache.Load(key); ok {
		w.tabs = tabs.(*windowTabs)
	} else {
		tabs := &windowTabs{}
		// modTab[b] reduces a digest whose top byte is b: it is (b · x^deg)
		// mod poly, with the b·x^deg term itself included so the caller can
		// XOR the whole top byte away in one operation.
		for b := 0; b < 256; b++ {
			v := Poly(b) << uint(deg)
			tabs.modTab[b] = v.modSlow(poly) | v
		}
		// outTab[b] is the contribution of byte b once it has been shifted
		// through the entire window: (b · x^(8·size)) mod poly. XORing it
		// out removes the oldest byte from the digest.
		for b := 0; b < 256; b++ {
			h := Poly(0)
			h = w.appendByteSlow(h, byte(b))
			for i := 0; i < size-1; i++ {
				h = w.appendByteSlow(h, 0)
			}
			tabs.outTab[b] = h
		}
		actual, _ := tabCache.LoadOrStore(key, tabs)
		w.tabs = actual.(*windowTabs)
	}
	w.Reset()
	return w, nil
}

// modSlow is bitwise polynomial reduction, used only during table
// construction (the fast path uses the tables).
func (p Poly) modSlow(m Poly) Poly {
	return p.Mod(m)
}

// appendByteSlow extends digest by one byte using bitwise reduction; table
// construction only.
func (w *Window) appendByteSlow(digest Poly, b byte) Poly {
	digest <<= 8
	digest |= Poly(b)
	return digest.Mod(w.poly)
}

// Reset clears the window to all zero bytes and the digest to zero.
func (w *Window) Reset() {
	for i := range w.window {
		w.window[i] = 0
	}
	w.pos = 0
	w.digest = 0
	w.written = 0
}

// Roll slides the window forward by one byte and returns the new
// fingerprint.
func (w *Window) Roll(b byte) Poly {
	out := w.window[w.pos]
	w.window[w.pos] = b
	w.pos++
	if w.pos == w.size {
		w.pos = 0
	}
	w.digest ^= w.tabs.outTab[out]
	// Append b: shift the digest up a byte; the former top byte now sits at
	// x^deg..x^(deg+7) and modTab (which includes that term) cancels it and
	// adds its residue, keeping deg(digest) < deg(poly).
	top := byte(w.digest >> w.shift)
	w.digest = (w.digest << 8) | Poly(b)
	w.digest ^= w.tabs.modTab[top]
	w.written++
	return w.digest
}

// RollBlock rolls every byte of blk through the window. It is equivalent to
// calling Roll once per byte, but hoists the table pointers and window state
// into locals so the per-byte cost in the loop is the two lookups and two
// XORs with no method-call or field-load overhead — the block-processed
// chunking hot path uses it to warm the window across a buffered slice.
//
// Rolling maintains the invariant digest == fingerprint(ring contents), so
// when blk is at least a full window the final state depends only on the
// last Size() bytes — RollBlock then resets and rolls just those.
func (w *Window) RollBlock(blk []byte) {
	w.written += len(blk)
	if len(blk) >= w.size {
		w.Reset()
		w.written -= w.size // rollRing re-adds the bytes it rolls
		blk = blk[len(blk)-w.size:]
	}
	w.rollRing(blk)
}

// rollRing is the ring-maintaining per-byte roll over a slice, state
// hoisted into locals.
func (w *Window) rollRing(blk []byte) {
	digest := w.digest
	pos := w.pos
	size := w.size
	shift := w.shift
	win := w.window
	mod := &w.tabs.modTab
	out := &w.tabs.outTab
	for _, b := range blk {
		o := win[pos]
		win[pos] = b
		pos++
		if pos == size {
			pos = 0
		}
		digest ^= out[o]
		top := byte(digest >> shift)
		digest = (digest << 8) | Poly(b)
		digest ^= mod[top]
	}
	w.digest = digest
	w.pos = pos
	w.written += len(blk)
}

// RollFind rolls bytes of blk through the window until the fingerprint
// masked by mask equals mask. It returns how many bytes were consumed and
// whether a match stopped the scan; on a match the matching byte is
// included in the count and the window state is exactly as if Roll had been
// called byte-by-byte up to and including it.
//
// This is the chunking hot loop, structured in two phases. The first
// Size() bytes evict bytes rolled before this call, which live only in the
// ring buffer. From index Size() on, the evicted byte is blk[i−Size()] —
// the ring drops out of the loop entirely (no stores, no wrap test; just
// the two table lookups, two XORs and the mask test per byte) and is
// reconstructed from the slice tail on exit.
func (w *Window) RollFind(blk []byte, mask Poly) (n int, found bool) {
	digest := w.digest
	pos := w.pos
	size := w.size
	shift := w.shift
	win := w.window
	mod := &w.tabs.modTab
	out := &w.tabs.outTab

	// Phase 1: ring-maintained roll over the first min(Size, len) bytes.
	nA := size
	if nA > len(blk) {
		nA = len(blk)
	}
	for i := 0; i < nA; i++ {
		b := blk[i]
		o := win[pos]
		win[pos] = b
		pos++
		if pos == size {
			pos = 0
		}
		digest ^= out[o]
		top := byte(digest >> shift)
		digest = (digest << 8) | Poly(b)
		digest ^= mod[top]
		if digest&mask == mask {
			w.digest = digest
			w.pos = pos
			w.written += i + 1
			return i + 1, true
		}
	}
	if nA == len(blk) {
		w.digest = digest
		w.pos = pos
		w.written += nA
		return nA, false
	}

	// Phase 2: ring-free roll; the evicted byte comes from the slice.
	consumed := len(blk)
	found = false
	tail := blk[size:]
	lead := blk[:len(tail)] // evicted byte for tail[j] is lead[j]; equal lengths for bounds-check elimination
	for j, b := range tail {
		digest ^= out[lead[j]]
		top := byte(digest >> shift)
		digest = (digest << 8) | Poly(b)
		digest ^= mod[top]
		if digest&mask == mask {
			consumed = size + j + 1
			found = true
			break
		}
	}
	if consumed > size {
		// Rebuild the ring to hold the last Size() bytes rolled, oldest
		// first, which is the pos==0 rotation.
		copy(win, blk[consumed-size:consumed])
		pos = 0
	}
	w.digest = digest
	w.pos = pos
	w.written += consumed
	return consumed, found
}

// Fingerprint returns the fingerprint of the bytes currently in the window
// (the last Size() bytes rolled, zero-padded if fewer have been seen).
func (w *Window) Fingerprint() Poly {
	return w.digest
}

// Size returns the window width in bytes.
func (w *Window) Size() int {
	return w.size
}

// Poly returns the modulus polynomial.
func (w *Window) Poly() Poly {
	return w.poly
}

// FingerprintOf computes, without any rolling state, the fingerprint of the
// given bytes modulo poly. It is the reference the rolling implementation is
// tested against.
func FingerprintOf(poly Poly, data []byte) Poly {
	var d Poly
	for _, b := range data {
		d <<= 8
		d |= Poly(b)
		d = d.Mod(poly)
	}
	return d
}
