package rabin

import "fmt"

// DefaultWindowSize is the sliding-window width in bytes used by the
// chunkers. 48 bytes is the LBFS value; the fingerprint then depends on the
// last 48 bytes seen, which is what makes cut points content-defined and
// immune to boundary shifting.
const DefaultWindowSize = 48

// Window is a sliding-window Rabin fingerprinter. Feed bytes with Roll; the
// current fingerprint of the most recent WindowSize bytes is Fingerprint().
// The zero value is not usable; construct with NewWindow.
type Window struct {
	poly    Poly
	size    int
	shift   uint // deg(poly) − 8: position of the top byte of the digest
	modTab  [256]Poly
	outTab  [256]Poly
	window  []byte
	pos     int
	digest  Poly
	written int
}

// NewWindow returns a Window over the given irreducible polynomial with the
// given window size in bytes. Size must be positive; poly must have degree
// of at least 9 so the byte-at-a-time table reduction is valid.
func NewWindow(poly Poly, size int) (*Window, error) {
	if size <= 0 {
		return nil, fmt.Errorf("rabin: window size must be positive, got %d", size)
	}
	deg := poly.Deg()
	if deg < 9 {
		return nil, fmt.Errorf("rabin: polynomial degree must be >= 9, got %d", deg)
	}
	w := &Window{
		poly:   poly,
		size:   size,
		shift:  uint(deg - 8),
		window: make([]byte, size),
	}
	// modTab[b] reduces a digest whose top byte is b: it is (b · x^deg) mod
	// poly, with the b·x^deg term itself included so the caller can XOR the
	// whole top byte away in one operation.
	for b := 0; b < 256; b++ {
		v := Poly(b) << uint(deg)
		w.modTab[b] = v.modSlow(poly) | v
	}
	// outTab[b] is the contribution of byte b once it has been shifted
	// through the entire window: (b · x^(8·size)) mod poly. XORing it out
	// removes the oldest byte from the digest.
	for b := 0; b < 256; b++ {
		h := Poly(0)
		h = w.appendByteSlow(h, byte(b))
		for i := 0; i < size-1; i++ {
			h = w.appendByteSlow(h, 0)
		}
		w.outTab[b] = h
	}
	w.Reset()
	return w, nil
}

// modSlow is bitwise polynomial reduction, used only during table
// construction (the fast path uses the tables).
func (p Poly) modSlow(m Poly) Poly {
	return p.Mod(m)
}

// appendByteSlow extends digest by one byte using bitwise reduction; table
// construction only.
func (w *Window) appendByteSlow(digest Poly, b byte) Poly {
	digest <<= 8
	digest |= Poly(b)
	return digest.Mod(w.poly)
}

// Reset clears the window to all zero bytes and the digest to zero.
func (w *Window) Reset() {
	for i := range w.window {
		w.window[i] = 0
	}
	w.pos = 0
	w.digest = 0
	w.written = 0
}

// Roll slides the window forward by one byte and returns the new
// fingerprint.
func (w *Window) Roll(b byte) Poly {
	out := w.window[w.pos]
	w.window[w.pos] = b
	w.pos++
	if w.pos == w.size {
		w.pos = 0
	}
	w.digest ^= w.outTab[out]
	// Append b: shift the digest up a byte; the former top byte now sits at
	// x^deg..x^(deg+7) and modTab (which includes that term) cancels it and
	// adds its residue, keeping deg(digest) < deg(poly).
	top := byte(w.digest >> w.shift)
	w.digest = (w.digest << 8) | Poly(b)
	w.digest ^= w.modTab[top]
	w.written++
	return w.digest
}

// Fingerprint returns the fingerprint of the bytes currently in the window
// (the last Size() bytes rolled, zero-padded if fewer have been seen).
func (w *Window) Fingerprint() Poly {
	return w.digest
}

// Size returns the window width in bytes.
func (w *Window) Size() int {
	return w.size
}

// Poly returns the modulus polynomial.
func (w *Window) Poly() Poly {
	return w.poly
}

// FingerprintOf computes, without any rolling state, the fingerprint of the
// given bytes modulo poly. It is the reference the rolling implementation is
// tested against.
func FingerprintOf(poly Poly, data []byte) Poly {
	var d Poly
	for _, b := range data {
		d <<= 8
		d |= Poly(b)
		d = d.Mod(poly)
	}
	return d
}
