package rabin

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDeg(t *testing.T) {
	cases := []struct {
		p    Poly
		want int
	}{
		{0, -1},
		{1, 0},
		{2, 1},
		{3, 1},
		{0x3DA3358B4DC173, 53},
		{1 << 63, 63},
	}
	for _, c := range cases {
		if got := c.p.Deg(); got != c.want {
			t.Errorf("Deg(%#x) = %d, want %d", uint64(c.p), got, c.want)
		}
	}
}

func TestModBasic(t *testing.T) {
	// x^3 + x mod x^2+1: x^3+x = x·(x^2+1), so remainder 0.
	if got := Poly(0b1010).Mod(0b101); got != 0 {
		t.Errorf("(x^3+x) mod (x^2+1) = %#b, want 0", uint64(got))
	}
	// x^2 mod x^2+1 = 1.
	if got := Poly(0b100).Mod(0b101); got != 1 {
		t.Errorf("x^2 mod (x^2+1) = %#b, want 1", uint64(got))
	}
}

func TestModProperties(t *testing.T) {
	f := func(a uint64, m uint64) bool {
		mp := Poly(m)
		if mp == 0 {
			return true // modulo by zero panics by contract; skip
		}
		r := Poly(a).Mod(mp)
		return r.Deg() < mp.Deg()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulModDistributes(t *testing.T) {
	m := DefaultPoly
	f := func(a, b, c uint64) bool {
		pa, pb, pc := Poly(a), Poly(b), Poly(c)
		// (a+b)·c = a·c + b·c over GF(2).
		left := pa.Add(pb).MulMod(pc, m)
		right := pa.MulMod(pc, m).Add(pb.MulMod(pc, m))
		return left == right
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulModCommutes(t *testing.T) {
	m := DefaultPoly
	f := func(a, b uint64) bool {
		return Poly(a).MulMod(Poly(b), m) == Poly(b).MulMod(Poly(a), m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGCD(t *testing.T) {
	// gcd(x^2+x, x) = x  (x^2+x = x(x+1))
	if got := Poly(0b110).GCD(0b10); got != 0b10 {
		t.Errorf("gcd = %#b, want x", uint64(got))
	}
	// gcd of coprime polys x+1 and x is 1.
	if got := Poly(0b11).GCD(0b10); got != 1 {
		t.Errorf("gcd = %#b, want 1", uint64(got))
	}
}

func TestIrreducibleKnownValues(t *testing.T) {
	irreducible := []Poly{
		0b10,        // x
		0b11,        // x + 1
		0b111,       // x^2 + x + 1
		0b1011,      // x^3 + x + 1
		0b1101,      // x^3 + x^2 + 1
		0b10011,     // x^4 + x + 1
		DefaultPoly, // LBFS degree-53 polynomial
	}
	for _, p := range irreducible {
		if !p.Irreducible() {
			t.Errorf("%#x should be irreducible", uint64(p))
		}
	}
	reducible := []Poly{
		0,
		1,       // constant
		0b100,   // x^2 = x·x
		0b101,   // x^2 + 1 = (x+1)^2
		0b110,   // x^2 + x = x(x+1)
		0b1111,  // x^3+x^2+x+1 = (x+1)(x^2+1)
		0b10101, // x^4 + x^2 + 1 = (x^2+x+1)^2
	}
	for _, p := range reducible {
		if p.Irreducible() {
			t.Errorf("%#x should be reducible", uint64(p))
		}
	}
}

func TestRandomPoly(t *testing.T) {
	seen := map[Poly]bool{}
	for seed := int64(0); seed < 5; seed++ {
		p, err := RandomPoly(seed)
		if err != nil {
			t.Fatalf("RandomPoly(%d): %v", seed, err)
		}
		if p.Deg() != 53 {
			t.Errorf("RandomPoly(%d) degree = %d, want 53", seed, p.Deg())
		}
		if !p.Irreducible() {
			t.Errorf("RandomPoly(%d) = %#x is not irreducible", seed, uint64(p))
		}
		seen[p] = true
	}
	if len(seen) < 2 {
		t.Error("distinct seeds should generally give distinct polynomials")
	}
	// Determinism.
	a, _ := RandomPoly(42)
	b, _ := RandomPoly(42)
	if a != b {
		t.Error("RandomPoly must be deterministic per seed")
	}
}

func TestWindowRollingMatchesDirect(t *testing.T) {
	const winSize = 16
	w := mustWindow(t, DefaultPoly, winSize)
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 4096)
	rng.Read(data)
	for i, b := range data {
		got := w.Roll(b)
		// The window contains the last winSize bytes (zero-padded early on).
		var window []byte
		if i+1 >= winSize {
			window = data[i+1-winSize : i+1]
		} else {
			window = append(make([]byte, winSize-i-1), data[:i+1]...)
		}
		want := FingerprintOf(DefaultPoly, window)
		if got != want {
			t.Fatalf("at byte %d: rolling fingerprint %#x != direct %#x", i, uint64(got), uint64(want))
		}
	}
}

func TestWindowRollingMatchesDirectRandomPoly(t *testing.T) {
	p, err := RandomPoly(99)
	if err != nil {
		t.Fatal(err)
	}
	w := mustWindow(t, p, DefaultWindowSize)
	rng := rand.New(rand.NewSource(8))
	data := make([]byte, 1024)
	rng.Read(data)
	for i, b := range data {
		got := w.Roll(b)
		if i+1 < DefaultWindowSize {
			continue
		}
		want := FingerprintOf(p, data[i+1-DefaultWindowSize:i+1])
		if got != want {
			t.Fatalf("at byte %d: rolling %#x != direct %#x", i, uint64(got), uint64(want))
		}
	}
}

func TestWindowPositionIndependence(t *testing.T) {
	// The fingerprint after a full window must depend only on the window
	// contents, not on what came before — the property CDC relies on.
	w1 := mustWindow(t, DefaultPoly, 8)
	w2 := mustWindow(t, DefaultPoly, 8)
	window := []byte("abcdefgh")
	prefix := []byte("SOME PREFIX OF DIFFERENT CONTENT AND LENGTH")
	for _, b := range append(append([]byte{}, prefix...), window...) {
		w1.Roll(b)
	}
	for _, b := range window {
		w2.Roll(b)
	}
	if w1.Fingerprint() != w2.Fingerprint() {
		t.Error("fingerprint depends on bytes outside the window")
	}
}

func TestWindowReset(t *testing.T) {
	w := mustWindow(t, DefaultPoly, 8)
	for _, b := range []byte("hello world hello") {
		w.Roll(b)
	}
	w.Reset()
	if w.Fingerprint() != 0 {
		t.Error("Reset should zero the digest")
	}
	var after Poly
	for _, b := range []byte("abcdefgh") {
		after = w.Roll(b)
	}
	if after != FingerprintOf(DefaultPoly, []byte("abcdefgh")) {
		t.Error("Window misbehaves after Reset")
	}
}

func TestNewWindowValidation(t *testing.T) {
	if _, err := NewWindow(DefaultPoly, 0); err == nil {
		t.Error("size 0 should be rejected")
	}
	if _, err := NewWindow(DefaultPoly, -3); err == nil {
		t.Error("negative size should be rejected")
	}
	if _, err := NewWindow(0b1011, 8); err == nil { // degree 3 < 9
		t.Error("low-degree polynomial should be rejected")
	}
}

// mustWindow builds a Window from known-good parameters, failing the test
// on error. Production code always uses NewWindow and handles the error.
func mustWindow(t *testing.T, poly Poly, size int) *Window {
	t.Helper()
	w, err := NewWindow(poly, size)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestZeroModulusPanics pins the documented programmer-error invariant of
// Mod and MulMod: a zero modulus is a caller bug and must fail fast with a
// panic rather than loop forever or return garbage. No public path lets
// input data choose the modulus (DefaultPoly is constant, RandomPoly
// returns only irreducible polynomials, NewWindow validates degree), so
// these panics are unreachable in production.
func TestZeroModulusPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s with zero modulus should panic", name)
			}
		}()
		fn()
	}
	mustPanic("Mod", func() { Poly(0b1011).Mod(0) })
	mustPanic("MulMod", func() { Poly(0b1011).MulMod(0b110, 0) })
}

func TestFingerprintDistribution(t *testing.T) {
	// Cut-point selection masks the low bits of the fingerprint; those bits
	// must be roughly uniform for the chunk-size distribution to hold. Roll
	// random data and check the frequency of (fp & 0xFF == 0) is near 1/256.
	w := mustWindow(t, DefaultPoly, DefaultWindowSize)
	rng := rand.New(rand.NewSource(12345))
	data := make([]byte, 1<<20)
	rng.Read(data)
	hits := 0
	for _, b := range data {
		if w.Roll(b)&0xFF == 0 {
			hits++
		}
	}
	expected := len(data) / 256
	if hits < expected/2 || hits > expected*2 {
		t.Errorf("mask hits = %d, expected near %d: low bits not uniform", hits, expected)
	}
}

func BenchmarkRoll(b *testing.B) {
	w, err := NewWindow(DefaultPoly, DefaultWindowSize)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 1<<16)
	rand.New(rand.NewSource(1)).Read(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range data {
			w.Roll(c)
		}
	}
}

func TestRollBlockMatchesRoll(t *testing.T) {
	// RollBlock over any split of the input must leave the window in the
	// exact state per-byte Roll produces — digests equal after every block
	// and at the end, for several window sizes and block fragmentations.
	rng := rand.New(rand.NewSource(71))
	data := make([]byte, 4096)
	rng.Read(data)
	for _, size := range []int{1, 16, 48, 64} {
		ref, err := NewWindow(DefaultPoly, size)
		if err != nil {
			t.Fatal(err)
		}
		blk, _ := NewWindow(DefaultPoly, size)
		for _, b := range data {
			ref.Roll(b)
		}
		for off := 0; off < len(data); {
			n := rng.Intn(97) + 1
			if off+n > len(data) {
				n = len(data) - off
			}
			blk.RollBlock(data[off : off+n])
			off += n
		}
		if ref.Fingerprint() != blk.Fingerprint() {
			t.Errorf("size=%d: RollBlock digest %#x != Roll digest %#x",
				size, uint64(blk.Fingerprint()), uint64(ref.Fingerprint()))
		}
	}
}

func TestRollFindMatchesRoll(t *testing.T) {
	// RollFind must stop at exactly the first byte whose fingerprint
	// satisfies fp&mask == mask, consuming the same number of bytes and
	// leaving the same digest as a per-byte Roll+compare loop — across
	// random data, masks of several widths, and arbitrary resume points.
	rng := rand.New(rand.NewSource(73))
	data := make([]byte, 1<<16)
	rng.Read(data)
	for _, maskBits := range []uint{4, 8, 11} {
		mask := Poly(1)<<maskBits - 1
		ref, err := NewWindow(DefaultPoly, 48)
		if err != nil {
			t.Fatal(err)
		}
		fast, _ := NewWindow(DefaultPoly, 48)

		// Reference: scan byte-by-byte recording every match position.
		var refMatches []int
		for i, b := range data {
			if ref.Roll(b)&mask == mask {
				refMatches = append(refMatches, i+1)
			}
		}

		// Fast: repeated RollFind calls over the remaining suffix.
		var fastMatches []int
		off := 0
		for off < len(data) {
			n, found := fast.RollFind(data[off:], mask)
			off += n
			if !found {
				break
			}
			fastMatches = append(fastMatches, off)
		}
		if len(refMatches) != len(fastMatches) {
			t.Fatalf("mask=%d bits: %d reference matches, %d RollFind matches",
				maskBits, len(refMatches), len(fastMatches))
		}
		for i := range refMatches {
			if refMatches[i] != fastMatches[i] {
				t.Fatalf("mask=%d bits: match %d at %d (reference) vs %d (RollFind)",
					maskBits, i, refMatches[i], fastMatches[i])
			}
		}
		if ref.Fingerprint() != fast.Fingerprint() {
			t.Errorf("mask=%d bits: final digests differ", maskBits)
		}
	}
}

func BenchmarkRollBlock(b *testing.B) {
	w, err := NewWindow(DefaultPoly, DefaultWindowSize)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(data)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		w.RollBlock(data)
	}
}
