package simdisk

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Fault injection. The paper measures a prototype on a healthy Ext3 file
// system; a production deduplicating store additionally has to survive the
// failure modes real disks exhibit: transient I/O errors, torn (prefix-
// truncated) writes, latent sector corruption (bit flips) and crashes in
// the middle of a persistence pass. FaultDisk is the deterministic,
// seed-driven fault injector the robustness tests are built on: it wraps a
// *Disk, implements the same operation surface (Interface), and decides
// the fate of every operation from a FaultPlan and a seeded RNG, so every
// failing schedule is reproducible from its seed.

// Sentinel errors distinguishing injected faults from genuine bugs.
var (
	// ErrInjected marks a fault injected by a FaultDisk (transient I/O
	// error, torn write).
	ErrInjected = errors.New("injected I/O fault")
	// ErrKilled marks a simulated crash: the operation (and everything
	// after it) aborts as if the process had died. SaveDir recognizes it
	// and deliberately leaves its partial temporary state on disk so
	// recovery paths can be exercised against realistic wreckage.
	ErrKilled = errors.New("simulated crash")
)

// Interface is the operation surface shared by *Disk and *FaultDisk: the
// primitive object operations the deduplication data path uses. Code that
// wants to be fault-testable can accept an Interface instead of a concrete
// *Disk.
type Interface interface {
	Create(cat Category, name string, data []byte) error
	Write(cat Category, name string, data []byte) error
	Delete(cat Category, name string) error
	Read(cat Category, name string) ([]byte, error)
	ReadRange(cat Category, name string, off, length int64) ([]byte, error)
	Exists(cat Category, name string) bool
	Size(cat Category, name string) (int64, bool)
	Names(cat Category) []string
}

var (
	_ Interface = (*Disk)(nil)
	_ Interface = (*FaultDisk)(nil)
)

// FaultPlan configures a FaultDisk. Rates are probabilities in [0,1]
// evaluated independently per operation with the plan's seeded RNG; zero
// values inject nothing, so the zero plan is a transparent wrapper.
type FaultPlan struct {
	// Seed drives the injector's RNG. Equal plans over equal operation
	// sequences inject identical faults.
	Seed int64

	// ReadErrorRate is the probability that a Read/ReadRange fails with
	// ErrInjected (a transient error: retrying may succeed).
	ReadErrorRate float64
	// WriteErrorRate is the probability that a Create/Write fails with
	// ErrInjected before mutating anything.
	WriteErrorRate float64
	// TornWriteRate is the probability that a Create persists only a
	// random prefix of the payload and then fails with ErrInjected — the
	// classic torn write of a non-atomic file system.
	TornWriteRate float64
	// ReadFlipRate is the probability that a Read/ReadRange returns data
	// with a single flipped bit while the stored object stays intact (a
	// transient bus/RAM error: re-reading returns good bytes).
	ReadFlipRate float64

	// OpLatency, when non-nil, charges the given simulated latency per
	// operation kind, accumulated into TotalLatency. It models slow paths
	// (a failing drive retrying internally) without real sleeping.
	OpLatency map[Op]time.Duration

	// KillAfterOps, when positive, makes every operation from the Nth
	// onward (1-based, counted across all operations) fail with
	// ErrKilled — the crash kill-point for tests that abort mid-workload.
	KillAfterOps int64

	// Categories, when non-nil, restricts injection to the categories
	// mapped to true; nil means every category is eligible.
	Categories map[Category]bool
}

// FaultStats counts the faults a FaultDisk has injected.
type FaultStats struct {
	ReadErrors  int64
	WriteErrors int64
	TornWrites  int64
	ReadFlips   int64
	Kills       int64
	Ops         int64
}

// FaultDisk wraps a Disk with deterministic fault injection. It is safe
// for concurrent use: one mutex serializes the RNG and counters, and the
// inner Disk serializes itself. Construct with NewFaultDisk.
type FaultDisk struct {
	inner *Disk

	mu      sync.Mutex
	plan    FaultPlan
	rng     *rand.Rand
	stats   FaultStats
	latency time.Duration
}

// NewFaultDisk returns a fault-injecting wrapper over disk driven by plan.
func NewFaultDisk(disk *Disk, plan FaultPlan) *FaultDisk {
	return &FaultDisk{
		inner: disk,
		plan:  plan,
		rng:   rand.New(rand.NewSource(plan.Seed)),
	}
}

// Inner returns the wrapped disk (for counters and direct inspection).
func (f *FaultDisk) Inner() *Disk { return f.inner }

// Stats returns a snapshot of the injected-fault counters.
func (f *FaultDisk) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// TotalLatency returns the simulated latency accumulated so far under the
// plan's OpLatency table.
func (f *FaultDisk) TotalLatency() time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.latency
}

// eligible reports whether cat is subject to injection under the plan.
func (f *FaultDisk) eligible(cat Category) bool {
	return f.plan.Categories == nil || f.plan.Categories[cat]
}

// step charges latency, advances the operation counter, and decides the
// fault for one operation. It returns (tearAt, err): err non-nil aborts
// the operation; tearAt >= 0 additionally instructs a torn write of that
// many payload bytes.
func (f *FaultDisk) step(op Op, cat Category, payloadLen int) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats.Ops++
	if f.plan.OpLatency != nil {
		f.latency += f.plan.OpLatency[op]
	}
	if f.plan.KillAfterOps > 0 && f.stats.Ops >= f.plan.KillAfterOps {
		f.stats.Kills++
		return -1, ErrKilled
	}
	if !f.eligible(cat) {
		return -1, nil
	}
	switch op {
	case OpRead:
		if f.plan.ReadErrorRate > 0 && f.rng.Float64() < f.plan.ReadErrorRate {
			f.stats.ReadErrors++
			return -1, fmt.Errorf("%w: read error", ErrInjected)
		}
	case OpCreate, OpWrite:
		if f.plan.WriteErrorRate > 0 && f.rng.Float64() < f.plan.WriteErrorRate {
			f.stats.WriteErrors++
			return -1, fmt.Errorf("%w: write error", ErrInjected)
		}
		if f.plan.TornWriteRate > 0 && payloadLen > 0 && f.rng.Float64() < f.plan.TornWriteRate {
			f.stats.TornWrites++
			return f.rng.Intn(payloadLen), nil
		}
	}
	return -1, nil
}

// maybeFlip returns data with one flipped bit when the plan says so; the
// stored object is untouched (the flip is transient).
func (f *FaultDisk) maybeFlip(cat Category, data []byte) []byte {
	if len(data) == 0 {
		return data
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.eligible(cat) || f.plan.ReadFlipRate <= 0 || f.rng.Float64() >= f.plan.ReadFlipRate {
		return data
	}
	f.stats.ReadFlips++
	bit := f.rng.Intn(len(data) * 8)
	out := append([]byte(nil), data...)
	out[bit/8] ^= 1 << (bit % 8)
	return out
}

// Create stores a new object, possibly failing or tearing the write.
func (f *FaultDisk) Create(cat Category, name string, data []byte) error {
	tearAt, err := f.step(OpCreate, cat, len(data))
	if err != nil {
		return err
	}
	if tearAt >= 0 {
		// Persist the prefix, then report failure: exactly what a crash
		// between a file system's data blocks and its size update leaves.
		if err := f.inner.Create(cat, name, data[:tearAt]); err != nil {
			return err
		}
		return fmt.Errorf("%w: torn write of %v %q after %d/%d bytes",
			ErrInjected, cat, name, tearAt, len(data))
	}
	return f.inner.Create(cat, name, data)
}

// Write replaces an object's content, possibly failing first.
func (f *FaultDisk) Write(cat Category, name string, data []byte) error {
	tearAt, err := f.step(OpWrite, cat, len(data))
	if err != nil {
		return err
	}
	if tearAt >= 0 {
		if err := f.inner.Write(cat, name, data[:tearAt]); err != nil {
			return err
		}
		return fmt.Errorf("%w: torn write of %v %q after %d/%d bytes",
			ErrInjected, cat, name, tearAt, len(data))
	}
	return f.inner.Write(cat, name, data)
}

// Delete removes an object.
func (f *FaultDisk) Delete(cat Category, name string) error {
	if _, err := f.step(OpDelete, cat, 0); err != nil {
		return err
	}
	return f.inner.Delete(cat, name)
}

// Read returns an object's content, possibly failing or flipping a bit.
func (f *FaultDisk) Read(cat Category, name string) ([]byte, error) {
	if _, err := f.step(OpRead, cat, 0); err != nil {
		return nil, err
	}
	data, err := f.inner.Read(cat, name)
	if err != nil {
		return nil, err
	}
	return f.maybeFlip(cat, data), nil
}

// ReadRange returns part of an object, possibly failing or flipping a bit.
func (f *FaultDisk) ReadRange(cat Category, name string, off, length int64) ([]byte, error) {
	if _, err := f.step(OpRead, cat, 0); err != nil {
		return nil, err
	}
	data, err := f.inner.ReadRange(cat, name, off, length)
	if err != nil {
		return nil, err
	}
	return f.maybeFlip(cat, data), nil
}

// Exists reports whether the object is present. Injected faults make it
// report false, like a failing stat.
func (f *FaultDisk) Exists(cat Category, name string) bool {
	if _, err := f.step(OpExists, cat, 0); err != nil {
		return false
	}
	return f.inner.Exists(cat, name)
}

// Size passes through to the inner disk (in-RAM metadata, never faulted).
func (f *FaultDisk) Size(cat Category, name string) (int64, bool) {
	return f.inner.Size(cat, name)
}

// Names passes through to the inner disk (inspection, never faulted).
func (f *FaultDisk) Names(cat Category) []string {
	return f.inner.Names(cat)
}

// --- Persistent (latent) corruption helpers -------------------------------
//
// The methods below mutate the *stored* objects of the inner disk directly,
// modelling latent sector errors: the damage persists until detected and
// repaired. They bypass the operation counters (corruption is not an access
// the store performs) and are deterministic under the plan's seed.

// FlipStoredBit flips one bit of the stored object, persistently. The bit
// index is taken modulo the object's size in bits.
func (f *FaultDisk) FlipStoredBit(cat Category, name string, bit int) error {
	return f.inner.mutateRaw(cat, name, func(data []byte) ([]byte, error) {
		if len(data) == 0 {
			return nil, fmt.Errorf("simdisk: cannot flip a bit of empty %v object %q", cat, name)
		}
		if bit < 0 {
			bit = -bit
		}
		bit %= len(data) * 8
		out := append([]byte(nil), data...)
		out[bit/8] ^= 1 << (bit % 8)
		return out, nil
	})
}

// TruncateStored truncates the stored object to n bytes, persistently (the
// durable version of a torn write discovered after the fact).
func (f *FaultDisk) TruncateStored(cat Category, name string, n int) error {
	return f.inner.mutateRaw(cat, name, func(data []byte) ([]byte, error) {
		if n < 0 || n > len(data) {
			return nil, fmt.Errorf("simdisk: truncate %v %q to %d of %d bytes", cat, name, n, len(data))
		}
		return append([]byte(nil), data[:n]...), nil
	})
}

// CorruptStored flips one random bit in approximately rate of the stored
// objects of cat, persistently, and returns the sorted names of the objects
// it corrupted. Selection and bit positions come from the plan's RNG, so a
// given seed corrupts the same objects every run.
func (f *FaultDisk) CorruptStored(cat Category, rate float64) []string {
	names := f.inner.Names(cat)
	sort.Strings(names)
	var corrupted []string
	f.mu.Lock()
	type pick struct {
		name string
		bit  int
	}
	var picks []pick
	for _, name := range names {
		if f.rng.Float64() < rate {
			picks = append(picks, pick{name, f.rng.Int()})
		}
	}
	f.mu.Unlock()
	for _, p := range picks {
		if err := f.FlipStoredBit(cat, p.name, p.bit); err == nil {
			corrupted = append(corrupted, p.name)
		}
	}
	return corrupted
}
