package simdisk

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Write-ahead delta log. SaveDir persists a full generation — correct but
// wrong-shaped for a server under continuous traffic, where every ingest
// would otherwise stay in RAM until a drain-time save (a crash losing all
// of it). The WAL turns the store append-mostly: every successful object
// mutation (Create/Write/Delete) on a Disk with an attached WAL is encoded
// as a CRC-framed record and buffered; Sync group-commits the buffer with
// one write+fsync shared by every concurrent waiter, which is the server's
// acknowledgement barrier (ack ⇒ the file's records are durable).
//
// On-disk layout, inside the store directory:
//
//	dir/
//	  MANIFEST.json, gen-000002/   the usual generation commit
//	  wal/
//	    seg-00000003.wal           segments, replayed in numeric order
//	    seg-00000004.wal           the active segment (appended + fsynced)
//
// Each segment starts with an 8-byte magic and holds records framed as
//
//	u32 bodyLen | u32 crc32(body) | body
//	body := u8 op | u8 category | u32 nameLen | name | data
//
// Recovery invariant: the mounted state is fold(newest committed
// generation, every valid log record in segment order). A torn tail —
// short header, impossible length, CRC mismatch, truncated body — ends the
// valid prefix: everything from the first invalid byte onward (including
// all later segments) is discarded, so a record is either wholly visible
// or not at all. Replaying records that a generation already folded is
// harmless: the log is complete and ordered, so re-applying a prefix of it
// on top of any generation that includes that prefix is idempotent (Set
// rewrites the same final value, Delete deletes the already-deleted).
// That superset-replay property is what makes every crash window of
// compaction safe: segments are only removed after the generation commit,
// and a crash between the two just replays folded records again.
//
// Compaction IS SaveDir: a generation commit into the WAL's own store
// directory snapshots the entire in-RAM state under the disk lock (no
// mutation can interleave), so after the marker swap every existing
// segment and every buffered record is folded. SaveDir then calls
// (*WAL).compacted, which drops them all and starts a fresh segment.

const (
	// walDirName is the log's subdirectory inside a store directory.
	walDirName = "wal"
	// walSegPrefix / walSegSuffix frame segment file names.
	walSegPrefix = "seg-"
	walSegSuffix = ".wal"
	// walMagic opens every segment file.
	walMagic = "MHDWAL01"
	// walFrameSize is the per-record frame overhead (length + CRC).
	walFrameSize = 8
	// walBodyFixed is the fixed part of a record body (op, cat, nameLen).
	walBodyFixed = 6
	// walMaxRecord bounds a single record body: anything larger in a
	// segment is corruption, not data (objects are chunk-container sized).
	walMaxRecord = 1 << 30
)

// WAL record operations.
const (
	// WALSet records a Create or Write: the object's complete new payload.
	WALSet byte = 1
	// WALDelete records a Delete.
	WALDelete byte = 2
)

// WALRecord is one logged object mutation.
type WALRecord struct {
	Op   byte
	Cat  Category
	Name string
	Data []byte
}

// WALStats is a point-in-time snapshot of a WAL's accounting.
type WALStats struct {
	// Segment is the active segment number.
	Segment int
	// DurableBytes / DurableRecords cover everything fsynced across the
	// live segments since the last compaction (the log footprint a
	// compaction would fold).
	DurableBytes   int64
	DurableRecords int64
	// PendingBytes / PendingRecords cover appended-but-unsynced records
	// (RAM only; lost by a crash, which is why acks wait on Sync).
	PendingBytes   int64
	PendingRecords int64
	// Syncs counts fsync batches; LastSyncUnixNano stamps the newest.
	Syncs            int64
	LastSyncUnixNano int64
	// Compactions counts generation commits that folded this WAL.
	Compactions int64
}

// WAL is the write-ahead delta log of one store directory. Safe for
// concurrent use: Append runs under the owning Disk's lock, Sync is called
// by any number of goroutines and group-commits, compaction runs under the
// disk lock and waits out an in-flight flush.
type WAL struct {
	storeDir string // the store directory (wal lives in storeDir/wal)
	dir      string // storeDir/wal

	mu          sync.Mutex
	f           *os.File
	seg         int
	buf         []byte // encoded records awaiting the next group commit
	bufRecords  int64
	appended    uint64 // records appended (monotone)
	synced      uint64 // records durable
	syncing     bool
	syncDone    chan struct{}
	err         error // sticky write/fsync failure; healed by compaction
	hook        SaveHook
	onBatch     func(records int)
	durBytes    int64
	durRecords  int64
	syncs       int64
	compactions int64
	closed      bool

	lastSyncNS atomic.Int64
}

// walSegName renders a segment file name.
func walSegName(n int) string {
	return fmt.Sprintf("%s%08d%s", walSegPrefix, n, walSegSuffix)
}

// walSegNumber parses a segment file name; ok is false for anything else.
func walSegNumber(name string) (int, bool) {
	if !strings.HasPrefix(name, walSegPrefix) || !strings.HasSuffix(name, walSegSuffix) {
		return 0, false
	}
	var n int
	num := name[len(walSegPrefix) : len(name)-len(walSegSuffix)]
	if _, err := fmt.Sscanf(num, "%d", &n); err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}

// walSegments lists the segment files under dir/wal in replay order.
func walSegments(storeDir string) ([]string, []int, error) {
	entries, err := os.ReadDir(filepath.Join(storeDir, walDirName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, nil
		}
		return nil, nil, err
	}
	type seg struct {
		name string
		n    int
	}
	var segs []seg
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if n, ok := walSegNumber(e.Name()); ok {
			segs = append(segs, seg{e.Name(), n})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].n < segs[j].n })
	names := make([]string, len(segs))
	nums := make([]int, len(segs))
	for i, s := range segs {
		names[i], nums[i] = s.name, s.n
	}
	return names, nums, nil
}

// OpenWAL opens (creating if needed) the write-ahead log of a store
// directory and starts a fresh active segment. Any torn tail left by a
// crash is trimmed first (see recoverWAL), so new records are never
// appended after bytes a replay would discard. Existing segments are kept
// and stay part of the replay prefix until the next compaction folds them.
func OpenWAL(storeDir string) (*WAL, error) {
	if err := os.MkdirAll(filepath.Join(storeDir, walDirName), 0o755); err != nil {
		return nil, fmt.Errorf("simdisk: wal: %w", err)
	}
	sum, err := recoverWAL(storeDir, nil)
	if err != nil {
		return nil, fmt.Errorf("simdisk: wal: recover: %w", err)
	}
	_, nums, err := walSegments(storeDir)
	if err != nil {
		return nil, fmt.Errorf("simdisk: wal: %w", err)
	}
	next := 1
	if len(nums) > 0 {
		next = nums[len(nums)-1] + 1
	}
	w := &WAL{
		storeDir:   storeDir,
		dir:        filepath.Join(storeDir, walDirName),
		seg:        next,
		durBytes:   sum.ValidBytes,
		durRecords: sum.Records,
	}
	if err := w.openSegmentLocked(); err != nil {
		return nil, err
	}
	return w, nil
}

// openSegmentLocked creates the active segment file with its magic header
// and fsyncs it (and the wal directory) into existence. Caller holds w.mu
// or has exclusive access.
func (w *WAL) openSegmentLocked() error {
	path := filepath.Join(w.dir, walSegName(w.seg))
	if err := w.point("create:"+path, nil); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("simdisk: wal: %w", err)
	}
	if _, err := f.Write([]byte(walMagic)); err != nil {
		f.Close()
		return fmt.Errorf("simdisk: wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("simdisk: wal: %w", err)
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return fmt.Errorf("simdisk: wal: %w", err)
	}
	w.f = f
	w.durBytes += int64(len(walMagic))
	return nil
}

// point consults the fault-injection hook for one log file mutation —
// the kill-point mechanism of the crash-consistency harness, mirroring
// SaveDir's savePoint. data non-nil is the payload about to be written;
// the hook may tear it (see commitBatch).
func (w *WAL) point(op string, data []byte) error {
	if w.hook == nil {
		return nil
	}
	_, err := w.hook(op, data)
	return err
}

// SetHook installs fn as the log's persistence fault injector (consulted
// before every segment create/append/fsync/remove); nil clears it.
func (w *WAL) SetHook(fn SaveHook) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.hook = fn
}

// SetBatchObserver installs fn to observe each group-commit batch (the
// number of records one fsync made durable). Used to feed the
// group-commit-batch-size histogram; nil clears it.
func (w *WAL) SetBatchObserver(fn func(records int)) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.onBatch = fn
}

// Dir returns the store directory this WAL belongs to.
func (w *WAL) Dir() string { return w.storeDir }

// sameStore reports whether dir names the WAL's own store directory (the
// only directory a generation commit into which folds this log).
func (w *WAL) sameStore(dir string) bool {
	a, err1 := filepath.Abs(w.storeDir)
	b, err2 := filepath.Abs(dir)
	if err1 != nil || err2 != nil {
		return filepath.Clean(w.storeDir) == filepath.Clean(dir)
	}
	return a == b
}

// Stats returns a snapshot of the log's accounting.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WALStats{
		Segment:          w.seg,
		DurableBytes:     w.durBytes,
		DurableRecords:   w.durRecords,
		PendingBytes:     int64(len(w.buf)),
		PendingRecords:   w.bufRecords,
		Syncs:            w.syncs,
		LastSyncUnixNano: w.lastSyncNS.Load(),
		Compactions:      w.compactions,
	}
}

// Err returns the sticky failure, if the log is broken (a write or fsync
// failed; every Sync returns it until a generation commit heals the log).
func (w *WAL) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// appendWALRecord encodes one record frame onto buf.
func appendWALRecord(buf []byte, r WALRecord) []byte {
	bodyLen := walBodyFixed + len(r.Name) + len(r.Data)
	buf = binary.BigEndian.AppendUint32(buf, uint32(bodyLen))
	crcAt := len(buf)
	buf = append(buf, 0, 0, 0, 0) // CRC patched below
	bodyAt := len(buf)
	buf = append(buf, r.Op, byte(r.Cat))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(r.Name)))
	buf = append(buf, r.Name...)
	buf = append(buf, r.Data...)
	binary.BigEndian.PutUint32(buf[crcAt:], crc32.ChecksumIEEE(buf[bodyAt:]))
	return buf
}

// Append buffers one record for the next group commit. Called by the
// owning Disk under its lock, which is what serializes record order with
// mutation order. Append never touches the file system; durability is
// Sync's job. On a broken log the record is dropped — the state it
// describes is safe in RAM and will be folded by the next generation
// commit; until then Sync keeps failing, so nothing is falsely acked.
func (w *WAL) Append(r WALRecord) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil || w.closed {
		return
	}
	w.buf = appendWALRecord(w.buf, r)
	w.bufRecords++
	w.appended++
}

// Sync makes every record appended before the call durable and returns
// once it is. Concurrent callers group-commit: one leader writes the
// whole buffer and fsyncs once; the others wait on that flush (or the
// next, if their records arrived mid-flush). This is the server's
// acknowledgement barrier and the reason N sessions share one fsync.
func (w *WAL) Sync() error {
	w.mu.Lock()
	target := w.appended
	for {
		if w.err != nil {
			err := w.err
			w.mu.Unlock()
			return err
		}
		if w.synced >= target {
			w.mu.Unlock()
			return nil
		}
		if w.syncing {
			// A flush is in flight; wait for it and re-check. Records
			// appended after that flush's cut need the next batch.
			ch := w.syncDone
			w.mu.Unlock()
			<-ch
			w.mu.Lock()
			continue
		}
		// Become the batch leader: take the whole buffer.
		w.syncing = true
		w.syncDone = make(chan struct{})
		done := w.syncDone
		batch := w.buf
		n := w.bufRecords
		upTo := w.appended
		w.buf = nil
		w.bufRecords = 0
		f := w.f
		path := filepath.Join(w.dir, walSegName(w.seg))
		w.mu.Unlock()

		err := w.commitBatch(f, path, batch)

		w.mu.Lock()
		w.syncing = false
		if err != nil {
			w.err = err
		} else {
			w.synced = upTo
			w.durBytes += int64(len(batch))
			w.durRecords += n
			w.syncs++
			w.lastSyncNS.Store(time.Now().UnixNano())
			if w.onBatch != nil && n > 0 {
				w.onBatch(int(n))
			}
		}
		close(done)
		// Loop: either our target is now durable, or new records were
		// appended mid-flush and we lead (or join) another batch.
	}
}

// commitBatch writes one group-commit batch and fsyncs the segment. The
// hook may tear the batch (persist a prefix, then fail — the torn tail a
// replay discards) or abort the append/fsync outright.
func (w *WAL) commitBatch(f *os.File, path string, batch []byte) error {
	if len(batch) > 0 {
		data := batch
		if w.hook != nil {
			torn, err := w.hook("append:"+path, data)
			if err != nil {
				if torn != nil && len(torn) < len(data) {
					// Torn write: the prefix reached the platter before the
					// crash. Make it visible to recovery, like a real tear.
					f.Write(torn)
					f.Sync()
				}
				return err
			}
			if torn != nil {
				data = torn
			}
		}
		if _, err := f.Write(data); err != nil {
			return fmt.Errorf("simdisk: wal append: %w", err)
		}
	}
	if err := w.point("fsync:"+path, nil); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("simdisk: wal fsync: %w", err)
	}
	return nil
}

// compacted is called by SaveDir — with the owning Disk's lock held —
// after a generation commit into the WAL's store directory. Everything
// the log holds (durable segments and buffered records alike) is folded
// into that generation, so the log restarts empty: the active segment is
// closed, every segment file is removed, and a fresh one is opened. A
// crash anywhere in here is safe by the superset-replay property (left-
// over folded segments replay idempotently on top of the new generation).
// A sticky log failure is healed here: the generation commit re-captured
// the full state, so the log is consistent again.
func (w *WAL) compacted() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.syncing {
		// Wait out an in-flight group commit; its leader holds no disk
		// lock, so this cannot deadlock.
		ch := w.syncDone
		w.mu.Unlock()
		<-ch
		w.mu.Lock()
	}
	if w.closed {
		return nil
	}
	w.buf = nil
	w.bufRecords = 0
	w.synced = w.appended
	w.err = nil
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
	oldNames, _, err := walSegments(w.storeDir)
	if err != nil {
		return fmt.Errorf("simdisk: wal: %w", err)
	}
	w.seg++
	w.durBytes = 0
	w.durRecords = 0
	w.compactions++
	if err := w.openSegmentLocked(); err != nil {
		return err
	}
	active := walSegName(w.seg)
	for _, name := range oldNames {
		if name == active {
			continue
		}
		path := filepath.Join(w.dir, name)
		if err := w.point("remove:"+path, nil); err != nil {
			return err
		}
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("simdisk: wal: %w", err)
		}
	}
	if err := syncDir(w.dir); err != nil {
		return fmt.Errorf("simdisk: wal: %w", err)
	}
	return nil
}

// Close flushes buffered records and closes the active segment. The log
// files stay behind: they are part of the store until a generation commit
// folds them.
func (w *WAL) Close() error {
	err := w.Sync()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return err
	}
	w.closed = true
	if w.f != nil {
		if cerr := w.f.Close(); err == nil {
			err = cerr
		}
		w.f = nil
	}
	return err
}

// ---------------------------------------------------------------------------
// Replay and recovery.

// WALReplayReport describes what a replay applied and what it discarded.
type WALReplayReport struct {
	// Segments scanned; Records and Bytes applied.
	Segments int
	Records  int64
	Bytes    int64
	// Truncated is true when a torn or corrupt tail ended the valid
	// prefix early; TruncatedSegment names where.
	Truncated        bool
	TruncatedSegment string
	// DiscardedSegments lists segments after the truncation point whose
	// records were ignored entirely (they are beyond the valid prefix).
	DiscardedSegments []string
}

// walScanSegment walks one segment's bytes and returns the records of its
// valid prefix, how many bytes that prefix spans (including the magic),
// and whether the whole segment was valid.
func walScanSegment(data []byte) (recs []WALRecord, validBytes int, whole bool) {
	if len(data) < len(walMagic) || string(data[:len(walMagic)]) != walMagic {
		return nil, 0, false
	}
	off := len(walMagic)
	for off < len(data) {
		rest := data[off:]
		if len(rest) < walFrameSize {
			return recs, off, false
		}
		bodyLen := int(binary.BigEndian.Uint32(rest))
		if bodyLen < walBodyFixed || bodyLen > walMaxRecord || bodyLen > len(rest)-walFrameSize {
			return recs, off, false
		}
		want := binary.BigEndian.Uint32(rest[4:])
		body := rest[walFrameSize : walFrameSize+bodyLen]
		if crc32.ChecksumIEEE(body) != want {
			return recs, off, false
		}
		op := body[0]
		cat := Category(body[1])
		nameLen := int(binary.BigEndian.Uint32(body[2:]))
		if (op != WALSet && op != WALDelete) || cat < 0 || cat >= numCategories ||
			nameLen < 0 || nameLen > bodyLen-walBodyFixed {
			return recs, off, false
		}
		name := string(body[walBodyFixed : walBodyFixed+nameLen])
		payload := body[walBodyFixed+nameLen:]
		recs = append(recs, WALRecord{Op: op, Cat: cat, Name: name, Data: payload})
		off += walFrameSize + bodyLen
	}
	return recs, off, true
}

// applyWAL replays one record onto the disk's object maps without
// charging access counters or re-journaling — replay models mounting
// state that was already written, exactly like LoadDir.
func (d *Disk) applyWAL(r WALRecord) {
	d.mu.Lock()
	defer d.mu.Unlock()
	switch r.Op {
	case WALSet:
		d.objects[r.Cat][r.Name] = append([]byte(nil), r.Data...)
	case WALDelete:
		delete(d.objects[r.Cat], r.Name)
	}
}

// ReplayWAL applies the store directory's write-ahead log onto d, in
// segment order, stopping cleanly at the first invalid record (the torn
// tail of a crash): everything before it is applied, everything from it
// onward — including all later segments — is ignored. Read-only: the log
// files are not modified (Recover and OpenWAL trim the tail on disk).
// A missing or empty log replays as zero records.
func ReplayWAL(storeDir string, d *Disk) (WALReplayReport, error) {
	var rep WALReplayReport
	names, _, err := walSegments(storeDir)
	if err != nil {
		return rep, fmt.Errorf("simdisk: wal replay: %w", err)
	}
	for i, name := range names {
		if rep.Truncated {
			rep.DiscardedSegments = append(rep.DiscardedSegments, name)
			continue
		}
		data, err := os.ReadFile(filepath.Join(storeDir, walDirName, name))
		if err != nil {
			return rep, fmt.Errorf("simdisk: wal replay %s: %w", name, err)
		}
		recs, validBytes, whole := walScanSegment(data)
		for _, r := range recs {
			d.applyWAL(r)
		}
		rep.Segments++
		rep.Records += int64(len(recs))
		rep.Bytes += int64(validBytes)
		if !whole {
			rep.Truncated = true
			rep.TruncatedSegment = name
		}
		_ = i
	}
	return rep, nil
}

// walRecoverSummary is what recoverWAL measured while trimming.
type walRecoverSummary struct {
	// ValidBytes / Records across the segments kept (magic included).
	ValidBytes int64
	Records    int64
	// Trimmed lists repairs: "truncate:<seg>" for a tail trim,
	// "remove:<seg>" for a discarded segment.
	Trimmed []string
}

// recoverWAL trims the log's crash debris on disk so the valid prefix is
// exactly what remains: a segment with a torn tail is truncated to its
// valid prefix (or removed when even its magic is gone), and every
// segment after the first invalid point is removed — appending must never
// resume after bytes a replay would discard. Idempotent AND re-entrant:
// segments beyond the first invalid one are removed in reverse order and
// the invalid boundary segment is repaired last, so a crash anywhere in
// here leaves the boundary in place to keep marking where the valid
// prefix ends (repairing it first would let the surviving later segments
// rejoin the log and resurrect discarded records). hook, when non-nil, is
// consulted before each repair (crash-inside-recovery tests).
func recoverWAL(storeDir string, hook func(step string) error) (walRecoverSummary, error) {
	var sum walRecoverSummary
	names, _, err := walSegments(storeDir)
	if err != nil {
		return sum, err
	}
	dir := filepath.Join(storeDir, walDirName)

	// Pass 1, read-only: find the boundary — the first segment whose scan
	// stops early — and account for the valid prefix.
	boundary := -1
	boundaryValid := 0
	for i, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return sum, err
		}
		recs, validBytes, whole := walScanSegment(data)
		if !whole {
			boundary, boundaryValid = i, validBytes
			if validBytes > 0 {
				sum.ValidBytes += int64(validBytes)
				sum.Records += int64(len(recs))
			}
			break
		}
		sum.ValidBytes += int64(len(data))
		sum.Records += int64(len(recs))
	}
	if boundary < 0 {
		return sum, nil
	}

	// Pass 2: remove the segments beyond the boundary, newest first.
	remove := func(name string) error {
		if hook != nil {
			if err := hook("wal-remove:" + name); err != nil {
				return err
			}
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil && !os.IsNotExist(err) {
			return err
		}
		sum.Trimmed = append(sum.Trimmed, "remove:"+name)
		return nil
	}
	for i := len(names) - 1; i > boundary; i-- {
		if err := remove(names[i]); err != nil {
			return sum, err
		}
	}

	// Finally repair the boundary itself: truncate to its valid prefix, or
	// remove it when not even the magic survived.
	name := names[boundary]
	if boundaryValid == 0 {
		if err := remove(name); err != nil {
			return sum, err
		}
	} else {
		if hook != nil {
			if err := hook("wal-truncate:" + name); err != nil {
				return sum, err
			}
		}
		path := filepath.Join(dir, name)
		if err := os.Truncate(path, int64(boundaryValid)); err != nil {
			return sum, err
		}
		f, err := os.Open(path)
		if err == nil {
			f.Sync()
			f.Close()
		}
		sum.Trimmed = append(sum.Trimmed, "truncate:"+name)
	}
	if err := syncDir(dir); err != nil && !os.IsNotExist(err) {
		return sum, err
	}
	return sum, nil
}
