package simdisk

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// mountReplayed mounts a store directory the way a durable open does:
// newest committed generation + the write-ahead log's valid prefix.
func mountReplayed(t *testing.T, dir string) (*Disk, WALReplayReport) {
	t.Helper()
	d, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	rep, err := ReplayWAL(dir, d)
	if err != nil {
		t.Fatalf("replay %s: %v", dir, err)
	}
	return d, rep
}

// writeSeg materializes one log segment by hand: magic + records, with the
// final tearBytes chopped off to model a torn tail.
func writeSeg(t *testing.T, dir string, n int, recs []WALRecord, tearBytes int) {
	t.Helper()
	buf := []byte(walMagic)
	for _, r := range recs {
		buf = appendWALRecord(buf, r)
	}
	if tearBytes > 0 {
		if tearBytes >= len(buf) {
			t.Fatalf("tear %d >= segment %d", tearBytes, len(buf))
		}
		buf = buf[:len(buf)-tearBytes]
	}
	if err := os.MkdirAll(filepath.Join(dir, walDirName), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, walDirName, walSegName(n)), buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	d := New()
	d.SetWAL(w)

	if err := d.Create(Data, "c1", []byte("chunk one")); err != nil {
		t.Fatal(err)
	}
	if err := d.Create(Hook, "h1", []byte("hook")); err != nil {
		t.Fatal(err)
	}
	if err := d.Create(FileManifest, "m0/disk:1", []byte("recipe")); err != nil {
		t.Fatal(err)
	}
	if err := d.Write(Data, "c1", []byte("chunk one, rewritten")); err != nil {
		t.Fatal(err)
	}
	if err := d.Create(Data, "c2", []byte("chunk two")); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete(Data, "c2"); err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.PendingRecords != 6 {
		t.Fatalf("pending records = %d, want 6", st.PendingRecords)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.PendingRecords != 0 || st.DurableRecords != 6 || st.Syncs != 1 {
		t.Fatalf("stats after sync = %+v", st)
	}
	if st.LastSyncUnixNano == 0 {
		t.Error("LastSyncUnixNano not stamped")
	}

	// A mount without any generation commit sees exactly the logged state.
	back, rep := mountReplayed(t, dir)
	if rep.Records != 6 || rep.Truncated {
		t.Fatalf("replay report = %+v, want 6 records, no truncation", rep)
	}
	if !sameState(snapshot(d), snapshot(back)) {
		t.Fatal("replayed state differs from live state")
	}

	// And a mount on top of a generation (compaction) + later records.
	if err := d.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	if err := d.Create(Data, "c3", []byte("post-compaction")); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	back, rep = mountReplayed(t, dir)
	if rep.Records != 1 {
		t.Fatalf("post-compaction replay records = %d, want 1", rep.Records)
	}
	if !sameState(snapshot(d), snapshot(back)) {
		t.Fatal("generation + log replay differs from live state")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWALTornTailDiscard(t *testing.T) {
	dir := t.TempDir()
	rec := func(name, data string) WALRecord {
		return WALRecord{Op: WALSet, Cat: Data, Name: name, Data: []byte(data)}
	}
	writeSeg(t, dir, 1, []WALRecord{rec("a", "aaaa"), rec("b", "bbbb")}, 0)
	writeSeg(t, dir, 2, []WALRecord{rec("c", "cccc"), rec("d", "dddd")}, 5) // torn mid-record
	writeSeg(t, dir, 3, []WALRecord{rec("e", "eeee")}, 0)                   // beyond the torn tail

	// Replay is read-only and stops cleanly at the tear: a, b, c visible;
	// the torn d and everything after (all of segment 3) discarded.
	d := New()
	rep, err := ReplayWAL(dir, d)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 3 || !rep.Truncated || rep.TruncatedSegment != walSegName(2) {
		t.Fatalf("replay report = %+v", rep)
	}
	if len(rep.DiscardedSegments) != 1 || rep.DiscardedSegments[0] != walSegName(3) {
		t.Fatalf("discarded = %v, want [%s]", rep.DiscardedSegments, walSegName(3))
	}
	for _, name := range []string{"a", "b", "c"} {
		if !d.Exists(Data, name) {
			t.Errorf("record %q lost", name)
		}
	}
	if d.Exists(Data, "d") || d.Exists(Data, "e") {
		t.Error("torn or post-tear record visible")
	}

	// Recover trims the debris on disk: segment 2 truncated to its valid
	// prefix, segment 3 removed.
	rrep, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Post-tear segments are removed before the torn one is truncated
	// (reverse order — see recoverWAL's re-entrancy comment).
	want := []string{"remove:" + walSegName(3), "truncate:" + walSegName(2)}
	if fmt.Sprint(rrep.WALTrimmed) != fmt.Sprint(want) {
		t.Fatalf("WALTrimmed = %v, want %v", rrep.WALTrimmed, want)
	}
	if _, err := os.Stat(filepath.Join(dir, walDirName, walSegName(3))); !os.IsNotExist(err) {
		t.Error("post-tear segment survived Recover")
	}
	d2, rep2 := mountReplayed(t, dir)
	if rep2.Truncated || rep2.Records != 3 {
		t.Fatalf("post-recover replay = %+v, want clean 3 records", rep2)
	}
	if !sameState(snapshot(d), snapshot(d2)) {
		t.Fatal("state changed across Recover")
	}

	// OpenWAL performs the same trim itself and never appends after
	// discardable bytes: the fresh active segment follows the kept ones.
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if st := w.Stats(); st.Segment != 3 || st.DurableRecords != 3 {
		t.Fatalf("reopened stats = %+v, want segment 3 over 3 records", st)
	}
}

func TestWALGroupCommit(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	d := New()
	d.SetWAL(w)

	var batches []int
	var batchMu sync.Mutex
	w.SetBatchObserver(func(n int) {
		batchMu.Lock()
		batches = append(batches, n)
		batchMu.Unlock()
	})

	// Park the first flush inside its fsync, append a burst of records
	// while it is in flight, then release: the burst's waiters must share
	// one group commit instead of one fsync each.
	entered := make(chan struct{})
	release := make(chan struct{})
	var fsyncs int
	w.SetHook(func(op string, data []byte) ([]byte, error) {
		if strings.HasPrefix(op, "fsync:") {
			fsyncs++
			if fsyncs == 1 {
				close(entered)
				<-release
			}
		}
		return data, nil
	})

	if err := d.Create(Data, "first", []byte("x")); err != nil {
		t.Fatal(err)
	}
	lead := make(chan error, 1)
	go func() { lead <- w.Sync() }()
	<-entered

	const burst = 24
	for i := 0; i < burst; i++ {
		if err := d.Create(Data, fmt.Sprintf("burst-%02d", i), []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); errs[i] = w.Sync() }(i)
	}
	close(release)
	if err := <-lead; err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("waiter %d: %v", i, err)
		}
	}

	st := w.Stats()
	if st.DurableRecords != burst+1 || st.PendingRecords != 0 {
		t.Fatalf("stats = %+v, want %d durable", st, burst+1)
	}
	if st.Syncs != 2 {
		t.Fatalf("fsync batches = %d, want exactly 2 (leader + one shared group commit)", st.Syncs)
	}
	batchMu.Lock()
	defer batchMu.Unlock()
	if len(batches) != 2 || batches[0] != 1 || batches[1] != burst {
		t.Fatalf("batch sizes = %v, want [1 %d]", batches, burst)
	}
}

func TestWALCompactionFoldsLog(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	d := New()
	d.SetWAL(w)
	for i := 0; i < 8; i++ {
		if err := d.Create(Data, fmt.Sprintf("c%d", i), bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := d.Create(Data, "unsynced", []byte("buffered only")); err != nil {
		t.Fatal(err)
	}

	// The generation commit folds both the durable segments and the
	// buffered record, restarting the log empty.
	if err := d.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.DurableRecords != 0 || st.PendingRecords != 0 || st.Compactions != 1 {
		t.Fatalf("stats after compaction = %+v, want an empty log", st)
	}
	names, _, err := walSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != walSegName(st.Segment) {
		t.Fatalf("segments after compaction = %v, want only the fresh active one", names)
	}
	back, rep := mountReplayed(t, dir)
	if rep.Records != 0 {
		t.Fatalf("replay after compaction applied %d records, want 0", rep.Records)
	}
	if !sameState(snapshot(d), snapshot(back)) {
		t.Fatal("compacted state does not round-trip")
	}
}

func TestWALStickyErrorHealedByCompaction(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	d := New()
	d.SetWAL(w)

	boom := errors.New("disk on fire")
	w.SetHook(func(op string, data []byte) ([]byte, error) {
		if strings.HasPrefix(op, "fsync:") {
			return nil, boom
		}
		return data, nil
	})
	if err := d.Create(Data, "a", []byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); !errors.Is(err, boom) {
		t.Fatalf("sync error = %v, want the injected failure", err)
	}
	// The log is broken: nothing can be acked, and further records are
	// dropped (their state is safe in RAM).
	if err := d.Create(Data, "b", []byte("bbbb")); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); !errors.Is(err, boom) {
		t.Fatalf("sync after failure = %v, want sticky error", err)
	}
	w.SetHook(nil)
	if err := w.Sync(); !errors.Is(err, boom) {
		t.Fatalf("sticky error must persist until compaction, got %v", err)
	}

	// A generation commit re-captures the full state and heals the log.
	if err := d.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	if err := w.Err(); err != nil {
		t.Fatalf("error not healed by compaction: %v", err)
	}
	if err := d.Create(Data, "c", []byte("cccc")); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	back, _ := mountReplayed(t, dir)
	if !sameState(snapshot(d), snapshot(back)) {
		t.Fatal("healed log does not round-trip")
	}
}

func TestSaveWithoutWALRemovesStaleLog(t *testing.T) {
	// A store that once ran durably leaves its log behind; a later
	// non-durable save must remove it, or the stale records would replay
	// on top of the new generation and resurrect dead state.
	dir := t.TempDir()
	writeSeg(t, dir, 1, []WALRecord{{Op: WALSet, Cat: Data, Name: "ghost", Data: []byte("boo")}}, 0)

	d := New()
	if err := d.Create(Data, "real", []byte("real")); err != nil {
		t.Fatal(err)
	}
	if err := d.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, walDirName)); !os.IsNotExist(err) {
		t.Fatal("stale wal/ survived a non-durable generation commit")
	}
	back, rep := mountReplayed(t, dir)
	if rep.Records != 0 {
		t.Fatalf("stale log replayed %d records", rep.Records)
	}
	if back.Exists(Data, "ghost") {
		t.Fatal("stale log resurrected a dead object")
	}
}

// ---------------------------------------------------------------------------
// The kill-every-point crash matrix.

// wop is one step of a scripted durable workload.
type wop struct {
	kind byte // 'C' create, 'W' write, 'D' delete, 'S' sync (ack), 'G' generation commit (ack)
	cat  Category
	name string
	data []byte
}

// walKillScript builds the deterministic workload of one seed: object
// mutations with group commits between them and one compaction mid-stream,
// so kill points land in log appends, fsyncs, the generation commit and
// the segment swap alike.
func walKillScript(seed int64) []wop {
	rng := rand.New(rand.NewSource(seed))
	payload := func(n int) []byte {
		b := make([]byte, 1+rng.Intn(n))
		rng.Read(b)
		return b
	}
	return []wop{
		{'C', Data, "c1", payload(200)},
		{'C', Hook, "h1", payload(40)},
		{'S', 0, "", nil},
		{'C', Data, "c2", payload(300)},
		{'W', Data, "c1", payload(150)},
		{'S', 0, "", nil},
		{'G', 0, "", nil},
		{'C', FileManifest, "f/one", payload(80)},
		{'D', Data, "c2", nil},
		{'S', 0, "", nil},
		{'C', Data, "c3", payload(500)},
		{'S', 0, "", nil},
	}
}

// walRunResult is what a (possibly killed) scripted run observed:
// snapshots after every mutation, and the index of the last mutation whose
// acknowledgement barrier succeeded.
type walRunResult struct {
	snaps  []map[Category]map[string][]byte
	acked  int
	killed bool
}

// runWALScript executes script against a fresh durable mount of dir,
// stopping at the first injected kill exactly as a crash would (no Close,
// no cleanup).
func runWALScript(t *testing.T, dir string, script []wop, hook SaveHook) walRunResult {
	t.Helper()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	d := New()
	d.SetWAL(w)
	w.SetHook(hook)
	d.SetSaveHook(hook)

	res := walRunResult{snaps: []map[Category]map[string][]byte{snapshot(d)}}
	barrier := func(err error) bool {
		if err == nil {
			res.acked = len(res.snaps) - 1
			return true
		}
		if errors.Is(err, ErrKilled) {
			res.killed = true
			return false
		}
		t.Fatalf("barrier failed with a non-crash error: %v", err)
		return false
	}
	for _, op := range script {
		switch op.kind {
		case 'C':
			if err := d.Create(op.cat, op.name, op.data); err != nil {
				t.Fatalf("create %q: %v", op.name, err)
			}
		case 'W':
			if err := d.Write(op.cat, op.name, op.data); err != nil {
				t.Fatalf("write %q: %v", op.name, err)
			}
		case 'D':
			if err := d.Delete(op.cat, op.name); err != nil {
				t.Fatalf("delete %q: %v", op.name, err)
			}
		case 'S':
			if !barrier(w.Sync()) {
				return res
			}
			continue
		case 'G':
			if !barrier(d.SaveDir(dir)) {
				return res
			}
			continue
		}
		res.snaps = append(res.snaps, snapshot(d))
	}
	if !barrier(w.Close()) {
		return res
	}
	return res
}

// TestWALKillEveryPoint is the acceptance matrix: the scripted workload is
// killed at every persistence point — log appends (torn and clean), group
// commit fsyncs, every step of the generation commit and the segment swap —
// across several seeds, and after every kill the recovered mount must be
// prefix-consistent: it equals the state after some mutation prefix that
// includes every acknowledged mutation. Recovery itself must be idempotent.
func TestWALKillEveryPoint(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	runs := 0
	for _, seed := range seeds {
		script := walKillScript(seed)

		// Probe run: count the workload's persistence points.
		var total int
		probeDir := t.TempDir()
		res := runWALScript(t, probeDir, script, func(path string, data []byte) ([]byte, error) {
			total++
			return data, nil
		})
		if res.killed || res.acked != len(res.snaps)-1 {
			t.Fatalf("probe run did not complete: %+v", res)
		}
		back, _ := mountReplayed(t, probeDir)
		if !sameState(snapshot(back), res.snaps[len(res.snaps)-1]) {
			t.Fatal("crash-free run does not round-trip")
		}
		if total < 10 {
			t.Fatalf("suspiciously few kill points: %d", total)
		}

		for kill := 1; kill <= total; kill++ {
			for _, tear := range []bool{false, true} {
				kill, tear := kill, tear
				runs++
				t.Run(fmt.Sprintf("seed-%d-kill-%d-tear-%v", seed, kill, tear), func(t *testing.T) {
					dir := t.TempDir()
					var point int
					res := runWALScript(t, dir, script, func(path string, data []byte) ([]byte, error) {
						point++
						if point == kill {
							if tear && len(data) > 1 {
								// Torn write: half the payload reaches the
								// platter before the crash.
								return data[:len(data)/2], ErrKilled
							}
							return nil, ErrKilled
						}
						return data, nil
					})
					if !res.killed {
						t.Fatalf("kill point %d never fired", kill)
					}

					if _, err := Recover(dir); err != nil {
						t.Fatalf("recover after kill: %v", err)
					}
					got, _ := mountReplayed(t, dir)
					state := snapshot(got)
					match := -1
					for i := res.acked; i < len(res.snaps); i++ {
						if sameState(state, res.snaps[i]) {
							match = i
							break
						}
					}
					if match < 0 {
						t.Fatalf("recovered state is not a mutation prefix covering all %d acked mutations", res.acked)
					}

					// Recovery converges: a second Recover changes nothing.
					if _, err := Recover(dir); err != nil {
						t.Fatalf("second recover: %v", err)
					}
					again, _ := mountReplayed(t, dir)
					if !sameState(state, snapshot(again)) {
						t.Fatal("second Recover changed the mounted state")
					}
				})
			}
		}
	}
	if !testing.Short() && runs < 100 {
		t.Fatalf("crash matrix ran only %d seeded runs, want >= 100", runs)
	}
}

// ---------------------------------------------------------------------------
// Recover idempotence over debris layouts, with crashes inside Recover.

// TestRecoverIdempotentDebris drives Recover's own kill seam over a table
// of crash-debris layouts: for each layout, recovery is killed at every
// repair step and re-run, and the converged mount must equal the mount a
// crash-free recovery produces. A further Recover must be a no-op.
func TestRecoverIdempotentDebris(t *testing.T) {
	rec := func(name, data string) WALRecord {
		return WALRecord{Op: WALSet, Cat: Data, Name: name, Data: []byte(data)}
	}
	saveBase := func(t *testing.T, dir string) {
		d := New()
		if err := d.Create(Data, "base", []byte("committed")); err != nil {
			t.Fatal(err)
		}
		if err := d.Create(FileManifest, "f/base", []byte("recipe")); err != nil {
			t.Fatal(err)
		}
		if err := d.SaveDir(dir); err != nil {
			t.Fatal(err)
		}
	}
	layouts := []struct {
		name  string
		build func(t *testing.T, dir string)
	}{
		{"stale-tmp-and-torn-tail", func(t *testing.T, dir string) {
			saveBase(t, dir)
			tmp := filepath.Join(dir, "gen-000002.tmp", "chunks")
			if err := os.MkdirAll(tmp, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(tmp, "junk"), []byte("partial"), 0o644); err != nil {
				t.Fatal(err)
			}
			writeSeg(t, dir, 4, []WALRecord{rec("w1", "logged"), rec("w2", "torn")}, 7)
		}},
		{"orphan-partial-generation", func(t *testing.T, dir string) {
			saveBase(t, dir)
			orphan := filepath.Join(dir, "gen-000002", "chunks")
			if err := os.MkdirAll(orphan, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(orphan, "halfway"), []byte("no GEN.json"), 0o644); err != nil {
				t.Fatal(err)
			}
			writeSeg(t, dir, 1, []WALRecord{rec("w1", "logged")}, 0)
		}},
		{"torn-marker", func(t *testing.T, dir string) {
			saveBase(t, dir)
			marker := filepath.Join(dir, markerFile)
			raw, err := os.ReadFile(marker)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(marker, raw[:len(raw)/2], 0o644); err != nil {
				t.Fatal(err)
			}
			writeSeg(t, dir, 2, []WALRecord{rec("w1", "logged")}, 0)
		}},
		{"bad-magic-mid-log", func(t *testing.T, dir string) {
			writeSeg(t, dir, 1, []WALRecord{rec("w1", "kept")}, 0)
			if err := os.WriteFile(filepath.Join(dir, walDirName, walSegName(2)), []byte("GARBAGE!"), 0o644); err != nil {
				t.Fatal(err)
			}
			writeSeg(t, dir, 3, []WALRecord{rec("w3", "beyond the corruption")}, 0)
		}},
		{"wal-only-torn-tail", func(t *testing.T, dir string) {
			writeSeg(t, dir, 1, []WALRecord{rec("w1", "kept"), rec("w2", "torn")}, 3)
		}},
		{"legacy-layout-with-log-debris", func(t *testing.T, dir string) {
			if err := os.MkdirAll(filepath.Join(dir, "chunks"), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, "chunks", "old"), []byte("legacy"), 0o644); err != nil {
				t.Fatal(err)
			}
			writeSeg(t, dir, 1, []WALRecord{rec("w1", "kept"), rec("w2", "torn")}, 3)
		}},
	}

	for _, lt := range layouts {
		lt := lt
		t.Run(lt.name, func(t *testing.T) {
			defer func() { recoverHook = nil }()

			// Reference: a crash-free recovery of this layout.
			refDir := t.TempDir()
			lt.build(t, refDir)
			var steps []string
			recoverHook = func(step string) error { steps = append(steps, step); return nil }
			if _, err := Recover(refDir); err != nil {
				t.Fatalf("clean recover: %v", err)
			}
			recoverHook = nil
			ref, _ := mountReplayed(t, refDir)
			want := snapshot(ref)
			if len(steps) == 0 {
				t.Fatalf("layout needs no repairs; it does not exercise the seam")
			}

			// A second recovery finds nothing left to repair.
			rep, err := Recover(refDir)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.RolledBack) != 0 || len(rep.WALTrimmed) != 0 || rep.RepairedMarker {
				t.Fatalf("second Recover still repairing: %+v", rep)
			}

			// Kill the recovery at every repair step; re-running must
			// converge on the reference state.
			for kill := 1; kill <= len(steps); kill++ {
				kill := kill
				t.Run(fmt.Sprintf("kill-step-%d", kill), func(t *testing.T) {
					dir := t.TempDir()
					lt.build(t, dir)
					var n int
					recoverHook = func(step string) error {
						n++
						if n == kill {
							return ErrKilled
						}
						return nil
					}
					if _, err := Recover(dir); !errors.Is(err, ErrKilled) {
						t.Fatalf("killed recover error = %v, want ErrKilled", err)
					}
					recoverHook = nil
					if _, err := Recover(dir); err != nil {
						t.Fatalf("recover after crash inside recovery: %v", err)
					}
					got, grep := mountReplayed(t, dir)
					if grep.Truncated {
						t.Error("converged log still has a torn tail")
					}
					if !sameState(want, snapshot(got)) {
						t.Fatal("recovery after a crash inside Recover diverged from the crash-free result")
					}
				})
			}
		})
	}
}
