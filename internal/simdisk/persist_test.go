package simdisk

import (
	"bytes"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	d := New()
	d.Create(Data, "aabbcc", []byte("payload-1"))
	d.Create(Hook, "ddeeff", []byte("payload-2"))
	d.Create(Manifest, "aabbcc", []byte("payload-3"))
	d.Create(FileManifest, "m00/d01", []byte("payload-4")) // slash in name
	d.Create(FileManifest, "win:disk\\c", []byte("payload-5"))

	dir := t.TempDir()
	if err := d.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for cat, name := range map[Category]string{
		Data: "aabbcc", Hook: "ddeeff", Manifest: "aabbcc",
	} {
		got, err := back.Read(cat, name)
		if err != nil {
			t.Fatalf("%v %q: %v", cat, name, err)
		}
		want, _ := d.Read(cat, name)
		if !bytes.Equal(got, want) {
			t.Errorf("%v %q: content differs", cat, name)
		}
	}
	for _, name := range []string{"m00/d01", "win:disk\\c"} {
		if _, err := back.Read(FileManifest, name); err != nil {
			t.Errorf("file manifest %q lost in round-trip: %v", name, err)
		}
	}
	// Loaded disks start with fresh counters (minus the reads above).
	if back.Counters().Creates.Total() != 0 {
		t.Error("LoadDir should not count creates")
	}
}

func TestLoadMissingDirIsEmpty(t *testing.T) {
	d, err := LoadDir(filepath.Join(t.TempDir(), "nothing-here"))
	if err != nil {
		t.Fatal(err)
	}
	if d.TotalObjects() != 0 {
		t.Error("loading a missing directory should give an empty disk")
	}
}

func TestNameEncodingRoundTrip(t *testing.T) {
	f := func(s string) bool {
		enc := encodeName(s)
		if filepath.Base(enc) != enc && s != "" {
			// Encoded names must not contain separators (single path
			// element), except the degenerate empty string.
			return false
		}
		dec, err := decodeName(enc)
		return err == nil && dec == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"a/b/c", "x%2Fy", "%", "C:\\img", ""} {
		dec, err := decodeName(encodeName(s))
		if err != nil || dec != s {
			t.Errorf("round-trip of %q failed: %q, %v", s, dec, err)
		}
	}
}

func TestDecodeNameRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"%", "%2", "%zz"} {
		if _, err := decodeName(bad); err == nil {
			t.Errorf("decodeName(%q) succeeded", bad)
		}
	}
}

func TestDirSize(t *testing.T) {
	d := New()
	d.Create(Data, "a", make([]byte, 1000))
	d.Create(Hook, "b", make([]byte, 20))
	dir := t.TempDir()
	if err := d.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	n, err := DirSize(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1020 {
		t.Errorf("DirSize = %d, want 1020", n)
	}
}
