package simdisk

import (
	"sync"
	"testing"
	"time"
)

// TestReadDelayAppliesOutsideLock: the simulated device latency must add
// at least the configured delay per read, and — because the sleep happens
// after the disk mutex is released — concurrent reads must overlap their
// waits instead of serializing them. That overlap is what lets the restore
// pipeline's parallel speedup show up on the simulated device.
func TestReadDelayAppliesOutsideLock(t *testing.T) {
	d := New()
	if err := d.Create(Data, "obj", make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}

	const delay = 20 * time.Millisecond
	d.SetReadDelay(delay)

	start := time.Now()
	if _, err := d.Read(Data, "obj"); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took < delay {
		t.Fatalf("single read took %v, want >= %v", took, delay)
	}

	// 8 concurrent reads: if the delay were served under the lock they
	// would take >= 8*delay; overlapping waits keep the wall clock well
	// under that. Allow generous scheduler slack (4x one delay).
	const readers = 8
	start = time.Now()
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := d.ReadRange(Data, "obj", 0, 512); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if took := time.Since(start); took >= readers*delay {
		t.Fatalf("%d concurrent reads took %v — delays serialized under the lock (single delay %v)",
			readers, took, delay)
	} else if took < delay {
		t.Fatalf("concurrent reads took %v, below one delay %v", took, delay)
	}

	// Negative clears; reads are fast again.
	d.SetReadDelay(-1)
	start = time.Now()
	if _, err := d.Read(Data, "obj"); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took >= delay {
		t.Fatalf("read after clearing delay took %v", took)
	}
}
