package simdisk

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestFaultDiskZeroPlanIsTransparent(t *testing.T) {
	d := New()
	f := NewFaultDisk(d, FaultPlan{Seed: 1})
	if err := f.Create(Data, "a", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := f.Read(Data, "a")
	if err != nil || !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("Read = %q, %v", got, err)
	}
	if !f.Exists(Data, "a") {
		t.Error("Exists = false")
	}
	if n, ok := f.Size(Data, "a"); !ok || n != 5 {
		t.Errorf("Size = %d, %v", n, ok)
	}
	if err := f.Write(Data, "a", []byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Delete(Data, "a"); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.ReadErrors+st.WriteErrors+st.TornWrites+st.ReadFlips+st.Kills != 0 {
		t.Errorf("zero plan injected faults: %+v", st)
	}
}

func TestFaultDiskDeterministic(t *testing.T) {
	run := func() (FaultStats, []error) {
		d := New()
		f := NewFaultDisk(d, FaultPlan{Seed: 42, ReadErrorRate: 0.3, WriteErrorRate: 0.3})
		var errs []error
		for i := 0; i < 50; i++ {
			name := string(rune('a' + i%26))
			errs = append(errs, f.Create(Data, name+"x", []byte("data")))
			_, err := f.Read(Data, name+"x")
			errs = append(errs, err)
		}
		return f.Stats(), errs
	}
	s1, e1 := run()
	s2, e2 := run()
	if s1 != s2 {
		t.Fatalf("stats differ across identical runs: %+v vs %+v", s1, s2)
	}
	for i := range e1 {
		if (e1[i] == nil) != (e2[i] == nil) {
			t.Fatalf("op %d fault decision differs across identical runs", i)
		}
	}
	if s1.ReadErrors == 0 || s1.WriteErrors == 0 {
		t.Errorf("expected injected faults at 30%% rates, got %+v", s1)
	}
}

func TestFaultDiskTornWrite(t *testing.T) {
	d := New()
	f := NewFaultDisk(d, FaultPlan{Seed: 7, TornWriteRate: 1})
	payload := bytes.Repeat([]byte("x"), 100)
	err := f.Create(Data, "torn", payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn create error = %v, want ErrInjected", err)
	}
	// The prefix was persisted: exactly what a torn write leaves.
	n, ok := d.Size(Data, "torn")
	if !ok {
		t.Fatal("torn object missing entirely")
	}
	if n >= 100 {
		t.Errorf("torn object has %d bytes, want a strict prefix", n)
	}
	if f.Stats().TornWrites != 1 {
		t.Errorf("TornWrites = %d, want 1", f.Stats().TornWrites)
	}
}

func TestFaultDiskReadFlipIsTransient(t *testing.T) {
	d := New()
	payload := bytes.Repeat([]byte{0xAA}, 64)
	if err := d.Create(Data, "a", payload); err != nil {
		t.Fatal(err)
	}
	f := NewFaultDisk(d, FaultPlan{Seed: 3, ReadFlipRate: 1})
	got, err := f.Read(Data, "a")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, payload) {
		t.Fatal("read at flip rate 1 returned clean bytes")
	}
	// Exactly one bit differs.
	diff := 0
	for i := range got {
		for b := got[i] ^ payload[i]; b != 0; b &= b - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("flipped %d bits, want 1", diff)
	}
	// The stored object is untouched: a direct read is clean.
	clean, err := d.Read(Data, "a")
	if err != nil || !bytes.Equal(clean, payload) {
		t.Errorf("stored object was mutated by a transient read flip")
	}
}

func TestFaultDiskKillAfterOps(t *testing.T) {
	d := New()
	f := NewFaultDisk(d, FaultPlan{Seed: 1, KillAfterOps: 3})
	if err := f.Create(Data, "a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := f.Create(Data, "b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := f.Create(Data, "c", []byte("3")); !errors.Is(err, ErrKilled) {
		t.Fatalf("op 3 error = %v, want ErrKilled", err)
	}
	if _, err := f.Read(Data, "a"); !errors.Is(err, ErrKilled) {
		t.Fatalf("post-kill read error = %v, want ErrKilled", err)
	}
}

func TestFaultDiskLatency(t *testing.T) {
	d := New()
	f := NewFaultDisk(d, FaultPlan{
		Seed:      1,
		OpLatency: map[Op]time.Duration{OpCreate: 2 * time.Millisecond, OpRead: time.Millisecond},
	})
	f.Create(Data, "a", []byte("x"))
	f.Read(Data, "a")
	f.Read(Data, "a")
	if got, want := f.TotalLatency(), 4*time.Millisecond; got != want {
		t.Errorf("TotalLatency = %v, want %v", got, want)
	}
}

func TestFaultDiskCategoryFilter(t *testing.T) {
	d := New()
	f := NewFaultDisk(d, FaultPlan{
		Seed:           1,
		WriteErrorRate: 1,
		Categories:     map[Category]bool{Hook: true},
	})
	if err := f.Create(Data, "a", []byte("x")); err != nil {
		t.Fatalf("Data create should be exempt, got %v", err)
	}
	if err := f.Create(Hook, "h", []byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("Hook create = %v, want ErrInjected", err)
	}
}

func TestFlipStoredBitAndTruncate(t *testing.T) {
	d := New()
	payload := []byte{0x00, 0x00, 0x00, 0x00}
	if err := d.Create(Data, "a", payload); err != nil {
		t.Fatal(err)
	}
	f := NewFaultDisk(d, FaultPlan{Seed: 1})
	if err := f.FlipStoredBit(Data, "a", 9); err != nil {
		t.Fatal(err)
	}
	got, _ := d.Read(Data, "a")
	if got[1] != 0x02 {
		t.Errorf("bit 9 flip: got %v", got)
	}
	// Flip back: involution.
	if err := f.FlipStoredBit(Data, "a", 9); err != nil {
		t.Fatal(err)
	}
	got, _ = d.Read(Data, "a")
	if !bytes.Equal(got, payload) {
		t.Errorf("double flip did not restore: %v", got)
	}
	if err := f.TruncateStored(Data, "a", 2); err != nil {
		t.Fatal(err)
	}
	if n, _ := d.Size(Data, "a"); n != 2 {
		t.Errorf("truncated size = %d, want 2", n)
	}
	if err := f.TruncateStored(Data, "a", 5); err == nil {
		t.Error("truncating beyond the object size should fail")
	}
	if err := f.FlipStoredBit(Data, "missing", 0); err == nil {
		t.Error("flipping a missing object should fail")
	}
}

func TestCorruptStoredDeterministicAndExact(t *testing.T) {
	build := func() *Disk {
		d := New()
		for i := 0; i < 200; i++ {
			name := string(rune('a'+i/26)) + string(rune('a'+i%26))
			d.Create(Data, name, bytes.Repeat([]byte{byte(i)}, 32))
		}
		return d
	}
	d1, d2 := build(), build()
	c1 := NewFaultDisk(d1, FaultPlan{Seed: 99}).CorruptStored(Data, 0.1)
	c2 := NewFaultDisk(d2, FaultPlan{Seed: 99}).CorruptStored(Data, 0.1)
	if len(c1) == 0 {
		t.Fatal("10% corruption of 200 objects corrupted nothing")
	}
	if len(c1) != len(c2) {
		t.Fatalf("corruption set size differs: %d vs %d", len(c1), len(c2))
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("corruption sets differ at %d: %q vs %q", i, c1[i], c2[i])
		}
	}
	// Exactly the named objects differ from the clean build.
	clean := build()
	corruptSet := make(map[string]bool, len(c1))
	for _, n := range c1 {
		corruptSet[n] = true
	}
	for _, name := range clean.Names(Data) {
		want, _ := clean.Read(Data, name)
		got, _ := d1.Read(Data, name)
		if corruptSet[name] == bytes.Equal(want, got) {
			t.Errorf("object %q: corrupted=%v but equal=%v", name, corruptSet[name], bytes.Equal(want, got))
		}
	}
}
