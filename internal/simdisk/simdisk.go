// Package simdisk is the simulated storage substrate the deduplicators
// write to.
//
// The paper's prototypes ran in user space on Ext3 and measured metadata
// overhead in inodes, bytes and disk-access counts (Tables I and II), and
// throughput as a ratio derived from those I/Os. simdisk replaces the file
// system with an in-memory, hash-addressable object store that makes
// exactly those quantities first-class: every Create/Read/Write/Exists is
// one "disk access" (the unit Table II counts), every stored object costs
// one inode of 256 bytes (the paper's assumption in §IV), and byte counters
// are kept per metadata category so Fig 7's breakdown can be produced
// directly. A CostModel converts the counters into time for the
// ThroughputRatio metric.
package simdisk

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Category classifies stored objects the way the paper's analysis does.
type Category int

const (
	// Data holds DiskChunk payloads (the deduplicated data itself).
	Data Category = iota
	// Hook holds hook files: 20-byte pointers from a sampled hash to its
	// manifest.
	Hook
	// Manifest holds DiskChunkManifests.
	Manifest
	// FileManifest holds per-input-file reconstruction recipes.
	FileManifest
	// Recipe holds content-addressed recipe-tree chunks: pieces of a
	// FileManifest's serialized ref stream (and of the interior tree
	// nodes above them), named by the SHA-1 of their payload so sibling
	// snapshots' recipes share unchanged subtrees.
	Recipe

	numCategories
)

var categoryNames = [...]string{"data", "hook", "manifest", "filemanifest", "recipe"}

// String returns the category name.
func (c Category) String() string {
	if c < 0 || int(c) >= len(categoryNames) {
		return fmt.Sprintf("category(%d)", int(c))
	}
	return categoryNames[c]
}

// InodeBytes is the storage-management cost charged per stored object,
// per the paper's assumption of 256 bytes per inode.
const InodeBytes = 256

// Op identifies a disk operation for counters and failure injection.
type Op int

const (
	OpCreate Op = iota
	OpRead
	OpWrite
	OpExists
	OpDelete
)

var opNames = [...]string{"create", "read", "write", "exists", "delete"}

// String returns the operation name.
func (o Op) String() string {
	if o < 0 || int(o) >= len(opNames) {
		return fmt.Sprintf("op(%d)", int(o))
	}
	return opNames[o]
}

// PerCategory holds one int64 counter per object category.
type PerCategory [numCategories]int64

// Get returns the counter for c.
func (p PerCategory) Get(c Category) int64 { return p[c] }

// Total returns the sum over categories.
func (p PerCategory) Total() int64 {
	var t int64
	for _, v := range p {
		t += v
	}
	return t
}

// Counters aggregates every disk access made through a Disk. The fields map
// one-to-one onto the rows of the paper's Table II: Creates[Data] is "Chunk
// Output Times", Reads[Data] is "Chunk Input Times" (HHR byte reloads),
// Creates[Hook]/Reads[Hook] are hook output/input, Creates+Writes[Manifest]
// are manifest output and Reads[Manifest] manifest input, and MissedLookups
// counts existence queries that found nothing (the queries a bloom filter
// eliminates).
type Counters struct {
	Creates       PerCategory
	Reads         PerCategory
	Writes        PerCategory
	ExistsQueries PerCategory
	Deletes       PerCategory
	MissedLookups PerCategory
	BytesRead     PerCategory
	BytesWritten  PerCategory
}

// Accesses returns the total number of disk accesses — the unit of the
// paper's Table II ("disk accessing times").
func (c Counters) Accesses() int64 {
	return c.Creates.Total() + c.Reads.Total() + c.Writes.Total() +
		c.ExistsQueries.Total() + c.Deletes.Total()
}

// Disk is the simulated disk. The zero value is not usable; construct with
// New. Disk is safe for concurrent use: a single mutex serializes every
// operation, so the access and byte counters — the inputs of the disk cost
// model — stay exact no matter how many ingest sessions run at once. The
// lock models what a real spindle serializes anyway (each Create/Read/Write
// is "one disk access" in the paper's accounting), and the operations under
// it are map lookups and memcpy, so it is never the scaling bottleneck:
// chunking and SHA-1 dominate and run outside it.
type Disk struct {
	mu       sync.Mutex
	objects  [numCategories]map[string][]byte
	counters Counters

	// failHook, when non-nil, is consulted before every operation; a
	// non-nil return aborts the operation with that error. Used for
	// failure-injection tests. It is called with the disk lock held and
	// must not call back into the Disk.
	failHook func(Op, Category, string) error

	// saveHook, when non-nil, is consulted before every file-system
	// mutation SaveDir performs (see SaveHook in persist.go). It is the
	// kill-point mechanism of the crash-consistency harness.
	saveHook SaveHook

	// readTransform, when non-nil, post-processes the copy returned by
	// every Read/ReadRange. The stored object is untouched, so it models
	// transient corruption on the read path (bus/RAM flips) that a
	// re-read heals. Called with the disk lock held; must not call back
	// into the Disk.
	readTransform func(Category, string, []byte) []byte

	// readDelay (nanoseconds), when non-zero, is slept by every
	// Read/ReadRange *after* the disk lock is released: it models
	// per-read device latency (seek/flash access) on a device that still
	// accepts concurrent requests, the way an NVMe queue or a RAID spreads
	// reads. Concurrent readers overlap their delays, a serial reader pays
	// them back to back — exactly the asymmetry the parallel restore
	// pipeline exists to exploit, and what the restore benchmark measures.
	readDelay atomic.Int64

	// wal, when non-nil, journals every successful Create/Write/Delete as
	// a delta record (see wal.go). Appends happen under d.mu, which is
	// what guarantees log order == mutation order; durability is deferred
	// to WAL.Sync (group commit).
	wal *WAL
}

// New returns an empty simulated disk.
func New() *Disk {
	d := &Disk{}
	for i := range d.objects {
		d.objects[i] = make(map[string][]byte)
	}
	return d
}

// SetFailureHook installs fn as a fault injector: it is called before every
// operation and may return an error to abort it. Pass nil to clear.
func (d *Disk) SetFailureHook(fn func(op Op, cat Category, name string) error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failHook = fn
}

// SetReadTransform installs fn to post-process the bytes returned by every
// Read/ReadRange (the stored object stays intact — the corruption is
// transient and heals on re-read). Pass nil to clear. Used by fault-
// injection tests to exercise bounded-retry verification on the real data
// path.
func (d *Disk) SetReadTransform(fn func(cat Category, name string, data []byte) []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.readTransform = fn
}

// SetWAL attaches w as the disk's write-ahead delta log: every successful
// Create/Write/Delete from here on is journaled as a delta record, and a
// SaveDir into the WAL's own store directory folds the log into the new
// generation (compaction). Pass nil to detach. The WAL must belong to the
// directory the disk is persisted into; attach it right after
// LoadDir+ReplayWAL, before any mutation.
func (d *Disk) SetWAL(w *WAL) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.wal = w
}

// WAL returns the attached write-ahead log, or nil.
func (d *Disk) WAL() *WAL {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.wal
}

func (d *Disk) check(op Op, cat Category, name string) error {
	if cat < 0 || cat >= numCategories {
		return fmt.Errorf("simdisk: invalid category %d", int(cat))
	}
	if d.failHook != nil {
		if err := d.failHook(op, cat, name); err != nil {
			return fmt.Errorf("simdisk: injected failure on %v %v %q: %w", op, cat, name, err)
		}
	}
	return nil
}

// Create stores a new object. It is an error if the object already exists:
// DiskChunks and Hooks are immutable once written (per §III, "the DiskChunk
// and the Hook files that have been written to disk will not be further
// modified").
func (d *Disk) Create(cat Category, name string, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.check(OpCreate, cat, name); err != nil {
		return err
	}
	if _, exists := d.objects[cat][name]; exists {
		return fmt.Errorf("simdisk: %v object %q already exists", cat, name)
	}
	d.objects[cat][name] = append([]byte(nil), data...)
	d.counters.Creates[cat]++
	d.counters.BytesWritten[cat] += int64(len(data))
	if d.wal != nil {
		d.wal.Append(WALRecord{Op: WALSet, Cat: cat, Name: name, Data: data})
	}
	return nil
}

// Write replaces the content of an existing object (only Manifests are
// updated in place during deduplication).
func (d *Disk) Write(cat Category, name string, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.check(OpWrite, cat, name); err != nil {
		return err
	}
	if _, exists := d.objects[cat][name]; !exists {
		return fmt.Errorf("simdisk: %v object %q does not exist", cat, name)
	}
	d.objects[cat][name] = append([]byte(nil), data...)
	d.counters.Writes[cat]++
	d.counters.BytesWritten[cat] += int64(len(data))
	if d.wal != nil {
		d.wal.Append(WALRecord{Op: WALSet, Cat: cat, Name: name, Data: data})
	}
	return nil
}

// Delete removes an object (one disk access). Deleting a missing object is
// an error.
func (d *Disk) Delete(cat Category, name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.check(OpDelete, cat, name); err != nil {
		return err
	}
	if _, exists := d.objects[cat][name]; !exists {
		return fmt.Errorf("simdisk: %v object %q does not exist", cat, name)
	}
	delete(d.objects[cat], name)
	d.counters.Deletes[cat]++
	if d.wal != nil {
		d.wal.Append(WALRecord{Op: WALDelete, Cat: cat, Name: name})
	}
	return nil
}

// SetReadDelay installs a per-read latency of delay (zero clears it):
// every Read/ReadRange sleeps that long after releasing the disk lock, so
// concurrent readers overlap their waits while a serial reader pays them
// back to back. Restore benchmarks use it to model a real device's read
// latency; the default is zero (pure RAM, as the paper's accounting
// assumes).
func (d *Disk) SetReadDelay(delay time.Duration) {
	if delay < 0 {
		delay = 0
	}
	d.readDelay.Store(int64(delay))
}

// sleepRead pays the configured per-read latency. Called outside the
// lock.
func (d *Disk) sleepRead() {
	if delay := d.readDelay.Load(); delay > 0 {
		time.Sleep(time.Duration(delay))
	}
}

// Read returns a copy of the object's content.
func (d *Disk) Read(cat Category, name string) ([]byte, error) {
	out, err := d.readLocked(cat, name)
	d.sleepRead()
	return out, err
}

func (d *Disk) readLocked(cat Category, name string) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.check(OpRead, cat, name); err != nil {
		return nil, err
	}
	data, exists := d.objects[cat][name]
	if !exists {
		d.counters.MissedLookups[cat]++
		return nil, fmt.Errorf("simdisk: %v object %q does not exist", cat, name)
	}
	d.counters.Reads[cat]++
	d.counters.BytesRead[cat] += int64(len(data))
	out := append([]byte(nil), data...)
	if d.readTransform != nil {
		out = d.readTransform(cat, name, out)
	}
	return out, nil
}

// ReadRange returns length bytes of the object starting at off. It is the
// primitive HHR uses to reload part of an old DiskChunk, and counts as one
// disk access like Read.
func (d *Disk) ReadRange(cat Category, name string, off, length int64) ([]byte, error) {
	out, err := d.readRangeLocked(cat, name, off, length)
	d.sleepRead()
	return out, err
}

func (d *Disk) readRangeLocked(cat Category, name string, off, length int64) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.check(OpRead, cat, name); err != nil {
		return nil, err
	}
	data, exists := d.objects[cat][name]
	if !exists {
		d.counters.MissedLookups[cat]++
		return nil, fmt.Errorf("simdisk: %v object %q does not exist", cat, name)
	}
	if off < 0 || length < 0 || off+length > int64(len(data)) {
		return nil, fmt.Errorf("simdisk: range [%d,%d) outside %v object %q of %d bytes",
			off, off+length, cat, name, len(data))
	}
	d.counters.Reads[cat]++
	d.counters.BytesRead[cat] += length
	out := append([]byte(nil), data[off:off+length]...)
	if d.readTransform != nil {
		out = d.readTransform(cat, name, out)
	}
	return out, nil
}

// Exists reports whether the object is present. It counts as one disk
// access: it models the on-disk lookup the bloom filter exists to avoid.
func (d *Disk) Exists(cat Category, name string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.check(OpExists, cat, name); err != nil {
		return false
	}
	d.counters.ExistsQueries[cat]++
	_, ok := d.objects[cat][name]
	if !ok {
		d.counters.MissedLookups[cat]++
	}
	return ok
}

// Size returns the stored size of an object without counting an access
// (metadata the in-RAM structures already know).
func (d *Disk) Size(cat Category, name string) (int64, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	data, ok := d.objects[cat][name]
	return int64(len(data)), ok
}

// Names returns the names of all stored objects in cat, in unspecified
// order, without counting a disk access. It exists for inspection by tests
// and experiment tooling, not for the deduplication data path.
func (d *Disk) Names(cat Category) []string {
	if cat < 0 || cat >= numCategories {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.objects[cat]))
	for name := range d.objects[cat] {
		out = append(out, name)
	}
	return out
}

// mutateRaw rewrites a stored object's bytes in place without charging any
// disk access or byte counter. It is the primitive behind FaultDisk's
// latent-corruption helpers (bit flips, truncation): the mutation models
// damage that happens *to* the medium, not an operation performed by the
// store.
func (d *Disk) mutateRaw(cat Category, name string, fn func(data []byte) ([]byte, error)) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if cat < 0 || cat >= numCategories {
		return fmt.Errorf("simdisk: invalid category %d", int(cat))
	}
	data, exists := d.objects[cat][name]
	if !exists {
		return fmt.Errorf("simdisk: %v object %q does not exist", cat, name)
	}
	out, err := fn(data)
	if err != nil {
		return err
	}
	d.objects[cat][name] = out
	return nil
}

// Counters returns a snapshot of the access counters.
func (d *Disk) Counters() Counters {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.counters
}

// ObjectCount returns the number of stored objects in cat — the inode count
// for that category.
func (d *Disk) ObjectCount(cat Category) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int64(len(d.objects[cat]))
}

// TotalObjects returns the total number of stored objects (total inodes).
func (d *Disk) TotalObjects() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.totalObjectsLocked()
}

func (d *Disk) totalObjectsLocked() int64 {
	var t int64
	for i := range d.objects {
		t += int64(len(d.objects[i]))
	}
	return t
}

// BytesStored returns the byte size of all objects in cat.
func (d *Disk) BytesStored(cat Category) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bytesStoredLocked(cat)
}

func (d *Disk) bytesStoredLocked(cat Category) int64 {
	var t int64
	for _, data := range d.objects[cat] {
		t += int64(len(data))
	}
	return t
}

// InodeOverheadBytes returns the storage-management metadata cost: 256
// bytes per stored object.
func (d *Disk) InodeOverheadBytes() int64 {
	return d.TotalObjects() * InodeBytes
}

// MetadataBytes returns the full metadata footprint as the paper defines it
// for the MetaDataRatio: everything except the deduplicated data payload —
// hooks, manifests, file manifests, plus inode overhead for all objects
// (data objects included, since each DiskChunk costs an inode too).
func (d *Disk) MetadataBytes() int64 {
	return d.BytesStored(Hook) + d.BytesStored(Manifest) + d.BytesStored(FileManifest) +
		d.BytesStored(Recipe) + d.InodeOverheadBytes()
}
