package simdisk

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestCreateReadRoundTrip(t *testing.T) {
	d := New()
	data := []byte("chunk payload")
	if err := d.Create(Data, "c1", data); err != nil {
		t.Fatal(err)
	}
	got, err := d.Read(Data, "c1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("Read = %q, want %q", got, data)
	}
}

func TestCreateRejectsDuplicates(t *testing.T) {
	d := New()
	if err := d.Create(Hook, "h1", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := d.Create(Hook, "h1", []byte("y")); err == nil {
		t.Error("duplicate Create succeeded; hooks must be immutable")
	}
}

func TestWriteRequiresExistence(t *testing.T) {
	d := New()
	if err := d.Write(Manifest, "m1", []byte("v2")); err == nil {
		t.Error("Write to absent object succeeded")
	}
	d.Create(Manifest, "m1", []byte("v1"))
	if err := d.Write(Manifest, "m1", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, _ := d.Read(Manifest, "m1")
	if string(got) != "v2" {
		t.Errorf("after Write, content = %q", got)
	}
}

func TestReadIsolation(t *testing.T) {
	// Mutating a returned buffer must not corrupt the stored object, and
	// mutating the input buffer after Create must not either.
	d := New()
	src := []byte("immutable")
	d.Create(Data, "c", src)
	src[0] = 'X'
	got1, _ := d.Read(Data, "c")
	if string(got1) != "immutable" {
		t.Error("Create did not copy its input")
	}
	got1[0] = 'Y'
	got2, _ := d.Read(Data, "c")
	if string(got2) != "immutable" {
		t.Error("Read returned an aliased buffer")
	}
}

func TestReadRange(t *testing.T) {
	d := New()
	d.Create(Data, "c", []byte("0123456789"))
	got, err := d.ReadRange(Data, "c", 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "3456" {
		t.Errorf("ReadRange = %q, want 3456", got)
	}
	for _, bad := range [][2]int64{{-1, 2}, {0, 11}, {8, 3}, {2, -1}} {
		if _, err := d.ReadRange(Data, "c", bad[0], bad[1]); err == nil {
			t.Errorf("ReadRange(%d,%d) succeeded, want error", bad[0], bad[1])
		}
	}
	if _, err := d.ReadRange(Data, "absent", 0, 1); err == nil {
		t.Error("ReadRange of absent object succeeded")
	}
}

func TestCountersMatchOperations(t *testing.T) {
	d := New()
	d.Create(Data, "c1", make([]byte, 100))
	d.Create(Hook, "h1", make([]byte, 20))
	d.Create(Manifest, "m1", make([]byte, 36))
	d.Write(Manifest, "m1", make([]byte, 72))
	d.Read(Manifest, "m1")
	d.Exists(Hook, "h1")
	d.Exists(Hook, "absent")

	c := d.Counters()
	if c.Creates.Get(Data) != 1 || c.Creates.Get(Hook) != 1 || c.Creates.Get(Manifest) != 1 {
		t.Errorf("creates = %+v", c.Creates)
	}
	if c.Writes.Get(Manifest) != 1 {
		t.Errorf("manifest writes = %d, want 1", c.Writes.Get(Manifest))
	}
	if c.Reads.Get(Manifest) != 1 {
		t.Errorf("manifest reads = %d, want 1", c.Reads.Get(Manifest))
	}
	if c.ExistsQueries.Get(Hook) != 2 {
		t.Errorf("hook exists queries = %d, want 2", c.ExistsQueries.Get(Hook))
	}
	if c.MissedLookups.Get(Hook) != 1 {
		t.Errorf("missed lookups = %d, want 1", c.MissedLookups.Get(Hook))
	}
	if c.BytesWritten.Get(Manifest) != 36+72 {
		t.Errorf("manifest bytes written = %d, want 108", c.BytesWritten.Get(Manifest))
	}
	// Total accesses: 3 creates + 1 write + 1 read + 2 exists = 7.
	if c.Accesses() != 7 {
		t.Errorf("accesses = %d, want 7", c.Accesses())
	}
}

func TestInodeAndMetadataAccounting(t *testing.T) {
	d := New()
	d.Create(Data, "c1", make([]byte, 1000))
	d.Create(Hook, "h1", make([]byte, 20))
	d.Create(Manifest, "m1", make([]byte, 74))
	d.Create(FileManifest, "f1", make([]byte, 28))

	if d.TotalObjects() != 4 {
		t.Errorf("TotalObjects = %d, want 4", d.TotalObjects())
	}
	if d.InodeOverheadBytes() != 4*InodeBytes {
		t.Errorf("InodeOverheadBytes = %d", d.InodeOverheadBytes())
	}
	want := int64(20+74+28) + 4*InodeBytes
	if d.MetadataBytes() != want {
		t.Errorf("MetadataBytes = %d, want %d", d.MetadataBytes(), want)
	}
	if d.BytesStored(Data) != 1000 {
		t.Errorf("BytesStored(Data) = %d", d.BytesStored(Data))
	}
	if d.ObjectCount(Hook) != 1 {
		t.Errorf("ObjectCount(Hook) = %d", d.ObjectCount(Hook))
	}
}

func TestSizeDoesNotCountAccess(t *testing.T) {
	d := New()
	d.Create(Data, "c", make([]byte, 50))
	before := d.Counters().Accesses()
	if sz, ok := d.Size(Data, "c"); !ok || sz != 50 {
		t.Errorf("Size = %d,%v", sz, ok)
	}
	if _, ok := d.Size(Data, "absent"); ok {
		t.Error("Size of absent object reported ok")
	}
	if d.Counters().Accesses() != before {
		t.Error("Size counted as a disk access")
	}
}

func TestFailureInjection(t *testing.T) {
	d := New()
	boom := errors.New("media error")
	d.Create(Data, "ok", []byte("x"))
	d.SetFailureHook(func(op Op, cat Category, name string) error {
		if op == OpRead && name == "ok" {
			return boom
		}
		return nil
	})
	if _, err := d.Read(Data, "ok"); !errors.Is(err, boom) {
		t.Errorf("injected failure not surfaced: %v", err)
	}
	// Other ops unaffected.
	if err := d.Create(Data, "ok2", []byte("y")); err != nil {
		t.Errorf("unrelated op failed: %v", err)
	}
	d.SetFailureHook(nil)
	if _, err := d.Read(Data, "ok"); err != nil {
		t.Errorf("after clearing hook: %v", err)
	}
}

func TestInvalidCategory(t *testing.T) {
	d := New()
	if err := d.Create(Category(99), "x", nil); err == nil {
		t.Error("invalid category accepted")
	}
	if Category(99).String() == "" {
		t.Error("invalid category String empty")
	}
	if Data.String() != "data" || Hook.String() != "hook" {
		t.Error("category names wrong")
	}
	if OpRead.String() != "read" || Op(99).String() == "" {
		t.Error("op names wrong")
	}
}

func TestCostModelCopyVsDedupe(t *testing.T) {
	m := Default2013()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	const in = int64(1 << 30)
	copyT := m.CopyTime(in)
	if copyT <= 0 {
		t.Fatal("CopyTime must be positive")
	}
	// A dedup run that chunks and hashes all input and does some metadata
	// I/O must be slower than a plain copy minus the saved writes: with
	// these rates the ratio lands in the paper's 0.2–0.5 band.
	var c Counters
	c.Creates[Data] = 200
	c.Creates[Hook] = 10_000
	c.Reads[Manifest] = 5_000
	c.BytesWritten[Data] = in / 4 // DER 4
	ratio := m.ThroughputRatio(in, in, in, c)
	if ratio <= 0.1 || ratio >= 1 {
		t.Errorf("ThroughputRatio = %.3f, want within (0.1, 1)", ratio)
	}
}

func TestCostModelMoreSeeksIsSlower(t *testing.T) {
	m := Default2013()
	const in = int64(100 << 20)
	var few, many Counters
	few.Reads[Manifest] = 10
	many.Reads[Manifest] = 10_000
	if m.ThroughputRatio(in, in, in, few) <= m.ThroughputRatio(in, in, in, many) {
		t.Error("more manifest loads should lower the throughput ratio")
	}
}

func TestCostModelValidation(t *testing.T) {
	bad := Default2013()
	bad.HashingRate = 0
	if bad.Validate() == nil {
		t.Error("zero hashing rate accepted")
	}
	bad = Default2013()
	bad.SeekLatency = -time.Millisecond
	if bad.Validate() == nil {
		t.Error("negative seek accepted")
	}
}

func TestDiskTimeComponents(t *testing.T) {
	m := CostModel{
		SeekLatency:    time.Millisecond,
		ReadBandwidth:  1e6,
		WriteBandwidth: 1e6,
		ChunkingRate:   1e6,
		HashingRate:    1e6,
	}
	var c Counters
	c.Reads[Data] = 2
	c.BytesRead[Data] = 1e6 // 1 second of transfer
	got := m.DiskTime(c)
	want := 2*time.Millisecond + time.Second
	if got != want {
		t.Errorf("DiskTime = %v, want %v", got, want)
	}
	if cpu := m.CPUTime(1e6, 2e6); cpu != 3*time.Second {
		t.Errorf("CPUTime = %v, want 3s", cpu)
	}
}

func TestNames(t *testing.T) {
	d := New()
	d.Create(Data, "a", []byte("1"))
	d.Create(Data, "b", []byte("2"))
	d.Create(Hook, "h", []byte("3"))
	names := d.Names(Data)
	if len(names) != 2 {
		t.Fatalf("Names(Data) = %v", names)
	}
	set := map[string]bool{names[0]: true, names[1]: true}
	if !set["a"] || !set["b"] {
		t.Errorf("Names(Data) = %v, want a and b", names)
	}
	if len(d.Names(Hook)) != 1 || len(d.Names(Manifest)) != 0 {
		t.Error("per-category name listing wrong")
	}
	if d.Names(Category(99)) != nil {
		t.Error("invalid category should list nil")
	}
	// Names must not count as disk accesses.
	before := d.Counters().Accesses()
	d.Names(Data)
	if d.Counters().Accesses() != before {
		t.Error("Names counted as an access")
	}
}

func TestDelete(t *testing.T) {
	d := New()
	d.Create(Data, "x", []byte("abc"))
	if err := d.Delete(Data, "x"); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Size(Data, "x"); ok {
		t.Error("object still present after Delete")
	}
	if err := d.Delete(Data, "x"); err == nil {
		t.Error("double delete succeeded")
	}
	if d.Counters().Deletes.Get(Data) != 1 {
		t.Errorf("deletes = %d, want 1", d.Counters().Deletes.Get(Data))
	}
	if d.Counters().Accesses() < 2 { // create + delete
		t.Error("delete not counted as an access")
	}
}
