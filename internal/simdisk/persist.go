package simdisk

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Persistence: a simulated disk can be materialized to (and reloaded from)
// a real directory, one file per object under a per-category subdirectory.
// This is the paper's actual deployment shape — "algorithms read data from
// and write the outputs to local directories" (§V) — and it lets the CLI
// deduplicate in one invocation and restore in another. Access counters
// are session state and are not persisted.
//
// Crash safety. A save is all-or-nothing at generation granularity:
//
//	dir/
//	  MANIFEST.json        top-level commit marker: current generation +
//	                       per-category object counts and byte totals
//	  gen-000002/          the committed generation
//	    GEN.json           the generation's own manifest (written last,
//	                       before the directory is renamed into place)
//	    chunks/ hooks/ manifests/ files/
//	  gen-000003.tmp/      an interrupted save (removed by Recover)
//
// SaveDir writes the complete object set into a fresh gen-N.tmp directory,
// fsyncs everything, renames it to gen-N (the generation becomes
// self-validating: GEN.json records what it must contain), then atomically
// replaces MANIFEST.json (write temp + fsync + rename) — the commit point —
// and finally removes older generations. A crash at any step leaves either
// the old or the new generation committed, never a hybrid; Recover (and the
// read-only selection inside LoadDir) detects interrupted saves, ignores or
// rolls back partial state, and mounts the last consistent generation.
// Directories without MANIFEST.json or gen-* subdirectories are loaded in
// the legacy flat layout (category dirs at top level) for compatibility.

// categoryDirs maps categories to directory names (stable on disk).
var categoryDirs = map[Category]string{
	Data:         "chunks",
	Hook:         "hooks",
	Manifest:     "manifests",
	FileManifest: "files",
	Recipe:       "recipes",
}

// markerFile is the top-level commit marker's name.
const markerFile = "MANIFEST.json"

// genManifestFile is the per-generation manifest's name inside a gen dir.
const genManifestFile = "GEN.json"

// genPrefix prefixes generation directory names.
const genPrefix = "gen-"

// storeManifest is the JSON body of both MANIFEST.json and GEN.json: the
// generation number plus per-category object counts and byte totals, which
// is what makes a generation self-validating.
type storeManifest struct {
	Generation int              `json:"generation"`
	Objects    map[string]int   `json:"objects"`
	Bytes      map[string]int64 `json:"bytes"`
	SavedAt    string           `json:"saved_at,omitempty"`
}

// SaveHook is consulted before every file-system mutation a SaveDir
// performs: each object write, the generation rename and the marker
// commit. path identifies the mutation; data is the payload about to be
// written (nil for renames). The hook may return a prefix of data to
// simulate a torn write, and a non-nil error to abort the save at that
// point. When the error is (or wraps) ErrKilled the save leaves its
// partial state on disk, exactly as a crash would — the crash-consistency
// harness is built on this. The hook runs with the disk lock held and must
// not call back into the Disk.
type SaveHook func(path string, data []byte) ([]byte, error)

// SetSaveHook installs fn as the persistence fault injector; nil clears it.
func (d *Disk) SetSaveHook(fn SaveHook) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.saveHook = fn
}

// categoryOrder returns the categories in their fixed numeric order, so a
// save visits objects deterministically (kill points are reproducible).
func categoryOrder() []Category {
	return []Category{Data, Hook, Manifest, FileManifest, Recipe}
}

// SaveDir writes every stored object under dir as a new generation and
// commits it atomically; see the package comment above for the protocol.
// Object names are encoded so they are safe as file names. On a non-crash
// error the partially written generation is cleaned up; on an injected
// ErrKilled it is deliberately left behind for recovery to deal with.
func (d *Disk) SaveDir(dir string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("simdisk: save: %w", err)
	}

	// The next generation number must clear BOTH the marker and every
	// on-disk generation directory: after a crash between the generation
	// rename and the marker swap, the marker still names N-1 while gen-N
	// already exists, and a save that only consulted the marker would try
	// to rename onto the existing non-empty gen-N and fail until a Recover
	// ran. max(marker, newest valid gen) + 1 makes SaveDir itself immune.
	gen := 0
	if m, _, err := readMarker(dir); err == nil && m != nil {
		gen = m.Generation
	}
	if g, _, ok := newestValidGen(dir); ok && g > gen {
		gen = g
	}
	gen++
	genName := fmt.Sprintf("%s%06d", genPrefix, gen)
	tmpDir := filepath.Join(dir, genName+".tmp")

	err := d.writeGeneration(dir, tmpDir, genName, gen)
	if err != nil {
		if !errors.Is(err, ErrKilled) {
			os.RemoveAll(tmpDir) // best-effort cleanup; crash paths keep the wreckage
		}
		return err
	}

	// The commit folds the attached write-ahead log: every record —
	// durable segment or buffered batch — describes state the generation
	// now contains (we hold d.mu, so no mutation interleaved with the
	// save), so the log restarts empty. This IS online compaction. A
	// crash inside is safe: leftover segments replay idempotently on top
	// of the committed generation.
	if d.wal != nil && d.wal.sameStore(dir) {
		if err := d.wal.compacted(); err != nil {
			return err
		}
	}

	// Post-commit cleanup: older generations and any legacy flat layout
	// are now garbage. A crash in here is harmless — the marker already
	// names the new generation — but the kill hook still covers it so the
	// harness exercises this window too.
	if err := d.cleanupAfterCommit(dir, genName); err != nil {
		return err
	}
	return nil
}

// writeGeneration materializes the disk's objects as generation gen under
// tmpDir, validates nothing less than the full commit protocol: object
// files, GEN.json, directory fsyncs, the rename to genName, and the marker
// replacement that commits it.
func (d *Disk) writeGeneration(dir, tmpDir, genName string, gen int) error {
	if err := os.RemoveAll(tmpDir); err != nil {
		return fmt.Errorf("simdisk: save: %w", err)
	}
	man := storeManifest{
		Generation: gen,
		Objects:    make(map[string]int),
		Bytes:      make(map[string]int64),
		SavedAt:    time.Now().UTC().Format(time.RFC3339),
	}
	for _, cat := range categoryOrder() {
		sub := categoryDirs[cat]
		catDir := filepath.Join(tmpDir, sub)
		if err := os.MkdirAll(catDir, 0o755); err != nil {
			return fmt.Errorf("simdisk: save: %w", err)
		}
		names := make([]string, 0, len(d.objects[cat]))
		for name := range d.objects[cat] {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			data := d.objects[cat][name]
			path := filepath.Join(catDir, encodeName(name))
			if err := d.savePoint(path, data); err != nil {
				return fmt.Errorf("simdisk: save %v %q: %w", cat, name, err)
			}
			man.Objects[sub]++
			man.Bytes[sub] += int64(len(data))
		}
		if err := syncDir(catDir); err != nil {
			return fmt.Errorf("simdisk: save: %w", err)
		}
	}

	// The generation manifest is written last inside the temp dir: its
	// presence (and agreement with the directory contents) is what makes
	// the generation self-validating after the rename.
	genJSON, err := json.Marshal(man)
	if err != nil {
		return fmt.Errorf("simdisk: save: %w", err)
	}
	if err := d.savePoint(filepath.Join(tmpDir, genManifestFile), genJSON); err != nil {
		return fmt.Errorf("simdisk: save: %w", err)
	}
	if err := syncDir(tmpDir); err != nil {
		return fmt.Errorf("simdisk: save: %w", err)
	}

	// Publish the generation directory under its final name. Anything
	// already sitting at that name is debris that neither the marker nor
	// the newest-valid-generation scan accepted (gen exceeds both), so it
	// is cleared out of the rename's way, not preserved.
	final := filepath.Join(dir, genName)
	if err := os.RemoveAll(final); err != nil {
		return fmt.Errorf("simdisk: save: %w", err)
	}
	if err := d.renamePoint(tmpDir, final); err != nil {
		return fmt.Errorf("simdisk: save: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("simdisk: save: %w", err)
	}

	// Commit: atomically replace the top-level marker.
	markerTmp := filepath.Join(dir, markerFile+".tmp")
	if err := d.savePoint(markerTmp, genJSON); err != nil {
		return fmt.Errorf("simdisk: save: %w", err)
	}
	if err := d.renamePoint(markerTmp, filepath.Join(dir, markerFile)); err != nil {
		return fmt.Errorf("simdisk: save: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("simdisk: save: %w", err)
	}
	return nil
}

// cleanupAfterCommit removes everything except the committed generation and
// the marker: older/newer generation dirs, stray temp dirs, legacy flat
// category dirs, and — when no attached WAL owns it — the wal/ directory.
// That last one matters: a generation commit supersedes the whole log, and
// a stale log left behind by an earlier durable run would otherwise replay
// on top of this generation and resurrect objects deleted since (deletes
// are unlogged when no WAL is attached).
func (d *Disk) cleanupAfterCommit(dir, keep string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil // the committed state is safe; cleanup is best-effort
	}
	walOwned := d.wal != nil && d.wal.sameStore(dir)
	for _, e := range entries {
		name := e.Name()
		if name == keep || name == markerFile {
			continue
		}
		if name == walDirName {
			if walOwned {
				continue // just reset by compacted(); it is the live log
			}
		} else {
			legacy := false
			for _, sub := range categoryDirs {
				if name == sub {
					legacy = true
				}
			}
			if !legacy && !strings.HasPrefix(name, genPrefix) && name != markerFile+".tmp" {
				continue
			}
		}
		if err := d.removePoint(filepath.Join(dir, name)); err != nil {
			if errors.Is(err, ErrKilled) {
				return err
			}
			// Non-crash cleanup errors don't endanger the commit.
		}
	}
	return nil
}

// savePoint writes one file durably (write + fsync), consulting the save
// hook first. The hook may tear the payload (write the returned prefix,
// then fail) or abort the write entirely.
func (d *Disk) savePoint(path string, data []byte) error {
	if d.saveHook != nil {
		torn, err := d.saveHook(path, data)
		if err != nil {
			if torn != nil && len(torn) < len(data) {
				// Torn write: persist the prefix, then crash.
				writeFileSync(path, torn)
			}
			return err
		}
		if torn != nil {
			data = torn
		}
	}
	return writeFileSync(path, data)
}

// renamePoint renames oldp to newp, consulting the save hook first.
func (d *Disk) renamePoint(oldp, newp string) error {
	if d.saveHook != nil {
		if _, err := d.saveHook("rename:"+newp, nil); err != nil {
			return err
		}
	}
	return os.Rename(oldp, newp)
}

// removePoint removes a path during cleanup, consulting the save hook.
func (d *Disk) removePoint(path string) error {
	if d.saveHook != nil {
		if _, err := d.saveHook("remove:"+path, nil); err != nil {
			return err
		}
	}
	return os.RemoveAll(path)
}

// writeFileSync writes path and fsyncs it before closing, so the data is
// durable before any rename that depends on it.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames and file creations in it are
// durable.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// readMarker parses dir's MANIFEST.json. Returns (nil, false, nil) when the
// marker does not exist, and an error when it exists but is unreadable or
// does not parse (torn or corrupted marker).
func readMarker(dir string) (*storeManifest, bool, error) {
	raw, err := os.ReadFile(filepath.Join(dir, markerFile))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, true, err
	}
	var m storeManifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, true, fmt.Errorf("simdisk: corrupt marker: %w", err)
	}
	if m.Generation <= 0 {
		return nil, true, fmt.Errorf("simdisk: corrupt marker: generation %d", m.Generation)
	}
	return &m, true, nil
}

// readGenManifest parses and validates a generation directory: GEN.json
// must exist, parse, and agree with the directory's actual per-category
// file counts and byte totals.
func readGenManifest(genDir string) (*storeManifest, error) {
	raw, err := os.ReadFile(filepath.Join(genDir, genManifestFile))
	if err != nil {
		return nil, err
	}
	var m storeManifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("simdisk: corrupt %s: %w", genManifestFile, err)
	}
	for _, sub := range categoryDirs {
		var count int
		var bytes int64
		entries, err := os.ReadDir(filepath.Join(genDir, sub))
		if err != nil && !os.IsNotExist(err) {
			return nil, err
		}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			info, err := e.Info()
			if err != nil {
				return nil, err
			}
			count++
			bytes += info.Size()
		}
		if count != m.Objects[sub] || bytes != m.Bytes[sub] {
			return nil, fmt.Errorf("simdisk: generation %q: %s holds %d objects / %d bytes, manifest says %d / %d",
				genDir, sub, count, bytes, m.Objects[sub], m.Bytes[sub])
		}
	}
	return &m, nil
}

// genNumber parses a generation directory name; ok is false for temp dirs
// and non-generation names.
func genNumber(name string) (int, bool) {
	if !strings.HasPrefix(name, genPrefix) || strings.HasSuffix(name, ".tmp") {
		return 0, false
	}
	var n int
	if _, err := fmt.Sscanf(name[len(genPrefix):], "%d", &n); err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}

// newestValidGen scans dir for the highest-numbered generation directory
// that self-validates.
func newestValidGen(dir string) (int, string, bool) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, "", false
	}
	best, bestDir := 0, ""
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		n, ok := genNumber(e.Name())
		if !ok || n <= best {
			continue
		}
		genDir := filepath.Join(dir, e.Name())
		if _, err := readGenManifest(genDir); err == nil {
			best, bestDir = n, genDir
		}
	}
	return best, bestDir, best > 0
}

// selectGeneration decides, read-only, what a mount of dir should see:
// the generation directory to load (legacy == false), the legacy flat
// layout (legacy == true, genDir == dir), or an empty store (genDir == "").
// Preference order: the marker's generation when it validates; otherwise
// the newest self-validating generation; otherwise the legacy layout if
// any category dir exists at top level.
func selectGeneration(dir string) (gen int, genDir string, legacy bool, err error) {
	m, markerPresent, markerErr := readMarker(dir)
	if markerErr == nil && m != nil {
		candidate := filepath.Join(dir, fmt.Sprintf("%s%06d", genPrefix, m.Generation))
		if _, err := readGenManifest(candidate); err == nil {
			return m.Generation, candidate, false, nil
		}
		// Marker names a generation that is missing or fails validation
		// (post-commit damage): fall back to the newest consistent one.
	}
	if g, gdir, ok := newestValidGen(dir); ok {
		return g, gdir, false, nil
	}
	if markerPresent {
		// A marker exists (even corrupt) but no generation validates:
		// the store is unrecoverable, which the caller must hear about.
		if markerErr != nil {
			return 0, "", false, fmt.Errorf("simdisk: no consistent generation under %s (marker: %v)", dir, markerErr)
		}
		return 0, "", false, fmt.Errorf("simdisk: no consistent generation under %s", dir)
	}
	// No marker, no generations: legacy flat layout (or an empty/missing
	// directory, which loads as an empty store).
	for _, sub := range categoryDirs {
		if st, err := os.Stat(filepath.Join(dir, sub)); err == nil && st.IsDir() {
			return 0, dir, true, nil
		}
	}
	return 0, "", false, nil
}

// LoadDir returns a disk populated from a directory written by SaveDir.
// It performs read-only recovery: if the last save was interrupted, the
// partial generation is ignored and the last consistent one is loaded
// (use Recover to also roll the partial state back). Counters start at
// zero: loading models mounting existing storage, not re-performing the
// writes.
func LoadDir(dir string) (*Disk, error) {
	_, genDir, _, err := selectGeneration(dir)
	if err != nil {
		return nil, err
	}
	d := New()
	if genDir == "" {
		return d, nil // empty or missing directory
	}
	for cat, sub := range categoryDirs {
		catDir := filepath.Join(genDir, sub)
		entries, err := os.ReadDir(catDir)
		if err != nil {
			if os.IsNotExist(err) {
				continue // category may be empty
			}
			return nil, fmt.Errorf("simdisk: load: %w", err)
		}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			name, err := decodeName(e.Name())
			if err != nil {
				return nil, fmt.Errorf("simdisk: load %v %q: %w", cat, e.Name(), err)
			}
			data, err := os.ReadFile(filepath.Join(catDir, e.Name()))
			if err != nil {
				return nil, fmt.Errorf("simdisk: load %v %q: %w", cat, name, err)
			}
			d.objects[cat][name] = data
		}
	}
	return d, nil
}

// RecoverReport describes what Recover found and did.
type RecoverReport struct {
	// Generation is the generation left mounted (0 for legacy or empty
	// stores).
	Generation int
	// Legacy is true when the directory uses the pre-generation flat
	// layout.
	Legacy bool
	// RolledBack lists directories removed because they belonged to
	// interrupted saves or superseded generations.
	RolledBack []string
	// RepairedMarker is true when MANIFEST.json was missing or disagreed
	// with the mounted generation and was rewritten.
	RepairedMarker bool
	// WALTrimmed lists write-ahead-log repairs ("truncate:<seg>" for a
	// torn tail trimmed to its valid prefix, "remove:<seg>" for a segment
	// discarded entirely).
	WALTrimmed []string
}

// recoverHook, when non-nil, is consulted before each repair Recover
// performs — the crash-inside-recovery injection seam of the idempotence
// tests. A non-nil return aborts recovery at that point, as a crash would.
var recoverHook func(step string) error

// recoverPoint consults recoverHook for one repair step.
func recoverPoint(step string) error {
	if recoverHook != nil {
		return recoverHook(step)
	}
	return nil
}

// Recover inspects a store directory for the debris of an interrupted
// SaveDir (or an interrupted log write) and repairs it: partial gen-*.tmp
// directories and uncommitted or superseded generations are rolled back,
// the commit marker is rewritten if it was torn or lost, and the
// write-ahead log's torn tail is trimmed on disk (post-corruption segments
// removed), so the directory afterwards holds exactly the last consistent
// generation plus the log's valid prefix. Legacy flat-layout directories
// and empty/missing directories are left untouched (their wal/ debris, if
// any, is still repaired). Recover is idempotent and re-entrant: running
// it twice — or crashing at any point inside it and running it again —
// converges on the same store.
func Recover(dir string) (RecoverReport, error) {
	var rep RecoverReport
	gen, genDir, legacy, err := selectGeneration(dir)
	if err != nil {
		return rep, err
	}
	rep.Generation, rep.Legacy = gen, legacy
	if genDir != "" && !legacy {
		keep := filepath.Base(genDir)

		entries, err := os.ReadDir(dir)
		if err != nil {
			return rep, err
		}
		for _, e := range entries {
			name := e.Name()
			if name == keep || name == markerFile || name == walDirName {
				continue
			}
			stale := name == markerFile+".tmp" || strings.HasSuffix(name, ".tmp")
			if n, ok := genNumber(name); ok && n != gen {
				stale = true
			}
			if !stale {
				continue
			}
			if err := recoverPoint("remove:" + name); err != nil {
				return rep, err
			}
			if err := os.RemoveAll(filepath.Join(dir, name)); err != nil {
				return rep, fmt.Errorf("simdisk: recover: %w", err)
			}
			rep.RolledBack = append(rep.RolledBack, name)
		}

		// Re-point the marker if it is missing, torn, or names a
		// generation other than the one that validated.
		m, _, markerErr := readMarker(dir)
		if markerErr != nil || m == nil || m.Generation != gen {
			gm, err := readGenManifest(genDir)
			if err != nil {
				return rep, fmt.Errorf("simdisk: recover: %w", err)
			}
			raw, err := json.Marshal(gm)
			if err != nil {
				return rep, err
			}
			if err := recoverPoint("marker"); err != nil {
				return rep, err
			}
			tmp := filepath.Join(dir, markerFile+".tmp")
			if err := writeFileSync(tmp, raw); err != nil {
				return rep, fmt.Errorf("simdisk: recover: %w", err)
			}
			if err := os.Rename(tmp, filepath.Join(dir, markerFile)); err != nil {
				return rep, fmt.Errorf("simdisk: recover: %w", err)
			}
			if err := syncDir(dir); err != nil {
				return rep, fmt.Errorf("simdisk: recover: %w", err)
			}
			rep.RepairedMarker = true
		}
		sort.Strings(rep.RolledBack)
	}

	// Write-ahead-log debris: trim the torn tail so the on-disk log is
	// exactly its valid prefix before anyone appends after it.
	sum, werr := recoverWAL(dir, recoverHook)
	rep.WALTrimmed = sum.Trimmed
	if werr != nil {
		return rep, werr
	}
	return rep, nil
}

// DirSize returns the on-disk footprint of a saved store's object payload
// (the mounted generation's object files; marker and generation manifests
// are bookkeeping and excluded), for CLI reporting.
func DirSize(dir string) (int64, error) {
	_, genDir, _, err := selectGeneration(dir)
	if err != nil {
		return 0, err
	}
	if genDir == "" {
		return 0, nil
	}
	var total int64
	for _, sub := range categoryDirs {
		catDir := filepath.Join(genDir, sub)
		err := filepath.WalkDir(catDir, func(_ string, e fs.DirEntry, err error) error {
			if err != nil {
				if os.IsNotExist(err) {
					return fs.SkipAll
				}
				return err
			}
			if e.IsDir() {
				return nil
			}
			info, err := e.Info()
			if err != nil {
				return err
			}
			total += info.Size()
			return nil
		})
		if err != nil {
			return 0, err
		}
	}
	return total, nil
}

// encodeName makes an object name safe as a file name. Hash-addressable
// names are already hex; FileManifest keys are arbitrary user paths, so
// '/' and other separators are escaped. The encoding is canonical: exactly
// the four bytes {%, /, \, :} are escaped, always as uppercase %XX, so
// encodeName is injective and decodeName can reject every non-canonical
// spelling (two distinct on-disk names can never collide on one object
// name).
func encodeName(name string) string {
	r := strings.NewReplacer("%", "%25", "/", "%2F", "\\", "%5C", ":", "%3A")
	return r.Replace(name)
}

// EncodeName exposes the canonical object-name → file-name encoding for
// tools that materialize object payloads outside a store proper (e.g. the
// quarantine directory a scrub writes corrupt objects into).
func EncodeName(name string) string { return encodeName(name) }

// decodeName inverts encodeName, strictly: only the canonical escapes
// %25 %2F %5C %3A (uppercase) are accepted, and raw separator bytes —
// which encodeName would have escaped — are rejected. Anything else is
// corruption or an adversarial file name, never a panic.
func decodeName(file string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(file); i++ {
		switch c := file[i]; c {
		case '%':
			if i+2 >= len(file) {
				return "", fmt.Errorf("truncated escape in %q", file)
			}
			var v byte
			switch file[i+1 : i+3] {
			case "25":
				v = '%'
			case "2F":
				v = '/'
			case "5C":
				v = '\\'
			case "3A":
				v = ':'
			default:
				return "", fmt.Errorf("non-canonical escape %%%s in %q", file[i+1:i+3], file)
			}
			b.WriteByte(v)
			i += 2
		case '/', '\\', ':':
			return "", fmt.Errorf("unescaped separator %q in %q", c, file)
		default:
			b.WriteByte(c)
		}
	}
	return b.String(), nil
}
