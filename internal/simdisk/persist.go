package simdisk

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// Persistence: a simulated disk can be materialized to (and reloaded from)
// a real directory, one file per object under a per-category subdirectory.
// This is the paper's actual deployment shape — "algorithms read data from
// and write the outputs to local directories" (§V) — and it lets the CLI
// deduplicate in one invocation and restore in another. Access counters
// are session state and are not persisted.

// categoryDirs maps categories to directory names (stable on disk).
var categoryDirs = map[Category]string{
	Data:         "chunks",
	Hook:         "hooks",
	Manifest:     "manifests",
	FileManifest: "files",
}

// SaveDir writes every stored object under dir, creating it if needed.
// Object names are encoded so they are safe as file names.
func (d *Disk) SaveDir(dir string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for cat, sub := range categoryDirs {
		catDir := filepath.Join(dir, sub)
		if err := os.MkdirAll(catDir, 0o755); err != nil {
			return fmt.Errorf("simdisk: save: %w", err)
		}
		for name, data := range d.objects[cat] {
			path := filepath.Join(catDir, encodeName(name))
			if err := os.WriteFile(path, data, 0o644); err != nil {
				return fmt.Errorf("simdisk: save %v %q: %w", cat, name, err)
			}
		}
	}
	return nil
}

// LoadDir returns a disk populated from a directory written by SaveDir.
// Counters start at zero: loading models mounting existing storage, not
// re-performing the writes.
func LoadDir(dir string) (*Disk, error) {
	d := New()
	for cat, sub := range categoryDirs {
		catDir := filepath.Join(dir, sub)
		entries, err := os.ReadDir(catDir)
		if err != nil {
			if os.IsNotExist(err) {
				continue // category may be empty
			}
			return nil, fmt.Errorf("simdisk: load: %w", err)
		}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			name, err := decodeName(e.Name())
			if err != nil {
				return nil, fmt.Errorf("simdisk: load %v %q: %w", cat, e.Name(), err)
			}
			data, err := os.ReadFile(filepath.Join(catDir, e.Name()))
			if err != nil {
				return nil, fmt.Errorf("simdisk: load %v %q: %w", cat, name, err)
			}
			d.objects[cat][name] = data
		}
	}
	return d, nil
}

// walkSize returns the on-disk footprint of a saved store (for CLI
// reporting).
func DirSize(dir string) (int64, error) {
	var total int64
	err := filepath.WalkDir(dir, func(_ string, e fs.DirEntry, err error) error {
		if err != nil || e.IsDir() {
			return err
		}
		info, err := e.Info()
		if err != nil {
			return err
		}
		total += info.Size()
		return nil
	})
	return total, err
}

// encodeName makes an object name safe as a file name. Hash-addressable
// names are already hex; FileManifest keys are arbitrary user paths, so
// '/' and other separators are escaped.
func encodeName(name string) string {
	r := strings.NewReplacer("%", "%25", "/", "%2F", "\\", "%5C", ":", "%3A")
	return r.Replace(name)
}

// decodeName inverts encodeName.
func decodeName(file string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(file); i++ {
		c := file[i]
		if c != '%' {
			b.WriteByte(c)
			continue
		}
		if i+2 >= len(file) {
			return "", fmt.Errorf("truncated escape in %q", file)
		}
		var v byte
		if _, err := fmt.Sscanf(file[i+1:i+3], "%02X", &v); err != nil {
			return "", fmt.Errorf("bad escape in %q: %w", file, err)
		}
		b.WriteByte(v)
		i += 2
	}
	return b.String(), nil
}
