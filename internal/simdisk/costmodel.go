package simdisk

import (
	"fmt"
	"time"
)

// CostModel converts access counters into time, standing in for the 2013
// testbed (a single HDD and software SHA-1) behind the paper's
// ThroughputRatio measurements. All rates are bytes per second.
type CostModel struct {
	// SeekLatency is charged once per disk access — the positioning cost
	// that makes metadata I/O the bottleneck.
	SeekLatency time.Duration
	// ReadBandwidth and WriteBandwidth are sequential transfer rates.
	ReadBandwidth  float64
	WriteBandwidth float64
	// ChunkingRate is the CPU throughput of Rabin-fingerprint scanning.
	ChunkingRate float64
	// HashingRate is the CPU throughput of SHA-1.
	HashingRate float64
}

// Default2013 is calibrated to the paper's era: a 7200 rpm HDD (8 ms
// average positioning, ~120 MB/s sequential) and single-core software
// chunking/SHA-1 rates. The ThroughputRatio values it produces fall in the
// 0.2–0.5 band the paper reports.
func Default2013() CostModel {
	return CostModel{
		SeekLatency:    8 * time.Millisecond,
		ReadBandwidth:  120e6,
		WriteBandwidth: 110e6,
		ChunkingRate:   400e6,
		HashingRate:    250e6,
	}
}

// Validate reports whether the model is usable.
func (m CostModel) Validate() error {
	if m.SeekLatency < 0 {
		return fmt.Errorf("simdisk: negative seek latency")
	}
	for _, r := range []float64{m.ReadBandwidth, m.WriteBandwidth, m.ChunkingRate, m.HashingRate} {
		if r <= 0 {
			return fmt.Errorf("simdisk: all rates must be positive")
		}
	}
	return nil
}

// DiskTime returns the modeled time spent on the disk operations recorded
// in c: one seek per access plus transfer time for the bytes moved.
func (m CostModel) DiskTime(c Counters) time.Duration {
	seeks := time.Duration(c.Accesses()) * m.SeekLatency
	read := seconds(float64(c.BytesRead.Total()) / m.ReadBandwidth)
	written := seconds(float64(c.BytesWritten.Total()) / m.WriteBandwidth)
	return seeks + read + written
}

// CPUTime returns the modeled compute time for scanning chunkedBytes
// through the rolling fingerprint and hashing hashedBytes with SHA-1.
// hashedBytes exceeds the input size when match extension re-hashes
// buffered regions; both are reported by the deduplicators.
func (m CostModel) CPUTime(chunkedBytes, hashedBytes int64) time.Duration {
	return seconds(float64(chunkedBytes)/m.ChunkingRate) +
		seconds(float64(hashedBytes)/m.HashingRate)
}

// IngestTime returns the modeled time to read inputBytes of input
// sequentially from the source disk (charged to every algorithm alike,
// including plain copying).
func (m CostModel) IngestTime(inputBytes int64) time.Duration {
	return seconds(float64(inputBytes) / m.ReadBandwidth)
}

// CopyTime returns the modeled time to pass inputBytes through the system
// without deduplication — read it and write it back sequentially. This is
// the numerator of the paper's ThroughputRatio.
func (m CostModel) CopyTime(inputBytes int64) time.Duration {
	return m.IngestTime(inputBytes) + seconds(float64(inputBytes)/m.WriteBandwidth)
}

// DedupTime returns the modeled wall time for a deduplication run: reading
// the input, CPU for chunking and hashing, and all recorded disk I/O.
func (m CostModel) DedupTime(inputBytes, chunkedBytes, hashedBytes int64, c Counters) time.Duration {
	return m.IngestTime(inputBytes) + m.CPUTime(chunkedBytes, hashedBytes) + m.DiskTime(c)
}

// ThroughputRatio returns CopyTime / DedupTime — the paper's throughput
// metric (larger is faster deduplication).
func (m CostModel) ThroughputRatio(inputBytes, chunkedBytes, hashedBytes int64, c Counters) float64 {
	dedup := m.DedupTime(inputBytes, chunkedBytes, hashedBytes, c)
	if dedup <= 0 {
		return 0
	}
	return float64(m.CopyTime(inputBytes)) / float64(dedup)
}

func seconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
