package simdisk

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// snapshot captures the full object state of a disk for equality checks.
func snapshot(d *Disk) map[Category]map[string][]byte {
	out := make(map[Category]map[string][]byte)
	for _, cat := range categoryOrder() {
		out[cat] = make(map[string][]byte)
		for _, name := range d.Names(cat) {
			data, _ := d.Read(cat, name)
			out[cat][name] = data
		}
	}
	return out
}

func sameState(a, b map[Category]map[string][]byte) bool {
	for _, cat := range categoryOrder() {
		if len(a[cat]) != len(b[cat]) {
			return false
		}
		for name, data := range a[cat] {
			if !bytes.Equal(b[cat][name], data) {
				return false
			}
		}
	}
	return true
}

func TestSaveDirGenerations(t *testing.T) {
	dir := t.TempDir()
	d := New()
	d.Create(Data, "a", []byte("one"))
	if err := d.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "gen-000001", "chunks")); err != nil {
		t.Fatalf("generation 1 not materialized: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, markerFile)); err != nil {
		t.Fatalf("commit marker missing: %v", err)
	}

	d.Create(Data, "b", []byte("two"))
	if err := d.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "gen-000002")); err != nil {
		t.Fatalf("generation 2 not materialized: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "gen-000001")); !os.IsNotExist(err) {
		t.Error("superseded generation 1 should have been removed")
	}

	back, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !sameState(snapshot(d), snapshot(back)) {
		t.Error("reloaded state differs from saved state")
	}
}

func TestLoadDirLegacyFlatLayout(t *testing.T) {
	// A pre-generation store: category dirs at top level, no marker.
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "chunks"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "chunks", "aabb"), []byte("legacy"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Read(Data, "aabb")
	if err != nil || !bytes.Equal(got, []byte("legacy")) {
		t.Fatalf("legacy object = %q, %v", got, err)
	}
	// Recover leaves legacy layouts untouched.
	rep, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Legacy || len(rep.RolledBack) != 0 || rep.RepairedMarker {
		t.Errorf("recover of legacy layout = %+v, want untouched legacy", rep)
	}
	if _, err := os.Stat(filepath.Join(dir, "chunks", "aabb")); err != nil {
		t.Error("legacy object removed by Recover")
	}
	// Saving over a legacy dir upgrades it to the generation layout.
	if err := d.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "chunks")); !os.IsNotExist(err) {
		t.Error("legacy category dir should be cleaned up after upgrade save")
	}
	back, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := back.Read(Data, "aabb"); !bytes.Equal(got, []byte("legacy")) {
		t.Error("object lost across legacy → generation upgrade")
	}
}

func TestRecoverRollsBackInterruptedSave(t *testing.T) {
	dir := t.TempDir()
	d := New()
	d.Create(Data, "a", []byte("one"))
	d.Create(FileManifest, "f/one", []byte("recipe"))
	if err := d.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	old := snapshot(d)

	// Second save killed on its 3rd file-system mutation, tearing the
	// payload it was writing.
	d.Create(Data, "b", []byte("two"))
	var point int
	d.SetSaveHook(func(path string, data []byte) ([]byte, error) {
		point++
		if point == 3 {
			if data != nil {
				return data[:len(data)/2], ErrKilled
			}
			return nil, ErrKilled
		}
		return data, nil
	})
	err := d.SaveDir(dir)
	if !errors.Is(err, ErrKilled) {
		t.Fatalf("killed save error = %v, want ErrKilled", err)
	}
	d.SetSaveHook(nil)
	if _, err := os.Stat(filepath.Join(dir, "gen-000002.tmp")); err != nil {
		t.Fatalf("killed save should leave its temp dir: %v", err)
	}

	rep, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Generation != 1 {
		t.Errorf("recovered generation = %d, want 1", rep.Generation)
	}
	found := false
	for _, r := range rep.RolledBack {
		if r == "gen-000002.tmp" {
			found = true
		}
	}
	if !found {
		t.Errorf("RolledBack = %v, want gen-000002.tmp rolled back", rep.RolledBack)
	}
	back, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !sameState(old, snapshot(back)) {
		t.Error("recovered store is not the old generation")
	}

	// The store keeps working: a clean save now commits generation 2.
	if err := d.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	back, err = LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !sameState(snapshot(d), snapshot(back)) {
		t.Error("post-recovery save did not round-trip")
	}
}

func TestRecoverRepairsTornMarker(t *testing.T) {
	dir := t.TempDir()
	d := New()
	d.Create(Data, "a", []byte("one"))
	if err := d.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	old := snapshot(d)

	// Tear the commit marker (e.g. a crash while a later tool rewrote it).
	marker := filepath.Join(dir, markerFile)
	raw, err := os.ReadFile(marker)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(marker, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	// LoadDir still mounts the last consistent generation, read-only.
	back, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !sameState(old, snapshot(back)) {
		t.Error("load with torn marker did not find the consistent generation")
	}

	rep, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.RepairedMarker || rep.Generation != 1 {
		t.Errorf("recover = %+v, want repaired marker for generation 1", rep)
	}
	if m, _, err := readMarker(dir); err != nil || m == nil || m.Generation != 1 {
		t.Errorf("marker after recover = %+v, %v", m, err)
	}
}

func TestLoadDirRejectsTamperedGeneration(t *testing.T) {
	dir := t.TempDir()
	d := New()
	d.Create(Data, "a", []byte("one"))
	if err := d.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	// Truncate an object file after commit: the generation no longer
	// matches its manifest, and nothing else validates.
	path := filepath.Join(dir, "gen-000001", "chunks", "a")
	if err := os.WriteFile(path, []byte("o"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir); err == nil {
		t.Fatal("LoadDir should refuse a store whose only generation fails validation")
	}
}

// TestSaveDirAfterCrashBetweenRenameAndMarker pins the one crash window
// where the marker and the directory listing disagree: the new generation
// gen-N is already renamed into place but the crash hits before the marker
// swap, so the marker still names N-1. A later SaveDir that trusted the
// marker alone would compute gen = N and fail renaming onto the existing
// non-empty gen-N until a Recover ran; SaveDir must instead clear both
// witnesses (max of marker and newest valid generation) and succeed on its
// own.
func TestSaveDirAfterCrashBetweenRenameAndMarker(t *testing.T) {
	dir := t.TempDir()
	d := New()
	d.Create(Data, "a", []byte("one"))
	if err := d.SaveDir(dir); err != nil {
		t.Fatal(err)
	}

	// Kill the second save exactly at the marker swap: gen-000002 is
	// committed on disk in everything but the marker.
	d.Create(Data, "b", []byte("two"))
	markerRename := "rename:" + filepath.Join(dir, markerFile)
	d.SetSaveHook(func(path string, data []byte) ([]byte, error) {
		if path == markerRename {
			return nil, ErrKilled
		}
		return data, nil
	})
	if err := d.SaveDir(dir); !errors.Is(err, ErrKilled) {
		t.Fatalf("killed save error = %v, want ErrKilled", err)
	}
	d.SetSaveHook(nil)
	if _, err := os.Stat(filepath.Join(dir, "gen-000002")); err != nil {
		t.Fatalf("renamed generation missing, kill point off target: %v", err)
	}
	if m, _, err := readMarker(dir); err != nil || m == nil || m.Generation != 1 {
		t.Fatalf("marker = %+v, %v; want still generation 1", m, err)
	}

	// No Recover: the very next save must skip past the orphaned gen-2.
	d.Create(Data, "c", []byte("three"))
	if err := d.SaveDir(dir); err != nil {
		t.Fatalf("save after rename/marker crash failed without Recover: %v", err)
	}
	if m, _, err := readMarker(dir); err != nil || m == nil || m.Generation != 3 {
		t.Fatalf("marker after save = %+v, %v; want generation 3", m, err)
	}
	back, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !sameState(snapshot(d), snapshot(back)) {
		t.Error("post-crash save did not round-trip")
	}
	// And the orphaned generation is gone (post-commit cleanup).
	if _, err := os.Stat(filepath.Join(dir, "gen-000002")); !os.IsNotExist(err) {
		t.Error("orphaned gen-000002 survived the committing save")
	}
}

func TestSaveDirKillEveryPoint(t *testing.T) {
	// Exhaustively kill a small save at every injection point (without
	// tearing): recovery must always mount old or new, never a hybrid and
	// never an error.
	base := func() *Disk {
		d := New()
		d.Create(Data, "a", []byte("aaaa"))
		d.Create(Hook, "h", []byte("hhhh"))
		return d
	}
	// Count the points of a full save.
	probe := base()
	probe.Create(Data, "b", []byte("bbbb"))
	dirProbe := t.TempDir()
	if err := probe.SaveDir(dirProbe); err != nil { // establish gen 1... not needed; count points of initial save
		t.Fatal(err)
	}
	var total int
	probe.SetSaveHook(func(string, []byte) ([]byte, error) { total++; return nil, nil })
	if err := probe.SaveDir(dirProbe); err != nil {
		t.Fatal(err)
	}
	probe.SetSaveHook(nil)
	if total < 5 {
		t.Fatalf("suspiciously few save points: %d", total)
	}

	for kill := 1; kill <= total; kill++ {
		kill := kill
		t.Run(fmt.Sprintf("kill-%d", kill), func(t *testing.T) {
			dir := t.TempDir()
			d := base()
			if err := d.SaveDir(dir); err != nil {
				t.Fatal(err)
			}
			oldState := snapshot(d)
			d.Create(Data, "b", []byte("bbbb"))
			newState := snapshot(d)

			var point int
			d.SetSaveHook(func(path string, data []byte) ([]byte, error) {
				point++
				if point == kill {
					return nil, ErrKilled
				}
				return data, nil
			})
			err := d.SaveDir(dir)
			d.SetSaveHook(nil)
			if err != nil && !errors.Is(err, ErrKilled) {
				t.Fatalf("save error = %v", err)
			}
			if _, err := Recover(dir); err != nil {
				t.Fatalf("recover: %v", err)
			}
			back, err := LoadDir(dir)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			got := snapshot(back)
			if !sameState(got, oldState) && !sameState(got, newState) {
				t.Fatalf("kill point %d: recovered state is neither old nor new", kill)
			}
		})
	}
}

func FuzzEncodeDecodeName(f *testing.F) {
	for _, s := range []string{"", "m00/d01", "win:disk\\c", "%", "%25", "a%2Fb", "plain", "..", "%zz", "%2f"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		// Forward direction: every object name round-trips exactly and the
		// encoded form is a single path element.
		enc := encodeName(s)
		if s != "" && filepath.Base(enc) != enc {
			t.Fatalf("encodeName(%q) = %q contains separators", s, enc)
		}
		dec, err := decodeName(enc)
		if err != nil {
			t.Fatalf("decode(encode(%q)) failed: %v", s, err)
		}
		if dec != s {
			t.Fatalf("decode(encode(%q)) = %q", s, dec)
		}
		// Adversarial direction: decoding an arbitrary file name must never
		// panic, and anything it accepts must be the canonical encoding of
		// its result — so two distinct on-disk names cannot collide on one
		// object name.
		if dec2, err := decodeName(s); err == nil {
			if encodeName(dec2) != s {
				t.Fatalf("decodeName accepted non-canonical %q -> %q (canonical %q)", s, dec2, encodeName(dec2))
			}
		}
	})
}
