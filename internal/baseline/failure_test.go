package baseline

import (
	"bytes"
	"errors"
	"testing"

	"mhdedup/internal/algo"
	"mhdedup/internal/simdisk"
)

// TestDiskFailuresPropagate injects failures per disk-operation class and
// asserts every baseline surfaces the error from PutFile/Finish instead of
// silently corrupting state. (Manifest rewrite failures are MHD-specific —
// baseline manifests are immutable — and are covered in internal/core.)
func TestDiskFailuresPropagate(t *testing.T) {
	boom := errors.New("injected media error")
	type builder struct {
		name string
		mk   func(*simdisk.Disk) (algo.Deduplicator, error)
	}
	builders := []builder{
		{"cdc", func(d *simdisk.Disk) (algo.Deduplicator, error) {
			cfg := DefaultCDCConfig()
			cfg.ECS = 512
			cfg.BloomBytes = 1 << 16
			return NewCDCOnDisk(cfg, d)
		}},
		{"bimodal", func(d *simdisk.Disk) (algo.Deduplicator, error) {
			cfg := DefaultBimodalConfig()
			cfg.ECS = 512
			cfg.SD = 4
			cfg.BloomBytes = 1 << 16
			return NewBimodalOnDisk(cfg, d)
		}},
		{"subchunk", func(d *simdisk.Disk) (algo.Deduplicator, error) {
			cfg := DefaultSubChunkConfig()
			cfg.ECS = 512
			cfg.SD = 4
			cfg.BloomBytes = 1 << 16
			return NewSubChunkOnDisk(cfg, d)
		}},
		{"sparse", func(d *simdisk.Disk) (algo.Deduplicator, error) {
			cfg := DefaultSparseConfig()
			cfg.ECS = 512
			cfg.SD = 4
			return NewSparseOnDisk(cfg, d)
		}},
	}
	cats := []simdisk.Category{simdisk.Data, simdisk.Manifest, simdisk.FileManifest, simdisk.Hook}
	for _, b := range builders {
		for _, failCat := range cats {
			disk := simdisk.New()
			eng, err := b.mk(disk)
			if err != nil {
				t.Fatalf("%s: %v", b.name, err)
			}
			disk.SetFailureHook(func(op simdisk.Op, cat simdisk.Category, _ string) error {
				if op == simdisk.OpCreate && cat == failCat {
					return boom
				}
				return nil
			})
			err = eng.PutFile("x", bytes.NewReader(randBytes(91, 120_000)))
			if err == nil {
				err = eng.Finish()
			}
			if !errors.Is(err, boom) {
				t.Errorf("%s with create/%v failure: error = %v, want injected failure",
					b.name, failCat, err)
			}
		}
	}
}
