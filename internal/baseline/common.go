// Package baseline implements the four comparison algorithms of the
// paper's evaluation: plain CDC deduplication (the Data-Domain-style
// baseline of Table I/II's "CDC" column), Bimodal chunking (Kruus et al.,
// FAST'10), SubChunk / anchor-driven sub-chunk deduplication (Romanski et
// al., SYSTOR'11) and Sparse Indexing (Lillibridge et al., FAST'09). All
// four share the substrates of the MHD implementation — chunkers, bloom
// filter, manifest/hook/file-manifest formats, simulated disk — so that
// metadata and I/O comparisons measure algorithmic differences, not
// implementation accidents.
package baseline

import (
	"mhdedup/internal/hashutil"
	"mhdedup/internal/lru"
	"mhdedup/internal/store"
)

// manifestCache is the locality cache shared by the baselines: an LRU of
// manifests plus a flat hash→manifest index over every cached entry, with
// dirty write-back on eviction (only SparseIndexing ever dirties cached
// manifests; the others' manifests are immutable once written).
type manifestCache struct {
	cache *lru.Cache[hashutil.Sum, *store.Manifest]
	index map[hashutil.Sum]hashutil.Sum
	st    *store.Store
	// loads counts manifest reads from disk.
	loads int64
	// evictErr defers write-back failures to Finish.
	evictErr error
}

func newManifestCache(st *store.Store, capacity int) (*manifestCache, error) {
	mc := &manifestCache{
		index: make(map[hashutil.Sum]hashutil.Sum),
		st:    st,
	}
	cache, err := lru.New[hashutil.Sum, *store.Manifest](capacity, mc.onEvict)
	if err != nil {
		return nil, err
	}
	mc.cache = cache
	return mc, nil
}

func (mc *manifestCache) onEvict(name hashutil.Sum, m *store.Manifest) {
	if err := mc.st.WriteBackManifest(m); err != nil && mc.evictErr == nil {
		mc.evictErr = err
	}
	for _, e := range m.Entries {
		if mc.index[e.Hash] == name {
			delete(mc.index, e.Hash)
		}
	}
}

// insert registers a manifest and indexes its entries.
func (mc *manifestCache) insert(m *store.Manifest) {
	mc.cache.Put(m.Name, m)
	for _, e := range m.Entries {
		mc.index[e.Hash] = m.Name
	}
}

// lookup finds a cached manifest entry by chunk hash.
func (mc *manifestCache) lookup(h hashutil.Sum) (*store.Manifest, int, bool) {
	name, ok := mc.index[h]
	if !ok {
		return nil, 0, false
	}
	m, ok := mc.cache.Get(name)
	if !ok {
		delete(mc.index, h)
		return nil, 0, false
	}
	idx, ok := m.Lookup(h)
	if !ok {
		delete(mc.index, h)
		return nil, 0, false
	}
	return m, idx, true
}

// get returns a cached manifest by name without disk I/O.
func (mc *manifestCache) get(name hashutil.Sum) (*store.Manifest, bool) {
	return mc.cache.Get(name)
}

// load returns the named manifest, reading it from disk (one access) if it
// is not cached.
func (mc *manifestCache) load(name hashutil.Sum) (*store.Manifest, error) {
	if m, ok := mc.cache.Get(name); ok {
		return m, nil
	}
	m, err := mc.st.ReadManifest(name)
	if err != nil {
		return nil, err
	}
	mc.loads++
	mc.insert(m)
	return m, nil
}

// bytesResident sums the sizes of cached manifests (for RAM accounting).
func (mc *manifestCache) bytesResident() int64 {
	var n int64
	mc.cache.Each(func(_ hashutil.Sum, m *store.Manifest) {
		n += int64(m.ByteSize())
	})
	n += int64(len(mc.index)) * (2*hashutil.Size + 8)
	return n
}

// flush evicts everything, writing back dirty manifests, and returns any
// deferred write error.
func (mc *manifestCache) flush() error {
	mc.cache.Flush()
	err := mc.evictErr
	mc.evictErr = nil
	return err
}

// dupTracker folds per-chunk classifications (in stream order) into the
// D/N/L counters.
type dupTracker struct {
	prevDup bool
}

// note records one chunk's classification and returns whether it starts a
// new duplicate slice.
func (dt *dupTracker) note(dup bool) (newSlice bool) {
	newSlice = dup && !dt.prevDup
	dt.prevDup = dup
	return newSlice
}

// reset starts a new file (slices do not span files).
func (dt *dupTracker) reset() { dt.prevDup = false }
