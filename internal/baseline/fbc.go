package baseline

import (
	"fmt"
	"io"

	"mhdedup/internal/bloom"
	"mhdedup/internal/chunker"
	"mhdedup/internal/hashutil"
	"mhdedup/internal/metrics"
	"mhdedup/internal/rabin"
	"mhdedup/internal/simdisk"
	"mhdedup/internal/sketch"
	"mhdedup/internal/store"
)

// FBCConfig parameterizes the frequency-based-chunking baseline.
type FBCConfig struct {
	ECS            int
	SD             int
	BloomBytes     int
	BloomHashes    int
	UseBloom       bool
	CacheManifests int
	// FreqThreshold is the estimated small-chunk frequency at which a big
	// chunk is considered to contain popular content and is re-chunked.
	FreqThreshold uint32
	// SketchRows/SketchWidth size the count-min sketch.
	SketchRows  int
	SketchWidth int
	Poly        rabin.Poly
	// RecipeTrees stores file recipes as deduplicated recipe trees.
	RecipeTrees bool
}

// DefaultFBCConfig returns a usable default.
func DefaultFBCConfig() FBCConfig {
	return FBCConfig{
		ECS:            4096,
		SD:             64,
		BloomBytes:     1 << 20,
		BloomHashes:    5,
		UseBloom:       true,
		CacheManifests: 64,
		FreqThreshold:  2,
		SketchRows:     4,
		SketchWidth:    1 << 16,
	}
}

// Validate reports whether the configuration is usable.
func (c FBCConfig) Validate() error {
	if c.ECS <= 0 || c.SD < 2 {
		return fmt.Errorf("baseline: fbc needs ECS > 0 and SD >= 2")
	}
	if c.UseBloom && (c.BloomBytes <= 0 || c.BloomHashes <= 0 || c.BloomHashes > 32) {
		return fmt.Errorf("baseline: invalid bloom parameters")
	}
	if c.CacheManifests <= 0 {
		return fmt.Errorf("baseline: CacheManifests must be positive")
	}
	if c.FreqThreshold == 0 {
		return fmt.Errorf("baseline: FreqThreshold must be positive")
	}
	if c.SketchRows <= 0 || c.SketchWidth <= 0 {
		return fmt.Errorf("baseline: sketch dimensions must be positive")
	}
	return nil
}

// FBC implements frequency-based chunking (Lu, Jin & Du, MASCOTS'10) as the
// paper's §II describes it: big-chunk-first deduplication with *selective*
// re-chunking driven by chunk frequency estimated from previously processed
// data. A count-min sketch tracks small-chunk frequencies; a non-duplicate
// big chunk is re-chunked only when it contains small chunks whose
// estimated frequency reaches the threshold — popular content earns its own
// chunk boundaries, cold content stays coarse.
type FBC struct {
	cfg    FBCConfig
	disk   *simdisk.Disk
	st     *store.Store
	filter *bloom.Filter
	mc     *manifestCache
	freq   *sketch.CountMin
	stats  metrics.Stats
	dt     dupTracker
	peak   int64
}

// NewFBC returns an FBC deduplicator over a fresh simulated disk.
func NewFBC(cfg FBCConfig) (*FBC, error) {
	return NewFBCOnDisk(cfg, simdisk.New())
}

// NewFBCOnDisk returns an FBC deduplicator over the given disk.
func NewFBCOnDisk(cfg FBCConfig, disk *simdisk.Disk) (*FBC, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &FBC{cfg: cfg, disk: disk, st: store.New(disk, store.FormatBasic)}
	d.st.SetRecipeConfig(store.RecipeConfig{Trees: cfg.RecipeTrees})
	if cfg.UseBloom {
		f, err := bloom.New(cfg.BloomBytes, cfg.BloomHashes)
		if err != nil {
			return nil, err
		}
		d.filter = f
	}
	freq, err := sketch.New(cfg.SketchRows, cfg.SketchWidth)
	if err != nil {
		return nil, err
	}
	d.freq = freq
	mc, err := newManifestCache(d.st, cfg.CacheManifests)
	if err != nil {
		return nil, err
	}
	d.mc = mc
	return d, nil
}

// Disk exposes the simulated disk.
func (d *FBC) Disk() *simdisk.Disk { return d.disk }

// PutFile deduplicates one input file.
func (d *FBC) PutFile(name string, r io.Reader) error {
	big, err := chunker.NewCDC(r, chunker.Params{ECS: d.cfg.ECS * d.cfg.SD, Poly: d.cfg.Poly})
	if err != nil {
		return err
	}
	d.stats.FilesTotal++
	d.dt.reset()

	chunkName := d.st.NextName()
	manifest := store.NewManifest(chunkName, store.FormatBasic)
	var data []byte
	var hooks []hashutil.Sum
	fm := &store.FileManifest{File: name}

	appendStored := func(chunkData []byte, h hashutil.Sum) error {
		start := int64(len(data))
		data = append(data, chunkData...)
		manifest.Append(store.Entry{Hash: h, Start: start, Size: int64(len(chunkData)), Kind: store.KindHook})
		hooks = append(hooks, h)
		if err := fm.Append(store.FileRef{Container: chunkName, Start: start, Size: int64(len(chunkData))}); err != nil {
			return err
		}
		d.stats.NonDupChunks++
		d.dt.note(false)
		return nil
	}
	markDup := func(size int64, container hashutil.Sum, start int64) error {
		if err := fm.Append(store.FileRef{Container: container, Start: start, Size: size}); err != nil {
			return err
		}
		d.stats.DupChunks++
		d.stats.DupBytes += size
		if d.dt.note(true) {
			d.stats.DupSlices++
		}
		return nil
	}

	for {
		c, err := big.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		d.stats.InputBytes += c.Size()
		d.stats.ChunkedBytes += c.Size()
		d.stats.HashedBytes += c.Size()
		bh := hashutil.SumBytes(c.Data)

		d.stats.BigChunkQueries++
		if m, idx, ok := d.lookup(bh); ok {
			e := m.Entries[idx]
			d.stats.ChunksIn++
			if err := markDup(c.Size(), m.ContainerOf(e), e.Start); err != nil {
				return err
			}
			continue
		}

		// Estimate the small-chunk frequencies inside this big chunk and
		// feed the sketch ("frequency information ... estimated from data
		// that have been previously processed").
		smalls, err := chunker.Split(c.Data, chunker.Params{ECS: d.cfg.ECS, Poly: d.cfg.Poly})
		if err != nil {
			return err
		}
		smallHashes := make([]hashutil.Sum, len(smalls))
		rechunk := false
		for i, sc := range smalls {
			d.stats.HashedBytes += sc.Size()
			smallHashes[i] = hashutil.SumBytes(sc.Data)
			if d.freq.Estimate(smallHashes[i]) >= d.cfg.FreqThreshold {
				rechunk = true
			}
		}
		for _, sh := range smallHashes {
			d.freq.Add(sh)
		}

		if !rechunk {
			d.stats.ChunksIn++
			if err := appendStored(c.Data, bh); err != nil {
				return err
			}
			continue
		}
		// Popular content inside: re-chunk and deduplicate the small
		// chunks individually.
		for i, sc := range smalls {
			d.stats.ChunksIn++
			if m, idx, ok := d.lookup(smallHashes[i]); ok {
				e := m.Entries[idx]
				if err := markDup(sc.Size(), m.ContainerOf(e), e.Start); err != nil {
					return err
				}
				continue
			}
			if err := appendStored(sc.Data, smallHashes[i]); err != nil {
				return err
			}
		}
	}

	if len(data) > 0 {
		if err := d.st.WriteDiskChunk(chunkName, data); err != nil {
			return err
		}
		if err := d.st.CreateManifest(manifest); err != nil {
			return err
		}
		for _, h := range hooks {
			if d.st.HookKnown(h) {
				continue
			}
			if err := d.st.CreateHook(h, chunkName); err != nil {
				return err
			}
			if d.filter != nil {
				d.filter.Add(h)
			}
		}
		d.stats.Files++
		d.stats.StoredDataBytes += int64(len(data))
		d.trackRAM()
	}
	return d.st.WriteFileManifest(fm)
}

// lookup is the cache → bloom → disk-hook duplicate query.
func (d *FBC) lookup(h hashutil.Sum) (*store.Manifest, int, bool) {
	if m, idx, ok := d.mc.lookup(h); ok {
		return m, idx, true
	}
	if d.filter != nil && !d.filter.Test(h) {
		return nil, 0, false
	}
	if !d.st.HookExists(h) {
		return nil, 0, false
	}
	targets, err := d.st.ReadHook(h)
	if err != nil || len(targets) == 0 {
		return nil, 0, false
	}
	m, err := d.mc.load(targets[0])
	if err != nil {
		return nil, 0, false
	}
	idx, ok := m.Lookup(h)
	if !ok {
		return nil, 0, false
	}
	return m, idx, true
}

func (d *FBC) trackRAM() {
	cur := d.mc.bytesResident() + d.freq.SizeBytes()
	if d.filter != nil {
		cur += d.filter.SizeBytes()
	}
	if cur > d.peak {
		d.peak = cur
	}
}

// Finish flushes the manifest cache.
func (d *FBC) Finish() error {
	d.trackRAM()
	d.stats.RAMBytes = d.peak
	return d.mc.flush()
}

// Report returns statistics plus disk accounting.
func (d *FBC) Report() metrics.Report {
	s := d.stats
	s.ManifestLoads = d.mc.loads
	if s.RAMBytes == 0 {
		s.RAMBytes = d.peak
	}
	return metrics.BuildReport(s, d.disk)
}

// Restore rebuilds an ingested file.
func (d *FBC) Restore(name string, w io.Writer) error {
	return d.st.RestoreFile(name, w)
}
