package baseline

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"mhdedup/internal/algo"
	"mhdedup/internal/metrics"
	"mhdedup/internal/trace"
)

// Compile-time interface checks.
var (
	_ algo.Deduplicator = (*CDC)(nil)
	_ algo.Deduplicator = (*Bimodal)(nil)
	_ algo.Deduplicator = (*SubChunk)(nil)
	_ algo.Deduplicator = (*Sparse)(nil)
)

func randBytes(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

// builders constructs each baseline with small-scale parameters (ECS 512,
// SD 4).
func builders(t *testing.T) map[string]func() algo.Deduplicator {
	t.Helper()
	return map[string]func() algo.Deduplicator{
		"cdc": func() algo.Deduplicator {
			cfg := DefaultCDCConfig()
			cfg.ECS = 512
			cfg.BloomBytes = 1 << 16
			d, err := NewCDC(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
		"bimodal": func() algo.Deduplicator {
			cfg := DefaultBimodalConfig()
			cfg.ECS = 512
			cfg.SD = 4
			cfg.BloomBytes = 1 << 16
			d, err := NewBimodal(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
		"subchunk": func() algo.Deduplicator {
			cfg := DefaultSubChunkConfig()
			cfg.ECS = 512
			cfg.SD = 4
			cfg.BloomBytes = 1 << 16
			d, err := NewSubChunk(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
		"sparse": func() algo.Deduplicator {
			cfg := DefaultSparseConfig()
			cfg.ECS = 512
			cfg.SD = 4
			d, err := NewSparse(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
	}
}

func feed(t *testing.T, d algo.Deduplicator, files map[string][]byte, order []string) {
	t.Helper()
	for _, name := range order {
		if err := d.PutFile(name, bytes.NewReader(files[name])); err != nil {
			t.Fatalf("PutFile(%s): %v", name, err)
		}
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
}

func checkRestoreAll(t *testing.T, name string, d algo.Deduplicator, files map[string][]byte) {
	t.Helper()
	for fname, want := range files {
		var got bytes.Buffer
		if err := d.Restore(fname, &got); err != nil {
			t.Fatalf("%s: Restore(%s): %v", name, fname, err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("%s: Restore(%s): %d bytes != %d input bytes", name, fname, got.Len(), len(want))
		}
	}
}

func checkBaselineInvariants(t *testing.T, name string, r metrics.Report) {
	t.Helper()
	if r.DupChunks+r.NonDupChunks != r.ChunksIn {
		t.Errorf("%s: D+N != chunks in (%d+%d != %d)", name, r.DupChunks, r.NonDupChunks, r.ChunksIn)
	}
	if r.StoredDataBytes+r.DupBytes != r.InputBytes {
		t.Errorf("%s: stored %d + dup %d != input %d", name, r.StoredDataBytes, r.DupBytes, r.InputBytes)
	}
	if r.DupSlices > r.DupChunks {
		t.Errorf("%s: L > D", name)
	}
}

func TestRoundTripAllBaselines(t *testing.T) {
	base := randBytes(1, 300_000)
	edited := append([]byte(nil), base...)
	copy(edited[123_457:], randBytes(2, 9_000))
	files := map[string][]byte{
		"a": base,
		"b": append([]byte(nil), base...), // complete duplicate
		"c": edited,                       // partial duplicate
		"d": randBytes(3, 150_000),        // unique
	}
	order := []string{"a", "b", "c", "d"}
	for name, build := range builders(t) {
		t.Run(name, func(t *testing.T) {
			d := build()
			feed(t, d, files, order)
			checkRestoreAll(t, name, d, files)
			r := d.Report()
			checkBaselineInvariants(t, name, r)
			// The complete duplicate must mostly vanish.
			if r.StoredDataBytes > int64(len(base))*2+int64(len(files["d"]))+40_000 {
				t.Errorf("%s: stored %d bytes — duplicate file not eliminated", name, r.StoredDataBytes)
			}
			if r.DupBytes == 0 {
				t.Errorf("%s: found no duplicate data at all", name)
			}
		})
	}
}

func TestEmptyAndTinyFiles(t *testing.T) {
	files := map[string][]byte{
		"empty": {},
		"tiny":  []byte("0123456789"),
		"tiny2": []byte("0123456789"),
	}
	order := []string{"empty", "tiny", "tiny2"}
	for name, build := range builders(t) {
		t.Run(name, func(t *testing.T) {
			d := build()
			feed(t, d, files, order)
			checkRestoreAll(t, name, d, files)
		})
	}
}

func TestBackupWorkloadAllBaselines(t *testing.T) {
	cfg := trace.Default()
	cfg.Machines = 2
	cfg.Days = 3
	cfg.SnapshotBytes = 1 << 20
	cfg.EditsPerDay = 8
	cfg.EditBytes = 8 << 10
	ds, err := trace.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, build := range builders(t) {
		t.Run(name, func(t *testing.T) {
			d := build()
			if err := ds.EachFile(func(info trace.FileInfo, r io.Reader) error {
				return d.PutFile(info.Name, r)
			}); err != nil {
				t.Fatal(err)
			}
			if err := d.Finish(); err != nil {
				t.Fatal(err)
			}
			r := d.Report()
			checkBaselineInvariants(t, name, r)
			if der := r.DataOnlyDER(); der < 1.5 {
				t.Errorf("%s: data-only DER = %.2f on a backup workload", name, der)
			}
			// Full restore check.
			if err := ds.EachFile(func(info trace.FileInfo, rd io.Reader) error {
				want, err := io.ReadAll(rd)
				if err != nil {
					return err
				}
				var got bytes.Buffer
				if err := d.Restore(info.Name, &got); err != nil {
					return err
				}
				if !bytes.Equal(got.Bytes(), want) {
					return fmt.Errorf("restore of %s differs", info.Name)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: %s", name, r.String())
		})
	}
}

func TestCDCHooksPerChunk(t *testing.T) {
	cfg := DefaultCDCConfig()
	cfg.ECS = 512
	cfg.BloomBytes = 1 << 16
	d, _ := NewCDC(cfg)
	feed(t, d, map[string][]byte{"a": randBytes(10, 200_000)}, []string{"a"})
	r := d.Report()
	// CDC's defining cost: one hook per non-duplicate chunk (Table I).
	if r.InodesHook != r.NonDupChunks {
		t.Errorf("hooks = %d, non-dup chunks = %d: CDC must hook every chunk", r.InodesHook, r.NonDupChunks)
	}
	if r.ManifestBytes != r.NonDupChunks*36 {
		t.Errorf("manifest bytes = %d, want 36·N = %d", r.ManifestBytes, r.NonDupChunks*36)
	}
}

func TestBimodalRechunksOnlyTransitions(t *testing.T) {
	cfg := DefaultBimodalConfig()
	cfg.ECS = 512
	cfg.SD = 4
	cfg.BloomBytes = 1 << 16
	base := randBytes(20, 400_000)
	edited := append([]byte(nil), base...)
	copy(edited[200_000:], randBytes(21, 4_000))

	d, _ := NewBimodal(cfg)
	feed(t, d, map[string][]byte{"a": base, "b": edited}, []string{"a", "b"})
	checkRestoreAll(t, "bimodal", d, map[string][]byte{"a": base, "b": edited})
	r := d.Report()
	if r.BigChunkQueries == 0 {
		t.Error("bimodal must query at big-chunk granularity")
	}
	// Small chunks exist only near the edit: ChunksIn exceeds the big-chunk
	// count, but not by the full re-chunk factor.
	bigOnly := r.InputBytes / int64(cfg.ECS*cfg.SD)
	if r.ChunksIn <= bigOnly {
		t.Error("no re-chunking happened despite a transition point")
	}
	fullRechunk := r.InputBytes / int64(cfg.ECS)
	if r.ChunksIn >= fullRechunk {
		t.Error("bimodal re-chunked everything; it must be selective")
	}
}

func TestSubChunkShape(t *testing.T) {
	cfg := DefaultSubChunkConfig()
	cfg.ECS = 512
	cfg.SD = 4
	cfg.BloomBytes = 1 << 16
	base := randBytes(30, 300_000)
	files := map[string][]byte{"a": base, "b": append([]byte(nil), base...)}
	d, _ := NewSubChunk(cfg)
	feed(t, d, files, []string{"a", "b"})
	checkRestoreAll(t, "subchunk", d, files)
	r := d.Report()
	// One hook per stored file (Table I: hooks = F), many containers (one
	// per stored big chunk).
	if r.InodesHook != r.Files {
		t.Errorf("hooks = %d, files = %d: SubChunk allocates one hook per manifest", r.InodesHook, r.Files)
	}
	if r.InodesData <= r.Files {
		t.Errorf("containers = %d: SubChunk must create one container per big chunk", r.InodesData)
	}
	if r.BigChunkQueries == 0 {
		t.Error("subchunk must query big chunks")
	}
	// The duplicate file must be found at big-chunk granularity.
	if r.DupBytes < int64(len(base))*9/10 {
		t.Errorf("dup bytes = %d of %d: duplicate file not eliminated", r.DupBytes, len(base))
	}
}

func TestSparseShape(t *testing.T) {
	cfg := DefaultSparseConfig()
	cfg.ECS = 512
	cfg.SD = 4
	cfg.SegmentFactor = 5
	base := randBytes(40, 400_000)
	files := map[string][]byte{"a": base, "b": append([]byte(nil), base...)}
	d, _ := NewSparse(cfg)
	feed(t, d, files, []string{"a", "b"})
	checkRestoreAll(t, "sparse", d, files)
	r := d.Report()
	if d.SparseIndexBytes() == 0 {
		t.Error("sparse index is empty after ingesting data")
	}
	if r.RAMBytes < d.SparseIndexBytes() {
		t.Error("RAM accounting must include the sparse index")
	}
	// Manifests are per segment: more than one per file for this size.
	segs := r.InputBytes / (int64(cfg.ECS) * int64(cfg.SD) * int64(cfg.SegmentFactor))
	if r.InodesManifest < segs/2 {
		t.Errorf("manifests = %d, expected about one per segment (~%d)", r.InodesManifest, segs)
	}
	// Sparse manifests record duplicate chunks too: manifest bytes exceed
	// what non-dup entries alone would need.
	if r.ManifestBytes <= r.NonDupChunks*36 {
		t.Errorf("manifest bytes = %d, want > 36·N = %d (dup hashes re-recorded)", r.ManifestBytes, r.NonDupChunks*36)
	}
	// Segment-level dedup must find the duplicate file.
	if r.DupBytes < int64(len(base))*8/10 {
		t.Errorf("dup bytes = %d of %d", r.DupBytes, len(base))
	}
}

func TestSubChunkMissesWithoutLocality(t *testing.T) {
	// SubChunk finds small-chunk duplicates only via cached manifests. A
	// duplicate region embedded in otherwise-new data, far from any
	// manifest hit, is found by CDC but may be missed by SubChunk — the
	// recall gap the paper describes. Verify CDC recall >= SubChunk recall.
	shared := randBytes(50, 60_000)
	mk := func(seed int64) []byte {
		out := append([]byte(nil), randBytes(seed, 100_000)...)
		out = append(out, shared...)
		out = append(out, randBytes(seed+1000, 100_000)...)
		return out
	}
	files := map[string][]byte{"a": mk(51), "b": mk(53)}
	order := []string{"a", "b"}

	ccfg := DefaultCDCConfig()
	ccfg.ECS = 512
	ccfg.BloomBytes = 1 << 16
	cdc, _ := NewCDC(ccfg)
	feed(t, cdc, files, order)

	scfg := DefaultSubChunkConfig()
	scfg.ECS = 512
	scfg.SD = 4
	scfg.BloomBytes = 1 << 16
	sub, _ := NewSubChunk(scfg)
	feed(t, sub, files, order)
	checkRestoreAll(t, "subchunk", sub, files)

	if cdc.Report().DupBytes < sub.Report().DupBytes {
		t.Errorf("CDC found %d dup bytes, SubChunk %d: full index must have at least locality's recall",
			cdc.Report().DupBytes, sub.Report().DupBytes)
	}
}

func TestBaselineValidation(t *testing.T) {
	if _, err := NewCDC(CDCConfig{}); err == nil {
		t.Error("zero CDC config accepted")
	}
	if _, err := NewBimodal(BimodalConfig{ECS: 512, SD: 1}); err == nil {
		t.Error("bimodal SD=1 accepted")
	}
	if _, err := NewSubChunk(SubChunkConfig{ECS: 512, SD: 0}); err == nil {
		t.Error("subchunk SD=0 accepted")
	}
	if _, err := NewSparse(SparseConfig{ECS: 512, SD: 4}); err == nil {
		t.Error("sparse with zero factors accepted")
	}
}

func TestRestoreAfterFinishDoesNotPerturbNothing(t *testing.T) {
	// Snapshot counters, restore, verify Report uses the snapshot pattern
	// correctly (callers snapshot before restoring; the disk counters do
	// move, which is expected and documented).
	files := map[string][]byte{"a": randBytes(60, 100_000)}
	d, _ := NewCDC(func() CDCConfig { c := DefaultCDCConfig(); c.ECS = 512; c.BloomBytes = 1 << 16; return c }())
	feed(t, d, files, []string{"a"})
	before := d.Report()
	var buf bytes.Buffer
	if err := d.Restore("a", &buf); err != nil {
		t.Fatal(err)
	}
	if before.Disk.Accesses() > d.Disk().Counters().Accesses() {
		t.Error("counters moved backwards")
	}
	if before.StoredDataBytes != d.Report().StoredDataBytes {
		t.Error("restore changed stored data accounting")
	}
}
