package baseline

import (
	"fmt"
	"io"

	"mhdedup/internal/bloom"
	"mhdedup/internal/chunker"
	"mhdedup/internal/hashutil"
	"mhdedup/internal/metrics"
	"mhdedup/internal/rabin"
	"mhdedup/internal/simdisk"
	"mhdedup/internal/store"
)

// SubChunkConfig parameterizes the SubChunk baseline.
type SubChunkConfig struct {
	ECS            int
	SD             int
	BloomBytes     int
	BloomHashes    int
	UseBloom       bool
	CacheManifests int
	Poly           rabin.Poly
	// RecipeTrees stores file recipes as deduplicated recipe trees.
	RecipeTrees bool
}

// DefaultSubChunkConfig returns a usable default.
func DefaultSubChunkConfig() SubChunkConfig {
	return SubChunkConfig{
		ECS:            4096,
		SD:             64,
		BloomBytes:     1 << 20,
		BloomHashes:    5,
		UseBloom:       true,
		CacheManifests: 64,
	}
}

// Validate reports whether the configuration is usable.
func (c SubChunkConfig) Validate() error {
	if c.ECS <= 0 || c.SD < 2 {
		return fmt.Errorf("baseline: subchunk needs ECS > 0 and SD >= 2")
	}
	if c.UseBloom && (c.BloomBytes <= 0 || c.BloomHashes <= 0 || c.BloomHashes > 32) {
		return fmt.Errorf("baseline: invalid bloom parameters")
	}
	if c.CacheManifests <= 0 {
		return fmt.Errorf("baseline: CacheManifests must be positive")
	}
	return nil
}

// bigRecipe records how a previously seen big chunk deduplicated: the
// manifest describing it and the refs reconstructing its bytes. It is the
// in-RAM big-chunk index of this implementation (charged to RAMBytes); the
// original anchor-driven system holds the equivalent state in its anchor
// database. One entry per distinct big chunk.
type bigRecipe struct {
	manifest hashutil.Sum
	refs     []store.FileRef
}

// SubChunk implements anchor-driven sub-chunk deduplication (Romanski et
// al.): the stream is cut into big chunks; duplicate big chunks are
// eliminated whole; every non-duplicate big chunk is re-chunked into small
// chunks that deduplicate individually against recently loaded manifests,
// with the surviving small chunks coalesced into one container DiskChunk
// per big chunk. Small-chunk duplicates are only found through manifest
// locality — when no mapping is hit, duplicates inside big chunks are
// missed, which is the recall gap the paper contrasts with MHD's match
// extension.
type SubChunk struct {
	cfg    SubChunkConfig
	disk   *simdisk.Disk
	st     *store.Store
	filter *bloom.Filter
	mc     *manifestCache
	bigIdx map[hashutil.Sum]bigRecipe
	stats  metrics.Stats
	dt     dupTracker
	peak   int64
}

// NewSubChunk returns a SubChunk deduplicator over a fresh simulated disk.
func NewSubChunk(cfg SubChunkConfig) (*SubChunk, error) {
	return NewSubChunkOnDisk(cfg, simdisk.New())
}

// NewSubChunkOnDisk returns a SubChunk deduplicator over the given disk.
func NewSubChunkOnDisk(cfg SubChunkConfig, disk *simdisk.Disk) (*SubChunk, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &SubChunk{
		cfg:    cfg,
		disk:   disk,
		st:     store.New(disk, store.FormatMultiContainer),
		bigIdx: make(map[hashutil.Sum]bigRecipe),
	}
	d.st.SetRecipeConfig(store.RecipeConfig{Trees: cfg.RecipeTrees})
	if cfg.UseBloom {
		f, err := bloom.New(cfg.BloomBytes, cfg.BloomHashes)
		if err != nil {
			return nil, err
		}
		d.filter = f
	}
	mc, err := newManifestCache(d.st, cfg.CacheManifests)
	if err != nil {
		return nil, err
	}
	d.mc = mc
	return d, nil
}

// Disk exposes the simulated disk.
func (d *SubChunk) Disk() *simdisk.Disk { return d.disk }

// PutFile deduplicates one input file.
func (d *SubChunk) PutFile(name string, r io.Reader) error {
	big, err := chunker.NewCDC(r, chunker.Params{ECS: d.cfg.ECS * d.cfg.SD, Poly: d.cfg.Poly})
	if err != nil {
		return err
	}
	d.stats.FilesTotal++
	d.dt.reset()

	manifestName := d.st.NextName()
	manifest := store.NewManifest(manifestName, store.FormatMultiContainer)
	fm := &store.FileManifest{File: name}
	var fileHook hashutil.Sum
	stored := false

	for {
		c, err := big.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		d.stats.InputBytes += c.Size()
		d.stats.ChunkedBytes += c.Size()
		d.stats.HashedBytes += c.Size()
		bh := hashutil.SumBytes(c.Data)
		if fileHook.IsZero() {
			fileHook = bh
		}

		// Big-chunk duplicate query. The bloom filter gates the on-disk
		// hook probe (one hook per file: only first-big-chunk hashes hit);
		// the recipe index answers for all previously seen big chunks.
		d.stats.BigChunkQueries++
		probed := false
		if d.filter == nil || d.filter.Test(bh) {
			probed = d.st.HookExists(bh) // charged disk query
		}
		if rec, ok := d.bigIdx[bh]; ok {
			if probed {
				// Worst-case manifest load per duplicate slice (§IV): pull
				// the manifest the recipe points to for locality.
				if _, err := d.mc.load(rec.manifest); err != nil {
					return err
				}
			}
			for _, ref := range rec.refs {
				if err := fm.Append(ref); err != nil {
					return err
				}
			}
			d.stats.ChunksIn++
			d.stats.DupChunks++
			d.stats.DupBytes += c.Size()
			if d.dt.note(true) {
				d.stats.DupSlices++
			}
			continue
		}

		// Non-duplicate big chunk: re-chunk into small chunks, deduplicate
		// each against manifest locality only, coalesce survivors into one
		// container DiskChunk.
		smalls, err := chunker.Split(c.Data, chunker.Params{ECS: d.cfg.ECS, Poly: d.cfg.Poly})
		if err != nil {
			return err
		}
		container := d.st.NextName()
		var data []byte
		var recipe []store.FileRef
		appendRef := func(ref store.FileRef) error {
			if err := fm.Append(ref); err != nil {
				return err
			}
			recipe = append(recipe, ref)
			return nil
		}
		for _, sc := range smalls {
			d.stats.ChunksIn++
			d.stats.HashedBytes += sc.Size()
			sh := hashutil.SumBytes(sc.Data)
			if m, idx, ok := d.mc.lookup(sh); ok {
				e := m.Entries[idx]
				if err := appendRef(store.FileRef{Container: m.ContainerOf(e), Start: e.Start, Size: e.Size}); err != nil {
					return err
				}
				d.stats.DupChunks++
				d.stats.DupBytes += sc.Size()
				if d.dt.note(true) {
					d.stats.DupSlices++
				}
				continue
			}
			start := int64(len(data))
			data = append(data, sc.Data...)
			manifest.Append(store.Entry{
				Hash:      sh,
				Container: container,
				Start:     start,
				Size:      sc.Size(),
				Kind:      store.KindPlain,
			})
			if err := appendRef(store.FileRef{Container: container, Start: start, Size: sc.Size()}); err != nil {
				return err
			}
			d.stats.NonDupChunks++
			d.dt.note(false)
		}
		if len(data) > 0 {
			if err := d.st.WriteDiskChunk(container, data); err != nil {
				return err
			}
			d.stats.StoredDataBytes += int64(len(data))
			stored = true
		}
		d.bigIdx[bh] = bigRecipe{manifest: manifestName, refs: recipe}
		if d.filter != nil {
			d.filter.Add(bh)
		}
	}

	if stored {
		if err := d.st.CreateManifest(manifest); err != nil {
			return err
		}
		// One hook per manifest (Table I: hooks = F), keyed by the file's
		// first big-chunk hash.
		if !fileHook.IsZero() && !d.st.HookKnown(fileHook) {
			if err := d.st.CreateHook(fileHook, manifestName); err != nil {
				return err
			}
		}
		d.stats.Files++
		// Manifests enter the cache only via load-on-hit, mirroring each
		// original system's locality path (no free self-insertion).
		d.trackRAM()
	}
	return d.st.WriteFileManifest(fm)
}

func (d *SubChunk) trackRAM() {
	cur := d.mc.bytesResident()
	if d.filter != nil {
		cur += d.filter.SizeBytes()
	}
	// Recipe index: hash key + manifest name + refs.
	for _, rec := range d.bigIdx {
		cur += 2*hashutil.Size + int64(len(rec.refs))*store.FileRefBytes + 16
	}
	if cur > d.peak {
		d.peak = cur
	}
}

// Finish flushes the manifest cache.
func (d *SubChunk) Finish() error {
	d.trackRAM()
	d.stats.RAMBytes = d.peak
	return d.mc.flush()
}

// Report returns statistics plus disk accounting.
func (d *SubChunk) Report() metrics.Report {
	s := d.stats
	s.ManifestLoads = d.mc.loads
	if s.RAMBytes == 0 {
		s.RAMBytes = d.peak
	}
	return metrics.BuildReport(s, d.disk)
}

// Restore rebuilds an ingested file.
func (d *SubChunk) Restore(name string, w io.Writer) error {
	return d.st.RestoreFile(name, w)
}
