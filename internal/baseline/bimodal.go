package baseline

import (
	"fmt"
	"io"

	"mhdedup/internal/bloom"
	"mhdedup/internal/chunker"
	"mhdedup/internal/hashutil"
	"mhdedup/internal/metrics"
	"mhdedup/internal/rabin"
	"mhdedup/internal/simdisk"
	"mhdedup/internal/store"
)

// BimodalConfig parameterizes the Bimodal baseline. Expected big-chunk size
// is ECS·SD, matching the paper's granularity alignment across algorithms.
type BimodalConfig struct {
	ECS            int
	SD             int
	BloomBytes     int
	BloomHashes    int
	UseBloom       bool
	CacheManifests int
	Poly           rabin.Poly
	// RecipeTrees stores file recipes as deduplicated recipe trees.
	RecipeTrees bool
}

// DefaultBimodalConfig returns a usable default.
func DefaultBimodalConfig() BimodalConfig {
	return BimodalConfig{
		ECS:            4096,
		SD:             64,
		BloomBytes:     1 << 20,
		BloomHashes:    5,
		UseBloom:       true,
		CacheManifests: 64,
	}
}

// Validate reports whether the configuration is usable.
func (c BimodalConfig) Validate() error {
	if c.ECS <= 0 || c.SD < 2 {
		return fmt.Errorf("baseline: bimodal needs ECS > 0 and SD >= 2")
	}
	if c.UseBloom && (c.BloomBytes <= 0 || c.BloomHashes <= 0 || c.BloomHashes > 32) {
		return fmt.Errorf("baseline: invalid bloom parameters")
	}
	if c.CacheManifests <= 0 {
		return fmt.Errorf("baseline: CacheManifests must be positive")
	}
	return nil
}

// Bimodal implements bimodal content-defined chunking (Kruus et al.): the
// stream is first cut into big chunks (ECS·SD expected) for duplicate
// detection; non-duplicate big chunks adjacent to duplicate ones — the
// transition points — are re-chunked at small (ECS) granularity and
// deduplicated again. Every stored chunk, big or small, gets a manifest
// entry and its own hook, which is what makes Bimodal's metadata balloon
// near transition points (Table I's 2L(SD−1) terms).
type Bimodal struct {
	cfg    BimodalConfig
	disk   *simdisk.Disk
	st     *store.Store
	filter *bloom.Filter
	mc     *manifestCache
	stats  metrics.Stats
	dt     dupTracker
	peak   int64
}

// NewBimodal returns a Bimodal deduplicator over a fresh simulated disk.
func NewBimodal(cfg BimodalConfig) (*Bimodal, error) {
	return NewBimodalOnDisk(cfg, simdisk.New())
}

// NewBimodalOnDisk returns a Bimodal deduplicator over the given disk.
func NewBimodalOnDisk(cfg BimodalConfig, disk *simdisk.Disk) (*Bimodal, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Bimodal{cfg: cfg, disk: disk, st: store.New(disk, store.FormatBasic)}
	d.st.SetRecipeConfig(store.RecipeConfig{Trees: cfg.RecipeTrees})
	if cfg.UseBloom {
		f, err := bloom.New(cfg.BloomBytes, cfg.BloomHashes)
		if err != nil {
			return nil, err
		}
		d.filter = f
	}
	mc, err := newManifestCache(d.st, cfg.CacheManifests)
	if err != nil {
		return nil, err
	}
	d.mc = mc
	return d, nil
}

// Disk exposes the simulated disk.
func (d *Bimodal) Disk() *simdisk.Disk { return d.disk }

// bigChunk is one classified big chunk of the current file.
type bigChunk struct {
	data []byte
	hash hashutil.Sum
	// dup location, valid when dup is true.
	dup       bool
	container hashutil.Sum
	start     int64
}

// PutFile deduplicates one input file: big-chunk pass first, then selective
// re-chunking at transition points.
func (d *Bimodal) PutFile(name string, r io.Reader) error {
	big, err := chunker.NewCDC(r, chunker.Params{ECS: d.cfg.ECS * d.cfg.SD, Poly: d.cfg.Poly})
	if err != nil {
		return err
	}
	d.stats.FilesTotal++
	d.dt.reset()

	// Pass 1: read and classify every big chunk (one duplicate query each —
	// Table II's "Big Chunk Query Times").
	var chunks []bigChunk
	for {
		c, err := big.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		d.stats.InputBytes += c.Size()
		d.stats.ChunkedBytes += c.Size()
		d.stats.HashedBytes += c.Size()
		bc := bigChunk{data: c.Data, hash: hashutil.SumBytes(c.Data)}
		d.stats.BigChunkQueries++
		if m, idx, ok := d.lookup(bc.hash); ok {
			e := m.Entries[idx]
			bc.dup = true
			bc.container = m.ContainerOf(e)
			bc.start = e.Start
		}
		chunks = append(chunks, bc)
	}

	// Pass 2: store, re-chunking non-duplicate big chunks at transition
	// points.
	chunkName := d.st.NextName()
	manifest := store.NewManifest(chunkName, store.FormatBasic)
	var data []byte
	var hooks []hashutil.Sum
	fm := &store.FileManifest{File: name}

	appendStored := func(chunkData []byte, h hashutil.Sum) error {
		start := int64(len(data))
		data = append(data, chunkData...)
		manifest.Append(store.Entry{Hash: h, Start: start, Size: int64(len(chunkData)), Kind: store.KindHook})
		hooks = append(hooks, h)
		if err := fm.Append(store.FileRef{Container: chunkName, Start: start, Size: int64(len(chunkData))}); err != nil {
			return err
		}
		d.stats.NonDupChunks++
		d.dt.note(false)
		return nil
	}
	markDup := func(size int64, container hashutil.Sum, start int64) error {
		if err := fm.Append(store.FileRef{Container: container, Start: start, Size: size}); err != nil {
			return err
		}
		d.stats.DupChunks++
		d.stats.DupBytes += size
		if d.dt.note(true) {
			d.stats.DupSlices++
		}
		return nil
	}

	for i, bc := range chunks {
		if bc.dup {
			d.stats.ChunksIn++
			if err := markDup(int64(len(bc.data)), bc.container, bc.start); err != nil {
				return err
			}
			continue
		}
		transition := (i > 0 && chunks[i-1].dup) || (i+1 < len(chunks) && chunks[i+1].dup)
		if !transition {
			d.stats.ChunksIn++
			if err := appendStored(bc.data, bc.hash); err != nil {
				return err
			}
			continue
		}
		// Transition point: re-chunk at small granularity and deduplicate
		// the small chunks individually.
		smalls, err := chunker.Split(bc.data, chunker.Params{ECS: d.cfg.ECS, Poly: d.cfg.Poly})
		if err != nil {
			return err
		}
		for _, sc := range smalls {
			d.stats.ChunksIn++
			d.stats.HashedBytes += sc.Size()
			h := hashutil.SumBytes(sc.Data)
			if m, idx, ok := d.lookup(h); ok {
				e := m.Entries[idx]
				if err := markDup(sc.Size(), m.ContainerOf(e), e.Start); err != nil {
					return err
				}
				continue
			}
			if err := appendStored(sc.Data, h); err != nil {
				return err
			}
		}
	}

	if len(data) > 0 {
		if err := d.st.WriteDiskChunk(chunkName, data); err != nil {
			return err
		}
		if err := d.st.CreateManifest(manifest); err != nil {
			return err
		}
		for _, h := range hooks {
			if d.st.HookKnown(h) {
				continue
			}
			if err := d.st.CreateHook(h, chunkName); err != nil {
				return err
			}
			if d.filter != nil {
				d.filter.Add(h)
			}
		}
		d.stats.Files++
		d.stats.StoredDataBytes += int64(len(data))
		// Manifests enter the cache only via load-on-hit, mirroring each
		// original system's locality path (no free self-insertion).
		d.trackRAM()
	}
	return d.st.WriteFileManifest(fm)
}

// lookup is the shared cache → bloom → disk-hook duplicate query, used for
// both big and small hashes (both are hooked when stored).
func (d *Bimodal) lookup(h hashutil.Sum) (*store.Manifest, int, bool) {
	if m, idx, ok := d.mc.lookup(h); ok {
		return m, idx, true
	}
	if d.filter != nil && !d.filter.Test(h) {
		return nil, 0, false
	}
	if !d.st.HookExists(h) {
		return nil, 0, false
	}
	targets, err := d.st.ReadHook(h)
	if err != nil || len(targets) == 0 {
		return nil, 0, false
	}
	m, err := d.mc.load(targets[0])
	if err != nil {
		return nil, 0, false
	}
	idx, ok := m.Lookup(h)
	if !ok {
		return nil, 0, false
	}
	return m, idx, true
}

func (d *Bimodal) trackRAM() {
	cur := d.mc.bytesResident()
	if d.filter != nil {
		cur += d.filter.SizeBytes()
	}
	if cur > d.peak {
		d.peak = cur
	}
}

// Finish flushes the manifest cache.
func (d *Bimodal) Finish() error {
	d.trackRAM()
	d.stats.RAMBytes = d.peak
	return d.mc.flush()
}

// Report returns statistics plus disk accounting.
func (d *Bimodal) Report() metrics.Report {
	s := d.stats
	s.ManifestLoads = d.mc.loads
	if s.RAMBytes == 0 {
		s.RAMBytes = d.peak
	}
	return metrics.BuildReport(s, d.disk)
}

// Restore rebuilds an ingested file.
func (d *Bimodal) Restore(name string, w io.Writer) error {
	return d.st.RestoreFile(name, w)
}
