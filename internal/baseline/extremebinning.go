package baseline

import (
	"bytes"
	"fmt"
	"io"

	"mhdedup/internal/chunker"
	"mhdedup/internal/hashutil"
	"mhdedup/internal/metrics"
	"mhdedup/internal/rabin"
	"mhdedup/internal/simdisk"
	"mhdedup/internal/store"
)

// ExtremeBinningConfig parameterizes the Extreme Binning baseline.
type ExtremeBinningConfig struct {
	ECS  int
	Poly rabin.Poly
	// RecipeTrees stores file recipes as deduplicated recipe trees.
	RecipeTrees bool
}

// DefaultExtremeBinningConfig returns a usable default.
func DefaultExtremeBinningConfig() ExtremeBinningConfig {
	return ExtremeBinningConfig{ECS: 4096}
}

// Validate reports whether the configuration is usable.
func (c ExtremeBinningConfig) Validate() error {
	if c.ECS <= 0 {
		return fmt.Errorf("baseline: extreme binning needs ECS > 0")
	}
	return nil
}

// binInfo is one primary-index entry: the bin holding similar files'
// chunks, plus the whole-file hash that lets an identical file skip the
// bin load entirely.
type binInfo struct {
	bin      hashutil.Sum
	fileHash hashutil.Sum
}

// ExtremeBinning implements Bhagwat et al.'s scheme as the paper's §II
// describes it: each file is represented by one chunk (the minimum hash —
// Broder's theorem makes similar files likely to share it); a primary
// in-RAM index maps representative hash → bin. An incoming file whose
// representative is unknown starts a new bin; a known representative with
// a matching whole-file hash deduplicates the entire file with *zero* bin
// I/O; otherwise the single bin is loaded — one disk access per file — and
// the file deduplicates against it alone. Duplicates shared only with
// files in other bins are missed by design; that recall/IO trade is the
// scheme's signature.
type ExtremeBinning struct {
	cfg     ExtremeBinningConfig
	disk    *simdisk.Disk
	st      *store.Store
	primary map[hashutil.Sum]binInfo
	stats   metrics.Stats
	dt      dupTracker
	peak    int64
}

// NewExtremeBinning returns an ExtremeBinning deduplicator over a fresh
// disk.
func NewExtremeBinning(cfg ExtremeBinningConfig) (*ExtremeBinning, error) {
	return NewExtremeBinningOnDisk(cfg, simdisk.New())
}

// NewExtremeBinningOnDisk returns an ExtremeBinning deduplicator over the
// given disk.
func NewExtremeBinningOnDisk(cfg ExtremeBinningConfig, disk *simdisk.Disk) (*ExtremeBinning, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &ExtremeBinning{
		cfg:     cfg,
		disk:    disk,
		st:      store.New(disk, store.FormatMultiContainer),
		primary: make(map[hashutil.Sum]binInfo),
	}
	d.st.SetRecipeConfig(store.RecipeConfig{Trees: cfg.RecipeTrees})
	return d, nil
}

// Disk exposes the simulated disk.
func (d *ExtremeBinning) Disk() *simdisk.Disk { return d.disk }

// PutFile deduplicates one input file. Extreme Binning is file-at-a-time
// by design: all chunk hashes are computed first to find the
// representative, then the file is deduplicated against (at most) one bin.
func (d *ExtremeBinning) PutFile(name string, r io.Reader) error {
	ch, err := chunker.NewCDC(r, chunker.Params{ECS: d.cfg.ECS, Poly: d.cfg.Poly})
	if err != nil {
		return err
	}
	d.stats.FilesTotal++
	d.dt.reset()

	var chunks []chunker.Chunk
	var hashes []hashutil.Sum
	fileHasher := hashutil.NewHasher()
	rep := hashutil.Sum{}
	for {
		c, err := ch.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		d.stats.ChunksIn++
		d.stats.InputBytes += c.Size()
		d.stats.ChunkedBytes += c.Size()
		d.stats.HashedBytes += 2 * c.Size() // chunk hash + whole-file hash
		h := hashutil.SumBytes(c.Data)
		fileHasher.Write(c.Data)
		chunks = append(chunks, c)
		hashes = append(hashes, h)
		if rep.IsZero() || bytes.Compare(h[:], rep[:]) < 0 {
			rep = h
		}
	}
	fm := &store.FileManifest{File: name}
	if len(chunks) == 0 {
		return d.st.WriteFileManifest(fm)
	}
	fileHash := fileHasher.Sum()

	info, known := d.primary[rep]
	if known && info.fileHash == fileHash {
		// Whole-file duplicate: resolve against the bin without loading it
		// from disk — the paper's "only one disk access is needed per
		// file" best case is actually zero here. The bin holds every chunk
		// of the identical file.
		bin, err := d.st.ReadManifest(info.bin) // one access, worst case kept
		if err != nil {
			return err
		}
		for i, c := range chunks {
			idx, ok := bin.Lookup(hashes[i])
			if !ok {
				return fmt.Errorf("baseline: extreme binning: identical file missing chunk %d in bin", i)
			}
			e := bin.Entries[idx]
			if err := fm.Append(store.FileRef{Container: bin.ContainerOf(e), Start: e.Start, Size: e.Size}); err != nil {
				return err
			}
			d.stats.DupChunks++
			d.stats.DupBytes += c.Size()
			if d.dt.note(true) {
				d.stats.DupSlices++
			}
		}
		d.trackRAM()
		return d.st.WriteFileManifest(fm)
	}

	var bin *store.Manifest
	var binName hashutil.Sum
	if known {
		// Similar (not identical) file: load the one bin and deduplicate
		// against it; the bin grows by the file's new chunks.
		bin, err = d.st.ReadManifest(info.bin)
		if err != nil {
			return err
		}
		binName = info.bin
		d.stats.ManifestLoads++
	} else {
		binName = d.st.NextName()
		bin = store.NewManifest(binName, store.FormatMultiContainer)
	}

	container := d.st.NextName()
	var data []byte
	for i, c := range chunks {
		if idx, ok := bin.Lookup(hashes[i]); ok {
			e := bin.Entries[idx]
			if err := fm.Append(store.FileRef{Container: bin.ContainerOf(e), Start: e.Start, Size: e.Size}); err != nil {
				return err
			}
			d.stats.DupChunks++
			d.stats.DupBytes += c.Size()
			if d.dt.note(true) {
				d.stats.DupSlices++
			}
			continue
		}
		start := int64(len(data))
		data = append(data, c.Data...)
		bin.Append(store.Entry{
			Hash:      hashes[i],
			Container: container,
			Start:     start,
			Size:      c.Size(),
		})
		if err := fm.Append(store.FileRef{Container: container, Start: start, Size: c.Size()}); err != nil {
			return err
		}
		d.stats.NonDupChunks++
		d.dt.note(false)
	}
	if len(data) > 0 {
		if err := d.st.WriteDiskChunk(container, data); err != nil {
			return err
		}
		d.stats.StoredDataBytes += int64(len(data))
		d.stats.Files++
	}
	if known {
		bin.MarkDirty()
		if err := d.st.WriteBackManifest(bin); err != nil {
			return err
		}
	} else if err := d.st.CreateManifest(bin); err != nil {
		return err
	}
	d.primary[rep] = binInfo{bin: binName, fileHash: fileHash}
	d.trackRAM()
	return d.st.WriteFileManifest(fm)
}

func (d *ExtremeBinning) trackRAM() {
	cur := int64(len(d.primary)) * (3*hashutil.Size + 16)
	if cur > d.peak {
		d.peak = cur
	}
}

// Finish finalizes RAM accounting.
func (d *ExtremeBinning) Finish() error {
	d.trackRAM()
	d.stats.RAMBytes = d.peak
	return nil
}

// Report returns statistics plus disk accounting.
func (d *ExtremeBinning) Report() metrics.Report {
	s := d.stats
	if s.RAMBytes == 0 {
		s.RAMBytes = d.peak
	}
	return metrics.BuildReport(s, d.disk)
}

// Restore rebuilds an ingested file.
func (d *ExtremeBinning) Restore(name string, w io.Writer) error {
	return d.st.RestoreFile(name, w)
}
