package baseline

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"mhdedup/internal/chunker"
	"mhdedup/internal/hashutil"
	"mhdedup/internal/metrics"
	"mhdedup/internal/rabin"
	"mhdedup/internal/simdisk"
	"mhdedup/internal/store"
)

// SparseConfig parameterizes the Sparse Indexing baseline, following the
// paper's experimental setup: hooks sampled at rate 1/SD from the input
// chunks, segments of ECS·SD·SegmentFactor bytes, at most MaxChampions
// champion manifests per segment and at most MaxManifestsPerHook manifests
// per sparse-index entry (LRU).
type SparseConfig struct {
	ECS                 int
	SD                  int
	SegmentFactor       int
	MaxChampions        int
	MaxManifestsPerHook int
	CacheManifests      int
	Poly                rabin.Poly
	// RecipeTrees stores file recipes as deduplicated recipe trees.
	RecipeTrees bool
}

// DefaultSparseConfig returns the paper's setup (segment = ECS·SD·5, 10
// champions, 5 manifests per hook).
func DefaultSparseConfig() SparseConfig {
	return SparseConfig{
		ECS:                 4096,
		SD:                  64,
		SegmentFactor:       5,
		MaxChampions:        10,
		MaxManifestsPerHook: 5,
		CacheManifests:      64,
	}
}

// Validate reports whether the configuration is usable.
func (c SparseConfig) Validate() error {
	if c.ECS <= 0 || c.SD < 2 {
		return fmt.Errorf("baseline: sparse indexing needs ECS > 0 and SD >= 2")
	}
	if c.SegmentFactor <= 0 || c.MaxChampions <= 0 || c.MaxManifestsPerHook <= 0 {
		return fmt.Errorf("baseline: sparse indexing factors must be positive")
	}
	if c.CacheManifests <= 0 {
		return fmt.Errorf("baseline: CacheManifests must be positive")
	}
	return nil
}

// Sparse implements Sparse Indexing (Lillibridge et al.): the stream is
// divided into segments; a sparse in-RAM index maps sampled hook hashes to
// the manifests of segments that contained them; each incoming segment is
// deduplicated only against its champion manifests — the few existing
// segments sharing the most hooks. No full chunk index exists, on disk or
// in RAM; the sparse index *is* the index, which is why its RAM use
// (Table III) and its per-manifest hash re-recording (Fig 7(b)) are the
// quantities the paper charts.
type Sparse struct {
	cfg  SparseConfig
	disk *simdisk.Disk
	st   *store.Store
	mc   *manifestCache
	// index is the sparse index: sampled hook hash → up to
	// MaxManifestsPerHook manifest names, most recent last.
	index map[hashutil.Sum][]hashutil.Sum

	stats metrics.Stats
	dt    dupTracker
	peak  int64

	// Per-file segment assembly state.
	seg      []chunker.Chunk
	segBytes int64
	fm       *store.FileManifest
	stored   bool
}

// NewSparse returns a Sparse deduplicator over a fresh simulated disk.
func NewSparse(cfg SparseConfig) (*Sparse, error) {
	return NewSparseOnDisk(cfg, simdisk.New())
}

// NewSparseOnDisk returns a Sparse deduplicator over the given disk.
func NewSparseOnDisk(cfg SparseConfig, disk *simdisk.Disk) (*Sparse, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Sparse{
		cfg:   cfg,
		disk:  disk,
		st:    store.New(disk, store.FormatMultiContainer),
		index: make(map[hashutil.Sum][]hashutil.Sum),
	}
	d.st.SetRecipeConfig(store.RecipeConfig{Trees: cfg.RecipeTrees})
	mc, err := newManifestCache(d.st, cfg.CacheManifests)
	if err != nil {
		return nil, err
	}
	d.mc = mc
	return d, nil
}

// Disk exposes the simulated disk.
func (d *Sparse) Disk() *simdisk.Disk { return d.disk }

// isHook applies the content-based sampling: a chunk hash is a hook when
// its leading 64 bits are divisible by SD.
func (d *Sparse) isHook(h hashutil.Sum) bool {
	return binary.BigEndian.Uint64(h[:8])%uint64(d.cfg.SD) == 0
}

// segmentTarget is the segment size in bytes.
func (d *Sparse) segmentTarget() int64 {
	return int64(d.cfg.ECS) * int64(d.cfg.SD) * int64(d.cfg.SegmentFactor)
}

// PutFile deduplicates one input file segment by segment. Segments do not
// span files (files are the paper's stream boundaries for restore).
func (d *Sparse) PutFile(name string, r io.Reader) error {
	ch, err := chunker.NewCDC(r, chunker.Params{ECS: d.cfg.ECS, Poly: d.cfg.Poly})
	if err != nil {
		return err
	}
	d.stats.FilesTotal++
	d.dt.reset()
	d.fm = &store.FileManifest{File: name}
	d.stored = false
	for {
		c, err := ch.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		d.stats.InputBytes += c.Size()
		d.stats.ChunkedBytes += c.Size()
		d.stats.HashedBytes += c.Size()
		d.stats.ChunksIn++
		d.seg = append(d.seg, c)
		d.segBytes += c.Size()
		if d.segBytes >= d.segmentTarget() {
			if err := d.flushSegment(); err != nil {
				return err
			}
		}
	}
	if err := d.flushSegment(); err != nil {
		return err
	}
	if d.stored {
		d.stats.Files++
	}
	fm := d.fm
	d.fm = nil
	return d.st.WriteFileManifest(fm)
}

// flushSegment deduplicates the assembled segment against its champions
// and writes the segment's container and manifest.
func (d *Sparse) flushSegment() error {
	if len(d.seg) == 0 {
		return nil
	}
	seg := d.seg
	d.seg = nil
	d.segBytes = 0

	// Hash every chunk; collect the segment's hooks.
	hashes := make([]hashutil.Sum, len(seg))
	var hooks []hashutil.Sum
	for i, c := range seg {
		hashes[i] = hashutil.SumBytes(c.Data)
		if d.isHook(hashes[i]) {
			hooks = append(hooks, hashes[i])
		}
	}

	// Vote for candidate manifests and load the champions.
	votes := make(map[hashutil.Sum]int)
	for _, h := range hooks {
		for _, mName := range d.index[h] {
			votes[mName]++
		}
	}
	type cand struct {
		name  hashutil.Sum
		votes int
	}
	cands := make([]cand, 0, len(votes))
	for name, v := range votes {
		cands = append(cands, cand{name, v})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].votes != cands[j].votes {
			return cands[i].votes > cands[j].votes
		}
		return cands[i].name.Hex() < cands[j].name.Hex() // deterministic tie-break
	})
	if len(cands) > d.cfg.MaxChampions {
		cands = cands[:d.cfg.MaxChampions]
	}
	champions := make([]*store.Manifest, 0, len(cands))
	for _, c := range cands {
		m, err := d.mc.load(c.name)
		if err != nil {
			return err
		}
		champions = append(champions, m)
	}

	// Deduplicate the segment against its champions (and only them — the
	// flat cache index may hold other manifests, but sparse indexing's
	// recall is defined by the champion set).
	container := d.st.NextName()
	manifest := store.NewManifest(container, store.FormatMultiContainer)
	var data []byte
	for i, c := range seg {
		h := hashes[i]
		var hitEntry *store.Entry
		var hitManifest *store.Manifest
		for _, m := range champions {
			if idx, ok := m.Lookup(h); ok {
				hitEntry = &m.Entries[idx]
				hitManifest = m
				break
			}
		}
		// A chunk may also repeat within the current segment.
		if hitEntry == nil {
			if idx, ok := manifest.Lookup(h); ok {
				hitEntry = &manifest.Entries[idx]
				hitManifest = manifest
			}
		}
		if hitEntry != nil {
			ref := store.FileRef{
				Container: hitManifest.ContainerOf(*hitEntry),
				Start:     hitEntry.Start,
				Size:      hitEntry.Size,
			}
			if err := d.fm.Append(ref); err != nil {
				return err
			}
			// The manifest re-records the duplicate chunk's hash with its
			// foreign location — the locality-preserving, hash-repeating
			// behavior the paper contrasts with MHD.
			manifest.Append(store.Entry{
				Hash:      h,
				Container: ref.Container,
				Start:     ref.Start,
				Size:      ref.Size,
				Kind:      store.KindPlain,
			})
			d.stats.DupChunks++
			d.stats.DupBytes += c.Size()
			if d.dt.note(true) {
				d.stats.DupSlices++
			}
			continue
		}
		start := int64(len(data))
		data = append(data, c.Data...)
		manifest.Append(store.Entry{
			Hash:      h,
			Container: container,
			Start:     start,
			Size:      c.Size(),
			Kind:      store.KindPlain,
		})
		if err := d.fm.Append(store.FileRef{Container: container, Start: start, Size: c.Size()}); err != nil {
			return err
		}
		d.stats.NonDupChunks++
		d.dt.note(false)
	}

	if len(data) > 0 {
		if err := d.st.WriteDiskChunk(container, data); err != nil {
			return err
		}
		d.stats.StoredDataBytes += int64(len(data))
		d.stored = true
	}
	if err := d.st.CreateManifest(manifest); err != nil {
		return err
	}
	// Manifests enter the cache only via load-on-hit, mirroring each
	// original system's locality path (no free self-insertion).

	// Register the segment's hooks: in the sparse index (RAM) and as
	// persisted hook objects (durability; these writes are the extra hook
	// I/O §IV attributes to sparse indexing).
	for _, h := range hooks {
		targets := d.index[h]
		already := false
		for _, t := range targets {
			if t == container {
				already = true
				break
			}
		}
		if !already {
			targets = append(targets, container)
			if len(targets) > d.cfg.MaxManifestsPerHook {
				targets = targets[len(targets)-d.cfg.MaxManifestsPerHook:]
			}
			d.index[h] = targets
		}
		if err := d.st.AddHookTarget(h, container, d.cfg.MaxManifestsPerHook); err != nil {
			return err
		}
	}
	d.trackRAM()
	return nil
}

// SparseIndexBytes returns the current RAM footprint of the sparse index —
// the Table III quantity: 20 bytes per key plus 20 per manifest pointer
// plus map overhead.
func (d *Sparse) SparseIndexBytes() int64 {
	var n int64
	for _, targets := range d.index {
		n += hashutil.Size + int64(len(targets))*hashutil.Size + 16
	}
	return n
}

func (d *Sparse) trackRAM() {
	cur := d.mc.bytesResident() + d.SparseIndexBytes()
	if cur > d.peak {
		d.peak = cur
	}
}

// Finish flushes the manifest cache.
func (d *Sparse) Finish() error {
	d.trackRAM()
	d.stats.RAMBytes = d.peak
	return d.mc.flush()
}

// Report returns statistics plus disk accounting.
func (d *Sparse) Report() metrics.Report {
	s := d.stats
	s.ManifestLoads = d.mc.loads
	if s.RAMBytes == 0 {
		s.RAMBytes = d.peak
	}
	return metrics.BuildReport(s, d.disk)
}

// Restore rebuilds an ingested file.
func (d *Sparse) Restore(name string, w io.Writer) error {
	return d.st.RestoreFile(name, w)
}
