package baseline

import (
	"bytes"
	"fmt"
	"testing"

	"mhdedup/internal/algo"
)

var (
	_ algo.Deduplicator = (*Fingerdiff)(nil)
	_ algo.Deduplicator = (*ExtremeBinning)(nil)
)

func TestFingerdiffRoundTripAndShape(t *testing.T) {
	base := randBytes(301, 300_000)
	edited := append([]byte(nil), base...)
	copy(edited[150_000:], randBytes(302, 7_000))
	files := map[string][]byte{
		"a": base,
		"b": append([]byte(nil), base...),
		"c": edited,
	}
	cfg := DefaultFingerdiffConfig()
	cfg.ECS = 512
	cfg.MaxCoalesce = 8
	d, err := NewFingerdiff(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, d, files, []string{"a", "b", "c"})
	checkRestoreAll(t, "fingerdiff", d, files)
	r := d.Report()
	checkBaselineInvariants(t, "fingerdiff", r)

	// Full-index recall: the exact duplicate and the unchanged parts of c
	// must deduplicate completely.
	if r.DupBytes < int64(len(base))*18/10 {
		t.Errorf("dup bytes = %d, want nearly 2x base: full index should find everything", r.DupBytes)
	}
	// Tiny disk metadata (one entry per coalesced run, no hooks)...
	if r.InodesHook != 0 {
		t.Errorf("fingerdiff created %d hooks; it indexes in RAM", r.InodesHook)
	}
	if r.ManifestBytes >= r.NonDupChunks*36 {
		t.Errorf("manifest bytes %d not below per-chunk cost %d: coalescing missing",
			r.ManifestBytes, r.NonDupChunks*36)
	}
	// ...paid for with a RAM database proportional to all chunks.
	if r.RAMBytes < r.NonDupChunks*36 {
		t.Errorf("RAM %d below expected full-index footprint", r.RAMBytes)
	}
}

func TestFingerdiffCoalesceBound(t *testing.T) {
	cfg := DefaultFingerdiffConfig()
	cfg.ECS = 512
	cfg.MaxCoalesce = 4
	d, _ := NewFingerdiff(cfg)
	content := randBytes(310, 200_000)
	feed(t, d, map[string][]byte{"u": content}, []string{"u"})
	r := d.Report()
	// Unique data: entries = ceil(chunks / MaxCoalesce) approximately.
	maxEntries := r.NonDupChunks/4 + 2
	if got := r.ManifestBytes / 36; got > maxEntries {
		t.Errorf("manifest entries %d exceed coalesce bound ~%d", got, maxEntries)
	}
}

func TestExtremeBinningIdenticalFile(t *testing.T) {
	base := randBytes(320, 250_000)
	files := map[string][]byte{"a": base, "b": append([]byte(nil), base...)}
	cfg := DefaultExtremeBinningConfig()
	cfg.ECS = 512
	d, err := NewExtremeBinning(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, d, files, []string{"a", "b"})
	checkRestoreAll(t, "eb", d, files)
	r := d.Report()
	checkBaselineInvariants(t, "eb", r)
	if r.DupBytes != int64(len(base)) {
		t.Errorf("identical file: dup bytes = %d, want %d", r.DupBytes, len(base))
	}
	if r.InodesManifest != 1 {
		t.Errorf("bins = %d, want 1 (same representative chunk)", r.InodesManifest)
	}
}

func TestExtremeBinningSimilarFile(t *testing.T) {
	base := randBytes(330, 250_000)
	edited := append([]byte(nil), base...)
	copy(edited[120_000:], randBytes(331, 5_000))
	files := map[string][]byte{"a": base, "b": edited}
	cfg := DefaultExtremeBinningConfig()
	cfg.ECS = 512
	d, _ := NewExtremeBinning(cfg)
	feed(t, d, files, []string{"a", "b"})
	checkRestoreAll(t, "eb", d, files)
	r := d.Report()
	// Similar files land in the same bin with high probability (the edit
	// leaves the minimum-hash representative intact unless it happened to
	// live in the edited 2% of the file); the unchanged bytes deduplicate.
	if r.DupBytes < int64(len(base))*8/10 {
		t.Logf("note: representative chunk was edited; bin missed (dup=%d)", r.DupBytes)
	}
	if r.ManifestLoads > 1 {
		t.Errorf("manifest loads = %d: extreme binning loads at most one bin per file", r.ManifestLoads)
	}
}

func TestExtremeBinningManyGenerations(t *testing.T) {
	cfg := DefaultExtremeBinningConfig()
	cfg.ECS = 512
	d, _ := NewExtremeBinning(cfg)
	base := randBytes(340, 200_000)
	files := map[string][]byte{}
	var order []string
	cur := base
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("g%d", i)
		files[name] = cur
		order = append(order, name)
		next := append([]byte(nil), cur...)
		copy(next[30_000*(i+1):], randBytes(int64(400+i), 3_000))
		cur = next
	}
	feed(t, d, files, order)
	checkRestoreAll(t, "eb", d, files)
	r := d.Report()
	if r.StoredDataBytes > r.InputBytes/2 {
		t.Errorf("stored %d of %d: generational dedup failed", r.StoredDataBytes, r.InputBytes)
	}
	// One bin lookup path per file: manifest loads bounded by file count.
	if r.ManifestLoads > r.FilesTotal {
		t.Errorf("manifest loads %d exceed one per file (%d)", r.ManifestLoads, r.FilesTotal)
	}
}

func TestRelatedWorkValidation(t *testing.T) {
	if _, err := NewFingerdiff(FingerdiffConfig{}); err == nil {
		t.Error("zero fingerdiff config accepted")
	}
	if _, err := NewFingerdiff(FingerdiffConfig{ECS: 512, MaxCoalesce: 0}); err == nil {
		t.Error("zero MaxCoalesce accepted")
	}
	if _, err := NewExtremeBinning(ExtremeBinningConfig{}); err == nil {
		t.Error("zero extreme binning config accepted")
	}
}

func TestRelatedWorkEmptyFiles(t *testing.T) {
	fd, _ := NewFingerdiff(func() FingerdiffConfig { c := DefaultFingerdiffConfig(); c.ECS = 512; return c }())
	eb, _ := NewExtremeBinning(func() ExtremeBinningConfig { c := DefaultExtremeBinningConfig(); c.ECS = 512; return c }())
	for name, d := range map[string]algo.Deduplicator{"fingerdiff": fd, "eb": eb} {
		if err := d.PutFile("empty", bytes.NewReader(nil)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := d.Finish(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var out bytes.Buffer
		if err := d.Restore("empty", &out); err != nil || out.Len() != 0 {
			t.Errorf("%s: empty file restore failed", name)
		}
	}
}
