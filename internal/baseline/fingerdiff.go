package baseline

import (
	"fmt"
	"io"

	"mhdedup/internal/chunker"
	"mhdedup/internal/hashutil"
	"mhdedup/internal/metrics"
	"mhdedup/internal/rabin"
	"mhdedup/internal/simdisk"
	"mhdedup/internal/store"
)

// FingerdiffConfig parameterizes the Fingerdiff baseline.
type FingerdiffConfig struct {
	ECS int
	// MaxCoalesce bounds how many contiguous non-duplicate chunks merge
	// into one stored big chunk (the paper aligns this with SD).
	MaxCoalesce int
	Poly        rabin.Poly
	// RecipeTrees stores file recipes as deduplicated recipe trees.
	RecipeTrees bool
}

// DefaultFingerdiffConfig returns a usable default.
func DefaultFingerdiffConfig() FingerdiffConfig {
	return FingerdiffConfig{ECS: 4096, MaxCoalesce: 64}
}

// Validate reports whether the configuration is usable.
func (c FingerdiffConfig) Validate() error {
	if c.ECS <= 0 {
		return fmt.Errorf("baseline: fingerdiff needs ECS > 0")
	}
	if c.MaxCoalesce < 1 {
		return fmt.Errorf("baseline: MaxCoalesce must be positive")
	}
	return nil
}

// Fingerdiff implements Bobbarjung et al.'s scheme as the paper's §I
// characterizes it: contiguous non-duplicate chunks coalesce (up to a
// maximum) into one big chunk on disk, so the on-disk metadata is tiny —
// one manifest entry per coalesced run — while duplicate detection runs at
// small-chunk granularity against a database indexing *every* chunk. The
// database lives in RAM, which is exactly the criticism the paper levels
// ("the assumption that the database can fit into the RAM might not be
// realistic"); this implementation charges it to RAMBytes so the Summary
// table shows the trade directly.
type Fingerdiff struct {
	cfg  FingerdiffConfig
	disk *simdisk.Disk
	st   *store.Store
	// db is the full per-chunk index: chunk hash → location.
	db    map[hashutil.Sum]store.FileRef
	stats metrics.Stats
	dt    dupTracker
	peak  int64
}

// NewFingerdiff returns a Fingerdiff deduplicator over a fresh disk.
func NewFingerdiff(cfg FingerdiffConfig) (*Fingerdiff, error) {
	return NewFingerdiffOnDisk(cfg, simdisk.New())
}

// NewFingerdiffOnDisk returns a Fingerdiff deduplicator over the given
// disk.
func NewFingerdiffOnDisk(cfg FingerdiffConfig, disk *simdisk.Disk) (*Fingerdiff, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Fingerdiff{
		cfg:  cfg,
		disk: disk,
		st:   store.New(disk, store.FormatBasic),
		db:   make(map[hashutil.Sum]store.FileRef),
	}
	d.st.SetRecipeConfig(store.RecipeConfig{Trees: cfg.RecipeTrees})
	return d, nil
}

// Disk exposes the simulated disk.
func (d *Fingerdiff) Disk() *simdisk.Disk { return d.disk }

// PutFile deduplicates one input file.
func (d *Fingerdiff) PutFile(name string, r io.Reader) error {
	ch, err := chunker.NewCDC(r, chunker.Params{ECS: d.cfg.ECS, Poly: d.cfg.Poly})
	if err != nil {
		return err
	}
	d.stats.FilesTotal++
	d.dt.reset()
	chunkName := d.st.NextName()
	manifest := store.NewManifest(chunkName, store.FormatBasic)
	var data []byte
	fm := &store.FileManifest{File: name}

	// run accumulates the current contiguous non-duplicate chunk run.
	var run []chunker.Chunk
	var runHashes []hashutil.Sum
	flushRun := func() error {
		if len(run) == 0 {
			return nil
		}
		start := int64(len(data))
		h := hashutil.NewHasher()
		for i, c := range run {
			// The database indexes every small chunk inside the big one.
			d.db[runHashes[i]] = store.FileRef{
				Container: chunkName,
				Start:     int64(len(data)),
				Size:      c.Size(),
			}
			data = append(data, c.Data...)
			h.Write(c.Data)
		}
		size := int64(len(data)) - start
		d.stats.HashedBytes += size
		manifest.Append(store.Entry{Hash: h.Sum(), Start: start, Size: size})
		if err := fm.Append(store.FileRef{Container: chunkName, Start: start, Size: size}); err != nil {
			return err
		}
		run, runHashes = run[:0], runHashes[:0]
		return nil
	}

	for {
		c, err := ch.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		d.stats.ChunksIn++
		d.stats.InputBytes += c.Size()
		d.stats.ChunkedBytes += c.Size()
		d.stats.HashedBytes += c.Size()
		h := hashutil.SumBytes(c.Data)
		if ref, ok := d.db[h]; ok {
			if err := flushRun(); err != nil {
				return err
			}
			if err := fm.Append(ref); err != nil {
				return err
			}
			d.stats.DupChunks++
			d.stats.DupBytes += c.Size()
			if d.dt.note(true) {
				d.stats.DupSlices++
			}
			continue
		}
		run = append(run, c)
		runHashes = append(runHashes, h)
		d.stats.NonDupChunks++
		d.dt.note(false)
		if len(run) >= d.cfg.MaxCoalesce {
			if err := flushRun(); err != nil {
				return err
			}
		}
	}
	if err := flushRun(); err != nil {
		return err
	}

	if len(data) > 0 {
		if err := d.st.WriteDiskChunk(chunkName, data); err != nil {
			return err
		}
		if err := d.st.CreateManifest(manifest); err != nil {
			return err
		}
		d.stats.Files++
		d.stats.StoredDataBytes += int64(len(data))
		d.trackRAM()
	}
	return d.st.WriteFileManifest(fm)
}

func (d *Fingerdiff) trackRAM() {
	// The full chunk database: hash key + FileRef per entry.
	cur := int64(len(d.db)) * (hashutil.Size + store.FileRefBytes + 16)
	if cur > d.peak {
		d.peak = cur
	}
}

// Finish finalizes RAM accounting (Fingerdiff keeps no dirty disk state).
func (d *Fingerdiff) Finish() error {
	d.trackRAM()
	d.stats.RAMBytes = d.peak
	return nil
}

// Report returns statistics plus disk accounting.
func (d *Fingerdiff) Report() metrics.Report {
	s := d.stats
	if s.RAMBytes == 0 {
		s.RAMBytes = d.peak
	}
	return metrics.BuildReport(s, d.disk)
}

// Restore rebuilds an ingested file.
func (d *Fingerdiff) Restore(name string, w io.Writer) error {
	return d.st.RestoreFile(name, w)
}
