package baseline

import (
	"fmt"
	"io"

	"mhdedup/internal/bloom"
	"mhdedup/internal/chunker"
	"mhdedup/internal/hashutil"
	"mhdedup/internal/metrics"
	"mhdedup/internal/rabin"
	"mhdedup/internal/simdisk"
	"mhdedup/internal/store"
)

// CDCConfig parameterizes the plain CDC baseline.
type CDCConfig struct {
	// ECS is the expected chunk size.
	ECS int
	// BloomBytes/BloomHashes size the bloom filter; UseBloom disables it
	// for the Table II no-bloom ablation.
	BloomBytes  int
	BloomHashes int
	UseBloom    bool
	// CacheManifests is the locality cache capacity.
	CacheManifests int
	// Poly optionally overrides the Rabin polynomial.
	Poly rabin.Poly
	// RecipeTrees stores file recipes as deduplicated recipe trees instead
	// of flat manifests (see store.RecipeConfig).
	RecipeTrees bool
}

// DefaultCDCConfig returns a usable default.
func DefaultCDCConfig() CDCConfig {
	return CDCConfig{
		ECS:            4096,
		BloomBytes:     1 << 20,
		BloomHashes:    5,
		UseBloom:       true,
		CacheManifests: 64,
	}
}

// Validate reports whether the configuration is usable.
func (c CDCConfig) Validate() error {
	if c.ECS <= 0 {
		return fmt.Errorf("baseline: ECS must be positive, got %d", c.ECS)
	}
	if c.UseBloom && (c.BloomBytes <= 0 || c.BloomHashes <= 0 || c.BloomHashes > 32) {
		return fmt.Errorf("baseline: invalid bloom parameters")
	}
	if c.CacheManifests <= 0 {
		return fmt.Errorf("baseline: CacheManifests must be positive")
	}
	return nil
}

// CDC is the plain content-defined-chunking deduplicator of the paper's
// "CDC" column: LBFS-style small chunks, a full per-chunk on-disk index
// (one hook per non-duplicate chunk), bloom filter and manifest locality
// cache as in Data Domain. It finds the most duplicates per byte scanned
// but pays metadata linear in N — the behavior Figs 7 and 8 chart.
type CDC struct {
	cfg    CDCConfig
	disk   *simdisk.Disk
	st     *store.Store
	filter *bloom.Filter
	mc     *manifestCache
	stats  metrics.Stats
	dt     dupTracker
	peak   int64
}

// NewCDC returns a CDC deduplicator over a fresh simulated disk.
func NewCDC(cfg CDCConfig) (*CDC, error) {
	return NewCDCOnDisk(cfg, simdisk.New())
}

// NewCDCOnDisk returns a CDC deduplicator over the given disk.
func NewCDCOnDisk(cfg CDCConfig, disk *simdisk.Disk) (*CDC, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &CDC{cfg: cfg, disk: disk, st: store.New(disk, store.FormatBasic)}
	d.st.SetRecipeConfig(store.RecipeConfig{Trees: cfg.RecipeTrees})
	if cfg.UseBloom {
		f, err := bloom.New(cfg.BloomBytes, cfg.BloomHashes)
		if err != nil {
			return nil, err
		}
		d.filter = f
	}
	mc, err := newManifestCache(d.st, cfg.CacheManifests)
	if err != nil {
		return nil, err
	}
	d.mc = mc
	return d, nil
}

// Disk exposes the simulated disk.
func (d *CDC) Disk() *simdisk.Disk { return d.disk }

// PutFile deduplicates one input file chunk by chunk.
func (d *CDC) PutFile(name string, r io.Reader) error {
	ch, err := chunker.NewCDC(r, chunker.Params{ECS: d.cfg.ECS, Poly: d.cfg.Poly})
	if err != nil {
		return err
	}
	d.stats.FilesTotal++
	d.dt.reset()
	chunkName := d.st.NextName()
	manifest := store.NewManifest(chunkName, store.FormatBasic)
	var data []byte
	var hooks []hashutil.Sum
	fm := &store.FileManifest{File: name}

	for {
		c, err := ch.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		d.stats.ChunksIn++
		d.stats.InputBytes += c.Size()
		d.stats.ChunkedBytes += c.Size()
		d.stats.HashedBytes += c.Size()
		h := hashutil.SumBytes(c.Data)

		if m, idx, ok := d.lookup(h); ok {
			e := m.Entries[idx]
			if err := fm.Append(store.FileRef{Container: m.ContainerOf(e), Start: e.Start, Size: e.Size}); err != nil {
				return err
			}
			d.stats.DupChunks++
			d.stats.DupBytes += c.Size()
			if d.dt.note(true) {
				d.stats.DupSlices++
			}
			continue
		}
		// Non-duplicate: append to this file's DiskChunk; every stored
		// chunk gets a manifest entry and its own hook (Table I: hooks=N).
		start := int64(len(data))
		data = append(data, c.Data...)
		manifest.Append(store.Entry{Hash: h, Start: start, Size: c.Size(), Kind: store.KindHook})
		hooks = append(hooks, h)
		if err := fm.Append(store.FileRef{Container: chunkName, Start: start, Size: c.Size()}); err != nil {
			return err
		}
		d.stats.NonDupChunks++
		d.dt.note(false)
	}

	if len(data) > 0 {
		if err := d.st.WriteDiskChunk(chunkName, data); err != nil {
			return err
		}
		if err := d.st.CreateManifest(manifest); err != nil {
			return err
		}
		for _, h := range hooks {
			if d.st.HookKnown(h) {
				continue
			}
			if err := d.st.CreateHook(h, chunkName); err != nil {
				return err
			}
			if d.filter != nil {
				d.filter.Add(h)
			}
		}
		d.stats.Files++
		d.stats.StoredDataBytes += int64(len(data))
		// Manifests enter the cache only via load-on-hit, mirroring each
		// original system's locality path (no free self-insertion).
		d.trackRAM()
	}
	return d.st.WriteFileManifest(fm)
}

// lookup runs the duplicate query: locality cache, then bloom filter, then
// the on-disk hook index.
func (d *CDC) lookup(h hashutil.Sum) (*store.Manifest, int, bool) {
	if m, idx, ok := d.mc.lookup(h); ok {
		return m, idx, true
	}
	if d.filter != nil && !d.filter.Test(h) {
		return nil, 0, false
	}
	if !d.st.HookExists(h) {
		return nil, 0, false
	}
	targets, err := d.st.ReadHook(h)
	if err != nil || len(targets) == 0 {
		return nil, 0, false
	}
	m, err := d.mc.load(targets[0])
	if err != nil {
		return nil, 0, false
	}
	idx, ok := m.Lookup(h)
	if !ok {
		return nil, 0, false
	}
	return m, idx, true
}

func (d *CDC) trackRAM() {
	cur := d.mc.bytesResident()
	if d.filter != nil {
		cur += d.filter.SizeBytes()
	}
	if cur > d.peak {
		d.peak = cur
	}
}

// Finish flushes the manifest cache.
func (d *CDC) Finish() error {
	d.trackRAM()
	d.stats.RAMBytes = d.peak
	return d.mc.flush()
}

// Report returns statistics plus disk accounting.
func (d *CDC) Report() metrics.Report {
	s := d.stats
	s.ManifestLoads = d.mc.loads
	if s.RAMBytes == 0 {
		s.RAMBytes = d.peak
	}
	return metrics.BuildReport(s, d.disk)
}

// Restore rebuilds an ingested file.
func (d *CDC) Restore(name string, w io.Writer) error {
	return d.st.RestoreFile(name, w)
}

// ResumeCDC returns a CDC deduplicator over an existing deduplicated disk:
// the bloom filter is rebuilt from the on-disk hook names (a mount-time
// directory scan) so new files deduplicate against everything already
// stored. Statistics start fresh for the session.
func ResumeCDC(cfg CDCConfig, disk *simdisk.Disk) (*CDC, error) {
	d, err := NewCDCOnDisk(cfg, disk)
	if err != nil {
		return nil, err
	}
	if d.filter != nil {
		for _, name := range disk.Names(simdisk.Hook) {
			h, err := hashutil.ParseHex(name)
			if err != nil {
				return nil, fmt.Errorf("baseline: resume: malformed hook name %q: %w", name, err)
			}
			d.filter.Add(h)
		}
	}
	return d, nil
}
