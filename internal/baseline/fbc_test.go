package baseline

import (
	"testing"

	"mhdedup/internal/algo"
)

var _ algo.Deduplicator = (*FBC)(nil)

func fbcConfig() FBCConfig {
	cfg := DefaultFBCConfig()
	cfg.ECS = 512
	cfg.SD = 4
	cfg.BloomBytes = 1 << 16
	return cfg
}

func TestFBCRoundTrip(t *testing.T) {
	base := randBytes(101, 300_000)
	edited := append([]byte(nil), base...)
	copy(edited[140_000:], randBytes(102, 8_000))
	files := map[string][]byte{
		"a": base,
		"b": append([]byte(nil), base...),
		"c": edited,
	}
	d, err := NewFBC(fbcConfig())
	if err != nil {
		t.Fatal(err)
	}
	feed(t, d, files, []string{"a", "b", "c"})
	checkRestoreAll(t, "fbc", d, files)
	r := d.Report()
	checkBaselineInvariants(t, "fbc", r)
	if r.DupBytes < int64(len(base)) {
		t.Errorf("dup bytes = %d; the exact duplicate alone is %d", r.DupBytes, len(base))
	}
}

func TestFBCRechunksOnlyFrequentContent(t *testing.T) {
	// One shared region recurs in several otherwise-unique files. After it
	// has been seen a couple of times, the sketch marks its small chunks
	// frequent and FBC re-chunks big chunks containing it — so the shared
	// region deduplicates even though the surrounding big chunks differ.
	shared := randBytes(110, 40_000)
	mk := func(seed int64) []byte {
		out := append([]byte(nil), randBytes(seed, 80_000)...)
		out = append(out, shared...)
		out = append(out, randBytes(seed+500, 80_000)...)
		return out
	}
	files := map[string][]byte{}
	var order []string
	for i := int64(0); i < 5; i++ {
		name := string(rune('a' + i))
		files[name] = mk(200 + i)
		order = append(order, name)
	}
	d, err := NewFBC(fbcConfig())
	if err != nil {
		t.Fatal(err)
	}
	feed(t, d, files, order)
	checkRestoreAll(t, "fbc", d, files)
	r := d.Report()
	// Later copies of the shared region must deduplicate at small-chunk
	// granularity: at least two recurrences' worth of bytes.
	if r.DupBytes < int64(len(shared))*2 {
		t.Errorf("dup bytes = %d, want >= %d: frequency-driven re-chunking failed",
			r.DupBytes, len(shared)*2)
	}
	// And re-chunking must have been selective: fewer small chunks than a
	// full re-chunk of everything would produce.
	full := r.InputBytes / int64(512)
	if r.ChunksIn >= full {
		t.Error("FBC re-chunked everything; it must be frequency-selective")
	}
}

func TestFBCCompletelyColdDataStaysCoarse(t *testing.T) {
	// All-unique input: nothing is frequent, so nothing is re-chunked —
	// chunk count stays at big-chunk granularity.
	d, err := NewFBC(fbcConfig())
	if err != nil {
		t.Fatal(err)
	}
	content := randBytes(120, 400_000)
	feed(t, d, map[string][]byte{"u": content}, []string{"u"})
	r := d.Report()
	bigExpected := r.InputBytes/int64(512*4) + 2
	if r.ChunksIn > bigExpected*2 {
		t.Errorf("cold data produced %d chunks, expected about %d big chunks", r.ChunksIn, bigExpected)
	}
}

func TestFBCValidation(t *testing.T) {
	cfg := fbcConfig()
	cfg.FreqThreshold = 0
	if _, err := NewFBC(cfg); err == nil {
		t.Error("zero threshold accepted")
	}
	cfg = fbcConfig()
	cfg.SketchWidth = 0
	if _, err := NewFBC(cfg); err == nil {
		t.Error("zero sketch width accepted")
	}
}
