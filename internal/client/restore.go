package client

import (
	"fmt"
	"io"

	"mhdedup/internal/hashutil"
	"mhdedup/internal/wire"
)

// RestoreResult summarizes one completed restore.
type RestoreResult struct {
	Bytes uint64       // bytes written to the destination
	Sum   hashutil.Sum // whole-file SHA-1, matched against the server's claim
}

// List returns the names of files restorable from the server, sorted.
func List(cfg Config) ([]string, error) {
	cn, err := restoreSession(&cfg)
	if err != nil {
		return nil, err
	}
	defer cn.close()
	if err := cn.write(wire.TypeListReq, nil); err != nil {
		return nil, err
	}
	f, err := cn.read()
	if err != nil {
		return nil, err
	}
	if f.Type == wire.TypeError {
		return nil, restoreError(f)
	}
	if f.Type != wire.TypeListResp {
		return nil, fmt.Errorf("client: expected ListResp, got %s", wire.TypeName(f.Type))
	}
	resp, err := wire.UnmarshalListResp(f.Payload)
	if err != nil {
		return nil, fmt.Errorf("client: bad ListResp: %w", err)
	}
	closeRestore(cn)
	return resp.Names, nil
}

// Restore streams one file from the server into w. With verify the
// server rebuilds it through the verifying store path (every chunk range
// re-hashed against its content address). The client independently
// checks the received stream against the server's declared size and
// SHA-1 regardless.
func Restore(cfg Config, name string, verify bool, w io.Writer) (RestoreResult, error) {
	cn, err := restoreSession(&cfg)
	if err != nil {
		return RestoreResult{}, err
	}
	defer cn.close()
	req := wire.RestoreReq{Name: name, Verify: verify}
	if err := cn.write(wire.TypeRestoreReq, req.Marshal()); err != nil {
		return RestoreResult{}, err
	}
	return receiveRestore(cn, name, w)
}

// RestoreRange streams length bytes of one file starting at offset into
// w; length < 0 means through EOF, and a range reaching past EOF is
// clamped by the server (the result reports what actually arrived). The
// received stream is checked against the server's declared size and SHA-1
// of the range exactly as in a whole-file restore.
func RestoreRange(cfg Config, name string, verify bool, offset, length int64, w io.Writer) (RestoreResult, error) {
	if offset < 0 {
		return RestoreResult{}, fmt.Errorf("client: restore of %q: negative offset %d", name, offset)
	}
	cn, err := restoreSession(&cfg)
	if err != nil {
		return RestoreResult{}, err
	}
	defer cn.close()
	req := wire.RestoreRange{Name: name, Verify: verify, Offset: uint64(offset), Length: wire.RestoreToEOF}
	if length >= 0 {
		req.Length = uint64(length)
	}
	if err := cn.write(wire.TypeRestoreRange, req.Marshal()); err != nil {
		return RestoreResult{}, err
	}
	return receiveRestore(cn, name, w)
}

// receiveRestore drains one RestoreData*/RestoreEnd reply stream into w,
// verifying the server's declared size and sum.
func receiveRestore(cn *conn, name string, w io.Writer) (RestoreResult, error) {
	hash := hashutil.NewHasher()
	var total uint64
	for {
		f, err := cn.read()
		if err != nil {
			return RestoreResult{}, err
		}
		switch f.Type {
		case wire.TypeRestoreData:
			rd, err := wire.UnmarshalRestoreData(f.Payload)
			if err != nil {
				return RestoreResult{}, fmt.Errorf("client: bad RestoreData: %w", err)
			}
			if _, err := w.Write(rd.Data); err != nil {
				return RestoreResult{}, fmt.Errorf("client: writing restore of %q: %w", name, err)
			}
			hash.Write(rd.Data)
			total += uint64(len(rd.Data))
		case wire.TypeRestoreEnd:
			end, err := wire.UnmarshalRestoreEnd(f.Payload)
			if err != nil {
				return RestoreResult{}, fmt.Errorf("client: bad RestoreEnd: %w", err)
			}
			sum := hash.Sum()
			if total != end.TotalBytes {
				return RestoreResult{}, fmt.Errorf("client: restore of %q: received %d bytes, server declared %d",
					name, total, end.TotalBytes)
			}
			if sum != end.Sum {
				return RestoreResult{}, fmt.Errorf("client: restore of %q: received stream does not hash to the server's sum", name)
			}
			closeRestore(cn)
			return RestoreResult{Bytes: total, Sum: sum}, nil
		case wire.TypeError:
			return RestoreResult{}, restoreError(f)
		default:
			return RestoreResult{}, fmt.Errorf("client: unexpected %s frame in restore stream", wire.TypeName(f.Type))
		}
	}
}

// restoreSession dials and completes a ModeRestore handshake.
func restoreSession(cfg *Config) (*conn, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	var stats Stats
	hello := wire.Hello{Mode: wire.ModeRestore, Tenant: cfg.Tenant, Secret: cfg.Secret}
	cn, _, err := dialAndHello(cfg, hello, &stats)
	return cn, err
}

// closeRestore performs the best-effort orderly Close exchange.
func closeRestore(cn *conn) {
	if cn.write(wire.TypeClose, nil) == nil {
		cn.read() // CloseOK, or whatever; the conn is closing either way
	}
}

// restoreError maps a server Error frame to a client error.
func restoreError(f wire.Frame) error {
	em, uerr := wire.UnmarshalError(f.Payload)
	if uerr != nil {
		return fmt.Errorf("client: bad Error frame: %w", uerr)
	}
	return fmt.Errorf("client: server error: %w", em)
}
