package client

import (
	"fmt"
	"io"
	"time"

	"mhdedup/internal/chunker"
	"mhdedup/internal/events"
	"mhdedup/internal/hashutil"
	"mhdedup/internal/wire"
)

// Ingestor is a sessioned backup upload: PutFile as many files as you
// like, then Close. Not safe for concurrent use — one Ingestor is one
// ordered command stream.
type Ingestor struct {
	cfg   Config
	cn    *conn
	token uint64
	win   int

	nextSeq uint64
	unacked []*command // commands sent, Ack not yet received (seq order)
	stats   Stats

	// recoverBudget bounds back-to-back reconnects with no forward
	// progress (an Ack) in between, so a persistently sick server cannot
	// spin the client forever.
	recoverBudget int

	closed bool
	broken error // permanent failure; every later call returns it
}

// command is one un-acked protocol command, retained for replay.
type command struct {
	seq     uint64
	typ     uint8
	payload []byte

	// Offer commands additionally keep the chunk bytes of the whole
	// batch: on replay the server recomputes the need-list from scratch
	// and may ask for any subset.
	chunks [][]byte

	// need is the server's answer for an Offer (indices into chunks);
	// needReady reports it arrived. Reset on replay.
	need      []uint32
	needReady bool
}

// Connect dials cfg.Addr, performs the ingest handshake and returns a
// ready Ingestor.
func Connect(cfg Config) (*Ingestor, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	ing := &Ingestor{cfg: cfg, recoverBudget: cfg.RetryAttempts}
	hello := wire.Hello{Mode: wire.ModeIngest, Options: cfg.Options,
		Tenant: cfg.Tenant, Secret: cfg.Secret}
	cn, ok, err := dialAndHello(&ing.cfg, hello, &ing.stats)
	if err != nil {
		return nil, err
	}
	ing.cn = cn
	ing.token = ok.SessionToken
	ing.win = int(ok.Window)
	if ing.win <= 0 {
		ing.win = 1
	}
	ing.cfg.Events.Info("client.session_open",
		events.F("session", ing.token), events.F("window", ing.win), events.F("max_payload", cn.max))
	return ing, nil
}

// Stats returns the wire accounting so far.
func (c *Ingestor) Stats() Stats { return c.stats }

// PutFile chunks r locally, negotiates by hash and uploads name. It
// returns once the server has acknowledged the complete, integrity-
// checked file. A transport failure mid-file is healed transparently by
// reconnecting and replaying un-acked commands.
func (c *Ingestor) PutFile(name string, r io.Reader) error {
	if c.broken != nil {
		return c.broken
	}
	if c.closed {
		return fmt.Errorf("client: PutFile %q after Close", name)
	}
	ch, err := newChunker(r, c.cfg.Options)
	if err != nil {
		return fmt.Errorf("client: chunker for %q: %w", name, err)
	}
	if err := c.issue(wire.TypeFileBegin,
		func(seq uint64) []byte { return wire.FileBegin{Seq: seq, Name: name}.Marshal() }, nil); err != nil {
		return c.fail(err)
	}

	fileHash := hashutil.NewHasher()
	var total uint64
	batch := make([]wire.OfferEntry, 0, c.cfg.BatchChunks)
	chunks := make([][]byte, 0, c.cfg.BatchChunks)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		entries := append([]wire.OfferEntry(nil), batch...)
		data := append([][]byte(nil), chunks...)
		err := c.issue(wire.TypeOffer,
			func(seq uint64) []byte { return wire.Offer{Seq: seq, Entries: entries}.Marshal() }, data)
		c.stats.ChunksOffered += int64(len(entries))
		batch, chunks = batch[:0], chunks[:0]
		return err
	}
	for {
		chunk, cerr := ch.Next()
		if cerr == io.EOF {
			break
		}
		if cerr != nil {
			// Local read failure: the session is still coherent, but the
			// half-sent file is not. Surface it; the caller decides.
			return c.fail(fmt.Errorf("client: reading %q: %w", name, cerr))
		}
		fileHash.Write(chunk.Data)
		total += uint64(chunk.Size())
		c.stats.InputBytes += chunk.Size()
		batch = append(batch, wire.OfferEntry{Hash: hashutil.SumBytes(chunk.Data), Size: uint32(len(chunk.Data))})
		chunks = append(chunks, chunk.Data)
		if len(batch) >= c.cfg.BatchChunks {
			if err := flush(); err != nil {
				return c.fail(err)
			}
		}
	}
	if err := flush(); err != nil {
		return c.fail(err)
	}
	sum := fileHash.Sum()
	if err := c.issue(wire.TypeFileEnd,
		func(seq uint64) []byte { return wire.FileEnd{Seq: seq, TotalBytes: total, Sum: sum}.Marshal() }, nil); err != nil {
		return c.fail(err)
	}
	// Drain every outstanding Ack: when issue returns the FileEnd may be
	// merely sent; waiting here pins "PutFile returned nil ⇒ the server
	// applied and integrity-checked the whole file".
	if err := c.drain(); err != nil {
		return c.fail(err)
	}
	c.stats.FilesSent++
	return nil
}

// Close drains outstanding acks, performs the orderly Close/CloseOK
// exchange and releases the connection.
func (c *Ingestor) Close() error {
	if c.broken != nil {
		c.cn.close()
		return c.broken
	}
	if c.closed {
		return nil
	}
	c.closed = true
	defer c.cn.close()
	if err := c.drain(); err != nil {
		return c.fail(err)
	}
	if err := c.cn.write(wire.TypeClose, nil); err != nil {
		return c.fail(err)
	}
	f, err := c.cn.read()
	if err != nil {
		return c.fail(err)
	}
	if f.Type == wire.TypeError {
		if em, uerr := wire.UnmarshalError(f.Payload); uerr == nil {
			return c.fail(fmt.Errorf("client: close refused: %w", em))
		}
	}
	if f.Type != wire.TypeCloseOK {
		return c.fail(fmt.Errorf("client: expected CloseOK, got %s", wire.TypeName(f.Type)))
	}
	return nil
}

// fail latches a permanent error (transport errors are healed inside
// issue/drain; whatever reaches here is final).
func (c *Ingestor) fail(err error) error {
	if err != nil && c.broken == nil {
		c.broken = err
	}
	return err
}

// issue assigns the next sequence number, enqueues and transmits one
// command, healing transport failures by reconnect-and-replay.
func (c *Ingestor) issue(typ uint8, marshal func(seq uint64) []byte, chunks [][]byte) error {
	// Window backpressure: never exceed the server's un-applied budget.
	for len(c.unacked) >= c.win {
		if err := c.pump(); err != nil {
			if !isTransport(err) {
				return err
			}
			if err := c.recover(); err != nil {
				return err
			}
		}
	}
	c.nextSeq++
	cmd := &command{seq: c.nextSeq, typ: typ, payload: marshal(c.nextSeq), chunks: chunks}
	c.unacked = append(c.unacked, cmd)
	if err := c.transmit(cmd); err != nil {
		if !isTransport(err) {
			return err
		}
		return c.recover() // replays cmd along with everything else un-acked
	}
	return nil
}

// transmit writes one command frame; for an Offer it then waits for the
// server's Need answer and ships the requested chunk bytes. The
// offer→need round-trip — the negotiation latency the hash protocol
// pays per batch — is recorded in the client.offer_rtt_ns histogram.
func (c *Ingestor) transmit(cmd *command) error {
	start := time.Now()
	if err := c.cn.write(cmd.typ, cmd.payload); err != nil {
		return err
	}
	if cmd.typ != wire.TypeOffer {
		return nil
	}
	for !cmd.needReady {
		if err := c.pump(); err != nil {
			return err
		}
	}
	d := hOfferRTT.ObserveSince(start)
	c.cfg.Events.SlowOp("offer_rtt", d,
		events.F("session", c.token), events.F("seq", cmd.seq),
		events.F("need", len(cmd.need)))
	return c.sendNeeded(cmd)
}

// sendNeeded streams the chunks the server asked for as ChunkData runs
// bounded by the frame payload cap.
func (c *Ingestor) sendNeeded(cmd *command) error {
	const perChunkOverhead = 4   // length prefix per chunk in ChunkData
	budget := int(c.cn.max) - 64 // header fields + margin
	start := 0
	for start < len(cmd.need) {
		run := make([][]byte, 0, len(cmd.need)-start)
		bytes := 0
		for _, idx := range cmd.need[start:] {
			data := cmd.chunks[idx]
			if len(run) > 0 && bytes+len(data)+perChunkOverhead > budget {
				break
			}
			run = append(run, data)
			bytes += len(data) + perChunkOverhead
		}
		cd := wire.ChunkData{Seq: cmd.seq, Start: uint32(start), Chunks: run}
		if err := c.cn.write(wire.TypeChunkData, cd.Marshal()); err != nil {
			return err
		}
		c.stats.ChunksSent += int64(len(run))
		for _, data := range run {
			c.stats.ChunkBytesSent += int64(len(data))
		}
		start += len(run)
	}
	return nil
}

// drain pumps until every command is acked, healing transport failures.
func (c *Ingestor) drain() error {
	for len(c.unacked) > 0 {
		if err := c.pump(); err != nil {
			if !isTransport(err) {
				return err
			}
			if err := c.recover(); err != nil {
				return err
			}
		}
	}
	return nil
}

// pump reads and dispatches exactly one server frame: Acks retire
// commands (in order), Needs complete pending Offers, Error frames map
// to transport (retryable) or permanent errors.
func (c *Ingestor) pump() error {
	f, err := c.cn.read()
	if err != nil {
		return err
	}
	switch f.Type {
	case wire.TypeAck:
		ack, err := wire.UnmarshalAck(f.Payload)
		if err != nil {
			return fmt.Errorf("client: bad Ack: %w", err)
		}
		if len(c.unacked) == 0 || c.unacked[0].seq != ack.Seq {
			return fmt.Errorf("client: unexpected Ack seq %d", ack.Seq)
		}
		c.unacked = c.unacked[1:]
		c.recoverBudget = c.cfg.RetryAttempts // forward progress resets the budget
		return nil
	case wire.TypeNeed:
		need, err := wire.UnmarshalNeed(f.Payload)
		if err != nil {
			return fmt.Errorf("client: bad Need: %w", err)
		}
		for _, cmd := range c.unacked {
			if cmd.seq == need.Seq && cmd.typ == wire.TypeOffer {
				cmd.need, cmd.needReady = need.Indices, true
				return nil
			}
		}
		return fmt.Errorf("client: Need for unknown offer seq %d", need.Seq)
	case wire.TypeError:
		em, uerr := wire.UnmarshalError(f.Payload)
		if uerr != nil {
			return fmt.Errorf("client: bad Error frame: %w", uerr)
		}
		if em.Retryable {
			if sh := shedError(&c.cfg, em); sh != nil {
				// Deliberate shed: surface it typed and permanent for this
				// session instead of replaying the refused command into the
				// same refusal. Nothing acked is at risk, and the shed file
				// was never partially applied (the server refuses at the
				// file boundary, before any of its commands apply).
				return sh
			}
			return transportf(em)
		}
		return fmt.Errorf("client: server error: %w", em)
	default:
		return fmt.Errorf("client: unexpected %s frame mid-session", wire.TypeName(f.Type))
	}
}

// recover reconnects with the resume token and replays every command the
// server has not applied, in order. Offers replay fully: the server
// recomputes the need-list (the wire cache may have changed) and the
// client answers it from the retained batch bytes.
func (c *Ingestor) recover() error {
	if c.recoverBudget <= 0 {
		return fmt.Errorf("client: giving up after %d reconnects without progress", c.cfg.RetryAttempts)
	}
	// Back off before re-dialing, growing with each fruitless attempt: an
	// overloaded server sheds with retryable frames precisely so clients
	// get out of its way — reconnecting immediately would replay the shed
	// command into the same refusal and burn the whole budget in
	// milliseconds. The first recovery is immediate (plain connection
	// blips should heal fast); only repeats without an Ack in between
	// pay the wait.
	if attempt := c.cfg.RetryAttempts - c.recoverBudget; attempt > 0 {
		delay := c.cfg.RetryDelay << uint(attempt-1)
		if max := 2 * time.Second; delay > max {
			delay = max
		}
		time.Sleep(delay)
	}
	c.recoverBudget--
	c.cn.close()
	hello := wire.Hello{Mode: wire.ModeIngest, ResumeToken: c.token,
		Tenant: c.cfg.Tenant, Secret: c.cfg.Secret}
	cn, ok, err := dialAndHello(&c.cfg, hello, &c.stats)
	if err != nil {
		return err
	}
	c.cn = cn
	c.win = int(ok.Window)
	if c.win <= 0 {
		c.win = 1
	}
	c.stats.Reconnects++
	cReconnects.Add(1)
	// Retire everything the server applied before we lost the link.
	for len(c.unacked) > 0 && c.unacked[0].seq <= ok.LastApplied {
		c.unacked = c.unacked[1:]
	}
	c.cfg.Events.Info("client.resume",
		events.F("session", c.token), events.F("applied", ok.LastApplied),
		events.F("replay", len(c.unacked)))
	for _, cmd := range c.unacked {
		cmd.need, cmd.needReady = nil, false
		if err := c.transmit(cmd); err != nil {
			if !isTransport(err) {
				return err
			}
			return c.recover() // budget-bounded
		}
	}
	return nil
}

// newChunker builds the chunker matching the negotiated engine options —
// the same cut points the server's engine will re-produce when it
// re-chunks the reassembled stream. The client always uses the
// block-processed fast path: it is bit-identical to the reference scan
// (pinned by the conformance harness), so it matches the server's cuts
// regardless of which implementation the server side selected.
func newChunker(r io.Reader, o wire.EngineOptions) (chunker.Chunker, error) {
	p := chunker.Params{ECS: int(o.ECS)}
	switch {
	case o.TTTD:
		return chunker.NewTTTD(r, p)
	case o.FastCDC:
		return chunker.NewGear(r, p)
	default:
		return chunker.NewCDC(r, p)
	}
}
