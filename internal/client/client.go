// Package client is the dedup-aware network client for dedupd. It chunks
// files locally with the same chunker configuration the server's engine
// uses (negotiated in the Hello handshake), offers chunk hashes in
// batches, and ships only the chunk bytes the server asks for — so a
// backup that is mostly duplicate of what the server has already seen
// moves almost no data.
//
// The ingest conversation is windowed and resumable: every command
// (FileBegin, Offer, FileEnd) carries a session-scoped sequence number,
// the client keeps each command until its Ack arrives, and on connection
// loss it reconnects with its resume token and replays everything the
// server has not yet applied. The server acks replayed, already-applied
// commands idempotently, so a retransmission is never double-ingested.
package client

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"

	"mhdedup/internal/events"
	"mhdedup/internal/metrics"
	"mhdedup/internal/wire"
)

// Wire-negotiation latency histograms and reconnect counter on the
// process-wide registry (values in nanoseconds).
var (
	// hOfferRTT is one offer→need round-trip: from the Offer frame write
	// to the server's Need answer being in hand — the negotiation cost
	// the hash-based protocol pays per batch.
	hOfferRTT = metrics.GetHistogram("client.offer_rtt_ns")
	// cReconnects counts successful resume reconnects.
	cReconnects = metrics.Counter("client.reconnects")
)

// Config parameterizes a Client. Addr is required; zero fields take the
// documented defaults.
type Config struct {
	// Addr is the dedupd address (host:port).
	Addr string

	// Options is the engine contract the client expects the server to
	// run. The server refuses mismatches at handshake (CodeHandshake), so
	// a client never silently backs up against a differently-configured
	// engine. Required for ingest; ignored for restore/list.
	Options wire.EngineOptions

	// Tenant scopes the session to one tenant namespace when talking to a
	// dedup-gw gateway (or a multi-tenant dedupd). Empty is the root
	// namespace.
	Tenant string
	// Secret authenticates Tenant against a gateway. Plain dedupd ignores
	// it.
	Secret string

	// SurfaceShed changes how quota/overload rejections (CodeOverloaded,
	// CodeQuota) surface: instead of being healed by the internal
	// reconnect loop — which is right for transient blips but turns a hard
	// quota stop into slow retry-until-budget-exhausted — they return a
	// typed *ShedError carrying the server's backoff hint, so the caller
	// can distinguish "shed, come back later" from "broken".
	SurfaceShed bool

	// BatchChunks is how many chunk hashes go into one Offer; default 64.
	BatchChunks int

	// Dial opens the transport. Default: net.Dial("tcp", addr) with a
	// 10s timeout. Tests substitute fault-injecting dialers.
	Dial func(addr string) (net.Conn, error)

	// RetryAttempts bounds reconnection attempts after a connection
	// failure (and retryable server errors such as Busy); default 5.
	RetryAttempts int

	// RetryDelay is the base backoff between attempts (doubling, with
	// jitter); default 50ms.
	RetryDelay time.Duration

	// Events receives structured progress and retry events; default
	// events.Nop() (discard).
	Events *events.Log
}

func (c *Config) fillDefaults() error {
	if c.Addr == "" {
		return errors.New("client: Addr required")
	}
	if c.BatchChunks <= 0 {
		c.BatchChunks = 64
	}
	if c.Dial == nil {
		c.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 10*time.Second)
		}
	}
	if c.RetryAttempts <= 0 {
		c.RetryAttempts = 5
	}
	if c.RetryDelay <= 0 {
		c.RetryDelay = 50 * time.Millisecond
	}
	if c.Events == nil {
		c.Events = events.Nop()
	}
	return nil
}

// Stats counts what a client moved over the wire — the numbers the
// bandwidth-elimination claim is checked against.
type Stats struct {
	FilesSent      int   `json:"files_sent"`
	InputBytes     int64 `json:"input_bytes"`      // raw bytes chunked locally
	ChunksOffered  int64 `json:"chunks_offered"`   // hashes sent in Offer batches
	ChunksSent     int64 `json:"chunks_sent"`      // chunks the server needed
	ChunkBytesSent int64 `json:"chunk_bytes_sent"` // payload bytes of those chunks
	WireBytesOut   int64 `json:"wire_bytes_out"`   // every frame byte written
	WireBytesIn    int64 `json:"wire_bytes_in"`    // every frame byte read
	Reconnects     int   `json:"reconnects"`       // successful session resumes
}

// ShedError is a quota or overload rejection surfaced to the caller
// (Config.SurfaceShed): the server deliberately refused the work and
// suggested when to come back. It is retryable by contract — nothing the
// session acknowledged is at risk, and the refused file was never
// partially applied — but the session itself is done; open a fresh one
// after backing off.
type ShedError struct {
	Code       uint16        // wire.CodeOverloaded or wire.CodeQuota
	Msg        string        // the server's human-readable reason
	RetryAfter time.Duration // server's backoff hint; 0 when it gave none
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("client: shed (code %d, retry after %v): %s", e.Code, e.RetryAfter, e.Msg)
}

// shedError converts a retryable Error frame into a *ShedError when it is
// a deliberate load/quota refusal and the config asks for it surfaced.
func shedError(cfg *Config, em wire.ErrorMsg) *ShedError {
	if !cfg.SurfaceShed {
		return nil
	}
	if em.Code != wire.CodeOverloaded && em.Code != wire.CodeQuota {
		return nil
	}
	return &ShedError{Code: em.Code, Msg: em.Msg,
		RetryAfter: time.Duration(em.RetryAfterMs) * time.Millisecond}
}

// errTransport marks a connection-level failure that reconnection can
// heal; anything else is permanent.
type errTransport struct{ err error }

func (e errTransport) Error() string { return "client: transport: " + e.err.Error() }
func (e errTransport) Unwrap() error { return e.err }

func transportf(err error) error { return errTransport{err} }

func isTransport(err error) bool {
	var t errTransport
	return errors.As(err, &t)
}

// conn is one live framed connection with byte accounting.
type conn struct {
	c     net.Conn
	stats *Stats
	max   uint32 // server's frame payload cap
}

func (cn *conn) write(t uint8, payload []byte) error {
	n, err := wire.WriteFrame(cn.c, t, payload)
	cn.stats.WireBytesOut += int64(n)
	if err != nil {
		return transportf(err)
	}
	return nil
}

func (cn *conn) read() (wire.Frame, error) {
	f, err := wire.ReadFrame(cn.c, cn.max)
	if err != nil {
		return f, transportf(err)
	}
	cn.stats.WireBytesIn += int64(wire.HeaderSize + len(f.Payload) + wire.TrailerSize)
	return f, nil
}

func (cn *conn) close() {
	if cn.c != nil {
		cn.c.Close()
	}
}

// dialAndHello opens a connection and performs the handshake, retrying
// with exponential backoff on dial failures and retryable server errors
// (Busy, idle-timeout notices). Returns the connection and the server's
// HelloOK.
func dialAndHello(cfg *Config, hello wire.Hello, stats *Stats) (*conn, wire.HelloOK, error) {
	var lastErr error
	delay := cfg.RetryDelay
	for attempt := 0; attempt < cfg.RetryAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(delay + time.Duration(rand.Int63n(int64(delay))))
			if delay < 2*time.Second {
				delay *= 2
			}
		}
		nc, err := cfg.Dial(cfg.Addr)
		if err != nil {
			lastErr = err
			cfg.Events.Warn("client.dial_retry",
				events.F("addr", cfg.Addr), events.F("attempt", attempt+1), events.F("err", err))
			continue
		}
		cn := &conn{c: nc, stats: stats, max: wire.DefaultMaxPayload}
		if err := cn.write(wire.TypeHello, hello.Marshal()); err != nil {
			cn.close()
			lastErr = err
			continue
		}
		f, err := cn.read()
		if err != nil {
			cn.close()
			lastErr = err
			continue
		}
		switch f.Type {
		case wire.TypeHelloOK:
			ok, err := wire.UnmarshalHelloOK(f.Payload)
			if err != nil {
				cn.close()
				return nil, wire.HelloOK{}, fmt.Errorf("client: bad HelloOK: %w", err)
			}
			if ok.MaxPayload > 0 {
				cn.max = ok.MaxPayload
			}
			return cn, ok, nil
		case wire.TypeError:
			em, uerr := wire.UnmarshalError(f.Payload)
			cn.close()
			if uerr != nil {
				return nil, wire.HelloOK{}, fmt.Errorf("client: bad Error frame: %w", uerr)
			}
			if em.Retryable {
				if sh := shedError(cfg, em); sh != nil {
					return nil, wire.HelloOK{}, sh
				}
				lastErr = em
				cfg.Events.Warn("client.refused_retry",
					events.F("attempt", attempt+1), events.F("err", em))
				continue
			}
			return nil, wire.HelloOK{}, fmt.Errorf("client: server refused session: %w", em)
		default:
			cn.close()
			return nil, wire.HelloOK{}, fmt.Errorf("client: expected HelloOK, got %s", wire.TypeName(f.Type))
		}
	}
	return nil, wire.HelloOK{}, fmt.Errorf("client: connect to %s failed after %d attempts: %w",
		cfg.Addr, cfg.RetryAttempts, lastErr)
}
