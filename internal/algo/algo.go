// Package algo defines the interface every deduplication algorithm in this
// repository implements — MHD and the four baselines alike — so the
// experiment harness, CLI and benchmarks can drive them uniformly.
package algo

import (
	"io"

	"mhdedup/internal/metrics"
	"mhdedup/internal/simdisk"
)

// Deduplicator is one deduplication engine over a simulated disk. Feed
// input files in backup-stream order with PutFile, call Finish once, then
// read metrics and restore files at will. Implementations are not safe for
// concurrent use.
type Deduplicator interface {
	// PutFile consumes one input file.
	PutFile(name string, r io.Reader) error
	// Finish flushes caches and write-back state; must be called once
	// after the last PutFile.
	Finish() error
	// Report returns the run's statistics combined with disk-side
	// accounting.
	Report() metrics.Report
	// Restore rebuilds an ingested file into w.
	Restore(name string, w io.Writer) error
	// Disk exposes the underlying simulated disk.
	Disk() *simdisk.Disk
}
