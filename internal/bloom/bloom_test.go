package bloom

import (
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"

	"mhdedup/internal/hashutil"
)

func sumOf(i uint64) hashutil.Sum {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], i)
	return hashutil.SumBytes(b[:])
}

func TestNoFalseNegatives(t *testing.T) {
	f, err := New(1<<16, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 10_000; i++ {
		f.Add(sumOf(i))
	}
	for i := uint64(0); i < 10_000; i++ {
		if !f.Test(sumOf(i)) {
			t.Fatalf("false negative for element %d", i)
		}
	}
}

func TestNoFalseNegativesProperty(t *testing.T) {
	f, err := New(1<<12, 4)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(data []byte) bool {
		h := hashutil.SumBytes(data)
		f.Add(h)
		return f.Test(h)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFalsePositiveRateNearPrediction(t *testing.T) {
	const n = 20_000
	f, err := NewWithEstimate(n, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < n; i++ {
		f.Add(sumOf(i))
	}
	fp := 0
	const trials = 50_000
	for i := uint64(n); i < n+trials; i++ {
		if f.Test(sumOf(i)) {
			fp++
		}
	}
	rate := float64(fp) / trials
	if rate > 0.03 {
		t.Errorf("measured FP rate %.4f, want near 0.01", rate)
	}
	if est := f.EstimatedFPRate(); math.Abs(est-0.01) > 0.01 {
		t.Errorf("estimated FP rate %.4f, want near 0.01", est)
	}
}

func TestEmptyFilterRejectsEverything(t *testing.T) {
	f, _ := New(1024, 5)
	for i := uint64(0); i < 1000; i++ {
		if f.Test(sumOf(i)) {
			t.Fatalf("empty filter claims membership for %d", i)
		}
	}
	if f.EstimatedFPRate() != 0 {
		t.Error("empty filter should estimate FP rate 0")
	}
}

func TestStatsAndCount(t *testing.T) {
	f, _ := New(1<<14, 5)
	for i := uint64(0); i < 100; i++ {
		f.Add(sumOf(i))
	}
	if f.Count() != 100 {
		t.Errorf("Count = %d, want 100", f.Count())
	}
	for i := uint64(0); i < 200; i++ {
		f.Test(sumOf(i))
	}
	tested, hits := f.Stats()
	if tested != 200 {
		t.Errorf("tested = %d, want 200", tested)
	}
	if hits < 100 {
		t.Errorf("hits = %d, want >= 100 (no false negatives)", hits)
	}
}

func TestReset(t *testing.T) {
	f, _ := New(4096, 3)
	f.Add(sumOf(1))
	f.Reset()
	if f.Test(sumOf(1)) {
		t.Error("Reset did not clear the filter")
	}
	if f.FillRatio() != 0 {
		t.Error("Reset left set bits")
	}
}

func TestFillRatioGrowsWithLoad(t *testing.T) {
	f, _ := New(4096, 5)
	prev := f.FillRatio()
	for i := uint64(0); i < 2000; i += 500 {
		for j := i; j < i+500; j++ {
			f.Add(sumOf(j))
		}
		cur := f.FillRatio()
		if cur <= prev {
			t.Fatalf("fill ratio did not grow: %.4f -> %.4f", prev, cur)
		}
		prev = cur
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(0, 5); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := New(1024, 0); err == nil {
		t.Error("zero k accepted")
	}
	if _, err := New(1024, 33); err == nil {
		t.Error("k > 32 accepted")
	}
	if _, err := NewWithEstimate(0, 0.01); err == nil {
		t.Error("n = 0 accepted")
	}
	if _, err := NewWithEstimate(100, 0); err == nil {
		t.Error("fp = 0 accepted")
	}
	if _, err := NewWithEstimate(100, 1); err == nil {
		t.Error("fp = 1 accepted")
	}
}

func TestSizeBytes(t *testing.T) {
	f, _ := New(100<<10, 5)
	if f.SizeBytes() < 100<<10 {
		t.Errorf("SizeBytes = %d, want >= %d", f.SizeBytes(), 100<<10)
	}
}

func BenchmarkAddTest(b *testing.B) {
	f, _ := New(1<<20, 5)
	for i := 0; i < b.N; i++ {
		h := sumOf(uint64(i))
		f.Add(h)
		f.Test(h)
	}
}
