// Package bloom implements the Bloom filter (Broder & Mitzenmacher, 2002)
// used by Data Domain and by the paper's BF-MHD, Bimodal and SubChunk
// configurations to avoid disk lookups for hashes that are certainly new.
//
// The filter uses double hashing: the k probe positions for a 20-byte
// content hash are derived from two 64-bit words of the hash itself
// (g_i = h1 + i·h2), which is as good as k independent hash functions for
// Bloom filters and costs nothing on top of the SHA-1 the deduplicator has
// already computed.
package bloom

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"

	"mhdedup/internal/hashutil"
)

// Filter is a Bloom filter over hashutil.Sum keys. The zero value is not
// usable; construct with New or NewWithEstimate.
//
// Filter is safe for concurrent use. Unlike the striped hash→location
// index, the filter cannot be sharded by low hash bits without changing its
// probe layout (each key's k probes land anywhere in the bit array, and
// re-deriving them per shard would alter the false-positive pattern and
// with it the disk-access counters the paper's tables reproduce). Instead
// every word access is a lock-free atomic: Test is k atomic loads, Add is
// up to k compare-and-swap loops. The bit positions are exactly those of
// the serial filter, so a single-session run remains bit-identical to the
// pre-concurrency engine.
type Filter struct {
	bits   []uint64
	nbits  uint64
	k      int
	adds   atomic.Uint64
	tested atomic.Uint64
	hits   atomic.Uint64
}

// New returns a filter with the given size in bytes and number of probe
// functions. The paper's experiments use a 100 MB filter with the usual
// k ≈ 5.
func New(sizeBytes int, k int) (*Filter, error) {
	if sizeBytes <= 0 {
		return nil, fmt.Errorf("bloom: size must be positive, got %d", sizeBytes)
	}
	if k <= 0 || k > 32 {
		return nil, fmt.Errorf("bloom: k must be in [1,32], got %d", k)
	}
	nbits := uint64(sizeBytes) * 8
	return &Filter{
		bits:  make([]uint64, (nbits+63)/64),
		nbits: nbits,
		k:     k,
	}, nil
}

// NewWithEstimate returns a filter sized for the expected number of elements
// n at the target false-positive rate fp, using the standard optimal
// m = −n·ln(fp)/ln(2)² and k = m/n·ln(2).
func NewWithEstimate(n uint64, fp float64) (*Filter, error) {
	if n == 0 {
		return nil, fmt.Errorf("bloom: expected element count must be positive")
	}
	if fp <= 0 || fp >= 1 {
		return nil, fmt.Errorf("bloom: false-positive rate must be in (0,1), got %g", fp)
	}
	ln2 := math.Ln2
	mBits := math.Ceil(-float64(n) * math.Log(fp) / (ln2 * ln2))
	k := int(math.Round(mBits / float64(n) * ln2))
	if k < 1 {
		k = 1
	}
	return New(int(mBits/8)+1, k)
}

// probes derives the two double-hashing words from a Sum.
func probes(h hashutil.Sum) (uint64, uint64) {
	h1 := binary.LittleEndian.Uint64(h[0:8])
	h2 := binary.LittleEndian.Uint64(h[8:16])
	if h2 == 0 {
		h2 = 0x9E3779B97F4A7C15 // avoid a degenerate stride
	}
	return h1, h2
}

// Add inserts h into the filter. Concurrent Adds (and Adds racing Tests)
// are safe: each word is set with a compare-and-swap loop, so no set bit is
// ever lost.
func (f *Filter) Add(h hashutil.Sum) {
	h1, h2 := probes(h)
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.nbits
		word := &f.bits[pos/64]
		mask := uint64(1) << (pos % 64)
		for {
			old := atomic.LoadUint64(word)
			if old&mask != 0 || atomic.CompareAndSwapUint64(word, old, old|mask) {
				break
			}
		}
	}
	f.adds.Add(1)
}

// Test reports whether h might be in the filter. False means certainly not
// present; true means present with probability 1 − FP rate.
func (f *Filter) Test(h hashutil.Sum) bool {
	h1, h2 := probes(h)
	f.tested.Add(1)
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.nbits
		if atomic.LoadUint64(&f.bits[pos/64])&(1<<(pos%64)) == 0 {
			return false
		}
	}
	f.hits.Add(1)
	return true
}

// SizeBytes returns the filter's bit-array size in bytes (the RAM the paper
// charges to the bloom filter).
func (f *Filter) SizeBytes() int64 {
	return int64(len(f.bits) * 8)
}

// Count returns the number of Add calls.
func (f *Filter) Count() uint64 { return f.adds.Load() }

// Stats returns the number of Test calls and how many returned true.
func (f *Filter) Stats() (tested, hits uint64) { return f.tested.Load(), f.hits.Load() }

// EstimatedFPRate returns the expected false-positive probability given the
// current load: (1 − e^(−k·n/m))^k.
func (f *Filter) EstimatedFPRate() float64 {
	adds := f.adds.Load()
	if adds == 0 {
		return 0
	}
	exp := -float64(f.k) * float64(adds) / float64(f.nbits)
	return math.Pow(1-math.Exp(exp), float64(f.k))
}

// FillRatio returns the fraction of set bits, a direct measure of load.
func (f *Filter) FillRatio() float64 {
	var set int
	for i := range f.bits {
		set += popcount(atomic.LoadUint64(&f.bits[i]))
	}
	return float64(set) / float64(f.nbits)
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Reset clears the filter. Reset must not race with Add/Test (it is a
// maintenance operation, not a data-path one).
func (f *Filter) Reset() {
	for i := range f.bits {
		atomic.StoreUint64(&f.bits[i], 0)
	}
	f.adds.Store(0)
	f.tested.Store(0)
	f.hits.Store(0)
}
