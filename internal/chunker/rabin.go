package chunker

import (
	"bytes"
	"io"

	"mhdedup/internal/rabin"
)

// Rabin is the basic LBFS-style content-defined chunker: cut where the
// window fingerprint, masked to k bits, equals the mask, with the chunk size
// clamped to [Min, Max].
type Rabin struct {
	p    Params
	mask rabin.Poly
	win  *rabin.Window
	src  *readFiller
	off  int64
	done bool
}

// NewRabin returns a CDC chunker over r with the given parameters.
func NewRabin(r io.Reader, p Params) (*Rabin, error) {
	p, err := p.withDefaults()
	if err != nil {
		return nil, err
	}
	win, err := rabin.NewWindow(p.Poly, p.WindowSize)
	if err != nil {
		return nil, err
	}
	return &Rabin{p: p, mask: p.Mask(), win: win, src: newReadFiller(r)}, nil
}

// Next returns the next chunk, or io.EOF after the last one.
func (c *Rabin) Next() (Chunk, error) {
	if c.done {
		return Chunk{}, c.src.finalErr()
	}
	c.win.Reset()
	cur := make([]byte, 0, c.p.Max)
	for {
		b, ok := c.src.next()
		if !ok {
			c.done = true
			if len(cur) > 0 {
				chunk := Chunk{Data: cur, Off: c.off}
				c.off += chunk.Size()
				return chunk, nil
			}
			return Chunk{}, c.src.finalErr()
		}
		cur = append(cur, b)
		fp := c.win.Roll(b)
		if len(cur) >= c.p.Max || (len(cur) >= c.p.Min && fp&c.mask == c.mask) {
			chunk := Chunk{Data: cur, Off: c.off}
			c.off += chunk.Size()
			return chunk, nil
		}
	}
}

// Split divides data into CDC chunks in one call. Offsets are relative to
// data[0]. It is the re-chunking primitive used by Bimodal, SubChunk and
// HHR, and produces the same cuts as streaming the same bytes through
// NewRabin — it runs the block-processed FastRabin by default (reference
// Rabin when p.Reference is set), which the conformance harness proves
// cut-point identical.
func Split(data []byte, p Params) ([]Chunk, error) {
	c, err := NewCDC(bytes.NewReader(data), p)
	if err != nil {
		return nil, err
	}
	var out []Chunk
	for {
		ch, err := c.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, ch)
	}
}
