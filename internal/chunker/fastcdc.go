package chunker

import (
	"io"
	"math/rand"
)

// FastCDC implements the gear-hash chunker of Xia et al. (USENIX ATC'16) —
// the successor to Rabin CDC that most modern deduplication systems
// (including post-2016 backup tools) adopted. It is included as a
// future-work extension to the paper's 2013-era toolbox: the gear hash
// needs one table lookup, one shift and one add per byte (no window
// bookkeeping), and normalized chunking uses a stricter mask before the
// target size and a looser one after, tightening the chunk-size
// distribution that plain Rabin leaves long-tailed.
//
// Like the other chunkers here, FastCDC resets its hash at every cut, so
// re-chunking a stored region reproduces the in-stream cut points.
type FastCDC struct {
	p          Params
	gear       [256]uint64
	maskStrict uint64
	maskLoose  uint64
	src        *readFiller
	off        int64
	done       bool
}

// gearTableSeed derives the 256-entry gear table; fixed so chunking is
// deterministic across processes, overridable for tests through the
// polynomial field (reused as a seed when set).
const gearTableSeed = 0x3DA3358B4DC173

// NewFastCDC returns a FastCDC chunker over r with the given parameters.
// Params.Poly, when non-zero, seeds the gear table (the Rabin polynomial
// itself is not used — FastCDC has no polynomial arithmetic).
func NewFastCDC(r io.Reader, p Params) (*FastCDC, error) {
	p, err := p.withDefaults()
	if err != nil {
		return nil, err
	}
	seed := int64(gearTableSeed)
	if p.Poly != 0 {
		seed = int64(p.Poly)
	}
	c := &FastCDC{p: p, src: newReadFiller(r)}
	rng := rand.New(rand.NewSource(seed))
	for i := range c.gear {
		c.gear[i] = rng.Uint64()
	}
	// Normalized chunking: bits(ECS)+2 mask bits before the target size,
	// bits(ECS)−2 after. FastCDC spreads mask bits across the word; the
	// gear hash's upper bits carry the entropy, so take them from the top.
	bits := 0
	for n := p.ECS; n > 1; n >>= 1 {
		bits++
	}
	c.maskStrict = topMask(bits + 2)
	c.maskLoose = topMask(bits - 2)
	return c, nil
}

// topMask returns a mask with n high bits set (clamped to [1,63]).
func topMask(n int) uint64 {
	if n < 1 {
		n = 1
	}
	if n > 63 {
		n = 63
	}
	return ^uint64(0) << (64 - uint(n))
}

// Next returns the next chunk, or io.EOF after the last one.
func (c *FastCDC) Next() (Chunk, error) {
	if c.done {
		return Chunk{}, c.src.finalErr()
	}
	cur := make([]byte, 0, c.p.Max)
	var h uint64
	for {
		b, ok := c.src.next()
		if !ok {
			c.done = true
			if len(cur) > 0 {
				chunk := Chunk{Data: cur, Off: c.off}
				c.off += chunk.Size()
				return chunk, nil
			}
			return Chunk{}, c.src.finalErr()
		}
		cur = append(cur, b)
		h = (h << 1) + c.gear[b]
		if len(cur) < c.p.Min {
			continue
		}
		mask := c.maskStrict
		if len(cur) >= c.p.ECS {
			mask = c.maskLoose
		}
		if h&mask == 0 || len(cur) >= c.p.Max {
			chunk := Chunk{Data: cur, Off: c.off}
			c.off += chunk.Size()
			return chunk, nil
		}
	}
}
