package chunker

import (
	"io"
	"math/rand"
)

// FastCDC implements the gear-hash chunker of Xia et al. (USENIX ATC'16) —
// the successor to Rabin CDC that most modern deduplication systems
// (including post-2016 backup tools) adopted. It is included as a
// future-work extension to the paper's 2013-era toolbox: the gear hash
// needs one table lookup, one shift and one add per byte (no window
// bookkeeping), and normalized chunking uses a stricter mask before the
// target size and a looser one after, tightening the chunk-size
// distribution that plain Rabin leaves long-tailed.
//
// Like the other chunkers here, FastCDC resets its hash at every cut, so
// re-chunking a stored region reproduces the in-stream cut points.
type FastCDC struct {
	p          Params
	gear       [256]uint64
	maskStrict uint64
	maskLoose  uint64
	src        *readFiller
	off        int64
	done       bool
}

// gearTableSeed derives the 256-entry gear table; fixed so chunking is
// deterministic across processes, overridable for tests through the
// polynomial field (reused as a seed when set).
const gearTableSeed = 0x3DA3358B4DC173

// gearTable builds the 256-entry gear table for p. Factored out so FastCDC
// and the block-processed FastGear derive byte-identical tables — the
// foundation of their cut-point identity.
func gearTable(p Params) [256]uint64 {
	seed := int64(gearTableSeed)
	if p.Poly != 0 {
		seed = int64(p.Poly)
	}
	var tab [256]uint64
	rng := rand.New(rand.NewSource(seed))
	for i := range tab {
		tab[i] = rng.Uint64()
	}
	return tab
}

// gearMasks returns the normalized-chunking masks for p: bits(ECS)+2 mask
// bits before the target size, bits(ECS)−2 after. FastCDC spreads mask bits
// across the word; the gear hash's upper bits carry the entropy, so both
// masks take them from the top. Shared by FastCDC and FastGear.
func gearMasks(p Params) (strict, loose uint64) {
	bits := 0
	for n := p.ECS; n > 1; n >>= 1 {
		bits++
	}
	return topMask(bits + 2), topMask(bits - 2)
}

// topMask returns a mask with n high bits set, clamped to [1,63].
//
// The low clamp is a deliberate semantic choice for degenerate ECS values
// (bits(ECS) ≤ 2, i.e. ECS ≤ 7): unclamped, the loose mask's bits(ECS)−2
// would reach zero, and a zero mask means h&mask == 0 at every byte — the
// chunker would cut unconditionally at len == ECS, degenerating to
// fixed-size partitioning past the target with no boundary-shift
// resilience. Clamping to one high bit keeps even the loose region
// content-defined (a cut with probability 1/2 per byte), at the cost of a
// mean slightly above ECS for such tiny targets. TestFastCDCSmallECSClamp
// pins this: sizes stay within [Min, Max] and the loose mask never has
// more bits set than the strict one.
func topMask(n int) uint64 {
	if n < 1 {
		n = 1
	}
	if n > 63 {
		n = 63
	}
	return ^uint64(0) << (64 - uint(n))
}

// NewFastCDC returns a FastCDC chunker over r with the given parameters.
// Params.Poly, when non-zero, seeds the gear table (the Rabin polynomial
// itself is not used — FastCDC has no polynomial arithmetic).
func NewFastCDC(r io.Reader, p Params) (*FastCDC, error) {
	p, err := p.withDefaults()
	if err != nil {
		return nil, err
	}
	c := &FastCDC{p: p, src: newReadFiller(r)}
	c.gear = gearTable(p)
	c.maskStrict, c.maskLoose = gearMasks(p)
	return c, nil
}

// Next returns the next chunk, or io.EOF after the last one.
func (c *FastCDC) Next() (Chunk, error) {
	if c.done {
		return Chunk{}, c.src.finalErr()
	}
	cur := make([]byte, 0, c.p.Max)
	var h uint64
	for {
		b, ok := c.src.next()
		if !ok {
			c.done = true
			if len(cur) > 0 {
				chunk := Chunk{Data: cur, Off: c.off}
				c.off += chunk.Size()
				return chunk, nil
			}
			return Chunk{}, c.src.finalErr()
		}
		cur = append(cur, b)
		h = (h << 1) + c.gear[b]
		if len(cur) < c.p.Min {
			continue
		}
		mask := c.maskStrict
		if len(cur) >= c.p.ECS {
			mask = c.maskLoose
		}
		if h&mask == 0 || len(cur) >= c.p.Max {
			chunk := Chunk{Data: cur, Off: c.off}
			c.off += chunk.Size()
			return chunk, nil
		}
	}
}
