package chunker

import "io"

// FastGear is the block-processed twin of FastCDC: the same gear hash, the
// same normalized-chunking masks, the same cut points — bit-identical, as
// the conformance harness proves — but scanned over buffered []byte slices
// in tight branch-light loops instead of pulling one byte at a time through
// readFiller.next().
//
// Three structural changes carry the speedup (the vectorization playbook of
// "Accelerating Data Chunking in Deduplication Systems using Vector
// Instructions" applied at the Go level, where the table-lookup loop is the
// auto-vectorizable shape):
//
//  1. Skip-ahead to Min: h = (h<<1) + gear[b] shifts a byte's contribution
//     out of the 64-bit word after 64 more bytes, so the hash at the first
//     checked position (len == Min) depends only on the 64 bytes ending
//     there. Bytes before Min−64 are copied, never hashed.
//  2. Region-split loops: the scan between Min, ECS and Max runs as
//     separate loops with the mask and bound hoisted, so the per-byte body
//     is one table add plus one mask test — no position comparisons.
//  3. Block accumulation: chunk bytes are appended as whole sub-slices of
//     the read buffer, not byte-by-byte.
//
// Like FastCDC, the hash restarts at every cut, so re-chunking a stored
// region reproduces the in-stream cut points.
type FastGear struct {
	p          Params
	gear       [256]uint64
	maskStrict uint64
	maskLoose  uint64
	src        *readFiller
	off        int64
	done       bool
}

// NewFastGear returns a block-processed gear chunker over r, cut-point
// identical to NewFastCDC with the same parameters.
func NewFastGear(r io.Reader, p Params) (*FastGear, error) {
	p, err := p.withDefaults()
	if err != nil {
		return nil, err
	}
	c := &FastGear{p: p, src: newReadFiller(r)}
	c.gear = gearTable(p)
	c.maskStrict, c.maskLoose = gearMasks(p)
	return c, nil
}

// Next returns the next chunk, or io.EOF after the last one.
func (c *FastGear) Next() (Chunk, error) {
	if c.done {
		return Chunk{}, c.src.finalErr()
	}
	min, ecs, max := c.p.Min, c.p.ECS, c.p.Max
	// First index whose byte can still influence the hash at the first
	// checked position (chunk index min−1): contributions older than 63
	// positions have shifted out of the word.
	hashFrom := min - 64
	if hashFrom < 0 {
		hashFrom = 0
	}
	gear := &c.gear
	cur := make([]byte, 0, max)
	var h uint64
	for {
		blk := c.src.peek()
		if len(blk) == 0 {
			c.done = true
			if len(cur) > 0 {
				chunk := Chunk{Data: cur, Off: c.off}
				c.off += chunk.Size()
				return chunk, nil
			}
			return Chunk{}, c.src.finalErr()
		}
		base := len(cur) // chunk index of blk[0]
		limit := len(blk)
		if base+limit > max { // cap at the forced-cut boundary
			limit = max - base
		}
		i := 0
		cut := -1
		// Region 1 — skip: bytes before hashFrom need no hashing at all.
		if base < hashFrom {
			i = hashFrom - base
			if i > limit {
				i = limit
			}
		}
		// Region 2 — warm-up: hash without testing (positions len < Min).
		if end := min - 1 - base; i < end {
			if end > limit {
				end = limit
			}
			for ; i < end; i++ {
				h = (h << 1) + gear[blk[i]]
			}
		}
		// Region 3 — strict mask: positions Min ≤ len < ECS.
		if end := ecs - 1 - base; i < end {
			if end > limit {
				end = limit
			}
			mask := c.maskStrict
			for ; i < end; i++ {
				h = (h << 1) + gear[blk[i]]
				if h&mask == 0 {
					cut = i + 1
					break
				}
			}
		}
		// Region 4 — loose mask: positions len ≥ ECS, up to the Max cap.
		if cut < 0 {
			mask := c.maskLoose
			for ; i < limit; i++ {
				h = (h << 1) + gear[blk[i]]
				if h&mask == 0 {
					cut = i + 1
					break
				}
			}
		}
		consumed := limit
		if cut >= 0 {
			consumed = cut
		}
		cur = append(cur, blk[:consumed]...)
		c.src.consume(consumed)
		if cut >= 0 || len(cur) >= max {
			chunk := Chunk{Data: cur, Off: c.off}
			c.off += chunk.Size()
			return chunk, nil
		}
	}
}
