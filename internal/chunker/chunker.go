// Package chunker divides byte streams into chunks.
//
// Three chunkers are provided:
//
//   - Rabin: content-defined chunking (CDC) as in LBFS — a sliding-window
//     Rabin fingerprint is computed at every byte and a cut point is declared
//     where the fingerprint matches a mask, subject to minimum and maximum
//     chunk sizes. This is the basic chunking algorithm of the paper and of
//     all its baselines.
//   - TTTD: the "two thresholds, two divisors" refinement (Eshghi & Tang,
//     HPL-2005-30): a second, more permissive divisor records backup cut
//     candidates so that chunks forced out at the maximum size still end at
//     a content-defined position.
//   - Fixed: fixed-size partitioning (FSP) as in Venti — the boundary-shift
//     strawman.
//
// All chunkers reset their rolling window at each emitted cut. This makes
// chunking self-contained per chunk: re-chunking a stored big chunk in
// isolation reproduces exactly the cut points that small-chunking the stream
// from the big chunk's start would have produced — the property Bimodal and
// SubChunk re-chunking relies on.
package chunker

import (
	"fmt"
	"io"
	"math/bits"

	"mhdedup/internal/rabin"
)

// Chunk is one chunk of a stream. Data is owned by the caller once returned;
// chunkers never reuse returned buffers.
type Chunk struct {
	Data []byte
	Off  int64 // offset of Data[0] within the stream
}

// Size returns len(Data) as an int64 for offset arithmetic.
func (c Chunk) Size() int64 { return int64(len(c.Data)) }

// Chunker produces consecutive chunks of a stream. Next returns io.EOF after
// the final chunk. Implementations are not safe for concurrent use.
type Chunker interface {
	Next() (Chunk, error)
}

// Params configures a content-defined chunker.
type Params struct {
	// ECS is the expected chunk size in bytes — the paper's basic knob. The
	// achieved mean is approximately Min + 2^k clipped by Max, where k is
	// chosen as log2(ECS − Min); see Mask.
	ECS int

	// Min and Max bound the chunk size. Zero values default to ECS/4 and
	// ECS*4 respectively, the conventional CDC configuration.
	Min, Max int

	// Poly is the Rabin modulus; zero defaults to rabin.DefaultPoly.
	Poly rabin.Poly

	// WindowSize is the sliding-window width; zero defaults to
	// rabin.DefaultWindowSize.
	WindowSize int

	// Reference selects the per-byte reference implementations (Rabin,
	// FastCDC) in the NewCDC/NewGear factories instead of the
	// block-processed fast paths (FastRabin, FastGear). The two paths emit
	// bit-identical cut sequences — pinned by the conformance harness and
	// the golden vectors under testdata/ — so Reference exists for
	// differential testing and benchmarking, not because outputs differ.
	Reference bool
}

// withDefaults returns p with zero fields filled in and validates it.
func (p Params) withDefaults() (Params, error) {
	if p.ECS <= 0 {
		return p, fmt.Errorf("chunker: ECS must be positive, got %d", p.ECS)
	}
	if p.Min == 0 {
		p.Min = p.ECS / 4
	}
	if p.Max == 0 {
		p.Max = p.ECS * 4
	}
	if p.Min <= 0 || p.Min > p.ECS {
		return p, fmt.Errorf("chunker: Min %d out of range (0, ECS=%d]", p.Min, p.ECS)
	}
	if p.Max < p.ECS {
		return p, fmt.Errorf("chunker: Max %d below ECS %d", p.Max, p.ECS)
	}
	if p.Poly == 0 {
		p.Poly = rabin.DefaultPoly
	}
	if p.WindowSize == 0 {
		p.WindowSize = rabin.DefaultWindowSize
	}
	if p.Min < p.WindowSize {
		return p, fmt.Errorf("chunker: Min %d smaller than window size %d", p.Min, p.WindowSize)
	}
	return p, nil
}

// Mask returns the cut-point mask for p: k low bits set, where 2^k is the
// expected distance from Min to the cut so that the mean chunk size is close
// to ECS.
func (p Params) Mask() rabin.Poly {
	target := p.ECS - p.Min
	if target < 2 {
		target = 2
	}
	k := bits.Len(uint(target)) - 1
	return rabin.Poly(1)<<uint(k) - 1
}

// readFiller pulls bytes from an io.Reader into chunker buffers, tracking a
// sticky error.
type readFiller struct {
	r   io.Reader
	buf []byte
	pos int // next unread byte in buf
	n   int // valid bytes in buf
	err error
}

func newReadFiller(r io.Reader) *readFiller {
	return &readFiller{r: r, buf: make([]byte, 64<<10)}
}

// next returns the next byte. ok is false when the stream is exhausted or
// failed; check err() afterwards.
func (f *readFiller) next() (byte, bool) {
	blk := f.peek()
	if len(blk) == 0 {
		return 0, false
	}
	f.pos++
	return blk[0], true
}

// peek returns the unread buffered bytes, refilling from the reader when the
// buffer is drained. An empty result means the stream is exhausted or
// failed; check finalErr afterwards. The returned slice is valid until the
// next peek and must be released with consume — the block-processed
// chunkers scan it in place and copy out only the bytes of the chunk they
// emit.
func (f *readFiller) peek() []byte {
	if f.pos >= f.n {
		if f.err != nil {
			return nil
		}
		f.pos, f.n = 0, 0
		for f.n == 0 {
			n, err := f.r.Read(f.buf)
			f.n = n
			if err != nil {
				f.err = err
				break
			}
		}
		if f.n == 0 {
			return nil
		}
	}
	return f.buf[f.pos:f.n]
}

// consume marks n bytes of the last peek as read.
func (f *readFiller) consume(n int) {
	f.pos += n
}

// finalErr converts the sticky error for Next: io.EOF stays io.EOF, other
// errors pass through, nil means still readable.
func (f *readFiller) finalErr() error {
	if f.err == nil || f.err == io.EOF {
		return io.EOF
	}
	return f.err
}

// NewCDC returns the LBFS Rabin content-defined chunker over r: the
// block-processed FastRabin by default, the per-byte reference Rabin when
// p.Reference is set. Both emit bit-identical chunks; the engines and the
// re-chunking primitives construct through this factory so one Params knob
// flips the whole system between paths.
func NewCDC(r io.Reader, p Params) (Chunker, error) {
	if p.Reference {
		return NewRabin(r, p)
	}
	return NewFastRabin(r, p)
}

// NewGear returns the gear-hash (FastCDC-algorithm) chunker over r: the
// block-processed FastGear by default, the per-byte reference FastCDC when
// p.Reference is set. Both emit bit-identical chunks.
func NewGear(r io.Reader, p Params) (Chunker, error) {
	if p.Reference {
		return NewFastCDC(r, p)
	}
	return NewFastGear(r, p)
}
