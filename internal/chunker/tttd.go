package chunker

import (
	"io"

	"mhdedup/internal/rabin"
)

// TTTD is the "two thresholds, two divisors" chunker. In addition to the
// main divisor (the Rabin chunker's mask), a more permissive backup divisor
// — one bit shorter, so twice as likely to match — records candidate cut
// points. When a chunk reaches the maximum size without a main-divisor
// match, it is cut at the most recent backup candidate instead of at the
// arbitrary max boundary, keeping even forced cuts content-defined.
type TTTD struct {
	p        Params
	mainMask rabin.Poly
	backMask rabin.Poly
	win      *rabin.Window
	src      *readFiller
	off      int64
	done     bool

	// carry holds bytes that were read past a backup cut point and belong to
	// the next chunk.
	carry []byte
}

// NewTTTD returns a TTTD chunker over r.
func NewTTTD(r io.Reader, p Params) (*TTTD, error) {
	p, err := p.withDefaults()
	if err != nil {
		return nil, err
	}
	win, err := rabin.NewWindow(p.Poly, p.WindowSize)
	if err != nil {
		return nil, err
	}
	main := p.Mask()
	return &TTTD{
		p:        p,
		mainMask: main,
		backMask: main >> 1,
		win:      win,
		src:      newReadFiller(r),
	}, nil
}

// Next returns the next chunk, or io.EOF after the last one.
func (c *TTTD) Next() (Chunk, error) {
	if c.done && len(c.carry) == 0 {
		return Chunk{}, c.src.finalErr()
	}
	c.win.Reset()
	cur := make([]byte, 0, c.p.Max)
	// Replay carried-over bytes through the window first so their
	// fingerprints are identical to a fresh read.
	carry := c.carry
	c.carry = nil
	backupAt := -1 // index in cur after which a backup cut would fall
	emit := func(n int) Chunk {
		chunk := Chunk{Data: cur[:n:n], Off: c.off}
		c.off += chunk.Size()
		if n < len(cur) {
			c.carry = append([]byte(nil), cur[n:]...)
		}
		return chunk
	}
	for {
		var b byte
		if len(carry) > 0 {
			b, carry = carry[0], carry[1:]
		} else {
			var ok bool
			b, ok = c.src.next()
			if !ok {
				c.done = true
				if len(cur) > 0 {
					return emit(len(cur)), nil
				}
				return Chunk{}, c.src.finalErr()
			}
		}
		cur = append(cur, b)
		fp := c.win.Roll(b)
		if len(cur) < c.p.Min {
			continue
		}
		if fp&c.mainMask == c.mainMask {
			return emit(len(cur)), nil
		}
		if fp&c.backMask == c.backMask {
			backupAt = len(cur)
		}
		if len(cur) >= c.p.Max {
			if backupAt > 0 {
				return emit(backupAt), nil
			}
			return emit(len(cur)), nil
		}
	}
}
