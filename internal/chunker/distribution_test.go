package chunker

// Chunk-size distribution invariants, table-tested across every
// content-defined chunker (reference and block-processed), Params defaults
// and explicit corners, and pathological inputs. Two properties are
// load-bearing for the rest of the system: no chunk may ever leave
// [Min, Max] (container sizing, recipe encoding and the wire protocol's
// payload budgets all assume it), and the achieved mean on random data must
// land near ECS (the paper's metadata model scales with N ≈ bytes/ECS).

import (
	"bytes"
	"io"
	"testing"
)

// allChunkers is every content-defined chunker under its public
// constructor, reference and fast.
var allChunkers = []struct {
	name string
	mk   mkChunker
}{
	{"rabin", func(r io.Reader, p Params) (Chunker, error) { return NewRabin(r, p) }},
	{"fastrabin", func(r io.Reader, p Params) (Chunker, error) { return NewFastRabin(r, p) }},
	{"fastcdc", func(r io.Reader, p Params) (Chunker, error) { return NewFastCDC(r, p) }},
	{"fastgear", func(r io.Reader, p Params) (Chunker, error) { return NewFastGear(r, p) }},
	{"tttd", func(r io.Reader, p Params) (Chunker, error) { return NewTTTD(r, p) }},
}

// TestChunkSizeBoundsAllChunkers: every chunker × Params corners ×
// {random, all-zero, all-0xFF, periodic} inputs — every non-final chunk in
// [Min, Max], the final chunk in (0, Max], and the chunks reassemble.
func TestChunkSizeBoundsAllChunkers(t *testing.T) {
	params := []Params{
		{ECS: 1024},
		{ECS: 4096},
		{ECS: 1024, Min: 256, Max: 1536},
		{ECS: 512, Min: 512, Max: 2048},
		{ECS: 1024, Max: 1024},
		{ECS: 64, Min: 8, Max: 256, WindowSize: 8},
	}
	for _, impl := range allChunkers {
		for pi, p := range params {
			pd, err := p.withDefaults()
			if err != nil {
				t.Fatal(err)
			}
			for _, kind := range []string{"random", "zeros", "ff", "periodic"} {
				data := streamData(kind, int64(pi)+50, 512<<10)
				c, err := impl.mk(bytes.NewReader(data), p)
				if err != nil {
					t.Fatal(err)
				}
				chunks, err := chunkAll(c)
				if err != nil {
					t.Fatalf("%s/params%d/%s: %v", impl.name, pi, kind, err)
				}
				for i, ch := range chunks {
					if len(ch.Data) > pd.Max || len(ch.Data) == 0 {
						t.Fatalf("%s/params%d/%s: chunk %d size %d outside (0, Max=%d]",
							impl.name, pi, kind, i, len(ch.Data), pd.Max)
					}
					if i < len(chunks)-1 && len(ch.Data) < pd.Min {
						t.Fatalf("%s/params%d/%s: non-final chunk %d size %d below Min %d",
							impl.name, pi, kind, i, len(ch.Data), pd.Min)
					}
				}
				if !bytes.Equal(reassemble(chunks), data) {
					t.Fatalf("%s/params%d/%s: chunks do not reassemble", impl.name, pi, kind)
				}
			}
		}
	}
}

// TestChunkMeanNearECSAllChunkers: on random data the achieved mean chunk
// size must land within [ECS/2, 2·ECS] for every chunker at the default
// Min/Max, across the paper's ECS sweep.
func TestChunkMeanNearECSAllChunkers(t *testing.T) {
	data := streamData("random", 59, 4<<20)
	for _, impl := range allChunkers {
		for _, ecs := range []int{512, 1024, 4096, 8192} {
			c, err := impl.mk(bytes.NewReader(data), Params{ECS: ecs})
			if err != nil {
				t.Fatal(err)
			}
			chunks, err := chunkAll(c)
			if err != nil {
				t.Fatal(err)
			}
			mean := float64(len(data)) / float64(len(chunks))
			if mean < float64(ecs)/2 || mean > float64(ecs)*2 {
				t.Errorf("%s ECS=%d: mean chunk size %.0f outside [ECS/2, 2·ECS]",
					impl.name, ecs, mean)
			}
		}
	}
}

// TestFastCDCSmallECSClamp pins the degenerate-ECS clamp semantics that
// topMask documents: for ECS ≤ 7 the loose mask's bits(ECS)−2 would reach
// zero, and an unclamped zero mask would cut unconditionally at len == ECS
// — fixed-size partitioning in disguise. The clamp keeps one high bit, so
// past ECS cuts stay content-defined with probability 1/2 per byte. The
// distribution consequences this test pins, for both the reference and
// block-processed gear chunkers:
//
//   - sizes stay within (0, Max], non-final chunks ≥ Min;
//   - the mean lands a little above ECS (between ECS/2 and 3·ECS), not at
//     Max (which a too-strict mask would cause) and not rigidly at ECS
//     (which the unclamped mask would cause);
//   - chunk lengths past ECS actually vary — the content-defined behavior
//     the clamp exists to preserve.
func TestFastCDCSmallECSClamp(t *testing.T) {
	for _, ecs := range []int{4, 6, 7} { // bits(ECS) = 2 → bits−2 ≤ 0 clamps
		p := Params{ECS: ecs, Min: 1, Max: 4 * ecs, WindowSize: 1}
		data := streamData("random", int64(ecs)*13, 128<<10)
		for _, impl := range []struct {
			name string
			mk   mkChunker
		}{
			{"fastcdc", func(r io.Reader, pp Params) (Chunker, error) { return NewFastCDC(r, pp) }},
			{"fastgear", func(r io.Reader, pp Params) (Chunker, error) { return NewFastGear(r, pp) }},
		} {
			c, err := impl.mk(bytes.NewReader(data), p)
			if err != nil {
				t.Fatal(err)
			}
			chunks, err := chunkAll(c)
			if err != nil {
				t.Fatal(err)
			}
			sizesPastECS := map[int]int{}
			for i, ch := range chunks {
				if len(ch.Data) > p.Max || len(ch.Data) == 0 {
					t.Fatalf("%s ECS=%d: chunk %d size %d outside (0, %d]",
						impl.name, ecs, i, len(ch.Data), p.Max)
				}
				if len(ch.Data) >= ecs {
					sizesPastECS[len(ch.Data)]++
				}
			}
			mean := float64(len(data)) / float64(len(chunks))
			if mean < float64(ecs)/2 || mean > float64(ecs)*3 {
				t.Errorf("%s ECS=%d: mean %.1f outside [ECS/2, 3·ECS] — clamp semantics drifted",
					impl.name, ecs, mean)
			}
			if len(sizesPastECS) < 2 {
				t.Errorf("%s ECS=%d: only %d distinct sizes ≥ ECS (%v) — loose-region cuts degenerated to fixed-size",
					impl.name, ecs, len(sizesPastECS), sizesPastECS)
			}
		}
	}
}
