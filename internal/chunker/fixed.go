package chunker

import (
	"fmt"
	"io"
)

// Fixed is a fixed-size partitioning (FSP) chunker, the Venti/OceanStore
// approach the paper cites as the strawman that suffers the boundary-shift
// problem: a one-byte insertion changes every subsequent chunk.
type Fixed struct {
	r    io.Reader
	size int
	off  int64
	err  error
}

// NewFixed returns a chunker that cuts r into size-byte chunks (the final
// chunk may be shorter).
func NewFixed(r io.Reader, size int) (*Fixed, error) {
	if size <= 0 {
		return nil, fmt.Errorf("chunker: fixed chunk size must be positive, got %d", size)
	}
	return &Fixed{r: r, size: size}, nil
}

// Next returns the next chunk, or io.EOF after the last one.
func (c *Fixed) Next() (Chunk, error) {
	if c.err != nil {
		return Chunk{}, c.err
	}
	buf := make([]byte, c.size)
	n, err := io.ReadFull(c.r, buf)
	if n > 0 {
		chunk := Chunk{Data: buf[:n:n], Off: c.off}
		c.off += int64(n)
		if err != nil {
			// A short read ending in EOF is the normal final chunk; any
			// other error must surface on the next call, not be masked as
			// end-of-stream.
			if err == io.ErrUnexpectedEOF || err == io.EOF {
				err = io.EOF
			}
			c.err = err
		}
		return chunk, nil
	}
	if err == io.ErrUnexpectedEOF || err == nil {
		err = io.EOF
	}
	c.err = err
	return Chunk{}, c.err
}
