package chunker

import (
	"bytes"
	"io"
	"math"
	"testing"
)

func collectFast(t *testing.T, data []byte, p Params) []Chunk {
	t.Helper()
	c, err := NewFastCDC(bytes.NewReader(data), p)
	if err != nil {
		t.Fatal(err)
	}
	var out []Chunk
	for {
		ch, err := c.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, ch)
	}
}

func TestFastCDCConcatenationInvariant(t *testing.T) {
	for _, n := range []int{0, 1, 1000, 1 << 18} {
		data := randomData(int64(n)+77, n)
		chunks := collectFast(t, data, Params{ECS: 1024})
		if !bytes.Equal(reassemble(chunks), data) {
			t.Fatalf("n=%d: reassembly failed", n)
		}
		checkOffsets(t, chunks)
	}
}

func TestFastCDCSizeBoundsAndMean(t *testing.T) {
	p := Params{ECS: 2048}
	data := randomData(81, 4<<20)
	chunks := collectFast(t, data, p)
	pd, _ := p.withDefaults()
	for i, c := range chunks {
		if len(c.Data) > pd.Max {
			t.Errorf("chunk %d over max", i)
		}
		if i < len(chunks)-1 && len(c.Data) < pd.Min {
			t.Errorf("chunk %d under min", i)
		}
	}
	mean := float64(len(data)) / float64(len(chunks))
	if mean < 1024 || mean > 4096 {
		t.Errorf("mean chunk size %.0f outside [ECS/2, 2·ECS]", mean)
	}
}

func TestFastCDCNormalizedDistributionTighterThanRabin(t *testing.T) {
	// Normalized chunking's selling point: smaller variance of chunk sizes
	// than single-mask Rabin at the same target size.
	data := randomData(83, 8<<20)
	p := Params{ECS: 2048}
	fast := collectFast(t, data, p)
	r, _ := NewRabin(bytes.NewReader(data), p)
	var rabinChunks []Chunk
	for {
		c, err := r.Next()
		if err != nil {
			break
		}
		rabinChunks = append(rabinChunks, c)
	}
	cv := func(chunks []Chunk) float64 {
		var sum, sq float64
		for _, c := range chunks {
			sum += float64(len(c.Data))
		}
		mean := sum / float64(len(chunks))
		for _, c := range chunks {
			d := float64(len(c.Data)) - mean
			sq += d * d
		}
		return math.Sqrt(sq/float64(len(chunks))) / mean
	}
	if cv(fast) >= cv(rabinChunks) {
		t.Errorf("FastCDC CV %.3f not tighter than Rabin's %.3f", cv(fast), cv(rabinChunks))
	}
}

func TestFastCDCBoundaryShiftResilience(t *testing.T) {
	data := randomData(85, 1<<19)
	shifted := append([]byte{0x13}, data...)
	set := map[string]bool{}
	for _, c := range collectFast(t, data, Params{ECS: 1024}) {
		set[string(c.Data)] = true
	}
	shared := 0
	chunks := collectFast(t, shifted, Params{ECS: 1024})
	for _, c := range chunks {
		if set[string(c.Data)] {
			shared++
		}
	}
	if shared < len(chunks)*3/4 {
		t.Errorf("only %d/%d chunks survive a 1-byte insert", shared, len(chunks))
	}
}

func TestFastCDCDeterministicAndSeedable(t *testing.T) {
	data := randomData(87, 1<<17)
	a := collectFast(t, data, Params{ECS: 1024})
	b := collectFast(t, data, Params{ECS: 1024})
	if len(a) != len(b) {
		t.Fatal("FastCDC not deterministic")
	}
	for i := range a {
		if !bytes.Equal(a[i].Data, b[i].Data) {
			t.Fatal("FastCDC not deterministic")
		}
	}
	// A different seed (via Poly) changes the cut points.
	c := collectFast(t, data, Params{ECS: 1024, Poly: 0x3DA3358B4DC175})
	same := len(a) == len(c)
	if same {
		for i := range a {
			if !bytes.Equal(a[i].Data, c[i].Data) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different gear seeds produced identical cuts")
	}
}

func TestFastCDCEmptyAndValidation(t *testing.T) {
	c, err := NewFastCDC(bytes.NewReader(nil), Params{ECS: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Next(); err != io.EOF {
		t.Errorf("empty input: %v", err)
	}
	if _, err := NewFastCDC(bytes.NewReader(nil), Params{}); err == nil {
		t.Error("zero params accepted")
	}
}

func BenchmarkFastCDCChunk1M(b *testing.B) {
	data := randomData(1, 1<<20)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		c, _ := NewFastCDC(bytes.NewReader(data), Params{ECS: 4096})
		for {
			if _, err := c.Next(); err != nil {
				break
			}
		}
	}
}

func BenchmarkFastGearChunk1M(b *testing.B) {
	data := randomData(1, 1<<20)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		c, _ := NewFastGear(bytes.NewReader(data), Params{ECS: 4096})
		for {
			if _, err := c.Next(); err != nil {
				break
			}
		}
	}
}

func BenchmarkFastRabinChunk1M(b *testing.B) {
	data := randomData(1, 1<<20)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		c, _ := NewFastRabin(bytes.NewReader(data), Params{ECS: 4096})
		for {
			if _, err := c.Next(); err != nil {
				break
			}
		}
	}
}
