package chunker

// The chunker conformance harness. The block-processed fast paths
// (FastRabin, FastGear) are only shippable because their cut points are
// bit-identical to the reference implementations (Rabin, FastCDC): MHD and
// SI-MHD re-chunking, every stored recipe, and the client↔dedupd negotiated
// chunker config all assume deterministic cuts. This file is the proof:
//
//   - TestChunkerParityMatrix: fast vs reference × random seeds ×
//     adversarial streams × Params corners × reader-fragmentation patterns
//     (including 1-byte reads) must produce byte-identical chunk sequences.
//   - TestChunkerParityErrorStreams: the same parity must hold for the
//     chunks emitted before a mid-stream read error, and for the error.
//   - TestFastRechunkingReproducesCuts / TestFastRechunkWholeChunkStable:
//     the reset-at-cut invariant Bimodal/SubChunk re-chunking relies on.
//   - TestGoldenCutVectors: checked-in cut-length vectors under testdata/
//     pin the absolute cut positions so a future refactor cannot silently
//     move a boundary even if it moves it identically in both paths.
//   - FuzzChunkerParity: the same differential oracle under fuzzing.

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/bits"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"mhdedup/internal/rabin"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_cuts.json from the reference chunkers")

// mkChunker builds one chunker implementation over a reader.
type mkChunker func(io.Reader, Params) (Chunker, error)

// parityPairs are the reference/fast twins the harness compares.
var parityPairs = []struct {
	name string
	ref  mkChunker
	fast mkChunker
}{
	{"rabin", func(r io.Reader, p Params) (Chunker, error) { return NewRabin(r, p) },
		func(r io.Reader, p Params) (Chunker, error) { return NewFastRabin(r, p) }},
	{"gear", func(r io.Reader, p Params) (Chunker, error) { return NewFastCDC(r, p) },
		func(r io.Reader, p Params) (Chunker, error) { return NewFastGear(r, p) }},
}

// paramsCorners is every Params shape the matrix exercises: defaults,
// explicit tight bounds, Min==WindowSize, Min==ECS, Max==ECS (every cut
// forced or at the forced boundary), tiny windows with Min below the
// 64-byte gear-hash warm-up, Min==1, a non-default polynomial, and the
// degenerate small-ECS clamp corner.
var paramsCorners = []Params{
	{ECS: 4096},
	{ECS: 512},
	{ECS: 8192},
	{ECS: 1024, Min: 256, Max: 1536},
	{ECS: 256, Min: 48, Max: 4096},
	{ECS: 512, Min: 512, Max: 2048},
	{ECS: 1024, Max: 1024},
	{ECS: 64, Min: 8, Max: 256, WindowSize: 8},
	{ECS: 32, Min: 1, Max: 128, WindowSize: 1},
	{ECS: 4096, Poly: 0x3DA3358B4DC175},
	{ECS: 4, Min: 1, Max: 16, WindowSize: 1},
}

// streamData generates one adversarial or random test stream. Beyond
// random bytes, the kinds are chosen to stress the cut logic: all-zero and
// all-0xFF never (or pathologically often) match divisors and force
// max-size cuts; periodic tiles repeat window contents exactly; counter and
// alternating patterns walk the gear table in lockstep; sparse mixes long
// zero runs into random data so chunks straddle both regimes.
func streamData(kind string, seed int64, n int) []byte {
	d := make([]byte, n)
	switch kind {
	case "random":
		rand.New(rand.NewSource(seed)).Read(d)
	case "zeros":
		// already zero
	case "ff":
		for i := range d {
			d[i] = 0xFF
		}
	case "periodic":
		tile := make([]byte, 64)
		rand.New(rand.NewSource(seed)).Read(tile)
		for i := range d {
			d[i] = tile[i%len(tile)]
		}
	case "counter":
		for i := range d {
			d[i] = byte(i)
		}
	case "alternating":
		for i := range d {
			if i%2 == 0 {
				d[i] = 0xFF
			}
		}
	case "sparse":
		rng := rand.New(rand.NewSource(seed))
		i := 0
		for i < n {
			run := rng.Intn(4096) + 1
			if run > n-i {
				run = n - i
			}
			if rng.Intn(2) == 0 {
				rng.Read(d[i : i+run])
			}
			i += run
		}
	default:
		panic("unknown stream kind " + kind)
	}
	return d
}

var streamKinds = []string{"random", "zeros", "ff", "periodic", "counter", "alternating", "sparse"}

// --- reader fragmentation patterns -----------------------------------------

// sizedReader serves at most max bytes per Read call.
type sizedReader struct {
	data []byte
	max  int
}

func (r *sizedReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	n := r.max
	if n > len(p) {
		n = len(p)
	}
	if n > len(r.data) {
		n = len(r.data)
	}
	copy(p, r.data[:n])
	r.data = r.data[n:]
	return n, nil
}

// eofWithDataReader returns the final bytes together with io.EOF in the
// same Read call — legal io.Reader behavior chunkers must handle.
type eofWithDataReader struct {
	data []byte
	max  int
}

func (r *eofWithDataReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	n := r.max
	if n > len(p) {
		n = len(p)
	}
	if n >= len(r.data) {
		n = len(r.data)
		copy(p, r.data[:n])
		r.data = nil
		return n, io.EOF
	}
	copy(p, r.data[:n])
	r.data = r.data[n:]
	return n, nil
}

// randSizeReader serves random-size reads, with occasional (0, nil) calls —
// also legal, and retried by readFiller.
type randSizeReader struct {
	data []byte
	rng  *rand.Rand
}

func (r *randSizeReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	if r.rng.Intn(8) == 0 {
		return 0, nil
	}
	n := r.rng.Intn(8<<10) + 1
	if n > len(p) {
		n = len(p)
	}
	if n > len(r.data) {
		n = len(r.data)
	}
	copy(p, r.data[:n])
	r.data = r.data[n:]
	return n, nil
}

// fragmentations maps a pattern name to a reader over data. The fast paths
// scan whatever block the filler buffered, so every refill boundary is a
// potential off-by-one site; the patterns place boundaries everywhere —
// one-shot, 1-byte, prime strides, exactly and just past the 64 KiB filler
// buffer, data+EOF in one call, and seeded random with zero-byte reads.
var fragmentations = []struct {
	name string
	mk   func(data []byte, seed int64) io.Reader
}{
	{"whole", func(d []byte, _ int64) io.Reader { return bytes.NewReader(d) }},
	{"1B", func(d []byte, _ int64) io.Reader { return &sizedReader{data: d, max: 1} }},
	{"7B", func(d []byte, _ int64) io.Reader { return &sizedReader{data: d, max: 7} }},
	{"4093B", func(d []byte, _ int64) io.Reader { return &sizedReader{data: d, max: 4093} }},
	{"64KiB", func(d []byte, _ int64) io.Reader { return &sizedReader{data: d, max: 64 << 10} }},
	{"64KiB+1", func(d []byte, _ int64) io.Reader { return &sizedReader{data: d, max: 64<<10 + 1} }},
	{"data+eof", func(d []byte, _ int64) io.Reader { return &eofWithDataReader{data: d, max: 1000} }},
	{"rand", func(d []byte, seed int64) io.Reader {
		return &randSizeReader{data: d, rng: rand.New(rand.NewSource(seed))}
	}},
}

// chunkAll drains c, returning the chunks and the terminal error (io.EOF
// normalized to nil).
func chunkAll(c Chunker) ([]Chunk, error) {
	var out []Chunk
	for {
		ch, err := c.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, ch)
	}
}

// assertSameChunks fails unless a and b are identical chunk sequences:
// same count, same offsets, same bytes.
func assertSameChunks(t *testing.T, label string, ref, fast []Chunk) {
	t.Helper()
	if len(ref) != len(fast) {
		t.Fatalf("%s: reference emitted %d chunks, fast %d", label, len(ref), len(fast))
	}
	for i := range ref {
		if ref[i].Off != fast[i].Off {
			t.Fatalf("%s: chunk %d offset %d (reference) vs %d (fast)", label, i, ref[i].Off, fast[i].Off)
		}
		if !bytes.Equal(ref[i].Data, fast[i].Data) {
			t.Fatalf("%s: chunk %d (off %d): %d bytes (reference) vs %d bytes (fast) or content differs",
				label, i, ref[i].Off, len(ref[i].Data), len(fast[i].Data))
		}
	}
}

// compareParity runs one reference/fast pair over the same data through the
// given fragmentation and demands identical chunk sequences and terminal
// errors.
func compareParity(t *testing.T, label string, ref, fast mkChunker, p Params,
	data []byte, mk func([]byte, int64) io.Reader, seed int64) {
	t.Helper()
	cr, err := ref(mk(append([]byte(nil), data...), seed), p)
	if err != nil {
		t.Fatalf("%s: reference constructor: %v", label, err)
	}
	cf, err := fast(mk(append([]byte(nil), data...), seed), p)
	if err != nil {
		t.Fatalf("%s: fast constructor: %v", label, err)
	}
	refChunks, refErr := chunkAll(cr)
	fastChunks, fastErr := chunkAll(cf)
	if (refErr == nil) != (fastErr == nil) || (refErr != nil && refErr.Error() != fastErr.Error()) {
		t.Fatalf("%s: terminal errors differ: %v (reference) vs %v (fast)", label, refErr, fastErr)
	}
	assertSameChunks(t, label, refChunks, fastChunks)
	if got := reassemble(fastChunks); refErr == nil && !bytes.Equal(got, data) {
		t.Fatalf("%s: fast chunks do not reassemble the input", label)
	}
}

// TestChunkerParityMatrix is the differential matrix: every reference/fast
// pair × every Params corner × adversarial streams × every fragmentation
// pattern × random seeds.
func TestChunkerParityMatrix(t *testing.T) {
	const n = 192 << 10
	for _, pair := range parityPairs {
		// Axis 1: all Params corners × all fragmentations on random data
		// plus the two nastiest deterministic streams.
		for pi, p := range paramsCorners {
			for _, kind := range []string{"random", "zeros", "periodic"} {
				data := streamData(kind, int64(pi)*31+7, n)
				for _, frag := range fragmentations {
					label := fmt.Sprintf("%s/params%d/%s/%s", pair.name, pi, kind, frag.name)
					compareParity(t, label, pair.ref, pair.fast, p, data, frag.mk, int64(pi)+1)
				}
			}
		}
		// Axis 2: default params × every stream kind × several seeds and
		// lengths, including empty and the exact Min/Max edge lengths.
		pd, err := Params{ECS: 1024}.withDefaults()
		if err != nil {
			t.Fatal(err)
		}
		lengths := []int{0, 1, pd.Min - 1, pd.Min, pd.Min + 1, pd.Max, pd.Max + 1, 300_001}
		for _, kind := range streamKinds {
			for seed := int64(1); seed <= 3; seed++ {
				for _, l := range lengths {
					data := streamData(kind, seed*97, l)
					label := fmt.Sprintf("%s/%s/seed%d/len%d", pair.name, kind, seed, l)
					compareParity(t, label, pair.ref, pair.fast, Params{ECS: 1024}, data,
						fragmentations[7].mk, seed)
				}
			}
		}
	}
}

// TestChunkerParityErrorStreams extends parity to failing readers: the
// chunks emitted before the error, the final partial chunk, and the error
// itself must be identical between reference and fast paths, whether the
// reader returns data+error in one call or fails on a later call.
func TestChunkerParityErrorStreams(t *testing.T) {
	boom := errors.New("injected read failure")
	mkFail := func(d []byte, _ int64) io.Reader { return &failingReader{data: d, err: boom} }
	mkFailSameCall := func(d []byte, _ int64) io.Reader { return &dataAndErrReader{data: d, err: boom} }
	for _, pair := range parityPairs {
		for _, n := range []int{0, 1, 500, 5000, 70_000} {
			data := streamData("random", int64(n)+3, n)
			for name, mk := range map[string]func([]byte, int64) io.Reader{
				"later-call": mkFail, "same-call": mkFailSameCall,
			} {
				label := fmt.Sprintf("%s/%s/len%d", pair.name, name, n)
				compareParity(t, label, pair.ref, pair.fast, Params{ECS: 1024}, data, mk, 1)
			}
		}
	}
}

// TestFastRechunkingReproducesCuts pins the reset-at-cut invariant for the
// fast paths: small-chunking a big chunk in isolation reproduces exactly
// the cuts that small-chunking the stream from the big chunk's start
// produces — the property Bimodal/SubChunk re-chunking depends on.
func TestFastRechunkingReproducesCuts(t *testing.T) {
	data := streamData("random", 41, 1<<18)
	small := Params{ECS: 512}
	big := Params{ECS: 4096}
	for _, pair := range parityPairs {
		bigC, err := pair.fast(bytes.NewReader(data), big)
		if err != nil {
			t.Fatal(err)
		}
		bigChunks, err := chunkAll(bigC)
		if err != nil {
			t.Fatal(err)
		}
		for _, bc := range bigChunks[:3] {
			isoC, _ := pair.fast(bytes.NewReader(bc.Data), small)
			iso, _ := chunkAll(isoC)
			streamC, _ := pair.fast(bytes.NewReader(data[bc.Off:bc.Off+bc.Size()]), small)
			inStream, _ := chunkAll(streamC)
			assertSameChunks(t, pair.name+"/rechunk", inStream, iso)
		}
	}
}

// TestFastRechunkWholeChunkStable pins the stronger same-params form of
// the invariant: re-chunking any non-final emitted chunk in isolation with
// the same Params returns it whole — the hash state at a cut carries
// nothing from before the cut, so the first in-isolation cut is the
// chunk's own end.
func TestFastRechunkWholeChunkStable(t *testing.T) {
	data := streamData("random", 43, 1<<18)
	p := Params{ECS: 1024}
	for _, pair := range parityPairs {
		c, err := pair.fast(bytes.NewReader(data), p)
		if err != nil {
			t.Fatal(err)
		}
		chunks, err := chunkAll(c)
		if err != nil {
			t.Fatal(err)
		}
		for i, ch := range chunks[:len(chunks)-1] {
			iso, _ := pair.fast(bytes.NewReader(ch.Data), p)
			first, err := iso.Next()
			if err != nil {
				t.Fatalf("%s: chunk %d re-chunk: %v", pair.name, i, err)
			}
			if int64(len(first.Data)) != ch.Size() {
				t.Fatalf("%s: chunk %d (len %d) re-chunks to first cut at %d",
					pair.name, i, ch.Size(), len(first.Data))
			}
		}
	}
}

// --- golden cut vectors ----------------------------------------------------

// goldenCase is one checked-in cut-point vector: a deterministic stream
// spec plus the exact chunk lengths both implementations must produce.
type goldenCase struct {
	Name    string `json:"name"`
	Algo    string `json:"algo"` // "rabin" or "gear"
	ECS     int    `json:"ecs"`
	Min     int    `json:"min,omitempty"`
	Max     int    `json:"max,omitempty"`
	Window  int    `json:"window,omitempty"`
	Poly    uint64 `json:"poly,omitempty"`
	Stream  string `json:"stream"`
	Seed    int64  `json:"seed"`
	N       int    `json:"n"`
	CutLens []int  `json:"cut_lens"`
}

func (g goldenCase) params() Params {
	return Params{ECS: g.ECS, Min: g.Min, Max: g.Max, WindowSize: g.Window, Poly: rabin.Poly(g.Poly)}
}

// goldenSpecs enumerates the pinned configurations (CutLens filled by
// -update).
var goldenSpecs = []goldenCase{
	{Name: "rabin-default-random", Algo: "rabin", ECS: 4096, Stream: "random", Seed: 101, N: 1 << 20},
	{Name: "rabin-tight-random", Algo: "rabin", ECS: 1024, Min: 256, Max: 1536, Stream: "random", Seed: 103, N: 1 << 19},
	{Name: "rabin-periodic", Algo: "rabin", ECS: 2048, Stream: "periodic", Seed: 105, N: 1 << 19},
	{Name: "rabin-zeros", Algo: "rabin", ECS: 2048, Stream: "zeros", Seed: 0, N: 1 << 18},
	{Name: "rabin-altpoly", Algo: "rabin", ECS: 4096, Poly: 0x3DA3358B4DC175, Stream: "random", Seed: 107, N: 1 << 19},
	{Name: "gear-default-random", Algo: "gear", ECS: 4096, Stream: "random", Seed: 111, N: 1 << 20},
	{Name: "gear-tight-random", Algo: "gear", ECS: 1024, Min: 256, Max: 1536, Stream: "random", Seed: 113, N: 1 << 19},
	{Name: "gear-sparse", Algo: "gear", ECS: 2048, Stream: "sparse", Seed: 115, N: 1 << 19},
	{Name: "gear-tinyecs-clamp", Algo: "gear", ECS: 4, Min: 1, Max: 16, Window: 1, Stream: "random", Seed: 117, N: 1 << 14},
	{Name: "gear-counter", Algo: "gear", ECS: 2048, Stream: "counter", Seed: 0, N: 1 << 18},
}

const goldenPath = "testdata/golden_cuts.json"

func chunkLens(t *testing.T, mk mkChunker, data []byte, p Params) []int {
	t.Helper()
	c, err := mk(bytes.NewReader(data), p)
	if err != nil {
		t.Fatal(err)
	}
	chunks, err := chunkAll(c)
	if err != nil {
		t.Fatal(err)
	}
	lens := make([]int, len(chunks))
	for i, ch := range chunks {
		lens[i] = len(ch.Data)
	}
	return lens
}

// TestGoldenCutVectors locks the absolute cut positions: every spec's
// stream must chunk to exactly the checked-in lengths under BOTH the
// reference and the fast implementation. Run `go test -run
// TestGoldenCutVectors -update ./internal/chunker` to regenerate after an
// intentional cut-semantics change.
func TestGoldenCutVectors(t *testing.T) {
	pairFor := func(algo string) (mkChunker, mkChunker) {
		for _, pr := range parityPairs {
			if pr.name == algo {
				return pr.ref, pr.fast
			}
		}
		t.Fatalf("unknown golden algo %q", algo)
		return nil, nil
	}

	if *updateGolden {
		out := make([]goldenCase, 0, len(goldenSpecs))
		for _, spec := range goldenSpecs {
			ref, fast := pairFor(spec.Algo)
			data := streamData(spec.Stream, spec.Seed, spec.N)
			spec.CutLens = chunkLens(t, ref, data, spec.params())
			if fastLens := chunkLens(t, fast, data, spec.params()); !equalInts(spec.CutLens, fastLens) {
				t.Fatalf("%s: fast path disagrees with reference while updating golden vectors", spec.Name)
			}
			out = append(out, spec)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		buf, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden vectors to %s", len(out), goldenPath)
		return
	}

	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden vectors (run with -update to create): %v", err)
	}
	var cases []goldenCase
	if err := json.Unmarshal(buf, &cases); err != nil {
		t.Fatal(err)
	}
	if len(cases) != len(goldenSpecs) {
		t.Fatalf("golden file has %d cases, specs list %d — regenerate with -update", len(cases), len(goldenSpecs))
	}
	for _, g := range cases {
		ref, fast := pairFor(g.Algo)
		data := streamData(g.Stream, g.Seed, g.N)
		if sum := sumInts(g.CutLens); sum != len(data) {
			t.Fatalf("%s: golden lens sum to %d, stream is %d bytes", g.Name, sum, len(data))
		}
		for name, mk := range map[string]mkChunker{"reference": ref, "fast": fast} {
			if got := chunkLens(t, mk, data, g.params()); !equalInts(got, g.CutLens) {
				t.Errorf("%s: %s implementation moved a cut point: got %d chunks %v..., want %d chunks %v...",
					g.Name, name, len(got), head(got, 8), len(g.CutLens), head(g.CutLens, 8))
			}
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sumInts(a []int) int {
	s := 0
	for _, v := range a {
		s += v
	}
	return s
}

func head(a []int, n int) []int {
	if len(a) < n {
		return a
	}
	return a[:n]
}

// TestGearMaskClampInvariant pins the clamp semantics topMask documents:
// the loose mask never has more bits set than the strict one, and both
// always have at least one bit, for every ECS down to the degenerate
// minimum.
func TestGearMaskClampInvariant(t *testing.T) {
	for ecs := 1; ecs <= 1<<16; ecs *= 2 {
		strict, loose := gearMasks(Params{ECS: ecs})
		if bits.OnesCount64(loose) > bits.OnesCount64(strict) {
			t.Errorf("ECS=%d: loose mask %064b has more bits than strict %064b", ecs, loose, strict)
		}
		if bits.OnesCount64(loose) < 1 || bits.OnesCount64(strict) < 1 {
			t.Errorf("ECS=%d: a mask clamped below one bit", ecs)
		}
	}
}

// FuzzChunkerParity is the differential oracle under fuzzing: arbitrary
// data, a fuzzed Params corner and a fuzzed fragmentation pattern must
// never produce different chunk sequences between the reference and fast
// paths of either family.
func FuzzChunkerParity(f *testing.F) {
	f.Add([]byte("hello, chunked world"), uint8(0), uint8(1), int64(1))
	f.Add(streamData("random", 9, 5000), uint8(3), uint8(7), int64(2))
	f.Add(streamData("periodic", 9, 3000), uint8(8), uint8(0), int64(3))
	f.Add([]byte{}, uint8(10), uint8(4), int64(4))
	f.Fuzz(func(t *testing.T, data []byte, paramSel, fragSel uint8, seed int64) {
		if len(data) > 256<<10 {
			data = data[:256<<10]
		}
		p := paramsCorners[int(paramSel)%len(paramsCorners)]
		frag := fragmentations[int(fragSel)%len(fragmentations)]
		for _, pair := range parityPairs {
			label := fmt.Sprintf("%s/params%d/%s", pair.name, int(paramSel)%len(paramsCorners), frag.name)
			compareParity(t, label, pair.ref, pair.fast, p, data, frag.mk, seed)
		}
	})
}

// dataAndErrReader returns all its data together with the error in a
// single Read call.
type dataAndErrReader struct {
	data []byte
	err  error
}

func (r *dataAndErrReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, r.err
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	if len(r.data) == 0 {
		return n, r.err
	}
	return n, nil
}
