package chunker

import (
	"io"

	"mhdedup/internal/rabin"
)

// FastRabin is the block-processed twin of Rabin: the same sliding-window
// fingerprint, the same divisor test, the same cut points — bit-identical,
// as the conformance harness proves — restructured so the inner loop runs
// over buffered []byte slices with the slide tables hoisted into locals
// (rabin.Window.RollBlock/RollFind) instead of one readFiller.next() plus
// one Roll method call per byte.
//
// The skip-ahead mirrors FastGear's: the fingerprint at any position is a
// function of the last WindowSize bytes only, and Params validation
// guarantees Min ≥ WindowSize, so the window starts rolling at chunk index
// Min−WindowSize — everything before is copied, never hashed — and is
// exactly warm at the first checked position (len == Min).
//
// Like Rabin, the window resets at every cut, so re-chunking a stored
// region reproduces the in-stream cut points.
type FastRabin struct {
	p    Params
	mask rabin.Poly
	win  *rabin.Window
	src  *readFiller
	off  int64
	done bool
}

// NewFastRabin returns a block-processed CDC chunker over r, cut-point
// identical to NewRabin with the same parameters.
func NewFastRabin(r io.Reader, p Params) (*FastRabin, error) {
	p, err := p.withDefaults()
	if err != nil {
		return nil, err
	}
	win, err := rabin.NewWindow(p.Poly, p.WindowSize)
	if err != nil {
		return nil, err
	}
	return &FastRabin{p: p, mask: p.Mask(), win: win, src: newReadFiller(r)}, nil
}

// Next returns the next chunk, or io.EOF after the last one.
func (c *FastRabin) Next() (Chunk, error) {
	if c.done {
		return Chunk{}, c.src.finalErr()
	}
	min, max := c.p.Min, c.p.Max
	rollFrom := min - c.win.Size() // ≥ 0: Params validation enforces Min ≥ WindowSize
	c.win.Reset()
	cur := make([]byte, 0, max)
	for {
		blk := c.src.peek()
		if len(blk) == 0 {
			c.done = true
			if len(cur) > 0 {
				chunk := Chunk{Data: cur, Off: c.off}
				c.off += chunk.Size()
				return chunk, nil
			}
			return Chunk{}, c.src.finalErr()
		}
		base := len(cur) // chunk index of blk[0]
		limit := len(blk)
		if base+limit > max { // cap at the forced-cut boundary
			limit = max - base
		}
		i := 0
		cut := -1
		// Region 1 — skip: bytes before the window warm-up need no hashing.
		if base < rollFrom {
			i = rollFrom - base
			if i > limit {
				i = limit
			}
		}
		// Region 2 — warm-up: roll without testing (positions len < Min).
		if end := min - 1 - base; i < end {
			if end > limit {
				end = limit
			}
			c.win.RollBlock(blk[i:end])
			i = end
		}
		// Region 3 — search: roll with the divisor test, up to the Max cap.
		if i < limit {
			n, found := c.win.RollFind(blk[i:limit], c.mask)
			i += n
			if found {
				cut = i
			}
		}
		consumed := limit
		if cut >= 0 {
			consumed = cut
		}
		cur = append(cur, blk[:consumed]...)
		c.src.consume(consumed)
		if cut >= 0 || len(cur) >= max {
			chunk := Chunk{Data: cur, Off: c.off}
			c.off += chunk.Size()
			return chunk, nil
		}
	}
}
