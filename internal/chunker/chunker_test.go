package chunker

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomData(seed int64, n int) []byte {
	d := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(d)
	return d
}

func collect(t *testing.T, c Chunker) []Chunk {
	t.Helper()
	var out []Chunk
	for {
		ch, err := c.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if len(ch.Data) == 0 {
			t.Fatal("chunker emitted an empty chunk")
		}
		out = append(out, ch)
	}
}

func reassemble(chunks []Chunk) []byte {
	var buf bytes.Buffer
	for _, c := range chunks {
		buf.Write(c.Data)
	}
	return buf.Bytes()
}

func checkOffsets(t *testing.T, chunks []Chunk) {
	t.Helper()
	var off int64
	for i, c := range chunks {
		if c.Off != off {
			t.Fatalf("chunk %d: offset %d, want %d", i, c.Off, off)
		}
		off += c.Size()
	}
}

func TestRabinConcatenationInvariant(t *testing.T) {
	for _, n := range []int{0, 1, 100, 4096, 1 << 18} {
		data := randomData(int64(n)+1, n)
		c, err := NewRabin(bytes.NewReader(data), Params{ECS: 1024})
		if err != nil {
			t.Fatal(err)
		}
		chunks := collect(t, c)
		if got := reassemble(chunks); !bytes.Equal(got, data) {
			t.Fatalf("n=%d: reassembled %d bytes != input %d bytes", n, len(got), len(data))
		}
		checkOffsets(t, chunks)
	}
}

func TestRabinSizeBounds(t *testing.T) {
	p := Params{ECS: 1024}
	data := randomData(3, 1<<19)
	c, _ := NewRabin(bytes.NewReader(data), p)
	chunks := collect(t, c)
	pd, _ := p.withDefaults()
	for i, ch := range chunks {
		if len(ch.Data) > pd.Max {
			t.Errorf("chunk %d: size %d exceeds max %d", i, len(ch.Data), pd.Max)
		}
		if i < len(chunks)-1 && len(ch.Data) < pd.Min {
			t.Errorf("chunk %d: size %d below min %d (not final)", i, len(ch.Data), pd.Min)
		}
	}
}

func TestRabinMeanChunkSize(t *testing.T) {
	for _, ecs := range []int{512, 1024, 4096, 8192} {
		data := randomData(int64(ecs), 4<<20)
		c, _ := NewRabin(bytes.NewReader(data), Params{ECS: ecs})
		chunks := collect(t, c)
		mean := float64(len(data)) / float64(len(chunks))
		if mean < float64(ecs)/2 || mean > float64(ecs)*2 {
			t.Errorf("ECS=%d: mean chunk size %.0f outside [ECS/2, 2·ECS]", ecs, mean)
		}
	}
}

func TestRabinDeterminism(t *testing.T) {
	data := randomData(11, 1<<17)
	c1, _ := NewRabin(bytes.NewReader(data), Params{ECS: 2048})
	c2, _ := NewRabin(bytes.NewReader(data), Params{ECS: 2048})
	a, b := collect(t, c1), collect(t, c2)
	if len(a) != len(b) {
		t.Fatalf("chunk counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i].Data, b[i].Data) {
			t.Fatalf("chunk %d differs between runs", i)
		}
	}
}

func TestSplitMatchesStreaming(t *testing.T) {
	data := randomData(13, 1<<17)
	p := Params{ECS: 1024}
	c, _ := NewRabin(bytes.NewReader(data), p)
	streamed := collect(t, c)
	split, err := Split(data, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(split) {
		t.Fatalf("streamed %d chunks, Split %d", len(streamed), len(split))
	}
	for i := range split {
		if !bytes.Equal(streamed[i].Data, split[i].Data) || streamed[i].Off != split[i].Off {
			t.Fatalf("chunk %d differs between Split and streaming", i)
		}
	}
}

func TestRabinRechunkingReproducesCuts(t *testing.T) {
	// The property Bimodal/SubChunk re-chunking needs: small-chunking a
	// stored big chunk in isolation must reproduce the cuts that
	// small-chunking the stream from the big chunk's start produced.
	data := randomData(17, 1<<18)
	small := Params{ECS: 512}
	big := Params{ECS: 4096}
	bigChunks, _ := Split(data, big)
	for _, bc := range bigChunks[:3] {
		iso, _ := Split(bc.Data, small)
		inStream, _ := Split(data[bc.Off:bc.Off+bc.Size()], small)
		if len(iso) != len(inStream) {
			t.Fatalf("re-chunk count %d != in-stream count %d", len(iso), len(inStream))
		}
		for i := range iso {
			if !bytes.Equal(iso[i].Data, inStream[i].Data) {
				t.Fatalf("re-chunk cut %d differs", i)
			}
		}
	}
}

func TestRabinBoundaryShiftResilience(t *testing.T) {
	// Insert one byte near the front; most cut points downstream must
	// re-align, so the two chunk sets should share most chunk hashes. A
	// fixed-size chunker shares none (beyond luck).
	data := randomData(19, 1<<19)
	shifted := append([]byte{0x42}, data...)

	countShared := func(a, b []Chunk) int {
		set := map[string]bool{}
		for _, c := range a {
			set[string(c.Data)] = true
		}
		n := 0
		for _, c := range b {
			if set[string(c.Data)] {
				n++
			}
		}
		return n
	}

	p := Params{ECS: 1024}
	a, _ := Split(data, p)
	b, _ := Split(shifted, p)
	if shared := countShared(a, b); shared < len(a)*3/4 {
		t.Errorf("CDC: only %d/%d chunks survive a 1-byte insert", shared, len(a))
	}

	fa, _ := NewFixed(bytes.NewReader(data), 1024)
	fb, _ := NewFixed(bytes.NewReader(shifted), 1024)
	ca, cb := collect(t, fa), collect(t, fb)
	if shared := countShared(ca, cb); shared > len(ca)/10 {
		t.Errorf("fixed-size: %d/%d chunks survive — expected near-total loss", shared, len(ca))
	}
}

func TestTTTDConcatenationInvariant(t *testing.T) {
	f := func(seed int64) bool {
		n := int(seed%100_000 + 1)
		if n < 0 {
			n = -n + 1
		}
		data := randomData(seed, n)
		c, err := NewTTTD(bytes.NewReader(data), Params{ECS: 1024})
		if err != nil {
			return false
		}
		var got []byte
		for {
			ch, err := c.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return false
			}
			got = append(got, ch.Data...)
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestTTTDForcedCutsUseBackup(t *testing.T) {
	// With a tight max, forced cuts are common; TTTD should then produce
	// some chunks strictly between Min and Max that plain Rabin would have
	// pushed to Max. Verify bounds and the concat invariant under heavy
	// carry use.
	data := randomData(23, 1<<18)
	p := Params{ECS: 1024, Min: 256, Max: 1536}
	c, err := NewTTTD(bytes.NewReader(data), p)
	if err != nil {
		t.Fatal(err)
	}
	chunks := collect(t, c)
	if !bytes.Equal(reassemble(chunks), data) {
		t.Fatal("TTTD with tight max loses bytes")
	}
	checkOffsets(t, chunks)
	for i, ch := range chunks {
		if len(ch.Data) > p.Max {
			t.Errorf("chunk %d exceeds max", i)
		}
		if i < len(chunks)-1 && len(ch.Data) < p.Min {
			t.Errorf("chunk %d below min", i)
		}
	}
}

func TestTTTDMeanChunkSize(t *testing.T) {
	data := randomData(29, 2<<20)
	c, _ := NewTTTD(bytes.NewReader(data), Params{ECS: 2048})
	chunks := collect(t, c)
	mean := float64(len(data)) / float64(len(chunks))
	if mean < 1024 || mean > 4096 {
		t.Errorf("TTTD mean chunk size %.0f outside [ECS/2, 2·ECS]", mean)
	}
}

func TestFixedChunker(t *testing.T) {
	data := randomData(31, 10_000)
	c, err := NewFixed(bytes.NewReader(data), 4096)
	if err != nil {
		t.Fatal(err)
	}
	chunks := collect(t, c)
	if len(chunks) != 3 {
		t.Fatalf("got %d chunks, want 3", len(chunks))
	}
	if len(chunks[0].Data) != 4096 || len(chunks[1].Data) != 4096 || len(chunks[2].Data) != 10_000-8192 {
		t.Errorf("unexpected chunk sizes %d/%d/%d", len(chunks[0].Data), len(chunks[1].Data), len(chunks[2].Data))
	}
	if !bytes.Equal(reassemble(chunks), data) {
		t.Error("fixed chunks do not reassemble")
	}
	checkOffsets(t, chunks)
}

func TestFixedValidation(t *testing.T) {
	if _, err := NewFixed(bytes.NewReader(nil), 0); err == nil {
		t.Error("size 0 should be rejected")
	}
}

func TestEmptyInput(t *testing.T) {
	for _, mk := range []func() (Chunker, error){
		func() (Chunker, error) { return NewRabin(bytes.NewReader(nil), Params{ECS: 1024}) },
		func() (Chunker, error) { return NewTTTD(bytes.NewReader(nil), Params{ECS: 1024}) },
		func() (Chunker, error) { return NewFixed(bytes.NewReader(nil), 1024) },
	} {
		c, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Next(); err != io.EOF {
			t.Errorf("empty input: got %v, want io.EOF", err)
		}
		// And it must stay EOF.
		if _, err := c.Next(); err != io.EOF {
			t.Errorf("second Next after EOF: got %v, want io.EOF", err)
		}
	}
}

type failingReader struct {
	data []byte
	err  error
}

func (r *failingReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, r.err
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	return n, nil
}

func TestReadErrorPropagates(t *testing.T) {
	boom := errors.New("disk on fire")
	c, _ := NewRabin(&failingReader{data: randomData(1, 500), err: boom}, Params{ECS: 1024})
	// Partial data may come out as a final chunk first; eventually the
	// error must surface instead of io.EOF.
	var sawErr error
	for i := 0; i < 10; i++ {
		_, err := c.Next()
		if err != nil {
			sawErr = err
			break
		}
	}
	if !errors.Is(sawErr, boom) {
		t.Errorf("got %v, want the reader's error", sawErr)
	}
}

func TestParamsValidation(t *testing.T) {
	bad := []Params{
		{ECS: 0},
		{ECS: -5},
		{ECS: 1024, Min: 2048}, // min > ECS
		{ECS: 1024, Max: 512},  // max < ECS
		{ECS: 1024, Min: 16},   // min < window
		{ECS: 1024, Min: -1},   // negative
	}
	for _, p := range bad {
		if _, err := NewRabin(bytes.NewReader(nil), p); err == nil {
			t.Errorf("params %+v accepted, want error", p)
		}
	}
}

func TestMaskExpectedSize(t *testing.T) {
	p, _ := Params{ECS: 1024}.withDefaults()
	mask := p.Mask()
	// For ECS 1024, Min 256, the mask should encode a 2^k with k = 9
	// (ECS − Min = 768, floor log2 = 9).
	if mask != (1<<9)-1 {
		t.Errorf("mask = %#x, want %#x", uint64(mask), uint64((1<<9)-1))
	}
}

func BenchmarkRabinChunk1M(b *testing.B) {
	data := randomData(1, 1<<20)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		c, _ := NewRabin(bytes.NewReader(data), Params{ECS: 4096})
		for {
			if _, err := c.Next(); err != nil {
				break
			}
		}
	}
}

func BenchmarkTTTDChunk1M(b *testing.B) {
	data := randomData(1, 1<<20)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		c, _ := NewTTTD(bytes.NewReader(data), Params{ECS: 4096})
		for {
			if _, err := c.Next(); err != nil {
				break
			}
		}
	}
}
