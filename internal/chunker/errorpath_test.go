package chunker

// readFiller / chunker error-path contract, pinned for every chunker
// (reference, block-processed and fixed-size): a failing reader's bytes are
// consumed first — emitted as chunks, the tail as a final partial chunk —
// and then the reader's error surfaces from Next, verbatim, never masked as
// io.EOF. Two failure shapes per chunker: the reader returning data and the
// error in the SAME Read call, and a clean read followed by a bare
// (0, error) mid-stream.

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// errorPathChunkers is allChunkers plus the fixed-size chunker (which has
// its own constructor signature).
var errorPathChunkers = func() []struct {
	name string
	mk   mkChunker
} {
	fixed := struct {
		name string
		mk   mkChunker
	}{"fixed", func(r io.Reader, p Params) (Chunker, error) { return NewFixed(r, p.ECS) }}
	return append(append([]struct {
		name string
		mk   mkChunker
	}{}, allChunkers...), fixed)
}()

func TestReadErrorSurfacesAfterPartialChunkAllChunkers(t *testing.T) {
	boom := errors.New("mid-stream device failure")
	mkReaders := []struct {
		name string
		mk   func(data []byte) io.Reader
	}{
		// The error arrives on the Read call after the data is exhausted.
		{"later-call", func(d []byte) io.Reader { return &failingReader{data: d, err: boom} }},
		// The error arrives in the same Read call as the final data.
		{"same-call", func(d []byte) io.Reader { return &dataAndErrReader{data: d, err: boom} }},
	}
	for _, impl := range errorPathChunkers {
		for _, mkr := range mkReaders {
			// 1500 bytes with ECS 1024: at least one full-or-partial chunk
			// comes out before the failure point for every chunker.
			data := streamData("random", 67, 1500)
			c, err := impl.mk(mkr.mk(append([]byte(nil), data...)), Params{ECS: 1024})
			if err != nil {
				t.Fatal(err)
			}
			var got []byte
			var sawErr error
			for i := 0; i < 100; i++ {
				ch, err := c.Next()
				if err != nil {
					sawErr = err
					break
				}
				got = append(got, ch.Data...)
			}
			label := impl.name + "/" + mkr.name
			if !errors.Is(sawErr, boom) {
				t.Fatalf("%s: terminal error %v, want the reader's error (io.EOF would silently truncate)", label, sawErr)
			}
			// Every byte the reader delivered must have been emitted before
			// the error — the final partial chunk is not dropped.
			if !bytes.Equal(got, data) {
				t.Errorf("%s: emitted %d of %d delivered bytes before surfacing the error", label, len(got), len(data))
			}
			// The error must be sticky.
			if _, err := c.Next(); !errors.Is(err, boom) {
				t.Errorf("%s: second Next after failure returned %v, want the same error", label, err)
			}
		}
	}
}

// TestReadErrorImmediateAllChunkers: a reader that fails on its very first
// call (no data at all) must surface the error from the first Next.
func TestReadErrorImmediateAllChunkers(t *testing.T) {
	boom := errors.New("dead on arrival")
	for _, impl := range errorPathChunkers {
		c, err := impl.mk(&failingReader{err: boom}, Params{ECS: 1024})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Next(); !errors.Is(err, boom) {
			t.Errorf("%s: first Next returned %v, want the reader's error", impl.name, err)
		}
	}
}
