// Package lru provides a generic least-recently-used cache with an eviction
// callback.
//
// The deduplicators cache Manifests in RAM to exploit data locality; when
// the cache is full the least recently used Manifest is evicted, and — per
// the paper — a Manifest that has been set dirty by HHR must be written back
// to disk before it is freed. The eviction callback is the hook for that
// write-back.
package lru

import (
	"container/list"
	"fmt"
	"sync"
)

// Cache is an LRU cache from K to V. It is safe for concurrent use: a single
// mutex guards the recency list and the map, so N ingest sessions can share
// one manifest cache. The eviction callback is invoked with the cache lock
// held — it must not call back into the cache (the deduplicator's write-back
// callback touches only the disk and the striped hash index, never the
// cache itself).
type Cache[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	items    map[K]*list.Element
	order    *list.List // front = most recently used
	onEvict  func(K, V)

	hits, misses, evictions uint64
}

type entry[K comparable, V any] struct {
	key K
	val V
}

// New returns a cache holding at most capacity entries. onEvict, if
// non-nil, is called for each entry as it leaves the cache (by LRU pressure
// or Remove; not by Clear with discard=true). onEvict runs under the cache
// lock and must not re-enter the cache.
func New[K comparable, V any](capacity int, onEvict func(K, V)) (*Cache[K, V], error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("lru: capacity must be positive, got %d", capacity)
	}
	return &Cache[K, V]{
		capacity: capacity,
		items:    make(map[K]*list.Element, capacity),
		order:    list.New(),
		onEvict:  onEvict,
	}, nil
}

// Get returns the value for key and marks it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		return el.Value.(*entry[K, V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Peek returns the value for key without updating recency or hit counters.
func (c *Cache[K, V]) Peek(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		return el.Value.(*entry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// Put inserts or updates key, marking it most recently used, evicting the
// LRU entry if the cache is over capacity.
func (c *Cache[K, V]) Put(key K, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry[K, V]).val = val
		c.order.MoveToFront(el)
		return
	}
	el := c.order.PushFront(&entry[K, V]{key: key, val: val})
	c.items[key] = el
	if c.order.Len() > c.capacity {
		c.evictOldest()
	}
}

// Remove deletes key, invoking the eviction callback if present.
func (c *Cache[K, V]) Remove(key K) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return false
	}
	c.removeElement(el)
	return true
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Cap returns the capacity.
func (c *Cache[K, V]) Cap() int { return c.capacity }

// Stats returns hit/miss/eviction counters.
func (c *Cache[K, V]) Stats() (hits, misses, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}

// Each calls fn for every cached entry, most recently used first. fn runs
// under the cache lock: it must not mutate the cache or call back into it.
func (c *Cache[K, V]) Each(fn func(K, V)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry[K, V])
		fn(e.key, e.val)
	}
}

// Flush evicts every entry through the eviction callback (used at stream end
// to write back all dirty manifests).
func (c *Cache[K, V]) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.order.Len() > 0 {
		c.evictOldest()
	}
}

// evictOldest must be called with the lock held.
func (c *Cache[K, V]) evictOldest() {
	el := c.order.Back()
	if el != nil {
		c.removeElement(el)
		c.evictions++
	}
}

// removeElement must be called with the lock held.
func (c *Cache[K, V]) removeElement(el *list.Element) {
	e := el.Value.(*entry[K, V])
	c.order.Remove(el)
	delete(c.items, e.key)
	if c.onEvict != nil {
		c.onEvict(e.key, e.val)
	}
}
