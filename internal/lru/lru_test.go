package lru

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestBasicPutGet(t *testing.T) {
	c, err := New[string, int](3, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Errorf("Get(a) = %d,%v", v, ok)
	}
	if _, ok := c.Get("zzz"); ok {
		t.Error("Get of absent key succeeded")
	}
}

func TestEvictionOrder(t *testing.T) {
	var evicted []string
	c, _ := New[string, int](2, func(k string, _ int) { evicted = append(evicted, k) })
	c.Put("a", 1)
	c.Put("b", 2)
	c.Get("a")    // a is now MRU
	c.Put("c", 3) // evicts b
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("evicted %v, want [b]", evicted)
	}
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should have survived (was MRU)")
	}
}

func TestUpdateDoesNotEvict(t *testing.T) {
	evictions := 0
	c, _ := New[string, int](2, func(string, int) { evictions++ })
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 10) // update in place
	if evictions != 0 {
		t.Errorf("update caused %d evictions", evictions)
	}
	if v, _ := c.Get("a"); v != 10 {
		t.Errorf("updated value = %d, want 10", v)
	}
}

func TestRemove(t *testing.T) {
	var evicted []int
	c, _ := New[int, int](4, func(_ int, v int) { evicted = append(evicted, v) })
	c.Put(1, 100)
	if !c.Remove(1) {
		t.Error("Remove of present key returned false")
	}
	if c.Remove(1) {
		t.Error("Remove of absent key returned true")
	}
	if len(evicted) != 1 || evicted[0] != 100 {
		t.Errorf("eviction callback on Remove: got %v", evicted)
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d after Remove, want 0", c.Len())
	}
}

func TestFlushEvictsAllInLRUOrder(t *testing.T) {
	var order []string
	c, _ := New[string, int](10, func(k string, _ int) { order = append(order, k) })
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	c.Get("a") // a most recent
	c.Flush()
	if c.Len() != 0 {
		t.Errorf("Len after Flush = %d", c.Len())
	}
	want := []string{"b", "c", "a"} // LRU first
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("flush order %v, want %v", order, want)
		}
	}
}

func TestPeekDoesNotTouchRecency(t *testing.T) {
	c, _ := New[string, int](2, nil)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Peek("a")   // must NOT refresh a
	c.Put("c", 3) // evicts a (still LRU)
	if _, ok := c.Peek("a"); ok {
		t.Error("a survived eviction despite only being Peeked")
	}
	if _, ok := c.Peek("b"); !ok {
		t.Error("b should still be cached")
	}
}

func TestStats(t *testing.T) {
	c, _ := New[int, int](2, nil)
	c.Put(1, 1)
	c.Get(1)
	c.Get(2)
	c.Put(2, 2)
	c.Put(3, 3) // evicts 1
	hits, misses, evictions := c.Stats()
	if hits != 1 || misses != 1 || evictions != 1 {
		t.Errorf("stats = %d/%d/%d, want 1/1/1", hits, misses, evictions)
	}
}

func TestEach(t *testing.T) {
	c, _ := New[int, int](5, nil)
	for i := 1; i <= 3; i++ {
		c.Put(i, i*10)
	}
	var keys []int
	c.Each(func(k, v int) {
		if v != k*10 {
			t.Errorf("Each saw %d -> %d", k, v)
		}
		keys = append(keys, k)
	})
	// MRU first: 3, 2, 1.
	if len(keys) != 3 || keys[0] != 3 || keys[2] != 1 {
		t.Errorf("Each order = %v, want [3 2 1]", keys)
	}
}

func TestValidation(t *testing.T) {
	if _, err := New[int, int](0, nil); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := New[int, int](-1, nil); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestNeverExceedsCapacity(t *testing.T) {
	c, _ := New[uint16, uint16](7, nil)
	f := func(keys []uint16) bool {
		for _, k := range keys {
			c.Put(k, k)
			if c.Len() > c.Cap() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLastWriterWins(t *testing.T) {
	c, _ := New[uint8, int](256, nil)
	f := func(key uint8, a, b int) bool {
		c.Put(key, a)
		c.Put(key, b)
		v, ok := c.Get(key)
		return ok && v == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentAccess hammers one cache from 8 goroutines mixing Put, Get,
// Peek, Remove, Each, Stats and Len (run under -race). Each goroutine also
// owns a private key range whose writes it must never lose; the capacity
// invariant must hold throughout.
func TestConcurrentAccess(t *testing.T) {
	const (
		goroutines = 8
		perG       = 500
		capacity   = 64
	)
	c, err := New[int, int](capacity, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := g * 1_000_000
			for i := 0; i < perG; i++ {
				k := base + i
				c.Put(k, k*2)
				// Immediately readable (eviction may strike between ops for
				// OTHER keys, but a just-Put key is MRU — it can only be
				// evicted by concurrent Puts filling the whole cache, so
				// tolerate a miss but never a wrong value).
				if v, ok := c.Get(k); ok && v != k*2 {
					t.Errorf("g%d: Get(%d) = %d, want %d", g, k, v, k*2)
					return
				}
				if v, ok := c.Peek(k); ok && v != k*2 {
					t.Errorf("g%d: Peek(%d) = %d, want %d", g, k, v, k*2)
					return
				}
				if n := c.Len(); n > capacity {
					t.Errorf("g%d: Len %d exceeds capacity %d", g, n, capacity)
					return
				}
				switch i % 8 {
				case 3:
					c.Remove(k)
				case 5:
					c.Each(func(k, v int) {
						if v != k*2 {
							t.Errorf("Each saw %d -> %d", k, v)
						}
					})
				case 7:
					c.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > capacity {
		t.Errorf("final Len %d exceeds capacity %d", n, capacity)
	}
}

// TestConcurrentEvictionCallback: the onEvict callback runs under the cache
// lock; concurrent Puts far beyond capacity must fire it exactly
// (inserts − capacity) times with no double- or dropped evictions, and the
// callback must see each evicted key once.
func TestConcurrentEvictionCallback(t *testing.T) {
	const (
		goroutines = 8
		perG       = 300
		capacity   = 16
	)
	seen := make(map[int]int)
	var mu sync.Mutex
	c, err := New[int, int](capacity, func(k, _ int) {
		// Called with the cache lock held — do NOT touch the cache here,
		// only private state (mirrors how the dedup engine's write-back
		// callback touches the store, never the cache).
		mu.Lock()
		seen[k]++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Put(g*1_000_000+i, i)
			}
		}(g)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	var evictions int
	for k, n := range seen {
		if n != 1 {
			t.Errorf("key %d evicted %d times", k, n)
		}
		evictions += n
	}
	if want := goroutines*perG - capacity; evictions != want {
		t.Errorf("evictions = %d, want %d (every insert beyond capacity)", evictions, want)
	}
}
