package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"mhdedup/internal/chunker"
	"mhdedup/internal/hashutil"
)

func smallConfig() Config {
	cfg := Default()
	cfg.Machines = 4
	cfg.Days = 4
	cfg.SnapshotBytes = 1 << 20
	cfg.EditsPerDay = 10
	cfg.EditBytes = 8 << 10
	return cfg
}

func readAll(t *testing.T, d *Dataset, name string) []byte {
	t.Helper()
	r, err := d.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestPoolFillConsistency(t *testing.T) {
	p := pool{id: 42}
	whole := make([]byte, 200_000)
	p.fill(0, whole)
	f := func(off uint32, n uint16) bool {
		o := int64(off) % 150_000
		ln := int64(n) % 50_000
		part := make([]byte, ln)
		p.fill(o, part)
		return bytes.Equal(part, whole[o:o+ln])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPoolsDiffer(t *testing.T) {
	a := make([]byte, 4096)
	b := make([]byte, 4096)
	pool{id: 1}.fill(0, a)
	pool{id: 2}.fill(0, b)
	if bytes.Equal(a, b) {
		t.Error("distinct pools produced identical content")
	}
	pool{id: 1}.fill(4096, b)
	if bytes.Equal(a, b) {
		t.Error("distinct offsets produced identical content")
	}
}

func TestDatasetDeterminism(t *testing.T) {
	d1, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	d2, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	f1, f2 := d1.Files(), d2.Files()
	if len(f1) != len(f2) {
		t.Fatalf("file counts differ: %d vs %d", len(f1), len(f2))
	}
	for i := range f1 {
		if f1[i].Name != f2[i].Name || f1[i].Size != f2[i].Size {
			t.Fatalf("file %d differs: %+v vs %+v", i, f1[i], f2[i])
		}
	}
	// Byte-identical content for a few files.
	for _, name := range []string{f1[0].Name, f1[len(f1)/2].Name, f1[len(f1)-1].Name} {
		if !bytes.Equal(readAll(t, d1, name), readAll(t, d2, name)) {
			t.Fatalf("file %s differs between identically-configured datasets", name)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	cfg := smallConfig()
	d1, _ := New(cfg)
	cfg.Seed = 999
	d2, _ := New(cfg)
	n1, n2 := d1.Files()[0].Name, d2.Files()[0].Name
	if bytes.Equal(readAll(t, d1, n1), readAll(t, d2, n2)) {
		t.Error("different seeds produced identical content")
	}
}

func TestFileSizesMatchStreams(t *testing.T) {
	d, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	err = d.EachFile(func(info FileInfo, r io.Reader) error {
		n, err := io.Copy(io.Discard, r)
		if err != nil {
			return err
		}
		if n != info.Size {
			t.Errorf("%s: streamed %d bytes, Size says %d", info.Name, n, info.Size)
		}
		total += n
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != d.TotalBytes() {
		t.Errorf("TotalBytes = %d, streamed %d", d.TotalBytes(), total)
	}
}

func TestOpenMatchesEachFile(t *testing.T) {
	d, _ := New(smallConfig())
	want := map[string]hashutil.Sum{}
	d.EachFile(func(info FileInfo, r io.Reader) error {
		data, _ := io.ReadAll(r)
		want[info.Name] = hashutil.SumBytes(data)
		return nil
	})
	for name, sum := range want {
		if hashutil.SumBytes(readAll(t, d, name)) != sum {
			t.Errorf("Open(%s) differs from EachFile content", name)
		}
	}
	if _, err := d.Open("nope"); err == nil {
		t.Error("Open of unknown file succeeded")
	}
}

// chunkSet returns the set of CDC chunk hashes of data.
func chunkSet(t *testing.T, data []byte) map[hashutil.Sum]bool {
	t.Helper()
	chunks, err := chunker.Split(data, chunker.Params{ECS: 4096})
	if err != nil {
		t.Fatal(err)
	}
	set := make(map[hashutil.Sum]bool, len(chunks))
	for _, c := range chunks {
		set[hashutil.SumBytes(c.Data)] = true
	}
	return set
}

func sharedFraction(a, b map[hashutil.Sum]bool) float64 {
	if len(a) == 0 {
		return 0
	}
	n := 0
	for h := range a {
		if b[h] {
			n++
		}
	}
	return float64(n) / float64(len(a))
}

func TestTemporalDuplication(t *testing.T) {
	// Consecutive days of one machine must be mostly identical but not
	// entirely.
	d, _ := New(smallConfig())
	day0 := chunkSet(t, readAll(t, d, "m00/d00"))
	day1 := chunkSet(t, readAll(t, d, "m00/d01"))
	frac := sharedFraction(day0, day1)
	if frac < 0.5 {
		t.Errorf("day0→day1 shared chunk fraction %.2f, want >= 0.5 (backup-like)", frac)
	}
	if frac > 0.999 {
		t.Error("day1 identical to day0: mutations did not apply")
	}
}

func TestCrossMachineDuplication(t *testing.T) {
	cfg := smallConfig()
	cfg.Machines = 8 // machines 0..3 windows, 4..5 linux, 6 linux, 7 mac per 4:2:1
	d, _ := New(cfg)
	// Two Windows machines share OS content.
	m0 := chunkSet(t, readAll(t, d, "m00/d00"))
	m1 := chunkSet(t, readAll(t, d, "m01/d00"))
	if frac := sharedFraction(m0, m1); frac < 0.3 {
		t.Errorf("same-OS machines share %.2f of chunks, want >= 0.3", frac)
	}
	// A Windows and the Mac machine share almost nothing.
	m7 := chunkSet(t, readAll(t, d, "m07/d00"))
	if frac := sharedFraction(m0, m7); frac > 0.05 {
		t.Errorf("cross-OS machines share %.2f of chunks, want near 0", frac)
	}
}

func TestMachineOSDistribution(t *testing.T) {
	counts := map[OSKind]int{}
	for m := 0; m < 14; m++ {
		counts[machineOS(m, 14)]++
	}
	if counts[Windows] == 0 || counts[Linux] == 0 || counts[Mac] == 0 {
		t.Errorf("OS mix missing a kind: %v", counts)
	}
	if counts[Windows] <= counts[Linux] || counts[Linux] <= counts[Mac] {
		t.Errorf("OS mix should be windows > linux > mac: %v", counts)
	}
	if Windows.String() != "windows" || OSKind(9).String() == "" {
		t.Error("OSKind names wrong")
	}
}

func TestSnapshotSplitting(t *testing.T) {
	cfg := smallConfig()
	whole, _ := New(cfg)
	cfg.MaxFileBytes = 256 << 10
	split, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every part obeys the limit.
	var m0d0 []string
	for _, f := range split.Files() {
		if f.Size > cfg.MaxFileBytes {
			t.Errorf("%s: %d bytes exceeds limit %d", f.Name, f.Size, cfg.MaxFileBytes)
		}
		if strings.HasPrefix(f.Name, "m00/d00/") {
			m0d0 = append(m0d0, f.Name)
		}
	}
	if len(m0d0) < 2 {
		t.Fatalf("snapshot not split: parts = %v", m0d0)
	}
	// Concatenated parts equal the unsplit snapshot.
	var concat bytes.Buffer
	for _, name := range m0d0 {
		concat.Write(readAll(t, split, name))
	}
	if !bytes.Equal(concat.Bytes(), readAll(t, whole, "m00/d00")) {
		t.Error("split parts do not concatenate to the whole snapshot")
	}
}

func TestSnapshotSizesDriftWithEdits(t *testing.T) {
	// Inserts and deletes change the size; sizes across days must not all
	// be equal (that would mean only in-place overwrites, never shifts).
	d, _ := New(smallConfig())
	sizes := map[int64]bool{}
	for _, f := range d.Files() {
		if f.Machine == 0 {
			sizes[f.Size] = true
		}
	}
	if len(sizes) < 2 {
		t.Error("snapshot sizes never change: no inserts/deletes applied")
	}
}

func TestProcessingOrder(t *testing.T) {
	d, _ := New(smallConfig())
	files := d.Files()
	for i := 1; i < len(files); i++ {
		prev, cur := files[i-1], files[i]
		if cur.Machine < prev.Machine ||
			(cur.Machine == prev.Machine && cur.Day < prev.Day) {
			t.Fatalf("files out of order: %s before %s", prev.Name, cur.Name)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Machines = 0 },
		func(c *Config) { c.Days = -1 },
		func(c *Config) { c.SnapshotBytes = 1024 },
		func(c *Config) { c.SharedFraction = 1.5 },
		func(c *Config) { c.SharedFraction = -0.1 },
		func(c *Config) { c.EditsPerDay = -1 },
		func(c *Config) { c.EditBytes = 0 },
		func(c *Config) { c.MaxFileBytes = -1 },
	}
	for i, mutate := range bad {
		cfg := Default()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestDefaultConfigBuilds(t *testing.T) {
	if testing.Short() {
		t.Skip("default dataset is ~1.5 GiB of logical content")
	}
	d, err := New(Default())
	if err != nil {
		t.Fatal(err)
	}
	if n := len(d.Files()); n != 14*14 {
		t.Errorf("files = %d, want 196", n)
	}
	if d.TotalBytes() < 14*14*4<<20 {
		t.Errorf("TotalBytes = %d, implausibly small", d.TotalBytes())
	}
}

func TestDuplicationLevelSupportsPaperDER(t *testing.T) {
	// The dataset must contain roughly 4× duplication (paper's data-only
	// DER ≈ 4.15). Estimate with a simple exact-chunk-hash dedup.
	d, _ := New(smallConfig())
	seen := map[hashutil.Sum]bool{}
	var input, unique int64
	err := d.EachFile(func(info FileInfo, r io.Reader) error {
		data, err := io.ReadAll(r)
		if err != nil {
			return err
		}
		chunks, err := chunker.Split(data, chunker.Params{ECS: 4096})
		if err != nil {
			return err
		}
		for _, c := range chunks {
			input += c.Size()
			h := hashutil.SumBytes(c.Data)
			if !seen[h] {
				seen[h] = true
				unique += c.Size()
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	der := float64(input) / float64(unique)
	if der < 2 || der > 12 {
		t.Errorf("dataset DER = %.2f, want within [2,12] (paper ≈ 4)", der)
	}
	t.Logf("small-config data-only DER ≈ %.2f", der)
}

func TestCharacterize(t *testing.T) {
	d, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, err := d.Characterize(4096)
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalBytes != d.TotalBytes() {
		t.Errorf("characterized %d bytes, dataset has %d", c.TotalBytes, d.TotalBytes())
	}
	if c.UniqueBytes+c.DupBytes != c.TotalBytes {
		t.Error("unique + dup != total")
	}
	if der := c.DataOnlyDER(); der < 2 || der > 12 {
		t.Errorf("DER estimate %.2f out of plausible range", der)
	}
	if c.DupSlices == 0 || c.DAD() <= 0 {
		t.Error("no duplication structure detected")
	}
	if c.String() == "" {
		t.Error("empty String()")
	}
	// Smaller ECS finds at least as many duplicate bytes.
	c2, err := d.Characterize(1024)
	if err != nil {
		t.Fatal(err)
	}
	if c2.DupBytes < c.DupBytes {
		t.Errorf("ECS 1024 found %d dup bytes < ECS 4096's %d", c2.DupBytes, c.DupBytes)
	}
}

func TestCharacterizeEmptyDataset(t *testing.T) {
	var c Characteristics
	if c.DataOnlyDER() != 0 || c.DAD() != 0 {
		t.Error("zero Characteristics should not divide by zero")
	}
}
