package trace

import (
	"fmt"
	"io"
	"math/rand"
)

// OSKind labels the operating system family of a simulated machine.
// Machines of the same kind share OS/application content, which is the
// cross-machine duplication source.
type OSKind int

const (
	Windows OSKind = iota
	Linux
	Mac
	numOSKinds
)

// String returns the OS name.
func (k OSKind) String() string {
	switch k {
	case Windows:
		return "windows"
	case Linux:
		return "linux"
	case Mac:
		return "mac"
	default:
		return fmt.Sprintf("os(%d)", int(k))
	}
}

// Config parameterizes a synthetic backup dataset. The zero value is not
// usable; start from Default() and override.
type Config struct {
	// Machines is the number of simulated PCs (the paper used 14).
	Machines int
	// Days is the number of daily snapshots per machine (the paper's trace
	// spans two weeks).
	Days int
	// SnapshotBytes is the approximate size of one machine's disk image.
	SnapshotBytes int64
	// SharedFraction is the fraction of a fresh image drawn from the
	// machine's OS pool (shared with same-OS machines); the rest is unique.
	SharedFraction float64
	// EditsPerDay is the number of localized mutations applied between
	// consecutive snapshots. Together with EditBytes it sets the daily
	// change rate and the duplicate-slice length (DAD).
	EditsPerDay int
	// EditBytes is the mean size of one mutation.
	EditBytes int64
	// HotspotFraction is the fraction of each day's edits that rewrite a
	// fixed set of per-machine positions (in place, fresh content) —
	// modeling logs, databases and profiles that real disk images rewrite
	// at the same sites every day. Recurring change sites are what let
	// MHD's EdgeHash amortize HHR across backup generations.
	HotspotFraction float64
	// MaxFileBytes, when positive, splits each snapshot into input files of
	// at most this size; zero means one file per snapshot.
	MaxFileBytes int64
	// Seed makes the whole dataset reproducible.
	Seed int64
}

// Default returns the laptop-scaled configuration used by the experiment
// harness: 14 machines × 14 days, tuned so that the data-only DER is close
// to the paper's ≈4.15 and the DAD falls in the paper's 90–220 KB band.
func Default() Config {
	return Config{
		Machines:        14,
		Days:            14,
		SnapshotBytes:   8 << 20,
		SharedFraction:  0.6,
		EditsPerDay:     40,
		EditBytes:       48 << 10,
		HotspotFraction: 0.5,
		MaxFileBytes:    0,
		Seed:            1,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Machines <= 0:
		return fmt.Errorf("trace: Machines must be positive")
	case c.Days <= 0:
		return fmt.Errorf("trace: Days must be positive")
	case c.SnapshotBytes < 1<<16:
		return fmt.Errorf("trace: SnapshotBytes must be at least 64 KiB")
	case c.SharedFraction < 0 || c.SharedFraction > 1:
		return fmt.Errorf("trace: SharedFraction must be in [0,1]")
	case c.EditsPerDay < 0:
		return fmt.Errorf("trace: EditsPerDay must be non-negative")
	case c.EditBytes <= 0:
		return fmt.Errorf("trace: EditBytes must be positive")
	case c.HotspotFraction < 0 || c.HotspotFraction > 1:
		return fmt.Errorf("trace: HotspotFraction must be in [0,1]")
	case c.MaxFileBytes < 0:
		return fmt.Errorf("trace: MaxFileBytes must be non-negative")
	}
	return nil
}

// extent references n bytes of a pool starting at off.
type extent struct {
	pool uint64
	off  int64
	n    int64
}

// FileInfo describes one input file of the dataset.
type FileInfo struct {
	// Name is "m<machine>/d<day>" with an optional "/p<part>" suffix when
	// snapshots are split.
	Name string
	// Machine and Day locate the snapshot this file belongs to.
	Machine, Day int
	// Size is the exact file size in bytes.
	Size int64

	exts []extent
}

// Dataset is a fully specified synthetic workload: an ordered list of input
// files whose contents can be streamed any number of times.
type Dataset struct {
	cfg    Config
	files  []FileInfo
	byName map[string]int
	total  int64
}

// machineOS assigns OS kinds with the mixed population the paper describes
// (a majority of Windows machines, some Linux, a couple of Macs).
func machineOS(machine, total int) OSKind {
	// Proportions 4:2:1 across windows/linux/mac.
	r := machine * 7 / total
	switch {
	case r < 4:
		return Windows
	case r < 6:
		return Linux
	default:
		return Mac
	}
}

// Pool ID namespaces.
const (
	osPoolBase      = 1 << 32
	machinePoolBase = 2 << 32
)

// New builds the dataset: it simulates every machine's daily snapshots and
// records each as a list of pool extents. Building is cheap (no content is
// generated); bytes are produced lazily by Open/EachFile.
func New(cfg Config) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Dataset{cfg: cfg, byName: make(map[string]int)}
	for m := 0; m < cfg.Machines; m++ {
		os := machineOS(m, cfg.Machines)
		state := newMachine(cfg, m, os)
		for day := 0; day < cfg.Days; day++ {
			if day > 0 {
				state.mutate(day)
			}
			d.addSnapshot(m, day, state.snapshot())
		}
	}
	for _, f := range d.files {
		d.total += f.Size
	}
	return d, nil
}

// addSnapshot splits a snapshot's extents into files per MaxFileBytes and
// registers them.
func (d *Dataset) addSnapshot(machine, day int, exts []extent) {
	limit := d.cfg.MaxFileBytes
	var parts [][]extent
	if limit <= 0 {
		parts = [][]extent{exts}
	} else {
		var cur []extent
		var curBytes int64
		for _, e := range exts {
			for e.n > 0 {
				room := limit - curBytes
				take := e.n
				if take > room {
					take = room
				}
				cur = append(cur, extent{pool: e.pool, off: e.off, n: take})
				curBytes += take
				e.off += take
				e.n -= take
				if curBytes == limit {
					parts = append(parts, cur)
					cur, curBytes = nil, 0
				}
			}
		}
		if len(cur) > 0 {
			parts = append(parts, cur)
		}
	}
	for p, part := range parts {
		name := fmt.Sprintf("m%02d/d%02d", machine, day)
		if len(parts) > 1 {
			name = fmt.Sprintf("%s/p%03d", name, p)
		}
		info := FileInfo{Name: name, Machine: machine, Day: day, exts: part}
		for _, e := range part {
			info.Size += e.n
		}
		d.byName[name] = len(d.files)
		d.files = append(d.files, info)
	}
}

// Files returns the input files in processing order (machine-major,
// day-minor — each machine's backups arrive day by day, interleaved
// machine by machine as the paper's group of PCs would be backed up).
func (d *Dataset) Files() []FileInfo {
	return d.files
}

// TotalBytes returns the exact total input size.
func (d *Dataset) TotalBytes() int64 { return d.total }

// Config returns the configuration the dataset was built from.
func (d *Dataset) Config() Config { return d.cfg }

// Open returns a reader streaming the named file's content. The same name
// always yields identical bytes.
func (d *Dataset) Open(name string) (io.Reader, error) {
	i, ok := d.byName[name]
	if !ok {
		return nil, fmt.Errorf("trace: unknown file %q", name)
	}
	return newExtentReader(d.files[i].exts), nil
}

// EachFile streams every file in order through fn, stopping at the first
// error.
func (d *Dataset) EachFile(fn func(info FileInfo, r io.Reader) error) error {
	for _, f := range d.files {
		if err := fn(f, newExtentReader(f.exts)); err != nil {
			return err
		}
	}
	return nil
}

// extentReader streams the bytes referenced by a list of extents.
type extentReader struct {
	exts []extent
	cur  int
	pos  int64 // within exts[cur]
}

func newExtentReader(exts []extent) *extentReader {
	return &extentReader{exts: exts}
}

// Read implements io.Reader.
func (r *extentReader) Read(p []byte) (int, error) {
	for r.cur < len(r.exts) && r.pos == r.exts[r.cur].n {
		r.cur++
		r.pos = 0
	}
	if r.cur >= len(r.exts) {
		return 0, io.EOF
	}
	e := r.exts[r.cur]
	n := e.n - r.pos
	if n > int64(len(p)) {
		n = int64(len(p))
	}
	pool{id: e.pool}.fill(e.off+r.pos, p[:n])
	r.pos += n
	return int(n), nil
}

// machine evolves one machine's disk image from day to day.
type machine struct {
	cfg      Config
	index    int
	os       OSKind
	exts     []extent
	uniqueID uint64
	freshOff int64
	// hotspots are the machine's recurring change sites: fixed positions
	// and sizes rewritten (with fresh content) every day.
	hotspots []hotspot
}

type hotspot struct {
	pos  int64
	size int64
}

func newMachine(cfg Config, index int, os OSKind) *machine {
	m := &machine{
		cfg:      cfg,
		index:    index,
		os:       os,
		uniqueID: machinePoolBase + uint64(cfg.Seed)<<16 + uint64(index),
	}
	m.buildDayZero()
	m.placeHotspots()
	return m
}

// placeHotspots samples the machine's recurring change sites. Their count
// tracks HotspotFraction·EditsPerDay so that each site is rewritten about
// once per day.
func (m *machine) placeHotspots() {
	n := int(float64(m.cfg.EditsPerDay) * m.cfg.HotspotFraction)
	if n == 0 {
		return
	}
	rng := rand.New(rand.NewSource(m.cfg.Seed<<16 ^ int64(0x7057+m.index)))
	total := m.totalBytes()
	for i := 0; i < n; i++ {
		m.hotspots = append(m.hotspots, hotspot{
			pos:  rng.Int63n(total),
			size: m.cfg.EditBytes/2 + rng.Int63n(m.cfg.EditBytes),
		})
	}
}

// buildDayZero interleaves OS-pool extents (identical layout for all
// machines of the same OS, so they deduplicate against each other) with
// unique extents, honoring SharedFraction.
func (m *machine) buildDayZero() {
	osPool := osPoolBase + uint64(m.cfg.Seed)<<16 + uint64(m.os)
	// The OS layout RNG is keyed by OS kind only: every same-OS machine
	// walks the OS pool identically.
	layout := rand.New(rand.NewSource(m.cfg.Seed<<8 ^ int64(m.os)))
	perso := rand.New(rand.NewSource(m.cfg.Seed<<8 ^ int64(0x1000+m.index)))
	var osOff, total int64
	f := m.cfg.SharedFraction
	for total < m.cfg.SnapshotBytes {
		osLen := 256<<10 + layout.Int63n(768<<10) // 256 KiB – 1 MiB OS extent
		if f <= 0 {
			// No shared content at all: the whole image is drawn from the
			// machine's private pool, so different machines share nothing
			// (the concurrency stress test depends on this disjointness).
			m.exts = append(m.exts, m.fresh(osLen))
			total += osLen
			continue
		}
		m.exts = append(m.exts, extent{pool: osPool, off: osOff, n: osLen})
		osOff += osLen
		total += osLen
		if f < 1 {
			uniqLen := int64(float64(osLen) * (1 - f) / f)
			// Jitter the unique extent ±25% so machines differ in layout.
			if uniqLen > 4 {
				uniqLen += perso.Int63n(uniqLen/2+1) - uniqLen/4
			}
			if uniqLen > 0 {
				m.exts = append(m.exts, m.fresh(uniqLen))
				total += uniqLen
			}
		}
	}
}

// fresh allocates a never-before-used unique extent of n bytes.
func (m *machine) fresh(n int64) extent {
	e := extent{pool: m.uniqueID, off: m.freshOff, n: n}
	m.freshOff += n
	return e
}

// totalBytes returns the current image size.
func (m *machine) totalBytes() int64 {
	var t int64
	for _, e := range m.exts {
		t += e.n
	}
	return t
}

// mutate applies one day's worth of edits: overwrites (60%), insertions
// (25%) and deletions (15%), each at a random position with size around
// EditBytes.
func (m *machine) mutate(day int) {
	rng := rand.New(rand.NewSource(m.cfg.Seed<<20 ^ int64(m.index)<<8 ^ int64(day)))
	// Recurring change sites first: in-place rewrites at fixed positions.
	for _, h := range m.hotspots {
		total := m.totalBytes()
		if total == 0 {
			break
		}
		pos := h.pos
		if pos >= total {
			pos = total - 1
		}
		m.overwrite(pos, h.size)
	}
	// Then this day's scattered edits at fresh random positions.
	scattered := m.cfg.EditsPerDay - len(m.hotspots)
	for i := 0; i < scattered; i++ {
		total := m.totalBytes()
		if total == 0 {
			m.exts = append(m.exts, m.fresh(m.cfg.EditBytes))
			continue
		}
		size := m.cfg.EditBytes/2 + rng.Int63n(m.cfg.EditBytes)
		pos := rng.Int63n(total)
		switch p := rng.Float64(); {
		case p < 0.60:
			m.overwrite(pos, size)
		case p < 0.85:
			m.insert(pos, size)
		default:
			m.delete(pos, size)
		}
	}
	m.coalesce()
}

// splitAt ensures an extent boundary at byte position pos and returns the
// index of the extent that starts there (== len(exts) if pos is the end).
func (m *machine) splitAt(pos int64) int {
	var acc int64
	for i, e := range m.exts {
		if pos == acc {
			return i
		}
		if pos < acc+e.n {
			in := pos - acc
			tail := extent{pool: e.pool, off: e.off + in, n: e.n - in}
			m.exts[i].n = in
			m.exts = append(m.exts[:i+1], append([]extent{tail}, m.exts[i+1:]...)...)
			return i + 1
		}
		acc += e.n
	}
	return len(m.exts)
}

func (m *machine) overwrite(pos, size int64) {
	if total := m.totalBytes(); pos+size > total {
		size = total - pos
	}
	if size <= 0 {
		return
	}
	i := m.splitAt(pos)
	j := m.splitAt(pos + size)
	repl := append([]extent{m.fresh(size)}, m.exts[j:]...)
	m.exts = append(m.exts[:i], repl...)
}

func (m *machine) insert(pos, size int64) {
	i := m.splitAt(pos)
	rest := append([]extent{m.fresh(size)}, m.exts[i:]...)
	m.exts = append(m.exts[:i], rest...)
	// Hotspots track content, not disk offsets: an insertion before a
	// recurring change site shifts the site.
	for j := range m.hotspots {
		if m.hotspots[j].pos >= pos {
			m.hotspots[j].pos += size
		}
	}
}

func (m *machine) delete(pos, size int64) {
	if total := m.totalBytes(); pos+size > total {
		size = total - pos
	}
	if size <= 0 {
		return
	}
	i := m.splitAt(pos)
	j := m.splitAt(pos + size)
	m.exts = append(m.exts[:i], m.exts[j:]...)
	for k := range m.hotspots {
		switch {
		case m.hotspots[k].pos >= pos+size:
			m.hotspots[k].pos -= size
		case m.hotspots[k].pos > pos:
			m.hotspots[k].pos = pos
		}
	}
}

// coalesce merges adjacent extents that continue the same pool range,
// keeping the extent list compact across many days of edits.
func (m *machine) coalesce() {
	out := m.exts[:0]
	for _, e := range m.exts {
		if e.n == 0 {
			continue
		}
		if n := len(out); n > 0 {
			last := &out[n-1]
			if last.pool == e.pool && last.off+last.n == e.off {
				last.n += e.n
				continue
			}
		}
		out = append(out, e)
	}
	m.exts = out
}

// snapshot returns a copy of the current extent list.
func (m *machine) snapshot() []extent {
	return append([]extent(nil), m.exts...)
}
