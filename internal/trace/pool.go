// Package trace generates synthetic disk-image backup workloads.
//
// The paper evaluates on 1.0 TB of disk-image backups of 14 PCs (Windows,
// Linux and Mac) taken over two weeks. That trace is not available, so this
// package synthesizes streams with the same *duplication structure*, which
// is the only property the deduplication algorithms can observe:
//
//   - machines running the same OS share large, identical OS/application
//     regions (cross-machine duplication);
//   - consecutive daily snapshots of one machine are near-identical, with a
//     bounded number of localized edits per day (temporal duplication —
//     this is what sets the Duplication Aggregation Degree, Fig 10(a));
//   - edits include insertions and deletions, which shift all following
//     bytes and exercise the content-defined chunkers' boundary resilience;
//   - unique per-machine data never repeats.
//
// Content is produced from deterministic "pools": unbounded pseudo-random
// byte spaces addressed by (pool ID, offset). A snapshot is a list of
// extents referencing pool ranges, so identical logical data is
// byte-identical wherever it appears, generation is streaming (no snapshot
// is ever materialized whole), and the whole dataset is reproducible from
// one seed.
package trace

import "encoding/binary"

// poolBlockSize is the granularity of pool content generation. Extent
// reads materialize only the blocks they overlap.
const poolBlockSize = 1 << 16

// pool is an unbounded deterministic byte space. Byte i of the pool depends
// only on (id, i).
type pool struct {
	id uint64
}

// fill writes pool bytes [off, off+len(dst)) into dst.
func (p pool) fill(off int64, dst []byte) {
	for len(dst) > 0 {
		blockIdx := off / poolBlockSize
		inBlock := off % poolBlockSize
		n := int64(poolBlockSize - inBlock)
		if n > int64(len(dst)) {
			n = int64(len(dst))
		}
		p.fillBlockRange(blockIdx, inBlock, dst[:n])
		dst = dst[n:]
		off += n
	}
}

// fillBlockRange writes bytes [inBlock, inBlock+len(dst)) of the given
// block. The block's content is a splitmix64 stream seeded by (id, block);
// word w of the block is mix64(base + w·gamma), so any offset is reachable
// in O(1).
func (p pool) fillBlockRange(block, inBlock int64, dst []byte) {
	const gamma = 0x9E3779B97F4A7C15
	base := mix64(p.id ^ mix64(uint64(block)+gamma))
	var word [8]byte
	w := uint64(inBlock / 8)
	pos := 0
	// Partial first word.
	if rem := inBlock % 8; rem != 0 {
		binary.LittleEndian.PutUint64(word[:], mix64(base+(w+1)*gamma))
		pos += copy(dst, word[rem:])
		w++
	}
	for pos < len(dst) {
		binary.LittleEndian.PutUint64(word[:], mix64(base+(w+1)*gamma))
		pos += copy(dst[pos:], word[:])
		w++
	}
}

// mix64 is the splitmix64 finalizer: a cheap, high-quality 64-bit mixer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
