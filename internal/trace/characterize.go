package trace

import (
	"fmt"
	"io"

	"mhdedup/internal/chunker"
	"mhdedup/internal/hashutil"
)

// Characteristics summarizes a dataset's duplication structure the way the
// paper's §V-D characterizes its test data: how much of the stream is
// duplicate at a given chunking granularity, and how concentrated the
// duplication is (DAD).
type Characteristics struct {
	// ECS is the chunk size the estimate was computed at.
	ECS int
	// TotalBytes and UniqueBytes give the exact-chunk-hash dedup estimate;
	// DataOnlyDER = Total/Unique.
	TotalBytes  int64
	UniqueBytes int64
	// DupSlices counts maximal runs of consecutive duplicate chunks; DAD
	// is duplicate bytes per slice.
	DupSlices int64
	DupBytes  int64
	// Chunks is the total chunk count.
	Chunks int64
}

// DataOnlyDER returns the exact-deduplication ratio estimate.
func (c Characteristics) DataOnlyDER() float64 {
	if c.UniqueBytes == 0 {
		return 0
	}
	return float64(c.TotalBytes) / float64(c.UniqueBytes)
}

// DAD returns the Duplication Aggregation Degree in bytes per slice.
func (c Characteristics) DAD() float64 {
	if c.DupSlices == 0 {
		return 0
	}
	return float64(c.DupBytes) / float64(c.DupSlices)
}

// String renders the summary.
func (c Characteristics) String() string {
	return fmt.Sprintf("ECS=%d chunks=%d DER=%.3f dupBytes=%d L=%d DAD=%.0fB",
		c.ECS, c.Chunks, c.DataOnlyDER(), c.DupBytes, c.DupSlices, c.DAD())
}

// Characterize streams the whole dataset through an exact chunk-hash
// deduplication at the given ECS and reports its duplication structure.
// This is the upper bound any chunk-based algorithm can reach at that
// granularity (what the paper calls the maximal data-only DER, §V-D).
func (d *Dataset) Characterize(ecs int) (Characteristics, error) {
	c := Characteristics{ECS: ecs}
	seen := make(map[hashutil.Sum]bool)
	err := d.EachFile(func(_ FileInfo, r io.Reader) error {
		ch, err := chunker.NewRabin(r, chunker.Params{ECS: ecs})
		if err != nil {
			return err
		}
		prevDup := false
		for {
			chunk, err := ch.Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			c.Chunks++
			c.TotalBytes += chunk.Size()
			h := hashutil.SumBytes(chunk.Data)
			if seen[h] {
				c.DupBytes += chunk.Size()
				if !prevDup {
					c.DupSlices++
				}
				prevDup = true
				continue
			}
			seen[h] = true
			c.UniqueBytes += chunk.Size()
			prevDup = false
		}
	})
	return c, err
}
