package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"mhdedup/internal/hashutil"
)

func TestMigrateBeginRejectsBadInput(t *testing.T) {
	good := MigrateBegin{Name: "t/x"}.Marshal()
	if _, err := UnmarshalMigrateBegin(good); err != nil {
		t.Fatalf("good payload rejected: %v", err)
	}
	cases := map[string][]byte{
		"empty":        {},
		"bad version":  append([]byte{99}, good[1:]...),
		"empty name":   MigrateBegin{Name: ""}.Marshal(),
		"truncated":    good[:len(good)-1],
		"trailing":     append(append([]byte{}, good...), 0),
		"length lies":  {migrateVersion, 0xff, 0xff, 'x'},
		"oversize len": append([]byte{migrateVersion}, putU16(nil, MaxNameLen+1)...),
	}
	for name, p := range cases {
		if _, err := UnmarshalMigrateBegin(p); err == nil {
			t.Errorf("%s: accepted %x", name, p)
		}
	}
}

func TestFileDropRejectsBadInput(t *testing.T) {
	good := FileDrop{Name: "t/x"}.Marshal()
	if _, err := UnmarshalFileDrop(good); err != nil {
		t.Fatalf("good payload rejected: %v", err)
	}
	for name, p := range map[string][]byte{
		"empty":       {},
		"bad version": append([]byte{77}, good[1:]...),
		"empty name":  FileDrop{Name: ""}.Marshal(),
		"truncated":   good[:2],
	} {
		if _, err := UnmarshalFileDrop(p); err == nil {
			t.Errorf("%s: accepted %x", name, p)
		}
	}
}

func TestMigrateEndRoundTripAndBounds(t *testing.T) {
	e := MigrateEnd{TotalBytes: 1<<40 + 7, Sum: hashutil.SumString("s")}
	got, err := UnmarshalMigrateEnd(e.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Fatalf("round trip: got %+v want %+v", got, e)
	}
	if _, err := UnmarshalMigrateEnd(e.Marshal()[:10]); err == nil {
		t.Error("truncated MigrateEnd accepted")
	}
	if _, err := UnmarshalMigrateEnd(append(e.Marshal(), 1)); err == nil {
		t.Error("trailing MigrateEnd accepted")
	}
}

func TestMigrateDataAliasesAndBounds(t *testing.T) {
	d := MigrateData{Data: []byte("payload bytes here")}
	got, err := UnmarshalMigrateData(d.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, d.Data) {
		t.Fatalf("round trip: got %q", got.Data)
	}
	// A blob length claiming more bytes than the payload holds must fail,
	// not allocate.
	bad := putU32(nil, 1<<30)
	if _, err := UnmarshalMigrateData(bad); err == nil {
		t.Error("oversize blob length accepted")
	}
}

func TestFileStatHostileCount(t *testing.T) {
	s := FileStat{Names: []string{"a", strings.Repeat("n", 64), ""}}
	got, err := UnmarshalFileStat(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Names) != 3 || got.Names[1] != s.Names[1] {
		t.Fatalf("round trip: %+v", got)
	}
	// Hostile count: 2^31 declared names in a 16-byte payload must be
	// rejected by the count guard (each name needs >= 2 bytes).
	hostile := []byte{fileStatVersion}
	hostile = putU32(hostile, 1<<31)
	hostile = append(hostile, make([]byte, 11)...)
	if _, err := UnmarshalFileStat(hostile); !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrFieldRange) {
		t.Errorf("hostile count: got %v", err)
	}
	// Count over the hard cap with enough bytes behind it.
	over := []byte{fileStatVersion}
	over = putU32(over, MaxStatNames+1)
	over = append(over, make([]byte, 2*(MaxStatNames+1))...)
	if _, err := UnmarshalFileStat(over); !errors.Is(err, ErrFieldRange) {
		t.Errorf("over-cap count: got %v", err)
	}
}

func TestFileStatOKHostileCount(t *testing.T) {
	s := FileStatOK{Present: []bool{true, false, true}}
	got, err := UnmarshalFileStatOK(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Present) != 3 || !got.Present[0] || got.Present[1] {
		t.Fatalf("round trip: %+v", got)
	}
	hostile := putU32(nil, 1<<31)
	if _, err := UnmarshalFileStatOK(hostile); err == nil {
		t.Error("hostile count accepted")
	}
}

// TestReplicaFramesDispatch pins that UnmarshalAny routes every new frame
// type and that the bare ack frames demand empty payloads.
func TestReplicaFramesDispatch(t *testing.T) {
	for _, tc := range []struct {
		t   uint8
		msg interface{ Marshal() []byte }
	}{
		{TypeMigrateBegin, MigrateBegin{Name: "x"}},
		{TypeMigrateData, MigrateData{Data: []byte("d")}},
		{TypeMigrateEnd, MigrateEnd{TotalBytes: 1}},
		{TypeFileDrop, FileDrop{Name: "x"}},
		{TypeFileStat, FileStat{Names: []string{"x"}}},
		{TypeFileStatOK, FileStatOK{Present: []bool{true}}},
	} {
		if _, err := UnmarshalAny(Frame{Type: tc.t, Payload: tc.msg.Marshal()}); err != nil {
			t.Errorf("%s: dispatch failed: %v", TypeName(tc.t), err)
		}
	}
	for _, bare := range []uint8{TypeMigrateOK, TypeFileDropOK} {
		if _, err := UnmarshalAny(Frame{Type: bare, Payload: nil}); err != nil {
			t.Errorf("%s: empty payload rejected: %v", TypeName(bare), err)
		}
		if _, err := UnmarshalAny(Frame{Type: bare, Payload: []byte{1}}); err == nil {
			t.Errorf("%s: non-empty payload accepted", TypeName(bare))
		}
	}
}

// FuzzWireReplicaDecode hammers the replica/migrate-plane decoders with
// hostile counts, truncation and oversize fields, and checks the
// canonical-encode invariant: any payload a decoder accepts must
// re-encode byte-identically.
func FuzzWireReplicaDecode(f *testing.F) {
	f.Add(uint8(TypeMigrateBegin), MigrateBegin{Name: "t/file"}.Marshal())
	f.Add(uint8(TypeMigrateData), MigrateData{Data: []byte("bytes")}.Marshal())
	f.Add(uint8(TypeMigrateEnd), MigrateEnd{TotalBytes: 42, Sum: hashutil.SumString("x")}.Marshal())
	f.Add(uint8(TypeFileDrop), FileDrop{Name: "t/file"}.Marshal())
	f.Add(uint8(TypeFileStat), FileStat{Names: []string{"a", "b", "c"}}.Marshal())
	f.Add(uint8(TypeFileStatOK), FileStatOK{Present: []bool{true, false}}.Marshal())
	// Structured garbage: hostile count, truncated string, huge blob.
	hostile := []byte{fileStatVersion}
	hostile = binary.BigEndian.AppendUint32(hostile, 0xffffffff)
	f.Add(uint8(TypeFileStat), hostile)
	f.Add(uint8(TypeMigrateBegin), []byte{migrateVersion, 0xff, 0xff})
	f.Add(uint8(TypeMigrateData), binary.BigEndian.AppendUint32(nil, 1<<31))
	f.Fuzz(func(t *testing.T, typ uint8, payload []byte) {
		ft := typ
		if ft < TypeMigrateBegin || ft > TypeFileStatOK {
			ft = TypeMigrateBegin + typ%(TypeFileStatOK-TypeMigrateBegin+1)
		}
		msg, err := UnmarshalAny(Frame{Type: ft, Payload: payload})
		if err != nil || msg == nil {
			return
		}
		m, ok := msg.(interface{ Marshal() []byte })
		if !ok {
			t.Fatalf("decoded %T has no Marshal", msg)
		}
		if got := m.Marshal(); !bytes.Equal(got, payload) {
			t.Fatalf("%s: decode/encode not canonical:\npayload %x\nreenc   %x",
				TypeName(ft), payload, got)
		}
	})
}
