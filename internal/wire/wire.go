// Package wire is the dedup service's framing layer: a versioned,
// length-prefixed binary protocol carrying the hash-negotiating backup
// conversation between a chunking client and a dedupd server.
//
// The unit of the protocol is the frame:
//
//	offset  size  field
//	0       4     magic "MHDW"
//	4       1     protocol version (currently 1)
//	5       1     frame type
//	6       2     flags (reserved, must be 0)
//	8       4     payload length (big endian)
//	12      n     payload
//	12+n    4     CRC-32 (IEEE) over bytes [4, 12+n) — version..payload
//
// Every multi-byte integer in the protocol is big endian. The payload of
// each frame type is defined in messages.go; the codec there is pure
// (bytes in, message out) so it can be fuzzed without sockets.
//
// Design rules, in the order they are enforced by ReadFrame:
//
//  1. A reader knows the worst case before it allocates: payloads larger
//     than the negotiated cap are rejected from the header alone.
//  2. Corruption is detected before interpretation: the CRC is checked
//     before the payload is handed to a message decoder.
//  3. Version mismatches fail closed with a distinct error so clients can
//     print something actionable.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Magic identifies a frame stream ("MHDW", MHD wire).
const Magic uint32 = 0x4D484457

// Version is the protocol version this codec speaks.
const Version uint8 = 1

// HeaderSize is the fixed frame prologue (magic + version + type + flags +
// length); TrailerSize the CRC suffix.
const (
	HeaderSize  = 12
	TrailerSize = 4
)

// DefaultMaxPayload caps frame payloads unless the handshake negotiates
// otherwise: big enough for a 4·ECS max chunk run with headroom, small
// enough that a malicious length field cannot balloon memory.
const DefaultMaxPayload = 4 << 20

// Frame types. The numeric values are wire format — never renumber.
const (
	// Session establishment.
	TypeHello   uint8 = 1 // client → server: open or resume a session
	TypeHelloOK uint8 = 2 // server → client: session accepted
	TypeError   uint8 = 3 // either direction: failure report

	// Sessioned ingest (client chunks locally, negotiates by hash).
	TypeFileBegin uint8 = 4 // client → server: start one named file
	TypeOffer     uint8 = 5 // client → server: batch of chunk hashes
	TypeNeed      uint8 = 6 // server → client: which offered chunks to send
	TypeChunkData uint8 = 7 // client → server: run of needed chunk bytes
	TypeFileEnd   uint8 = 8 // client → server: file complete (size + sum)
	TypeAck       uint8 = 9 // server → client: command seq fully applied

	// Restore stream.
	TypeRestoreReq  uint8 = 10 // client → server: restore one file
	TypeRestoreData uint8 = 11 // server → client: run of restored bytes
	TypeRestoreEnd  uint8 = 12 // server → client: restore complete
	TypeListReq     uint8 = 13 // client → server: list restorable files
	TypeListResp    uint8 = 14 // server → client: the names

	// Orderly teardown.
	TypeClose   uint8 = 15 // client → server: session done
	TypeCloseOK uint8 = 16 // server → client: state durably applied

	// Peer plane (gateway ⇄ shard chunk-cache routing). A ModePeer
	// connection is a trusted interior link: the cluster gateway uses it
	// to ask the shard that owns a chunk-hash range (by consistent
	// hashing) whether it holds the bytes, and to seed freshly uploaded
	// chunks into their owner's cache — so a chunk any tenant has ever
	// sent through the cluster never crosses a client link twice.
	TypePeerFetch  uint8 = 17 // gateway → shard: chunk hashes wanted
	TypePeerChunks uint8 = 18 // shard → gateway: the subset it holds
	TypePeerPut    uint8 = 19 // gateway → shard: chunk bytes to cache
	TypePeerPutOK  uint8 = 20 // shard → gateway: cached (flow control)

	// Ranged restore (recipe trees make the seek O(log n) server-side).
	TypeRestoreRange uint8 = 21 // client → server: restore a byte range

	// Replica/migrate plane (gateway ⇄ shard, ModePeer). Used by shard
	// rebalance and replication repair: the gateway streams a file it
	// restored from one shard into another shard's engine (which
	// re-chunks and dedups the stream itself — no chunker handshake is
	// needed on this interior link), batch-checks file presence, and
	// drops a fully-migrated file from its drained source.
	TypeMigrateBegin uint8 = 22 // gateway → shard: start migrated-file ingest
	TypeMigrateData  uint8 = 23 // gateway → shard: run of file bytes
	TypeMigrateEnd   uint8 = 24 // gateway → shard: stream done (size + sum)
	TypeMigrateOK    uint8 = 25 // shard → gateway: file ingested + durable
	TypeFileDrop     uint8 = 26 // gateway → shard: forget a migrated file
	TypeFileDropOK   uint8 = 27 // shard → gateway: dropped (or never had it)
	TypeFileStat     uint8 = 28 // gateway → shard: which of these files exist?
	TypeFileStatOK   uint8 = 29 // shard → gateway: presence bitmap
)

// typeNames renders frame types for errors and traces.
var typeNames = map[uint8]string{
	TypeHello: "Hello", TypeHelloOK: "HelloOK", TypeError: "Error",
	TypeFileBegin: "FileBegin", TypeOffer: "Offer", TypeNeed: "Need",
	TypeChunkData: "ChunkData", TypeFileEnd: "FileEnd", TypeAck: "Ack",
	TypeRestoreReq: "RestoreReq", TypeRestoreData: "RestoreData",
	TypeRestoreEnd: "RestoreEnd", TypeListReq: "ListReq",
	TypeListResp: "ListResp", TypeClose: "Close", TypeCloseOK: "CloseOK",
	TypePeerFetch: "PeerFetch", TypePeerChunks: "PeerChunks",
	TypePeerPut: "PeerPut", TypePeerPutOK: "PeerPutOK",
	TypeRestoreRange: "RestoreRange",
	TypeMigrateBegin: "MigrateBegin", TypeMigrateData: "MigrateData",
	TypeMigrateEnd: "MigrateEnd", TypeMigrateOK: "MigrateOK",
	TypeFileDrop: "FileDrop", TypeFileDropOK: "FileDropOK",
	TypeFileStat: "FileStat", TypeFileStatOK: "FileStatOK",
}

// TypeName returns a human-readable frame-type name.
func TypeName(t uint8) string {
	if n, ok := typeNames[t]; ok {
		return n
	}
	return fmt.Sprintf("type%d", t)
}

// Framing errors. ErrTooLarge and ErrBadCRC are connection-fatal: once
// framing is suspect nothing later on the stream can be trusted.
var (
	ErrBadMagic   = errors.New("wire: bad frame magic")
	ErrBadVersion = errors.New("wire: unsupported protocol version")
	ErrBadFlags   = errors.New("wire: reserved frame flags set")
	ErrTooLarge   = errors.New("wire: frame payload exceeds negotiated cap")
	ErrBadCRC     = errors.New("wire: frame CRC mismatch")
)

// Frame is one decoded frame: its type and raw payload.
type Frame struct {
	Type    uint8
	Payload []byte
}

// AppendFrame appends the encoded frame for (t, payload) to dst and
// returns the extended slice — the allocation-free core of WriteFrame.
func AppendFrame(dst []byte, t uint8, payload []byte) []byte {
	var hdr [HeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], Magic)
	hdr[4] = Version
	hdr[5] = t
	// hdr[6:8] flags, zero.
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	crc := crc32.ChecksumIEEE(dst[len(dst)-len(payload)-(HeaderSize-4) : len(dst)])
	var tr [TrailerSize]byte
	binary.BigEndian.PutUint32(tr[:], crc)
	return append(dst, tr[:]...)
}

// WriteFrame encodes and writes one frame. It returns the number of bytes
// put on the wire so callers can account bandwidth exactly.
func WriteFrame(w io.Writer, t uint8, payload []byte) (int, error) {
	buf := AppendFrame(make([]byte, 0, HeaderSize+len(payload)+TrailerSize), t, payload)
	n, err := w.Write(buf)
	return n, err
}

// ReadFrame reads and validates one frame. maxPayload caps the payload
// length accepted (0 means DefaultMaxPayload); the cap is enforced from
// the header before any payload allocation. The returned payload is a
// fresh slice owned by the caller.
func ReadFrame(r io.Reader, maxPayload uint32) (Frame, error) {
	if maxPayload == 0 {
		maxPayload = DefaultMaxPayload
	}
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	f, n, err := parseHeader(hdr)
	if err != nil {
		return Frame{}, err
	}
	if n > maxPayload {
		return Frame{}, fmt.Errorf("%w: %d > %d", ErrTooLarge, n, maxPayload)
	}
	body := make([]byte, int(n)+TrailerSize)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	payload := body[:n]
	want := binary.BigEndian.Uint32(body[n:])
	crc := crc32.ChecksumIEEE(hdr[4:])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	if crc != want {
		return Frame{}, ErrBadCRC
	}
	f.Payload = payload
	return f, nil
}

// parseHeader validates the fixed prologue and returns the frame skeleton
// plus the declared payload length.
func parseHeader(hdr [HeaderSize]byte) (Frame, uint32, error) {
	if binary.BigEndian.Uint32(hdr[0:4]) != Magic {
		return Frame{}, 0, ErrBadMagic
	}
	if hdr[4] != Version {
		return Frame{}, 0, fmt.Errorf("%w: got %d, want %d", ErrBadVersion, hdr[4], Version)
	}
	if hdr[6] != 0 || hdr[7] != 0 {
		return Frame{}, 0, ErrBadFlags
	}
	return Frame{Type: hdr[5]}, binary.BigEndian.Uint32(hdr[8:12]), nil
}

// Decode parses raw as one complete frame (header, payload, trailer) held
// entirely in memory — the fuzzable entry point shared with ReadFrame's
// validation logic. Trailing bytes after the frame are an error.
func Decode(raw []byte, maxPayload uint32) (Frame, error) {
	if maxPayload == 0 {
		maxPayload = DefaultMaxPayload
	}
	if len(raw) < HeaderSize+TrailerSize {
		return Frame{}, io.ErrUnexpectedEOF
	}
	var hdr [HeaderSize]byte
	copy(hdr[:], raw)
	f, n, err := parseHeader(hdr)
	if err != nil {
		return Frame{}, err
	}
	if n > maxPayload {
		return Frame{}, fmt.Errorf("%w: %d > %d", ErrTooLarge, n, maxPayload)
	}
	if uint64(len(raw)) != uint64(HeaderSize)+uint64(n)+uint64(TrailerSize) {
		return Frame{}, io.ErrUnexpectedEOF
	}
	payload := raw[HeaderSize : HeaderSize+n]
	want := binary.BigEndian.Uint32(raw[HeaderSize+n:])
	crc := crc32.ChecksumIEEE(raw[4 : HeaderSize+n])
	if crc != want {
		return Frame{}, ErrBadCRC
	}
	f.Payload = payload
	return f, nil
}
