package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"mhdedup/internal/hashutil"
)

// sampleMessages returns one instance of every typed message, paired with
// its frame type, for round-trip coverage.
func sampleMessages() []struct {
	t   uint8
	msg interface{ Marshal() []byte }
} {
	h1 := hashutil.SumString("one")
	h2 := hashutil.SumString("two")
	return []struct {
		t   uint8
		msg interface{ Marshal() []byte }
	}{
		{TypeHello, Hello{Mode: ModeIngest, Options: EngineOptions{Algorithm: "mhd", ECS: 4096, SD: 64, FastCDC: true}, ResumeToken: 77, Tenant: "acme", Secret: "s3cret"}},
		{TypeHelloOK, HelloOK{SessionToken: 42, Window: 8, MaxPayload: 1 << 20, LastApplied: 13}},
		{TypeError, ErrorMsg{Code: CodeBusy, Retryable: true, Msg: "too many sessions", RetryAfterMs: 1500}},
		{TypeFileBegin, FileBegin{Seq: 9, Name: "m00/d01"}},
		{TypeOffer, Offer{Seq: 10, Entries: []OfferEntry{{Hash: h1, Size: 4096}, {Hash: h2, Size: 123}}}},
		{TypeNeed, Need{Seq: 10, Indices: []uint32{0, 5, 7}}},
		{TypeChunkData, ChunkData{Seq: 10, Start: 1, Chunks: [][]byte{[]byte("abc"), {}, []byte("defg")}}},
		{TypeFileEnd, FileEnd{Seq: 11, TotalBytes: 1 << 30, Sum: h1}},
		{TypeAck, Ack{Seq: 11}},
		{TypeRestoreReq, RestoreReq{Name: "m00/d01", Verify: true}},
		{TypeRestoreData, RestoreData{Data: []byte("hello bytes")}},
		{TypeRestoreEnd, RestoreEnd{TotalBytes: 999, Sum: h2}},
		{TypeListResp, ListResp{Names: []string{"a", "b/c", ""}}},
		{TypePeerFetch, PeerFetch{Entries: []OfferEntry{{Hash: h1, Size: 4096}, {Hash: h2, Size: 7}}}},
		{TypePeerChunks, PeerChunks{Indices: []uint32{0, 2}, Chunks: [][]byte{[]byte("abc"), []byte("xyz1")}}},
		{TypePeerPut, PeerPut{Chunks: [][]byte{[]byte("chunk bytes"), {}}}},
		{TypeMigrateBegin, MigrateBegin{Name: "acme/m00/d01"}},
		{TypeMigrateData, MigrateData{Data: []byte("raw file bytes")}},
		{TypeMigrateEnd, MigrateEnd{TotalBytes: 1 << 33, Sum: h1}},
		{TypeFileDrop, FileDrop{Name: "acme/m00/d01"}},
		{TypeFileStat, FileStat{Names: []string{"acme/a", "b"}}},
		{TypeFileStatOK, FileStatOK{Present: []bool{true, false}}},
	}
}

func TestMessageRoundTrip(t *testing.T) {
	for _, tc := range sampleMessages() {
		payload := tc.msg.Marshal()
		got, err := UnmarshalAny(Frame{Type: tc.t, Payload: payload})
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", TypeName(tc.t), err)
		}
		// Normalize: decoded [][]byte/[]byte fields may alias vs own, and
		// empty slices may decode as empty-non-nil; compare via re-encode.
		reenc := got.(interface{ Marshal() []byte }).Marshal()
		if !bytes.Equal(reenc, payload) {
			t.Fatalf("%s: re-encode mismatch:\n got %x\nwant %x", TypeName(tc.t), reenc, payload)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	for _, tc := range sampleMessages() {
		if _, err := WriteFrame(&buf, tc.t, tc.msg.Marshal()); err != nil {
			t.Fatal(err)
		}
	}
	// Bare frames too.
	if _, err := WriteFrame(&buf, TypeListReq, nil); err != nil {
		t.Fatal(err)
	}
	for _, tc := range sampleMessages() {
		f, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatalf("%s: read: %v", TypeName(tc.t), err)
		}
		if f.Type != tc.t {
			t.Fatalf("type: got %d want %d", f.Type, tc.t)
		}
		if !bytes.Equal(f.Payload, tc.msg.Marshal()) {
			t.Fatalf("%s: payload mismatch", TypeName(tc.t))
		}
	}
	f, err := ReadFrame(&buf, 0)
	if err != nil || f.Type != TypeListReq || len(f.Payload) != 0 {
		t.Fatalf("bare frame: %+v err=%v", f, err)
	}
	if _, err := ReadFrame(&buf, 0); err != io.EOF {
		t.Fatalf("expected EOF at stream end, got %v", err)
	}
}

func TestWriteFrameReportsWireBytes(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("0123456789")
	n, err := WriteFrame(&buf, TypeRestoreData, payload)
	if err != nil {
		t.Fatal(err)
	}
	if want := HeaderSize + len(payload) + TrailerSize; n != want || buf.Len() != want {
		t.Fatalf("wire bytes: n=%d buf=%d want %d", n, buf.Len(), want)
	}
}

func TestReadFrameRejectsCorruption(t *testing.T) {
	base := AppendFrame(nil, TypeAck, Ack{Seq: 5}.Marshal())
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }, ErrBadMagic},
		{"bad version", func(b []byte) []byte { b[4] = 99; return b }, ErrBadVersion},
		{"reserved flags", func(b []byte) []byte { b[6] = 1; return b }, ErrBadFlags},
		{"payload bit flip", func(b []byte) []byte { b[HeaderSize] ^= 0x01; return b }, ErrBadCRC},
		{"crc bit flip", func(b []byte) []byte { b[len(b)-1] ^= 0x80; return b }, ErrBadCRC},
		{"type bit flip", func(b []byte) []byte { b[5] ^= 0x02; return b }, ErrBadCRC},
	}
	for _, tc := range cases {
		raw := tc.mutate(append([]byte(nil), base...))
		if _, err := ReadFrame(bytes.NewReader(raw), 0); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
		if _, err := Decode(raw, 0); !errors.Is(err, tc.want) {
			t.Errorf("%s (Decode): got %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestReadFrameEnforcesPayloadCap(t *testing.T) {
	raw := AppendFrame(nil, TypeRestoreData, RestoreData{Data: make([]byte, 1000)}.Marshal())
	if _, err := ReadFrame(bytes.NewReader(raw), 64); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}
	// The cap must be enforced from the header alone — a stream that lies
	// about a huge payload is rejected without reading it.
	var hdr [HeaderSize]byte
	copy(hdr[:], raw[:HeaderSize])
	hdr[8], hdr[9], hdr[10], hdr[11] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := ReadFrame(bytes.NewReader(hdr[:]), 1<<20); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("header-only oversized frame: got %v, want ErrTooLarge", err)
	}
}

func TestReadFrameTruncation(t *testing.T) {
	raw := AppendFrame(nil, TypeFileBegin, FileBegin{Seq: 1, Name: "x"}.Marshal())
	for cut := 1; cut < len(raw); cut++ {
		_, err := ReadFrame(bytes.NewReader(raw[:cut]), 0)
		if err == nil {
			t.Fatalf("truncated at %d: expected error", cut)
		}
		if _, err := Decode(raw[:cut], 0); err == nil {
			t.Fatalf("Decode truncated at %d: expected error", cut)
		}
	}
	// Trailing garbage after a full frame is fine for ReadFrame (next
	// frame's bytes) but an error for the one-frame Decode.
	if _, err := Decode(append(append([]byte(nil), raw...), 0xAA), 0); err == nil {
		t.Fatal("Decode with trailing byte: expected error")
	}
}

func TestMessageDecodersRejectTrailingBytes(t *testing.T) {
	for _, tc := range sampleMessages() {
		payload := append(tc.msg.Marshal(), 0x00)
		if _, err := UnmarshalAny(Frame{Type: tc.t, Payload: payload}); err == nil {
			t.Errorf("%s: trailing byte accepted", TypeName(tc.t))
		}
	}
}

func TestMessageDecodersRejectTruncation(t *testing.T) {
	for _, tc := range sampleMessages() {
		full := tc.msg.Marshal()
		for cut := 0; cut < len(full); cut++ {
			if _, err := UnmarshalAny(Frame{Type: tc.t, Payload: full[:cut]}); err == nil {
				t.Errorf("%s: truncation at %d accepted", TypeName(tc.t), cut)
				break
			}
		}
	}
}

func TestHostileCountsDoNotAllocate(t *testing.T) {
	// An Offer claiming 2^16 entries with a near-empty payload must fail
	// before allocating room for them.
	p := putU64(nil, 1)
	p = putU32(p, MaxBatchChunks)
	if _, err := UnmarshalOffer(p); err == nil {
		t.Fatal("hostile offer count accepted")
	}
	p = putU32(nil, MaxListNames)
	if _, err := UnmarshalListResp(p); err == nil {
		t.Fatal("hostile list count accepted")
	}
}

func TestPeerChunksRejectsMismatchedCounts(t *testing.T) {
	// A reply claiming 2 indices but carrying 1 chunk would let a consumer
	// index out of bounds; the decoder must refuse it.
	p := putU32(nil, 2)
	p = putU32(p, 0)
	p = putU32(p, 1)
	p = putU32(p, 1)
	p = putBlob(p, []byte("x"))
	if _, err := UnmarshalPeerChunks(p); err == nil {
		t.Fatal("mismatched PeerChunks counts accepted")
	}
}

func TestUnknownFrameType(t *testing.T) {
	if _, err := UnmarshalAny(Frame{Type: 200}); err == nil {
		t.Fatal("unknown type accepted")
	}
}

func TestErrorMsgIsError(t *testing.T) {
	var err error = ErrorMsg{Code: CodeNotFound, Msg: "nope"}
	var em ErrorMsg
	if !errors.As(err, &em) || em.Code != CodeNotFound {
		t.Fatalf("errors.As failed: %v", err)
	}
}

func TestDecodeMatchesReadFrame(t *testing.T) {
	raw := AppendFrame(nil, TypeNeed, Need{Seq: 3, Indices: []uint32{1, 2}}.Marshal())
	a, errA := Decode(raw, 0)
	b, errB := ReadFrame(bytes.NewReader(raw), 0)
	if errA != nil || errB != nil {
		t.Fatalf("errs: %v %v", errA, errB)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Decode %+v != ReadFrame %+v", a, b)
	}
}
