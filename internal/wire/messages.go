// Message payload codec. Each frame type's payload is a fixed grammar of
// big-endian integers, length-prefixed strings/byte runs and 20-byte
// hashes. Encoding is append-style (Marshal returns a payload for
// WriteFrame); decoding is a pure function of the payload bytes with an
// error-latched cursor, so a truncated or trailing-garbage payload fails
// loudly instead of being misread.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"mhdedup/internal/hashutil"
)

// Limits on variable-length message fields, enforced by the decoders so a
// hostile peer cannot make a small frame allocate a large structure.
const (
	// MaxNameLen bounds file and algorithm names.
	MaxNameLen = 4096
	// MaxBatchChunks bounds the chunks of one Offer/Need/ChunkData batch.
	MaxBatchChunks = 1 << 16
	// MaxListNames bounds one ListResp.
	MaxListNames = 1 << 20
)

// ErrTruncated reports a payload shorter than its grammar requires.
var ErrTruncated = errors.New("wire: truncated message payload")

// ErrTrailing reports payload bytes after the end of the message grammar.
var ErrTrailing = errors.New("wire: trailing bytes after message payload")

// ErrFieldRange reports a length or count field outside its allowed range.
var ErrFieldRange = errors.New("wire: message field out of range")

// ---------------------------------------------------------------------------
// Cursor primitives.

// reader is an error-latched decode cursor: after the first failure every
// subsequent read is a no-op returning zero values, and the final err()
// reports what went wrong. This keeps decoders linear and total.
type reader struct {
	buf []byte
	off int
	e   error
}

func (r *reader) fail(err error) {
	if r.e == nil {
		r.e = err
	}
}

func (r *reader) take(n int) []byte {
	if r.e != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) || r.off+n < r.off {
		r.fail(ErrTruncated)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// bool reads a strict boolean: only 0 and 1 are accepted, so every
// accepted payload re-encodes byte-identically (the canonical-encode
// invariant the decode fuzzers pin).
func (r *reader) bool() bool {
	b := r.u8()
	if r.e == nil && b > 1 {
		r.fail(fmt.Errorf("%w: boolean byte 0x%02x", ErrFieldRange, b))
	}
	return b == 1
}

func (r *reader) hash() hashutil.Sum {
	var s hashutil.Sum
	b := r.take(hashutil.Size)
	if b != nil {
		copy(s[:], b)
	}
	return s
}

// str reads a u16-length-prefixed string bounded by MaxNameLen.
func (r *reader) str() string {
	n := int(r.u16())
	if r.e == nil && n > MaxNameLen {
		r.fail(fmt.Errorf("%w: string length %d > %d", ErrFieldRange, n, MaxNameLen))
		return ""
	}
	return string(r.take(n))
}

// blob reads a u32-length-prefixed byte run. The bytes alias the payload;
// callers that retain them past the frame must copy.
func (r *reader) blob() []byte {
	n := r.u32()
	if r.e == nil && int64(n) > int64(len(r.buf)) {
		r.fail(fmt.Errorf("%w: blob length %d exceeds payload", ErrFieldRange, n))
		return nil
	}
	return r.take(int(n))
}

// count validates a declared element count against a cap and against the
// bytes actually remaining (each element needs at least minSize bytes), so
// a hostile count field cannot drive a large allocation from a tiny
// payload.
func (r *reader) count(n uint32, cap uint32, minSize int) bool {
	if r.e != nil {
		return false
	}
	if n > cap {
		r.fail(fmt.Errorf("%w: count %d > %d", ErrFieldRange, n, cap))
		return false
	}
	if int64(n)*int64(minSize) > int64(len(r.buf)-r.off) {
		r.fail(ErrTruncated)
		return false
	}
	return true
}

// done verifies the whole payload was consumed.
func (r *reader) done() error {
	if r.e != nil {
		return r.e
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d bytes", ErrTrailing, len(r.buf)-r.off)
	}
	return nil
}

// Append-style encode primitives.
func putU16(b []byte, v uint16) []byte { return binary.BigEndian.AppendUint16(b, v) }
func putU32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }
func putU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }

func putBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func putStr(b []byte, s string) []byte {
	b = putU16(b, uint16(len(s)))
	return append(b, s...)
}

func putBlob(b, p []byte) []byte {
	b = putU32(b, uint32(len(p)))
	return append(b, p...)
}

// UnmarshalAny dispatches a frame to its payload decoder and returns the
// typed message. Frame types without a payload grammar (TypeListReq,
// TypeClose, TypeCloseOK) require an empty payload and return nil.
func UnmarshalAny(f Frame) (any, error) {
	switch f.Type {
	case TypeHello:
		return UnmarshalHello(f.Payload)
	case TypeHelloOK:
		return UnmarshalHelloOK(f.Payload)
	case TypeError:
		return UnmarshalError(f.Payload)
	case TypeFileBegin:
		return UnmarshalFileBegin(f.Payload)
	case TypeOffer:
		return UnmarshalOffer(f.Payload)
	case TypeNeed:
		return UnmarshalNeed(f.Payload)
	case TypeChunkData:
		return UnmarshalChunkData(f.Payload)
	case TypeFileEnd:
		return UnmarshalFileEnd(f.Payload)
	case TypeAck:
		return UnmarshalAck(f.Payload)
	case TypeRestoreReq:
		return UnmarshalRestoreReq(f.Payload)
	case TypeRestoreRange:
		return UnmarshalRestoreRange(f.Payload)
	case TypeRestoreData:
		return UnmarshalRestoreData(f.Payload)
	case TypeRestoreEnd:
		return UnmarshalRestoreEnd(f.Payload)
	case TypeListResp:
		return UnmarshalListResp(f.Payload)
	case TypePeerFetch:
		return UnmarshalPeerFetch(f.Payload)
	case TypePeerChunks:
		return UnmarshalPeerChunks(f.Payload)
	case TypePeerPut:
		return UnmarshalPeerPut(f.Payload)
	case TypeMigrateBegin:
		return UnmarshalMigrateBegin(f.Payload)
	case TypeMigrateData:
		return UnmarshalMigrateData(f.Payload)
	case TypeMigrateEnd:
		return UnmarshalMigrateEnd(f.Payload)
	case TypeFileDrop:
		return UnmarshalFileDrop(f.Payload)
	case TypeFileStat:
		return UnmarshalFileStat(f.Payload)
	case TypeFileStatOK:
		return UnmarshalFileStatOK(f.Payload)
	case TypeListReq, TypeClose, TypeCloseOK, TypePeerPutOK, TypeMigrateOK,
		TypeFileDropOK:
		if len(f.Payload) != 0 {
			return nil, ErrTrailing
		}
		return nil, nil
	default:
		return nil, fmt.Errorf("wire: unknown frame type %d", f.Type)
	}
}

// ---------------------------------------------------------------------------
// Handshake.

// Session modes carried in Hello.
const (
	ModeIngest  uint8 = 1 // sessioned backup upload
	ModeRestore uint8 = 2 // restore / list; no ingest session allocated
	ModePeer    uint8 = 3 // interior chunk-cache plane (gateway ⇄ shard)
)

// EngineOptions is the chunking/engine configuration the two sides must
// agree on: the client chunks locally, so a mismatch would silently ruin
// deduplication. The server validates these against its engine and
// rejects the handshake on any difference.
type EngineOptions struct {
	Algorithm string // "mhd" or "si-mhd"
	ECS       uint32 // expected chunk size, bytes
	SD        uint32 // sample distance
	TTTD      bool   // two-thresholds-two-divisors chunker
	FastCDC   bool   // gear-hash chunker
}

// Hello opens (ResumeToken == 0) or resumes (ResumeToken != 0) a session.
//
// Tenant selects the namespace the session operates in: every file name
// the session ingests, lists or restores is scoped to it, so two tenants
// never see each other's files (chunk-level deduplication still happens
// across tenants — that is the point of a shared store). Empty means the
// root namespace. Secret is the tenant's credential, checked by
// authenticating front doors (the cluster gateway); a plain dedupd shard
// is an interior service and ignores it.
type Hello struct {
	Mode        uint8
	Options     EngineOptions // ignored for ModeRestore/ModePeer
	ResumeToken uint64
	Tenant      string
	Secret      string
}

// Marshal encodes h as a TypeHello payload.
func (h Hello) Marshal() []byte {
	b := make([]byte, 0, 40+len(h.Options.Algorithm)+len(h.Tenant)+len(h.Secret))
	b = append(b, h.Mode)
	b = putStr(b, h.Options.Algorithm)
	b = putU32(b, h.Options.ECS)
	b = putU32(b, h.Options.SD)
	b = putBool(b, h.Options.TTTD)
	b = putBool(b, h.Options.FastCDC)
	b = putU64(b, h.ResumeToken)
	b = putStr(b, h.Tenant)
	b = putStr(b, h.Secret)
	return b
}

// UnmarshalHello decodes a TypeHello payload.
func UnmarshalHello(p []byte) (Hello, error) {
	r := &reader{buf: p}
	var h Hello
	h.Mode = r.u8()
	h.Options.Algorithm = r.str()
	h.Options.ECS = r.u32()
	h.Options.SD = r.u32()
	h.Options.TTTD = r.bool()
	h.Options.FastCDC = r.bool()
	h.ResumeToken = r.u64()
	h.Tenant = r.str()
	h.Secret = r.str()
	return h, r.done()
}

// HelloOK accepts a session.
type HelloOK struct {
	// SessionToken identifies the session for resumption. Zero for
	// ModeRestore connections.
	SessionToken uint64
	// Window is the maximum number of unacked command seqs the client may
	// keep in flight (server backpressure).
	Window uint32
	// MaxPayload is the frame payload cap both sides enforce from now on.
	MaxPayload uint32
	// LastApplied is the highest command seq the server has durably
	// applied — on a fresh session 0, on resume the client's replay point.
	LastApplied uint64
}

// Marshal encodes ok as a TypeHelloOK payload.
func (ok HelloOK) Marshal() []byte {
	b := make([]byte, 0, 24)
	b = putU64(b, ok.SessionToken)
	b = putU32(b, ok.Window)
	b = putU32(b, ok.MaxPayload)
	b = putU64(b, ok.LastApplied)
	return b
}

// UnmarshalHelloOK decodes a TypeHelloOK payload.
func UnmarshalHelloOK(p []byte) (HelloOK, error) {
	r := &reader{buf: p}
	var ok HelloOK
	ok.SessionToken = r.u64()
	ok.Window = r.u32()
	ok.MaxPayload = r.u32()
	ok.LastApplied = r.u64()
	return ok, r.done()
}

// ---------------------------------------------------------------------------
// Errors.

// Error codes. Retryable errors invite the client to reconnect and resume;
// the rest are final for the session.
const (
	CodeProtocol   uint16 = 1 // framing/grammar/sequencing violation
	CodeHandshake  uint16 = 2 // algorithm/options mismatch
	CodeBusy       uint16 = 3 // session limit reached (retryable)
	CodeDraining   uint16 = 4 // server shutting down (retryable elsewhere)
	CodeNotFound   uint16 = 5 // no such file / session
	CodeInternal   uint16 = 6 // engine failure
	CodeIntegrity  uint16 = 7 // chunk or file hash mismatch
	CodeOverloaded uint16 = 8 // durability budget exceeded; shed (retryable)
	CodeQuota      uint16 = 9 // tenant over its namespace quota (retryable)
)

// ErrorMsg is a structured failure report. RetryAfterMs, when non-zero on
// a retryable error, is the server's backoff hint: the client should wait
// at least that long before retrying — it lets an overloaded or
// quota-shedding service pace its herd instead of being hammered by
// exponential-backoff guesswork.
type ErrorMsg struct {
	Code         uint16
	Retryable    bool
	Msg          string
	RetryAfterMs uint32
}

// Error implements error so servers/clients can return it directly.
func (e ErrorMsg) Error() string {
	return fmt.Sprintf("wire: remote error code=%d retryable=%v: %s", e.Code, e.Retryable, e.Msg)
}

// Marshal encodes e as a TypeError payload.
func (e ErrorMsg) Marshal() []byte {
	b := make([]byte, 0, 12+len(e.Msg))
	b = putU16(b, e.Code)
	b = putBool(b, e.Retryable)
	b = putStr(b, e.Msg)
	b = putU32(b, e.RetryAfterMs)
	return b
}

// UnmarshalError decodes a TypeError payload.
func UnmarshalError(p []byte) (ErrorMsg, error) {
	r := &reader{buf: p}
	var e ErrorMsg
	e.Code = r.u16()
	e.Retryable = r.bool()
	e.Msg = r.str()
	e.RetryAfterMs = r.u32()
	return e, r.done()
}

// ---------------------------------------------------------------------------
// Sessioned ingest.

// FileBegin starts one named file on the session's ordered stream.
type FileBegin struct {
	Seq  uint64
	Name string
}

// Marshal encodes f as a TypeFileBegin payload.
func (f FileBegin) Marshal() []byte {
	b := make([]byte, 0, 16+len(f.Name))
	b = putU64(b, f.Seq)
	b = putStr(b, f.Name)
	return b
}

// UnmarshalFileBegin decodes a TypeFileBegin payload.
func UnmarshalFileBegin(p []byte) (FileBegin, error) {
	r := &reader{buf: p}
	var f FileBegin
	f.Seq = r.u64()
	f.Name = r.str()
	return f, r.done()
}

// OfferEntry is one locally chunked chunk: its hash and exact size.
type OfferEntry struct {
	Hash hashutil.Sum
	Size uint32
}

// Offer is a batch of consecutive stream chunks offered by hash. The
// server answers with the indices it needs the bytes for.
type Offer struct {
	Seq     uint64
	Entries []OfferEntry
}

// Marshal encodes o as a TypeOffer payload.
func (o Offer) Marshal() []byte {
	b := make([]byte, 0, 12+len(o.Entries)*(hashutil.Size+4))
	b = putU64(b, o.Seq)
	b = putU32(b, uint32(len(o.Entries)))
	for _, e := range o.Entries {
		b = append(b, e.Hash[:]...)
		b = putU32(b, e.Size)
	}
	return b
}

// UnmarshalOffer decodes a TypeOffer payload.
func UnmarshalOffer(p []byte) (Offer, error) {
	r := &reader{buf: p}
	var o Offer
	o.Seq = r.u64()
	n := r.u32()
	if r.count(n, MaxBatchChunks, hashutil.Size+4) {
		o.Entries = make([]OfferEntry, 0, n)
		for i := uint32(0); i < n && r.e == nil; i++ {
			var e OfferEntry
			e.Hash = r.hash()
			e.Size = r.u32()
			o.Entries = append(o.Entries, e)
		}
	}
	return o, r.done()
}

// Need answers an Offer: the offer-batch indices whose bytes the server
// wants, in ascending order. An empty list means the whole batch was
// already known — pure bandwidth elimination.
type Need struct {
	Seq     uint64
	Indices []uint32
}

// Marshal encodes n as a TypeNeed payload.
func (n Need) Marshal() []byte {
	b := make([]byte, 0, 12+4*len(n.Indices))
	b = putU64(b, n.Seq)
	b = putU32(b, uint32(len(n.Indices)))
	for _, i := range n.Indices {
		b = putU32(b, i)
	}
	return b
}

// UnmarshalNeed decodes a TypeNeed payload.
func UnmarshalNeed(p []byte) (Need, error) {
	r := &reader{buf: p}
	var n Need
	n.Seq = r.u64()
	c := r.u32()
	if r.count(c, MaxBatchChunks, 4) {
		n.Indices = make([]uint32, 0, c)
		for i := uint32(0); i < c && r.e == nil; i++ {
			n.Indices = append(n.Indices, r.u32())
		}
	}
	return n, r.done()
}

// ChunkData carries a run of needed chunk bytes for offer batch Seq:
// Chunks[i] is the payload of need-list position Start+i. A batch's data
// may be split across several ChunkData frames to respect the payload cap.
type ChunkData struct {
	Seq    uint64
	Start  uint32 // index into the Need list (not the offer batch)
	Chunks [][]byte
}

// Marshal encodes d as a TypeChunkData payload.
func (d ChunkData) Marshal() []byte {
	size := 16
	for _, c := range d.Chunks {
		size += 4 + len(c)
	}
	b := make([]byte, 0, size)
	b = putU64(b, d.Seq)
	b = putU32(b, d.Start)
	b = putU32(b, uint32(len(d.Chunks)))
	for _, c := range d.Chunks {
		b = putBlob(b, c)
	}
	return b
}

// UnmarshalChunkData decodes a TypeChunkData payload. The chunk slices
// alias the payload buffer.
func UnmarshalChunkData(p []byte) (ChunkData, error) {
	r := &reader{buf: p}
	var d ChunkData
	d.Seq = r.u64()
	d.Start = r.u32()
	n := r.u32()
	if r.count(n, MaxBatchChunks, 4) {
		d.Chunks = make([][]byte, 0, n)
		for i := uint32(0); i < n && r.e == nil; i++ {
			d.Chunks = append(d.Chunks, r.blob())
		}
	}
	return d, r.done()
}

// FileEnd completes the current file: the server checks that exactly
// TotalBytes were reassembled and that their SHA-1 equals Sum before
// acknowledging — end-to-end integrity over the negotiated transfer.
type FileEnd struct {
	Seq        uint64
	TotalBytes uint64
	Sum        hashutil.Sum
}

// Marshal encodes f as a TypeFileEnd payload.
func (f FileEnd) Marshal() []byte {
	b := make([]byte, 0, 16+hashutil.Size)
	b = putU64(b, f.Seq)
	b = putU64(b, f.TotalBytes)
	return append(b, f.Sum[:]...)
}

// UnmarshalFileEnd decodes a TypeFileEnd payload.
func UnmarshalFileEnd(p []byte) (FileEnd, error) {
	r := &reader{buf: p}
	var f FileEnd
	f.Seq = r.u64()
	f.TotalBytes = r.u64()
	f.Sum = r.hash()
	return f, r.done()
}

// Ack acknowledges that command Seq (FileBegin, Offer or FileEnd) was
// fully applied. Acks are cumulative in effect — the server applies
// commands in seq order — but are sent individually.
type Ack struct {
	Seq uint64
}

// Marshal encodes a as a TypeAck payload.
func (a Ack) Marshal() []byte { return putU64(make([]byte, 0, 8), a.Seq) }

// UnmarshalAck decodes a TypeAck payload.
func UnmarshalAck(p []byte) (Ack, error) {
	r := &reader{buf: p}
	a := Ack{Seq: r.u64()}
	return a, r.done()
}

// ---------------------------------------------------------------------------
// Restore.

// RestoreReq asks for one file; Verify selects the verified (re-hashing)
// restore path on the server.
type RestoreReq struct {
	Name   string
	Verify bool
}

// Marshal encodes q as a TypeRestoreReq payload.
func (q RestoreReq) Marshal() []byte {
	b := make([]byte, 0, 4+len(q.Name))
	b = putStr(b, q.Name)
	return putBool(b, q.Verify)
}

// UnmarshalRestoreReq decodes a TypeRestoreReq payload.
func UnmarshalRestoreReq(p []byte) (RestoreReq, error) {
	r := &reader{buf: p}
	var q RestoreReq
	q.Name = r.str()
	q.Verify = r.bool()
	return q, r.done()
}

// RestoreToEOF is the RestoreRange length meaning "through end of file".
const RestoreToEOF = ^uint64(0)

// restoreRangeVersion versions the RestoreRange payload grammar.
const restoreRangeVersion = 1

// maxRestoreExtent bounds offsets and lengths a peer may request: 2^62
// bytes is beyond any storable file, so anything larger (other than the
// RestoreToEOF sentinel) is a hostile or corrupt frame, rejected at decode
// before it can reach int64 arithmetic.
const maxRestoreExtent = uint64(1) << 62

// RestoreRange asks for Length bytes of one file starting at Offset
// (RestoreToEOF = through EOF). The reply stream is the same
// RestoreData*/RestoreEnd as a whole-file restore — RestoreEnd carries the
// size and SHA-1 of the range actually sent (ranges past EOF clamp).
type RestoreRange struct {
	Name   string
	Verify bool
	Offset uint64
	Length uint64
}

// Marshal encodes q as a TypeRestoreRange payload.
func (q RestoreRange) Marshal() []byte {
	b := make([]byte, 0, 1+4+len(q.Name)+1+16)
	b = append(b, restoreRangeVersion)
	b = putStr(b, q.Name)
	b = putBool(b, q.Verify)
	b = putU64(b, q.Offset)
	return putU64(b, q.Length)
}

// UnmarshalRestoreRange decodes a TypeRestoreRange payload, rejecting
// extents no real file can have before any arithmetic happens on them.
func UnmarshalRestoreRange(p []byte) (RestoreRange, error) {
	r := &reader{buf: p}
	if v := r.u8(); r.e == nil && v != restoreRangeVersion {
		return RestoreRange{}, fmt.Errorf("wire: RestoreRange version %d not supported", v)
	}
	var q RestoreRange
	q.Name = r.str()
	q.Verify = r.bool()
	q.Offset = r.u64()
	q.Length = r.u64()
	if err := r.done(); err != nil {
		return RestoreRange{}, err
	}
	if q.Offset > maxRestoreExtent {
		return RestoreRange{}, fmt.Errorf("wire: RestoreRange offset %d out of range", q.Offset)
	}
	if q.Length > maxRestoreExtent && q.Length != RestoreToEOF {
		return RestoreRange{}, fmt.Errorf("wire: RestoreRange length %d out of range", q.Length)
	}
	return q, nil
}

// RestoreData is one run of restored bytes, in file order.
type RestoreData struct {
	Data []byte
}

// Marshal encodes d as a TypeRestoreData payload.
func (d RestoreData) Marshal() []byte {
	return putBlob(make([]byte, 0, 4+len(d.Data)), d.Data)
}

// UnmarshalRestoreData decodes a TypeRestoreData payload. Data aliases p.
func UnmarshalRestoreData(p []byte) (RestoreData, error) {
	r := &reader{buf: p}
	d := RestoreData{Data: r.blob()}
	return d, r.done()
}

// RestoreEnd closes a restore stream with the file's total size and
// SHA-1, letting the client verify end-to-end what it wrote.
type RestoreEnd struct {
	TotalBytes uint64
	Sum        hashutil.Sum
}

// Marshal encodes e as a TypeRestoreEnd payload.
func (e RestoreEnd) Marshal() []byte {
	b := putU64(make([]byte, 0, 8+hashutil.Size), e.TotalBytes)
	return append(b, e.Sum[:]...)
}

// UnmarshalRestoreEnd decodes a TypeRestoreEnd payload.
func UnmarshalRestoreEnd(p []byte) (RestoreEnd, error) {
	r := &reader{buf: p}
	var e RestoreEnd
	e.TotalBytes = r.u64()
	e.Sum = r.hash()
	return e, r.done()
}

// ListResp carries the store's restorable file names.
type ListResp struct {
	Names []string
}

// Marshal encodes l as a TypeListResp payload.
func (l ListResp) Marshal() []byte {
	b := putU32(make([]byte, 0, 64), uint32(len(l.Names)))
	for _, n := range l.Names {
		b = putStr(b, n)
	}
	return b
}

// UnmarshalListResp decodes a TypeListResp payload.
func UnmarshalListResp(p []byte) (ListResp, error) {
	r := &reader{buf: p}
	var l ListResp
	n := r.u32()
	if r.count(n, MaxListNames, 2) {
		l.Names = make([]string, 0, n)
		for i := uint32(0); i < n && r.e == nil; i++ {
			l.Names = append(l.Names, r.str())
		}
	}
	return l, r.done()
}

// ---------------------------------------------------------------------------
// Peer plane (gateway ⇄ shard chunk-cache routing).

// PeerFetch asks a shard for the bytes of the listed chunks, identified
// exactly like Offer entries (hash + exact size). The answer is
// best-effort: the shard replies with whatever subset its wire cache
// holds — a miss is never an error, just a chunk the client must send.
type PeerFetch struct {
	Entries []OfferEntry
}

// Marshal encodes f as a TypePeerFetch payload.
func (f PeerFetch) Marshal() []byte {
	b := make([]byte, 0, 4+len(f.Entries)*(hashutil.Size+4))
	b = putU32(b, uint32(len(f.Entries)))
	for _, e := range f.Entries {
		b = append(b, e.Hash[:]...)
		b = putU32(b, e.Size)
	}
	return b
}

// UnmarshalPeerFetch decodes a TypePeerFetch payload.
func UnmarshalPeerFetch(p []byte) (PeerFetch, error) {
	r := &reader{buf: p}
	var f PeerFetch
	n := r.u32()
	if r.count(n, MaxBatchChunks, hashutil.Size+4) {
		f.Entries = make([]OfferEntry, 0, n)
		for i := uint32(0); i < n && r.e == nil; i++ {
			var e OfferEntry
			e.Hash = r.hash()
			e.Size = r.u32()
			f.Entries = append(f.Entries, e)
		}
	}
	return f, r.done()
}

// PeerChunks answers a PeerFetch: Chunks[i] is the bytes of fetch-list
// position Indices[i]. Positions absent from Indices were cache misses.
type PeerChunks struct {
	Indices []uint32
	Chunks  [][]byte
}

// Marshal encodes c as a TypePeerChunks payload.
func (c PeerChunks) Marshal() []byte {
	size := 8 + 4*len(c.Indices)
	for _, ch := range c.Chunks {
		size += 4 + len(ch)
	}
	b := make([]byte, 0, size)
	b = putU32(b, uint32(len(c.Indices)))
	for _, i := range c.Indices {
		b = putU32(b, i)
	}
	b = putU32(b, uint32(len(c.Chunks)))
	for _, ch := range c.Chunks {
		b = putBlob(b, ch)
	}
	return b
}

// UnmarshalPeerChunks decodes a TypePeerChunks payload. The chunk slices
// alias the payload buffer. A well-formed reply has matching Indices and
// Chunks lengths; the decoder enforces it so consumers can index freely.
func UnmarshalPeerChunks(p []byte) (PeerChunks, error) {
	r := &reader{buf: p}
	var c PeerChunks
	ni := r.u32()
	if r.count(ni, MaxBatchChunks, 4) {
		c.Indices = make([]uint32, 0, ni)
		for i := uint32(0); i < ni && r.e == nil; i++ {
			c.Indices = append(c.Indices, r.u32())
		}
	}
	nc := r.u32()
	if r.e == nil && nc != ni {
		r.fail(fmt.Errorf("%w: PeerChunks has %d indices but %d chunks", ErrFieldRange, ni, nc))
	}
	if r.count(nc, MaxBatchChunks, 4) {
		c.Chunks = make([][]byte, 0, nc)
		for i := uint32(0); i < nc && r.e == nil; i++ {
			c.Chunks = append(c.Chunks, r.blob())
		}
	}
	return c, r.done()
}

// PeerPut seeds chunk bytes into the receiving shard's wire cache. The
// shard re-hashes each chunk itself (the hash is not carried — a trusted
// link is still not a trusted computation), so a corrupt put can never
// poison negotiation. Acknowledged with a bare PeerPutOK for flow
// control.
type PeerPut struct {
	Chunks [][]byte
}

// Marshal encodes p as a TypePeerPut payload.
func (pp PeerPut) Marshal() []byte {
	size := 4
	for _, ch := range pp.Chunks {
		size += 4 + len(ch)
	}
	b := make([]byte, 0, size)
	b = putU32(b, uint32(len(pp.Chunks)))
	for _, ch := range pp.Chunks {
		b = putBlob(b, ch)
	}
	return b
}

// UnmarshalPeerPut decodes a TypePeerPut payload. The chunk slices alias
// the payload buffer.
func UnmarshalPeerPut(p []byte) (PeerPut, error) {
	r := &reader{buf: p}
	var pp PeerPut
	n := r.u32()
	if r.count(n, MaxBatchChunks, 4) {
		pp.Chunks = make([][]byte, 0, n)
		for i := uint32(0); i < n && r.e == nil; i++ {
			pp.Chunks = append(pp.Chunks, r.blob())
		}
	}
	return pp, r.done()
}
