// Replica/migrate plane payload codecs. These frames ride ModePeer
// connections between a cluster gateway and a shard during rebalance and
// replication repair: MigrateBegin/MigrateData/MigrateEnd stream a whole
// file into the target shard's engine (which re-chunks and dedups the
// byte stream itself, so no chunker-options handshake is needed on this
// interior link), FileStat batch-checks which files a shard holds, and
// FileDrop forgets a file that finished migrating off a drained shard.
//
// Every request grammar is versioned like RestoreRange: the shard rejects
// a version it does not speak instead of misparsing it, so the plane can
// grow fields without a flag day.
package wire

import (
	"fmt"

	"mhdedup/internal/hashutil"
)

// MaxStatNames bounds one FileStat batch.
const MaxStatNames = 1 << 16

// migrateVersion versions the MigrateBegin payload grammar.
const migrateVersion uint8 = 1

// fileDropVersion versions the FileDrop payload grammar.
const fileDropVersion uint8 = 1

// fileStatVersion versions the FileStat payload grammar.
const fileStatVersion uint8 = 1

// MigrateBegin starts one migrated-file ingest on a shard. Name is the
// full (already tenant-namespaced) store name — migration is an interior
// operation, so no tenant scoping is applied by the receiving shard.
type MigrateBegin struct {
	Name string
}

// Marshal encodes m as a TypeMigrateBegin payload.
func (m MigrateBegin) Marshal() []byte {
	b := make([]byte, 0, 3+len(m.Name))
	b = append(b, migrateVersion)
	b = putStr(b, m.Name)
	return b
}

// UnmarshalMigrateBegin decodes a TypeMigrateBegin payload.
func UnmarshalMigrateBegin(p []byte) (MigrateBegin, error) {
	r := &reader{buf: p}
	if v := r.u8(); r.e == nil && v != migrateVersion {
		return MigrateBegin{}, fmt.Errorf("wire: MigrateBegin version %d not supported", v)
	}
	var m MigrateBegin
	m.Name = r.str()
	if err := r.done(); err != nil {
		return MigrateBegin{}, err
	}
	if m.Name == "" {
		return MigrateBegin{}, fmt.Errorf("%w: MigrateBegin with empty name", ErrFieldRange)
	}
	return m, nil
}

// MigrateData carries one in-order run of the migrating file's bytes.
type MigrateData struct {
	Data []byte
}

// Marshal encodes d as a TypeMigrateData payload.
func (d MigrateData) Marshal() []byte {
	b := make([]byte, 0, 4+len(d.Data))
	return putBlob(b, d.Data)
}

// UnmarshalMigrateData decodes a TypeMigrateData payload. The returned
// bytes alias the payload; callers that retain them must copy.
func UnmarshalMigrateData(p []byte) (MigrateData, error) {
	r := &reader{buf: p}
	var d MigrateData
	d.Data = r.blob()
	if err := r.done(); err != nil {
		return MigrateData{}, err
	}
	return d, nil
}

// MigrateEnd closes the migrated stream, declaring its whole-file size
// and SHA-1 so the receiving shard can refuse a short or corrupted copy
// before acknowledging it with MigrateOK.
type MigrateEnd struct {
	TotalBytes uint64
	Sum        hashutil.Sum
}

// Marshal encodes e as a TypeMigrateEnd payload.
func (e MigrateEnd) Marshal() []byte {
	b := make([]byte, 0, 8+hashutil.Size)
	b = putU64(b, e.TotalBytes)
	return append(b, e.Sum[:]...)
}

// UnmarshalMigrateEnd decodes a TypeMigrateEnd payload.
func UnmarshalMigrateEnd(p []byte) (MigrateEnd, error) {
	r := &reader{buf: p}
	var e MigrateEnd
	e.TotalBytes = r.u64()
	e.Sum = r.hash()
	if err := r.done(); err != nil {
		return MigrateEnd{}, err
	}
	return e, nil
}

// FileDrop asks a shard to forget one (fully namespaced) file — the final
// step of migrating it off a drained shard. Dropping a file the shard
// does not have is answered with FileDropOK too (idempotent).
type FileDrop struct {
	Name string
}

// Marshal encodes d as a TypeFileDrop payload.
func (d FileDrop) Marshal() []byte {
	b := make([]byte, 0, 3+len(d.Name))
	b = append(b, fileDropVersion)
	b = putStr(b, d.Name)
	return b
}

// UnmarshalFileDrop decodes a TypeFileDrop payload.
func UnmarshalFileDrop(p []byte) (FileDrop, error) {
	r := &reader{buf: p}
	if v := r.u8(); r.e == nil && v != fileDropVersion {
		return FileDrop{}, fmt.Errorf("wire: FileDrop version %d not supported", v)
	}
	var d FileDrop
	d.Name = r.str()
	if err := r.done(); err != nil {
		return FileDrop{}, err
	}
	if d.Name == "" {
		return FileDrop{}, fmt.Errorf("%w: FileDrop with empty name", ErrFieldRange)
	}
	return d, nil
}

// FileStat asks which of a batch of (fully namespaced) file names the
// shard holds; FileStatOK answers with a presence flag per name in order.
type FileStat struct {
	Names []string
}

// Marshal encodes s as a TypeFileStat payload.
func (s FileStat) Marshal() []byte {
	b := make([]byte, 0, 16)
	b = append(b, fileStatVersion)
	b = putU32(b, uint32(len(s.Names)))
	for _, n := range s.Names {
		b = putStr(b, n)
	}
	return b
}

// UnmarshalFileStat decodes a TypeFileStat payload, rejecting hostile
// counts (each declared name needs at least its 2-byte length prefix).
func UnmarshalFileStat(p []byte) (FileStat, error) {
	r := &reader{buf: p}
	if v := r.u8(); r.e == nil && v != fileStatVersion {
		return FileStat{}, fmt.Errorf("wire: FileStat version %d not supported", v)
	}
	n := r.u32()
	if !r.count(n, MaxStatNames, 2) {
		return FileStat{}, r.done()
	}
	s := FileStat{Names: make([]string, n)}
	for i := range s.Names {
		s.Names[i] = r.str()
	}
	if err := r.done(); err != nil {
		return FileStat{}, err
	}
	return s, nil
}

// FileStatOK answers FileStat: Present[i] reports whether Names[i] exists
// on the shard.
type FileStatOK struct {
	Present []bool
}

// Marshal encodes s as a TypeFileStatOK payload.
func (s FileStatOK) Marshal() []byte {
	b := make([]byte, 0, 4+len(s.Present))
	b = putU32(b, uint32(len(s.Present)))
	for _, v := range s.Present {
		b = putBool(b, v)
	}
	return b
}

// UnmarshalFileStatOK decodes a TypeFileStatOK payload.
func UnmarshalFileStatOK(p []byte) (FileStatOK, error) {
	r := &reader{buf: p}
	n := r.u32()
	if !r.count(n, MaxStatNames, 1) {
		return FileStatOK{}, r.done()
	}
	s := FileStatOK{Present: make([]bool, n)}
	for i := range s.Present {
		s.Present[i] = r.bool()
	}
	if err := r.done(); err != nil {
		return FileStatOK{}, err
	}
	return s, nil
}
