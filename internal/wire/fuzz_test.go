package wire

import (
	"bytes"
	"testing"
)

// FuzzWireDecode throws arbitrary bytes at the complete decode path —
// frame parsing, then the typed message decoder — and checks the codec's
// total-function invariants: no panic, no accepted-then-ambiguous input.
// Whenever the input does decode, re-encoding the typed message must
// reproduce the payload byte-for-byte (the codec has one canonical form),
// and re-framing must reproduce the raw frame.
func FuzzWireDecode(f *testing.F) {
	// Seed with every valid message framed, plus structured garbage.
	for _, tc := range sampleMessages() {
		f.Add(AppendFrame(nil, tc.t, tc.msg.Marshal()))
	}
	f.Add(AppendFrame(nil, TypeListReq, nil))
	f.Add(AppendFrame(nil, TypeClose, nil))
	f.Add([]byte("MHDW garbage"))
	f.Add(make([]byte, HeaderSize+TrailerSize))
	f.Fuzz(func(t *testing.T, raw []byte) {
		fr, err := Decode(raw, 0)
		if err != nil {
			return
		}
		msg, err := UnmarshalAny(fr)
		if err != nil || msg == nil {
			return
		}
		m, ok := msg.(interface{ Marshal() []byte })
		if !ok {
			t.Fatalf("decoded message %T has no Marshal", msg)
		}
		if got := m.Marshal(); !bytes.Equal(got, fr.Payload) {
			t.Fatalf("type %s: decode/encode not canonical:\npayload %x\nreenc   %x",
				TypeName(fr.Type), fr.Payload, got)
		}
		if refr := AppendFrame(nil, fr.Type, fr.Payload); !bytes.Equal(refr, raw) {
			t.Fatalf("re-framing differs from accepted input")
		}
	})
}
