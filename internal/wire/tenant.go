package wire

import "strings"

// Tenant namespacing. A tenant is a short identifier carried in Hello;
// the server scopes every file name under it by prefixing "<tenant>/".
// The empty tenant is the root namespace: it sees un-prefixed names and —
// because every tenant prefix is a legal root-namespace directory — full
// visibility over the store. Tenant identifiers therefore must never
// contain the separator, or one tenant could alias into another's prefix.

// MaxTenantLen bounds tenant identifiers.
const MaxTenantLen = 64

// ValidTenant reports whether t is a legal tenant identifier: empty (the
// root namespace) or 1..MaxTenantLen characters drawn from
// [a-zA-Z0-9._-], with no path separator and no way to dot-escape (".",
// ".." are refused).
func ValidTenant(t string) bool {
	if t == "" {
		return true
	}
	if len(t) > MaxTenantLen || t == "." || t == ".." {
		return false
	}
	for i := 0; i < len(t); i++ {
		c := t[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// NSJoin maps a client-visible name into tenant's slice of the store
// namespace.
func NSJoin(tenant, name string) string {
	if tenant == "" {
		return name
	}
	return tenant + "/" + name
}

// NSStrip maps a stored name back into tenant's client-visible namespace.
// ok is false when the name belongs to a different tenant. The root
// namespace sees every name verbatim.
func NSStrip(tenant, full string) (name string, ok bool) {
	if tenant == "" {
		return full, true
	}
	rest, found := strings.CutPrefix(full, tenant+"/")
	if !found {
		return "", false
	}
	return rest, true
}
