package store

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"mhdedup/internal/hashutil"
	"mhdedup/internal/simdisk"
)

// buildFragmentedStore synthesizes a store whose single file has a
// deliberately hostile recipe: many small refs alternating between
// containers, with gaps, overlaps and backward jumps — everything the
// planner and the reorder buffer must get right. Returns the store, the
// file name and the expected bytes.
func buildFragmentedStore(t *testing.T, seed int64, refCount int) (*Store, string, []byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	disk := simdisk.New()
	s := New(disk, FormatBasic)

	const containerSize = 64 << 10
	containers := map[hashutil.Sum][]byte{}
	var names []hashutil.Sum
	for i := 0; i < 4; i++ {
		data := make([]byte, containerSize)
		rng.Read(data)
		name := hashutil.SumString(fmt.Sprintf("frag-c%d", i))
		if err := s.WriteDiskChunk(name, data); err != nil {
			t.Fatal(err)
		}
		containers[name] = data
		names = append(names, name)
	}

	fm := &FileManifest{File: "frag/file"}
	var want []byte
	// Long runs of same-container refs (coalescible, some with gaps),
	// interrupted by jumps to other containers.
	c := names[0]
	pos := int64(0)
	for len(fm.Refs) < refCount {
		switch rng.Intn(5) {
		case 0: // switch container, random position
			c = names[rng.Intn(len(names))]
			pos = int64(rng.Intn(containerSize / 2))
		case 1: // small backward overlap
			pos -= int64(rng.Intn(256))
			if pos < 0 {
				pos = 0
			}
		case 2: // gap forward
			pos += int64(rng.Intn(2048))
		}
		size := int64(64 + rng.Intn(2048))
		if pos+size > containerSize {
			pos = 0
		}
		fm.Refs = append(fm.Refs, FileRef{Container: c, Start: pos, Size: size})
		want = append(want, containers[c][pos:pos+size]...)
		pos += size
	}
	if err := s.WriteFileManifest(fm); err != nil {
		t.Fatal(err)
	}
	return s, fm.File, want
}

// TestPipelineMatchesSerialReference is the core differential invariant at
// the store layer: for every worker count and window size — including
// pathological one-read windows that force constant reordering pressure —
// the pipeline's output is bit-identical to the serial per-ref walk.
func TestPipelineMatchesSerialReference(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		s, file, want := buildFragmentedStore(t, seed, 300)
		var serial bytes.Buffer
		if err := s.RestoreFile(file, &serial); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(serial.Bytes(), want) {
			t.Fatalf("seed %d: serial reference path diverges from construction", seed)
		}
		for _, workers := range []int{0, 1, 2, 8} {
			for _, window := range []int64{0, 1, 4096, 1 << 20} {
				opts := RestoreOptions{Workers: workers, WindowBytes: window}
				var got bytes.Buffer
				stats, err := s.RestoreFileStats(file, &got, opts)
				if err != nil {
					t.Fatalf("seed %d workers %d window %d: %v", seed, workers, window, err)
				}
				if !bytes.Equal(got.Bytes(), want) {
					t.Fatalf("seed %d workers %d window %d: output diverges (%d vs %d bytes)",
						seed, workers, window, got.Len(), len(want))
				}
				if stats.Refs != 300 || stats.Reads < 1 || stats.Reads > stats.Refs {
					t.Fatalf("implausible stats: %+v", stats)
				}
				if stats.OutputBytes != int64(len(want)) {
					t.Fatalf("stats.OutputBytes %d, want %d", stats.OutputBytes, len(want))
				}
			}
		}
	}
}

// blockingWriter stalls the restore's output: the first Write signals
// stalled and parks until released. It lets the backpressure test freeze
// the emitter mid-restore.
type blockingWriter struct {
	stalled  chan struct{}
	release  chan struct{}
	once     sync.Once
	received int64
}

func (b *blockingWriter) Write(p []byte) (int, error) {
	b.once.Do(func() {
		close(b.stalled)
		<-b.release
	})
	b.received += int64(len(p))
	return len(p), nil
}

// TestPipelineBackpressureBoundsMemory freezes the writer and checks the
// window actually bounds work: with the emitter stalled no credit is ever
// returned, so the container bytes the readers fetch can never exceed the
// window budget (admission happens before the disk read). Peak window
// occupancy must respect the same bound.
func TestPipelineBackpressureBoundsMemory(t *testing.T) {
	s, file, want := buildFragmentedStore(t, 7, 400)
	const window = 16 << 10

	baseline := s.Disk().Counters().BytesRead[simdisk.Data]
	w := &blockingWriter{stalled: make(chan struct{}), release: make(chan struct{})}
	done := make(chan RestoreStats, 1)
	go func() {
		stats, err := s.RestoreFileStats(file, w, RestoreOptions{Workers: 8, WindowBytes: window})
		if err != nil {
			t.Error(err)
		}
		done <- stats
	}()

	<-w.stalled
	// Give the readers every chance to run ahead; if the window did not
	// bound admission they would fetch the whole plan here.
	time.Sleep(100 * time.Millisecond)
	inFlight := s.Disk().Counters().BytesRead[simdisk.Data] - baseline
	// Everything fetched so far was admitted into the window while zero
	// bytes have been credited back (the writer is frozen before its first
	// byte lands). Oversized reads are impossible here: every planned read
	// of this store is far smaller than the window... but the plan may
	// coalesce, so allow one max-read slack on top of the budget.
	var largest int64
	fm, err := s.ReadFileManifest(file)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := planRestore(fm, RestoreOptions{}.gap())
	if err != nil {
		t.Fatal(err)
	}
	for i := range plan.reads {
		if plan.reads[i].length > largest {
			largest = plan.reads[i].length
		}
	}
	bound := int64(window)
	if largest > bound {
		bound = largest
	}
	if inFlight > bound {
		t.Fatalf("with writer stalled, %d container bytes fetched; window bound is %d (largest read %d)",
			inFlight, bound, largest)
	}
	if inFlight == 0 {
		t.Fatal("no bytes fetched while stalled; pipeline did not start")
	}

	close(w.release)
	stats := <-done
	if w.received != int64(len(want)) {
		t.Fatalf("restored %d bytes, want %d", w.received, len(want))
	}
	if stats.PeakWindowBytes > bound {
		t.Fatalf("PeakWindowBytes %d exceeds bound %d", stats.PeakWindowBytes, bound)
	}
	if stats.PeakWindowBytes <= 0 {
		t.Fatal("PeakWindowBytes not recorded")
	}
}

// TestPipelineOversizedReadRunsAlone: a window smaller than a single
// planned read must not wedge the pipeline — the oversized read is
// admitted into an empty window and becomes the effective bound.
func TestPipelineOversizedReadRunsAlone(t *testing.T) {
	s, file, want := buildFragmentedStore(t, 11, 200)
	var got bytes.Buffer
	stats, err := s.RestoreFileStats(file, &got, RestoreOptions{Workers: 4, WindowBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("oversized-read restore diverges from reference")
	}
	// With a 1-byte window every read is oversized and runs alone: the
	// peak equals the largest planned read.
	fm, _ := s.ReadFileManifest(file)
	plan, _ := planRestore(fm, RestoreOptions{}.gap())
	var largest int64
	for i := range plan.reads {
		if plan.reads[i].length > largest {
			largest = plan.reads[i].length
		}
	}
	if stats.PeakWindowBytes != largest {
		t.Fatalf("PeakWindowBytes %d, want largest read %d", stats.PeakWindowBytes, largest)
	}
}

// TestPipelineReadErrorPropagates: a failing container read must surface
// as the restore's error — with the real cause, not a generic pipeline
// failure — for every worker count.
func TestPipelineReadErrorPropagates(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		s, file, _ := buildFragmentedStore(t, 13, 150)
		boom := errors.New("injected read failure")
		var reads int
		var mu sync.Mutex
		s.Disk().SetFailureHook(func(op simdisk.Op, cat simdisk.Category, name string) error {
			if op != simdisk.OpRead || cat != simdisk.Data {
				return nil
			}
			mu.Lock()
			defer mu.Unlock()
			reads++
			if reads == 5 { // let a few succeed so the failure lands mid-pipeline
				return boom
			}
			return nil
		})
		var got bytes.Buffer
		err := s.RestoreFileOpts(file, &got, RestoreOptions{Workers: workers})
		if err == nil {
			t.Fatalf("workers %d: injected read failure not reported", workers)
		}
		if !errors.Is(err, boom) {
			t.Fatalf("workers %d: error %v does not wrap the injected failure", workers, err)
		}
		if strings.Contains(err.Error(), "pipeline failed") {
			t.Fatalf("workers %d: got generic pipeline error %v, want the real cause", workers, err)
		}
	}
}

// TestPipelineWriterErrorPropagates: the destination failing mid-restore
// must abort the pipeline promptly and return the writer's error.
func TestPipelineWriterErrorPropagates(t *testing.T) {
	s, file, _ := buildFragmentedStore(t, 17, 150)
	boom := errors.New("destination full")
	ew := &errAfterWriter{n: 3, err: boom}
	err := s.RestoreFileOpts(file, ew, RestoreOptions{Workers: 8, WindowBytes: 8 << 10})
	if !errors.Is(err, boom) {
		t.Fatalf("writer error not propagated: %v", err)
	}
}

// errAfterWriter accepts n writes then fails forever.
type errAfterWriter struct {
	n    int
	err  error
	seen int
}

func (e *errAfterWriter) Write(p []byte) (int, error) {
	e.seen++
	if e.seen > e.n {
		return 0, e.err
	}
	return len(p), nil
}

// TestVerifierPipelineMatchesSerial: the verifying pipeline must produce
// the same bytes as the serial verifying walk on a clean store, for
// parallel worker counts.
func TestVerifierPipelineMatchesSerial(t *testing.T) {
	s, files := buildVerifyStore(t)
	v := NewVerifier(s, VerifyOpts{})
	for name, want := range files {
		var serial bytes.Buffer
		if err := v.RestoreFile(name, &serial); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(serial.Bytes(), want) {
			t.Fatalf("%s: serial verified restore diverges", name)
		}
		for _, workers := range []int{1, 2, 8} {
			var got bytes.Buffer
			if err := v.RestoreFileOpts(name, &got, RestoreOptions{Workers: workers, WindowBytes: 512}); err != nil {
				t.Fatalf("%s workers %d: %v", name, workers, err)
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Fatalf("%s workers %d: verified pipeline output diverges", name, workers)
			}
		}
	}
}

// TestVerifierPipelineRefusesCorruptData: flip a stored bit and the
// verifying pipeline must fail the restore of any file whose refs overlap
// the damage — and still restore untouched files.
func TestVerifierPipelineRefusesCorruptData(t *testing.T) {
	s, files := buildVerifyStore(t)
	// Corrupt container c2 in both of its entries ([0,256) referenced by
	// f/one, [256,768) by f/two); f/shared references only c1. Damage must
	// be refused exactly where refs overlap it.
	c2 := hashutil.SumString("c2")
	flipStoredByte(t, s.Disk(), c2, 100)
	flipStoredByte(t, s.Disk(), c2, 300)

	v := NewVerifier(s, VerifyOpts{})
	for _, name := range []string{"f/one", "f/two"} {
		var got bytes.Buffer
		err := v.RestoreFileOpts(name, &got, RestoreOptions{Workers: 4})
		if err == nil {
			t.Fatalf("%s: corrupt container restored without error", name)
		}
		if !strings.Contains(err.Error(), "corrupt") {
			t.Fatalf("%s: error %v does not name corruption", name, err)
		}
	}
	var got bytes.Buffer
	if err := v.RestoreFileOpts("f/shared", &got, RestoreOptions{Workers: 4}); err != nil {
		t.Fatalf("f/shared references only clean data, got %v", err)
	}
	if !bytes.Equal(got.Bytes(), files["f/shared"]) {
		t.Fatal("f/shared bytes diverge")
	}
}

// flipStoredByte XORs one stored byte of a Data object in place.
func flipStoredByte(t *testing.T, disk *simdisk.Disk, name hashutil.Sum, off int) {
	t.Helper()
	data, err := disk.Read(simdisk.Data, name.Hex())
	if err != nil {
		t.Fatal(err)
	}
	mutated := append([]byte(nil), data...)
	mutated[off] ^= 0xff
	if err := disk.Write(simdisk.Data, name.Hex(), mutated); err != nil {
		t.Fatal(err)
	}
}
