package store

import (
	"fmt"

	"mhdedup/internal/hashutil"
)

// Restore planning: turn a FileManifest's chunk-granular recipe into a
// minimal set of container reads.
//
// A recipe is a list of (container, start, size) refs in output order.
// Issuing one container read per ref makes read amplification the dominant
// restore cost: a near-duplicate backup's recipe alternates between a
// handful of containers, and every alternation pays a full disk access for
// what is often a few KiB. The planner exploits the locality the ingest
// side worked to create (FileManifest.Append already merges byte-contiguous
// runs): it walks the refs in output order, groups consecutive refs that
// land in the same container, and coalesces their ranges — overlapping,
// adjacent, or separated by at most CoalesceGap container bytes — into one
// planned read. Gap bytes are read and discarded: one slightly larger
// sequential read beats two disk accesses.
//
// Every planned read serves one contiguous run of the output, so the reads
// are totally ordered by output position. That property is what makes the
// pipeline in restorepipe.go trivially deadlock-free and its memory bound
// exact: reads are admitted into the window in order, emitted in order,
// and a read's buffer is freed as soon as its last segment is written —
// a buffer never has to survive an unbounded stretch of output the way it
// would if far-apart refs shared one read.

// Default tuning for RestoreOptions zero fields.
const (
	// DefaultRestoreWindowBytes bounds the reorder buffer: admitted-but-
	// unemitted read bytes never exceed it (except for a single read larger
	// than the whole window, which runs alone).
	DefaultRestoreWindowBytes = 8 << 20
	// DefaultRestoreCoalesceGap is how many container bytes of gap a
	// planned read bridges: two refs into the same container separated by
	// at most this many bytes coalesce into one read that discards the gap.
	DefaultRestoreCoalesceGap = 64 << 10
)

// RestoreOptions tunes the batched restore pipeline.
type RestoreOptions struct {
	// Workers is the number of concurrent container-read goroutines.
	// Values ≤ 1 run the pipeline synchronously on the calling goroutine
	// (still planned and coalesced, but one read at a time, in order).
	Workers int
	// WindowBytes bounds the reorder buffer: the total bytes of planned
	// reads in flight or buffered awaiting emission. Zero means
	// DefaultRestoreWindowBytes. A single read larger than the window is
	// admitted alone (the bound is then that read's size).
	WindowBytes int64
	// CoalesceGap is the largest container-byte gap a planned read bridges
	// (gap bytes are read and discarded). Zero means
	// DefaultRestoreCoalesceGap; negative disables gap bridging (only
	// overlapping/adjacent ranges coalesce).
	CoalesceGap int64
}

func (o RestoreOptions) window() int64 {
	if o.WindowBytes <= 0 {
		return DefaultRestoreWindowBytes
	}
	return o.WindowBytes
}

func (o RestoreOptions) gap() int64 {
	if o.CoalesceGap == 0 {
		return DefaultRestoreCoalesceGap
	}
	if o.CoalesceGap < 0 {
		return 0
	}
	return o.CoalesceGap
}

func (o RestoreOptions) workers() int {
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

// planSegment is one output run served from a planned read's buffer:
// size bytes found at off within the read.
type planSegment struct {
	off  int64 // offset within the read's buffer
	size int64
}

// plannedRead is one coalesced container read serving one or more
// consecutive output segments.
type plannedRead struct {
	container hashutil.Sum
	// start/length delimit the single contiguous container range read.
	start, length int64
	// segs are emitted in order; offsets are relative to start.
	segs []planSegment
}

// restorePlan is the read schedule for one file: reads in output order,
// each serving a contiguous run of the output.
type restorePlan struct {
	file  string
	reads []plannedRead
	// refs counts the recipe entries planned; refs/len(reads) is the
	// coalesce ratio.
	refs int
	// outputBytes is the reconstructed file's size; plannedBytes the total
	// container bytes the reads fetch (≥ outputBytes − overlap reuse,
	// + discarded gap bytes).
	outputBytes, plannedBytes int64
}

// coalesceRatio is refs per read ≥ 1; 0 for an empty plan.
func (p *restorePlan) coalesceRatio() float64 {
	if len(p.reads) == 0 {
		return 0
	}
	return float64(p.refs) / float64(len(p.reads))
}

// planRestore builds the read schedule for fm. Refs are validated the way
// the serial path's container reads would reject them (negative
// start/size), so a plan that builds is safe to slice.
func planRestore(fm *FileManifest, gap int64) (*restorePlan, error) {
	p := &restorePlan{file: fm.File}
	for _, ref := range fm.Refs {
		if ref.Start < 0 || ref.Size < 0 {
			return nil, fmt.Errorf("store: restore %q: ref %s[%d+%d] is malformed",
				fm.File, ref.Container.Short(), ref.Start, ref.Size)
		}
		p.refs++
		p.outputBytes += ref.Size
		if n := len(p.reads); n > 0 {
			last := &p.reads[n-1]
			if last.container == ref.Container && bridgeable(last.start, last.length, ref.Start, ref.Size, gap) {
				lo, hi := last.start, last.start+last.length
				nlo, nhi := lo, hi
				if ref.Start < nlo {
					nlo = ref.Start
				}
				if end := ref.Start + ref.Size; end > nhi {
					nhi = end
				}
				if shift := lo - nlo; shift > 0 {
					// The read grew backwards: earlier segments move right
					// within the (now longer) buffer.
					for i := range last.segs {
						last.segs[i].off += shift
					}
				}
				p.plannedBytes += (nhi - nlo) - (hi - lo)
				last.start, last.length = nlo, nhi-nlo
				last.segs = append(last.segs, planSegment{off: ref.Start - nlo, size: ref.Size})
				continue
			}
		}
		p.reads = append(p.reads, plannedRead{
			container: ref.Container,
			start:     ref.Start,
			length:    ref.Size,
			segs:      []planSegment{{off: 0, size: ref.Size}},
		})
		p.plannedBytes += ref.Size
	}
	return p, nil
}

// bridgeable reports whether range [bStart,+bSize) can join a read
// currently covering [aStart,+aSize): overlap, adjacency, or a gap of at
// most gap container bytes on either side.
func bridgeable(aStart, aSize, bStart, bSize, gap int64) bool {
	return bStart <= aStart+aSize+gap && aStart <= bStart+bSize+gap
}
