package store

import (
	"testing"

	"mhdedup/internal/hashutil"
	"mhdedup/internal/simdisk"
)

// gcFixture builds a store with two files: "a" owning container A, "b"
// owning container B but also referencing A (shared data).
func gcFixture(t *testing.T) (*simdisk.Disk, *Store, hashutil.Sum, hashutil.Sum) {
	t.Helper()
	disk := simdisk.New()
	s := New(disk, FormatMHD)

	mkContainer := func(tag string, size int64) hashutil.Sum {
		name := s.NextName()
		if err := s.WriteDiskChunk(name, make([]byte, size)); err != nil {
			t.Fatal(err)
		}
		m := NewManifest(name, FormatMHD)
		m.Append(Entry{Hash: hashutil.SumString(tag), Start: 0, Size: size, Kind: KindHook})
		if err := s.CreateManifest(m); err != nil {
			t.Fatal(err)
		}
		if err := s.CreateHook(hashutil.SumString(tag), name); err != nil {
			t.Fatal(err)
		}
		return name
	}
	contA := mkContainer("hookA", 4096)
	contB := mkContainer("hookB", 2048)

	fmA := &FileManifest{File: "a"}
	fmA.Append(FileRef{Container: contA, Start: 0, Size: 4096})
	if err := s.WriteFileManifest(fmA); err != nil {
		t.Fatal(err)
	}
	fmB := &FileManifest{File: "b"}
	fmB.Append(FileRef{Container: contB, Start: 0, Size: 2048})
	fmB.Append(FileRef{Container: contA, Start: 0, Size: 1024}) // shared
	if err := s.WriteFileManifest(fmB); err != nil {
		t.Fatal(err)
	}
	return disk, s, contA, contB
}

func TestSweepKeepsEverythingWhileReferenced(t *testing.T) {
	disk, s, _, _ := gcFixture(t)
	st, err := s.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if st.ContainersDeleted != 0 || st.ManifestsDeleted != 0 || st.HooksDeleted != 0 {
		t.Errorf("sweep of fully-referenced store deleted things: %+v", st)
	}
	if rep := Check(disk, FormatMHD); !rep.OK() {
		t.Errorf("store inconsistent after no-op sweep: %v", rep.Problems)
	}
}

func TestSweepReclaimsUnsharedContainer(t *testing.T) {
	disk, s, contA, contB := gcFixture(t)
	// Delete file b: container B becomes garbage; container A stays (file
	// a still references it).
	if err := s.DeleteFile("b"); err != nil {
		t.Fatal(err)
	}
	st, err := s.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if st.ContainersDeleted != 1 || st.BytesReclaimed != 2048 {
		t.Errorf("sweep stats: %+v", st)
	}
	if _, ok := disk.Size(simdisk.Data, contB.Hex()); ok {
		t.Error("container B still present")
	}
	if _, ok := disk.Size(simdisk.Data, contA.Hex()); !ok {
		t.Error("shared container A was wrongly reclaimed")
	}
	if st.ManifestsDeleted != 1 {
		t.Errorf("manifest of B not reclaimed: %+v", st)
	}
	if st.HooksDeleted != 1 {
		t.Errorf("hook of B not reclaimed: %+v", st)
	}
	// Remaining file still restorable; store still consistent.
	if rep := Check(disk, FormatMHD); !rep.OK() {
		t.Errorf("store inconsistent after sweep: %v", rep.Problems)
	}
}

func TestSweepSharedDataSurvivesUntilLastReference(t *testing.T) {
	disk, s, contA, _ := gcFixture(t)
	if err := s.DeleteFile("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sweep(); err != nil {
		t.Fatal(err)
	}
	// b still references part of A.
	if _, ok := disk.Size(simdisk.Data, contA.Hex()); !ok {
		t.Fatal("container A reclaimed while file b still references it")
	}
	if err := s.DeleteFile("b"); err != nil {
		t.Fatal(err)
	}
	st, err := s.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if st.ContainersDeleted != 2 {
		t.Errorf("final sweep should reclaim both containers: %+v", st)
	}
	if disk.TotalObjects() != 0 {
		t.Errorf("%d objects left after deleting everything", disk.TotalObjects())
	}
}

func TestDeleteUnknownFile(t *testing.T) {
	_, s, _, _ := gcFixture(t)
	if err := s.DeleteFile("ghost"); err == nil {
		t.Error("deleting an unknown file succeeded")
	}
}

func TestSweepPrunesMultiContainerManifests(t *testing.T) {
	disk := simdisk.New()
	s := New(disk, FormatMultiContainer)
	// Two containers; one segment manifest referencing both.
	c1, c2 := s.NextName(), s.NextName()
	s.WriteDiskChunk(c1, make([]byte, 1024))
	s.WriteDiskChunk(c2, make([]byte, 1024))
	m := NewManifest(c1, FormatMultiContainer)
	m.Append(Entry{Hash: hashutil.SumString("x"), Container: c1, Start: 0, Size: 1024})
	m.Append(Entry{Hash: hashutil.SumString("y"), Container: c2, Start: 0, Size: 1024})
	if err := s.CreateManifest(m); err != nil {
		t.Fatal(err)
	}
	// Only c1 is referenced by a file.
	fm := &FileManifest{File: "f"}
	fm.Append(FileRef{Container: c1, Start: 0, Size: 1024})
	if err := s.WriteFileManifest(fm); err != nil {
		t.Fatal(err)
	}

	st, err := s.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if st.ContainersDeleted != 1 {
		t.Fatalf("sweep stats: %+v", st)
	}
	// The manifest survives but no longer references the dead container.
	back, err := s.ReadManifest(c1)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != 1 || back.Entries[0].Container != c1 {
		t.Errorf("manifest not pruned: %+v", back.Entries)
	}
	if rep := Check(disk, FormatMultiContainer); !rep.OK() {
		t.Errorf("store inconsistent after pruning sweep: %v", rep.Problems)
	}
}
