package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"mhdedup/internal/hashutil"
	"mhdedup/internal/simdisk"
)

// treeStore returns a Store configured to write recipe trees with small
// chunk targets, so even modest manifests produce multi-leaf, multi-level
// trees worth testing.
func treeStore() *Store {
	s := New(simdisk.New(), FormatMHD)
	s.SetRecipeConfig(RecipeConfig{Trees: true, LeafChunkBytes: 512, NodeChunkBytes: 512})
	return s
}

// synthRefs builds n non-coalescible refs over nc container names with
// seeded pseudo-random starts and sizes.
func synthRefs(seed int64, n, nc int) []FileRef {
	rng := rand.New(rand.NewSource(seed))
	refs := make([]FileRef, n)
	for i := range refs {
		var c hashutil.Sum
		binary.BigEndian.PutUint64(c[:8], uint64(i%nc))
		refs[i] = FileRef{
			Container: c,
			Start:     int64(i%7)*100_000 + int64(rng.Intn(4096)) + 1,
			Size:      int64(100 + rng.Intn(9000)),
		}
	}
	return refs
}

func TestRecipeTreeRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 2, 37, 1000, 5000} {
		t.Run(fmt.Sprintf("refs=%d", n), func(t *testing.T) {
			s := treeStore()
			fm := &FileManifest{File: "f", Refs: synthRefs(int64(n)+1, n, 16)}
			st, err := s.WriteFileManifestTree(fm)
			if err != nil {
				t.Fatal(err)
			}
			back, err := s.ReadFileManifest("f")
			if err != nil {
				t.Fatal(err)
			}
			if len(fm.Refs) == 0 {
				if len(back.Refs) != 0 {
					t.Fatalf("empty manifest came back with %d refs", len(back.Refs))
				}
				return
			}
			if !reflect.DeepEqual(fm.Refs, back.Refs) {
				t.Fatalf("refs do not round-trip (%d in, %d out)", len(fm.Refs), len(back.Refs))
			}
			if st.Depth < 1 || st.Leaves < 1 {
				t.Fatalf("stats claim no tree: %+v", st)
			}
			raw, err := s.Disk().Read(simdisk.FileManifest, "f")
			if err != nil {
				t.Fatal(err)
			}
			if !IsRecipeTreeRoot(raw) {
				t.Fatal("stored FileManifest object is not a tree root")
			}
			if n >= 1000 && st.Depth < 2 {
				t.Fatalf("%d refs with 512-byte leaves should need interior nodes, depth = %d", n, st.Depth)
			}
		})
	}
}

func TestRecipeTreeWriteFileManifestRouting(t *testing.T) {
	// With Trees on, the ordinary WriteFileManifest entry point must write
	// a tree; with Trees off, a flat manifest. Both must read back equal.
	for _, trees := range []bool{false, true} {
		s := New(simdisk.New(), FormatMHD)
		s.SetRecipeConfig(RecipeConfig{Trees: trees})
		fm := &FileManifest{File: "f", Refs: synthRefs(3, 200, 8)}
		if err := s.WriteFileManifest(fm); err != nil {
			t.Fatal(err)
		}
		raw, err := s.Disk().Read(simdisk.FileManifest, "f")
		if err != nil {
			t.Fatal(err)
		}
		if IsRecipeTreeRoot(raw) != trees {
			t.Fatalf("Trees=%v but IsRecipeTreeRoot=%v", trees, !trees)
		}
		back, err := s.ReadFileManifest("f")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fm.Refs, back.Refs) {
			t.Fatalf("Trees=%v: refs do not round-trip", trees)
		}
	}
}

func TestWriteFileManifestTreeRejectsDegenerateRefs(t *testing.T) {
	s := treeStore()
	for _, bad := range []FileRef{
		{Container: sumOf("c"), Start: 0, Size: 0},
		{Container: sumOf("c"), Start: 0, Size: -5},
		{Container: sumOf("c"), Start: -1, Size: 10},
	} {
		fm := &FileManifest{File: "f", Refs: []FileRef{bad}}
		if _, err := s.WriteFileManifestTree(fm); err == nil {
			t.Errorf("degenerate ref %+v accepted", bad)
		}
	}
}

func TestFileManifestAppendRejectsDegenerateRefs(t *testing.T) {
	fm := &FileManifest{File: "f"}
	if err := fm.Append(FileRef{Container: sumOf("c"), Start: 0, Size: 0}); err == nil {
		t.Error("zero-size ref accepted")
	}
	if err := fm.Append(FileRef{Container: sumOf("c"), Start: 5, Size: -1}); err == nil {
		t.Error("negative-size ref accepted")
	}
	if err := fm.Append(FileRef{Container: sumOf("c"), Start: -2, Size: 10}); err == nil {
		t.Error("negative-start ref accepted")
	}
	if len(fm.Refs) != 0 {
		t.Fatalf("rejected refs were appended anyway: %+v", fm.Refs)
	}
	if err := fm.Append(FileRef{Container: sumOf("c"), Start: 0, Size: 10}); err != nil {
		t.Fatalf("valid ref rejected: %v", err)
	}
}

// TestRecipeTree64BitOffsets is the truncation-bug regression: refs whose
// Start or Size exceed 32 bits round-trip exactly through a recipe tree,
// while the legacy flat encoder refuses them outright (it used to truncate
// silently).
func TestRecipeTree64BitOffsets(t *testing.T) {
	huge := []FileRef{
		{Container: sumOf("a"), Start: 5 << 30, Size: 4096},          // start past 4 GiB
		{Container: sumOf("b"), Start: 1, Size: (1 << 32) + 12345},   // size past 4 GiB
		{Container: sumOf("c"), Start: 1<<40 + 7, Size: 1<<33 + 999}, // both
	}
	s := treeStore()
	fm := &FileManifest{File: "huge", Refs: huge}
	if _, err := s.WriteFileManifestTree(fm); err != nil {
		t.Fatal(err)
	}
	back, err := s.ReadFileManifest("huge")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(huge, back.Refs) {
		t.Fatalf("64-bit refs do not round-trip: %+v", back.Refs)
	}

	for _, r := range huge {
		flat := &FileManifest{File: "huge", Refs: []FileRef{r}}
		if _, err := flat.Encode(); err == nil {
			t.Errorf("flat encoder accepted >32-bit ref %+v (would truncate)", r)
		}
	}
}

// rangedFixture stores real container bytes behind a recipe tree and
// returns the store, the file's full contents, and its ref boundaries
// (every leaf boundary is a ref boundary, so probing all ref edges covers
// all leaf edges).
func rangedFixture(t *testing.T, nref int) (*Store, []byte, []int64) {
	t.Helper()
	s := treeStore()
	rng := rand.New(rand.NewSource(42))
	container := s.NextName()
	cdata := make([]byte, 1<<16)
	rng.Read(cdata)
	if err := s.WriteDiskChunk(container, cdata); err != nil {
		t.Fatal(err)
	}
	// One manifest entry vouching for the whole container, so the Verifier
	// can serve any sub-range of it.
	m := NewManifest(container, FormatMHD)
	m.Append(Entry{Hash: hashutil.SumBytes(cdata), Start: 0, Size: int64(len(cdata))})
	if err := s.CreateManifest(m); err != nil {
		t.Fatal(err)
	}
	fm := &FileManifest{File: "img"}
	var want []byte
	var bounds []int64
	for i := 0; i < nref; i++ {
		start := int64(rng.Intn(len(cdata) - 10_000))
		size := int64(50 + rng.Intn(9000))
		if err := fm.Append(FileRef{Container: container, Start: start, Size: size}); err != nil {
			t.Fatal(err)
		}
		want = append(want, cdata[start:start+size]...)
		bounds = append(bounds, int64(len(want)))
	}
	if _, err := s.WriteFileManifestTree(fm); err != nil {
		t.Fatal(err)
	}
	return s, want, bounds
}

func TestRestoreRangeEdges(t *testing.T) {
	s, want, bounds := rangedFixture(t, 300)
	total := int64(len(want))

	check := func(off, length int64) {
		t.Helper()
		var buf bytes.Buffer
		st, err := s.RestoreRange("img", off, length, &buf, RestoreOptions{})
		if err != nil {
			t.Fatalf("RestoreRange(%d, %d): %v", off, length, err)
		}
		lo := off
		if lo > total {
			lo = total
		}
		hi := total
		if length >= 0 && off+length < total {
			hi = off + length
		}
		if lo > hi {
			lo = hi
		}
		if !bytes.Equal(buf.Bytes(), want[lo:hi]) {
			t.Fatalf("RestoreRange(%d, %d) = %d bytes, want [%d:%d)", off, length, buf.Len(), lo, hi)
		}
		if st.FileBytes != total {
			t.Fatalf("FileBytes = %d, want %d", st.FileBytes, total)
		}
		if st.Length != hi-lo {
			t.Fatalf("Length = %d, want %d", st.Length, hi-lo)
		}
	}

	// Offset 0, whole file.
	check(0, -1)
	check(0, total)
	// Every ref (and therefore leaf) boundary straddled, plus the exact
	// boundary on each side.
	for _, b := range bounds {
		if b > 0 {
			check(b-1, 2)
			check(b-1, 1)
		}
		if b < total {
			check(b, 1)
		}
	}
	// Interior range with length overshooting EOF: clamped, not an error.
	check(total-100, 5000)
	// Offset exactly at EOF and past it: zero bytes, success.
	check(total, 10)
	check(total+12345, 10)
	check(total+12345, -1)
	// Negative offset is an error.
	if _, err := s.RestoreRange("img", -1, 10, io.Discard, RestoreOptions{}); err == nil {
		t.Fatal("negative offset accepted")
	}
	// Unknown file is an error.
	if _, err := s.RestoreRange("absent", 0, 10, io.Discard, RestoreOptions{}); err == nil {
		t.Fatal("ranged restore of unknown file succeeded")
	}
}

func TestRestoreRangeEmptyFile(t *testing.T) {
	s := treeStore()
	if _, err := s.WriteFileManifestTree(&FileManifest{File: "empty"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	st, err := s.RestoreRange("empty", 0, 100, &buf, RestoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 || st.Length != 0 || st.FileBytes != 0 {
		t.Fatalf("empty file range: %d bytes, stats %+v", buf.Len(), st)
	}
}

func TestRestoreRangeFlatManifest(t *testing.T) {
	// The ranged path must serve flat recipes too (format detection), with
	// identical clamp semantics and zero recipe reads.
	s := New(simdisk.New(), FormatBasic)
	c := s.NextName()
	data := []byte("abcdefghijklmnopqrstuvwxyz")
	if err := s.WriteDiskChunk(c, data); err != nil {
		t.Fatal(err)
	}
	fm := &FileManifest{File: "f"}
	fm.Append(FileRef{Container: c, Start: 0, Size: 10})
	fm.Append(FileRef{Container: c, Start: 20, Size: 6})
	if err := s.WriteFileManifest(fm); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	st, err := s.RestoreRange("f", 8, 4, &buf, RestoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if buf.String() != "ijuv" {
		t.Fatalf("flat ranged restore = %q, want %q", buf.String(), "ijuv")
	}
	if st.RecipeReads != 0 {
		t.Fatalf("flat recipe claims %d recipe reads", st.RecipeReads)
	}
	// Past-EOF clamp parity with the tree path.
	buf.Reset()
	if _, err := s.RestoreRange("f", 100, 10, &buf, RestoreOptions{}); err != nil || buf.Len() != 0 {
		t.Fatalf("flat past-EOF range: %d bytes, err %v", buf.Len(), err)
	}
}

// TestRestoreRangeLogarithmicReads is the acceptance counter test: on a
// multi-GB synthetic image whose tree holds thousands of recipe chunks, a
// small ranged restore may read only O(log n) of them — pinned against the
// simdisk per-category read counter, not just the returned stats.
func TestRestoreRangeLogarithmicReads(t *testing.T) {
	s := New(simdisk.New(), FormatMHD)
	s.SetRecipeConfig(RecipeConfig{Trees: true}) // default 4 KiB recipe chunks
	container := s.NextName()
	cdata := make([]byte, 1<<16)
	rand.New(rand.NewSource(7)).Read(cdata)
	if err := s.WriteDiskChunk(container, cdata); err != nil {
		t.Fatal(err)
	}
	// 200k refs of 16 KiB each: a ~3.2 GB image, all ranges inside one
	// small container. Random starts keep the ref records distinct so the
	// leaf chunks cannot dedup against each other — the tree really holds
	// thousands of chunks.
	fm := &FileManifest{File: "big"}
	rng := rand.New(rand.NewSource(8))
	const nref = 200_000
	for i := 0; i < nref; i++ {
		start := int64(rng.Intn(len(cdata) - 16384))
		if err := fm.Append(FileRef{Container: container, Start: start, Size: 16384}); err != nil {
			t.Fatal(err)
		}
	}
	if fm.TotalBytes() < 3<<30 {
		t.Fatalf("fixture is not multi-GB: %d bytes", fm.TotalBytes())
	}
	st, err := s.WriteFileManifestTree(fm)
	if err != nil {
		t.Fatal(err)
	}
	chunks := st.Leaves + st.Nodes
	if chunks < 1000 || st.Depth < 2 {
		t.Fatalf("fixture tree too small to prove anything: %+v", st)
	}

	before := s.Disk().Counters().Reads.Get(simdisk.Recipe)
	var buf bytes.Buffer
	rs, err := s.RestoreRange("big", 1<<30, 64<<10, &buf, RestoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	reads := s.Disk().Counters().Reads.Get(simdisk.Recipe) - before
	if buf.Len() != 64<<10 {
		t.Fatalf("restored %d bytes, want 64 KiB", buf.Len())
	}
	// Depth levels plus a few boundary-straddling siblings — nothing close
	// to the thousands of chunks in the tree.
	limit := int64(4*st.Depth + 8)
	if reads > limit {
		t.Fatalf("ranged restore read %d recipe chunks of %d (depth %d); want <= %d",
			reads, chunks, st.Depth, limit)
	}
	if int64(rs.RecipeReads) != reads {
		t.Fatalf("RangeStats.RecipeReads = %d, disk counter says %d", rs.RecipeReads, reads)
	}
}

// TestRecipeTreeSiblingSharing pins the dedup win the tree exists for: a
// second near-identical snapshot (a few dispersed edits in a long ref
// stream) stores well under 20% of its serialized leaf bytes as new
// chunks.
func TestRecipeTreeSiblingSharing(t *testing.T) {
	s := New(simdisk.New(), FormatMHD)
	s.SetRecipeConfig(RecipeConfig{Trees: true})
	refs := synthRefs(11, 20_000, 64)
	if _, err := s.WriteFileManifestTree(&FileManifest{File: "snap1", Refs: refs}); err != nil {
		t.Fatal(err)
	}
	second := make([]FileRef, len(refs))
	copy(second, refs)
	for k := 0; k < 20; k++ {
		i := (k*977 + 13) % len(second)
		second[i] = FileRef{Container: sumOf(fmt.Sprintf("edit%d", k)), Start: int64(k) + 1, Size: 4096}
	}
	st, err := s.WriteFileManifestTree(&FileManifest{File: "snap2", Refs: second})
	if err != nil {
		t.Fatal(err)
	}
	if st.LeafBytes == 0 {
		t.Fatal("no leaf bytes recorded")
	}
	frac := float64(st.NewLeafBytes) / float64(st.LeafBytes)
	if frac >= 0.20 {
		t.Fatalf("second snapshot stored %.0f%% of its leaf bytes as new chunks (want <20%%): %+v",
			frac*100, st)
	}
	// Both snapshots must still materialize exactly.
	back, err := s.ReadFileManifest("snap2")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(second, back.Refs) {
		t.Fatal("shared-subtree snapshot does not round-trip")
	}
}

func TestVerifierRestoreRange(t *testing.T) {
	s, want, _ := rangedFixture(t, 120)
	v := NewVerifier(s, VerifyOpts{})
	var buf bytes.Buffer
	st, err := v.RestoreRange("img", 1000, 5000, &buf, RestoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want[1000:6000]) {
		t.Fatalf("verified ranged restore diverges (%d bytes)", buf.Len())
	}
	if st.Length != 5000 {
		t.Fatalf("Length = %d", st.Length)
	}
	// Past-EOF clamp through the verifier too.
	buf.Reset()
	if _, err := v.RestoreRange("img", int64(len(want))+5, 10, &buf, RestoreOptions{}); err != nil || buf.Len() != 0 {
		t.Fatalf("verifier past-EOF range: %d bytes, err %v", buf.Len(), err)
	}
}

func TestRecipeTreeHostileInputs(t *testing.T) {
	s, _, _ := rangedFixture(t, 50)
	disk := s.Disk()
	raw, err := disk.Read(simdisk.FileManifest, "img")
	if err != nil {
		t.Fatal(err)
	}

	// Root with an absurd level must be rejected before any recursion.
	bad := append([]byte(nil), raw...)
	bad[8] = maxRecipeLevel + 1
	if _, err := MaterializeFileManifest(disk, "img", bad); err == nil {
		t.Error("root with level 33 accepted")
	}

	// Root pointing at a missing chunk fails loudly.
	bad = append([]byte(nil), raw...)
	for i := 9; i < 9+hashutil.Size; i++ {
		bad[i] ^= 0xFF
	}
	if _, err := MaterializeFileManifest(disk, "img", bad); err == nil {
		t.Error("root with dangling chunk pointer accepted")
	}

	// Root whose declared totals disagree with the tree is corruption,
	// not silent truncation.
	bad = append([]byte(nil), raw...)
	binary.BigEndian.PutUint64(bad[9+hashutil.Size:], binary.BigEndian.Uint64(bad[9+hashutil.Size:])+1)
	if _, err := MaterializeFileManifest(disk, "img", bad); err == nil {
		t.Error("root with wrong byte total accepted")
	}

	// A tampered recipe chunk fails its content address.
	fm, chunks, _, err := materializeManifest(disk, "img", raw, 0)
	if err != nil || fm == nil || len(chunks) == 0 {
		t.Fatalf("materialize: %v (%d chunks)", err, len(chunks))
	}
	victim := chunks[len(chunks)-1]
	payload, err := disk.Read(simdisk.Recipe, victim)
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), payload...)
	flipped[len(flipped)-1] ^= 1
	if err := disk.Write(simdisk.Recipe, victim, flipped); err != nil {
		t.Fatal(err)
	}
	if _, err := MaterializeFileManifest(disk, "img", raw); err == nil {
		t.Error("tampered recipe chunk accepted")
	}
}

func TestRecipeTreeGCSweep(t *testing.T) {
	s, want, _ := rangedFixture(t, 200)
	// A second file sharing the same tree-backed store.
	fm2 := &FileManifest{File: "other", Refs: synthRefs(5, 0, 1)}
	if _, err := s.WriteFileManifestTree(fm2); err != nil {
		t.Fatal(err)
	}
	liveChunks := len(s.Disk().Names(simdisk.Recipe))
	if liveChunks == 0 {
		t.Fatal("fixture stored no recipe chunks")
	}

	// Sweep with everything live reclaims nothing.
	st, err := s.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if st.RecipeChunksDeleted != 0 {
		t.Fatalf("sweep deleted %d live recipe chunks", st.RecipeChunksDeleted)
	}
	var buf bytes.Buffer
	if err := s.RestoreFile("img", &buf); err != nil || !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("restore after no-op sweep: err %v, %d bytes", err, buf.Len())
	}

	// Deleting the file orphans its whole tree; Sweep reclaims it.
	if err := s.DeleteFile("img"); err != nil {
		t.Fatal(err)
	}
	st, err = s.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if st.RecipeChunksDeleted != liveChunks {
		t.Fatalf("sweep deleted %d recipe chunks, want %d", st.RecipeChunksDeleted, liveChunks)
	}
	if st.RecipeBytesFreed <= 0 {
		t.Fatalf("RecipeBytesFreed = %d", st.RecipeBytesFreed)
	}
	if n := len(s.Disk().Names(simdisk.Recipe)); n != 0 {
		t.Fatalf("%d orphaned recipe chunks survived the sweep", n)
	}
}

func TestCheckCoversRecipeTrees(t *testing.T) {
	s, _, _ := rangedFixture(t, 100)
	rep := Check(s.Disk(), FormatMHD)
	if len(rep.Problems) != 0 {
		t.Fatalf("clean tree store reported problems: %v", rep.Problems)
	}
	// Removing one recipe chunk must surface as a problem.
	names := s.Disk().Names(simdisk.Recipe)
	if err := s.Disk().Delete(simdisk.Recipe, names[0]); err != nil {
		t.Fatal(err)
	}
	rep = Check(s.Disk(), FormatMHD)
	if len(rep.Problems) == 0 {
		t.Fatal("missing recipe chunk went unreported")
	}
}

func TestConvertToRecipeTrees(t *testing.T) {
	// Flat store with real data, converted in place.
	s := New(simdisk.New(), FormatBasic)
	c := s.NextName()
	data := make([]byte, 1<<15)
	rand.New(rand.NewSource(3)).Read(data)
	if err := s.WriteDiskChunk(c, data); err != nil {
		t.Fatal(err)
	}
	var wants [][]byte
	for f := 0; f < 3; f++ {
		fm := &FileManifest{File: fmt.Sprintf("f%d", f)}
		var want []byte
		for i := 0; i < 50; i++ {
			start := int64((f*131 + i*997) % (len(data) - 2048))
			if err := fm.Append(FileRef{Container: c, Start: start, Size: 1024}); err != nil {
				t.Fatal(err)
			}
			want = append(want, data[start:start+1024]...)
		}
		if err := s.WriteFileManifest(fm); err != nil {
			t.Fatal(err)
		}
		wants = append(wants, want)
	}

	s.SetRecipeConfig(RecipeConfig{Trees: true, LeafChunkBytes: 512})
	n, err := s.ConvertToRecipeTrees(nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("converted %d files, want 3", n)
	}
	for f := 0; f < 3; f++ {
		name := fmt.Sprintf("f%d", f)
		raw, err := s.Disk().Read(simdisk.FileManifest, name)
		if err != nil {
			t.Fatal(err)
		}
		if !IsRecipeTreeRoot(raw) {
			t.Fatalf("%s still flat after conversion", name)
		}
		var buf bytes.Buffer
		if err := s.RestoreFile(name, &buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), wants[f]) {
			t.Fatalf("%s restores different bytes after conversion", name)
		}
	}
	// Converting again is a no-op.
	n, err = s.ConvertToRecipeTrees(nil)
	if err != nil || n != 0 {
		t.Fatalf("second conversion: n=%d err=%v", n, err)
	}
}

func TestRecipeTreeRangedEqualsFlatSlice(t *testing.T) {
	// Differential: the same manifest stored flat and as a tree must serve
	// identical bytes for identical ranges, across worker counts.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 3; trial++ {
		flat := New(simdisk.New(), FormatBasic)
		tree := treeStore()
		cdata := make([]byte, 1<<15)
		rng.Read(cdata)
		cf, ct := flat.NextName(), tree.NextName()
		if err := flat.WriteDiskChunk(cf, cdata); err != nil {
			t.Fatal(err)
		}
		if err := tree.WriteDiskChunk(ct, cdata); err != nil {
			t.Fatal(err)
		}
		fmFlat := &FileManifest{File: "f"}
		fmTree := &FileManifest{File: "f"}
		var total int64
		for i := 0; i < 150; i++ {
			start := int64(rng.Intn(len(cdata) - 5000))
			size := int64(20 + rng.Intn(4000))
			if err := fmFlat.Append(FileRef{Container: cf, Start: start, Size: size}); err != nil {
				t.Fatal(err)
			}
			if err := fmTree.Append(FileRef{Container: ct, Start: start, Size: size}); err != nil {
				t.Fatal(err)
			}
			total += size
		}
		if err := flat.WriteFileManifest(fmFlat); err != nil {
			t.Fatal(err)
		}
		if _, err := tree.WriteFileManifestTree(fmTree); err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 20; probe++ {
			off := int64(rng.Intn(int(total)))
			length := int64(rng.Intn(int(total)))
			for _, workers := range []int{0, 4} {
				opts := RestoreOptions{Workers: workers}
				var a, b bytes.Buffer
				if _, err := flat.RestoreRange("f", off, length, &a, opts); err != nil {
					t.Fatal(err)
				}
				if _, err := tree.RestoreRange("f", off, length, &b, opts); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(a.Bytes(), b.Bytes()) {
					t.Fatalf("trial %d: flat and tree diverge for range [%d,+%d) workers=%d",
						trial, off, length, workers)
				}
			}
		}
	}
}
