package store

import (
	"encoding/binary"
	"fmt"

	"mhdedup/internal/hashutil"
)

// FileRefBytes is the serialized size of one FileManifest entry: a 20-byte
// DiskChunk name plus 32-bit start and size.
const FileRefBytes = 28

// FileRef is one run of an input file's bytes: Size bytes found at Start
// within DiskChunk Container.
type FileRef struct {
	Container hashutil.Sum
	Start     int64
	Size      int64
}

// FileManifest is the recipe for reconstructing one input file, as in Fig 3.
// Per §III, MHD writes a new entry only at the terminating point of
// neighboring duplicate or non-duplicate data slices — i.e. contiguous runs
// within the same DiskChunk coalesce into a single entry. Append implements
// that coalescing for every algorithm, so the comparison in Fig 7(c) is
// about how contiguous each algorithm's references are, not about the
// format.
type FileManifest struct {
	File string
	Refs []FileRef
}

// Append adds a run, merging it into the previous ref when it continues the
// same DiskChunk contiguously. Degenerate refs are rejected: a zero- or
// negative-size ref poisons TotalBytes and the restore planner, and a
// negative start can never address container bytes.
func (fm *FileManifest) Append(ref FileRef) error {
	if ref.Size <= 0 || ref.Start < 0 {
		return fmt.Errorf("store: file %q: degenerate ref %s[%d,+%d)",
			fm.File, ref.Container.Short(), ref.Start, ref.Size)
	}
	if n := len(fm.Refs); n > 0 {
		last := &fm.Refs[n-1]
		if last.Container == ref.Container && last.Start+last.Size == ref.Start {
			last.Size += ref.Size
			return nil
		}
	}
	fm.Refs = append(fm.Refs, ref)
	return nil
}

// TotalBytes returns the reconstructed file's size.
func (fm *FileManifest) TotalBytes() int64 {
	var t int64
	for _, r := range fm.Refs {
		t += r.Size
	}
	return t
}

// ByteSize returns the serialized size: FileRefBytes per entry.
func (fm *FileManifest) ByteSize() int {
	return len(fm.Refs) * FileRefBytes
}

// Encode serializes the manifest in the legacy flat format; output length
// equals ByteSize(). The flat format carries 32-bit start/size fields, so
// any ref past 4 GiB is *refused* with an error — silently truncating it
// would corrupt exactly the huge disk images this system targets. Such
// manifests must be stored as recipe trees (WriteFileManifestTree), whose
// varint leaf encoding carries full 64-bit offsets.
func (fm *FileManifest) Encode() ([]byte, error) {
	out := make([]byte, 0, fm.ByteSize())
	for _, r := range fm.Refs {
		if r.Start < 0 || r.Size <= 0 || r.Start > 0xFFFFFFFF || r.Size > 0xFFFFFFFF {
			return nil, fmt.Errorf("store: file ref start %d size %d outside 32-bit format", r.Start, r.Size)
		}
		out = append(out, r.Container[:]...)
		out = binary.BigEndian.AppendUint32(out, uint32(r.Start))
		out = binary.BigEndian.AppendUint32(out, uint32(r.Size))
	}
	return out, nil
}

// DecodeFileManifest parses data written by Encode.
func DecodeFileManifest(file string, data []byte) (*FileManifest, error) {
	if len(data)%FileRefBytes != 0 {
		return nil, fmt.Errorf("store: file manifest payload %d bytes not a multiple of %d", len(data), FileRefBytes)
	}
	fm := &FileManifest{File: file}
	for off := 0; off < len(data); off += FileRefBytes {
		var r FileRef
		copy(r.Container[:], data[off:off+20])
		r.Start = int64(binary.BigEndian.Uint32(data[off+20 : off+24]))
		r.Size = int64(binary.BigEndian.Uint32(data[off+24 : off+28]))
		// Decoded refs are appended verbatim (not coalesced): encoding must
		// round-trip exactly.
		fm.Refs = append(fm.Refs, r)
	}
	return fm, nil
}
