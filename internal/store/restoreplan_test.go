package store

import (
	"bytes"
	"math/rand"
	"testing"

	"mhdedup/internal/hashutil"
)

// sum is shorthand for a deterministic container name.
func sum(tag string) hashutil.Sum { return hashutil.SumString(tag) }

// rawManifest builds a FileManifest with the refs exactly as given —
// deliberately NOT via Append, which merges byte-contiguous runs at write
// time; the planner must handle arbitrary recipes.
func rawManifest(file string, refs ...FileRef) *FileManifest {
	return &FileManifest{File: file, Refs: refs}
}

func TestPlanCoalescesAdjacentRefs(t *testing.T) {
	c := sum("c")
	fm := rawManifest("f",
		FileRef{Container: c, Start: 0, Size: 100},
		FileRef{Container: c, Start: 100, Size: 50},
		FileRef{Container: c, Start: 150, Size: 25},
	)
	p, err := planRestore(fm, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.reads) != 1 {
		t.Fatalf("adjacent refs planned as %d reads, want 1", len(p.reads))
	}
	r := p.reads[0]
	if r.start != 0 || r.length != 175 {
		t.Fatalf("read covers [%d,+%d), want [0,+175)", r.start, r.length)
	}
	if len(r.segs) != 3 {
		t.Fatalf("read has %d segments, want 3", len(r.segs))
	}
	if p.refs != 3 || p.outputBytes != 175 || p.plannedBytes != 175 {
		t.Fatalf("plan stats refs=%d output=%d planned=%d, want 3/175/175",
			p.refs, p.outputBytes, p.plannedBytes)
	}
	if got := p.coalesceRatio(); got != 3 {
		t.Fatalf("coalesce ratio %v, want 3", got)
	}
}

func TestPlanBridgesGapsUpToLimit(t *testing.T) {
	c := sum("c")
	fm := rawManifest("f",
		FileRef{Container: c, Start: 0, Size: 100},
		FileRef{Container: c, Start: 164, Size: 100}, // 64-byte gap
	)
	p, err := planRestore(fm, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.reads) != 1 {
		t.Fatalf("64-byte gap with gap=64 planned as %d reads, want 1", len(p.reads))
	}
	// The bridged read fetches the gap bytes too.
	if p.plannedBytes != 264 || p.outputBytes != 200 {
		t.Fatalf("planned=%d output=%d, want 264/200", p.plannedBytes, p.outputBytes)
	}
	if off := p.reads[0].segs[1].off; off != 164 {
		t.Fatalf("second segment at buffer offset %d, want 164", off)
	}

	// One byte over the limit: two reads.
	fm.Refs[1].Start = 165
	p, err = planRestore(fm, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.reads) != 2 {
		t.Fatalf("65-byte gap with gap=64 planned as %d reads, want 2", len(p.reads))
	}
	if p.plannedBytes != 200 {
		t.Fatalf("split plan fetches %d bytes, want 200", p.plannedBytes)
	}
}

func TestPlanDoesNotCoalesceAcrossContainers(t *testing.T) {
	a, b := sum("a"), sum("b")
	fm := rawManifest("f",
		FileRef{Container: a, Start: 0, Size: 10},
		FileRef{Container: b, Start: 10, Size: 10},
		FileRef{Container: a, Start: 10, Size: 10}, // adjacent to read 0, but b interleaves
	)
	p, err := planRestore(fm, DefaultRestoreCoalesceGap)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.reads) != 3 {
		t.Fatalf("interleaved containers planned as %d reads, want 3", len(p.reads))
	}
}

func TestPlanOverlapAndBackwardGrowth(t *testing.T) {
	c := sum("c")
	// Second ref starts before the first (self-referential dedup can emit
	// this): the read must grow backwards and shift the first segment.
	fm := rawManifest("f",
		FileRef{Container: c, Start: 100, Size: 50},
		FileRef{Container: c, Start: 40, Size: 70}, // [40,110) overlaps [100,150)
	)
	p, err := planRestore(fm, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.reads) != 1 {
		t.Fatalf("overlapping refs planned as %d reads, want 1", len(p.reads))
	}
	r := p.reads[0]
	if r.start != 40 || r.length != 110 {
		t.Fatalf("read covers [%d,+%d), want [40,+110)", r.start, r.length)
	}
	// First segment (container offset 100) is now at buffer offset 60.
	if r.segs[0].off != 60 || r.segs[0].size != 50 {
		t.Fatalf("first segment off=%d size=%d, want 60/50", r.segs[0].off, r.segs[0].size)
	}
	if r.segs[1].off != 0 || r.segs[1].size != 70 {
		t.Fatalf("second segment off=%d size=%d, want 0/70", r.segs[1].off, r.segs[1].size)
	}
	// Overlapping bytes are fetched once: planned < output.
	if p.outputBytes != 120 || p.plannedBytes != 110 {
		t.Fatalf("output=%d planned=%d, want 120/110", p.outputBytes, p.plannedBytes)
	}
}

func TestPlanRejectsMalformedRefs(t *testing.T) {
	c := sum("c")
	for _, bad := range []FileRef{
		{Container: c, Start: -1, Size: 10},
		{Container: c, Start: 0, Size: -10},
	} {
		if _, err := planRestore(rawManifest("f", bad), 0); err == nil {
			t.Fatalf("malformed ref %+v accepted", bad)
		}
	}
}

// TestPlanSegmentsReconstructOutput is the planner's semantic invariant:
// applying the plan's segments to the planned container ranges must
// reproduce exactly the bytes the ref-by-ref walk produces, for randomized
// recipes full of overlaps, gaps, repeats and container switches.
func TestPlanSegmentsReconstructOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	containers := map[hashutil.Sum][]byte{}
	var names []hashutil.Sum
	for i := 0; i < 3; i++ {
		data := make([]byte, 4096)
		rng.Read(data)
		n := sum(string(rune('a' + i)))
		containers[n] = data
		names = append(names, n)
	}
	for trial := 0; trial < 200; trial++ {
		var refs []FileRef
		var want []byte
		for n := rng.Intn(20); n >= 0; n-- {
			c := names[rng.Intn(len(names))]
			start := int64(rng.Intn(4000))
			size := int64(rng.Intn(int(4096 - start)))
			refs = append(refs, FileRef{Container: c, Start: start, Size: size})
			want = append(want, containers[c][start:start+size]...)
		}
		gap := int64(rng.Intn(512))
		p, err := planRestore(rawManifest("f", refs...), gap)
		if err != nil {
			t.Fatal(err)
		}
		var got []byte
		var planned int64
		for i := range p.reads {
			r := &p.reads[i]
			buf := containers[r.container][r.start : r.start+r.length]
			planned += r.length
			for _, seg := range r.segs {
				got = append(got, buf[seg.off:seg.off+seg.size]...)
			}
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d (gap %d): plan output diverges from ref walk (%d vs %d bytes)",
				trial, gap, len(got), len(want))
		}
		if planned != p.plannedBytes {
			t.Fatalf("trial %d: plannedBytes %d, reads total %d", trial, p.plannedBytes, planned)
		}
		if p.refs != len(refs) || len(p.reads) > len(refs) {
			t.Fatalf("trial %d: refs=%d reads=%d for %d input refs", trial, p.refs, len(p.reads), len(refs))
		}
	}
}
