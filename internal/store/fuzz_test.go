package store

import (
	"bytes"
	"reflect"
	"testing"

	"mhdedup/internal/hashutil"
)

// Fuzzing the decoders: arbitrary bytes must never panic, and anything that
// decodes must re-encode to the same bytes (decode∘encode = id on valid
// payloads).

func FuzzDecodeManifest(f *testing.F) {
	// Seeds: valid encodings of each format plus junk.
	name := hashutil.SumString("fuzz")
	for _, format := range []Format{FormatBasic, FormatMHD, FormatMultiContainer} {
		m := NewManifest(name, format)
		e := Entry{Hash: hashutil.SumString("e"), Start: 0, Size: 512}
		if format == FormatMultiContainer {
			e.Container = hashutil.SumString("c")
		}
		if format == FormatMHD {
			e.Kind = KindMerged
		}
		m.Append(e)
		f.Add(int(format), m.Encode())
	}
	f.Add(0, []byte{})
	f.Add(1, []byte("garbage that is not a manifest at all........"))
	f.Add(2, bytes.Repeat([]byte{0xFF}, 100))

	f.Fuzz(func(t *testing.T, formatInt int, data []byte) {
		format := Format(formatInt % 3)
		m, err := DecodeManifest(name, format, data)
		if err != nil {
			return
		}
		// Valid payloads round-trip bit-exactly.
		re := m.Encode()
		if !bytes.Equal(re, data) {
			t.Fatalf("format %d: re-encode differs: %d vs %d bytes", format, len(re), len(data))
		}
		// And decode again to the same entries.
		m2, err := DecodeManifest(name, format, re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(m.Entries, m2.Entries) {
			t.Fatal("entries unstable across round-trip")
		}
	})
}

func FuzzDecodeFileManifest(f *testing.F) {
	fm := &FileManifest{File: "seed"}
	fm.Append(FileRef{Container: hashutil.SumString("c"), Start: 0, Size: 100})
	seed, _ := fm.Encode()
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte("junk"))
	f.Fuzz(func(t *testing.T, data []byte) {
		fm, err := DecodeFileManifest("f", data)
		if err != nil {
			return
		}
		re, err := fm.Encode()
		if err != nil {
			// Refs with degenerate sizes decode but refuse to encode;
			// acceptable (the write path validates).
			return
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("file manifest re-encode differs")
		}
	})
}
