// Package store implements the on-disk metadata formats of the paper's
// system architecture (Fig 3): DiskChunks, DiskChunkManifests ("Manifests"),
// Hooks and FileManifests, all stored as hash-addressable objects on a
// simdisk.Disk.
//
// Byte costs follow §IV exactly: a manifest entry is 36 bytes (20-byte SHA-1
// + byte start + byte size), MHD's format adds a 1-byte Hook flag (37),
// SubChunk-style multi-container manifests charge 28 bytes per referenced
// container for the small-chunk-to-container mapping, hook payloads are 20
// bytes, and every stored object costs one 256-byte inode (accounted by
// simdisk).
package store

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"mhdedup/internal/hashutil"
)

// EntryKind classifies a manifest entry. The paper's format has a one-byte
// "Hook flag"; we use the same byte as a three-state kind, which costs
// nothing extra and lets match extension decide whether an entry is a
// merged region that may be reloaded and re-chunked.
type EntryKind byte

const (
	// KindPlain is a single chunk's hash (including EdgeHashes created by
	// HHR). Plain entries are never re-chunked — that is what stops a
	// duplicate slice from triggering the same HHR twice.
	KindPlain EntryKind = iota
	// KindHook marks the entry as a sampled Hook: its hash also exists as
	// an on-disk hook object and in the bloom filter.
	KindHook
	// KindMerged is an SHM-merged region: one hash covering what were
	// several chunks. Merged entries are the only ones HHR will split.
	KindMerged
)

// String returns the kind name.
func (k EntryKind) String() string {
	switch k {
	case KindPlain:
		return "plain"
	case KindHook:
		return "hook"
	case KindMerged:
		return "merged"
	default:
		return fmt.Sprintf("kind(%d)", byte(k))
	}
}

// Format selects a manifest's serialization and byte-accounting scheme.
type Format int

const (
	// FormatBasic is the 36-byte-entry format used by CDC and Bimodal:
	// each entry is hash(20) + start(8) + size(8) and refers to the
	// manifest's own DiskChunk.
	FormatBasic Format = iota
	// FormatMHD is FormatBasic plus the one-byte kind/Hook flag: 37 bytes
	// per entry.
	FormatMHD
	// FormatMultiContainer is the SubChunk/SparseIndexing format: entries
	// are hash(20) + start(8) + size(4) + container index(4) = 36 bytes,
	// preceded by a container table charging 28 bytes per referenced
	// DiskChunk (20-byte name + chunk count + byte count) and a 4-byte
	// table length.
	FormatMultiContainer
)

// EntrySize returns the per-entry byte cost of the format.
func (f Format) EntrySize() int {
	switch f {
	case FormatMHD:
		return 37
	default:
		return 36
	}
}

// ContainerEntryBytes is the per-container cost in FormatMultiContainer,
// per §IV: "the entries for the small chunks belonging to the same
// DiskChunk in the Manifests need to share 28 bytes".
const ContainerEntryBytes = 28

// Entry is one manifest entry: a hash describing Size bytes of a DiskChunk
// starting at Start. Container names the DiskChunk holding the bytes; the
// zero Sum means the manifest's own DiskChunk (the only possibility outside
// FormatMultiContainer).
type Entry struct {
	Hash      hashutil.Sum
	Container hashutil.Sum
	Start     int64
	Size      int64
	Kind      EntryKind
}

// Manifest is a DiskChunkManifest: the ordered sequence of hash entries
// describing one DiskChunk (or, for FormatMultiContainer, one segment whose
// chunks may live in several DiskChunks). The zero value is not usable;
// construct with NewManifest or Store.ReadManifest.
//
// A Manifest is not implicitly synchronized. Single-stream engines use it
// bare; the concurrent ingest engine shares cache-resident manifests across
// sessions and brackets every access (Lookup, entry walks, Splice, Encode)
// with Lock/Unlock. The lock lives here so that the eviction write-back and
// a match extension in another goroutine serialize on the same mutex.
type Manifest struct {
	// Name is the manifest's hash-addressable name. For single-container
	// formats it is also the name of the DiskChunk it describes.
	Name    hashutil.Sum
	Format  Format
	Entries []Entry

	mu    sync.Mutex
	dirty bool
	index map[hashutil.Sum]int
}

// Lock acquires the manifest's mutex. Callers sharing a manifest across
// goroutines must hold it around every read or mutation, including Encode.
func (m *Manifest) Lock() { m.mu.Lock() }

// Unlock releases the manifest's mutex.
func (m *Manifest) Unlock() { m.mu.Unlock() }

// NewManifest returns an empty manifest with the given name and format.
func NewManifest(name hashutil.Sum, format Format) *Manifest {
	return &Manifest{
		Name:   name,
		Format: format,
		index:  make(map[hashutil.Sum]int),
	}
}

// Append adds an entry at the end.
func (m *Manifest) Append(e Entry) {
	m.Entries = append(m.Entries, e)
	if _, dup := m.index[e.Hash]; !dup {
		m.index[e.Hash] = len(m.Entries) - 1
	}
}

// Lookup returns the index of the first entry with the given hash — the
// manifest-as-hash-table query of Fig 4.
func (m *Manifest) Lookup(h hashutil.Sum) (int, bool) {
	i, ok := m.index[h]
	return i, ok
}

// ContainerOf returns the DiskChunk name holding entry e's bytes.
func (m *Manifest) ContainerOf(e Entry) hashutil.Sum {
	if !e.Container.IsZero() {
		return e.Container
	}
	return m.Name
}

// Splice replaces the entry at index i with the given replacements, keeping
// order, reindexing, and marking the manifest dirty. It is the HHR
// primitive: one merged entry becomes up to three new entries.
func (m *Manifest) Splice(i int, repl ...Entry) error {
	if i < 0 || i >= len(m.Entries) {
		return fmt.Errorf("store: splice index %d out of range [0,%d)", i, len(m.Entries))
	}
	out := make([]Entry, 0, len(m.Entries)-1+len(repl))
	out = append(out, m.Entries[:i]...)
	out = append(out, repl...)
	out = append(out, m.Entries[i+1:]...)
	m.Entries = out
	m.reindex()
	m.dirty = true
	return nil
}

func (m *Manifest) reindex() {
	m.index = make(map[hashutil.Sum]int, len(m.Entries))
	for i, e := range m.Entries {
		if _, dup := m.index[e.Hash]; !dup {
			m.index[e.Hash] = i
		}
	}
}

// Dirty reports whether the manifest has unwritten modifications.
func (m *Manifest) Dirty() bool { return m.dirty }

// MarkClean clears the dirty flag (done by Store after write-back).
func (m *Manifest) MarkClean() { m.dirty = false }

// MarkDirty sets the dirty flag.
func (m *Manifest) MarkDirty() { m.dirty = true }

// ByteSize returns the manifest's serialized size under its format's
// accounting.
func (m *Manifest) ByteSize() int {
	n := len(m.Entries) * m.Format.EntrySize()
	if m.Format == FormatMultiContainer {
		n += 4 + len(m.containers())*ContainerEntryBytes
	}
	return n
}

// containers returns the distinct container names referenced by entries, in
// first-use order. The zero Sum (own chunk) is included if used.
func (m *Manifest) containers() []hashutil.Sum {
	var order []hashutil.Sum
	seen := make(map[hashutil.Sum]bool)
	for _, e := range m.Entries {
		if !seen[e.Container] {
			seen[e.Container] = true
			order = append(order, e.Container)
		}
	}
	return order
}

// Encode serializes the manifest. The output length always equals
// ByteSize(), which is how simdisk's byte counters reproduce Table I.
func (m *Manifest) Encode() []byte {
	out := make([]byte, 0, m.ByteSize())
	switch m.Format {
	case FormatBasic, FormatMHD:
		for _, e := range m.Entries {
			out = append(out, e.Hash[:]...)
			out = binary.BigEndian.AppendUint64(out, uint64(e.Start))
			out = binary.BigEndian.AppendUint64(out, uint64(e.Size))
			if m.Format == FormatMHD {
				out = append(out, byte(e.Kind))
			}
		}
	case FormatMultiContainer:
		containers := m.containers()
		idx := make(map[hashutil.Sum]uint32, len(containers))
		out = binary.BigEndian.AppendUint32(out, uint32(len(containers)))
		for i, c := range containers {
			idx[c] = uint32(i)
			out = append(out, c[:]...)
			// Chunk count and byte count within this container: summary
			// bookkeeping included in the 28-byte budget.
			var chunks, bytes uint32
			for _, e := range m.Entries {
				if e.Container == c {
					chunks++
					bytes += uint32(e.Size)
				}
			}
			out = binary.BigEndian.AppendUint32(out, chunks)
			out = binary.BigEndian.AppendUint32(out, bytes)
		}
		for _, e := range m.Entries {
			out = append(out, e.Hash[:]...)
			out = binary.BigEndian.AppendUint64(out, uint64(e.Start))
			out = binary.BigEndian.AppendUint32(out, uint32(e.Size))
			out = binary.BigEndian.AppendUint32(out, idx[e.Container])
		}
	}
	return out
}

// DecodeManifest parses data written by Encode. name and format must be
// supplied by the caller (they are part of the object's identity, not its
// payload, exactly as a file's name is not inside the file).
func DecodeManifest(name hashutil.Sum, format Format, data []byte) (*Manifest, error) {
	m := NewManifest(name, format)
	switch format {
	case FormatBasic, FormatMHD:
		stride := format.EntrySize()
		if len(data)%stride != 0 {
			return nil, fmt.Errorf("store: manifest payload %d bytes is not a multiple of %d", len(data), stride)
		}
		for off := 0; off < len(data); off += stride {
			var e Entry
			copy(e.Hash[:], data[off:off+20])
			e.Start = int64(binary.BigEndian.Uint64(data[off+20 : off+28]))
			e.Size = int64(binary.BigEndian.Uint64(data[off+28 : off+36]))
			if format == FormatMHD {
				e.Kind = EntryKind(data[off+36])
				if e.Kind > KindMerged {
					return nil, fmt.Errorf("store: invalid entry kind %d", e.Kind)
				}
			}
			m.Append(e)
		}
	case FormatMultiContainer:
		if len(data) < 4 {
			return nil, fmt.Errorf("store: multi-container manifest too short")
		}
		nc := binary.BigEndian.Uint32(data[:4])
		tableEnd := 4 + int(nc)*ContainerEntryBytes
		if tableEnd > len(data) || (len(data)-tableEnd)%36 != 0 {
			return nil, fmt.Errorf("store: malformed multi-container manifest (%d bytes, %d containers)", len(data), nc)
		}
		containers := make([]hashutil.Sum, nc)
		for i := 0; i < int(nc); i++ {
			copy(containers[i][:], data[4+i*ContainerEntryBytes:])
		}
		for off := tableEnd; off < len(data); off += 36 {
			var e Entry
			copy(e.Hash[:], data[off:off+20])
			e.Start = int64(binary.BigEndian.Uint64(data[off+20 : off+28]))
			e.Size = int64(binary.BigEndian.Uint32(data[off+28 : off+32]))
			ci := binary.BigEndian.Uint32(data[off+32 : off+36])
			if int(ci) >= len(containers) {
				return nil, fmt.Errorf("store: container index %d out of range", ci)
			}
			e.Container = containers[ci]
			m.Append(e)
		}
		// The payload must be canonical — the container table in first-use
		// order with correct per-container summaries — or re-encoding would
		// silently change bytes. Reject anything else as corruption.
		derived := m.containers()
		if len(derived) != len(containers) {
			return nil, fmt.Errorf("store: container table has %d entries, %d referenced", len(containers), len(derived))
		}
		for i, c := range derived {
			if containers[i] != c {
				return nil, fmt.Errorf("store: container table not in first-use order at %d", i)
			}
			var chunks, bytes uint32
			for _, e := range m.Entries {
				if e.Container == c {
					chunks++
					bytes += uint32(e.Size)
				}
			}
			base := 4 + i*ContainerEntryBytes + 20
			if binary.BigEndian.Uint32(data[base:base+4]) != chunks ||
				binary.BigEndian.Uint32(data[base+4:base+8]) != bytes {
				return nil, fmt.Errorf("store: container %d summary counts are inconsistent", i)
			}
		}
	default:
		return nil, fmt.Errorf("store: unknown manifest format %d", format)
	}
	return m, nil
}

// validateEntry checks an entry fits the manifest's encoding.
func (m *Manifest) validateEntry(e Entry) error {
	if e.Start < 0 || e.Size <= 0 {
		return fmt.Errorf("store: entry with start %d size %d", e.Start, e.Size)
	}
	if m.Format == FormatMultiContainer && e.Size > math.MaxUint32 {
		return fmt.Errorf("store: entry size %d exceeds multi-container format limit", e.Size)
	}
	if m.Format != FormatMultiContainer && !e.Container.IsZero() {
		return fmt.Errorf("store: foreign container reference requires FormatMultiContainer")
	}
	if m.Format != FormatMHD && e.Kind != KindPlain && e.Kind != KindHook {
		// Merged entries only exist in the MHD format; other formats
		// tolerate the hook marker (it just isn't serialized).
		if e.Kind == KindMerged {
			return fmt.Errorf("store: merged entries require FormatMHD")
		}
	}
	return nil
}

// AppendChecked validates and appends e.
func (m *Manifest) AppendChecked(e Entry) error {
	if err := m.validateEntry(e); err != nil {
		return err
	}
	m.Append(e)
	return nil
}
