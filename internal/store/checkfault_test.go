package store

import (
	"strings"
	"testing"

	"mhdedup/internal/hashutil"
	"mhdedup/internal/simdisk"
)

// TestCheckDetectsInjectedCorruption drives store.Check against a matrix of
// targeted faults injected through the faultdisk, and demands a distinct,
// attributable Problems line for each. This pins the fsck's coverage: every
// class of metadata damage the fault substrate can produce must be named,
// not silently tolerated and not conflated with a different class.
func TestCheckDetectsInjectedCorruption(t *testing.T) {
	c1 := hashutil.SumString("c1").Hex()
	hk1 := hashutil.SumString("hk1").Hex()
	// Basic-format manifest entries are 36-byte records:
	// 20 hash | 8 big-endian Start | 8 big-endian Size.
	const (
		entry1StartLSB = (36 + 27) * 8 // low bit of entry 1's Start field
		entry0SizeLSB  = 35 * 8        // low bit of entry 0's Size field
	)

	cases := []struct {
		name    string
		corrupt func(t *testing.T, s *Store, fd *simdisk.FaultDisk)
		want    string // substring every matching Problems line must carry
	}{
		{
			name: "bit-flipped manifest start breaks tiling",
			corrupt: func(t *testing.T, s *Store, fd *simdisk.FaultDisk) {
				// 512 -> 513: entry 1 no longer abuts entry 0.
				if err := fd.FlipStoredBit(simdisk.Manifest, c1, entry1StartLSB); err != nil {
					t.Fatal(err)
				}
			},
			want: "gap or overlap",
		},
		{
			name: "bit-flipped manifest size breaks coverage",
			corrupt: func(t *testing.T, s *Store, fd *simdisk.FaultDisk) {
				// Entry 0 claims 513 bytes: entries now cover 1025 of 1024.
				if err := fd.FlipStoredBit(simdisk.Manifest, c1, entry0SizeLSB); err != nil {
					t.Fatal(err)
				}
			},
			want: "entries cover",
		},
		{
			name: "truncated manifest is undecodable",
			corrupt: func(t *testing.T, s *Store, fd *simdisk.FaultDisk) {
				if err := fd.TruncateStored(simdisk.Manifest, c1, 35); err != nil {
					t.Fatal(err)
				}
			},
			want: "payload 35 bytes is not a multiple of",
		},
		{
			name: "dangling hook after manifest loss",
			corrupt: func(t *testing.T, s *Store, fd *simdisk.FaultDisk) {
				if err := s.Disk().Delete(simdisk.Manifest, c1); err != nil {
					t.Fatal(err)
				}
			},
			want: "target manifest",
		},
		{
			name: "truncated hook payload",
			corrupt: func(t *testing.T, s *Store, fd *simdisk.FaultDisk) {
				if err := fd.TruncateStored(simdisk.Hook, hk1, 10); err != nil {
					t.Fatal(err)
				}
			},
			want: "payload of 10 bytes is malformed",
		},
		{
			name: "truncated file manifest",
			corrupt: func(t *testing.T, s *Store, fd *simdisk.FaultDisk) {
				if err := fd.TruncateStored(simdisk.FileManifest, "f/one", 30); err != nil {
					t.Fatal(err)
				}
			},
			want: "30 bytes not a multiple of",
		},
		{
			name: "truncated container orphans manifest ranges",
			corrupt: func(t *testing.T, s *Store, fd *simdisk.FaultDisk) {
				if err := fd.TruncateStored(simdisk.Data, c1, 700); err != nil {
					t.Fatal(err)
				}
			},
			want: "outside container of 700 bytes",
		},
		{
			name: "deleted container reported for files too",
			corrupt: func(t *testing.T, s *Store, fd *simdisk.FaultDisk) {
				if err := s.Disk().Delete(simdisk.Data, c1); err != nil {
					t.Fatal(err)
				}
			},
			want: "container " + hashutil.SumString("c1").String() + " missing",
		},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			s, _ := buildVerifyStore(t)
			fd := simdisk.NewFaultDisk(s.Disk(), simdisk.FaultPlan{Seed: 1})
			tc.corrupt(t, s, fd)

			rep := Check(s.Disk(), FormatBasic)
			if rep.OK() {
				t.Fatalf("Check reported OK on a store with injected fault %q", tc.name)
			}
			found := false
			for _, p := range rep.Problems {
				if strings.Contains(p, tc.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("Problems = %v\nwant a line containing %q", rep.Problems, tc.want)
			}
		})
	}

	// The cases above are pairwise distinct: no fault's signature line
	// matches another fault's expectation, so Check attributes each class
	// of damage unambiguously.
	for i, a := range cases {
		for j, b := range cases {
			if i != j && strings.Contains(a.want, b.want) {
				t.Fatalf("case %q and %q do not have distinct signatures", a.name, b.name)
			}
		}
	}
}

// TestCheckSurvivesRandomCorruptionStorm sprays persistent bit flips over
// every manifest and checks the union property: a flip landing in a Start or
// Size field is structural damage that Check must flag, while a flip landing
// in an entry's hash field is invisible to the structural fsck by design —
// but then the Verifier must report the claim/content mismatch instead. No
// manifest flip may escape both layers.
func TestCheckSurvivesRandomCorruptionStorm(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		s, _ := buildVerifyStore(t)
		fd := simdisk.NewFaultDisk(s.Disk(), simdisk.FaultPlan{Seed: seed})
		mutated := fd.CorruptStored(simdisk.Manifest, 1.0)
		if len(mutated) == 0 {
			t.Fatal("corruption plan mutated nothing")
		}
		if rep := Check(s.Disk(), FormatBasic); !rep.OK() {
			continue // structural layer caught it
		}
		v := NewVerifier(s, VerifyOpts{})
		caught := len(v.BadManifests) > 0
		for _, c := range v.Containers() {
			bad, err := v.VerifyContainer(c)
			if err != nil || len(bad) > 0 {
				caught = true
			}
		}
		if !caught {
			t.Fatalf("seed %d: manifest flips in %v escaped both Check and Verifier", seed, mutated)
		}
	}
}
