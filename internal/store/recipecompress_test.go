package store

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mhdedup/internal/hashutil"
)

func TestRecipeCompressionRoundTrip(t *testing.T) {
	c1, c2 := hashutil.SumString("c1"), hashutil.SumString("c2")
	fm := &FileManifest{File: "f", Refs: []FileRef{
		{Container: c1, Start: 0, Size: 4096},
		{Container: c1, Start: 4096, Size: 1024}, // sequential: 3-byte record
		{Container: c2, Start: 100, Size: 50},
		{Container: c1, Start: 0, Size: 10}, // backwards delta
	}}
	blob := CompressRecipe(fm)
	back, err := DecompressRecipe("f", blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fm.Refs, back.Refs) {
		t.Fatalf("round-trip mismatch:\n%+v\n%+v", fm.Refs, back.Refs)
	}
}

func TestRecipeCompressionRatioOnSequentialRecipes(t *testing.T) {
	// The common case: long sequential runs in one container with
	// occasional jumps. Compressed recipes should be several times smaller
	// than the fixed 28-byte records.
	rng := rand.New(rand.NewSource(1))
	c1, c2 := hashutil.SumString("a"), hashutil.SumString("b")
	fm := &FileManifest{File: "f"}
	var off int64
	for i := 0; i < 500; i++ {
		c := c1
		if rng.Intn(10) == 0 {
			c = c2
		}
		size := int64(rng.Intn(8192) + 512)
		fm.Refs = append(fm.Refs, FileRef{Container: c, Start: off, Size: size})
		off += size
	}
	plain, err := fm.Encode()
	if err != nil {
		t.Fatal(err)
	}
	blob := CompressRecipe(fm)
	ratio := float64(len(plain)) / float64(len(blob))
	if ratio < 3 {
		t.Errorf("compression ratio %.2f, want >= 3 on sequential recipes (plain %d, compressed %d)",
			ratio, len(plain), len(blob))
	}
	t.Logf("recipe compression: %d -> %d bytes (%.1fx)", len(plain), len(blob), ratio)
}

func TestRecipeCompressionProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		containers := []hashutil.Sum{
			hashutil.SumString("x"), hashutil.SumString("y"), hashutil.SumString("z"),
		}
		fm := &FileManifest{File: "p"}
		for i := 0; i < int(n%60); i++ {
			fm.Refs = append(fm.Refs, FileRef{
				Container: containers[rng.Intn(3)],
				Start:     rng.Int63n(1 << 40),
				Size:      rng.Int63n(1<<20) + 1,
			})
		}
		back, err := DecompressRecipe("p", CompressRecipe(fm))
		if err != nil {
			return false
		}
		if len(fm.Refs) == 0 {
			return len(back.Refs) == 0
		}
		return reflect.DeepEqual(fm.Refs, back.Refs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecompressRejectsGarbage(t *testing.T) {
	for _, bad := range [][]byte{
		{0x01},             // container table truncated
		{0xFF, 0xFF, 0xFF}, // absurd container count, truncated
	} {
		if _, err := DecompressRecipe("f", bad); err == nil {
			t.Errorf("garbage %v accepted", bad)
		}
	}
	// Valid table, bad ref (container index out of range).
	c := hashutil.SumString("c")
	blob := append([]byte{0x01}, c[:]...)
	blob = append(blob, 0x05) // container index 5 of 1
	if _, err := DecompressRecipe("f", blob); err == nil {
		t.Error("out-of-range container index accepted")
	}
}

func FuzzDecompressRecipe(f *testing.F) {
	fm := &FileManifest{File: "s", Refs: []FileRef{
		{Container: hashutil.SumString("c"), Start: 0, Size: 100},
	}}
	f.Add(CompressRecipe(fm))
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		fm, err := DecompressRecipe("f", data)
		if err != nil {
			return
		}
		// Anything that decodes must survive compress→decompress.
		back, err := DecompressRecipe("f", CompressRecipe(fm))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(back.Refs) != len(fm.Refs) {
			t.Fatal("ref count unstable")
		}
	})
}
