package store

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mhdedup/internal/events"
	"mhdedup/internal/metrics"
	"mhdedup/internal/simdisk"
)

// Durable orchestrates a store directory's continuous-durability machinery:
// it opens the directory crash-safely (Recover + LoadDir + log replay),
// attaches a write-ahead log to the mounted disk so every mutation is
// journaled, group-commits the log on demand (Commit — the server's
// acknowledgement barrier) and on a background cadence, folds the log into
// a fresh generation when it grows past a budget or an interval (Compact —
// SaveDir under the hood), runs an optional online scrub over a consistent
// snapshot, and answers the admission-control question (Overloaded) the
// server sheds load by. Background maintenance paces itself by the ingest
// latency histogram: when the interval p99 exceeds the budget, compaction
// and scrub back off rather than compete with foreground traffic — unless
// the log has grown so far past its budget that folding it is more urgent
// than latency.
type Durable struct {
	dir  string
	disk *simdisk.Disk
	wal  *simdisk.WAL
	opts DurableOptions
	ev   *events.Log

	// compactMu serializes Compact and Scrub: both walk the directory a
	// SaveDir rewrites, so they must not interleave with one another.
	compactMu sync.Mutex

	compactions   atomic.Int64
	backoffs      atomic.Int64
	scrubs        atomic.Int64
	scrubErrors   atomic.Int64
	lastCompactNS atomic.Int64
	lastScrubNS   atomic.Int64

	// prevBuckets is the pacing histogram's last sampled bucket counts;
	// touched only by the maintenance goroutine.
	prevBuckets []int64

	hCompact *metrics.Histogram

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// DurableOptions tunes a Durable. The zero value gets sane server
// defaults; negative values disable the corresponding mechanism.
type DurableOptions struct {
	// FlushInterval is the background group-commit cadence (and the
	// maintenance goroutine's tick): buffered log records older than this
	// are fsynced even if no Commit asked. Default 200ms; < 0 disables
	// the background goroutine entirely (manual Commit/Compact only).
	FlushInterval time.Duration

	// CompactLogBytes folds the log into a fresh generation once its
	// durable footprint exceeds this. Default 64 MiB; < 0 disables
	// size-triggered compaction.
	CompactLogBytes int64

	// CompactInterval folds a non-empty log by age even when small, so a
	// quiet server still converges to a bare generation. Default 30s;
	// < 0 disables time-triggered compaction.
	CompactInterval time.Duration

	// ShedPendingBytes and ShedLogBytes are the admission-control
	// budgets: Overloaded reports true when un-fsynced records exceed
	// ShedPendingBytes (the group commit is not keeping up) or the
	// durable log exceeds ShedLogBytes (compaction is not keeping up).
	// Defaults 32 MiB and 8×CompactLogBytes; < 0 disables that check.
	ShedPendingBytes int64
	ShedLogBytes     int64

	// ScrubInterval runs an online scrub (restore every file from a
	// consistent snapshot, verifying decodability) this often. Default
	// 0 = no scrubbing.
	ScrubInterval time.Duration

	// PaceHistogram + P99Budget pace background maintenance: each tick
	// samples the histogram's new observations since the last tick, and
	// while their p99 exceeds the budget, compaction and scrub back off
	// (unless the log breached ShedLogBytes — then folding is urgent).
	// Nil histogram or zero budget disables pacing.
	PaceHistogram *metrics.Histogram
	P99Budget     time.Duration

	// Registry receives the durability gauges and histograms (default
	// metrics.Default); Events receives the compaction/scrub/backoff
	// event stream (default none).
	Registry *metrics.Registry
	Events   *events.Log
}

// fillDefaults resolves the zero value to server defaults.
func (o *DurableOptions) fillDefaults() {
	if o.FlushInterval == 0 {
		o.FlushInterval = 200 * time.Millisecond
	}
	if o.CompactLogBytes == 0 {
		o.CompactLogBytes = 64 << 20
	}
	if o.CompactInterval == 0 {
		o.CompactInterval = 30 * time.Second
	}
	if o.ShedPendingBytes == 0 {
		o.ShedPendingBytes = 32 << 20
	}
	if o.ShedLogBytes == 0 {
		if o.CompactLogBytes > 0 {
			o.ShedLogBytes = 8 * o.CompactLogBytes
		} else {
			o.ShedLogBytes = 512 << 20
		}
	}
	if o.Registry == nil {
		o.Registry = metrics.Default
	}
	if o.Events == nil {
		o.Events = events.Nop()
	}
}

// OpenDurable mounts dir as a continuously-durable store: crash debris is
// repaired (simdisk.Recover, including the log's torn tail), the newest
// committed generation is loaded, the write-ahead log's valid prefix is
// replayed on top of it, and a fresh log segment is attached to the disk
// so every mutation from here on is journaled. The returned replay report
// says how much log survived the last run. Call Start to launch background
// flushing/compaction, Commit to make acknowledged work durable, and Close
// on the way out.
func OpenDurable(dir string, opts DurableOptions) (*Durable, simdisk.WALReplayReport, error) {
	opts.fillDefaults()
	var rep simdisk.WALReplayReport
	if _, err := simdisk.Recover(dir); err != nil {
		return nil, rep, fmt.Errorf("store: durable open: %w", err)
	}
	disk, err := simdisk.LoadDir(dir)
	if err != nil {
		return nil, rep, fmt.Errorf("store: durable open: %w", err)
	}
	rep, err = simdisk.ReplayWAL(dir, disk)
	if err != nil {
		return nil, rep, fmt.Errorf("store: durable open: %w", err)
	}
	wal, err := simdisk.OpenWAL(dir)
	if err != nil {
		return nil, rep, fmt.Errorf("store: durable open: %w", err)
	}
	disk.SetWAL(wal)

	d := &Durable{
		dir:  dir,
		disk: disk,
		wal:  wal,
		opts: opts,
		ev:   opts.Events,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	d.lastCompactNS.Store(time.Now().UnixNano())
	d.lastScrubNS.Store(time.Now().UnixNano())

	reg := opts.Registry
	d.hCompact = reg.Histogram("store.compaction_ns")
	hBatch := reg.Histogram("store.group_commit_batch")
	wal.SetBatchObserver(func(records int) { hBatch.Observe(int64(records)) })
	reg.SetGauge("store.log_bytes", func() int64 { return d.wal.Stats().DurableBytes })
	reg.SetGauge("store.log_records", func() int64 { return d.wal.Stats().DurableRecords })
	reg.SetGauge("store.log_pending_bytes", func() int64 { return d.wal.Stats().PendingBytes })
	reg.SetGauge("store.last_fsync_ns", func() int64 { return d.wal.Stats().LastSyncUnixNano })
	reg.SetGauge("store.compactions", d.compactions.Load)
	reg.SetGauge("store.compaction_backoffs", d.backoffs.Load)
	return d, rep, nil
}

// Disk returns the mounted disk (build the engine over this).
func (d *Durable) Disk() *simdisk.Disk { return d.disk }

// WAL returns the attached write-ahead log.
func (d *Durable) WAL() *simdisk.WAL { return d.wal }

// Dir returns the store directory.
func (d *Durable) Dir() string { return d.dir }

// Commit group-commits the log: it returns once every mutation made
// before the call is durable. This is the server's acknowledgement
// barrier; N concurrent callers share one fsync.
func (d *Durable) Commit() error { return d.wal.Sync() }

// Overloaded implements admission control: it reports (with a reason)
// when the durability machinery has fallen behind its budgets and new
// work should be shed with a retryable error instead of queued in RAM.
func (d *Durable) Overloaded() (string, bool) {
	st := d.wal.Stats()
	if d.opts.ShedPendingBytes > 0 && st.PendingBytes > d.opts.ShedPendingBytes {
		return fmt.Sprintf("log flush behind: %d pending bytes > %d budget",
			st.PendingBytes, d.opts.ShedPendingBytes), true
	}
	if d.opts.ShedLogBytes > 0 && st.DurableBytes > d.opts.ShedLogBytes {
		return fmt.Sprintf("compaction behind: %d log bytes > %d budget",
			st.DurableBytes, d.opts.ShedLogBytes), true
	}
	return "", false
}

// Compact folds the log into a fresh generation via the write-temp+fsync+
// rename commit path and restarts the log empty. Safe to call any time;
// concurrent mutations simply land in the new log.
func (d *Durable) Compact() error {
	d.compactMu.Lock()
	defer d.compactMu.Unlock()
	return d.compactLocked()
}

func (d *Durable) compactLocked() error {
	st := d.wal.Stats()
	d.ev.Info("compaction.start",
		events.F("log_bytes", st.DurableBytes),
		events.F("log_records", st.DurableRecords),
		events.F("pending_records", st.PendingRecords))
	start := time.Now()
	if err := d.disk.SaveDir(d.dir); err != nil {
		d.ev.Error("compaction.error", events.F("err", err.Error()))
		return err
	}
	elapsed := d.hCompact.ObserveSince(start)
	d.compactions.Add(1)
	d.lastCompactNS.Store(time.Now().UnixNano())
	d.ev.Info("compaction.done",
		events.F("ms", elapsed.Milliseconds()),
		events.F("folded_records", st.DurableRecords+st.PendingRecords))
	return nil
}

// Scrub verifies the store online: it mounts a consistent read-only
// snapshot (newest generation + the log's valid prefix) and restores
// every file to a discard writer through the normal decode path, so any
// undecodable manifest or missing chunk surfaces as an event — without
// ever touching the live engine's disk or blocking ingest.
func (d *Durable) Scrub() error {
	d.compactMu.Lock()
	defer d.compactMu.Unlock()
	start := time.Now()
	d.ev.Info("scrub.start")
	snap, err := simdisk.LoadDir(d.dir)
	if err == nil {
		_, err = simdisk.ReplayWAL(d.dir, snap)
	}
	if err != nil {
		d.scrubErrors.Add(1)
		d.ev.Error("scrub.error", events.F("err", err.Error()))
		return err
	}
	format, _ := DetectFormat(snap)
	st := New(snap, format)
	names := snap.Names(simdisk.FileManifest)
	sort.Strings(names)
	bad := 0
	for _, name := range names {
		if err := st.RestoreFile(name, io.Discard); err != nil {
			bad++
			d.ev.Error("scrub.corrupt",
				events.F("file", name), events.F("err", err.Error()))
		}
	}
	d.scrubs.Add(1)
	d.lastScrubNS.Store(time.Now().UnixNano())
	d.ev.Info("scrub.done",
		events.F("files", len(names)),
		events.F("corrupt", bad),
		events.F("ms", time.Since(start).Milliseconds()))
	if bad > 0 {
		d.scrubErrors.Add(int64(bad))
		return fmt.Errorf("store: scrub: %d of %d files failed to restore", bad, len(names))
	}
	return nil
}

// Start launches the background maintenance goroutine: periodic group
// commit of aging records, size/age-triggered compaction, and interval
// scrubbing — all paced by the ingest-latency budget. No-op when
// FlushInterval < 0 or after a prior Start.
func (d *Durable) Start() {
	d.startOnce.Do(func() {
		if d.opts.FlushInterval < 0 {
			close(d.done)
			return
		}
		go d.maintain()
	})
}

// maintain is the background loop.
func (d *Durable) maintain() {
	defer close(d.done)
	tick := time.NewTicker(d.opts.FlushInterval)
	defer tick.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-tick.C:
			d.maintainTick()
		}
	}
}

// maintainTick does one round of background work.
func (d *Durable) maintainTick() {
	st := d.wal.Stats()
	if st.PendingRecords > 0 {
		if err := d.wal.Sync(); err != nil {
			d.ev.Error("wal.flush_error", events.F("err", err.Error()))
		}
		st = d.wal.Stats()
	}

	// Sample the pacing signal every tick (even when nothing is due) so
	// the interval delta stays one tick wide.
	busy := false
	var p99 int64
	if d.opts.PaceHistogram != nil && d.opts.P99Budget > 0 {
		cur := d.opts.PaceHistogram.BucketCounts()
		var n int64
		p99, n = metrics.DeltaP99(cur, d.prevBuckets)
		d.prevBuckets = cur
		busy = n > 0 && p99 > int64(d.opts.P99Budget)
	}

	now := time.Now()
	needCompact := false
	if d.opts.CompactLogBytes > 0 && st.DurableBytes >= d.opts.CompactLogBytes {
		needCompact = true
	}
	if d.opts.CompactInterval > 0 && st.DurableRecords > 0 &&
		now.Sub(time.Unix(0, d.lastCompactNS.Load())) >= d.opts.CompactInterval {
		needCompact = true
	}
	// Urgency overrides pacing: past the shed budget, folding the log is
	// what restores admission, so latency takes the back seat.
	urgent := d.opts.ShedLogBytes > 0 && st.DurableBytes >= d.opts.ShedLogBytes

	if needCompact {
		if busy && !urgent {
			d.backoffs.Add(1)
			d.ev.Warn("compaction.backoff",
				events.F("p99_ms", time.Duration(p99).Milliseconds()),
				events.F("budget_ms", d.opts.P99Budget.Milliseconds()),
				events.F("log_bytes", st.DurableBytes))
		} else if err := d.Compact(); err != nil {
			d.ev.Error("compaction.error", events.F("err", err.Error()))
		}
	}

	if d.opts.ScrubInterval > 0 &&
		now.Sub(time.Unix(0, d.lastScrubNS.Load())) >= d.opts.ScrubInterval {
		if busy {
			d.ev.Warn("scrub.backoff",
				events.F("p99_ms", time.Duration(p99).Milliseconds()),
				events.F("budget_ms", d.opts.P99Budget.Milliseconds()))
		} else if err := d.Scrub(); err != nil {
			// Already evented; scrub failure must not stop maintenance.
			_ = err
		}
	}
}

// Close stops maintenance, flushes the log one last time and closes it.
// It does NOT fold the log — the on-disk state (generation + log) is
// complete without it; call Compact first for a bare-generation shutdown.
func (d *Durable) Close() error {
	var err error
	d.stopOnce.Do(func() {
		close(d.stop)
		d.Start() // ensure done is closed even if Start was never called
		<-d.done
		err = d.wal.Close()
	})
	return err
}
