package store

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"mhdedup/internal/events"
	"mhdedup/internal/metrics"
	"mhdedup/internal/simdisk"
)

// openDurableT opens dir with background maintenance off and a private
// registry, so tests control every flush/compaction themselves.
func openDurableT(t *testing.T, dir string, opts DurableOptions) (*Durable, simdisk.WALReplayReport) {
	t.Helper()
	opts.FlushInterval = -1
	if opts.Registry == nil {
		opts.Registry = metrics.NewRegistry()
	}
	d, rep, err := OpenDurable(dir, opts)
	if err != nil {
		t.Fatalf("open durable %s: %v", dir, err)
	}
	return d, rep
}

func TestDurableCommitSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	d, rep := openDurableT(t, dir, DurableOptions{})
	if rep.Records != 0 {
		t.Fatalf("fresh store replayed %d records", rep.Records)
	}
	if err := d.Disk().Create(simdisk.Data, "a", []byte("acked")); err != nil {
		t.Fatal(err)
	}
	if err := d.Disk().Create(simdisk.FileManifest, "f/a", []byte("recipe")); err != nil {
		t.Fatal(err)
	}
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	// Un-committed records after the barrier model the in-flight work a
	// crash may lose.
	if err := d.Disk().Create(simdisk.Data, "b", []byte("never acked")); err != nil {
		t.Fatal(err)
	}
	// No Close: the process "dies" here.

	d2, rep2 := openDurableT(t, dir, DurableOptions{})
	defer d2.Close()
	if rep2.Records != 2 {
		t.Fatalf("reopen replayed %d records, want the 2 committed ones", rep2.Records)
	}
	if got, err := d2.Disk().Read(simdisk.Data, "a"); err != nil || !bytes.Equal(got, []byte("acked")) {
		t.Fatalf("committed object = %q, %v", got, err)
	}
	if d2.Disk().Exists(simdisk.Data, "b") {
		t.Fatal("uncommitted record replayed")
	}
}

func TestDurableCompactFoldsIntoGeneration(t *testing.T) {
	dir := t.TempDir()
	d, _ := openDurableT(t, dir, DurableOptions{})
	defer d.Close()
	for i := 0; i < 5; i++ {
		if err := d.Disk().Create(simdisk.Data, fmt.Sprintf("c%d", i), bytes.Repeat([]byte{byte(i)}, 128)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	st := d.WAL().Stats()
	if st.DurableRecords != 0 || st.Compactions != 1 {
		t.Fatalf("log after compaction = %+v, want empty", st)
	}

	// A reopen replays nothing; the state lives in the generation.
	d2, rep := openDurableT(t, dir, DurableOptions{})
	defer d2.Close()
	if rep.Records != 0 {
		t.Fatalf("post-compaction reopen replayed %d records", rep.Records)
	}
	for i := 0; i < 5; i++ {
		if !d2.Disk().Exists(simdisk.Data, fmt.Sprintf("c%d", i)) {
			t.Fatalf("object c%d lost across compaction", i)
		}
	}
}

func TestDurableOverloaded(t *testing.T) {
	dir := t.TempDir()
	d, _ := openDurableT(t, dir, DurableOptions{
		ShedPendingBytes: 64,
		ShedLogBytes:     256,
	})
	defer d.Close()

	if reason, over := d.Overloaded(); over {
		t.Fatalf("fresh store overloaded: %s", reason)
	}
	// Un-fsynced records past the pending budget: the group commit is
	// behind.
	if err := d.Disk().Create(simdisk.Data, "big", bytes.Repeat([]byte{1}, 400)); err != nil {
		t.Fatal(err)
	}
	reason, over := d.Overloaded()
	if !over || !strings.Contains(reason, "log flush behind") {
		t.Fatalf("overloaded = %v %q, want pending-bytes shed", over, reason)
	}
	// After the flush, the durable footprint breaches the log budget: now
	// compaction is behind.
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	reason, over = d.Overloaded()
	if !over || !strings.Contains(reason, "compaction behind") {
		t.Fatalf("overloaded = %v %q, want log-bytes shed", over, reason)
	}
	// Compaction restores admission.
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	if reason, over := d.Overloaded(); over {
		t.Fatalf("still overloaded after compaction: %s", reason)
	}
}

func TestDurableMaintenanceCompactsBySize(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	d, _, err := OpenDurable(dir, DurableOptions{
		FlushInterval:   2 * time.Millisecond,
		CompactLogBytes: 1024,
		CompactInterval: -1,
		Registry:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.Start()

	// Append well past the size trigger; the background loop must both
	// flush the records and fold the log without any Commit/Compact call.
	for i := 0; i < 8; i++ {
		if err := d.Disk().Create(simdisk.Data, fmt.Sprintf("c%d", i), bytes.Repeat([]byte{byte(i)}, 512)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st := d.WAL().Stats(); st.Compactions > 0 && st.PendingRecords == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("maintenance never compacted: %+v", d.WAL().Stats())
}

func TestDurableMaintenanceBacksOffUnderLatency(t *testing.T) {
	dir := t.TempDir()
	hPace := metrics.NewRegistry().Histogram("test.pace_ns")
	ev := events.New(events.Options{Level: events.LevelDebug, Out: io.Discard})
	d, _, err := OpenDurable(dir, DurableOptions{
		FlushInterval:   2 * time.Millisecond,
		CompactLogBytes: 64,
		CompactInterval: -1,
		ShedLogBytes:    1 << 40, // never urgent
		PaceHistogram:   hPace,
		P99Budget:       time.Millisecond,
		Registry:        metrics.NewRegistry(),
		Events:          ev,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	if err := d.Disk().Create(simdisk.Data, "c", bytes.Repeat([]byte{1}, 256)); err != nil {
		t.Fatal(err)
	}
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}

	// Feed the pacing histogram a stream of over-budget latencies: every
	// tick sees fresh slow samples, so compaction keeps backing off even
	// though the log is past its size trigger.
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				hPace.Observe(int64(10 * time.Millisecond))
				time.Sleep(time.Millisecond)
			}
		}
	}()
	d.Start()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && d.backoffs.Load() == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	backedOff := d.backoffs.Load()
	close(stop)
	if backedOff == 0 {
		t.Fatal("maintenance never backed off under latency pressure")
	}
	if d.compactions.Load() != 0 {
		t.Fatal("compaction ran while the ingest p99 was over budget")
	}

	// Once the latency pressure stops, the next quiet tick compacts.
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && d.compactions.Load() == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if d.compactions.Load() == 0 {
		t.Fatal("compaction never resumed after the latency pressure ended")
	}
	foundEvent := false
	for _, e := range ev.Recent() {
		if e.Type == "compaction.backoff" {
			foundEvent = true
		}
	}
	if !foundEvent {
		t.Error("no compaction.backoff event emitted")
	}
}

func TestDurableScrubFlagsCorruption(t *testing.T) {
	dir := t.TempDir()
	ev := events.New(events.Options{Level: events.LevelDebug, Out: io.Discard})
	d, _ := openDurableT(t, dir, DurableOptions{Events: ev})
	defer d.Close()

	// An empty store scrubs clean.
	if err := d.Scrub(); err != nil {
		t.Fatalf("scrub of empty store: %v", err)
	}

	// A file manifest that cannot decode must surface as a scrub error —
	// found via the snapshot, without touching the live disk.
	if err := d.Disk().Create(simdisk.FileManifest, "f/bad", []byte("not a manifest")); err != nil {
		t.Fatal(err)
	}
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := d.Scrub(); err == nil {
		t.Fatal("scrub of a corrupt file manifest reported success")
	}
	var sawCorrupt, sawDone bool
	for _, e := range ev.Recent() {
		switch e.Type {
		case "scrub.corrupt":
			sawCorrupt = true
		case "scrub.done":
			sawDone = true
		}
	}
	if !sawCorrupt || !sawDone {
		t.Errorf("scrub events corrupt=%v done=%v, want both", sawCorrupt, sawDone)
	}
	if d.scrubErrors.Load() == 0 {
		t.Error("scrub error counter not bumped")
	}
}

func TestDurableGaugesExported(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	d, _ := openDurableT(t, dir, DurableOptions{Registry: reg})
	defer d.Close()
	if err := d.Disk().Create(simdisk.Data, "a", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	export := reg.ExportAll()
	for _, name := range []string{"store.log_bytes", "store.log_records", "store.log_pending_bytes", "store.last_fsync_ns", "store.compactions", "store.compaction_backoffs"} {
		if _, ok := export.Gauges[name]; !ok {
			t.Errorf("gauge %s not exported", name)
		}
	}
	if export.Gauges["store.log_records"] != 1 {
		t.Errorf("store.log_records = %d, want 1", export.Gauges["store.log_records"])
	}
	if export.Gauges["store.last_fsync_ns"] == 0 {
		t.Error("store.last_fsync_ns never stamped")
	}
	if _, ok := export.Histograms["store.group_commit_batch"]; !ok {
		t.Error("group-commit batch histogram not exported")
	}
}
